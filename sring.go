// Package sring is a synthesis library for application-specific
// wavelength-routed optical network-on-chip (WRONoC) ring routers. It
// reproduces "SRing: A Sub-Ring Construction Method for Application-
// Specific Wavelength-Routed Optical NoCs" (Zheng et al., DATE 2025).
//
// Given an application — nodes with physical placements plus the directed
// messages they must exchange — the library synthesises a ring router with
// one of four methods and evaluates its optical power budget:
//
//   - SRing (the paper's contribution): nodes are clustered by
//     communication requirement and physical location, each cluster gets a
//     short intra-cluster sub-ring waveguide and at most one extra sub-ring
//     carries the inter-cluster traffic; wavelengths are assigned by a MILP
//     (with a built-in branch-and-bound solver) that jointly minimises
//     wavelength usage, worst-case insertion loss, and PDN splitter usage.
//   - ORNoC, CTORing, XRing: the three state-of-the-art baselines the
//     paper compares against, sharing the same layout, loss and PDN
//     substrate.
//
// Quick start:
//
//	app := sring.MWD()
//	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{UseMILP: true})
//	if err != nil { ... }
//	m, err := d.Metrics()
//	fmt.Printf("laser power: %.3f mW on %d wavelengths\n",
//	    m.TotalLaserPowerMW, m.NumWavelengths)
package sring

import (
	"fmt"
	"strings"
	"time"

	"sring/internal/cluster"
	"sring/internal/ctoring"
	"sring/internal/design"
	"sring/internal/floorplan"
	"sring/internal/loss"
	"sring/internal/milp"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/ornoc"
	"sring/internal/par"
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
	"sring/internal/xring"
)

// Re-exported model types. Aliases keep one set of definitions across the
// internal packages and the public API.
type (
	// Application is a synthesis input: nodes with placements + messages.
	Application = netlist.Application
	// Node is a network endpoint.
	Node = netlist.Node
	// NodeID identifies a node.
	NodeID = netlist.NodeID
	// Message is a directed communication requirement.
	Message = netlist.Message
	// Design is a fully synthesised router.
	Design = design.Design
	// Metrics are the per-design evaluation results (Table I columns,
	// Fig. 7 values).
	Metrics = design.Metrics
	// Tech is the technology parameter set of the optical layer.
	Tech = loss.Tech
	// Recorder collects synthesis telemetry: hierarchical timed spans plus
	// named counters. Create one with NewRecorder, pass it in
	// Options.Recorder, then use Snapshot/WriteJSON/Summary to inspect the
	// trace after Synthesize returns.
	Recorder = obs.Recorder
	// Trace is the structured snapshot of a Recorder.
	Trace = obs.Trace
	// SpanSnap is one node of a Trace's span tree.
	SpanSnap = obs.SpanSnap
)

// NewRecorder returns an empty telemetry recorder.
func NewRecorder() *Recorder { return obs.New() }

// DefaultTech returns the calibrated technology parameters (DESIGN.md §2).
func DefaultTech() Tech { return loss.Default() }

// Builtin benchmarks (paper Table I).
var (
	// MWD returns the 12-node multi-window display application.
	MWD = netlist.MWD
	// VOPD returns the 16-node video object plane decoder.
	VOPD = netlist.VOPD
	// MPEG returns the 12-node MPEG4 decoder.
	MPEG = netlist.MPEG
	// D26 returns the 26-node multimedia SoC.
	D26 = netlist.D26
	// PM24, PM32 and PM44 return the 8-node processor-memory networks.
	PM24 = netlist.PM24
	PM32 = netlist.PM32
	PM44 = netlist.PM44
	// Benchmarks returns all seven benchmarks in Table I order.
	Benchmarks = netlist.Benchmarks
	// ExtendedBenchmarks returns the four extension task graphs
	// (PIP, H263, MP3, MMS) not evaluated in the paper.
	ExtendedBenchmarks = netlist.Extended
	// Benchmark looks a builtin benchmark up by name.
	Benchmark = netlist.ByName
	// RandomApplication generates a deterministic random application.
	RandomApplication = netlist.Random
	// ClusteredApplication generates a cluster-structured application.
	ClusteredApplication = netlist.Clustered
)

// Method selects a synthesis method.
type Method string

// The four synthesis methods.
const (
	MethodSRing   Method = "SRing"
	MethodORNoC   Method = "ORNoC"
	MethodCTORing Method = "CTORing"
	MethodXRing   Method = "XRing"
)

// Methods returns all methods in the paper's comparison order.
func Methods() []Method {
	return []Method{MethodORNoC, MethodCTORing, MethodXRing, MethodSRing}
}

// DefaultMILPTimeLimit is the wall-clock budget of the exact wavelength
// assignment when Options.MILPTimeLimit is zero. It is defined once, in the
// solver (milp.DefaultTimeLimit); every layer above passes zero through.
const DefaultMILPTimeLimit = milp.DefaultTimeLimit

// Options configures synthesis.
type Options struct {
	// Tech overrides the technology parameters (zero value: DefaultTech).
	// A non-zero Tech must be a plausible, fully populated parameter set:
	// Synthesize rejects negative or non-finite losses and the
	// partially-populated structs that Validate alone cannot catch (zero
	// SplitRatioDB or DetectorSensitivityDBm). Start from DefaultTech()
	// and override fields rather than building a Tech from scratch.
	Tech Tech
	// TreeHeight is the paper's h, the height of the L_max search tree
	// used by SRing's clustering (zero: 6).
	TreeHeight int
	// ClusterTrials caps the initial vertices tried per cluster round
	// (zero: unlimited, the paper's behaviour). Set for networks much
	// larger than the benchmarks to bound synthesis time.
	ClusterTrials int
	// UseMILP enables the exact MILP wavelength assignment (paper Sec.
	// III-B) on instances small enough for the built-in solver; the
	// splitter-aware heuristic always runs and seeds it.
	UseMILP bool
	// MILPTimeLimit bounds the exact solve (zero: DefaultMILPTimeLimit).
	MILPTimeLimit time.Duration
	// Parallelism is the worker count used throughout the pipeline — the
	// MILP's speculative LP evaluations, the clustering's concurrent L_max
	// probes, and Evaluate's method fan-out. 0 means GOMAXPROCS (the
	// default: parallel), 1 means fully sequential. The synthesised design
	// is bit-identical for every setting; see README.md §Parallelism.
	Parallelism int
	// PhysicalPDN routes the power-distribution tree physically (median
	// splits, rectilinear trunks) instead of the abstract stage-count
	// model; feed lengths and stage counts then come from the routed tree.
	PhysicalPDN bool
	// Recorder, when non-nil, collects a full synthesis trace: timed spans
	// for every pipeline stage (clustering, layout, loss, wavelength
	// assignment, MILP, PDN) and solver counters (simplex pivots, B&B
	// nodes, absorption steps). Nil disables all telemetry at zero cost.
	Recorder *Recorder
}

// Synthesize builds a router design for the application with the chosen
// method. Synthesis wall-clock time is measured here, uniformly for all
// methods, and stored in the returned design's SynthesisTime (Table II).
func Synthesize(app *Application, method Method, opt Options) (*Design, error) {
	start := time.Now()
	root := opt.Recorder.StartSpan("synthesize")
	root.SetString("method", string(method))
	if app != nil {
		root.SetString("app", app.Name)
		root.SetInt("nodes", int64(len(app.Nodes)))
		root.SetInt("messages", int64(len(app.Messages)))
	}
	d, err := synthesize(app, method, opt, root)
	root.End()
	if err != nil {
		return nil, err
	}
	d.SynthesisTime = time.Since(start)
	return d, nil
}

func synthesize(app *Application, method Method, opt Options, root *obs.Span) (*Design, error) {
	switch method {
	case MethodSRing:
		return synthesizeSRing(app, opt, root)
	case MethodORNoC:
		return ornoc.Synthesize(app, ornoc.Options{Design: design.Options{
			Tech: opt.Tech,
			PDN:  pdn.Config{RoutePhysical: opt.PhysicalPDN},
			Obs:  root,
		}})
	case MethodCTORing:
		return ctoring.Synthesize(app, ctoring.Options{
			Design: design.Options{
				Tech: opt.Tech,
				PDN:  pdn.Config{RoutePhysical: opt.PhysicalPDN},
				Obs:  root,
			},
			UseMILP:       opt.UseMILP,
			MILPTimeLimit: opt.MILPTimeLimit,
			Parallelism:   opt.Parallelism,
		})
	case MethodXRing:
		return xring.Synthesize(app, xring.Options{
			Design: design.Options{
				Tech: opt.Tech,
				PDN:  pdn.Config{RoutePhysical: opt.PhysicalPDN},
				Obs:  root,
			},
			UseMILP:       opt.UseMILP,
			MILPTimeLimit: opt.MILPTimeLimit,
			Parallelism:   opt.Parallelism,
		})
	default:
		return nil, fmt.Errorf("sring: unknown method %q", method)
	}
}

// synthesizeSRing runs the paper's flow: sub-ring construction (Sec. III-A)
// followed by wavelength assignment (Sec. III-B) and PDN construction.
func synthesizeSRing(app *Application, opt Options, root *obs.Span) (*Design, error) {
	res, err := cluster.Synthesize(app, cluster.Options{
		TreeHeight:       opt.TreeHeight,
		MaxInitialTrials: opt.ClusterTrials,
		Parallelism:      opt.Parallelism,
		Obs:              root,
	})
	if err != nil {
		return nil, err
	}
	ringByID := make(map[int]*ring.Ring, len(res.Rings))
	for _, r := range res.Rings {
		ringByID[r.ID] = r
	}
	paths := make([]ring.Path, len(app.Messages))
	for i, m := range app.Messages {
		r, ok := ringByID[res.RingForMessage[i]]
		if !ok {
			return nil, fmt.Errorf("sring: message %d unmapped", i)
		}
		p, err := ring.Route(app, r, m)
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}
	tech, err := loss.Normalize(opt.Tech)
	if err != nil {
		return nil, fmt.Errorf("sring: %w", err)
	}
	weights := wavelength.DefaultWeights()
	weights.SplitterStageDB = tech.SplitterStageDB()
	d, err := design.Finish(app, string(MethodSRing), res.Rings, paths, design.Options{
		Tech: tech,
		PDN:  pdn.Config{Style: pdn.StyleShared, RoutePhysical: opt.PhysicalPDN},
		Assign: wavelength.Options{
			Weights:       weights,
			UseMILP:       opt.UseMILP,
			MILPTimeLimit: opt.MILPTimeLimit,
			Parallelism:   opt.Parallelism,
		},
		Obs: root,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// PlaceAndSynthesize places the application's nodes by simulated annealing
// (ignoring any coordinates it carries) and synthesises a router on the
// resulting floorplan. Use it for inputs that arrive as bare task graphs;
// the returned design's App field holds the placed application.
func PlaceAndSynthesize(app *Application, method Method, opt Options) (*Design, error) {
	placed, err := floorplan.Place(app, floorplan.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	return Synthesize(placed, method, opt)
}

// MethodErrors collects the per-method failures of an Evaluate call. It is
// returned alongside the metrics of the methods that succeeded, so one
// failing baseline does not throw away the rest of a Table I row group.
type MethodErrors map[Method]error

// Error joins the failures in Methods() order.
func (e MethodErrors) Error() string {
	var b strings.Builder
	b.WriteString("sring: ")
	first := true
	for _, m := range Methods() {
		if err, ok := e[m]; ok {
			if !first {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %v", m, err)
			first = false
		}
	}
	return b.String()
}

// Evaluate synthesises the application with every method and returns the
// metrics side by side, in Methods() order — one Table I row group. The
// methods run concurrently under Options.Parallelism (0 = GOMAXPROCS,
// 1 = sequential) with bit-identical per-method results either way.
//
// A method failure does not abort the others: the returned map always
// holds the metrics of every method that succeeded, and the error (a
// MethodErrors, when non-nil) says which methods failed and why.
func Evaluate(app *Application, opt Options) (map[Method]*Metrics, error) {
	methods := Methods()
	mets := make([]*Metrics, len(methods))
	errs := make([]error, len(methods))
	par.ForEach(opt.Parallelism, len(methods), func(i int) {
		m := methods[i]
		d, err := Synthesize(app, m, opt)
		if err != nil {
			errs[i] = fmt.Errorf("on %s: %w", app.Name, err)
			return
		}
		mets[i], errs[i] = d.Metrics()
	})
	out := make(map[Method]*Metrics, len(methods))
	failed := make(MethodErrors)
	for i, m := range methods {
		switch {
		case errs[i] != nil:
			failed[m] = errs[i]
		default:
			out[m] = mets[i]
		}
	}
	if len(failed) > 0 {
		return out, failed
	}
	return out, nil
}
