// Package sring is a synthesis library for application-specific
// wavelength-routed optical network-on-chip (WRONoC) ring routers. It
// reproduces "SRing: A Sub-Ring Construction Method for Application-
// Specific Wavelength-Routed Optical NoCs" (Zheng et al., DATE 2025).
//
// Given an application — nodes with physical placements plus the directed
// messages they must exchange — the library synthesises a ring router with
// one of four methods and evaluates its optical power budget:
//
//   - SRing (the paper's contribution): nodes are clustered by
//     communication requirement and physical location, each cluster gets a
//     short intra-cluster sub-ring waveguide and at most one extra sub-ring
//     carries the inter-cluster traffic; wavelengths are assigned by a MILP
//     (with a built-in branch-and-bound solver) that jointly minimises
//     wavelength usage, worst-case insertion loss, and PDN splitter usage.
//   - ORNoC, CTORing, XRing: the three state-of-the-art baselines the
//     paper compares against, sharing the same layout, loss and PDN
//     substrate.
//
// Every method runs on one staged engine (internal/pipeline): a
// method-specific construction stage followed by shared layout, loss
// pricing, wavelength assignment and PDN stages. The engine is
// context-aware — SynthesizeContext honours cancellation, degrading
// gracefully to the best feasible design (Design.Cancelled) — and
// memoizing: an Options.Cache reuses stage outputs across calls that share
// their upstream inputs.
//
// Quick start:
//
//	app := sring.MWD()
//	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{UseMILP: true})
//	if err != nil { ... }
//	m, err := d.Metrics()
//	fmt.Printf("laser power: %.3f mW on %d wavelengths\n",
//	    m.TotalLaserPowerMW, m.NumWavelengths)
//
// With a deadline and a cache:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	opt := sring.Options{UseMILP: true, Cache: sring.NewCache()}
//	d, err := sring.SynthesizeContext(ctx, app, sring.MethodSRing, opt)
//	// On timeout d is still returned, flagged d.Cancelled, carrying the
//	// solver's best incumbent instead of an error.
package sring

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"sring/internal/design"
	"sring/internal/floorplan"
	"sring/internal/loss"
	"sring/internal/milp"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/par"
	"sring/internal/pipeline"

	// Each method package registers its constructor with the pipeline
	// engine from init(); importing them is what makes the four methods
	// available.
	_ "sring/internal/cluster"
	_ "sring/internal/ctoring"
	_ "sring/internal/ornoc"
	_ "sring/internal/xring"
)

// Re-exported model types. Aliases keep one set of definitions across the
// internal packages and the public API.
type (
	// Application is a synthesis input: nodes with placements + messages.
	Application = netlist.Application
	// Node is a network endpoint.
	Node = netlist.Node
	// NodeID identifies a node.
	NodeID = netlist.NodeID
	// Message is a directed communication requirement.
	Message = netlist.Message
	// Design is a fully synthesised router.
	Design = design.Design
	// Metrics are the per-design evaluation results (Table I columns,
	// Fig. 7 values).
	Metrics = design.Metrics
	// Tech is the technology parameter set of the optical layer.
	Tech = loss.Tech
	// Recorder collects synthesis telemetry: hierarchical timed spans plus
	// named counters. Create one with NewRecorder, pass it in
	// Options.Recorder, then use Snapshot/WriteJSON/Summary to inspect the
	// trace after Synthesize returns.
	Recorder = obs.Recorder
	// Trace is the structured snapshot of a Recorder.
	Trace = obs.Trace
	// SpanSnap is one node of a Trace's span tree.
	SpanSnap = obs.SpanSnap
	// Registry aggregates process-wide telemetry — named counters plus
	// latency histograms (p50/p90/p99) for the pipeline stages and the
	// LP/MILP kernels — across synthesis runs, complementing the per-run
	// Recorder. Pass one in Options.Registry to isolate a run's aggregates;
	// leave it nil to accumulate into DefaultRegistry().
	Registry = obs.Registry
	// RegistrySnap is the immutable snapshot of a Registry.
	RegistrySnap = obs.RegistrySnap
	// HistSnap is the immutable snapshot of one registry histogram.
	HistSnap = obs.HistSnap
	// Options configures synthesis. It is the staged engine's option
	// struct, shared by all four methods; see the field docs in
	// internal/pipeline.
	Options = pipeline.Options
	// Cache memoizes pipeline stage outputs across Synthesize calls
	// (content-addressed, safe for concurrent use). Pass one in
	// Options.Cache to let sweeps that vary only downstream parameters
	// skip the upstream stages; cached designs are bit-identical to
	// uncached ones.
	Cache = pipeline.Cache
	// CacheConfig bounds and persists a cache: a total byte budget with
	// per-shard LRU eviction, a shard count, and an optional persistence
	// directory reloaded on construction.
	CacheConfig = pipeline.CacheConfig
	// CacheStats is a point-in-time statistics snapshot of a Cache.
	CacheStats = pipeline.CacheStats
)

// NewRecorder returns an empty telemetry recorder.
func NewRecorder() *Recorder { return obs.New() }

// NewRegistry returns an empty aggregate-telemetry registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// DefaultRegistry returns the process-wide registry — the sink of every
// synthesis run whose Options.Registry is nil, and what a -telemetry
// endpoint serves at /metrics.
func DefaultRegistry() *Registry { return obs.Default() }

// NewCache returns an empty, unbounded, memory-only stage-output cache.
func NewCache() *Cache { return pipeline.NewCache() }

// NewCacheWithConfig returns a stage-output cache with a byte budget
// (LRU-evicted per shard) and, when cfg.Dir is set, disk persistence:
// entries are written behind stores and reloaded here on construction.
// Close a persistent cache to flush its write-behind queue.
func NewCacheWithConfig(cfg CacheConfig) (*Cache, error) {
	return pipeline.NewCacheWithConfig(cfg)
}

// DefaultTech returns the calibrated technology parameters (DESIGN.md §2).
func DefaultTech() Tech { return loss.Default() }

// Builtin benchmarks (paper Table I).
var (
	// MWD returns the 12-node multi-window display application.
	MWD = netlist.MWD
	// VOPD returns the 16-node video object plane decoder.
	VOPD = netlist.VOPD
	// MPEG returns the 12-node MPEG4 decoder.
	MPEG = netlist.MPEG
	// D26 returns the 26-node multimedia SoC.
	D26 = netlist.D26
	// PM24, PM32 and PM44 return the 8-node processor-memory networks.
	PM24 = netlist.PM24
	PM32 = netlist.PM32
	PM44 = netlist.PM44
	// Benchmarks returns all seven benchmarks in Table I order.
	Benchmarks = netlist.Benchmarks
	// ExtendedBenchmarks returns the four extension task graphs
	// (PIP, H263, MP3, MMS) not evaluated in the paper.
	ExtendedBenchmarks = netlist.Extended
	// Benchmark looks a builtin benchmark up by name.
	Benchmark = netlist.ByName
	// RandomApplication generates a deterministic random application.
	RandomApplication = netlist.Random
	// ClusteredApplication generates a cluster-structured application.
	ClusteredApplication = netlist.Clustered
)

// Method selects a synthesis method.
type Method string

// The four synthesis methods.
const (
	MethodSRing   Method = "SRing"
	MethodORNoC   Method = "ORNoC"
	MethodCTORing Method = "CTORing"
	MethodXRing   Method = "XRing"
)

// Methods returns all methods in the paper's comparison order.
func Methods() []Method {
	return []Method{MethodORNoC, MethodCTORing, MethodXRing, MethodSRing}
}

// DefaultMILPTimeLimit is the wall-clock budget of the exact wavelength
// assignment when Options.MILPTimeLimit is zero. It is defined once, in the
// solver (milp.DefaultTimeLimit); every layer above passes zero through.
const DefaultMILPTimeLimit = milp.DefaultTimeLimit

// Synthesize builds a router design for the application with the chosen
// method. Synthesis wall-clock time is measured by the engine, uniformly
// for all methods, and stored in the returned design's SynthesisTime
// (Table II). See SynthesizeContext for the cancellable form.
func Synthesize(app *Application, method Method, opt Options) (*Design, error) {
	return SynthesizeContext(context.Background(), app, method, opt)
}

// SynthesizeContext is Synthesize with cancellation. An already-cancelled
// context fails fast with the context error wrapped. A cancellation (or
// deadline) that strikes mid-synthesis degrades gracefully: the clustering
// keeps its best feasible construction, the MILP keeps its best incumbent,
// and the design is returned with Design.Cancelled set instead of an
// error. A context deadline unifies with Options.MILPTimeLimit — the
// solver stops at whichever comes first.
func SynthesizeContext(ctx context.Context, app *Application, method Method, opt Options) (*Design, error) {
	if app == nil {
		return nil, errors.New("sring: nil application")
	}
	return pipeline.Synthesize(ctx, app, string(method), opt)
}

// PlaceAndSynthesize places the application's nodes by simulated annealing
// (ignoring any coordinates it carries) and synthesises a router on the
// resulting floorplan. Use it for inputs that arrive as bare task graphs;
// the returned design's App field holds the placed application.
func PlaceAndSynthesize(app *Application, method Method, opt Options) (*Design, error) {
	return PlaceAndSynthesizeContext(context.Background(), app, method, opt)
}

// PlaceAndSynthesizeContext is PlaceAndSynthesize with cancellation,
// following the SynthesizeContext semantics.
func PlaceAndSynthesizeContext(ctx context.Context, app *Application, method Method, opt Options) (*Design, error) {
	if app == nil {
		return nil, errors.New("sring: nil application")
	}
	placed, err := floorplan.Place(app, floorplan.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	return SynthesizeContext(ctx, placed, method, opt)
}

// MethodErrors collects the per-method failures of an Evaluate call. It is
// returned alongside the metrics of the methods that succeeded, so one
// failing baseline does not throw away the rest of a Table I row group.
type MethodErrors map[Method]error

// Error joins the failures in Methods() order.
func (e MethodErrors) Error() string {
	var b strings.Builder
	b.WriteString("sring: ")
	first := true
	for _, m := range Methods() {
		if err, ok := e[m]; ok {
			if !first {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %v", m, err)
			first = false
		}
	}
	return b.String()
}

// Evaluate synthesises the application with every method and returns the
// metrics side by side, in Methods() order — one Table I row group. The
// methods run concurrently under Options.Parallelism (0 = GOMAXPROCS,
// 1 = sequential) with bit-identical per-method results either way.
//
// A method failure does not abort the others: the returned map always
// holds the metrics of every method that succeeded, and the error (a
// MethodErrors, when non-nil) says which methods failed and why.
func Evaluate(app *Application, opt Options) (map[Method]*Metrics, error) {
	return EvaluateContext(context.Background(), app, opt)
}

// EvaluateContext is Evaluate with cancellation: methods whose synthesis
// never started when the context fell carry the context error in the
// returned MethodErrors; methods already running degrade per the
// SynthesizeContext semantics.
func EvaluateContext(ctx context.Context, app *Application, opt Options) (map[Method]*Metrics, error) {
	if app == nil {
		return nil, errors.New("sring: nil application")
	}
	methods := Methods()
	mets := make([]*Metrics, len(methods))
	errs := make([]error, len(methods))
	started := make([]bool, len(methods))
	ctxErr := par.ForEachContext(ctx, opt.Parallelism, len(methods), func(i int) {
		started[i] = true
		m := methods[i]
		d, err := SynthesizeContext(ctx, app, m, opt)
		if err != nil {
			errs[i] = fmt.Errorf("on %s: %w", app.Name, err)
			return
		}
		mets[i], errs[i] = d.Metrics()
	})
	if ctxErr != nil {
		for i := range methods {
			if !started[i] {
				errs[i] = fmt.Errorf("on %s: synthesis not started: %w", app.Name, ctxErr)
			}
		}
	}
	out := make(map[Method]*Metrics, len(methods))
	failed := make(MethodErrors)
	for i, m := range methods {
		switch {
		case errs[i] != nil:
			failed[m] = errs[i]
		default:
			out[m] = mets[i]
		}
	}
	if len(failed) > 0 {
		return out, failed
	}
	return out, nil
}
