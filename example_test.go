package sring_test

import (
	"fmt"
	"log"

	"sring"
)

// Synthesise the paper's running example (the MWD application) with SRing
// and inspect the headline metrics.
func ExampleSynthesize() {
	app := sring.MWD()
	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d sub-rings, %d wavelengths, max %d splitters per path\n",
		d.Method, m.NumRings, m.NumWavelengths, m.MaxSplitters)
	// Output:
	// SRing: 5 sub-rings, 2 wavelengths, max 4 splitters per path
}

// Compare all four methods on one benchmark — one Table I row group.
func ExampleEvaluate() {
	res, err := sring.Evaluate(sring.MWD(), sring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range sring.Methods() {
		fmt.Printf("%-8s #sp_w=%d\n", m, res[m].MaxSplitters)
	}
	// Output:
	// ORNoC    #sp_w=5
	// CTORing  #sp_w=5
	// XRing    #sp_w=6
	// SRing    #sp_w=4
}

// Define a custom application directly and synthesise a router for it.
func ExampleApplication() {
	app := &sring.Application{
		Name: "custom",
		Nodes: []sring.Node{
			{ID: 0, Name: "cpu"},
			{ID: 1, Name: "mem"},
			{ID: 2, Name: "dsp"},
		},
		Messages: []sring.Message{
			{Src: 0, Dst: 1, Bandwidth: 800},
			{Src: 1, Dst: 0, Bandwidth: 800},
			{Src: 0, Dst: 2, Bandwidth: 64},
		},
	}
	// Give the nodes placements (0.15 mm pitch grid).
	app.Nodes[1].Pos = app.Nodes[0].Pos.Add(0.15, 0)
	app.Nodes[2].Pos = app.Nodes[0].Pos.Add(0, 0.15)

	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d wavelengths on %d rings\n", m.NumWavelengths, m.NumRings)
	// Output:
	// 2 wavelengths on 2 rings
}
