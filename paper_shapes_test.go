package sring

import (
	"testing"
)

// This file asserts the qualitative results of the paper's evaluation
// (Sec. IV): not the absolute numbers — our substrate is a simulator with
// its own calibration — but who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records the measured values next to the
// paper's.

// allMetrics evaluates every benchmark with every method once (heuristic
// assignment; the MILP polish only sharpens results further).
func allMetrics(t *testing.T) map[string]map[Method]*Metrics {
	t.Helper()
	out := make(map[string]map[Method]*Metrics)
	for _, app := range Benchmarks() {
		res, err := Evaluate(app, Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[app.Name] = res
	}
	return out
}

// Paper Table I: "SRing has the least #sp_w among all design methods."
func TestShapeSRingFewestSplitters(t *testing.T) {
	for name, res := range allMetrics(t) {
		s := res[MethodSRing].MaxSplitters
		for _, m := range []Method{MethodORNoC, MethodCTORing, MethodXRing} {
			if s >= res[m].MaxSplitters {
				t.Errorf("%s: SRing #sp_w %d not below %s's %d", name, s, m, res[m].MaxSplitters)
			}
		}
	}
}

// Paper Table I: "SRing reduces the worst-case insertion loss with the
// losses in PDNs (il_w_all) by 14%-26% compared to the other three
// methods" — we assert strictly smaller everywhere with a meaningful gap.
func TestShapeSRingLowestILAll(t *testing.T) {
	for name, res := range allMetrics(t) {
		s := res[MethodSRing].WorstILAlldB
		for _, m := range []Method{MethodORNoC, MethodCTORing, MethodXRing} {
			o := res[m].WorstILAlldB
			if s >= o {
				t.Errorf("%s: SRing il_w_all %.2f not below %s's %.2f", name, s, m, o)
				continue
			}
			if red := (o - s) / o; red < 0.08 {
				t.Errorf("%s vs %s: il_w_all reduction only %.0f%%, want a meaningful gap", name, m, 100*red)
			}
		}
	}
}

// Paper Fig. 7: SRing has the minimum laser power in every case.
//
// Known deviation (EXPERIMENTS.md): at the highest communication density
// (8PM-44) our calibration lets CTORing edge out SRing, because SRing's
// single-waveguide sub-ring is forced to >= #M/2 wavelengths there; the
// paper's own data shows the advantage narrowing in the same direction.
// We therefore assert strict minimality everywhere except 8PM-44, where
// SRing must still beat ORNoC and XRing and stay within 1.3x of the best.
func TestShapeSRingLowestPower(t *testing.T) {
	for name, res := range allMetrics(t) {
		s := res[MethodSRing].TotalLaserPowerMW
		for _, m := range []Method{MethodORNoC, MethodCTORing, MethodXRing} {
			o := res[m].TotalLaserPowerMW
			if name == "8PM-44" && m == MethodCTORing {
				if s > 1.3*o {
					t.Errorf("8PM-44: SRing power %.3f more than 1.3x CTORing's %.3f", s, o)
				}
				continue
			}
			if s >= o {
				t.Errorf("%s: SRing power %.3f not below %s's %.3f", name, s, m, o)
			}
		}
	}
}

// Paper Sec. IV-A: for D26, the largest network, SRing decreases total
// laser power by more than 64% compared to ORNoC.
func TestShapeD26PowerReduction(t *testing.T) {
	res, err := Evaluate(D26(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res[MethodSRing].TotalLaserPowerMW
	o := res[MethodORNoC].TotalLaserPowerMW
	if red := 1 - s/o; red < 0.64 {
		t.Errorf("D26: power reduction vs ORNoC %.0f%%, want > 64%%", 100*red)
	}
}

// Paper Sec. IV-A: "ORNoC has the most wavelengths, and XRing has the
// fewest wavelengths." Among the three sequential-ring baselines this holds
// unconditionally; SRing's count is density-dependent (next test), so it is
// only required to stay below ORNoC's at low/medium density, where the
// paper's general statement applies.
func TestShapeWavelengthOrdering(t *testing.T) {
	lowMedium := map[string]bool{"MWD": true, "VOPD": true, "D26": true, "8PM-24": true}
	for name, res := range allMetrics(t) {
		orn := res[MethodORNoC].NumWavelengths
		xr := res[MethodXRing].NumWavelengths
		for _, m := range []Method{MethodCTORing, MethodXRing} {
			if res[m].NumWavelengths > orn {
				t.Errorf("%s: %s uses %d wavelengths, more than ORNoC's %d", name, m, res[m].NumWavelengths, orn)
			}
		}
		for _, m := range []Method{MethodORNoC, MethodCTORing, MethodSRing} {
			if res[m].NumWavelengths < xr {
				t.Errorf("%s: %s uses %d wavelengths, fewer than XRing's %d", name, m, res[m].NumWavelengths, xr)
			}
		}
		if lowMedium[name] && res[MethodSRing].NumWavelengths > orn {
			t.Errorf("%s: SRing uses %d wavelengths, more than ORNoC's %d", name, res[MethodSRing].NumWavelengths, orn)
		}
	}
}

// Paper Sec. IV-A: SRing's wavelength usage depends on communication
// density — minimal at low density (MWD, VOPD: at most CTORing's), above
// CTORing's at high density (MPEG, 8PM-44) because the MILP trades
// wavelengths for splitters.
func TestShapeWavelengthDensityCrossover(t *testing.T) {
	res := allMetrics(t)
	for _, low := range []string{"MWD", "VOPD"} {
		if res[low][MethodSRing].NumWavelengths > res[low][MethodCTORing].NumWavelengths {
			t.Errorf("%s (low density): SRing #wl %d above CTORing's %d",
				low, res[low][MethodSRing].NumWavelengths, res[low][MethodCTORing].NumWavelengths)
		}
	}
	for _, high := range []string{"MPEG", "8PM-44"} {
		if res[high][MethodSRing].NumWavelengths <= res[high][MethodCTORing].NumWavelengths {
			t.Errorf("%s (high density): SRing #wl %d not above CTORing's %d (splitter trade missing)",
				high, res[high][MethodSRing].NumWavelengths, res[high][MethodCTORing].NumWavelengths)
		}
	}
}

// Paper Table I: SRing's longest signal path never exceeds CTORing's, and
// for MWD it is dramatically shorter (78% vs ORNoC, 71% vs CTORing in the
// paper; we assert > 50%).
func TestShapeLongestPath(t *testing.T) {
	res := allMetrics(t)
	for name, r := range res {
		if r[MethodSRing].LongestPathMM > r[MethodCTORing].LongestPathMM+1e-9 {
			t.Errorf("%s: SRing L %.2f above CTORing's %.2f", name,
				r[MethodSRing].LongestPathMM, r[MethodCTORing].LongestPathMM)
		}
	}
	mwd := res["MWD"]
	if red := 1 - mwd[MethodSRing].LongestPathMM/mwd[MethodORNoC].LongestPathMM; red < 0.5 {
		t.Errorf("MWD: L reduction vs ORNoC %.0f%%, want > 50%%", 100*red)
	}
	if red := 1 - mwd[MethodSRing].LongestPathMM/mwd[MethodCTORing].LongestPathMM; red < 0.5 {
		t.Errorf("MWD: L reduction vs CTORing %.0f%%, want > 50%%", 100*red)
	}
}
