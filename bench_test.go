package sring

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. IV), plus ablations for the design choices called out in
// DESIGN.md §5. Quality numbers (wavelengths, losses, power) are attached
// to each benchmark via b.ReportMetric, so a -bench run regenerates the
// papers' data alongside the timings:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable2's ns/op IS the Table II runtime (SRing synthesis wall
// clock per benchmark).

import (
	"testing"
	"time"

	"sring/internal/cluster"
	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pdn"
	"sring/internal/randsol"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// BenchmarkTable1 regenerates Table I: every method on every benchmark,
// reporting the four table columns as metrics.
func BenchmarkTable1(b *testing.B) {
	for _, app := range Benchmarks() {
		for _, m := range Methods() {
			app, m := app, m
			b.Run(app.Name+"/"+string(m), func(b *testing.B) {
				var met *Metrics
				for i := 0; i < b.N; i++ {
					d, err := Synthesize(app, m, Options{})
					if err != nil {
						b.Fatal(err)
					}
					met, err = d.Metrics()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(met.LongestPathMM, "L_mm")
				b.ReportMetric(met.WorstILdB, "il_w_dB")
				b.ReportMetric(float64(met.MaxSplitters), "sp_w")
				b.ReportMetric(met.WorstILAlldB, "il_all_dB")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table II: SRing synthesis runtime per
// benchmark (the ns/op column is the paper's runtime entry).
func BenchmarkTable2(b *testing.B) {
	for _, app := range Benchmarks() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(app, MethodSRing, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSynthesize times the exact (MILP-enabled) SRing synthesis per
// benchmark application, reporting the solver's optimality gap and node
// count alongside the wall clock. CI runs a single iteration of the MWD
// subtest as a smoke check:
//
//	go test -run - -bench Synthesize/MWD -benchtime 1x
func BenchmarkSynthesize(b *testing.B) {
	for _, app := range Benchmarks() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			b.ReportAllocs()
			var d *Design
			for i := 0; i < b.N; i++ {
				var err error
				d, err = Synthesize(app, MethodSRing, Options{UseMILP: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			if st := d.AssignStats; st != nil && st.MILPRan {
				b.ReportMetric(st.MILPGap, "gap")
				b.ReportMetric(float64(st.MILPNodes), "nodes")
			}
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7: total laser power and wavelength usage
// per method per benchmark.
func BenchmarkFig7(b *testing.B) {
	for _, app := range Benchmarks() {
		for _, m := range Methods() {
			app, m := app, m
			b.Run(app.Name+"/"+string(m), func(b *testing.B) {
				var met *Metrics
				for i := 0; i < b.N; i++ {
					d, err := Synthesize(app, m, Options{})
					if err != nil {
						b.Fatal(err)
					}
					met, err = d.Metrics()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(met.TotalLaserPowerMW*1000, "laser_uW")
				b.ReportMetric(float64(met.NumWavelengths), "wl")
			})
		}
	}
}

// BenchmarkFig8 regenerates the Fig. 8 sampling study: per iteration, 1000
// random solutions of MWD / VOPD, reporting the feasibility rate. (The
// paper draws 100000 — run cmd/experiments -fig8 for the full study.)
func BenchmarkFig8(b *testing.B) {
	for _, name := range []string{"MWD", "VOPD"} {
		name := name
		b.Run(name, func(b *testing.B) {
			app, err := Benchmark(name)
			if err != nil {
				b.Fatal(err)
			}
			var rate float64
			for i := 0; i < b.N; i++ {
				st, err := randsol.Run(app, DefaultTech(), int64(i+1), 1000)
				if err != nil {
					b.Fatal(err)
				}
				rate = st.FeasibleRate()
			}
			b.ReportMetric(rate*100, "feasible_%")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// sringInfos synthesises SRing's rings/paths for an app and prices them,
// returning the assignment inputs — shared by the assignment ablations.
func sringInfos(b *testing.B, app *Application) []wavelength.PathInfo {
	b.Helper()
	res, err := cluster.Synthesize(app, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	paths := make([]ring.Path, len(app.Messages))
	ringByID := make(map[int]*ring.Ring)
	for _, r := range res.Rings {
		ringByID[r.ID] = r
	}
	for i, m := range app.Messages {
		p, err := ring.Route(app, ringByID[res.RingForMessage[i]], m)
		if err != nil {
			b.Fatal(err)
		}
		paths[i] = p
	}
	d, err := design.Finish(app, "SRing", res.Rings, paths, design.Options{PDN: pdn.Config{}})
	if err != nil {
		b.Fatal(err)
	}
	return d.Infos
}

// BenchmarkAblationAssignment compares the wavelength-assignment stages on
// MWD: plain DSATUR, the splitter-aware hill climb, and the MILP polish.
// The reported eq8 metric is the paper's Eq. 8 objective (lower is better).
func BenchmarkAblationAssignment(b *testing.B) {
	app := MWD()
	infos := sringInfos(b, app)
	w := wavelength.DefaultWeights()

	b.Run("dsatur", func(b *testing.B) {
		var obj wavelength.Objective
		for i := 0; i < b.N; i++ {
			a := wavelength.DSATUR(infos)
			obj = wavelength.Evaluate(infos, a, w)
		}
		b.ReportMetric(obj.Value, "eq8")
		b.ReportMetric(float64(obj.Splitters), "splitters")
	})
	b.Run("improve", func(b *testing.B) {
		var obj wavelength.Objective
		for i := 0; i < b.N; i++ {
			a := wavelength.Improve(infos, wavelength.DSATUR(infos), w)
			obj = wavelength.Evaluate(infos, a, w)
		}
		b.ReportMetric(obj.Value, "eq8")
		b.ReportMetric(float64(obj.Splitters), "splitters")
	})
	b.Run("milp", func(b *testing.B) {
		var obj wavelength.Objective
		for i := 0; i < b.N; i++ {
			a, _, err := wavelength.Assign(infos, wavelength.Options{
				Weights: w, UseMILP: true, MILPTimeLimit: 10 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			obj = wavelength.Evaluate(infos, a, w)
		}
		b.ReportMetric(obj.Value, "eq8")
		b.ReportMetric(float64(obj.Splitters), "splitters")
	})
}

// BenchmarkAblationAbsorption compares SRing's absorption-grown sub-rings
// against naive sequential connection of the same clusters: the metric is
// the longest signal path (mm).
func BenchmarkAblationAbsorption(b *testing.B) {
	app := VOPD()
	b.Run("absorption", func(b *testing.B) {
		var worst float64
		for i := 0; i < b.N; i++ {
			res, err := cluster.Synthesize(app, cluster.Options{})
			if err != nil {
				b.Fatal(err)
			}
			worst = longestPath(b, app, res)
		}
		b.ReportMetric(worst, "L_mm")
	})
	b.Run("sequential", func(b *testing.B) {
		// Same clusters, nodes connected in ID order (no absorption).
		var worst float64
		for i := 0; i < b.N; i++ {
			res, err := cluster.Synthesize(app, cluster.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range res.Rings {
				ordered := append([]netlist.NodeID(nil), r.Order...)
				for x := 1; x < len(ordered); x++ {
					for y := x; y > 0 && ordered[y] < ordered[y-1]; y-- {
						ordered[y], ordered[y-1] = ordered[y-1], ordered[y]
					}
				}
				r.Order = ordered
			}
			worst = longestPath(b, app, res)
		}
		b.ReportMetric(worst, "L_mm")
	})
}

func longestPath(b *testing.B, app *Application, res *cluster.Result) float64 {
	b.Helper()
	ringByID := make(map[int]*ring.Ring)
	for _, r := range res.Rings {
		ringByID[r.ID] = r
	}
	var worst float64
	for i, m := range app.Messages {
		l, err := ringByID[res.RingForMessage[i]].PathLength(app, m.Src, m.Dst)
		if err != nil {
			b.Fatal(err)
		}
		if l > worst {
			worst = l
		}
	}
	return worst
}

// BenchmarkAblationSearch compares the L_max binary search at different
// tree heights: a taller tree evaluates more candidates but finds a
// tighter bound.
func BenchmarkAblationSearch(b *testing.B) {
	app := D26()
	for _, h := range []int{1, 3, 6, 9} {
		h := h
		b.Run(map[int]string{1: "h1", 3: "h3", 6: "h6", 9: "h9"}[h], func(b *testing.B) {
			var lmax float64
			var evaluated int
			for i := 0; i < b.N; i++ {
				res, err := cluster.Synthesize(app, cluster.Options{TreeHeight: h})
				if err != nil {
					b.Fatal(err)
				}
				lmax = res.Lmax
				evaluated = res.Evaluated
			}
			b.ReportMetric(lmax, "Lmax_mm")
			b.ReportMetric(float64(evaluated), "evals")
		})
	}
}

// BenchmarkAblationSplitterObjective compares SRing's assignment with and
// without the splitter term of Eq. 8 (γ·Σ il_λ^max with L_sp active vs
// splitter-blind): the metric is the node-splitter count and total power.
func BenchmarkAblationSplitterObjective(b *testing.B) {
	app := MPEG()
	infos := sringInfos(b, app)
	run := func(b *testing.B, w wavelength.Weights) {
		var obj wavelength.Objective
		for i := 0; i < b.N; i++ {
			a := wavelength.Improve(infos, wavelength.DSATUR(infos), w)
			// Evaluate always under the true weights for comparability.
			obj = wavelength.Evaluate(infos, a, wavelength.DefaultWeights())
		}
		b.ReportMetric(float64(obj.Splitters), "splitters")
		b.ReportMetric(float64(obj.NumLambda), "wl")
		b.ReportMetric(obj.Value, "eq8")
	}
	b.Run("splitter-aware", func(b *testing.B) { run(b, wavelength.DefaultWeights()) })
	b.Run("splitter-blind", func(b *testing.B) {
		w := wavelength.DefaultWeights()
		w.SplitterStageDB = 0
		run(b, w)
	})
}

// BenchmarkSynthesizeNoRecorder is the telemetry regression guard: the
// default nil-Recorder synthesis must not pay for the instrumentation.
// Compare its ns/op and allocs/op against BenchmarkSynthesizeRecorder to
// see the observed-run overhead; TestNoRecorderPathZeroAlloc pins the
// nil path to zero allocations.
func BenchmarkSynthesizeNoRecorder(b *testing.B) {
	app := MWD()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(app, MethodSRing, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeRecorder is the observed-run counterpart.
func BenchmarkSynthesizeRecorder(b *testing.B) {
	app := MWD()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(app, MethodSRing, Options{Recorder: NewRecorder()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelOverheadMWD guards the speculation gate on the smallest
// application: exact (MILP) synthesis of MWD at -j 4 must never be more
// than 10% slower than the sequential run. Before the gate, handing
// microsecond-scale LP relaxations to a worker pool made MWD 1.3–1.6×
// slower at j=4 (BENCH_2026-08-06-warmstart.json); with small problems
// routed to the inline evaluator, the j=4 path does the same MILP work on
// the calling goroutine. Timing is best-of-rounds (the minimum is robust
// to scheduling noise, which only ever inflates a round). The j1/j4
// subtests report the two timings; the assertion runs after both.
func BenchmarkParallelOverheadMWD(b *testing.B) {
	app := MWD()
	measure := func(j int) time.Duration {
		const rounds, iters = 5, 8
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := Synthesize(app, MethodSRing, Options{UseMILP: true, Parallelism: j}); err != nil {
					b.Fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best / iters
	}
	var j1, j4 time.Duration
	b.Run("j1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j1 = measure(1)
		}
		b.ReportMetric(float64(j1.Nanoseconds()), "ns/synth")
	})
	b.Run("j4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j4 = measure(4)
		}
		b.ReportMetric(float64(j4.Nanoseconds()), "ns/synth")
	})
	if j1 > 0 && float64(j4) > 1.10*float64(j1) {
		b.Fatalf("MWD exact synthesis at j=4 is %.2fx j=1 (j1=%v j4=%v), want <= 1.10x", float64(j4)/float64(j1), j1, j4)
	}
}
