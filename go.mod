module sring

go 1.22
