package sring

import (
	"math"
	"testing"
	"time"
)

// Oracle cross-check for the decomposed wavelength assignment: on every
// paper benchmark, synthesising SRing with DecomposeAssign must reach the
// same Eq. 8 objective as the monolithic MILP. Single-component instances
// delegate to the monolithic solve verbatim; multi-component instances go
// through the per-component sweep plus the coordination model, and this
// test is what pins that path to the global optimum.
func TestDecomposedAssignMatchesMonolithicOracle(t *testing.T) {
	for _, app := range Benchmarks() {
		opt := Options{UseMILP: true, MILPTimeLimit: 8 * time.Second}
		mono, err := Synthesize(app, MethodSRing, opt)
		if err != nil {
			t.Fatalf("%s monolithic: %v", app.Name, err)
		}
		opt.DecomposeAssign = true
		dec, err := Synthesize(app, MethodSRing, opt)
		if err != nil {
			t.Fatalf("%s decomposed: %v", app.Name, err)
		}
		if dec.AssignStats.DecompComponents < 1 {
			t.Errorf("%s: DecompComponents = %d, want >= 1",
				app.Name, dec.AssignStats.DecompComponents)
		}
		multi := dec.AssignStats.DecompComponents > 1
		// Only compare proven optima: on instances where a budget or the
		// size gate stopped the exact solve, neither side is an oracle.
		monoExact := mono.AssignStats.MILPRan && mono.AssignStats.MILPExact
		decExact := dec.AssignStats.DecompExact || (!multi && dec.AssignStats.MILPExact)
		if !monoExact || !decExact {
			t.Logf("%s: skipped oracle comparison (monoExact=%v decExact=%v components=%d)",
				app.Name, monoExact, decExact, dec.AssignStats.DecompComponents)
			continue
		}
		mv := mono.AssignStats.Final.Value
		dv := dec.AssignStats.Final.Value
		if math.Abs(mv-dv) > 1e-6 {
			t.Errorf("%s: decomposed objective %.6f != monolithic optimum %.6f (components %d)",
				app.Name, dv, mv, dec.AssignStats.DecompComponents)
		}
		if !multi {
			// Delegation must be bit-identical, not just value-equal.
			if mono.Assignment.NumLambda != dec.Assignment.NumLambda {
				t.Errorf("%s: single-component delegation changed wavelength count: %d vs %d",
					app.Name, dec.Assignment.NumLambda, mono.Assignment.NumLambda)
			}
			for i := range mono.Assignment.Lambda {
				if mono.Assignment.Lambda[i] != dec.Assignment.Lambda[i] {
					t.Errorf("%s: single-component delegation changed path %d's wavelength", app.Name, i)
					break
				}
			}
		}
	}
}
