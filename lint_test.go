package sring

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The pipeline's determinism guarantee — same inputs, bit-identical designs
// — forbids wall-clock reads and unseeded randomness inside the synthesis
// code. This lint walks every non-test Go file and rejects new time.Now or
// math/rand uses outside the audited allowlists below. Extend an allowlist
// only for code that provably cannot influence a design (telemetry,
// deadlines, CLI reporting, seeded generators).

// timeNowAllowed lists the files (and directory prefixes) where time.Now is
// legitimate: CLI reporting, wall-clock deadlines inside the solvers, and
// telemetry timestamps. None of these feed design content.
var timeNowAllowed = []string{
	"cmd/",                          // CLI timing and report headers
	"internal/cluster/cluster.go",   // probe-latency telemetry timestamps
	"internal/cluster/parallel.go",  // probe-latency telemetry timestamps
	"internal/lp/bounded.go",        // pivot-loop deadline checks
	"internal/lp/lp.go",             // pivot-loop deadline checks
	"internal/lp/sparse.go",         // refactorisation-latency telemetry
	"internal/milp/cuts.go",         // cut-round deadline checks
	"internal/milp/milp.go",         // branch-and-bound time limit
	"internal/milp/relax.go",        // relaxation deadline checks
	"internal/wavelength/cpcheck/",  // CP search deadline checks
	"internal/wavelength/oracle.go", // CP oracle wall-clock budget
	"internal/obs/obs.go",           // span timestamps
	"internal/par/par.go",           // task wait/run telemetry timestamps
	"internal/pipeline/pipeline.go", // SynthesisTime measurement
	"internal/serve/",               // request-latency telemetry and progress polling
}

// mathRandAllowed lists the files where math/rand is legitimate: all are
// deterministic, explicitly-seeded generators.
var mathRandAllowed = []string{
	"internal/floorplan/floorplan.go", // seeded simulated annealing
	"internal/netlist/generate.go",    // seeded random applications
	"internal/randsol/randsol.go",     // seeded random-restart baseline
	"internal/sim/sim.go",             // seeded traffic generator
}

func allowed(rel string, list []string) bool {
	for _, a := range list {
		if rel == a || (strings.HasSuffix(a, "/") && strings.HasPrefix(rel, a)) {
			return true
		}
	}
	return false
}

func TestDeterminismLint(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		text := string(src)
		if strings.Contains(text, "time.Now(") && !allowed(rel, timeNowAllowed) {
			t.Errorf("%s: time.Now outside the determinism allowlist — synthesis code must not read the wall clock", rel)
		}
		if strings.Contains(text, `"math/rand"`) && !allowed(rel, mathRandAllowed) {
			t.Errorf("%s: math/rand outside the determinism allowlist — synthesis code must use explicitly seeded generators", rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
