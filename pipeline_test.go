package sring

import (
	"testing"
)

// Randomised whole-pipeline invariants: for arbitrary valid applications,
// every method must produce a validating design whose metrics satisfy the
// structural relations of the model. This is the repository's broadest
// failure-surface test.
func TestPipelineInvariantsRandomApps(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := 4 + int(seed)%8
		m := n + int(seed*13)%(2*n)
		app, err := RandomApplication(n, m, seed)
		if err != nil {
			t.Fatal(err)
		}
		ctoSp := -1
		sringSp := -1
		for _, method := range Methods() {
			d, err := Synthesize(app, method, Options{})
			if err != nil {
				t.Fatalf("seed %d %s/%s: %v", seed, app.Name, method, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("seed %d %s/%s: invalid design: %v", seed, app.Name, method, err)
			}
			met, err := d.Metrics()
			if err != nil {
				t.Fatal(err)
			}
			if met.WorstILAlldB < met.WorstILdB {
				t.Errorf("seed %d %s/%s: il_all %.3f below il_w %.3f",
					seed, app.Name, method, met.WorstILAlldB, met.WorstILdB)
			}
			if met.NumWavelengths < 1 || len(met.PerLambdaWorstILdB) != met.NumWavelengths {
				t.Errorf("seed %d %s/%s: wavelength bookkeeping broken", seed, app.Name, method)
			}
			if met.TotalLaserPowerMW <= 0 {
				t.Errorf("seed %d %s/%s: non-positive power", seed, app.Name, method)
			}
			if met.MaxSplitters < d.PDN.TreeStages {
				t.Errorf("seed %d %s/%s: #sp_w %d below tree depth %d",
					seed, app.Name, method, met.MaxSplitters, d.PDN.TreeStages)
			}
			if met.LongestPathMM <= 0 {
				t.Errorf("seed %d %s/%s: degenerate longest path", seed, app.Name, method)
			}
			switch method {
			case MethodCTORing:
				ctoSp = met.MaxSplitters
			case MethodSRing:
				sringSp = met.MaxSplitters
			}
		}
		// SRing never passes more splitters than CTORing: its PDN only
		// adds the node splitter where wavelengths actually share, while
		// CTORing's convention always pays it.
		if sringSp > ctoSp {
			t.Errorf("seed %d %s: SRing #sp_w %d above CTORing's %d",
				seed, app.Name, sringSp, ctoSp)
		}
	}
}
