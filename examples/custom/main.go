// Custom: the full adoption path for your own design — define a bare task
// graph in code (no placement), let the library place it, synthesise an
// SRing router, and export the layout (SVG) and the complete design (JSON)
// for downstream tools.
//
// Usage: custom [output-dir]   (default: a temp directory)
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sring"
	"sring/internal/design"
	"sring/internal/render"
)

func main() {
	outDir := ""
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	} else {
		var err error
		outDir, err = os.MkdirTemp("", "sring-custom-*")
		if err != nil {
			log.Fatal(err)
		}
	}

	// A small accelerator SoC as a bare task graph: no coordinates.
	app := &sring.Application{
		Name: "accel-soc",
		Nodes: []sring.Node{
			{ID: 0, Name: "cpu"},
			{ID: 1, Name: "npu0"},
			{ID: 2, Name: "npu1"},
			{ID: 3, Name: "sram0"},
			{ID: 4, Name: "sram1"},
			{ID: 5, Name: "dram"},
			{ID: 6, Name: "dma"},
			{ID: 7, Name: "io"},
		},
		Messages: []sring.Message{
			{Src: 0, Dst: 5, Bandwidth: 640}, {Src: 5, Dst: 0, Bandwidth: 640},
			{Src: 1, Dst: 3, Bandwidth: 800}, {Src: 3, Dst: 1, Bandwidth: 800},
			{Src: 2, Dst: 4, Bandwidth: 800}, {Src: 4, Dst: 2, Bandwidth: 800},
			{Src: 6, Dst: 5, Bandwidth: 320}, {Src: 5, Dst: 6, Bandwidth: 320},
			{Src: 6, Dst: 7, Bandwidth: 64}, {Src: 0, Dst: 1, Bandwidth: 96},
			{Src: 0, Dst: 2, Bandwidth: 96},
		},
	}

	// Place (simulated annealing) + synthesise (clustering + MILP).
	d, err := sring.PlaceAndSynthesize(app, sring.MethodSRing, sring.Options{UseMILP: true})
	if err != nil {
		log.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised %s for %s:\n", d.Method, d.App)
	fmt.Printf("  %d sub-rings, %d wavelengths, %.4f mW laser power\n",
		m.NumRings, m.NumWavelengths, m.TotalLaserPowerMW)
	fmt.Println("\nplacement chosen by the annealer:")
	for _, n := range d.App.Nodes {
		fmt.Printf("  %-6s at %v\n", n.Name, n.Pos)
	}

	svgPath := filepath.Join(outDir, "accel-soc.svg")
	f, err := os.Create(svgPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := render.SVG(f, d); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	jsonPath := filepath.Join(outDir, "accel-soc.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := design.EncodeJSON(jf, d); err != nil {
		log.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s and %s\n", svgPath, jsonPath)
}
