// Design-space exploration (the paper's Sec. IV-B story): draw random
// ring-router solutions — random clustering, sequential sub-rings, random
// wavelengths — and see how rarely they are even feasible, and how far the
// best of them trails SRing's solution.
//
// Usage: designspace [benchmark] [samples]   (default MWD 20000)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"sring"
	"sring/internal/randsol"
	"sring/internal/report"
	"sring/internal/ring"
)

func main() {
	name := "MWD"
	samples := 20000
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		n, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad sample count %q: %v", os.Args[2], err)
		}
		samples = n
	}

	app, err := sring.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	tech := sring.DefaultTech()

	st, err := randsol.Run(app, tech, 1, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d of %d random solutions feasible (%.2f%%)\n\n",
		app.Name, st.Feasible, st.Total, 100*st.FeasibleRate())

	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{UseMILP: true})
	if err != nil {
		log.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	paths := make([]ring.Path, len(d.Infos))
	for i, pi := range d.Infos {
		paths[i] = pi.Path
	}
	sringIL := randsol.ReducedWorstIL(app, tech, d.Rings, paths)

	fmt.Print(report.Histogram("#wl", report.IntHistogramValues(st.WavelengthCounts), float64(m.NumWavelengths), 10))
	fmt.Println()
	fmt.Print(report.Histogram("il_w [dB]", st.WorstILs, sringIL, 10))
	fmt.Println()
	fmt.Print(report.Summary("#wl", float64(m.NumWavelengths), report.IntHistogramValues(st.WavelengthCounts)))
	fmt.Print(report.Summary("il_w", sringIL, st.WorstILs))
}
