// Traffic: run packet-level simulations on a synthesised router — the
// dynamic counterpart of the paper's static power analysis. Shows latency
// under increasing load and the laser energy per delivered bit for each
// method.
//
// Usage: traffic [benchmark]   (default VOPD)
package main

import (
	"fmt"
	"log"
	"os"

	"sring"
	"sring/internal/sim"
)

func main() {
	name := "VOPD"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	app, err := sring.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("packet-level simulation on %s (10 Gb/s per wavelength, 512-bit packets)\n\n", app)

	// Latency vs load for the SRing design.
	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SRing latency vs offered load:")
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res, err := sim.Run(d, sim.Config{Seed: 11, Load: load})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  load %.1f: %5d packets, avg %7.2f ns, worst %8.2f ns, %6.1f Gb/s\n",
			load, res.PacketsDelivered, res.AvgLatencyNS, res.WorstLatencyNS, res.ThroughputGbps)
	}

	// Energy per bit across methods at a fixed load.
	fmt.Println("\nlaser energy per delivered bit (load 0.5):")
	for _, m := range sring.Methods() {
		dm, err := sring.Synthesize(app, m, sring.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(dm, sim.Config{Seed: 11, Load: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %.5f pJ/bit (collisions: %d)\n", m, res.LaserEnergyPJPerBit, res.Collisions)
	}
}
