// Quickstart: synthesise an SRing router for a builtin benchmark and print
// its headline metrics. This is the smallest useful program against the
// public API.
package main

import (
	"fmt"
	"log"

	"sring"
)

func main() {
	// The MWD application: 12 nodes, 13 messages (paper Fig. 2).
	app := sring.MWD()

	// Synthesise with the paper's method: sub-ring clustering + MILP
	// wavelength assignment.
	d, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{UseMILP: true})
	if err != nil {
		log.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n", d.Method, app)
	fmt.Printf("  sub-rings:          %d\n", m.NumRings)
	fmt.Printf("  longest path:       %.3f mm\n", m.LongestPathMM)
	fmt.Printf("  wavelengths:        %d\n", m.NumWavelengths)
	fmt.Printf("  splitters per path: <= %d\n", m.MaxSplitters)
	fmt.Printf("  total laser power:  %.4f mW\n", m.TotalLaserPowerMW)
}
