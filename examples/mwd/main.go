// The paper's running example (Figs. 2 and 6): customise a ring router for
// the multi-window display (MWD) application and inspect the resulting
// sub-ring structure — which nodes were clustered together, how each
// sub-ring is ordered and directed, where each message travels, and what
// the customisation saves against the classical sequential ring.
package main

import (
	"fmt"
	"log"

	"sring"
)

func main() {
	app := sring.MWD()

	srd, err := sring.Synthesize(app, sring.MethodSRing, sring.Options{UseMILP: true})
	if err != nil {
		log.Fatal(err)
	}
	classical, err := sring.Synthesize(app, sring.MethodORNoC, sring.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MWD application: %d nodes, %d messages\n\n", app.N(), app.M())
	fmt.Println("node placement (mm):")
	for _, n := range app.Nodes {
		fmt.Printf("  node %2d at %v\n", n.ID+1, n.Pos) // paper numbers nodes from 1
	}

	fmt.Println("\nSRing sub-rings (paper Fig. 2(e)):")
	for _, r := range srd.Rings {
		fmt.Printf("  %s\n", r)
	}

	fmt.Println("\nsignal paths:")
	for i, pi := range srd.Infos {
		fmt.Printf("  node %2d -> node %2d  on ring %d, λ%d, %.3f mm\n",
			pi.Path.Msg.Src+1, pi.Path.Msg.Dst+1, pi.Path.RingID,
			srd.Assignment.Lambda[i], pi.Path.Length)
	}

	ms, err := srd.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	mc, err := classical.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncustomisation vs classical sequential ring (ORNoC):")
	fmt.Printf("  longest path:   %.2f mm -> %.2f mm (%.0f%% shorter)\n",
		mc.LongestPathMM, ms.LongestPathMM, 100*(1-ms.LongestPathMM/mc.LongestPathMM))
	fmt.Printf("  splitters/path: %d -> %d\n", mc.MaxSplitters, ms.MaxSplitters)
	fmt.Printf("  il_w_all:       %.2f dB -> %.2f dB\n", mc.WorstILAlldB, ms.WorstILAlldB)
	fmt.Printf("  laser power:    %.4f mW -> %.4f mW (%.0f%% less)\n",
		mc.TotalLaserPowerMW, ms.TotalLaserPowerMW, 100*(1-ms.TotalLaserPowerMW/mc.TotalLaserPowerMW))
	fmt.Printf("\nlike the paper's Fig. 2: node 3's single sender needs no splitter,\n")
	fmt.Printf("and the sub-ring carrying nodes 4 and 11 avoids the half-perimeter detour.\n")
}
