// Compare all four synthesis methods on one benchmark — a single Table I
// row group plus the Fig. 7 power bars.
//
// Usage: compare [benchmark]   (default D26)
package main

import (
	"fmt"
	"log"
	"os"

	"sring"
	"sring/internal/report"
)

func main() {
	name := "D26"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	app, err := sring.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}

	var rows []report.Row
	for _, m := range sring.Methods() {
		d, err := sring.Synthesize(app, m, sring.Options{})
		if err != nil {
			log.Fatal(err)
		}
		met, err := d.Metrics()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, report.Row{
			Benchmark:         app.Name,
			Method:            string(m),
			LongestPathMM:     met.LongestPathMM,
			WorstILdB:         met.WorstILdB,
			MaxSplitters:      met.MaxSplitters,
			WorstILAlldB:      met.WorstILAlldB,
			NumWavelengths:    met.NumWavelengths,
			TotalLaserPowerMW: met.TotalLaserPowerMW,
		})
	}

	fmt.Printf("method comparison on %s\n\n", app)
	fmt.Print(report.Table1(rows))
	fmt.Println()
	fmt.Print(report.Fig7(rows))

	best := rows[0]
	for _, r := range rows[1:] {
		if r.TotalLaserPowerMW < best.TotalLaserPowerMW {
			best = r
		}
	}
	fmt.Printf("\nlowest total laser power: %s (%.4f mW)\n", best.Method, best.TotalLaserPowerMW)
}
