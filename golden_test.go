package sring

import (
	"math"
	"testing"
)

// Golden regression values for Table I under the default calibration
// (DESIGN.md §2). Every synthesis is deterministic, so these must
// reproduce exactly; a change here means either an intentional
// recalibration (update EXPERIMENTS.md alongside) or an accidental
// behaviour change.
func TestGoldenTable1(t *testing.T) {
	type row struct {
		l, ilw float64
		spw    int
		ilAll  float64
		wl     int
	}
	golden := map[string]map[Method]row{
		"MWD": {
			MethodORNoC:   {3.15, 4.11, 5, 20.73, 5},
			MethodCTORing: {1.35, 3.45, 5, 20.13, 3},
			MethodXRing:   {1.20, 3.37, 6, 23.21, 2},
			MethodSRing:   {0.45, 3.14, 4, 16.50, 2},
		},
		"D26": {
			MethodORNoC:   {9.80, 7.03, 6, 27.08, 28},
			MethodCTORing: {4.60, 4.88, 6, 24.86, 10},
			MethodXRing:   {2.20, 3.84, 7, 27.31, 6},
			MethodSRing:   {4.20, 4.63, 5, 21.46, 16},
		},
		"8PM-44": {
			MethodORNoC:   {1.00, 3.94, 4, 17.25, 16},
			MethodCTORing: {0.70, 3.62, 4, 16.93, 9},
			MethodXRing:   {0.70, 3.40, 5, 19.95, 8},
			MethodSRing:   {0.70, 3.86, 3, 13.87, 22},
		},
	}
	for bench, methods := range golden {
		app, err := Benchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		for m, want := range methods {
			d, err := Synthesize(app, m, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, m, err)
			}
			met, err := d.Metrics()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(met.LongestPathMM-want.l) > 0.005 {
				t.Errorf("%s/%s: L = %.3f, golden %.2f", bench, m, met.LongestPathMM, want.l)
			}
			if math.Abs(met.WorstILdB-want.ilw) > 0.005 {
				t.Errorf("%s/%s: il_w = %.3f, golden %.2f", bench, m, met.WorstILdB, want.ilw)
			}
			if met.MaxSplitters != want.spw {
				t.Errorf("%s/%s: #sp_w = %d, golden %d", bench, m, met.MaxSplitters, want.spw)
			}
			if math.Abs(met.WorstILAlldB-want.ilAll) > 0.005 {
				t.Errorf("%s/%s: il_all = %.3f, golden %.2f", bench, m, met.WorstILAlldB, want.ilAll)
			}
			if met.NumWavelengths != want.wl {
				t.Errorf("%s/%s: #wl = %d, golden %d", bench, m, met.NumWavelengths, want.wl)
			}
		}
	}
}

// The extended benchmark suite must synthesise cleanly with every method
// and keep SRing's headline structural advantages (fewest splitters,
// lowest il_w_all) in the low-density regime it targets.
func TestExtendedBenchmarks(t *testing.T) {
	for _, app := range ExtendedBenchmarks() {
		res, err := Evaluate(app, Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		s := res[MethodSRing]
		for _, m := range []Method{MethodORNoC, MethodCTORing, MethodXRing} {
			if s.MaxSplitters >= res[m].MaxSplitters {
				t.Errorf("%s: SRing #sp_w %d not below %s's %d",
					app.Name, s.MaxSplitters, m, res[m].MaxSplitters)
			}
			if s.WorstILAlldB >= res[m].WorstILAlldB {
				t.Errorf("%s: SRing il_all %.2f not below %s's %.2f",
					app.Name, s.WorstILAlldB, m, res[m].WorstILAlldB)
			}
		}
	}
}
