// Package crosstalk performs worst-case first-order crosstalk analysis of
// synthesised WRONoC ring-router designs.
//
// The SRing paper (Sec. II-B) notes that crosstalk noise is far less
// critical in ring routers than in crossbar routers because ring routers
// need no optical switching elements and no waveguide crossings on the
// data path; this package quantifies that claim, following the worst-case
// methodology of the paper's references [16] (Le Beux et al.) and [24]
// (Truppel et al.), restricted to first order:
//
//   - The victim signal arrives at its receiver with the laser power of its
//     wavelength minus its worst-case insertion loss.
//   - Every other signal riding the same waveguide into the victim's
//     receiver node (a different wavelength, by construction) leaks into
//     the victim's drop port with a finite suppression (default 25 dB);
//     conservatively, aggressors are charged at their launch power with no
//     en-route attenuation.
//   - SNR is the ratio of the victim's arriving power to the sum of the
//     leaked aggressor powers.
package crosstalk

import (
	"fmt"
	"math"

	"sring/internal/design"
)

// Options parameterises the analysis.
type Options struct {
	// DropSuppressionDB is the crosstalk suppression of a drop MRR against
	// off-resonance channels. Zero means 25 dB.
	DropSuppressionDB float64
}

// PathReport is the analysis of one signal path.
type PathReport struct {
	// SignalDBm is the victim's power at its photodetector.
	SignalDBm float64
	// NoiseDBm is the aggregate first-order crosstalk power, -Inf if the
	// path has no aggressors.
	NoiseDBm float64
	// SNRdB = SignalDBm - NoiseDBm (+Inf without aggressors).
	SNRdB float64
	// Aggressors counts the co-propagating signals leaking into the
	// victim's receiver.
	Aggressors int
}

// Report is the whole-design analysis.
type Report struct {
	PerPath []PathReport
	// WorstSNRdB is the minimum SNR over all paths (+Inf if no path has
	// any aggressor).
	WorstSNRdB float64
	// TotalAggressorPairs counts (victim, aggressor) pairs.
	TotalAggressorPairs int
}

// Analyze computes the report for a finished design.
func Analyze(d *design.Design, opt Options) (*Report, error) {
	supp := opt.DropSuppressionDB
	if supp == 0 {
		supp = 25
	}
	if supp < 0 {
		return nil, fmt.Errorf("crosstalk: negative suppression %v dB", supp)
	}
	met, err := d.Metrics()
	if err != nil {
		return nil, err
	}

	// Per wavelength launch budget: laser power covers that wavelength's
	// worst-case loss.
	laserDBm := make([]float64, d.Assignment.NumLambda)
	for l, il := range met.PerLambdaWorstILdB {
		laserDBm[l] = d.Tech.DetectorSensitivityDBm + il
	}

	rep := &Report{
		PerPath:    make([]PathReport, len(d.Infos)),
		WorstSNRdB: math.Inf(1),
	}
	for i, victim := range d.Infos {
		feed, err := d.PDN.FeedLossDB(victim.SenderNode(), d.Tech)
		if err != nil {
			return nil, err
		}
		signal := laserDBm[d.Assignment.Lambda[i]] - (victim.LossDB + feed)

		// The segment entering the victim's receiver: on a directed ring,
		// every signal reaching or passing the receiver node traverses it.
		entry := victim.Path.Segs[len(victim.Path.Segs)-1]

		noiseLin := 0.0
		aggressors := 0
		for j, agg := range d.Infos {
			if j == i || agg.Path.RingID != victim.Path.RingID {
				continue
			}
			onEntry := false
			for _, s := range agg.Path.Segs {
				if s == entry {
					onEntry = true
					break
				}
			}
			if !onEntry {
				continue
			}
			aggressors++
			// Conservative: the aggressor at its launch power (laser minus
			// its PDN feed, modulator and input coupling only).
			aggFeed, err := d.PDN.FeedLossDB(agg.SenderNode(), d.Tech)
			if err != nil {
				return nil, err
			}
			launch := laserDBm[d.Assignment.Lambda[j]] - aggFeed -
				d.Tech.ModulatorDB - d.Tech.DropDB
			leak := launch - supp
			noiseLin += math.Pow(10, leak/10)
		}
		pr := PathReport{SignalDBm: signal, Aggressors: aggressors}
		if aggressors == 0 {
			pr.NoiseDBm = math.Inf(-1)
			pr.SNRdB = math.Inf(1)
		} else {
			pr.NoiseDBm = 10 * math.Log10(noiseLin)
			pr.SNRdB = signal - pr.NoiseDBm
		}
		rep.PerPath[i] = pr
		rep.TotalAggressorPairs += aggressors
		if pr.SNRdB < rep.WorstSNRdB {
			rep.WorstSNRdB = pr.SNRdB
		}
	}
	return rep, nil
}
