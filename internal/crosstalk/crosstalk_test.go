package crosstalk

import (
	"context"
	"math"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/design"
	"sring/internal/netlist"
	_ "sring/internal/ornoc"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
)

func lineDesign(t *testing.T, msgs []netlist.Message) *design.Design {
	t.Helper()
	app := &netlist.Application{
		Name: "line",
		Nodes: []netlist.Node{
			{ID: 0, Pos: netlist.MWD().Nodes[0].Pos},
			{ID: 1, Pos: netlist.MWD().Nodes[1].Pos},
			{ID: 2, Pos: netlist.MWD().Nodes[2].Pos},
			{ID: 3, Pos: netlist.MWD().Nodes[3].Pos},
		},
		Messages: msgs,
	}
	r := &ring.Ring{ID: 0, Kind: ring.Base, Order: []netlist.NodeID{0, 1, 2, 3}}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	d, err := design.Finish(app, "test", []*ring.Ring{r}, paths, design.Options{PDN: pdn.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNoAggressorsInfiniteSNR(t *testing.T) {
	// Two disjoint single-hop messages: no shared entry segments.
	d := lineDesign(t, []netlist.Message{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	rep, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rep.WorstSNRdB, 1) {
		t.Errorf("WorstSNR = %v, want +Inf", rep.WorstSNRdB)
	}
	if rep.TotalAggressorPairs != 0 {
		t.Errorf("aggressor pairs = %d, want 0", rep.TotalAggressorPairs)
	}
}

func TestSharedEntryCreatesAggressors(t *testing.T) {
	// 0->2 and 1->2 share the entry segment into node 2; 0->2 also passes
	// node 1 where 1->2 couples on. Both see one aggressor each.
	d := lineDesign(t, []netlist.Message{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	rep, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range rep.PerPath {
		if pr.Aggressors != 1 {
			t.Errorf("path %d: %d aggressors, want 1", i, pr.Aggressors)
		}
		if math.IsInf(pr.SNRdB, 1) || pr.SNRdB <= 0 {
			t.Errorf("path %d: SNR = %v, want finite positive", i, pr.SNRdB)
		}
	}
	if math.IsInf(rep.WorstSNRdB, 1) {
		t.Error("worst SNR should be finite")
	}
}

func TestSuppressionImprovesSNR(t *testing.T) {
	d := lineDesign(t, []netlist.Message{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	low, err := Analyze(d, Options{DropSuppressionDB: 20})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Analyze(d, Options{DropSuppressionDB: 40})
	if err != nil {
		t.Fatal(err)
	}
	if high.WorstSNRdB <= low.WorstSNRdB {
		t.Errorf("more suppression should improve SNR: %v vs %v", high.WorstSNRdB, low.WorstSNRdB)
	}
	// 20 dB more suppression with a single aggressor: exactly +20 dB SNR.
	if math.Abs((high.WorstSNRdB-low.WorstSNRdB)-20) > 1e-9 {
		t.Errorf("delta = %v, want 20", high.WorstSNRdB-low.WorstSNRdB)
	}
}

func TestNegativeSuppressionRejected(t *testing.T) {
	d := lineDesign(t, []netlist.Message{{Src: 0, Dst: 1}})
	if _, err := Analyze(d, Options{DropSuppressionDB: -1}); err == nil {
		t.Error("negative suppression accepted")
	}
}

// The paper's claim, quantified: ring-router designs keep worst-case SNR
// comfortably positive on all benchmarks (crosstalk "not a critical
// concern", Sec. II-B).
func TestBenchmarksKeepPositiveSNR(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		d, err := pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.WorstSNRdB < 3 {
			t.Errorf("%s: worst-case SNR %.1f dB, want >= 3 dB", app.Name, rep.WorstSNRdB)
		}
	}
}

func TestMoreTrafficMoreAggressors(t *testing.T) {
	// ORNoC on 8PM-44 concentrates far more signals per waveguide than on
	// 8PM-24: aggressor pairs must grow.
	d24, err := pipeline.Synthesize(context.Background(), netlist.PM24(), "ORNoC", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d44, err := pipeline.Synthesize(context.Background(), netlist.PM44(), "ORNoC", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r24, err := Analyze(d24, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r44, err := Analyze(d44, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r44.TotalAggressorPairs <= r24.TotalAggressorPairs {
		t.Errorf("aggressor pairs: 8PM-44 %d <= 8PM-24 %d",
			r44.TotalAggressorPairs, r24.TotalAggressorPairs)
	}
}
