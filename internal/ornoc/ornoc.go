// Package ornoc implements the ORNoC baseline (Le Beux et al., DATE'11):
// a conventional sequential dual-ring router whose wavelengths are assigned
// by first-fit reuse — each message takes the first (wavelength, ring) slot
// whose arc is completely free, scanning wavelengths from zero and the
// clockwise ring before the counter-clockwise one.
//
// First-fit reuse is ORNoC's defining mechanism. Relative to CTORing's
// optimised assignment it tends to use more wavelengths and to route
// messages the long way around (whenever the long arc of a low wavelength
// happens to be free), which is why the paper's Table I shows ORNoC with
// the largest longest-path lengths and wavelength counts.
package ornoc

import (
	"context"
	"fmt"

	"sring/internal/baseline"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

func init() {
	pipeline.Register("ORNoC", Construct)
}

// Construct is the ORNoC pipeline constructor: the conventional dual ring
// with the method's own first-fit wavelength assignment carried as a
// preset, plus the full-complement PDN/MRR conventions of Sec. II-C.
// ORNoC's construction is purely combinatorial — it never consults the
// technology or the optimiser, so ctx is only honoured by the stages
// downstream.
func Construct(_ context.Context, app *netlist.Application, _ pipeline.Options, _ *obs.Span) (*pipeline.Construction, error) {
	cw, ccw, err := baseline.DualRing(app)
	if err != nil {
		return nil, fmt.Errorf("ornoc: %w", err)
	}
	rings := []*ring.Ring{cw, ccw}

	// First-fit placement: occupancy[ring][lambda] marks used segments.
	type slot map[int]bool
	occupancy := map[int][]slot{cw.ID: {}, ccw.ID: {}}
	free := func(r *ring.Ring, lambda int, segs []int) bool {
		slots := occupancy[r.ID]
		if lambda >= len(slots) {
			return true
		}
		for _, s := range segs {
			if slots[lambda][s] {
				return false
			}
		}
		return true
	}
	reserve := func(r *ring.Ring, lambda int, segs []int) {
		for len(occupancy[r.ID]) <= lambda {
			occupancy[r.ID] = append(occupancy[r.ID], slot{})
		}
		for _, s := range segs {
			occupancy[r.ID][lambda][s] = true
		}
	}

	paths := make([]ring.Path, 0, len(app.Messages))
	lambdas := make([]int, 0, len(app.Messages))
	maxLambda := 0
	for i, m := range app.Messages {
		// ORNoC balances signals across the two rings without optimising
		// for path length or wavelength reuse: message i rides ring i mod 2
		// and takes the first wavelength whose arc is free there.
		r := rings[i%2]
		p, err := ring.Route(app, r, m)
		if err != nil {
			return nil, fmt.Errorf("ornoc: %w", err)
		}
		for lambda := 0; ; lambda++ {
			if free(r, lambda, p.Segs) {
				reserve(r, lambda, p.Segs)
				paths = append(paths, p)
				lambdas = append(lambdas, lambda)
				if lambda > maxLambda {
					maxLambda = lambda
				}
				break
			}
		}
	}

	return &pipeline.Construction{
		Rings:             rings,
		Paths:             paths,
		Preset:            &wavelength.Assignment{Lambda: lambdas, NumLambda: maxLambda + 1},
		PDNStyle:          pdn.StyleShared,
		ForceNodeSplitter: true,
		PDNAllTwoSender:   true,
		MRRFullComplement: true,
		Weights:           wavelength.DefaultWeights(),
	}, nil
}
