// Package ornoc implements the ORNoC baseline (Le Beux et al., DATE'11):
// a conventional sequential dual-ring router whose wavelengths are assigned
// by first-fit reuse — each message takes the first (wavelength, ring) slot
// whose arc is completely free, scanning wavelengths from zero and the
// clockwise ring before the counter-clockwise one.
//
// First-fit reuse is ORNoC's defining mechanism. Relative to CTORing's
// optimised assignment it tends to use more wavelengths and to route
// messages the long way around (whenever the long arc of a low wavelength
// happens to be free), which is why the paper's Table I shows ORNoC with
// the largest longest-path lengths and wavelength counts.
package ornoc

import (
	"fmt"

	"sring/internal/baseline"
	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// Options configures the synthesis.
type Options struct {
	// Design carries the shared downstream configuration. PDN settings
	// and the preset assignment are overwritten by the method.
	Design design.Options
}

// Synthesize builds the ORNoC design for the application.
func Synthesize(app *netlist.Application, opt Options) (*design.Design, error) {
	cw, ccw, err := baseline.DualRing(app)
	if err != nil {
		return nil, fmt.Errorf("ornoc: %w", err)
	}
	rings := []*ring.Ring{cw, ccw}

	// First-fit placement: occupancy[ring][lambda] marks used segments.
	type slot map[int]bool
	occupancy := map[int][]slot{cw.ID: {}, ccw.ID: {}}
	free := func(r *ring.Ring, lambda int, segs []int) bool {
		slots := occupancy[r.ID]
		if lambda >= len(slots) {
			return true
		}
		for _, s := range segs {
			if slots[lambda][s] {
				return false
			}
		}
		return true
	}
	reserve := func(r *ring.Ring, lambda int, segs []int) {
		for len(occupancy[r.ID]) <= lambda {
			occupancy[r.ID] = append(occupancy[r.ID], slot{})
		}
		for _, s := range segs {
			occupancy[r.ID][lambda][s] = true
		}
	}

	paths := make([]ring.Path, 0, len(app.Messages))
	lambdas := make([]int, 0, len(app.Messages))
	maxLambda := 0
	for i, m := range app.Messages {
		// ORNoC balances signals across the two rings without optimising
		// for path length or wavelength reuse: message i rides ring i mod 2
		// and takes the first wavelength whose arc is free there.
		r := rings[i%2]
		p, err := ring.Route(app, r, m)
		if err != nil {
			return nil, fmt.Errorf("ornoc: %w", err)
		}
		for lambda := 0; ; lambda++ {
			if free(r, lambda, p.Segs) {
				reserve(r, lambda, p.Segs)
				paths = append(paths, p)
				lambdas = append(lambdas, lambda)
				if lambda > maxLambda {
					maxLambda = lambda
				}
				break
			}
		}
	}

	dopt := opt.Design
	dopt.PresetAssignment = &wavelength.Assignment{Lambda: lambdas, NumLambda: maxLambda + 1}
	dopt.PDN = pdn.Config{Style: pdn.StyleShared, ForceNodeSplitter: true, LaserPos: dopt.PDN.LaserPos, RoutePhysical: dopt.PDN.RoutePhysical}
	dopt.PDNAllTwoSender = true
	dopt.MRRFullComplement = true
	d, err := design.Finish(app, "ORNoC", rings, paths, dopt)
	if err != nil {
		return nil, fmt.Errorf("ornoc: %w", err)
	}
	return d, nil
}
