package ornoc

import (
	"context"
	"testing"

	"sring/internal/baseline"
	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pipeline"
)

func synth(t *testing.T, app *netlist.Application) (*design.Design, error) {
	t.Helper()
	return pipeline.Synthesize(context.Background(), app, "ORNoC", pipeline.Options{})
}

func TestSynthesizeBenchmarks(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			d, err := synth(t, app)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("design invalid: %v", err)
			}
			if d.Method != "ORNoC" {
				t.Errorf("method = %q", d.Method)
			}
			if len(d.Rings) != 2 {
				t.Errorf("ORNoC uses %d rings, want 2", len(d.Rings))
			}
		})
	}
}

func TestFirstFitKeepsAssignment(t *testing.T) {
	// The design must carry ORNoC's own first-fit assignment, not an
	// optimised one: with first-fit, the first message always gets λ0 on
	// the CW ring.
	app := netlist.MWD()
	d, err := synth(t, app)
	if err != nil {
		t.Fatal(err)
	}
	if d.Assignment.Lambda[0] != 0 {
		t.Errorf("first message got λ%d, want λ0", d.Assignment.Lambda[0])
	}
	if d.Infos[0].Path.RingID != baseline.CWRingID {
		t.Errorf("first message on ring %d, want CW", d.Infos[0].Path.RingID)
	}
}

func TestForcedSplitterConvention(t *testing.T) {
	// ORNoC's PDN joins every node's two senders with a splitter: the max
	// splitters per path is the tree depth + 1.
	app := netlist.PM24()
	d, err := synth(t, app)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// 8 sender nodes: ceil(log2 8) = 3 tree stages + 1 node splitter.
	if m.MaxSplitters != 4 {
		t.Errorf("MaxSplitters = %d, want 4", m.MaxSplitters)
	}
	if m.NodeSplitters != 8 {
		t.Errorf("NodeSplitters = %d, want 8 (every node)", m.NodeSplitters)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := synth(t, netlist.VOPD())
	if err != nil {
		t.Fatal(err)
	}
	b, err := synth(t, netlist.VOPD())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment.Lambda {
		if a.Assignment.Lambda[i] != b.Assignment.Lambda[i] {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	bad := &netlist.Application{Name: "bad"}
	if _, err := synth(t, bad); err == nil {
		t.Error("invalid app accepted")
	}
}
