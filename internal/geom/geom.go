// Package geom provides the rectilinear geometry primitives used by the
// SRing layout engine: points in millimetres on the optical layer, the
// Manhattan metric that governs waveguide lengths, axis-aligned segments,
// and crossing detection between waveguides.
//
// All coordinates are in millimetres. Waveguides are routed horizontally or
// vertically only (see paper Sec. III-A, footnote a), so every primitive here
// is rectilinear.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for floating-point comparisons of coordinates.
// Benchmark chips are a few millimetres across, so a nanometre-scale epsilon
// is far below any physically meaningful feature.
const Eps = 1e-9

// Point is a location on the optical layer, in millimetres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.3g, %.3g)", p.X, p.Y) }

// Manhattan returns the rectilinear (L1) distance between p and q.
// Waveguide segments are implemented horizontally or vertically, so the
// minimum waveguide length connecting two nodes is their Manhattan distance.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Segment is an axis-aligned waveguide segment between two points.
// Construction via NewSegment guarantees axis alignment.
type Segment struct {
	A, B Point
}

// NewSegment builds an axis-aligned segment. It returns an error if the two
// endpoints are neither horizontally nor vertically aligned.
func NewSegment(a, b Point) (Segment, error) {
	if math.Abs(a.X-b.X) > Eps && math.Abs(a.Y-b.Y) > Eps {
		return Segment{}, fmt.Errorf("geom: segment %v-%v is not axis-aligned", a, b)
	}
	return Segment{A: a, B: b}, nil
}

// Horizontal reports whether the segment runs along the X axis.
// Zero-length segments report as horizontal.
func (s Segment) Horizontal() bool { return math.Abs(s.A.Y-s.B.Y) <= Eps }

// Vertical reports whether the segment runs along the Y axis.
func (s Segment) Vertical() bool {
	return math.Abs(s.A.X-s.B.X) <= Eps && !s.ZeroLength()
}

// ZeroLength reports whether the segment has (numerically) no extent.
func (s Segment) ZeroLength() bool { return s.Length() <= Eps }

// Length returns the segment length in millimetres.
func (s Segment) Length() float64 { return s.A.Manhattan(s.B) }

// String renders the segment as "A-B".
func (s Segment) String() string { return fmt.Sprintf("%v-%v", s.A, s.B) }

// interval1D returns the sorted extent of the segment along its running axis
// plus its fixed cross-axis coordinate.
func (s Segment) span() (lo, hi, fixed float64, horizontal bool) {
	if s.Horizontal() {
		lo, hi = math.Min(s.A.X, s.B.X), math.Max(s.A.X, s.B.X)
		return lo, hi, s.A.Y, true
	}
	lo, hi = math.Min(s.A.Y, s.B.Y), math.Max(s.A.Y, s.B.Y)
	return lo, hi, s.A.X, false
}

// Crosses reports whether two axis-aligned segments cross transversally,
// i.e. one horizontal and one vertical segment intersecting at an interior
// point of both. Endpoint touches (T-junctions at shared nodes) are NOT
// crossings: at a node the waveguides terminate at sender/receiver MRRs and
// no crossing structure is fabricated.
func (s Segment) Crosses(t Segment) bool {
	if s.ZeroLength() || t.ZeroLength() {
		return false
	}
	if s.Horizontal() == t.Horizontal() {
		return false // parallel segments never cross transversally
	}
	h, v := s, t
	if !s.Horizontal() {
		h, v = t, s
	}
	hy := h.A.Y
	vx := v.A.X
	hLo, hHi := math.Min(h.A.X, h.B.X), math.Max(h.A.X, h.B.X)
	vLo, vHi := math.Min(v.A.Y, v.B.Y), math.Max(v.A.Y, v.B.Y)
	// Strict interior intersection on both segments.
	return vx > hLo+Eps && vx < hHi-Eps && hy > vLo+Eps && hy < vHi-Eps
}

// Overlaps reports whether two parallel axis-aligned segments share a
// sub-segment of positive length on the same track.
func (s Segment) Overlaps(t Segment) bool {
	if s.ZeroLength() || t.ZeroLength() {
		return false
	}
	if s.Horizontal() != t.Horizontal() {
		return false
	}
	sLo, sHi, sFix, _ := s.span()
	tLo, tHi, tFix, _ := t.span()
	if math.Abs(sFix-tFix) > Eps {
		return false
	}
	return math.Min(sHi, tHi)-math.Max(sLo, tLo) > Eps
}

// Contains reports whether point p lies on the segment (inclusive of
// endpoints), within Eps.
func (s Segment) Contains(p Point) bool {
	lo, hi, fixed, horizontal := s.span()
	if horizontal {
		return math.Abs(p.Y-fixed) <= Eps && p.X >= lo-Eps && p.X <= hi+Eps
	}
	return math.Abs(p.X-fixed) <= Eps && p.Y >= lo-Eps && p.Y <= hi+Eps
}

// Polyline is a connected sequence of axis-aligned segments, e.g. the
// physical route of one waveguide between two nodes.
type Polyline struct {
	Points []Point
}

// Length returns the total rectilinear length of the polyline.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl.Points); i++ {
		total += pl.Points[i-1].Manhattan(pl.Points[i])
	}
	return total
}

// Bends returns the number of 90-degree direction changes along the polyline.
// Collinear intermediate points are not bends; zero-length hops are skipped.
func (pl Polyline) Bends() int {
	dirs := make([]byte, 0, len(pl.Points))
	for i := 1; i < len(pl.Points); i++ {
		a, b := pl.Points[i-1], pl.Points[i]
		switch {
		case a.Eq(b):
			continue
		case math.Abs(a.Y-b.Y) <= Eps:
			dirs = append(dirs, 'h')
		default:
			dirs = append(dirs, 'v')
		}
	}
	bends := 0
	for i := 1; i < len(dirs); i++ {
		if dirs[i] != dirs[i-1] {
			bends++
		}
	}
	return bends
}

// Segments decomposes the polyline into its non-degenerate axis-aligned
// segments.
func (pl Polyline) Segments() []Segment {
	segs := make([]Segment, 0, len(pl.Points))
	for i := 1; i < len(pl.Points); i++ {
		s := Segment{A: pl.Points[i-1], B: pl.Points[i]}
		if !s.ZeroLength() {
			segs = append(segs, s)
		}
	}
	return segs
}

// LRoute returns the L-shaped rectilinear route from a to b, bending at the
// corner (b.X, a.Y) ("horizontal first"). Straight routes contain no corner.
// The returned polyline always starts at a and ends at b and has length equal
// to the Manhattan distance.
func LRoute(a, b Point) Polyline {
	if math.Abs(a.X-b.X) <= Eps || math.Abs(a.Y-b.Y) <= Eps {
		return Polyline{Points: []Point{a, b}}
	}
	return Polyline{Points: []Point{a, Pt(b.X, a.Y), b}}
}

// LRouteVFirst returns the L-shaped route from a to b bending at (a.X, b.Y)
// ("vertical first").
func LRouteVFirst(a, b Point) Polyline {
	if math.Abs(a.X-b.X) <= Eps || math.Abs(a.Y-b.Y) <= Eps {
		return Polyline{Points: []Point{a, b}}
	}
	return Polyline{Points: []Point{a, Pt(a.X, b.Y), b}}
}

// BoundingBox returns the axis-aligned bounding box of the given points.
// It returns zeros for an empty input.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// CrossingCount returns the number of transversal crossings between two sets
// of segments. Crossings within the same set are not counted.
func CrossingCount(a, b []Segment) int {
	n := 0
	for _, s := range a {
		for _, t := range b {
			if s.Crosses(t) {
				n++
			}
		}
	}
	return n
}

// SelfCrossingCount returns the number of transversal crossings among the
// segments of a single set (each unordered pair counted once).
func SelfCrossingCount(segs []Segment) int {
	n := 0
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if segs[i].Crosses(segs[j]) {
				n++
			}
		}
	}
	return n
}
