package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(2.5, 0), Pt(0, 0), 2.5},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); math.Abs(got-c.want) > Eps {
			t.Errorf("Manhattan(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// clampCoord maps an arbitrary generated float into the physically
// meaningful coordinate range (a few hundred mm) so the quick properties do
// not trip on overflow at 1e308 scales.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 500)
}

func TestManhattanProperties(t *testing.T) {
	// Symmetry.
	sym := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by))
		return math.Abs(a.Manhattan(b)-b.Manhattan(a)) <= Eps
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("Manhattan not symmetric: %v", err)
	}
	// Triangle inequality.
	tri := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)+Eps
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("Manhattan violates triangle inequality: %v", err)
	}
	// Non-negativity and identity.
	nonneg := func(ax, ay float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		return a.Manhattan(a) == 0
	}
	if err := quick.Check(nonneg, nil); err != nil {
		t.Errorf("Manhattan(a,a) != 0: %v", err)
	}
}

func TestNewSegment(t *testing.T) {
	if _, err := NewSegment(Pt(0, 0), Pt(1, 0)); err != nil {
		t.Errorf("horizontal segment rejected: %v", err)
	}
	if _, err := NewSegment(Pt(0, 0), Pt(0, 2)); err != nil {
		t.Errorf("vertical segment rejected: %v", err)
	}
	if _, err := NewSegment(Pt(0, 0), Pt(1, 1)); err == nil {
		t.Error("diagonal segment accepted, want error")
	}
}

func TestSegmentOrientation(t *testing.T) {
	h := Segment{Pt(0, 1), Pt(5, 1)}
	v := Segment{Pt(2, 0), Pt(2, 3)}
	z := Segment{Pt(1, 1), Pt(1, 1)}
	if !h.Horizontal() || h.Vertical() {
		t.Error("h should be horizontal only")
	}
	if v.Horizontal() || !v.Vertical() {
		t.Error("v should be vertical only")
	}
	if !z.ZeroLength() {
		t.Error("z should be zero length")
	}
	if z.Vertical() {
		t.Error("zero-length segment must not report vertical")
	}
}

func TestCrosses(t *testing.T) {
	h := Segment{Pt(0, 1), Pt(4, 1)}
	cases := []struct {
		name string
		v    Segment
		want bool
	}{
		{"proper crossing", Segment{Pt(2, 0), Pt(2, 3)}, true},
		{"touches endpoint of h", Segment{Pt(0, 0), Pt(0, 3)}, false},
		{"T-junction on h", Segment{Pt(2, 1), Pt(2, 3)}, false},
		{"misses entirely", Segment{Pt(6, 0), Pt(6, 3)}, false},
		{"v below h", Segment{Pt(2, -2), Pt(2, 0.5)}, false},
		{"parallel horizontal", Segment{Pt(0, 2), Pt(4, 2)}, false},
	}
	for _, c := range cases {
		if got := h.Crosses(c.v); got != c.want {
			t.Errorf("%s: Crosses = %v, want %v", c.name, got, c.want)
		}
		if got := c.v.Crosses(h); got != c.want {
			t.Errorf("%s (swapped): Crosses = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := Segment{Pt(0, 1), Pt(4, 1)}
	cases := []struct {
		name string
		b    Segment
		want bool
	}{
		{"full overlap", Segment{Pt(1, 1), Pt(3, 1)}, true},
		{"partial overlap", Segment{Pt(3, 1), Pt(6, 1)}, true},
		{"endpoint touch only", Segment{Pt(4, 1), Pt(6, 1)}, false},
		{"different track", Segment{Pt(0, 2), Pt(4, 2)}, false},
		{"perpendicular", Segment{Pt(2, 0), Pt(2, 3)}, false},
		{"reversed direction overlap", Segment{Pt(3, 1), Pt(1, 1)}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%s: Overlaps = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("%s (swapped): Overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentContains(t *testing.T) {
	s := Segment{Pt(0, 1), Pt(4, 1)}
	if !s.Contains(Pt(2, 1)) {
		t.Error("interior point not contained")
	}
	if !s.Contains(Pt(0, 1)) || !s.Contains(Pt(4, 1)) {
		t.Error("endpoints not contained")
	}
	if s.Contains(Pt(2, 1.5)) {
		t.Error("off-track point contained")
	}
	if s.Contains(Pt(5, 1)) {
		t.Error("point beyond end contained")
	}
}

func TestPolylineLengthAndBends(t *testing.T) {
	pl := Polyline{Points: []Point{Pt(0, 0), Pt(2, 0), Pt(2, 3), Pt(5, 3)}}
	if got, want := pl.Length(), 8.0; math.Abs(got-want) > Eps {
		t.Errorf("Length = %v, want %v", got, want)
	}
	if got, want := pl.Bends(), 2; got != want {
		t.Errorf("Bends = %v, want %v", got, want)
	}
	// Collinear intermediate points add no bends.
	straight := Polyline{Points: []Point{Pt(0, 0), Pt(1, 0), Pt(3, 0)}}
	if got := straight.Bends(); got != 0 {
		t.Errorf("straight polyline Bends = %v, want 0", got)
	}
	// Repeated point is skipped.
	dup := Polyline{Points: []Point{Pt(0, 0), Pt(1, 0), Pt(1, 0), Pt(1, 2)}}
	if got := dup.Bends(); got != 1 {
		t.Errorf("dup polyline Bends = %v, want 1", got)
	}
}

func TestPolylineSegments(t *testing.T) {
	pl := Polyline{Points: []Point{Pt(0, 0), Pt(2, 0), Pt(2, 0), Pt(2, 3)}}
	segs := pl.Segments()
	if len(segs) != 2 {
		t.Fatalf("Segments len = %d, want 2", len(segs))
	}
	if !segs[0].Horizontal() || !segs[1].Vertical() {
		t.Error("segment orientations wrong")
	}
}

func TestLRoute(t *testing.T) {
	a, b := Pt(0, 0), Pt(3, 2)
	pl := LRoute(a, b)
	if got, want := pl.Length(), a.Manhattan(b); math.Abs(got-want) > Eps {
		t.Errorf("LRoute length = %v, want %v", got, want)
	}
	if got := pl.Bends(); got != 1 {
		t.Errorf("LRoute bends = %v, want 1", got)
	}
	if !pl.Points[0].Eq(a) || !pl.Points[len(pl.Points)-1].Eq(b) {
		t.Error("LRoute endpoints wrong")
	}
	if !pl.Points[1].Eq(Pt(3, 0)) {
		t.Errorf("LRoute corner = %v, want (3,0)", pl.Points[1])
	}
	vf := LRouteVFirst(a, b)
	if !vf.Points[1].Eq(Pt(0, 2)) {
		t.Errorf("LRouteVFirst corner = %v, want (0,2)", vf.Points[1])
	}
	// Aligned points produce straight routes.
	if got := LRoute(Pt(0, 0), Pt(0, 5)); len(got.Points) != 2 {
		t.Error("aligned LRoute should be straight")
	}
}

func TestLRouteProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		pl := LRoute(a, b)
		// Route length always equals Manhattan distance.
		return math.Abs(pl.Length()-a.Manhattan(b)) <= 1e-6
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("LRoute length != Manhattan: %v", err)
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if !min.Eq(Pt(-2, -1)) || !max.Eq(Pt(4, 5)) {
		t.Errorf("BoundingBox = %v %v", min, max)
	}
	min, max = BoundingBox(nil)
	if !min.Eq(Pt(0, 0)) || !max.Eq(Pt(0, 0)) {
		t.Errorf("empty BoundingBox = %v %v, want zeros", min, max)
	}
}

func TestCrossingCount(t *testing.T) {
	a := []Segment{{Pt(0, 1), Pt(4, 1)}, {Pt(0, 2), Pt(4, 2)}}
	b := []Segment{{Pt(2, 0), Pt(2, 3)}, {Pt(3, 0), Pt(3, 1.5)}}
	// Seg b0 crosses both of a; b1 crosses a[0] only (ends at 1.5 < 2).
	if got := CrossingCount(a, b); got != 3 {
		t.Errorf("CrossingCount = %d, want 3", got)
	}
}

func TestSelfCrossingCount(t *testing.T) {
	segs := []Segment{
		{Pt(0, 1), Pt(4, 1)},
		{Pt(2, 0), Pt(2, 3)},
		{Pt(0, 2), Pt(4, 2)},
	}
	// vertical crosses both horizontals; horizontals are parallel.
	if got := SelfCrossingCount(segs); got != 2 {
		t.Errorf("SelfCrossingCount = %d, want 2", got)
	}
}

func TestPointEqAndAdd(t *testing.T) {
	if !Pt(1, 2).Add(0.5, -1).Eq(Pt(1.5, 1)) {
		t.Error("Add/Eq mismatch")
	}
	if Pt(0, 0).Eq(Pt(0, 1e-6)) {
		t.Error("points 1e-6 apart must not be equal")
	}
	if !Pt(0, 0).Eq(Pt(0, 1e-12)) {
		t.Error("points 1e-12 apart should be equal")
	}
}
