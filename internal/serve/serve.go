// Package serve is the synthesis-as-a-service layer behind cmd/serve: an
// HTTP/JSON front-end over internal/pipeline that accepts synthesis
// requests for any registered method, executes them on a shared
// byte-budgeted stage cache, and returns the design's Table-I/II summary
// as JSON — optionally streaming per-stage progress events first.
//
// The daemon's value proposition is the cache: an application-specific
// design space is explored as many near-identical requests (same app,
// swept options), and content-addressed stage memoization turns the warm
// ones from seconds into microseconds. Request latency lands in the
// serve.request.ns registry histogram so cmd/loadgen can snapshot serving
// percentiles into the BENCH_*.json format and `bench -compare` can gate
// regressions.
//
// Endpoints:
//
//	POST /synthesize   {app|netlist|generate, method, options, stream} → summary
//	                   JSON (stream=true: NDJSON progress events, then the summary)
//	GET  /methods      registered methods and the netlist registry's app names
//	GET  /stats.json   cache statistics
//	GET  /metrics      Prometheus text exposition of the registry
//	GET  /healthz      liveness
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"sring/internal/design"
	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pipeline"
)

// Server is the synthesis service: a handler set over one shared cache and
// registry. The zero value serves with caching off and default telemetry.
type Server struct {
	// Cache is the shared stage cache; nil serves uncached.
	Cache *pipeline.Cache
	// Registry receives serving and pipeline telemetry (nil: process
	// default).
	Registry *obs.Registry
	// MaxParallelism caps the per-request Parallelism option; 0 means
	// requests may use all CPUs.
	MaxParallelism int
	// MaxInflight caps concurrently running /synthesize requests. Excess
	// requests are rejected immediately with 429 and a Retry-After header
	// rather than queued — a synthesis can hold a CPU for its full MILP
	// budget, so queueing would let latency grow without bound while the
	// client learns nothing. 0 means twice GOMAXPROCS; negative disables
	// the cap.
	MaxInflight int

	semOnce sync.Once
	sem     chan struct{}
}

// acquire claims an in-flight slot, returning its release func, or ok=false
// when the server is saturated. The semaphore is sized on first use so the
// zero-value Server works.
func (s *Server) acquire() (release func(), ok bool) {
	s.semOnce.Do(func() {
		n := s.MaxInflight
		if n == 0 {
			n = 2 * runtime.GOMAXPROCS(0)
		}
		if n > 0 {
			s.sem = make(chan struct{}, n)
		}
	})
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		return nil, false
	}
}

// Request is the POST /synthesize body.
type Request struct {
	// App names a builtin application from the netlist registry (exactly
	// one of App, Netlist, Generate).
	App string `json:"app,omitempty"`
	// Netlist is an inline application in the netlist JSON schema.
	Netlist json.RawMessage `json:"netlist,omitempty"`
	// Generate builds a synthetic application on the fly from generator
	// parameters instead of naming or inlining one.
	Generate *GenerateSpec `json:"generate,omitempty"`
	// Method is the registered synthesis method to run.
	Method string `json:"method"`
	// Options tune the run; zero values mean the pipeline defaults.
	Options RequestOptions `json:"options"`
	// Stream switches the response to NDJSON: per-stage progress events
	// while the synthesis runs, then a final result event.
	Stream bool `json:"stream,omitempty"`
}

// RequestOptions is the JSON form of pipeline.Options.
type RequestOptions struct {
	Tech            *loss.Tech `json:"tech,omitempty"`
	TreeHeight      int        `json:"tree_height,omitempty"`
	ClusterTrials   int        `json:"cluster_trials,omitempty"`
	MaxChords       int        `json:"max_chords,omitempty"`
	UseMILP         bool       `json:"use_milp,omitempty"`
	Decompose       bool       `json:"decompose,omitempty"`
	MILPTimeLimitMS int64      `json:"milp_time_limit_ms,omitempty"`
	Parallelism     int        `json:"parallelism,omitempty"`
	PhysicalPDN     bool       `json:"physical_pdn,omitempty"`
}

// GenerateSpec parameterizes an on-the-fly synthetic application. The
// generators validate their parameters and return errors (never panic), so
// a malformed spec is a clean HTTP 400.
type GenerateSpec struct {
	// Kind selects the generator: "random", "clustered", "scaled-soc",
	// "pmn", or "circulant".
	Kind string `json:"kind"`
	// N is the node count (random, scaled-soc, pmn, circulant).
	N int `json:"n,omitempty"`
	// M is the message count (random).
	M int `json:"m,omitempty"`
	// Seed drives the deterministic pseudo-random generators (random,
	// clustered).
	Seed int64 `json:"seed,omitempty"`
	// Clusters, ClusterSize and InterFlows parameterize "clustered".
	Clusters    int `json:"clusters,omitempty"`
	ClusterSize int `json:"cluster_size,omitempty"`
	InterFlows  int `json:"inter_flows,omitempty"`
	// MemsPerCPU and CPUPairs parameterize "pmn".
	MemsPerCPU int  `json:"mems_per_cpu,omitempty"`
	CPUPairs   bool `json:"cpu_pairs,omitempty"`
	// Gens are the circulant chord generators.
	Gens []int `json:"gens,omitempty"`
}

// build runs the selected generator.
func (g *GenerateSpec) build() (*netlist.Application, error) {
	switch g.Kind {
	case "random":
		return netlist.Random(g.N, g.M, g.Seed)
	case "clustered":
		return netlist.Clustered(g.Clusters, g.ClusterSize, g.InterFlows, g.Seed)
	case "scaled-soc":
		return netlist.ScaledSoC(g.N)
	case "pmn":
		return netlist.PMN(g.N, g.MemsPerCPU, g.CPUPairs)
	case "circulant":
		return netlist.Circulant(g.N, g.Gens...)
	default:
		return nil, fmt.Errorf(`unknown generator kind %q (want "random", "clustered", "scaled-soc", "pmn", or "circulant")`, g.Kind)
	}
}

// Response is the synthesis summary: the paper's per-design evaluation
// (Table I columns) plus the synthesis time (Table II) and run flags.
type Response struct {
	App         string          `json:"app"`
	Method      string          `json:"method"`
	Nodes       int             `json:"nodes"`
	Messages    int             `json:"messages"`
	SynthesisNs int64           `json:"synthesis_ns"`
	Cancelled   bool            `json:"cancelled,omitempty"`
	Metrics     *design.Metrics `json:"metrics"`
}

// Event is one NDJSON line of a streamed response.
type Event struct {
	// Event is "stage" (a pipeline span began), "result", or "error".
	Event string `json:"event"`
	// Span is the span name for stage events ("design.layout", …).
	Span string `json:"span,omitempty"`
	// AtNs is the span's start offset from the request start.
	AtNs int64 `json:"at_ns,omitempty"`
	// Result is set on the final "result" event.
	Result *Response `json:"result,omitempty"`
	// Error is set on the final "error" event.
	Error string `json:"error,omitempty"`
}

// statusClientClosedRequest mirrors nginx's non-standard 499: the client
// abandoned the request before synthesis could start.
const statusClientClosedRequest = 499

// progressPollInterval is how often a streaming response samples the
// request's trace for newly started spans.
const progressPollInterval = 10 * time.Millisecond

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleSynthesize)
	mux.HandleFunc("/methods", s.handleMethods)
	mux.HandleFunc("/stats.json", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) registry() *obs.Registry { return obs.OrDefault(s.Registry) }

// httpError writes a JSON error body with the given status and counts it.
func (s *Server) httpError(w http.ResponseWriter, status int, err error) {
	s.registry().Add("serve.request.errors", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// parseRequest validates the request body into an application and pipeline
// options. All failures are client errors (HTTP 400).
func (s *Server) parseRequest(req *Request) (*netlist.Application, pipeline.Options, error) {
	var opt pipeline.Options
	if req.Method == "" {
		return nil, opt, errors.New("missing method")
	}
	known := false
	for _, m := range pipeline.Methods() {
		if m == req.Method {
			known = true
			break
		}
	}
	if !known {
		return nil, opt, fmt.Errorf("unknown method %q (registered: %v)", req.Method, pipeline.Methods())
	}

	sources := 0
	for _, set := range []bool{req.App != "", len(req.Netlist) > 0, req.Generate != nil} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return nil, opt, errors.New(`"app", "netlist" and "generate" are mutually exclusive`)
	}
	var app *netlist.Application
	switch {
	case req.App != "":
		a, err := netlist.ByName(req.App)
		if err != nil {
			return nil, opt, err
		}
		app = a
	case len(req.Netlist) > 0:
		a, err := netlist.Decode(bytes.NewReader(req.Netlist))
		if err != nil {
			return nil, opt, err
		}
		app = a
	case req.Generate != nil:
		a, err := req.Generate.build()
		if err != nil {
			return nil, opt, err
		}
		app = a
	default:
		return nil, opt, errors.New(`need "app" (builtin name), "netlist" (inline application), or "generate" (generator spec)`)
	}

	ro := req.Options
	if ro.Tech != nil {
		// Normalize both validates (the 400 for an implausible Tech) and is
		// what the pipeline will do again internally; Options carries the
		// raw struct.
		if _, err := loss.Normalize(*ro.Tech); err != nil {
			return nil, opt, fmt.Errorf("tech: %w", err)
		}
		opt.Tech = *ro.Tech
	}
	if ro.TreeHeight < 0 || ro.ClusterTrials < 0 || ro.MaxChords < 0 || ro.Parallelism < 0 || ro.MILPTimeLimitMS < 0 {
		return nil, opt, errors.New("options must be non-negative")
	}
	opt.TreeHeight = ro.TreeHeight
	opt.ClusterTrials = ro.ClusterTrials
	opt.MaxChords = ro.MaxChords
	opt.UseMILP = ro.UseMILP
	opt.DecomposeAssign = ro.Decompose
	opt.MILPTimeLimit = time.Duration(ro.MILPTimeLimitMS) * time.Millisecond
	opt.Parallelism = ro.Parallelism
	if s.MaxParallelism > 0 && (opt.Parallelism == 0 || opt.Parallelism > s.MaxParallelism) {
		opt.Parallelism = s.MaxParallelism
	}
	opt.Cache = s.Cache
	opt.Registry = s.Registry
	return app, opt, nil
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	start := time.Now()
	reg := s.registry()
	release, ok := s.acquire()
	if !ok {
		reg.Add("serve.requests", 1)
		reg.Add("serve.rejected", 1)
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusTooManyRequests, errors.New("too many in-flight synthesis requests"))
		return
	}
	defer release()
	reg.Add("serve.requests", 1)
	defer reg.Histogram("serve.request.ns").RecordSince(start)

	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	app, opt, err := s.parseRequest(&req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}

	if req.Stream {
		s.streamSynthesize(w, r, app, req.Method, opt)
		return
	}
	d, err := pipeline.Synthesize(r.Context(), app, req.Method, opt)
	if err != nil {
		s.synthesisError(w, r, err)
		return
	}
	resp, err := summarize(d)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// synthesisError maps a pipeline error onto an HTTP status. A request whose
// context fell before synthesis could start is the client's doing (499);
// everything else surviving parseRequest is the server's.
func (s *Server) synthesisError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	if r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = statusClientClosedRequest
	}
	s.httpError(w, status, err)
}

// streamSynthesize runs the synthesis in the background and streams NDJSON
// progress: one "stage" event per newly started pipeline span (sampled
// every progressPollInterval), then a final "result" or "error" event.
// Mid-flight cancellation degrades like the pipeline does: the final event
// carries the best-feasible design with Cancelled set.
func (s *Server) streamSynthesize(w http.ResponseWriter, r *http.Request, app *netlist.Application, method string, opt pipeline.Options) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	emit := func(e Event) {
		_ = enc.Encode(e)
		if fl != nil {
			fl.Flush()
		}
	}

	// The per-request recorder is the progress source: the pipeline's stage
	// spans (method constructor, design.layout, design.loss,
	// wavelength.assign, design.pdn, pipeline.cached) appear in its
	// snapshots as they start.
	rec := obs.New()
	opt.Recorder = rec

	type outcome struct {
		d   *design.Design
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		d, err := pipeline.Synthesize(r.Context(), app, method, opt)
		done <- outcome{d, err}
	}()

	seen := make(map[string]bool)
	poll := func() {
		var walk func(spans []*obs.SpanSnap)
		walk = func(spans []*obs.SpanSnap) {
			for _, sp := range spans {
				if !seen[sp.Name] {
					seen[sp.Name] = true
					emit(Event{Event: "stage", Span: sp.Name, AtNs: sp.StartNS})
				}
				walk(sp.Children)
			}
		}
		walk(rec.Snapshot().Spans)
	}

	ticker := time.NewTicker(progressPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			poll()
		case out := <-done:
			poll()
			if out.err != nil {
				s.registry().Add("serve.request.errors", 1)
				emit(Event{Event: "error", Error: out.err.Error()})
				return
			}
			resp, err := summarize(out.d)
			if err != nil {
				s.registry().Add("serve.request.errors", 1)
				emit(Event{Event: "error", Error: err.Error()})
				return
			}
			emit(Event{Event: "result", Result: resp})
			return
		}
	}
}

// summarize evaluates a design into its response summary.
func summarize(d *design.Design) (*Response, error) {
	met, err := d.Metrics()
	if err != nil {
		return nil, fmt.Errorf("evaluate design: %w", err)
	}
	return &Response{
		App:         d.App.Name,
		Method:      d.Method,
		Nodes:       d.App.N(),
		Messages:    d.App.M(),
		SynthesisNs: d.SynthesisTime.Nanoseconds(),
		Cancelled:   d.Cancelled,
		Metrics:     met,
	}, nil
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string][]string{
		"methods": pipeline.Methods(),
		"apps":    netlist.Names(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Cache.StatsSnapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.registry().WritePrometheus(w)
}
