package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	_ "sring" // register the real methods

	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pipeline"
	"sring/internal/ring"
	"sring/internal/serve"
	"sring/internal/wavelength"
)

// slowStarted signals that the SlowProbe constructor is running;
// slowRelease lets it finish normally. With neither touched it waits for
// cancellation and returns its best-feasible construction, Cancelled set —
// the pipeline's graceful-degradation contract, which the serve layer must
// surface rather than turn into an error.
var (
	slowStarted = make(chan struct{}, 16)
	slowRelease = make(chan struct{})
)

func init() {
	pipeline.Register("SlowProbe", func(ctx context.Context, app *netlist.Application, opt pipeline.Options, parent *obs.Span) (*pipeline.Construction, error) {
		slowStarted <- struct{}{}
		con, err := baseRing(app)
		if err != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			con.Cancelled = true
		case <-slowRelease:
		}
		return con, nil
	})
}

func baseRing(app *netlist.Application) (*pipeline.Construction, error) {
	var order []netlist.NodeID
	for _, n := range app.Nodes {
		order = append(order, n.ID)
	}
	r := &ring.Ring{ID: 0, Kind: ring.Base, Order: order}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return &pipeline.Construction{Rings: []*ring.Ring{r}, Paths: paths, Weights: wavelength.DefaultWeights()}, nil
}

func postSynthesize(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// The request-validation table: every malformed request is a 400 with a
// JSON error body that names the problem.
func TestSynthesizeBadRequests(t *testing.T) {
	h := (&serve.Server{}).Handler()
	cases := []struct {
		name     string
		body     string
		status   int
		errorHas string
	}{
		{"bad method", `{"app":"MWD","method":"NoSuchMethod"}`, 400, "NoSuchMethod"},
		{"missing method", `{"app":"MWD"}`, 400, "method"},
		{"unknown app", `{"app":"NoSuchApp","method":"SRing"}`, 400, "NoSuchApp"},
		{"no app or netlist", `{"method":"SRing"}`, 400, "app"},
		{"app and netlist", `{"app":"MWD","netlist":{"name":"x"},"method":"SRing"}`, 400, "mutually exclusive"},
		{"app and generate", `{"app":"MWD","generate":{"kind":"random","n":4,"m":6},"method":"SRing"}`, 400, "mutually exclusive"},
		{"bad generator kind", `{"generate":{"kind":"nope"},"method":"SRing"}`, 400, "generator kind"},
		{"infeasible generator params", `{"generate":{"kind":"random","n":4,"m":99},"method":"SRing"}`, 400, "cannot place"},
		{"bad circulant", `{"generate":{"kind":"circulant","n":8,"gens":[0]},"method":"SRing"}`, 400, "Circulant generator 0 out of range"},
		{"invalid tech", `{"app":"MWD","method":"SRing","options":{"tech":{"DropDB":-1}}}`, 400, "tech"},
		{"partial tech", `{"app":"MWD","method":"SRing","options":{"tech":{"DropDB":0.5}}}`, 400, "tech"},
		{"negative parallelism", `{"app":"MWD","method":"SRing","options":{"parallelism":-1}}`, 400, "non-negative"},
		{"unknown field", `{"app":"MWD","method":"SRing","bogus":1}`, 400, "bogus"},
		{"not json", `{{{`, 400, "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postSynthesize(t, h, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.status, w.Body)
			}
			var e map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(e["error"], tc.errorHas) {
				t.Errorf("error %q does not mention %q", e["error"], tc.errorHas)
			}
		})
	}

	t.Run("GET refused", func(t *testing.T) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/synthesize", nil))
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", w.Code)
		}
	})
}

// A well-formed request returns the design summary; an inline netlist works
// like a builtin one.
func TestSynthesizeOK(t *testing.T) {
	reg := obs.NewRegistry()
	h := (&serve.Server{Cache: pipeline.NewCache(), Registry: reg}).Handler()

	w := postSynthesize(t, h, `{"app":"MWD","method":"SRing","options":{"parallelism":1}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp serve.Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.App != "MWD" || resp.Method != "SRing" || resp.Metrics == nil {
		t.Fatalf("summary incomplete: %+v", resp)
	}
	if resp.Metrics.NumWavelengths <= 0 || resp.Metrics.TotalLaserPowerMW <= 0 {
		t.Errorf("implausible metrics: %+v", resp.Metrics)
	}
	if reg.Histogram("serve.request.ns").Count() == 0 {
		t.Error("serve.request.ns recorded nothing")
	}

	t.Run("generated app with decomposed assignment", func(t *testing.T) {
		w := postSynthesize(t, h, `{"generate":{"kind":"clustered","clusters":2,"cluster_size":3,"inter_flows":1,"seed":1},
			"method":"SRing","options":{"parallelism":1,"use_milp":true,"decompose":true,"milp_time_limit_ms":500}}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body)
		}
		var gen serve.Response
		if err := json.Unmarshal(w.Body.Bytes(), &gen); err != nil {
			t.Fatal(err)
		}
		if gen.App != "clustered-k2-c3" || gen.Metrics == nil || gen.Metrics.NumWavelengths <= 0 {
			t.Errorf("generated synthesis incomplete: %+v", gen)
		}
	})

	t.Run("inline netlist", func(t *testing.T) {
		var nl bytes.Buffer
		if err := netlist.Encode(&nl, netlist.MWD()); err != nil {
			t.Fatal(err)
		}
		w := postSynthesize(t, h, `{"netlist":`+nl.String()+`,"method":"SRing","options":{"parallelism":1}}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body)
		}
		var inl serve.Response
		if err := json.Unmarshal(w.Body.Bytes(), &inl); err != nil {
			t.Fatal(err)
		}
		if inl.Metrics == nil || inl.Metrics.TotalLaserPowerMW != resp.Metrics.TotalLaserPowerMW {
			t.Errorf("inline netlist diverged from builtin: %+v vs %+v", inl.Metrics, resp.Metrics)
		}
	})
}

// A context that fell before synthesis started is the client's doing: 499,
// no design.
func TestSynthesizePreCancelled(t *testing.T) {
	h := (&serve.Server{}).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/synthesize",
		strings.NewReader(`{"app":"MWD","method":"SRing"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 499 {
		t.Errorf("status = %d, want 499", w.Code)
	}
}

// A client disconnecting mid-flight cancels the request context; the
// pipeline degrades to its best incumbent and the serve layer reports it
// with Cancelled set rather than failing.
func TestSynthesizeMidFlightDisconnect(t *testing.T) {
	h := (&serve.Server{}).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/synthesize",
		strings.NewReader(`{"app":"MWD","method":"SlowProbe","options":{"parallelism":1}}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(w, req)
		close(done)
	}()
	<-slowStarted // the constructor is running; now the client vanishes
	cancel()
	<-done
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp serve.Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cancelled {
		t.Error("mid-flight disconnect did not surface Cancelled on the incumbent design")
	}
	if resp.Metrics == nil {
		t.Error("incumbent design has no metrics")
	}
}

// Streaming responses carry one stage event per pipeline span before the
// final result.
func TestSynthesizeStreaming(t *testing.T) {
	h := (&serve.Server{Cache: pipeline.NewCache()}).Handler()
	w := postSynthesize(t, h, `{"app":"MWD","method":"SRing","options":{"parallelism":1},"stream":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want NDJSON", ct)
	}
	var events []serve.Event
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want stage events plus a result", len(events))
	}
	last := events[len(events)-1]
	if last.Event != "result" || last.Result == nil || last.Result.Metrics == nil {
		t.Fatalf("final event is not a result: %+v", last)
	}
	seen := map[string]bool{}
	for _, e := range events[:len(events)-1] {
		if e.Event != "stage" {
			t.Errorf("unexpected mid-stream event %+v", e)
		}
		seen[e.Span] = true
	}
	for _, span := range []string{"synthesize", "design.layout", "wavelength.assign", "design.pdn"} {
		if !seen[span] {
			t.Errorf("no stage event for span %q (saw %v)", span, seen)
		}
	}
}

// The ancillary endpoints: methods, stats, metrics, health.
func TestAncillaryEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	srv := &serve.Server{Cache: pipeline.NewCache(), Registry: reg}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var methods map[string][]string
	getJSON(t, ts.URL+"/methods", &methods)
	if len(methods["methods"]) < 4 {
		t.Errorf("methods = %v", methods)
	}
	// The apps list is the full netlist registry: paper benchmarks plus the
	// extended task graphs plus the scale apps.
	if want := netlist.Names(); len(methods["apps"]) != len(want) || len(want) <= 7 {
		t.Errorf("apps = %v, want the %d registry names", methods["apps"], len(want))
	}

	var stats pipeline.CacheStats
	getJSON(t, ts.URL+"/stats.json", &stats)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Errorf("/healthz: HTTP %d", hresp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, into interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

// The loadgen smoke test: replay all seven benchmark applications (the
// default mix) at concurrency 4 against a live server, cold then warm.
// Short mode keeps it to the three small apps.
func TestLoadgenSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	// MaxInflight off: this test drives concurrency above the default cap
	// on small machines and is about cache behaviour, not load shedding.
	srv := &serve.Server{Cache: pipeline.NewCache(), Registry: reg, MaxParallelism: 2, MaxInflight: -1}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mix := serve.DefaultMix()
	if testing.Short() || os.Getenv("CI") != "" {
		mix = mix[:3]
	}
	res, err := serve.Replay(context.Background(), serve.ReplayConfig{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cold) != len(res.Warm) {
		t.Fatalf("cold/warm name counts differ: %d vs %d", len(res.Cold), len(res.Warm))
	}
	wantNames := map[string]bool{}
	for _, r := range mix {
		wantNames["Serve/"+r.App+"/"+r.Method] = true
	}
	for _, s := range res.Warm {
		delete(wantNames, s.Name)
	}
	if len(wantNames) > 0 {
		t.Errorf("warm pass missing entries: %v", wantNames)
	}
	if res.Hits == 0 {
		t.Error("warm pass produced no cache hits")
	}
	if res.HitRate < 0.4 {
		t.Errorf("hit rate = %.2f, want >= 0.4 over cold+warm", res.HitRate)
	}
	if res.WarmP50() >= res.ColdP50() {
		t.Errorf("warm p50 %d >= cold p50 %d: cache bought nothing", res.WarmP50(), res.ColdP50())
	}
	entries := res.Entries(4)
	if len(entries) != len(res.Warm) {
		t.Fatalf("entries = %d, want %d", len(entries), len(res.Warm))
	}
	for _, e := range entries {
		if e.StageNs["request"].P99 < e.StageNs["request"].P50 {
			t.Errorf("%s: p99 %d < p50 %d", e.Name, e.StageNs["request"].P99, e.StageNs["request"].P50)
		}
	}
	if cb := res.CacheBench(); cb.WarmNs <= 0 || cb.HitRate != res.HitRate {
		t.Errorf("cache bench incoherent: %+v", cb)
	}
}

// A saturated server sheds load: beyond MaxInflight concurrently running
// /synthesize requests, new ones are rejected immediately with 429 and a
// Retry-After hint — not queued behind a synthesis that may hold its CPU
// for a full MILP budget — and the shed shows up on the rejected counter.
func TestSynthesizeBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	h := (&serve.Server{Registry: reg, MaxInflight: 1}).Handler()
	body := `{"app":"MWD","method":"SlowProbe","options":{"parallelism":1}}`

	first := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(first, httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(body)))
		close(done)
	}()
	<-slowStarted // the only slot is now held by the slow synthesis

	w := postSynthesize(t, h, body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("429 body is not a JSON error: %q", w.Body)
	}
	if got := reg.Counter("serve.rejected").Value(); got != 1 {
		t.Errorf("serve.rejected = %d, want 1", got)
	}

	slowRelease <- struct{}{}
	<-done
	if first.Code != http.StatusOK {
		t.Fatalf("slot-holding request failed: %d: %s", first.Code, first.Body)
	}

	// The slot is free again: the next request is served, not rejected.
	w = postSynthesize(t, h, `{"app":"MWD","method":"SRing","options":{"parallelism":1}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200: %s", w.Code, w.Body)
	}
	if got := reg.Counter("serve.rejected").Value(); got != 1 {
		t.Errorf("serve.rejected after release = %d, want still 1", got)
	}
}

// A flaky server — every second /synthesize rejected with 503 — must not
// poison the replay: the failed requests are counted per name and excluded
// from the latency percentiles, and the replay itself still succeeds.
func TestLoadgenFlakyServer(t *testing.T) {
	srv := &serve.Server{Cache: pipeline.NewCache(), MaxInflight: -1}
	inner := srv.Handler()
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/synthesize" && n.Add(1)%2 == 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"synthetic flake"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	mix := []serve.Request{{App: "MWD", Method: "SRing"}}
	res, err := serve.Replay(context.Background(), serve.ReplayConfig{
		BaseURL:     ts.URL,
		Concurrency: 1,
		Repeat:      6,
		Mix:         mix,
	})
	if err != nil {
		t.Fatalf("flaky responses must not fail the replay: %v", err)
	}
	total := res.TotalErrors()
	if total == 0 {
		t.Fatal("no errors counted although half the requests were 503s")
	}
	var served, errs int
	for _, s := range res.Warm {
		served += s.Count
		errs += s.Errors
	}
	for _, s := range res.Cold {
		served += s.Count
		errs += s.Errors
	}
	// 1 cold + 6 warm requests, every second one rejected.
	if served+errs != 7 {
		t.Fatalf("served %d + errors %d != 7 requests sent", served, errs)
	}
	if errs != total {
		t.Fatalf("TotalErrors() = %d, per-name sum = %d", total, errs)
	}
	for _, s := range append(append([]serve.ReplayStats{}, res.Cold...), res.Warm...) {
		if s.Count > 0 && s.P50Ns <= 0 {
			t.Errorf("%s: served requests but p50 = %d", s.Name, s.P50Ns)
		}
		if s.Count == 0 && s.P50Ns != 0 {
			t.Errorf("%s: no served requests but p50 = %d", s.Name, s.P50Ns)
		}
	}
}
