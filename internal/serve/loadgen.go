package serve

// The load-replay engine behind cmd/loadgen: fire a mixed synthesis
// workload at a running serve daemon twice — a cold pass and an identical
// warm pass — at configurable concurrency, and report per-request latency
// percentiles plus the cache hit rate measured from the server's
// /stats.json deltas. The warm:cold p50 ratio is the serving cache's
// headline number; the warm percentiles, exported in the BENCH_*.json
// schema, are what `bench -compare` gates.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"sring/internal/benchfmt"
	"sring/internal/netlist"
	"sring/internal/pipeline"
)

// ReplayConfig configures one cold+warm replay.
type ReplayConfig struct {
	// BaseURL is the serve daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client (nil: http.DefaultClient).
	Client *http.Client
	// Concurrency is the number of in-flight requests (0 or 1: sequential).
	Concurrency int
	// Repeat replays each mix element this many times in the warm pass
	// (0: 1) for percentile sample depth. The cold pass always runs each
	// element exactly once: cold work is unique by definition.
	Repeat int
	// Mix is the request mix; names derive as "Serve/<app>/<method>".
	Mix []Request
}

// ReplayStats is one request name's latency distribution within a pass:
// the client-observed request latency (what a user of the service feels,
// HTTP overhead included) and the server-reported synthesis time (what the
// cache actually buys).
type ReplayStats struct {
	Name   string  `json:"name"`
	Count  int     `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P99Ns  int64   `json:"p99_ns"`
	// SynthP50Ns/SynthP99Ns distribute the responses' synthesis_ns.
	SynthP50Ns int64 `json:"synth_p50_ns"`
	SynthP99Ns int64 `json:"synth_p99_ns"`
	// Errors counts this name's non-2xx responses (e.g. 429 load sheds).
	// They are excluded from Count and every latency number above — a
	// rejection returns in microseconds and would drag the percentiles of
	// the requests that actually synthesised.
	Errors int `json:"errors,omitempty"`
}

// ReplayResult is the outcome of a cold+warm replay.
type ReplayResult struct {
	Cold []ReplayStats `json:"cold"`
	Warm []ReplayStats `json:"warm"`
	// ColdWallNs and WarmWallNs are each pass's total wall-clock.
	ColdWallNs int64 `json:"cold_wall_ns"`
	WarmWallNs int64 `json:"warm_wall_ns"`
	// Hits/Misses/HitRate are the server-side cache deltas across both
	// passes (hit rate = hits/(hits+misses); see README "Serving").
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// ColdP50 and WarmP50 return the median synthesis time over every request
// of a pass — the two numbers whose ratio demonstrates the cache. Client
// latency would understate it: localhost HTTP costs a fixed fraction of a
// millisecond that no cache can remove.
func (r *ReplayResult) ColdP50() int64 { return overallP50(r.Cold) }
func (r *ReplayResult) WarmP50() int64 { return overallP50(r.Warm) }

// DefaultMix is the benchmark mix cmd/loadgen replays when not given a
// file: every builtin application under SRing, plus the three baseline
// methods on the smallest application, all at default options.
func DefaultMix() []Request {
	// The paper's methods by fixed name, not pipeline.Methods(): the mix
	// executes on the server, whose registry is authoritative — and the
	// local process may have nothing (a pure client) or extras (test
	// constructors) registered.
	var mix []Request
	for _, app := range netlist.Benchmarks() {
		mix = append(mix, Request{App: app.Name, Method: "SRing"})
	}
	for _, m := range []string{"ORNoC", "CTORing", "XRing"} {
		mix = append(mix, Request{App: "MWD", Method: m})
	}
	return mix
}

// TotalErrors sums the non-2xx response counts across both passes.
func (r *ReplayResult) TotalErrors() int {
	n := 0
	for _, s := range r.Cold {
		n += s.Errors
	}
	for _, s := range r.Warm {
		n += s.Errors
	}
	return n
}

// Replay runs the cold and warm passes and gathers server-side cache
// deltas. A transport failure or malformed response fails the replay — a
// load profile over a misbehaving server is not a measurement — but non-2xx
// responses are counted per name and excluded from the latency numbers: a
// server shedding load under pressure (429) is behaviour to measure, not a
// broken run.
func Replay(ctx context.Context, cfg ReplayConfig) (*ReplayResult, error) {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty request mix")
	}

	before, err := fetchStats(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	res := &ReplayResult{}
	for pass := 0; pass < 2; pass++ {
		// The cold pass replays each element exactly once — a repeat within
		// the pass would already hit the cache and pollute the cold
		// percentiles. The warm pass repeats for sample depth.
		repeat := 1
		if pass == 1 {
			repeat = cfg.Repeat
		}
		start := time.Now()
		stats, err := runPass(ctx, client, cfg, repeat)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Nanoseconds()
		if pass == 0 {
			res.Cold, res.ColdWallNs = stats, wall
		} else {
			res.Warm, res.WarmWallNs = stats, wall
		}
	}
	after, err := fetchStats(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	res.Hits = after.Hits - before.Hits
	res.Misses = after.Misses - before.Misses
	if total := res.Hits + res.Misses; total > 0 {
		res.HitRate = float64(res.Hits) / float64(total)
	}
	return res, nil
}

// runPass fires the whole mix (times repeat) at the configured concurrency
// and aggregates latencies per request name.
func runPass(ctx context.Context, client *http.Client, cfg ReplayConfig, repeat int) ([]ReplayStats, error) {
	if repeat < 1 {
		repeat = 1
	}
	workers := cfg.Concurrency
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan Request)
	var (
		mu        sync.Mutex
		byName    = map[string][]sample{}
		errByName = map[string]int{}
		firstErr  error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				s, err := doOne(ctx, client, cfg.BaseURL, req)
				name := requestName(req)
				var se *statusError
				mu.Lock()
				switch {
				case errors.As(err, &se):
					errByName[name]++
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
				default:
					byName[name] = append(byName[name], s)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < repeat; i++ {
		for _, req := range cfg.Mix {
			jobs <- req
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	nameSet := map[string]bool{}
	for n := range byName {
		nameSet[n] = true
	}
	for n := range errByName {
		nameSet[n] = true
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ReplayStats, 0, len(names))
	for _, n := range names {
		samples := byName[n]
		lats := make([]int64, len(samples))
		synths := make([]int64, len(samples))
		var sum int64
		for i, s := range samples {
			lats[i], synths[i] = s.lat, s.synth
			sum += s.lat
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		sort.Slice(synths, func(i, j int) bool { return synths[i] < synths[j] })
		st := ReplayStats{
			Name:       n,
			Count:      len(samples),
			P50Ns:      percentile(lats, 50),
			P99Ns:      percentile(lats, 99),
			SynthP50Ns: percentile(synths, 50),
			SynthP99Ns: percentile(synths, 99),
			Errors:     errByName[n],
		}
		if len(samples) > 0 {
			st.MeanNs = float64(sum) / float64(len(samples))
		}
		out = append(out, st)
	}
	return out, nil
}

// statusError is a non-2xx synthesis response: counted per name by the
// replay, not fatal to it.
type statusError struct {
	name   string
	status int
	body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("loadgen: %s: HTTP %d: %s", e.name, e.status, e.body)
}

// sample is one completed request: client-observed latency and
// server-reported synthesis time.
type sample struct{ lat, synth int64 }

// doOne sends one synthesis request and returns its timing sample.
func doOne(ctx context.Context, client *http.Client, baseURL string, req Request) (sample, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return sample{}, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/synthesize", bytes.NewReader(body))
	if err != nil {
		return sample{}, err
	}
	hr.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(hr)
	if err != nil {
		return sample{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	lat := time.Since(start).Nanoseconds()
	if err != nil {
		return sample{}, err
	}
	if resp.StatusCode/100 != 2 {
		return sample{}, &statusError{
			name:   requestName(req),
			status: resp.StatusCode,
			body:   string(bytes.TrimSpace(payload)),
		}
	}
	var out Response
	if err := json.Unmarshal(payload, &out); err != nil {
		return sample{}, fmt.Errorf("loadgen: %s: bad response: %w", requestName(req), err)
	}
	if out.Metrics == nil {
		return sample{}, fmt.Errorf("loadgen: %s: response carries no metrics", requestName(req))
	}
	return sample{lat: lat, synth: out.SynthesisNs}, nil
}

// fetchStats reads the server's cumulative cache statistics.
func fetchStats(ctx context.Context, client *http.Client, baseURL string) (*pipeline.CacheStats, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/stats.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: stats: HTTP %d", resp.StatusCode)
	}
	var st pipeline.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	return &st, nil
}

// requestName derives an entry name: "Serve/<app>/<method>".
func requestName(req Request) string {
	app := req.App
	if app == "" {
		app = "inline"
	}
	return fmt.Sprintf("Serve/%s/%s", app, req.Method)
}

// Entries converts the warm pass into BENCH_*.json entries: steady-state
// serving latency is what regressions are gated on, with the request
// distribution riding in StageNs under the "request" key.
func (r *ReplayResult) Entries(concurrency int) []benchfmt.Entry {
	out := make([]benchfmt.Entry, 0, len(r.Warm))
	for _, s := range r.Warm {
		out = append(out, benchfmt.Entry{
			Name:        s.Name,
			Parallelism: concurrency,
			NsPerOp:     s.MeanNs,
			Runs:        s.Count,
			StageNs: map[string]benchfmt.StagePct{
				"request":   {P50: s.P50Ns, P99: s.P99Ns},
				"synthesis": {P50: s.SynthP50Ns, P99: s.SynthP99Ns},
			},
		})
	}
	return out
}

// CacheBench converts the replay's cold/warm split into the snapshot's
// cache section.
func (r *ReplayResult) CacheBench() *benchfmt.CacheBench {
	return &benchfmt.CacheBench{
		ColdNs:  r.ColdWallNs,
		WarmNs:  r.WarmWallNs,
		Hits:    r.Hits,
		Misses:  r.Misses,
		HitRate: r.HitRate,
	}
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// overallP50 pools the per-name synthesis medians weighted by sample
// count: with equal counts it collapses to the plain median of all
// requests, and it is robust to one name dominating the mix.
func overallP50(stats []ReplayStats) int64 {
	var meds []int64
	for _, s := range stats {
		for i := 0; i < s.Count; i++ {
			meds = append(meds, s.SynthP50Ns)
		}
	}
	if len(meds) == 0 {
		return 0
	}
	sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
	return meds[len(meds)/2]
}
