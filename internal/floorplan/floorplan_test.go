package floorplan

import (
	"math/rand"
	"testing"

	"sring/internal/geom"
	"sring/internal/netlist"
)

// chainApp returns an n-node chain task graph with all nodes at the origin
// (no placement).
func chainApp(n int) *netlist.Application {
	app := &netlist.Application{Name: "chain"}
	for i := 0; i < n; i++ {
		app.Nodes = append(app.Nodes, netlist.Node{ID: netlist.NodeID(i)})
	}
	for i := 0; i+1 < n; i++ {
		app.Messages = append(app.Messages, netlist.Message{
			Src: netlist.NodeID(i), Dst: netlist.NodeID(i + 1), Bandwidth: 64,
		})
	}
	return app
}

func TestPlaceProducesValidApplication(t *testing.T) {
	app := chainApp(9)
	placed, err := Place(app, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := placed.Validate(); err != nil {
		t.Fatalf("placed app invalid: %v", err)
	}
	// Structure preserved.
	if placed.N() != app.N() || placed.M() != app.M() {
		t.Error("Place changed the netlist structure")
	}
	for i := range app.Messages {
		if placed.Messages[i] != app.Messages[i] {
			t.Error("Place changed messages")
		}
	}
	// Input untouched.
	for _, n := range app.Nodes {
		if !n.Pos.Eq(geom.Pt(0, 0)) {
			t.Error("Place mutated its input")
		}
	}
}

func TestPlaceBeatsRandomPlacement(t *testing.T) {
	app := chainApp(16)
	placed, err := Place(app, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	annealed := Wirelength(placed)

	// Average wirelength over random placements on the same grid.
	rng := rand.New(rand.NewSource(9))
	var randomSum float64
	const trials = 50
	for tr := 0; tr < trials; tr++ {
		r := app.Clone()
		perm := rng.Perm(16)
		for i := range r.Nodes {
			r.Nodes[i].Pos = geom.Pt(float64(perm[i]%4)*0.15, float64(perm[i]/4)*0.15)
		}
		randomSum += Wirelength(r)
	}
	randomAvg := randomSum / trials
	if annealed >= randomAvg*0.7 {
		t.Errorf("annealed wirelength %v not clearly below random average %v", annealed, randomAvg)
	}
}

func TestPlaceChainNearOptimal(t *testing.T) {
	// A 4-node chain on a 2x2 grid: the optimum keeps every hop at one
	// pitch (wirelength 3 * 64 * 0.15 = 28.8).
	app := chainApp(4)
	placed, err := Place(app, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := Wirelength(placed); got > 28.8+1e-9 {
		t.Errorf("chain wirelength %v, want optimal 28.8", got)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	app := chainApp(10)
	a, err := Place(app, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(app, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if !a.Nodes[i].Pos.Eq(b.Nodes[i].Pos) {
			t.Fatal("Place not deterministic")
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(&netlist.Application{}, Options{}); err == nil {
		t.Error("empty app accepted")
	}
	noMsgs := &netlist.Application{Nodes: []netlist.Node{{ID: 0}, {ID: 1}}}
	if _, err := Place(noMsgs, Options{}); err == nil {
		t.Error("app without messages accepted")
	}
	if _, err := Place(chainApp(4), Options{PitchMM: -1}); err == nil {
		t.Error("negative pitch accepted")
	}
}

func TestPlaceRespectsBandwidthWeights(t *testing.T) {
	// Star with one dominant flow: the heavy partner must end up adjacent
	// to the hub.
	app := &netlist.Application{Name: "star"}
	for i := 0; i < 9; i++ {
		app.Nodes = append(app.Nodes, netlist.Node{ID: netlist.NodeID(i)})
	}
	for i := 1; i < 9; i++ {
		bw := 1.0
		if i == 8 {
			bw = 10000
		}
		app.Messages = append(app.Messages, netlist.Message{
			Src: 0, Dst: netlist.NodeID(i), Bandwidth: bw,
		})
	}
	placed, err := Place(app, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := placed.Pos(0).Manhattan(placed.Pos(8))
	if d > 0.15+1e-9 {
		t.Errorf("dominant-flow partner at distance %v, want adjacent (0.15)", d)
	}
}

// Placed task graphs feed straight into synthesis: end-to-end smoke.
func TestPlaceFeedsSynthesis(t *testing.T) {
	app := chainApp(8)
	placed, err := Place(app, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := placed.Validate(); err != nil {
		t.Fatal(err)
	}
	if placed.MaxCommDistance() <= 0 {
		t.Error("degenerate placement")
	}
}
