// Package floorplan places application nodes on the optical layer when the
// input provides no (meaningful) coordinates. The SRing paper assumes
// placements are given — its clustering uses them — so a practical front
// end needs this step for netlists that arrive as bare task graphs.
//
// Placement is simulated annealing over grid slots, minimising the
// bandwidth-weighted rectilinear wirelength of the communication graph —
// the same objective that makes SRing's physical clustering effective.
// Deterministic for a fixed seed.
package floorplan

import (
	"fmt"
	"math"
	"math/rand"

	"sring/internal/geom"
	"sring/internal/netlist"
)

// Options tunes the annealer.
type Options struct {
	// PitchMM is the grid pitch. Zero means 0.15 (the benchmark default).
	PitchMM float64
	// Iterations is the number of proposed moves. Zero means 20000.
	Iterations int
	// Seed drives the annealer.
	Seed int64
}

// Place returns a copy of the application with nodes placed on a grid.
// Message structure is preserved; only coordinates change. The input's
// coordinates are ignored entirely (they may be missing or degenerate).
func Place(app *netlist.Application, opt Options) (*netlist.Application, error) {
	if len(app.Nodes) < 2 {
		return nil, fmt.Errorf("floorplan: need at least 2 nodes, have %d", len(app.Nodes))
	}
	if len(app.Messages) == 0 {
		return nil, fmt.Errorf("floorplan: application has no messages")
	}
	pitch := opt.PitchMM
	if pitch == 0 {
		pitch = 0.15
	}
	if pitch < 0 {
		return nil, fmt.Errorf("floorplan: negative pitch %v", pitch)
	}
	iterations := opt.Iterations
	if iterations == 0 {
		iterations = 20000
	}

	n := len(app.Nodes)
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	slots := cols * rows
	slotPos := make([]geom.Point, slots)
	for s := range slotPos {
		slotPos[s] = geom.Pt(float64(s%cols)*pitch, float64(s/cols)*pitch)
	}

	// slotOf[node] and nodeAt[slot] (-1 = empty).
	rng := rand.New(rand.NewSource(opt.Seed))
	slotOf := make([]int, n)
	nodeAt := make([]int, slots)
	for s := range nodeAt {
		nodeAt[s] = -1
	}
	perm := rng.Perm(slots)
	for i := 0; i < n; i++ {
		slotOf[i] = perm[i]
		nodeAt[perm[i]] = i
	}

	weight := func(m netlist.Message) float64 {
		if m.Bandwidth > 0 {
			return m.Bandwidth
		}
		return 1
	}
	cost := func() float64 {
		var c float64
		for _, m := range app.Messages {
			c += weight(m) * slotPos[slotOf[m.Src]].Manhattan(slotPos[slotOf[m.Dst]])
		}
		return c
	}

	cur := cost()
	// Initial temperature: a healthy fraction of the initial cost per move.
	temp := math.Max(cur/float64(n), 1e-9)
	cooling := math.Pow(1e-3, 1/float64(iterations)) // reach temp/1000 at the end

	for it := 0; it < iterations; it++ {
		a := rng.Intn(n)
		s := rng.Intn(slots)
		if slotOf[a] == s {
			continue
		}
		b := nodeAt[s] // may be -1 (move into an empty slot)
		oldA := slotOf[a]

		apply := func() {
			nodeAt[oldA], nodeAt[s] = b, a
			slotOf[a] = s
			if b >= 0 {
				slotOf[b] = oldA
			}
		}
		apply()
		next := cost()
		delta := next - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur = next
		} else {
			// Revert.
			nodeAt[s] = b
			nodeAt[oldA] = a
			slotOf[a] = oldA
			if b >= 0 {
				slotOf[b] = s
			}
		}
		temp *= cooling
	}

	placed := app.Clone()
	for i := range placed.Nodes {
		placed.Nodes[i].Pos = slotPos[slotOf[i]]
	}
	if err := placed.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: produced invalid placement: %w", err)
	}
	return placed, nil
}

// Wirelength returns the bandwidth-weighted rectilinear wirelength of an
// application's current placement — the annealer's objective, exposed for
// comparing placements.
func Wirelength(app *netlist.Application) float64 {
	var c float64
	for _, m := range app.Messages {
		w := m.Bandwidth
		if w <= 0 {
			w = 1
		}
		c += w * app.Pos(m.Src).Manhattan(app.Pos(m.Dst))
	}
	return c
}
