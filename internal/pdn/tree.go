package pdn

import (
	"fmt"
	"sort"

	"sring/internal/geom"
	"sring/internal/netlist"
)

// TreeNode is one element of a physically routed PDN: either a 1x2 splitter
// (two children) or a leaf feeding a sender node.
type TreeNode struct {
	// Pos is the splitter's (or leaf tap's) physical location.
	Pos geom.Point
	// Node is the fed sender for leaves; -1 for internal splitters.
	Node netlist.NodeID
	// Children are nil for leaves, exactly two for splitters except for a
	// degenerate single-leaf tree.
	Children []*TreeNode
}

// IsLeaf reports whether the element feeds a sender directly.
func (t *TreeNode) IsLeaf() bool { return len(t.Children) == 0 }

// Tree is a physically routed power-distribution tree.
type Tree struct {
	Root *TreeNode
	// Laser is the source location the root trunk starts from.
	Laser geom.Point
	// FeedLengthMM is the total routed waveguide length from the laser to
	// each sender leaf (trunk + every tree edge on the way, routed
	// rectilinearly).
	FeedLengthMM map[netlist.NodeID]float64
	// Depth is the maximum number of splitters on any laser-to-leaf route.
	Depth int
	// TotalWireMM is the routed length of the whole tree.
	TotalWireMM float64
}

// BuildTree routes a balanced splitter tree over the sender nodes: nodes
// are recursively split at the median of their wider coordinate axis, a
// splitter sits at each group's centroid, and edges are routed
// rectilinearly (L-shapes). This realises the balanced-tree PDN of [22]
// physically instead of only counting stages.
func BuildTree(app *netlist.Application, senderNodes []netlist.NodeID, laser geom.Point) (*Tree, error) {
	if len(senderNodes) == 0 {
		return nil, fmt.Errorf("pdn: BuildTree with no sender nodes")
	}
	seen := make(map[netlist.NodeID]bool, len(senderNodes))
	for _, n := range senderNodes {
		if n < 0 || int(n) >= len(app.Nodes) {
			return nil, fmt.Errorf("pdn: sender node %d outside application", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("pdn: duplicate sender node %d", n)
		}
		seen[n] = true
	}
	ids := append([]netlist.NodeID(nil), senderNodes...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	root := buildSubtree(app, ids)
	tree := &Tree{
		Root:         root,
		Laser:        laser,
		FeedLengthMM: make(map[netlist.NodeID]float64, len(ids)),
	}
	trunk := laser.Manhattan(root.Pos)
	tree.TotalWireMM = trunk
	tree.walk(root, trunk, 0)
	return tree, nil
}

// buildSubtree recursively partitions the nodes.
func buildSubtree(app *netlist.Application, ids []netlist.NodeID) *TreeNode {
	if len(ids) == 1 {
		return &TreeNode{Pos: app.Pos(ids[0]), Node: ids[0]}
	}
	pts := make([]geom.Point, len(ids))
	for i, id := range ids {
		pts[i] = app.Pos(id)
	}
	min, max := geom.BoundingBox(pts)
	// Split along the wider axis at the median.
	sorted := append([]netlist.NodeID(nil), ids...)
	if max.X-min.X >= max.Y-min.Y {
		sort.Slice(sorted, func(i, j int) bool {
			a, b := app.Pos(sorted[i]), app.Pos(sorted[j])
			if a.X != b.X {
				return a.X < b.X
			}
			return sorted[i] < sorted[j]
		})
	} else {
		sort.Slice(sorted, func(i, j int) bool {
			a, b := app.Pos(sorted[i]), app.Pos(sorted[j])
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			return sorted[i] < sorted[j]
		})
	}
	mid := len(sorted) / 2
	left := buildSubtree(app, sorted[:mid])
	right := buildSubtree(app, sorted[mid:])
	// Splitter at the centroid of the group.
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	return &TreeNode{
		Pos:      geom.Pt(cx/float64(len(pts)), cy/float64(len(pts))),
		Node:     -1,
		Children: []*TreeNode{left, right},
	}
}

// walk accumulates routed lengths and depths.
func (t *Tree) walk(n *TreeNode, lengthSoFar float64, splittersSoFar int) {
	if n.IsLeaf() {
		t.FeedLengthMM[n.Node] = lengthSoFar
		if splittersSoFar > t.Depth {
			t.Depth = splittersSoFar
		}
		return
	}
	for _, c := range n.Children {
		edge := n.Pos.Manhattan(c.Pos)
		t.TotalWireMM += edge
		t.walk(c, lengthSoFar+edge, splittersSoFar+1)
	}
}

// Leaves returns the number of fed senders.
func (t *Tree) Leaves() int { return len(t.FeedLengthMM) }

// Splitters returns the number of internal 1x2 splitters in the tree.
func (t *Tree) Splitters() int {
	count := 0
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		if n.IsLeaf() {
			return
		}
		count++
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
	return count
}

// Segments returns the rectilinear waveguide segments of the routed tree
// (each edge as an L-shape), usable for rendering.
func (t *Tree) Segments() []geom.Segment {
	var segs []geom.Segment
	add := func(a, b geom.Point) {
		segs = append(segs, geom.LRoute(a, b).Segments()...)
	}
	add(t.Laser, t.Root.Pos)
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		for _, c := range n.Children {
			add(n.Pos, c.Pos)
			rec(c)
		}
	}
	rec(t.Root)
	return segs
}
