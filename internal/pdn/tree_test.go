package pdn

import (
	"math"
	"testing"

	"sring/internal/geom"
	"sring/internal/netlist"
)

func TestBuildTreeBasics(t *testing.T) {
	a := app(8)
	tree, err := BuildTree(a, ids(8), geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 8 {
		t.Errorf("Leaves = %d, want 8", tree.Leaves())
	}
	// A balanced binary tree over 8 leaves has 7 splitters, depth 3.
	if tree.Splitters() != 7 {
		t.Errorf("Splitters = %d, want 7", tree.Splitters())
	}
	if tree.Depth != 3 {
		t.Errorf("Depth = %d, want 3", tree.Depth)
	}
	if tree.TotalWireMM <= 0 {
		t.Error("TotalWireMM not positive")
	}
}

func TestBuildTreeDepthMatchesStageCount(t *testing.T) {
	// The routed tree's depth must equal the abstract TreeStages count used
	// by Build for every benchmark-scale size.
	for _, n := range []int{2, 3, 4, 7, 8, 12, 16, 26} {
		a := app(n)
		tree, err := BuildTree(a, ids(n), geom.Pt(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		want := treeDepth(n)
		// Median splits give ceil(log2 n) depth for powers of two and at
		// most one extra level otherwise.
		if tree.Depth < want || tree.Depth > want+1 {
			t.Errorf("n=%d: Depth = %d, want %d..%d", n, tree.Depth, want, want+1)
		}
		if tree.Leaves() != n {
			t.Errorf("n=%d: Leaves = %d", n, tree.Leaves())
		}
		if tree.Splitters() != n-1 {
			t.Errorf("n=%d: Splitters = %d, want %d", n, tree.Splitters(), n-1)
		}
	}
}

func TestBuildTreeFeedLengths(t *testing.T) {
	a := app(4)
	laser := geom.Pt(0, 0)
	tree, err := BuildTree(a, ids(4), laser)
	if err != nil {
		t.Fatal(err)
	}
	for n, l := range tree.FeedLengthMM {
		// Routed feed can never beat the direct Manhattan distance.
		direct := laser.Manhattan(a.Pos(n))
		if l < direct-geom.Eps {
			t.Errorf("node %d: feed %v below direct distance %v", n, l, direct)
		}
	}
}

func TestBuildTreeSingleSender(t *testing.T) {
	a := app(2)
	tree, err := BuildTree(a, []netlist.NodeID{1}, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth != 0 || tree.Splitters() != 0 || tree.Leaves() != 1 {
		t.Errorf("single-sender tree: depth=%d splitters=%d leaves=%d",
			tree.Depth, tree.Splitters(), tree.Leaves())
	}
	if math.Abs(tree.FeedLengthMM[1]-0.1) > geom.Eps {
		t.Errorf("feed length = %v, want 0.1", tree.FeedLengthMM[1])
	}
}

func TestBuildTreeErrors(t *testing.T) {
	a := app(4)
	if _, err := BuildTree(a, nil, geom.Pt(0, 0)); err == nil {
		t.Error("empty sender set accepted")
	}
	if _, err := BuildTree(a, []netlist.NodeID{9}, geom.Pt(0, 0)); err == nil {
		t.Error("out-of-range sender accepted")
	}
	if _, err := BuildTree(a, []netlist.NodeID{0, 0}, geom.Pt(0, 0)); err == nil {
		t.Error("duplicate sender accepted")
	}
}

func TestBuildTreeSegments(t *testing.T) {
	a := app(4)
	tree, err := BuildTree(a, ids(4), geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	segs := tree.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	var total float64
	for _, s := range segs {
		if !s.Horizontal() && !s.Vertical() {
			t.Error("non-rectilinear PDN segment")
		}
		total += s.Length()
	}
	if math.Abs(total-tree.TotalWireMM) > 1e-9 {
		t.Errorf("segment total %v != TotalWireMM %v", total, tree.TotalWireMM)
	}
}

func TestBuildTreeDeterministic(t *testing.T) {
	a := app(12)
	t1, err := BuildTree(a, ids(12), geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := BuildTree(a, ids(12), geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if t1.TotalWireMM != t2.TotalWireMM || t1.Depth != t2.Depth {
		t.Error("BuildTree not deterministic")
	}
	for n, l := range t1.FeedLengthMM {
		if t2.FeedLengthMM[n] != l {
			t.Errorf("feed length for %d differs", n)
		}
	}
}

func TestBuildWithPhysicalRouting(t *testing.T) {
	a := app(8)
	abstract, err := Build(a, ids(8), nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := Build(a, ids(8), nil, nil, Config{RoutePhysical: true})
	if err != nil {
		t.Fatal(err)
	}
	if routed.Tree == nil {
		t.Fatal("physical PDN missing tree")
	}
	if abstract.Tree != nil {
		t.Error("abstract PDN should not carry a tree")
	}
	// Routed feeds are at least as long as direct distances.
	for n, direct := range abstract.FeedLengthMM {
		if routed.FeedLengthMM[n] < direct-1e-9 {
			t.Errorf("node %d: routed feed %v below direct %v", n, routed.FeedLengthMM[n], direct)
		}
	}
	// 8 senders: both models agree on 3 stages.
	if routed.TreeStages != abstract.TreeStages {
		t.Errorf("routed stages %d != abstract %d", routed.TreeStages, abstract.TreeStages)
	}
}
