// Package pdn builds the power-distribution network of a WRONoC ring
// router: the waveguide tree that carries continuous-wave laser power from
// the off-chip laser source to every sender (paper Sec. I-II, after the PDN
// design of Ortín-Obón et al. [22]).
//
// The PDN is modelled as a balanced binary splitter tree: laser power is
// split log2-many times until one feed reaches each sender node, plus an
// optional node-level splitter where a node's two senders must receive the
// same wavelengths (paper Fig. 2(c) / Fig. 3(c)). Every splitter stage
// costs the signal's laser budget SplitterStageDB (3 dB division + excess
// loss), which is what the SRing MILP minimises.
package pdn

import (
	"fmt"
	"math"

	"sring/internal/geom"
	"sring/internal/loss"
	"sring/internal/netlist"
)

// Style selects the PDN construction convention.
type Style int

const (
	// StyleShared is the PDN design the SRing paper applies to SRing,
	// ORNoC and CTORing (footnote e): one balanced distribution tree over
	// the sender nodes, with a node-level splitter only where a node's two
	// senders share wavelengths.
	StyleShared Style = iota
	// StyleXRing is XRing's own PDN: the distribution tree plus one extra
	// per-waveguide branching stage, the convention under which XRing's
	// splitter usage exceeds SRing's in the paper's Table I.
	StyleXRing
)

// String returns the style label.
func (s Style) String() string {
	switch s {
	case StyleShared:
		return "shared"
	case StyleXRing:
		return "xring"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Config controls Build.
type Config struct {
	Style Style
	// ForceNodeSplitter applies the ORNoC/CTORing convention that every
	// node's two senders are joined by a splitter regardless of wavelength
	// sharing (paper Sec. II-C).
	ForceNodeSplitter bool
	// LaserPos is the location of the laser coupler on the optical layer.
	// The zero value (origin corner) is the conventional placement.
	LaserPos geom.Point
	// RoutePhysical constructs the distribution tree physically (median
	// splits, rectilinear trunks; see BuildTree) and takes stage counts and
	// feed lengths from the routed tree instead of the abstract
	// ceil(log2)/direct-distance model.
	RoutePhysical bool
}

// Network is a constructed PDN.
type Network struct {
	// TreeStages is the depth of the balanced splitter tree distributing
	// laser power to the sender nodes: ceil(log2(#senderNodes)).
	TreeStages int
	// ExtraStages is the style-dependent additional branching depth.
	ExtraStages int
	// NodeSplitter marks sender nodes whose feed is split once more
	// between their two senders.
	NodeSplitter map[netlist.NodeID]bool
	// FeedLengthMM is the rectilinear distance laser power travels from
	// the source to each sender node.
	FeedLengthMM map[netlist.NodeID]float64
	// TotalSplitters is the number of 1x2 splitters fabricated: the tree
	// plus the per-node splitters.
	TotalSplitters int
	// Tree is the physically routed distribution tree when the PDN was
	// built with Config.RoutePhysical; nil otherwise.
	Tree *Tree
}

// Build constructs the PDN for the given sender nodes. nodeSplitter marks
// nodes whose senders share wavelengths (from the wavelength assignment);
// with cfg.ForceNodeSplitter, every node in twoSenderNodes gets one
// regardless.
func Build(app *netlist.Application, senderNodes []netlist.NodeID,
	twoSenderNodes map[netlist.NodeID]bool, nodeSplitter map[netlist.NodeID]bool,
	cfg Config) (*Network, error) {

	if len(senderNodes) == 0 {
		return nil, fmt.Errorf("pdn: no sender nodes")
	}
	seen := make(map[netlist.NodeID]bool, len(senderNodes))
	nw := &Network{
		NodeSplitter: make(map[netlist.NodeID]bool),
		FeedLengthMM: make(map[netlist.NodeID]float64),
	}
	for _, n := range senderNodes {
		if n < 0 || int(n) >= len(app.Nodes) {
			return nil, fmt.Errorf("pdn: sender node %d outside application", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("pdn: duplicate sender node %d", n)
		}
		seen[n] = true
		nw.FeedLengthMM[n] = cfg.LaserPos.Manhattan(app.Pos(n))
	}
	nw.TreeStages = treeDepth(len(senderNodes))
	if cfg.RoutePhysical {
		tree, err := BuildTree(app, senderNodes, cfg.LaserPos)
		if err != nil {
			return nil, err
		}
		nw.Tree = tree
		nw.TreeStages = tree.Depth
		for n, l := range tree.FeedLengthMM {
			nw.FeedLengthMM[n] = l
		}
	}
	if cfg.Style == StyleXRing {
		nw.ExtraStages = 1
	}
	for n := range seen {
		switch {
		case cfg.ForceNodeSplitter && twoSenderNodes[n]:
			nw.NodeSplitter[n] = true
		case nodeSplitter[n]:
			if !twoSenderNodes[n] {
				return nil, fmt.Errorf("pdn: node %d marked for splitter but has a single sender", n)
			}
			nw.NodeSplitter[n] = true
		}
	}
	// A balanced binary tree delivering k feeds has k-1 internal splitters;
	// extra stages add one splitter per sender node feed; node splitters
	// add one each.
	nw.TotalSplitters = len(senderNodes) - 1 + nw.ExtraStages*len(senderNodes) + len(nw.NodeSplitter)
	return nw, nil
}

// treeDepth returns ceil(log2(k)) for k >= 1.
func treeDepth(k int) int {
	if k <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(k))))
}

// SplittersOnFeed returns the number of splitters the laser power of a
// signal sent by node n passes: the paper's per-path splitter count whose
// maximum over paths is #sp_w (Table I).
func (nw *Network) SplittersOnFeed(n netlist.NodeID) (int, error) {
	if _, ok := nw.FeedLengthMM[n]; !ok {
		return 0, fmt.Errorf("pdn: node %d is not a sender", n)
	}
	count := nw.TreeStages + nw.ExtraStages
	if nw.NodeSplitter[n] {
		count++
	}
	return count, nil
}

// FeedLossDB returns the PDN insertion loss charged to signals sent by
// node n: splitter stages plus propagation along the feed waveguide.
func (nw *Network) FeedLossDB(n netlist.NodeID, tech loss.Tech) (float64, error) {
	sp, err := nw.SplittersOnFeed(n)
	if err != nil {
		return 0, err
	}
	return float64(sp)*tech.SplitterStageDB() + nw.FeedLengthMM[n]*tech.PropagationDBPerMM, nil
}
