package pdn

import (
	"math"
	"testing"

	"sring/internal/geom"
	"sring/internal/loss"
	"sring/internal/netlist"
)

func app(n int) *netlist.Application {
	a := &netlist.Application{Name: "t"}
	for i := 0; i < n; i++ {
		a.Nodes = append(a.Nodes, netlist.Node{ID: netlist.NodeID(i), Pos: geom.Pt(float64(i)*0.1, 0)})
	}
	return a
}

func ids(n int) []netlist.NodeID {
	out := make([]netlist.NodeID, n)
	for i := range out {
		out[i] = netlist.NodeID(i)
	}
	return out
}

func TestTreeDepths(t *testing.T) {
	// The paper's Table I splitter counts follow ceil(log2(#senders)):
	// 8 nodes -> 3, 12 -> 4, 16 -> 4, 26 -> 5.
	cases := []struct{ k, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {12, 4}, {16, 4}, {26, 5},
	}
	for _, c := range cases {
		a := app(c.k)
		nw, err := Build(a, ids(c.k), nil, nil, Config{})
		if err != nil {
			t.Fatalf("k=%d: %v", c.k, err)
		}
		if nw.TreeStages != c.want {
			t.Errorf("k=%d: TreeStages = %d, want %d", c.k, nw.TreeStages, c.want)
		}
	}
}

func TestSplittersOnFeedShared(t *testing.T) {
	a := app(12)
	two := map[netlist.NodeID]bool{0: true, 1: true}
	sharing := map[netlist.NodeID]bool{0: true}
	nw, err := Build(a, ids(12), two, sharing, Config{Style: StyleShared})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 shares wavelengths across its senders: tree (4) + node (1).
	if got, _ := nw.SplittersOnFeed(0); got != 5 {
		t.Errorf("node 0 splitters = %d, want 5", got)
	}
	// Node 1 has two senders but disjoint wavelengths: tree only.
	if got, _ := nw.SplittersOnFeed(1); got != 4 {
		t.Errorf("node 1 splitters = %d, want 4", got)
	}
	// Single-sender node: tree only.
	if got, _ := nw.SplittersOnFeed(5); got != 4 {
		t.Errorf("node 5 splitters = %d, want 4", got)
	}
}

func TestForceNodeSplitter(t *testing.T) {
	// ORNoC/CTORing convention: splitter at every two-sender node even
	// without sharing.
	a := app(12)
	two := map[netlist.NodeID]bool{}
	for i := 0; i < 12; i++ {
		two[netlist.NodeID(i)] = true
	}
	nw, err := Build(a, ids(12), two, nil, Config{ForceNodeSplitter: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if got, _ := nw.SplittersOnFeed(netlist.NodeID(i)); got != 5 {
			t.Errorf("node %d splitters = %d, want 5 (= ceil(log2 12) + 1)", i, got)
		}
	}
}

func TestXRingStyleExtraStage(t *testing.T) {
	a := app(8)
	two := map[netlist.NodeID]bool{3: true}
	sharing := map[netlist.NodeID]bool{3: true}
	nw, err := Build(a, ids(8), two, sharing, Config{Style: StyleXRing})
	if err != nil {
		t.Fatal(err)
	}
	// tree (3) + extra (1) + node (1) = 5, matching XRing's 8PM rows.
	if got, _ := nw.SplittersOnFeed(3); got != 5 {
		t.Errorf("sharing node splitters = %d, want 5", got)
	}
	if got, _ := nw.SplittersOnFeed(0); got != 4 {
		t.Errorf("plain node splitters = %d, want 4", got)
	}
}

func TestBuildErrors(t *testing.T) {
	a := app(4)
	if _, err := Build(a, nil, nil, nil, Config{}); err == nil {
		t.Error("empty sender set accepted")
	}
	if _, err := Build(a, []netlist.NodeID{9}, nil, nil, Config{}); err == nil {
		t.Error("out-of-range sender accepted")
	}
	if _, err := Build(a, []netlist.NodeID{1, 1}, nil, nil, Config{}); err == nil {
		t.Error("duplicate sender accepted")
	}
	// Splitter on single-sender node is a modelling error.
	if _, err := Build(a, ids(4), nil, map[netlist.NodeID]bool{0: true}, Config{}); err == nil {
		t.Error("splitter on single-sender node accepted")
	}
}

func TestSplittersOnFeedUnknownNode(t *testing.T) {
	a := app(4)
	nw, err := Build(a, ids(4), nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.SplittersOnFeed(9); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := nw.FeedLossDB(9, loss.Default()); err == nil {
		t.Error("unknown node accepted by FeedLossDB")
	}
}

func TestFeedLossDB(t *testing.T) {
	a := app(2) // node 1 at (0.1, 0); laser at origin
	nw, err := Build(a, ids(2), nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tech := loss.Default()
	got, err := nw.FeedLossDB(1, tech)
	if err != nil {
		t.Fatal(err)
	}
	want := 1*tech.SplitterStageDB() + 0.1*tech.PropagationDBPerMM
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("FeedLossDB = %v, want %v", got, want)
	}
}

func TestTotalSplitters(t *testing.T) {
	a := app(8)
	two := map[netlist.NodeID]bool{0: true, 1: true}
	sharing := map[netlist.NodeID]bool{0: true, 1: true}
	nw, err := Build(a, ids(8), two, sharing, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Tree: 7 internal splitters for 8 leaves; plus 2 node splitters.
	if nw.TotalSplitters != 9 {
		t.Errorf("TotalSplitters = %d, want 9", nw.TotalSplitters)
	}
}

func TestStyleString(t *testing.T) {
	if StyleShared.String() != "shared" || StyleXRing.String() != "xring" {
		t.Error("style strings wrong")
	}
	if Style(7).String() != "Style(7)" {
		t.Error("unknown style string wrong")
	}
}

func TestLaserPosition(t *testing.T) {
	a := app(2)
	nw, err := Build(a, ids(2), nil, nil, Config{LaserPos: geom.Pt(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nw.FeedLengthMM[0]-2) > 1e-12 {
		t.Errorf("feed length from (1,1) to (0,0) = %v, want 2", nw.FeedLengthMM[0])
	}
}
