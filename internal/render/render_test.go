package render

import (
	"bytes"
	"context"
	"strings"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/netlist"
	"sring/internal/pipeline"
)

func TestSVG(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.MWD(), "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SVG(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "CTORing router for MWD",
		"polyline", "circle", "ring 0 (base)", "ring 1 (base)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One polyline per routed segment: 2 rings x 12 segments.
	if got := strings.Count(out, "<polyline"); got != 24 {
		t.Errorf("polyline count = %d, want 24", got)
	}
	// One circle per node.
	if got := strings.Count(out, "<circle"); got != 12 {
		t.Errorf("circle count = %d, want 12", got)
	}
}

func TestSVGAllBenchmarks(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		d, err := pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SVG(&buf, d); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if buf.Len() < 500 {
			t.Errorf("%s: suspiciously small SVG (%d bytes)", app.Name, buf.Len())
		}
	}
}

func TestSVGDeterministic(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.VOPD(), "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := SVG(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := SVG(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("SVG output not deterministic")
	}
}
