// Package render draws synthesised designs as SVG: node placements, the
// routed waveguide of every ring in a distinct colour, and transmission
// direction arrows — the visual counterpart of the paper's layout figures
// (Fig. 1(d), Fig. 6(b)).
package render

import (
	"fmt"
	"io"
	"math"

	"sring/internal/design"
	"sring/internal/geom"
	"sring/internal/layout"
)

// palette holds visually distinct stroke colours, cycled per ring.
var palette = []string{
	"#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
	"#46f0f0", "#f032e6", "#bcf60c", "#008080", "#9a6324",
}

// SVG writes the design's layout as a standalone SVG document.
func SVG(w io.Writer, d *design.Design) error {
	var pts []geom.Point
	for _, n := range d.App.Nodes {
		pts = append(pts, n.Pos)
	}
	min, max := geom.BoundingBox(pts)
	spanX := math.Max(max.X-min.X, 0.1)
	spanY := math.Max(max.Y-min.Y, 0.1)
	margin := 0.15 * math.Max(spanX, spanY)
	scale := 720 / math.Max(spanX+2*margin, spanY+2*margin)
	// Rings are offset slightly so coincident tracks stay distinguishable.
	offset := 0.008 * math.Max(spanX, spanY)

	X := func(x float64) float64 { return (x - min.X + margin) * scale }
	Y := func(y float64) float64 { return (y - min.Y + margin) * scale }

	width := (spanX + 2*margin) * scale
	height := (spanY + 2*margin) * scale

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">
<rect width="100%%" height="100%%" fill="white"/>
<title>%s router for %s</title>
<defs>
`, width, height+40, width, height+40, d.Method, d.App.Name); err != nil {
		return err
	}
	for ri := range d.Rings {
		color := palette[ri%len(palette)]
		fmt.Fprintf(w, `<marker id="arrow%d" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="5" markerHeight="5" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z" fill="%s"/></marker>
`, ri, color)
	}
	fmt.Fprintln(w, "</defs>")

	// PDN tree (when physically routed): dashed grey underlay.
	if d.PDN != nil && d.PDN.Tree != nil {
		for _, s := range d.PDN.Tree.Segments() {
			fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#999" stroke-width="1.5" stroke-dasharray="4 3"/>
`, X(s.A.X), Y(s.A.Y), X(s.B.X), Y(s.B.Y))
		}
	}

	// Waveguides: one polyline per routed segment, offset per ring.
	for ri, r := range d.Rings {
		color := palette[ri%len(palette)]
		dx := float64(ri) * offset
		for si := 0; si < r.Len(); si++ {
			pl, ok := d.Layout.Routes[layout.SegKey{RingID: r.ID, Seg: si}]
			if !ok {
				return fmt.Errorf("render: segment %d of ring %d not routed", si, r.ID)
			}
			points := ""
			for _, p := range pl.Points {
				points += fmt.Sprintf("%.2f,%.2f ", X(p.X+dx), Y(p.Y+dx))
			}
			marker := ""
			if si == 0 {
				marker = fmt.Sprintf(` marker-end="url(#arrow%d)"`, ri)
			}
			fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>
`, points, color, marker)
		}
	}

	// Nodes.
	for _, n := range d.App.Nodes {
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="7" fill="#222"/>
<text x="%.2f" y="%.2f" font-size="11" font-family="sans-serif" fill="#222">%s</text>
`, X(n.Pos.X), Y(n.Pos.Y), X(n.Pos.X)+9, Y(n.Pos.Y)-9, n.Name)
	}

	// Legend.
	lx := 8.0
	for ri, r := range d.Rings {
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>
<text x="%.1f" y="%.1f" font-size="12" font-family="sans-serif">ring %d (%s)</text>
`, lx, height+8, palette[ri%len(palette)], lx+16, height+18, r.ID, r.Kind)
		lx += 110
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}
