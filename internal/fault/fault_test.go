package fault

import (
	"context"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
)

func TestAnalyzeBasics(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.MWD(), "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstSenderLoss < 1 || rep.WorstReceiverLoss < 1 || rep.WorstSegmentLoss < 1 {
		t.Errorf("degenerate losses: %+v", rep)
	}
	if rep.Segments != 24 { // two 12-node rings
		t.Errorf("Segments = %d, want 24", rep.Segments)
	}
	if rep.MeanSegmentLoss <= 0 || rep.MeanSegmentLoss > float64(rep.WorstSegmentLoss) {
		t.Errorf("mean segment loss inconsistent: %+v", rep)
	}
	if rep.SenderFrontEnds < 1 || rep.ReceiverFrontEnds < 1 {
		t.Errorf("front-end counts wrong: %+v", rep)
	}
}

func TestAnalyzeExactCounts(t *testing.T) {
	// Hand-built design: 3 messages, two from node 0 on the same ring.
	app := &netlist.Application{
		Name: "t",
		Nodes: []netlist.Node{
			{ID: 0, Pos: netlist.MWD().Nodes[0].Pos},
			{ID: 1, Pos: netlist.MWD().Nodes[1].Pos},
			{ID: 2, Pos: netlist.MWD().Nodes[2].Pos},
		},
		Messages: []netlist.Message{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2},
		},
	}
	r := &ring.Ring{ID: 0, Kind: ring.Base, Order: []netlist.NodeID{0, 1, 2}}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	d, err := design.Finish(app, "t", []*ring.Ring{r}, paths, design.Options{PDN: pdn.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0's sender carries 2 messages; receiver at node 2 carries 2.
	if rep.WorstSenderLoss != 2 {
		t.Errorf("WorstSenderLoss = %d, want 2", rep.WorstSenderLoss)
	}
	if rep.WorstReceiverLoss != 2 {
		t.Errorf("WorstReceiverLoss = %d, want 2", rep.WorstReceiverLoss)
	}
	// Segment (1->2) carries messages 0->2 and 1->2.
	if rep.WorstSegmentLoss != 2 {
		t.Errorf("WorstSegmentLoss = %d, want 2", rep.WorstSegmentLoss)
	}
	if rep.SenderFrontEnds != 2 || rep.ReceiverFrontEnds != 2 {
		t.Errorf("front ends = %d/%d, want 2/2", rep.SenderFrontEnds, rep.ReceiverFrontEnds)
	}
}

// The redundancy trade the analysis exists to expose: SRing's concentrated
// sender complement has at least the per-front-end exposure of CTORing's
// full complement on every benchmark.
func TestCustomisationConcentratesExposure(t *testing.T) {
	// Structural sanity across benchmarks rather than a strict inequality
	// (the direction can tie on tiny cases): front-end counts and worst
	// losses must be consistent with the sender complements.
	for _, app := range netlist.Benchmarks() {
		d, err := pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(d)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WorstSenderLoss*rep.SenderFrontEnds < app.M() {
			t.Errorf("%s: worst sender loss %d x %d front ends cannot carry %d messages",
				app.Name, rep.WorstSenderLoss, rep.SenderFrontEnds, app.M())
		}
	}
}

func TestAnalyzeEmptyDesign(t *testing.T) {
	if _, err := Analyze(&design.Design{}); err == nil {
		t.Error("empty design accepted")
	}
}
