// Package fault analyses the failure exposure of synthesised WRONoC
// designs: which messages are lost when a single optical component fails.
//
// WRONoCs reserve one path per message at design time; there is no runtime
// rerouting, so a failed component silently kills every message whose path
// depends on it. The analysis considers three single-fault classes:
//
//   - a sender front-end (the (node, ring) modulator + MRR array),
//   - a receiver front-end (the (node, ring) photodetector + MRR array),
//   - a waveguide segment break (one segment of one ring).
//
// Customised routers trade redundancy for efficiency: SRing's minimal
// sender complement concentrates more messages on fewer front-ends than
// the baselines' full complement, which this package quantifies (an honest
// cost of the paper's optimisation, in the spirit of the authors' LightR
// fault-tolerance work, the paper's ref. [10]).
package fault

import (
	"fmt"

	"sring/internal/design"
)

// Report is the single-fault exposure analysis of one design.
type Report struct {
	// WorstSenderLoss is the largest number of messages lost to one sender
	// front-end failure.
	WorstSenderLoss int
	// WorstReceiverLoss is the largest number of messages lost to one
	// receiver front-end failure.
	WorstReceiverLoss int
	// WorstSegmentLoss is the largest number of messages lost to one
	// waveguide segment break.
	WorstSegmentLoss int
	// MeanSegmentLoss is the average over all segments.
	MeanSegmentLoss float64
	// SenderFrontEnds and ReceiverFrontEnds count the distinct failure
	// points of each class.
	SenderFrontEnds   int
	ReceiverFrontEnds int
	// Segments counts the waveguide segments.
	Segments int
}

// Analyze computes the report.
func Analyze(d *design.Design) (*Report, error) {
	if len(d.Infos) == 0 {
		return nil, fmt.Errorf("fault: design has no paths")
	}
	senderLoad := make(map[[2]int]int)   // (node, ring) -> messages
	receiverLoad := make(map[[2]int]int) // (node, ring) -> messages
	segmentLoad := make(map[[2]int]int)  // (ring, segment) -> messages
	for _, pi := range d.Infos {
		senderLoad[[2]int{int(pi.Path.Msg.Src), pi.Path.RingID}]++
		receiverLoad[[2]int{int(pi.Path.Msg.Dst), pi.Path.RingID}]++
		for _, s := range pi.Path.Segs {
			segmentLoad[[2]int{pi.Path.RingID, s}]++
		}
	}
	// Every segment of every ring is a failure point, loaded or not.
	totalSegments := 0
	for _, r := range d.Rings {
		totalSegments += r.Len()
	}

	rep := &Report{
		SenderFrontEnds:   len(senderLoad),
		ReceiverFrontEnds: len(receiverLoad),
		Segments:          totalSegments,
	}
	for _, c := range senderLoad {
		if c > rep.WorstSenderLoss {
			rep.WorstSenderLoss = c
		}
	}
	for _, c := range receiverLoad {
		if c > rep.WorstReceiverLoss {
			rep.WorstReceiverLoss = c
		}
	}
	sum := 0
	for _, c := range segmentLoad {
		sum += c
		if c > rep.WorstSegmentLoss {
			rep.WorstSegmentLoss = c
		}
	}
	if totalSegments > 0 {
		rep.MeanSegmentLoss = float64(sum) / float64(totalSegments)
	}
	return rep, nil
}
