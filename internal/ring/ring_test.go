package ring

import (
	"math"
	"testing"
	"testing/quick"

	"sring/internal/geom"
	"sring/internal/netlist"
)

// square4 returns a 4-node app on the unit-square corners in ring order
// 0(0,0) 1(1,0) 2(1,1) 3(0,1).
func square4() *netlist.Application {
	return &netlist.Application{
		Name: "square4",
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(1, 1)},
			{ID: 3, Pos: geom.Pt(0, 1)},
		},
		Messages: []netlist.Message{{Src: 0, Dst: 2}},
	}
}

func TestValidate(t *testing.T) {
	ok := &Ring{ID: 0, Order: []netlist.NodeID{0, 1, 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid ring rejected: %v", err)
	}
	short := &Ring{ID: 1, Order: []netlist.NodeID{0}}
	if err := short.Validate(); err == nil {
		t.Error("1-node ring accepted")
	}
	dup := &Ring{ID: 2, Order: []netlist.NodeID{0, 1, 0}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestIndexContains(t *testing.T) {
	r := &Ring{Order: []netlist.NodeID{5, 7, 9}}
	if r.Index(7) != 1 || r.Index(5) != 0 {
		t.Error("Index wrong")
	}
	if r.Index(8) != -1 || r.Contains(8) {
		t.Error("missing node reported present")
	}
	if !r.Contains(9) {
		t.Error("present node reported missing")
	}
}

func TestSegmentLengthsAndPerimeter(t *testing.T) {
	app := square4()
	r := &Ring{Order: []netlist.NodeID{0, 1, 2, 3}}
	lens := r.SegmentLengths(app)
	for i, l := range lens {
		if math.Abs(l-1) > geom.Eps {
			t.Errorf("segment %d length = %v, want 1", i, l)
		}
	}
	if p := r.Perimeter(app); math.Abs(p-4) > geom.Eps {
		t.Errorf("Perimeter = %v, want 4", p)
	}
}

func TestArcDirectionality(t *testing.T) {
	r := &Ring{Order: []netlist.NodeID{0, 1, 2, 3}}
	arc, err := r.Arc(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(arc) != 2 || arc[0] != 0 || arc[1] != 1 {
		t.Errorf("Arc(0,2) = %v, want [0 1]", arc)
	}
	// Going the other way around the directed ring takes the long arc.
	arc, err = r.Arc(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(arc) != 2 || arc[0] != 2 || arc[1] != 3 {
		t.Errorf("Arc(2,0) = %v, want [2 3]", arc)
	}
	arc, err = r.Arc(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(arc) != 1 || arc[0] != 3 {
		t.Errorf("Arc(3,0) = %v, want [3]", arc)
	}
}

func TestArcErrors(t *testing.T) {
	r := &Ring{Order: []netlist.NodeID{0, 1, 2}}
	if _, err := r.Arc(0, 9); err == nil {
		t.Error("Arc to off-ring node accepted")
	}
	if _, err := r.Arc(1, 1); err == nil {
		t.Error("zero-length arc accepted")
	}
}

func TestPathLength(t *testing.T) {
	app := square4()
	r := &Ring{Order: []netlist.NodeID{0, 1, 2, 3}}
	l, err := r.PathLength(app, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-2) > geom.Eps {
		t.Errorf("PathLength(0,2) = %v, want 2", l)
	}
	l, _ = r.PathLength(app, 1, 0)
	if math.Abs(l-3) > geom.Eps {
		t.Errorf("PathLength(1,0) = %v, want 3 (directed)", l)
	}
}

func TestReversed(t *testing.T) {
	app := square4()
	r := &Ring{Order: []netlist.NodeID{0, 1, 2, 3}}
	rev := r.Reversed()
	want := []netlist.NodeID{3, 2, 1, 0}
	for i, id := range rev.Order {
		if id != want[i] {
			t.Fatalf("Reversed order = %v", rev.Order)
		}
	}
	// Path 1->0 is short on the reversed ring.
	l, err := rev.PathLength(app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > geom.Eps {
		t.Errorf("reversed PathLength(1,0) = %v, want 1", l)
	}
	// Original untouched.
	if r.Order[0] != 0 {
		t.Error("Reversed mutated the original")
	}
}

func TestReversedInvolution(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw)%10
		r := &Ring{Order: make([]netlist.NodeID, n)}
		for i := range r.Order {
			r.Order[i] = netlist.NodeID(i)
		}
		rr := r.Reversed().Reversed()
		for i := range r.Order {
			if rr.Order[i] != r.Order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any ring and any ordered node pair, the forward arc and the
// complementary arc partition the ring's segments.
func TestArcPartitionProperty(t *testing.T) {
	f := func(nRaw, aRaw, bRaw uint8) bool {
		n := 3 + int(nRaw)%8
		a := int(aRaw) % n
		b := int(bRaw) % n
		if a == b {
			return true
		}
		r := &Ring{Order: make([]netlist.NodeID, n)}
		for i := range r.Order {
			r.Order[i] = netlist.NodeID(i)
		}
		fwd, err1 := r.Arc(netlist.NodeID(a), netlist.NodeID(b))
		bwd, err2 := r.Arc(netlist.NodeID(b), netlist.NodeID(a))
		if err1 != nil || err2 != nil {
			return false
		}
		if len(fwd)+len(bwd) != n {
			return false
		}
		seen := make(map[int]bool)
		for _, s := range append(append([]int{}, fwd...), bwd...) {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTwoNodeRing(t *testing.T) {
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(2, 1)},
		},
	}
	r := &Ring{Order: []netlist.NodeID{0, 1}}
	// Out-and-back loop: both directions have the same length (Fig. 5(c)).
	l01, _ := r.PathLength(app, 0, 1)
	l10, _ := r.PathLength(app, 1, 0)
	if math.Abs(l01-3) > geom.Eps || math.Abs(l10-3) > geom.Eps {
		t.Errorf("two-node ring path lengths = %v, %v, want 3, 3", l01, l10)
	}
	if math.Abs(r.Perimeter(app)-6) > geom.Eps {
		t.Errorf("two-node ring perimeter = %v, want 6", r.Perimeter(app))
	}
}

func TestRoute(t *testing.T) {
	app := square4()
	r := &Ring{ID: 7, Order: []netlist.NodeID{0, 1, 2, 3}}
	p, err := Route(app, r, netlist.Message{Src: 0, Dst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.RingID != 7 || len(p.Segs) != 2 || p.NodesPassed != 1 {
		t.Errorf("Route = %+v", p)
	}
	if math.Abs(p.Length-2) > geom.Eps {
		t.Errorf("Route length = %v, want 2", p.Length)
	}
	if _, err := Route(app, r, netlist.Message{Src: 0, Dst: 9}); err == nil {
		t.Error("Route accepted off-ring destination")
	}
}

func TestConflicts(t *testing.T) {
	a := Path{RingID: 0, Segs: []int{0, 1}}
	b := Path{RingID: 0, Segs: []int{1, 2}}
	c := Path{RingID: 0, Segs: []int{2, 3}}
	d := Path{RingID: 1, Segs: []int{0, 1}}
	if !Conflicts(a, b) {
		t.Error("overlapping arcs on same ring should conflict")
	}
	if Conflicts(a, c) {
		t.Error("disjoint arcs should not conflict")
	}
	if Conflicts(a, d) {
		t.Error("paths on different rings should never conflict")
	}
}

func TestBuildConflictGraph(t *testing.T) {
	paths := []Path{
		{RingID: 0, Segs: []int{0, 1}},
		{RingID: 0, Segs: []int{1, 2}},
		{RingID: 0, Segs: []int{3}},
		{RingID: 1, Segs: []int{0, 1, 2}},
	}
	g := BuildConflictGraph(paths)
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", g.Edges())
	}
	if len(g.Adj[0]) != 1 || g.Adj[0][0] != 1 {
		t.Errorf("Adj[0] = %v, want [1]", g.Adj[0])
	}
	if g.MaxDegree() != 1 {
		t.Errorf("MaxDegree = %d, want 1", g.MaxDegree())
	}
}

func TestCliqueLowerBound(t *testing.T) {
	paths := []Path{
		{RingID: 0, Segs: []int{0, 1}},
		{RingID: 0, Segs: []int{1, 2}},
		{RingID: 0, Segs: []int{1}},
		{RingID: 1, Segs: []int{1}},
	}
	g := BuildConflictGraph(paths)
	// Segment (0,1) carries three paths.
	if got := g.CliqueLowerBound(); got != 3 {
		t.Errorf("CliqueLowerBound = %d, want 3", got)
	}
}

func TestKindString(t *testing.T) {
	if Intra.String() != "intra" || Inter.String() != "inter" || Base.String() != "base" {
		t.Error("Kind labels wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown Kind label wrong")
	}
}

func TestRingString(t *testing.T) {
	r := &Ring{ID: 3, Kind: Inter, Order: []netlist.NodeID{2, 4}}
	if got := r.String(); got != "ring 3 (inter): 2 -> 4" {
		t.Errorf("String = %q", got)
	}
}
