// Package ring models directed optical ring waveguides and the signal paths
// reserved on them.
//
// A Ring is a circular waveguide visiting an ordered cycle of nodes; optical
// signals travel in one fixed direction (the order of the cycle). A signal
// path from src to dst occupies the contiguous arc of waveguide segments
// from src around to dst. Two paths on the same ring conflict — must be
// assigned different wavelengths (paper Eq. 2) — exactly when their arcs
// share at least one segment.
package ring

import (
	"fmt"
	"sort"

	"sring/internal/netlist"
)

// Kind labels the role of a ring in a design.
type Kind int

const (
	// Intra is an intra-cluster sub-ring (SRing).
	Intra Kind = iota
	// Inter is the inter-cluster sub-ring (SRing).
	Inter
	// Base is a conventional full ring waveguide (ORNoC/CTORing/XRing).
	Base
)

// String returns the kind label.
func (k Kind) String() string {
	switch k {
	case Intra:
		return "intra"
	case Inter:
		return "inter"
	case Base:
		return "base"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Ring is a directed circular waveguide. Signals travel from Order[i] to
// Order[i+1] (indices mod len(Order)); segment i is the waveguide between
// Order[i] and Order[i+1].
//
// A ring of two nodes is an out-and-back loop with two distinct segments,
// as in the paper's initial two-node clusters (Fig. 5(c)).
type Ring struct {
	ID   int
	Kind Kind
	// Level is the ring's height in a hierarchical construction: 0 for
	// intra-cluster and conventional base rings, k >= 1 for the k-th
	// escalation level of inter-cluster sub-rings (the paper's single
	// inter ring is level 1).
	Level int
	Order []netlist.NodeID
}

// Validate checks the ring is well-formed: at least two nodes, no
// duplicates.
func (r *Ring) Validate() error {
	if len(r.Order) < 2 {
		return fmt.Errorf("ring %d: needs at least 2 nodes, has %d", r.ID, len(r.Order))
	}
	seen := make(map[netlist.NodeID]bool, len(r.Order))
	for _, id := range r.Order {
		if seen[id] {
			return fmt.Errorf("ring %d: node %d appears twice", r.ID, id)
		}
		seen[id] = true
	}
	return nil
}

// Len returns the number of nodes (and segments) on the ring.
func (r *Ring) Len() int { return len(r.Order) }

// Index returns the position of node id in the cycle, or -1.
func (r *Ring) Index(id netlist.NodeID) int {
	for i, n := range r.Order {
		if n == id {
			return i
		}
	}
	return -1
}

// Contains reports whether node id lies on the ring.
func (r *Ring) Contains(id netlist.NodeID) bool { return r.Index(id) >= 0 }

// Reversed returns a copy of the ring traversed in the opposite direction.
// Reversing flips which arc each signal path occupies.
func (r *Ring) Reversed() *Ring {
	rev := &Ring{ID: r.ID, Kind: r.Kind, Level: r.Level, Order: make([]netlist.NodeID, len(r.Order))}
	for i, id := range r.Order {
		rev.Order[len(r.Order)-1-i] = id
	}
	return rev
}

// SegmentEnds returns the (from, to) nodes of segment i.
func (r *Ring) SegmentEnds(i int) (from, to netlist.NodeID) {
	return r.Order[i], r.Order[(i+1)%len(r.Order)]
}

// SegmentLengths returns the length of each waveguide segment, taking
// segment i as the Manhattan distance between its end nodes (waveguides are
// routed rectilinearly, so this is the minimum physical length; the layout
// engine realises exactly these lengths with L-shaped routes).
func (r *Ring) SegmentLengths(app *netlist.Application) []float64 {
	lens := make([]float64, len(r.Order))
	for i := range r.Order {
		from, to := r.SegmentEnds(i)
		lens[i] = app.Pos(from).Manhattan(app.Pos(to))
	}
	return lens
}

// Perimeter returns the total waveguide length of the ring.
func (r *Ring) Perimeter(app *netlist.Application) float64 {
	var total float64
	for _, l := range r.SegmentLengths(app) {
		total += l
	}
	return total
}

// Arc returns the segment indices traversed by a signal from src to dst in
// ring direction. It returns an error if either node is off-ring or
// src == dst.
func (r *Ring) Arc(src, dst netlist.NodeID) ([]int, error) {
	si, di := r.Index(src), r.Index(dst)
	if si < 0 || di < 0 {
		return nil, fmt.Errorf("ring %d: arc %d->%d: node not on ring", r.ID, src, dst)
	}
	if si == di {
		return nil, fmt.Errorf("ring %d: arc %d->%d: zero-length arc", r.ID, src, dst)
	}
	n := len(r.Order)
	var segs []int
	for i := si; i != di; i = (i + 1) % n {
		segs = append(segs, i)
	}
	return segs, nil
}

// PathLength returns the waveguide length travelled by a signal from src to
// dst.
func (r *Ring) PathLength(app *netlist.Application, src, dst netlist.NodeID) (float64, error) {
	segs, err := r.Arc(src, dst)
	if err != nil {
		return 0, err
	}
	lens := r.SegmentLengths(app)
	var total float64
	for _, s := range segs {
		total += lens[s]
	}
	return total, nil
}

// String renders the ring as "ring 0 (intra): 1 -> 3 -> 5".
func (r *Ring) String() string {
	s := fmt.Sprintf("ring %d (%s):", r.ID, r.Kind)
	for i, id := range r.Order {
		if i > 0 {
			s += " ->"
		}
		s += fmt.Sprintf(" %d", id)
	}
	return s
}

// Path is a reserved signal path: one message routed on one ring.
type Path struct {
	Msg    netlist.Message
	RingID int
	// Segs are the ring-segment indices the signal traverses, in order.
	Segs []int
	// Length is the waveguide length travelled in millimetres.
	Length float64
	// NodesPassed is the number of intermediate nodes the signal passes
	// (excluding src and dst). At each passed node the signal runs the
	// gauntlet of that node's off-resonance MRRs (through loss).
	NodesPassed int
}

// Route reserves msg on ring r and returns the resulting path.
func Route(app *netlist.Application, r *Ring, msg netlist.Message) (Path, error) {
	segs, err := r.Arc(msg.Src, msg.Dst)
	if err != nil {
		return Path{}, err
	}
	lens := r.SegmentLengths(app)
	var total float64
	for _, s := range segs {
		total += lens[s]
	}
	return Path{
		Msg:         msg,
		RingID:      r.ID,
		Segs:        segs,
		Length:      total,
		NodesPassed: len(segs) - 1,
	}, nil
}

// Conflicts reports whether two paths must use different wavelengths:
// they ride the same ring and their arcs share at least one segment.
func Conflicts(a, b Path) bool {
	if a.RingID != b.RingID {
		return false
	}
	set := make(map[int]bool, len(a.Segs))
	for _, s := range a.Segs {
		set[s] = true
	}
	for _, s := range b.Segs {
		if set[s] {
			return true
		}
	}
	return false
}

// ConflictGraph is the wavelength-conflict graph over a set of paths:
// vertex i is paths[i], an edge joins paths that overlap on a ring.
type ConflictGraph struct {
	Paths []Path
	Adj   [][]int // Adj[i] lists js (sorted) in conflict with i
}

// BuildConflictGraph computes the conflict graph of the given paths.
func BuildConflictGraph(paths []Path) *ConflictGraph {
	g := &ConflictGraph{Paths: paths, Adj: make([][]int, len(paths))}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if Conflicts(paths[i], paths[j]) {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	for i := range g.Adj {
		sort.Ints(g.Adj[i])
	}
	return g
}

// MaxDegree returns the maximum vertex degree (an upper bound on required
// wavelengths is MaxDegree+1; a lower bound is CliqueLowerBound).
func (g *ConflictGraph) MaxDegree() int {
	max := 0
	for _, adj := range g.Adj {
		if len(adj) > max {
			max = len(adj)
		}
	}
	return max
}

// CliqueLowerBound returns the size of the largest set of paths pairwise
// sharing one ring segment: for each (ring, segment) the number of paths
// crossing it. Such paths form a clique in the conflict graph, so this is a
// valid lower bound on the chromatic number (wavelength count).
func (g *ConflictGraph) CliqueLowerBound() int {
	load := make(map[[2]int]int)
	best := 0
	for _, p := range g.Paths {
		for _, s := range p.Segs {
			key := [2]int{p.RingID, s}
			load[key]++
			if load[key] > best {
				best = load[key]
			}
		}
	}
	return best
}

// Edges returns the number of conflict edges.
func (g *ConflictGraph) Edges() int {
	n := 0
	for _, adj := range g.Adj {
		n += len(adj)
	}
	return n / 2
}
