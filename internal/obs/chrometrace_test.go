package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// syntheticTrace builds a fixed trace exercising the export's interesting
// shapes: nesting, overlapping siblings (lane packing), a worker-attributed
// span (explicit thread track), an instant event, and counters.
func syntheticTrace() *Trace {
	return &Trace{
		Spans: []*SpanSnap{
			{
				Name: "root", StartNS: 0, DurNS: 10000,
				Events: []EventSnap{{Name: "mark", AtNS: 2500, X: 1, Y: 2}},
				Children: []*SpanSnap{
					{Name: "childA", StartNS: 1000, DurNS: 4000},
					{Name: "childB", StartNS: 3000, DurNS: 4000}, // overlaps childA
					{Name: "worker-span", StartNS: 5000, DurNS: 2000,
						Attrs: map[string]interface{}{"worker": int64(3)}},
				},
			},
		},
		Counters: map[string]int64{"b.count": 2, "a.count": 1},
	}
}

// The export is a deterministic function of the trace: same trace, same
// bytes. Spans stay properly nested per tid (overlapping siblings get
// distinct lanes), worker spans take their worker id as tid, and counters
// are emitted sorted.
func TestChromeTraceExport(t *testing.T) {
	tr := syntheticTrace()
	ct := tr.ChromeTrace()

	byName := map[string]chromeEvent{}
	for _, ev := range ct.TraceEvents {
		byName[ev.Name] = ev
	}

	root, a, b := byName["root"], byName["childA"], byName["childB"]
	if root.Ph != "X" || root.TS != 0 || root.Dur == nil || *root.Dur != 10 {
		t.Errorf("root event wrong: %+v", root)
	}
	// childA nests inside root (same lane is fine); childB overlaps childA
	// and must land on a different tid than childA.
	if a.TID == b.TID {
		t.Errorf("overlapping siblings share tid %d", a.TID)
	}
	if w := byName["worker-span"]; w.TID != 3 {
		t.Errorf("worker-span tid = %d, want the worker attr 3", w.TID)
	}
	// Lane allocation must not collide with the reserved worker tid.
	for _, ev := range []chromeEvent{root, a, b} {
		if ev.TID == 3 {
			t.Errorf("%s placed on the reserved worker tid", ev.Name)
		}
	}
	if m := byName["mark"]; m.Ph != "i" || m.TS != 2.5 || m.S != "t" {
		t.Errorf("instant event wrong: %+v", m)
	}

	// Counters: one C event each, sorted by name, after the last span end.
	var counterNames []string
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "C" {
			counterNames = append(counterNames, ev.Name)
			if ev.TS < 10 {
				t.Errorf("counter %s emitted at %v µs, before trace end", ev.Name, ev.TS)
			}
		}
	}
	if len(counterNames) != 2 || counterNames[0] != "a.count" || counterNames[1] != "b.count" {
		t.Errorf("counters = %v, want [a.count b.count]", counterNames)
	}

	// Byte-stable export.
	var buf1, buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := syntheticTrace().WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("export not byte-stable across identical traces")
	}

	// The output must be valid JSON in the object format.
	var decoded struct {
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != len(ct.TraceEvents) {
		t.Errorf("decoded %d events, want %d", len(decoded.TraceEvents), len(ct.TraceEvents))
	}
}

// A live Recorder round-trips through the exporter, and a nil Recorder
// yields an empty-but-valid trace file.
func TestRecorderChromeTrace(t *testing.T) {
	rec := New()
	root := rec.StartSpan("synthesize")
	child := root.StartSpan("construct")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"synthesize"`, `"construct"`, `"ph": "X"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s:\n%s", want, out)
		}
	}

	buf.Reset()
	var nilRec *Recorder
	if err := nilRec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("nil recorder export invalid: %s", buf.String())
	}
}
