package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: a Trace rendered as the JSON object format of
// the Chrome trace-event spec, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Spans become complete ("X") duration events, span
// events become instant ("i") events, and counters become one counter
// ("C") sample each at the end of the trace.
//
// Thread tracks: a span that carries an integer "worker" attribute is
// placed on that worker's thread track directly (the parallel layers stamp
// the internal/par worker index there). Every other span is lane-packed:
// siblings that overlap in time — concurrent probes, speculative LP
// solves — are spread across synthetic lanes so each track remains
// properly nested, which the viewers require of same-tid events. Lane
// assignment is a deterministic function of the trace, so the export of a
// given Trace is byte-stable.

// chromeEvent is one trace-event record. Field order matches the spec's
// conventional layout; ts and dur are microseconds (float, spec unit).
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	PID  int64                  `json:"pid"`
	TID  int64                  `json:"tid"`
	S    string                 `json:"s,omitempty"` // instant-event scope
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object format.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// workerAttrTID returns the thread id for a span carrying an integer
// "worker" attribute, and whether it does.
func workerAttrTID(s *SpanSnap) (int64, bool) {
	v, ok := s.Attrs["worker"]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case int64:
		return n, true
	case float64: // a trace decoded from JSON carries numbers as float64
		return int64(n), true
	}
	return 0, false
}

// laneSet allocates synthetic thread ids for spans without an explicit
// worker track, keeping every lane properly nested.
type laneSet struct {
	taken map[int64]bool // tids reserved by "worker" attributes
	ids   []int64        // allocated lane tids, in allocation order
	spans [][][2]int64   // per lane: the [start, end) intervals placed on it
}

// fits reports whether the interval can join lane l: every resident
// interval must contain it, be contained by it, or be disjoint from it.
func (ls *laneSet) fits(l int, start, end int64) bool {
	for _, iv := range ls.spans[l] {
		s, e := iv[0], iv[1]
		disjoint := start >= e || s >= end
		contains := s <= start && end <= e
		contained := start <= s && e <= end
		if !disjoint && !contains && !contained {
			return false
		}
	}
	return true
}

// place returns the tid for the interval, preferring the parent's lane
// (pref, or -1 for none), then existing lanes in allocation order, then a
// fresh lane with the smallest unreserved tid.
func (ls *laneSet) place(pref int, start, end int64) (tid int64, lane int) {
	if pref >= 0 && ls.fits(pref, start, end) {
		ls.spans[pref] = append(ls.spans[pref], [2]int64{start, end})
		return ls.ids[pref], pref
	}
	for l := range ls.ids {
		if l == pref {
			continue
		}
		if ls.fits(l, start, end) {
			ls.spans[l] = append(ls.spans[l], [2]int64{start, end})
			return ls.ids[l], l
		}
	}
	var next int64
	if n := len(ls.ids); n > 0 {
		next = ls.ids[n-1] + 1
	}
	for ls.taken[next] {
		next++
	}
	ls.ids = append(ls.ids, next)
	ls.spans = append(ls.spans, [][2]int64{{start, end}})
	return next, len(ls.ids) - 1
}

// ChromeTrace converts the trace to the Chrome trace-event object format.
func (t *Trace) ChromeTrace() *chromeTraceFile {
	out := &chromeTraceFile{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	ls := &laneSet{taken: map[int64]bool{}}
	var reserve func(ss []*SpanSnap)
	reserve = func(ss []*SpanSnap) {
		for _, s := range ss {
			if tid, ok := workerAttrTID(s); ok {
				ls.taken[tid] = true
			}
			reserve(s.Children)
		}
	}
	reserve(t.Spans)

	var endNS int64
	var emit func(s *SpanSnap, parentLane int)
	emit = func(s *SpanSnap, parentLane int) {
		start, end := s.StartNS, s.StartNS+s.DurNS
		if end > endNS {
			endNS = end
		}
		var tid int64
		lane := -1
		if wtid, ok := workerAttrTID(s); ok {
			tid = wtid
		} else {
			tid, lane = ls.place(parentLane, start, end)
		}
		dur := float64(s.DurNS) / 1e3
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  &dur,
			PID:  chromePID,
			TID:  tid,
		}
		if len(s.Attrs) > 0 || s.Open {
			ev.Args = make(map[string]interface{}, len(s.Attrs)+1)
			for k, v := range s.Attrs {
				ev.Args[k] = v
			}
			if s.Open {
				ev.Args["open"] = true
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
		for _, e := range s.Events {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name,
				Cat:  "event",
				Ph:   "i",
				TS:   float64(e.AtNS) / 1e3,
				PID:  chromePID,
				TID:  tid,
				S:    "t",
				Args: map[string]interface{}{"x": e.X, "y": e.Y},
			})
			if e.AtNS > endNS {
				endNS = e.AtNS
			}
		}
		for _, c := range s.Children {
			emit(c, lane)
		}
	}
	for _, s := range t.Spans {
		emit(s, -1)
	}

	names := make([]string, 0, len(t.Counters))
	for n := range t.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: n,
			Ph:   "C",
			TS:   float64(endNS) / 1e3,
			PID:  chromePID,
			TID:  0,
			Args: map[string]interface{}{"value": t.Counters[n]},
		})
	}
	return out
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON, indented.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.ChromeTrace())
}

// WriteChromeTrace snapshots the recorder and writes the Chrome trace.
// Safe on a nil Recorder (writes an empty trace).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return r.Snapshot().WriteChromeTrace(w)
}
