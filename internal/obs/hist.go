package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a log-bucketed (HDR-style) distribution of non-negative
// int64 values — typically nanosecond durations. Recording is lock-free: a
// bucket index is computed from the value's bit pattern and a handful of
// atomic adds update the bucket, count, sum and extrema, so the hottest
// paths of the solvers can record into a shared histogram without
// contending on a mutex.
//
// The bucket layout is exact for small values and logarithmic above: values
// below 2^histSubBits each get their own bucket, and every octave
// [2^e, 2^(e+1)) above that is split into 2^histSubBits sub-buckets, for a
// worst-case relative quantile error of 2^-histSubBits (12.5%). The layout
// is a pure function of the value, so the snapshot of a histogram — bucket
// counts, count, sum, min, max and the percentiles derived from them — is
// byte-identical for any recording order or concurrency level, given the
// same multiset of recorded values (enforced by test under -race -cpu 1,4).
//
// Like the rest of the package, every method is a no-op (or zero) on a nil
// *Histogram. Create histograms with NewHistogram (or through a Registry):
// the zero value lacks the min-tracking sentinel.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // MaxInt64 until the first observation
	max   atomic.Int64
	b     [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

const (
	// histSubBits sets the sub-bucket resolution: 2^histSubBits buckets
	// per octave, i.e. 12.5% worst-case relative error at 3 bits.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the exact region [0, histSub) plus every octave
	// from 2^histSubBits up to 2^63.
	histBuckets = histSub + (63-histSubBits+1)*histSub
)

// bucketIndex maps a non-negative value to its bucket. Negative values
// clamp to bucket 0 (they do not occur on the duration paths; clamping
// keeps the index in range for arbitrary callers).
func bucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := int((u >> (uint(exp) - histSubBits)) & (histSub - 1))
	return histSub + (exp-histSubBits)*histSub + sub
}

// bucketUpper returns the largest value that maps to bucket i — the "le"
// upper bound reported in snapshots and the Prometheus exposition.
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := histSubBits + (i-histSub)/histSub
	if exp >= 63 { // the top octave's bounds overflow int64; clamp
		return math.MaxInt64
	}
	sub := (i - histSub) % histSub
	width := int64(1) << (uint(exp) - histSubBits)
	lower := int64(1)<<uint(exp) + int64(sub)*width
	upper := lower + width - 1
	if upper < lower { // the top bucket ends at MaxInt64
		return math.MaxInt64
	}
	return upper
}

// Record adds one observation. Negative values clamp to zero. Safe for
// concurrent use; no-op on a nil Histogram.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.b[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	h.count.Add(1)
}

// RecordDuration records a duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// RecordSince records the time elapsed since start, in nanoseconds.
func (h *Histogram) RecordSince(start time.Time) {
	if h == nil {
		return
	}
	h.RecordDuration(time.Since(start))
}

// Count returns the number of recorded observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnap is an immutable snapshot of a Histogram, shaped for JSON. The
// percentiles are bucket upper bounds (exact below 8 ns, within 12.5%
// above); Max is exact.
type HistSnap struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	// Buckets holds the non-empty buckets in increasing bound order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: Count observations with
// values <= Upper (and above the previous bucket's bound).
type BucketCount struct {
	Upper int64 `json:"le"`
	Count int64 `json:"n"`
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s *HistSnap) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the value at quantile q in [0, 1], computed from the
// snapshot's buckets: the upper bound of the bucket containing the q-th
// ranked observation, with the exact Max for q = 1 (and whenever the rank
// lands in the top non-empty bucket). Deterministic given the bucket
// counts.
func (s *HistSnap) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return quantileFromBuckets(s.Buckets, s.Count, s.Max, q)
}

// quantileFromBuckets is the shared quantile kernel: rank = ceil(q*count)
// clamped to [1, count], walked over cumulative bucket counts. The last
// non-empty bucket reports the exact max instead of its (looser) bound.
func quantileFromBuckets(buckets []BucketCount, count, max int64, q float64) int64 {
	if count <= 0 || len(buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for i, b := range buckets {
		cum += b.Count
		if cum >= rank {
			if i == len(buckets)-1 {
				return max
			}
			return b.Upper
		}
	}
	return max
}

// Snapshot captures the histogram's current state. Under concurrent
// recording each bucket is read atomically but the set of reads is not a
// single atomic cut; once recording quiesces the snapshot is exact and
// deterministic. Safe on nil (zero snapshot).
func (h *Histogram) Snapshot() *HistSnap {
	s := &HistSnap{}
	if h == nil {
		return s
	}
	var total int64
	for i := range h.b {
		n := h.b[i].Load()
		if n == 0 {
			continue
		}
		total += n
		s.Buckets = append(s.Buckets, BucketCount{Upper: bucketUpper(i), Count: n})
	}
	// Derive count from the buckets read, not the count field: a Record
	// racing the snapshot may have bumped one but not the other, and the
	// percentile walk below must agree with the bucket totals.
	s.Count = total
	s.Sum = h.sum.Load()
	if total > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.P50 = quantileFromBuckets(s.Buckets, total, s.Max, 0.50)
		s.P90 = quantileFromBuckets(s.Buckets, total, s.Max, 0.90)
		s.P99 = quantileFromBuckets(s.Buckets, total, s.Max, 0.99)
	}
	return s
}

// Sub returns the histogram delta s − prev as a fresh snapshot: bucket
// counts, count and sum are subtracted, percentiles recomputed from the
// difference. Min and Max of a delta are approximated by the bucket bounds
// of the surviving observations (the atomically tracked extrema cannot be
// un-merged). Sub with a nil prev returns s itself. This is how cmd/bench
// attributes the process-wide registry histograms to a single benchmark
// entry: snapshot before, snapshot after, Sub.
func (s *HistSnap) Sub(prev *HistSnap) *HistSnap {
	if prev == nil || prev.Count == 0 {
		return s
	}
	d := &HistSnap{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	pb := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		pb[b.Upper] = b.Count
	}
	for _, b := range s.Buckets {
		if n := b.Count - pb[b.Upper]; n > 0 {
			d.Buckets = append(d.Buckets, BucketCount{Upper: b.Upper, Count: n})
		}
	}
	if d.Count <= 0 || len(d.Buckets) == 0 {
		return &HistSnap{}
	}
	d.Min = d.Buckets[0].Upper
	d.Max = d.Buckets[len(d.Buckets)-1].Upper
	d.P50 = quantileFromBuckets(d.Buckets, d.Count, d.Max, 0.50)
	d.P90 = quantileFromBuckets(d.Buckets, d.Count, d.Max, 0.90)
	d.P99 = quantileFromBuckets(d.Buckets, d.Count, d.Max, 0.99)
	return d
}
