package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the stop
// function, which also closes the file. Commands wire this behind a
// -cpuprofile flag.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the profile
// reflects live memory rather than garbage. Commands wire this behind a
// -memprofile flag.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
