package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the stop
// function, which flushes the profile and closes the file. The stop
// function's error must be checked: a short write to a full disk surfaces
// only at Close, as a silently truncated profile otherwise. Commands wire
// this behind a -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the profile
// reflects live memory rather than garbage. Commands wire this behind a
// -memprofile flag.
func WriteHeapProfile(path string) error {
	return writeProfile("heap", path, func(f *os.File) error {
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	})
}

// SetBlockProfileRate enables goroutine-blocking profiling: one sample per
// rate nanoseconds blocked (1 records every event, 0 disables). Call before
// the workload whose contention — e.g. on the registry's histogram maps —
// is being measured.
func SetBlockProfileRate(rate int) { runtime.SetBlockProfileRate(rate) }

// SetMutexProfileFraction enables mutex-contention profiling at 1/fraction
// sampling (1 records every event, 0 disables). Returns the previous
// setting.
func SetMutexProfileFraction(fraction int) int {
	return runtime.SetMutexProfileFraction(fraction)
}

// WriteBlockProfile writes the accumulated goroutine-blocking profile to
// path. Profiling must have been enabled with SetBlockProfileRate; with the
// default rate of 0 the profile is legitimately empty.
func WriteBlockProfile(path string) error {
	return writeProfile("block", path, func(f *os.File) error {
		return pprof.Lookup("block").WriteTo(f, 0)
	})
}

// WriteMutexProfile writes the accumulated mutex-contention profile to
// path. Profiling must have been enabled with SetMutexProfileFraction.
func WriteMutexProfile(path string) error {
	return writeProfile("mutex", path, func(f *os.File) error {
		return pprof.Lookup("mutex").WriteTo(f, 0)
	})
}

// writeProfile creates path, runs write, and closes the file, reporting the
// first error — including Close's, which is where a full-disk short write
// shows up.
func writeProfile(kind, path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %s profile: %w", kind, err)
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: %s profile: %w", kind, werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: %s profile: %w", kind, cerr)
	}
	return nil
}
