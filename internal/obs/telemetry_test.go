package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// The /metrics exposition must round-trip: the text parses line by line,
// and the repo's dotted naming conventions (lp.sparse.*, pipeline.cache.*)
// survive recognisably as their underscore forms.
func TestTelemetryMetricsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add("pipeline.cache.hits", 7)
	reg.Add("pipeline.cache.misses", 2)
	reg.Add("lp.sparse.solves", 3)
	reg.Histogram("lp.sparse.refactor.ns").Record(1500)
	reg.Histogram("lp.sparse.refactor.ns").Record(800)
	reg.Histogram("pipeline.stage.construct.ns").Record(1 << 20)

	ts, err := ServeTelemetry("127.0.0.1:0", TelemetryOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	body, ctype := get(t, "http://"+ts.Addr()+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("content type = %q, want text/plain version 0.0.4", ctype)
	}

	// Parse the exposition: every non-comment line is `name[{labels}] value`,
	// histograms carry monotone cumulative buckets ending at +Inf = _count.
	type hist struct {
		lastCum, inf, count int64
		sawSum              bool
	}
	hists := map[string]*hist{}
	counters := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var value int64
		if i := strings.Index(line, "{"); i >= 0 {
			j := strings.LastIndex(line, "} ")
			if j < 0 {
				t.Fatalf("unparseable labeled line: %q", line)
			}
			name = line[:i]
			if _, err := fmt.Sscanf(line[j+2:], "%d", &value); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			base := strings.TrimSuffix(name, "_bucket")
			h := hists[base]
			if h == nil {
				h = &hist{}
				hists[base] = h
			}
			if strings.Contains(line, `le="+Inf"`) {
				h.inf = value
			} else {
				if value < h.lastCum {
					t.Errorf("non-monotone cumulative buckets in %q", line)
				}
				h.lastCum = value
			}
			continue
		}
		if _, err := fmt.Sscanf(line, "%s %d", &name, &value); err != nil {
			t.Fatalf("unparseable line: %q", line)
		}
		switch {
		case strings.HasSuffix(name, "_sum"):
			if h := hists[strings.TrimSuffix(name, "_sum")]; h != nil {
				h.sawSum = true
			}
		case strings.HasSuffix(name, "_count") && hists[strings.TrimSuffix(name, "_count")] != nil:
			hists[strings.TrimSuffix(name, "_count")].count = value
		default:
			counters[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if counters["pipeline_cache_hits"] != 7 || counters["pipeline_cache_misses"] != 2 {
		t.Errorf("cache counters = %v", counters)
	}
	if counters["lp_sparse_solves"] != 3 {
		t.Errorf("lp_sparse_solves = %d, want 3", counters["lp_sparse_solves"])
	}
	h := hists["lp_sparse_refactor_ns"]
	if h == nil {
		t.Fatalf("lp_sparse_refactor_ns histogram missing; hists = %v", hists)
	}
	if h.count != 2 || h.inf != 2 || h.lastCum != 2 || !h.sawSum {
		t.Errorf("lp_sparse_refactor_ns = %+v, want count=inf=cum=2 with _sum", h)
	}
	if hists["pipeline_stage_construct_ns"] == nil {
		t.Error("pipeline_stage_construct_ns histogram missing")
	}

	// The JSON mirror parses too.
	if body, _ := get(t, "http://"+ts.Addr()+"/metrics.json"); !strings.Contains(body, "pipeline.cache.hits") {
		t.Errorf("/metrics.json missing dotted names: %s", body)
	}
}

// The endpoint serves pprof and trace snapshots alongside the metrics.
func TestTelemetryPprofAndTrace(t *testing.T) {
	rec := New()
	sp := rec.StartSpan("solve")
	sp.End()

	ts, err := ServeTelemetry("127.0.0.1:0", TelemetryOptions{
		Registry: NewRegistry(),
		Trace:    rec.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	if body, _ := get(t, "http://"+ts.Addr()+"/debug/pprof/heap?debug=1"); !strings.Contains(body, "heap profile") {
		t.Errorf("/debug/pprof/heap not a heap profile: %.80s", body)
	}
	if body, _ := get(t, "http://"+ts.Addr()+"/trace.json"); !strings.Contains(body, `"solve"`) {
		t.Errorf("/trace.json missing the recorded span: %s", body)
	}
	if body, _ := get(t, "http://"+ts.Addr()+"/trace.chrome.json"); !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/trace.chrome.json not in trace-event format: %s", body)
	}
	if body, _ := get(t, "http://"+ts.Addr()+"/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index missing route list: %s", body)
	}
}

// Close is idempotent enough for defer stacking and safe on nil.
func TestTelemetryClose(t *testing.T) {
	var nilTS *TelemetryServer
	if err := nilTS.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if nilTS.Addr() != "" {
		t.Error("nil Addr not empty")
	}
	ts, err := ServeTelemetry("127.0.0.1:0", TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
}
