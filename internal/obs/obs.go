// Package obs is the dependency-free observability layer of the synthesis
// pipeline: hierarchical wall-clock spans with typed attributes and
// timestamped events, atomic named counters, and a Recorder that snapshots
// everything into a structured JSON trace or a human-readable summary tree.
//
// The entire API is nil-tolerant: every method on a nil *Recorder, *Span or
// *Counter is a no-op that performs no allocation (enforced by test). The
// pipeline therefore threads span handles unconditionally — cluster search,
// simplex pivoting, branch and bound, wavelength assignment — and pays for
// telemetry only when a caller opted in by constructing a Recorder.
//
// The whole API is safe for concurrent use: counters are atomic and each
// span carries its own mutex, so workers of the parallel synthesis layer
// can record attributes, events and child spans on sibling spans without
// contending on a recorder-global lock. Snapshot observes a consistent
// per-span state even while other goroutines are still recording.
//
// Typical use:
//
//	rec := obs.New()
//	sp := rec.StartSpan("synthesize")
//	sp.SetString("method", "SRing")
//	child := sp.StartSpan("cluster.synthesize")
//	rec.Add("cluster.absorptions", 1)
//	child.End()
//	sp.End()
//	rec.WriteJSON(os.Stdout) // or fmt.Print(rec.Summary())
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// clampFinite maps NaN and ±Inf onto representable values so a trace is
// always valid JSON (encoding/json rejects non-finite floats).
func clampFinite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// Recorder collects the spans and counters of one traced operation.
type Recorder struct {
	start time.Time

	mu    sync.Mutex // guards roots only; spans guard themselves
	roots []*Span

	cmu      sync.Mutex // guards the counter registry
	counters map[string]*Counter
}

// New returns an empty Recorder anchored at the current time.
func New() *Recorder {
	return &Recorder{start: time.Now(), counters: make(map[string]*Counter)}
}

// StartSpan opens a root-level span. On a nil Recorder it returns nil, which
// every Span method tolerates.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, name: name, start: time.Now()}
	r.mu.Lock()
	r.roots = append(r.roots, s)
	r.mu.Unlock()
	return s
}

// Counter returns the named counter, creating it on first use. On a nil
// Recorder it returns nil, which Add and Value tolerate.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.cmu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.cmu.Unlock()
	return c
}

// Add increments the named counter by n (shorthand for Counter(name).Add).
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.Counter(name).Add(n)
}

// Counter is an atomically updated named counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter. No-op on a nil Counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// attrKind discriminates the typed attribute payload.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrString
	attrBool
)

// attr is a typed key/value pair. Values are stored unboxed so recording an
// attribute never allocates an interface.
type attr struct {
	key  string
	kind attrKind
	i    int64
	f    float64
	s    string
	b    bool
}

func (a attr) value() interface{} {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrString:
		return a.s
	default:
		return a.b
	}
}

func (a attr) String() string {
	switch a.kind {
	case attrInt:
		return fmt.Sprintf("%s=%d", a.key, a.i)
	case attrFloat:
		return fmt.Sprintf("%s=%.4g", a.key, a.f)
	case attrString:
		return fmt.Sprintf("%s=%s", a.key, a.s)
	default:
		return fmt.Sprintf("%s=%t", a.key, a.b)
	}
}

// event is a timestamped (name, x, y) triple — e.g. the branch-and-bound
// gap trajectory records ("incumbent", objective, bound) points.
type event struct {
	name string
	at   time.Time
	x, y float64
}

// Span is one timed region of the pipeline, possibly with children.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time

	mu       sync.Mutex // guards the fields below
	end      time.Time  // zero until End
	attrs    []attr
	events   []event
	children []*Span
}

// Enabled reports whether the span actually records (false on nil). Use it
// to skip computing telemetry-only values.
func (s *Span) Enabled() bool { return s != nil }

// Recorder returns the owning Recorder (nil on a nil Span), so deeper layers
// can register counters against the same trace.
func (s *Span) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// StartSpan opens a child span. On a nil Span it returns nil. Concurrent
// workers may open children under the same parent; child order follows
// registration order.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. The first call wins; later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

func (s *Span) addAttr(a attr) {
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == a.key {
			s.attrs[i] = a
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// SetInt records an integer attribute (last write per key wins).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.addAttr(attr{key: key, kind: attrInt, i: v})
}

// SetFloat records a float attribute. Non-finite values are clamped so the
// trace stays marshalable.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.addAttr(attr{key: key, kind: attrFloat, f: clampFinite(v)})
}

// SetString records a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.addAttr(attr{key: key, kind: attrString, s: v})
}

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.addAttr(attr{key: key, kind: attrBool, b: v})
}

// Event records a timestamped (x, y) point under the span — e.g. the MILP
// gap trajectory as ("incumbent", objective, bound) pairs. Non-finite
// values are clamped so the trace stays marshalable.
func (s *Span) Event(name string, x, y float64) {
	if s == nil {
		return
	}
	e := event{name: name, at: time.Now(), x: clampFinite(x), y: clampFinite(y)}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Count increments a recorder-level counter from a span handle.
func (s *Span) Count(name string, n int64) {
	if s == nil {
		return
	}
	s.rec.Add(name, n)
}

// --- Snapshots ---

// Trace is an immutable snapshot of a Recorder, shaped for JSON.
type Trace struct {
	StartedAt time.Time        `json:"started_at"`
	Spans     []*SpanSnap      `json:"spans"`
	Counters  map[string]int64 `json:"counters"`
}

// SpanSnap is one span in a Trace. Times are nanosecond offsets from the
// trace start so a trace is self-contained and diffable.
type SpanSnap struct {
	Name     string                 `json:"name"`
	StartNS  int64                  `json:"start_ns"`
	DurNS    int64                  `json:"dur_ns"`
	Open     bool                   `json:"open,omitempty"` // true if never ended
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
	Events   []EventSnap            `json:"events,omitempty"`
	Children []*SpanSnap            `json:"children,omitempty"`
}

// EventSnap is one timestamped point.
type EventSnap struct {
	Name string  `json:"name"`
	AtNS int64   `json:"at_ns"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// Duration returns the span's wall-clock duration.
func (s *SpanSnap) Duration() time.Duration { return time.Duration(s.DurNS) }

// Snapshot captures the current state. Unfinished spans are marked Open with
// their duration measured up to the snapshot instant. Safe on nil (returns
// an empty trace).
func (r *Recorder) Snapshot() *Trace {
	t := &Trace{Counters: map[string]int64{}}
	if r == nil {
		return t
	}
	t.StartedAt = r.start
	now := time.Now()
	r.mu.Lock()
	roots := append([]*Span(nil), r.roots...)
	r.mu.Unlock()
	for _, s := range roots {
		t.Spans = append(t.Spans, snapSpan(s, r.start, now))
	}
	r.cmu.Lock()
	for name, c := range r.counters {
		t.Counters[name] = c.Value()
	}
	r.cmu.Unlock()
	return t
}

func snapSpan(s *Span, origin, now time.Time) *SpanSnap {
	// Copy the mutable state under the span's own lock, then recurse
	// without holding it so concurrent recording on other spans proceeds.
	s.mu.Lock()
	end := s.end
	attrs := append([]attr(nil), s.attrs...)
	events := append([]event(nil), s.events...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	open := false
	if end.IsZero() {
		end, open = now, true
	}
	out := &SpanSnap{
		Name:    s.name,
		StartNS: s.start.Sub(origin).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
		Open:    open,
	}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]interface{}, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.key] = a.value()
		}
	}
	for _, e := range events {
		out.Events = append(out.Events, EventSnap{
			Name: e.name,
			AtNS: e.at.Sub(origin).Nanoseconds(),
			X:    e.x,
			Y:    e.y,
		})
	}
	for _, c := range children {
		out.Children = append(out.Children, snapSpan(c, origin, now))
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Find returns the first span with the given name in depth-first order, or
// nil.
func (t *Trace) Find(name string) *SpanSnap {
	var dfs func(ss []*SpanSnap) *SpanSnap
	dfs = func(ss []*SpanSnap) *SpanSnap {
		for _, s := range ss {
			if s.Name == name {
				return s
			}
			if hit := dfs(s.Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return dfs(t.Spans)
}

// SumDuration totals the duration of every span with the given name — e.g.
// the aggregate time spent in "wavelength.milp" across a whole run.
func (t *Trace) SumDuration(name string) time.Duration {
	var total time.Duration
	var dfs func(ss []*SpanSnap)
	dfs = func(ss []*SpanSnap) {
		for _, s := range ss {
			if s.Name == name {
				total += s.Duration()
			}
			dfs(s.Children)
		}
	}
	dfs(t.Spans)
	return total
}

// Summary renders the trace as a human-readable tree followed by the sorted
// counter table.
func (t *Trace) Summary() string {
	var b strings.Builder
	for _, s := range t.Spans {
		writeSpan(&b, s, "")
	}
	if len(t.Counters) > 0 {
		names := make([]string, 0, len(t.Counters))
		width := 0
		for name := range t.Counters {
			names = append(names, name)
			if len(name) > width {
				width = len(name)
			}
		}
		sort.Strings(names)
		b.WriteString("counters:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-*s %12d\n", width, name, t.Counters[name])
		}
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s *SpanSnap, indent string) {
	fmt.Fprintf(b, "%s%s (%s", indent, s.Name, s.Duration().Round(time.Microsecond))
	if s.Open {
		b.WriteString(", open")
	}
	b.WriteString(")")
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%v", k, formatValue(s.Attrs[k]))
		}
	}
	b.WriteString("\n")
	for _, e := range s.Events {
		fmt.Fprintf(b, "%s  · %s (%.4g, %.4g) @%s\n",
			indent, e.Name, e.X, e.Y, time.Duration(e.AtNS).Round(time.Microsecond))
	}
	for _, c := range s.Children {
		writeSpan(b, c, indent+"  ")
	}
}

func formatValue(v interface{}) string {
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.4g", f)
	}
	return fmt.Sprintf("%v", v)
}

// Summary is shorthand for Snapshot().Summary(). Safe on nil (empty string).
func (r *Recorder) Summary() string { return r.Snapshot().Summary() }
