package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is the process-wide aggregate telemetry sink: named counters and
// histograms that accumulate across synthesis runs. It complements — and is
// deliberately separate from — the per-run Recorder (DESIGN.md §11): a
// Recorder is an opt-in, allocation-bounded structured trace of one
// operation, created and discarded per run; a Registry is a flat,
// always-on, process-lifetime aggregate suitable for a /metrics scrape or
// a percentile report over thousands of runs. Neither feeds design
// content, so neither participates in cache keys or determinism.
//
// All methods are safe for concurrent use. Metric handles (Counter,
// Histogram) are stable for the life of the registry; hot paths resolve a
// handle once and then record through atomic operations only. A nil
// *Registry resolves to the process default in OrDefault; the lookup
// methods themselves are also nil-tolerant and return nil handles (which
// every handle method tolerates).
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		hists:  make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry served by the telemetry
// endpoint and used wherever no explicit registry was plumbed in.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// OrDefault maps a nil registry to the process default, so option structs
// can use nil as "the default registry" rather than "off".
func OrDefault(r *Registry) *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil Registry (and nil Counters tolerate Add/Value).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counts[name]; !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil Registry (and nil Histograms tolerate Record/Snapshot).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Add increments the named counter by n (shorthand for Counter(name).Add).
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// Observe records v into the named histogram (shorthand for
// Histogram(name).Record).
func (r *Registry) Observe(name string, v int64) { r.Histogram(name).Record(v) }

// RegistrySnap is an immutable snapshot of a Registry, with metric names
// sorted, shaped for JSON. Given quiesced recording it is deterministic.
type RegistrySnap struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Histograms map[string]*HistSnap `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current state. Safe on nil (empty snap).
func (r *Registry) Snapshot() *RegistrySnap {
	s := &RegistrySnap{Counters: map[string]int64{}, Histograms: map[string]*HistSnap{}}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counts := make(map[string]*Counter, len(r.counts))
	for n, c := range r.counts {
		counts[n] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()
	for n, c := range counts {
		s.Counters[n] = c.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Sub returns the per-metric delta s − prev: counters subtracted,
// histograms diffed with HistSnap.Sub. Metrics absent from prev pass
// through unchanged. This turns cumulative process-wide metrics into
// per-interval ones (cmd/bench brackets each entry with two snapshots).
func (s *RegistrySnap) Sub(prev *RegistrySnap) *RegistrySnap {
	if prev == nil {
		return s
	}
	d := &RegistrySnap{Counters: map[string]int64{}, Histograms: map[string]*HistSnap{}}
	for n, v := range s.Counters {
		d.Counters[n] = v - prev.Counters[n]
	}
	for n, h := range s.Histograms {
		d.Histograms[n] = h.Sub(prev.Histograms[n])
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName maps a dotted metric name onto the Prometheus exposition
// grammar: every character outside [a-zA-Z0-9_] becomes '_', and a leading
// digit gains a '_' prefix. The repo's dotted conventions survive
// recognisably: lp.sparse.solves → lp_sparse_solves,
// pipeline.cache.hits → pipeline_cache_hits.
func promName(name string) string {
	out := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `counter` metrics, histograms as
// cumulative-bucket `histogram` metrics with _bucket{le=...}, _sum and
// _count series. Metric names are emitted in sorted order so the output is
// deterministic; dotted names map through promName. Safe on nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", pn, n, pn, pn, snap.Counters[n])
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", pn, n, pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, b.Upper, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}
