package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// TelemetryServer is the opt-in live observability endpoint started by the
// -telemetry flag: Prometheus text exposition at /metrics, the standard
// net/http/pprof handlers at /debug/pprof/, and the current trace snapshot
// (when a Recorder is attached) at /trace.json, with a Chrome trace-event
// rendering at /trace.chrome.json. It serves aggregate state only and never
// touches synthesis results, so leaving it running has no effect on design
// content or determinism.
type TelemetryServer struct {
	ln    net.Listener
	srv   *http.Server
	errCh chan error
}

// TelemetryOptions configures ServeTelemetry.
type TelemetryOptions struct {
	// Registry served at /metrics; nil means the process default.
	Registry *Registry
	// Trace, when non-nil, provides the snapshot served at /trace.json.
	Trace func() *Trace
}

// ServeTelemetry starts an HTTP listener on addr (host:port; ":0" picks a
// free port — query it with Addr) and serves it in a background goroutine
// until Close.
func ServeTelemetry(addr string, opt TelemetryOptions) (*TelemetryServer, error) {
	reg := OrDefault(opt.Registry)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr := traceOrEmpty(opt.Trace)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr)
	})
	mux.HandleFunc("/trace.chrome.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr := traceOrEmpty(opt.Trace)
		_ = tr.WriteChromeTrace(w)
	})
	// net/http/pprof registers on http.DefaultServeMux; mount the same
	// handlers here so the default mux (and anything else on it) stays out
	// of this listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "sring telemetry\n\n/metrics\n/metrics.json\n/trace.json\n/trace.chrome.json\n/debug/pprof/\n")
	})

	ts := &TelemetryServer{
		ln:    ln,
		srv:   &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		errCh: make(chan error, 1),
	}
	go func() {
		err := ts.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		ts.errCh <- err
	}()
	return ts, nil
}

func traceOrEmpty(f func() *Trace) *Trace {
	if f != nil {
		if tr := f(); tr != nil {
			return tr
		}
	}
	return &Trace{}
}

// Addr returns the listener's address ("127.0.0.1:43211"), useful when the
// server was started on ":0".
func (ts *TelemetryServer) Addr() string {
	if ts == nil {
		return ""
	}
	return ts.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests. Safe
// on nil.
func (ts *TelemetryServer) Close() error {
	if ts == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		ts.srv.Close()
		return err
	}
	return <-ts.errCh
}
