package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndSnapshot(t *testing.T) {
	rec := New()
	root := rec.StartSpan("synthesize")
	root.SetString("method", "SRing")
	root.SetInt("nodes", 12)
	root.SetFloat("lmax", 3.25)
	root.SetBool("milp", true)

	child := root.StartSpan("cluster.synthesize")
	child.Event("bound", 1, 0)
	child.End()
	root.End()

	rec.Add("cluster.absorptions", 7)
	rec.Counter("milp.nodes").Add(3)
	rec.Counter("milp.nodes").Add(2)

	tr := rec.Snapshot()
	if len(tr.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(tr.Spans))
	}
	r := tr.Spans[0]
	if r.Name != "synthesize" || r.Open {
		t.Errorf("root = %+v", r)
	}
	if got := r.Attrs["method"]; got != "SRing" {
		t.Errorf("method attr = %v", got)
	}
	if got := r.Attrs["nodes"]; got != int64(12) {
		t.Errorf("nodes attr = %v (%T)", got, got)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "cluster.synthesize" {
		t.Fatalf("children = %+v", r.Children)
	}
	if n := len(r.Children[0].Events); n != 1 {
		t.Fatalf("child has %d events, want 1", n)
	}
	if tr.Counters["cluster.absorptions"] != 7 || tr.Counters["milp.nodes"] != 5 {
		t.Errorf("counters = %v", tr.Counters)
	}
	if r.DurNS < r.Children[0].DurNS {
		t.Errorf("parent duration %d < child duration %d", r.DurNS, r.Children[0].DurNS)
	}
}

func TestAttrLastWriteWins(t *testing.T) {
	rec := New()
	sp := rec.StartSpan("s")
	sp.SetInt("k", 1)
	sp.SetInt("k", 2)
	sp.End()
	tr := rec.Snapshot()
	if got := tr.Spans[0].Attrs["k"]; got != int64(2) {
		t.Errorf("k = %v, want 2", got)
	}
	if n := len(tr.Spans[0].Attrs); n != 1 {
		t.Errorf("got %d attrs, want 1", n)
	}
}

func TestOpenSpanMarked(t *testing.T) {
	rec := New()
	sp := rec.StartSpan("never-ended")
	_ = sp
	tr := rec.Snapshot()
	if !tr.Spans[0].Open {
		t.Error("unfinished span not marked open")
	}
	if tr.Spans[0].DurNS < 0 {
		t.Errorf("negative duration %d", tr.Spans[0].DurNS)
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := New()
	sp := rec.StartSpan("s")
	sp.End()
	first := rec.Snapshot().Spans[0].DurNS
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if second := rec.Snapshot().Spans[0].DurNS; second != first {
		t.Errorf("second End changed duration: %d -> %d", first, second)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rec := New()
	sp := rec.StartSpan("root")
	sp.StartSpan("leaf").End()
	sp.Event("incumbent", 12.5, 10)
	sp.End()
	rec.Add("lp.pivots.phase2", 42)

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.Find("leaf") == nil {
		t.Error("leaf span lost in round trip")
	}
	if tr.Counters["lp.pivots.phase2"] != 42 {
		t.Errorf("counters = %v", tr.Counters)
	}
	if len(tr.Spans[0].Events) != 1 || tr.Spans[0].Events[0].X != 12.5 {
		t.Errorf("events = %+v", tr.Spans[0].Events)
	}
}

func TestFindAndSumDuration(t *testing.T) {
	rec := New()
	root := rec.StartSpan("root")
	a := root.StartSpan("milp.solve")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.StartSpan("milp.solve")
	time.Sleep(time.Millisecond)
	b.End()
	root.End()
	tr := rec.Snapshot()
	if tr.Find("milp.solve") == nil {
		t.Fatal("Find missed a nested span")
	}
	if tr.Find("absent") != nil {
		t.Fatal("Find invented a span")
	}
	if total := tr.SumDuration("milp.solve"); total < 2*time.Millisecond {
		t.Errorf("SumDuration = %v, want >= 2ms", total)
	}
}

func TestSummaryTree(t *testing.T) {
	rec := New()
	root := rec.StartSpan("synthesize")
	root.SetString("method", "SRing")
	c := root.StartSpan("cluster.synthesize")
	c.End()
	root.End()
	rec.Add("cluster.search.iterations", 6)

	s := rec.Summary()
	for _, want := range []string{"synthesize", "  cluster.synthesize", "method=SRing", "counters:", "cluster.search.iterations"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	rec := New()
	root := rec.StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := root.StartSpan("worker")
				sp.SetInt("i", int64(i))
				sp.Event("tick", float64(j), 0)
				sp.Count("work.items", 1)
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	tr := rec.Snapshot()
	if got := tr.Counters["work.items"]; got != 800 {
		t.Errorf("work.items = %d, want 800", got)
	}
	if got := len(tr.Spans[0].Children); got != 800 {
		t.Errorf("children = %d, want 800", got)
	}
}

// TestNilPathZeroAlloc is the contract the whole pipeline relies on: with no
// Recorder attached, every obs call is free — no allocations at all.
func TestNilPathZeroAlloc(t *testing.T) {
	var rec *Recorder
	var counter *Counter
	allocs := testing.AllocsPerRun(200, func() {
		sp := rec.StartSpan("root")
		child := sp.StartSpan("child")
		child.SetInt("i", 1)
		child.SetFloat("f", 2.5)
		child.SetString("s", "x")
		child.SetBool("b", true)
		child.Event("e", 1, 2)
		child.Count("c", 1)
		child.End()
		sp.End()
		rec.Add("n", 1)
		counter.Add(1)
		_ = counter.Value()
		_ = rec.Counter("n")
		_ = sp.Recorder()
		_ = sp.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder path allocated %.1f times per run, want 0", allocs)
	}
}

func TestNilSnapshotAndSummary(t *testing.T) {
	var rec *Recorder
	tr := rec.Snapshot()
	if tr == nil || len(tr.Spans) != 0 {
		t.Fatalf("nil snapshot = %+v", tr)
	}
	if s := rec.Summary(); s != "" {
		t.Errorf("nil summary = %q", s)
	}
}
