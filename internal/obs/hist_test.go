package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// The bucket mapping must be monotone, exact below histSub, and agree with
// bucketUpper: every value lands in the bucket whose [lower, upper] range
// contains it.
func TestBucketIndexUpperAgree(t *testing.T) {
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			if lowUp := bucketUpper(i - 1); v <= lowUp {
				t.Errorf("value %d at or below the previous bucket's bound %d", v, lowUp)
			}
		}
		if v < histSub && int64(i) != v {
			t.Errorf("small value %d not exact: bucket %d", v, i)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("negative value bucket = %d, want 0", got)
	}
	if got := bucketUpper(histBuckets - 1); got != math.MaxInt64 {
		t.Errorf("top bucket upper = %d, want MaxInt64", got)
	}
}

// Percentiles are bucket upper bounds with the exact max in the top bucket,
// so their relative error is bounded by the sub-bucket width (12.5%).
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d, want 1000/1/1000", s.Count, s.Min, s.Max)
	}
	if s.Sum != 1000*1001/2 {
		t.Errorf("sum = %d, want %d", s.Sum, 1000*1001/2)
	}
	checks := []struct {
		q     float64
		exact int64
	}{{0.50, 500}, {0.90, 900}, {0.99, 990}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.exact || float64(got) > float64(c.exact)*1.125+1 {
			t.Errorf("q%.2f = %d, want within [%d, %.0f]", c.q, got, c.exact, float64(c.exact)*1.125+1)
		}
	}
	if s.Quantile(1) != 1000 {
		t.Errorf("q1 = %d, want the exact max 1000", s.Quantile(1))
	}
}

// A nil histogram tolerates the full API.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.RecordDuration(time.Second)
	h.RecordSince(time.Now())
	if h.Count() != 0 {
		t.Error("nil Count != 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Error("nil snapshot not zero")
	}
}

// The determinism contract: the snapshot of a histogram is byte-identical
// for any recording order or concurrency level, given the same multiset of
// values. Run under -race -cpu 1,4: GOMAXPROCS changes the interleaving but
// must not change a single snapshot byte.
func TestHistogramSnapshotDeterministic(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	value := func(w, i int) int64 {
		// A spread of magnitudes, deterministic per (worker, index).
		return int64((w+1)*(i+1)) % 100003
	}

	run := func() []byte {
		h := NewHistogram()
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					h.Record(value(w, i))
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(h.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := run()
	for r := 0; r < 3; r++ {
		if got := run(); !bytes.Equal(got, first) {
			t.Fatalf("snapshot differs across runs:\n%s\nvs\n%s", first, got)
		}
	}

	// The sequential reference must also match: concurrency is invisible.
	h := NewHistogram()
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			h.Record(value(w, i))
		}
	}
	var seq bytes.Buffer
	if err := json.NewEncoder(&seq).Encode(h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), first) {
		t.Fatalf("concurrent snapshot differs from sequential:\n%s\nvs\n%s", seq.Bytes(), first)
	}
}

// Sub diffs bucket counts and recomputes percentiles, turning cumulative
// histograms into per-interval ones.
func TestHistSnapSub(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	before := h.Snapshot()
	for v := int64(1000); v <= 1100; v++ {
		h.Record(v)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 101 {
		t.Fatalf("delta count = %d, want 101", d.Count)
	}
	if d.Min < 900 || d.P50 < 1000 {
		t.Errorf("delta min/p50 = %d/%d, want the new observations only", d.Min, d.P50)
	}
	if got := h.Snapshot().Sub(nil); got.Count != 201 {
		t.Errorf("Sub(nil) count = %d, want the full 201", got.Count)
	}
	if got := before.Sub(before); got.Count != 0 {
		t.Errorf("self-delta count = %d, want 0", got.Count)
	}
}

// Registry deltas bracket an interval: counters subtract, histograms diff.
func TestRegistrySnapshotSub(t *testing.T) {
	reg := NewRegistry()
	reg.Add("x.hits", 3)
	reg.Observe("x.ns", 100)
	before := reg.Snapshot()
	reg.Add("x.hits", 4)
	reg.Observe("x.ns", 200)
	d := reg.Snapshot().Sub(before)
	if d.Counters["x.hits"] != 4 {
		t.Errorf("counter delta = %d, want 4", d.Counters["x.hits"])
	}
	if h := d.Histograms["x.ns"]; h == nil || h.Count != 1 {
		t.Errorf("histogram delta = %+v, want count 1", h)
	}
}

// Handles are stable and nil-registry lookups are tolerated.
func TestRegistryHandles(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") || reg.Histogram("b") != reg.Histogram("b") {
		t.Error("handles not stable across lookups")
	}
	var nilReg *Registry
	if nilReg.Counter("a") != nil || nilReg.Histogram("b") != nil {
		t.Error("nil registry returned non-nil handles")
	}
	nilReg.Add("a", 1)     // must not panic
	nilReg.Observe("b", 1) // must not panic
	if s := nilReg.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if OrDefault(nil) != Default() || OrDefault(reg) != reg {
		t.Error("OrDefault mapping wrong")
	}
}
