package obs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCPUProfileStopReportsClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("profile empty or missing: %v", err)
	}
	// A second profile into an unwritable path fails at start, not at stop.
	if _, err := StartCPUProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("StartCPUProfile into a missing directory succeeded")
	}
}

func TestHeapBlockMutexProfiles(t *testing.T) {
	dir := t.TempDir()
	if err := WriteHeapProfile(filepath.Join(dir, "heap.prof")); err != nil {
		t.Fatalf("heap: %v", err)
	}

	// Generate a little contention so the block/mutex profiles have content;
	// rate 1 samples every event.
	SetBlockProfileRate(1)
	defer SetBlockProfileRate(0)
	prev := SetMutexProfileFraction(1)
	defer SetMutexProfileFraction(prev)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			time.Sleep(time.Millisecond)
			mu.Unlock()
		}()
	}
	wg.Wait()

	for name, write := range map[string]func(string) error{
		"block.prof": WriteBlockProfile,
		"mutex.prof": WriteMutexProfile,
	} {
		path := filepath.Join(dir, name)
		if err := write(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fi, err := os.Stat(path)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s empty or missing: %v", name, err)
		}
	}
}
