// Package ctoring implements the CTORing baseline (Ortín-Obón et al.,
// ASP-DAC'17): the same sequential dual-ring structure as ORNoC, but each
// message is routed in its shorter direction and the wavelength assignment
// is optimised (rather than first-fit), reducing wavelength usage — the
// difference the paper credits CTORing with (Sec. II-C).
//
// PDN convention (paper Sec. II-C): every node carries a sender per ring
// waveguide, every sender pair joined by a splitter, so the assignment
// optimiser runs splitter-blind (L_sp = 0 inside the objective).
package ctoring

import (
	"context"
	"fmt"

	"sring/internal/baseline"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

func init() {
	pipeline.Register("CTORing", Construct)
}

// Construct is the CTORing pipeline constructor: the conventional dual
// ring with shorter-direction routing, leaving the wavelength assignment
// to the shared optimiser under the method's splitter-blind objective.
// The construction itself is combinatorial and never blocks, so ctx is
// only honoured by the stages downstream.
func Construct(_ context.Context, app *netlist.Application, _ pipeline.Options, _ *obs.Span) (*pipeline.Construction, error) {
	cw, ccw, err := baseline.DualRing(app)
	if err != nil {
		return nil, fmt.Errorf("ctoring: %w", err)
	}
	paths, err := baseline.RouteShorter(app, cw, ccw)
	if err != nil {
		return nil, fmt.Errorf("ctoring: %w", err)
	}
	return &pipeline.Construction{
		Rings:             []*ring.Ring{cw, ccw},
		Paths:             paths,
		PDNStyle:          pdn.StyleShared,
		ForceNodeSplitter: true,
		PDNAllTwoSender:   true,
		MRRFullComplement: true,
		// Splitters are forced by convention, so the optimiser must not
		// spend wavelengths avoiding them: L_sp = 0 in the objective.
		Weights: wavelength.Weights{Alpha: 1, Beta: 1, Gamma: 1, SplitterStageDB: 0},
	}, nil
}
