// Package ctoring implements the CTORing baseline (Ortín-Obón et al.,
// ASP-DAC'17): the same sequential dual-ring structure as ORNoC, but each
// message is routed in its shorter direction and the wavelength assignment
// is optimised (rather than first-fit), reducing wavelength usage — the
// difference the paper credits CTORing with (Sec. II-C).
//
// PDN convention (paper Sec. II-C): every node carries a sender per ring
// waveguide, every sender pair joined by a splitter, so the assignment
// optimiser runs splitter-blind (L_sp = 0 inside the objective).
package ctoring

import (
	"fmt"
	"time"

	"sring/internal/baseline"
	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// Options configures the synthesis.
type Options struct {
	// Design carries the shared downstream configuration; PDN settings are
	// overwritten by the method's convention.
	Design design.Options
	// UseMILP enables the exact assignment polish.
	UseMILP bool
	// MILPTimeLimit bounds the exact solve (zero: the pipeline default,
	// milp.DefaultTimeLimit).
	MILPTimeLimit time.Duration
	// Parallelism is the worker count for the exact solve (0 = GOMAXPROCS,
	// 1 = sequential); the result is bit-identical either way.
	Parallelism int
}

// Synthesize builds the CTORing design for the application.
func Synthesize(app *netlist.Application, opt Options) (*design.Design, error) {
	cw, ccw, err := baseline.DualRing(app)
	if err != nil {
		return nil, fmt.Errorf("ctoring: %w", err)
	}
	paths, err := baseline.RouteShorter(app, cw, ccw)
	if err != nil {
		return nil, fmt.Errorf("ctoring: %w", err)
	}

	dopt := opt.Design
	dopt.PDN = pdn.Config{Style: pdn.StyleShared, ForceNodeSplitter: true, LaserPos: dopt.PDN.LaserPos, RoutePhysical: dopt.PDN.RoutePhysical}
	dopt.PDNAllTwoSender = true
	dopt.MRRFullComplement = true
	dopt.Assign = wavelength.Options{
		// Splitters are forced by convention, so the optimiser must not
		// spend wavelengths avoiding them: L_sp = 0 in the objective.
		Weights:       wavelength.Weights{Alpha: 1, Beta: 1, Gamma: 1, SplitterStageDB: 0},
		UseMILP:       opt.UseMILP,
		MILPTimeLimit: opt.MILPTimeLimit,
		Parallelism:   opt.Parallelism,
	}
	d, err := design.Finish(app, "CTORing", []*ring.Ring{cw, ccw}, paths, dopt)
	if err != nil {
		return nil, fmt.Errorf("ctoring: %w", err)
	}
	return d, nil
}
