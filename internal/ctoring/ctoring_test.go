package ctoring

import (
	"context"
	"testing"

	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pipeline"

	_ "sring/internal/ornoc" // registers the ORNoC constructor for comparison tests
)

func synth(t *testing.T, app *netlist.Application, method string) (*design.Design, error) {
	t.Helper()
	return pipeline.Synthesize(context.Background(), app, method, pipeline.Options{})
}

func TestSynthesizeBenchmarks(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			d, err := synth(t, app, "CTORing")
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("design invalid: %v", err)
			}
			if len(d.Rings) != 2 {
				t.Errorf("CTORing uses %d rings, want 2", len(d.Rings))
			}
		})
	}
}

// CTORing's two claimed advantages over ORNoC (paper Sec. II-C): shorter
// longest paths (shorter-direction routing) and no more wavelengths
// (optimised assignment).
func TestBeatsORNoC(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		cto, err := synth(t, app, "CTORing")
		if err != nil {
			t.Fatal(err)
		}
		orn, err := synth(t, app, "ORNoC")
		if err != nil {
			t.Fatal(err)
		}
		mc, err := cto.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		mo, err := orn.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if mc.LongestPathMM > mo.LongestPathMM+1e-9 {
			t.Errorf("%s: CTORing L %v > ORNoC L %v", app.Name, mc.LongestPathMM, mo.LongestPathMM)
		}
		if mc.NumWavelengths > mo.NumWavelengths {
			t.Errorf("%s: CTORing #wl %d > ORNoC #wl %d", app.Name, mc.NumWavelengths, mo.NumWavelengths)
		}
	}
}

func TestSameStructureAsORNoC(t *testing.T) {
	// Both methods share the sequential dual-ring structure: identical
	// ring orders, different assignments.
	app := netlist.MWD()
	cto, err := synth(t, app, "CTORing")
	if err != nil {
		t.Fatal(err)
	}
	orn, err := synth(t, app, "ORNoC")
	if err != nil {
		t.Fatal(err)
	}
	for i := range cto.Rings {
		if cto.Rings[i].String() != orn.Rings[i].String() {
			t.Errorf("ring %d differs between CTORing and ORNoC", i)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	bad := &netlist.Application{Name: "bad"}
	if _, err := synth(t, bad, "CTORing"); err == nil {
		t.Error("invalid app accepted")
	}
}
