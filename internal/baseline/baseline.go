// Package baseline provides the conventional sequential-ring substrate
// shared by the three state-of-the-art comparison methods (ORNoC, CTORing,
// XRing): all of them connect the network's active nodes sequentially with
// two parallel ring waveguides transmitting clockwise and counter-clockwise
// (paper Sec. II-C, ring settings of CTORing, footnote d).
package baseline

import (
	"fmt"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// CWRingID and CCWRingID are the conventional IDs of the two ring
// waveguides.
const (
	CWRingID  = 0
	CCWRingID = 1
)

// DualRing returns the clockwise and counter-clockwise sequential rings
// over the application's active nodes (in node-ID order, the classical
// design of paper Fig. 2(b)).
func DualRing(app *netlist.Application) (cw, ccw *ring.Ring, err error) {
	order := app.ActiveNodes()
	if len(order) < 2 {
		return nil, nil, fmt.Errorf("baseline: %s has %d active nodes, need >= 2", app.Name, len(order))
	}
	cw = &ring.Ring{ID: CWRingID, Kind: ring.Base, Order: order}
	ccw = cw.Reversed()
	ccw.ID = CCWRingID
	return cw, ccw, nil
}

// RouteShorter reserves each message on whichever of the two rings gives
// the shorter path (ties go clockwise), the direction rule CTORing and
// XRing use.
func RouteShorter(app *netlist.Application, cw, ccw *ring.Ring) ([]ring.Path, error) {
	paths := make([]ring.Path, 0, len(app.Messages))
	for _, m := range app.Messages {
		a, err := ring.Route(app, cw, m)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		b, err := ring.Route(app, ccw, m)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		if b.Length < a.Length {
			paths = append(paths, b)
		} else {
			paths = append(paths, a)
		}
	}
	return paths, nil
}
