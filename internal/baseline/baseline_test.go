package baseline

import (
	"math"
	"testing"

	"sring/internal/geom"
	"sring/internal/netlist"
)

func TestDualRing(t *testing.T) {
	app := netlist.MWD()
	cw, ccw, err := DualRing(app)
	if err != nil {
		t.Fatal(err)
	}
	if cw.ID != CWRingID || ccw.ID != CCWRingID {
		t.Error("ring IDs wrong")
	}
	if cw.Len() != app.N() || ccw.Len() != app.N() {
		t.Errorf("ring sizes: %d, %d; want %d", cw.Len(), ccw.Len(), app.N())
	}
	// CCW is the reverse of CW.
	for i := range cw.Order {
		if cw.Order[i] != ccw.Order[len(ccw.Order)-1-i] {
			t.Fatal("ccw is not the reverse of cw")
		}
	}
	if math.Abs(cw.Perimeter(app)-ccw.Perimeter(app)) > geom.Eps {
		t.Error("perimeters differ")
	}
}

func TestDualRingSkipsIdleNodes(t *testing.T) {
	app := &netlist.Application{
		Name: "t",
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(2, 0)}, // idle
		},
		Messages: []netlist.Message{{Src: 0, Dst: 1}},
	}
	cw, _, err := DualRing(app)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Len() != 2 || cw.Contains(2) {
		t.Errorf("idle node included: %v", cw.Order)
	}
}

func TestDualRingErrors(t *testing.T) {
	app := &netlist.Application{
		Name: "t",
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
		},
	}
	if _, _, err := DualRing(app); err == nil {
		t.Error("app without messages accepted")
	}
}

func TestRouteShorterPicksMinDirection(t *testing.T) {
	// Square ring: message 0->3 is 3 hops CW but 1 hop CCW.
	app := &netlist.Application{
		Name: "sq",
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(1, 1)},
			{ID: 3, Pos: geom.Pt(0, 1)},
		},
		Messages: []netlist.Message{
			{Src: 0, Dst: 3},
			{Src: 0, Dst: 1},
		},
	}
	cw, ccw, err := DualRing(app)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := RouteShorter(app, cw, ccw)
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].RingID != CCWRingID || math.Abs(paths[0].Length-1) > geom.Eps {
		t.Errorf("0->3 routed %+v, want CCW length 1", paths[0])
	}
	// Tie (single hop both? 0->1 is 1 hop CW, 3 hops CCW): CW.
	if paths[1].RingID != CWRingID || math.Abs(paths[1].Length-1) > geom.Eps {
		t.Errorf("0->1 routed %+v, want CW length 1", paths[1])
	}
}

// Every benchmark: the shorter-direction path never exceeds half the
// perimeter.
func TestRouteShorterHalfPerimeterBound(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		cw, ccw, err := DualRing(app)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := RouteShorter(app, cw, ccw)
		if err != nil {
			t.Fatal(err)
		}
		half := cw.Perimeter(app) / 2
		for i, p := range paths {
			if p.Length > half+geom.Eps {
				t.Errorf("%s: path %d length %v exceeds half perimeter %v", app.Name, i, p.Length, half)
			}
		}
	}
}
