package report

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sampleRows() []Row {
	return []Row{
		{Benchmark: "MWD", Method: "ORNoC", LongestPathMM: 1.8, WorstILdB: 5.2, MaxSplitters: 5, WorstILAlldB: 21.7, NumWavelengths: 8, TotalLaserPowerMW: 1.2},
		{Benchmark: "MWD", Method: "SRing", LongestPathMM: 0.4, WorstILdB: 4.1, MaxSplitters: 4, WorstILAlldB: 17.5, NumWavelengths: 5, TotalLaserPowerMW: 0.4},
		{Benchmark: "VOPD", Method: "SRing", LongestPathMM: 1.4, WorstILdB: 4.4, MaxSplitters: 4, WorstILAlldB: 17.7, NumWavelengths: 6, TotalLaserPowerMW: 0.5},
	}
}

func TestTable1(t *testing.T) {
	out := Table1(sampleRows())
	for _, want := range []string{"benchmark", "MWD", "VOPD", "ORNoC", "SRing", "5.20", "17.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	// Separator between benchmark groups.
	if !strings.Contains(out, "---") {
		t.Error("Table1 missing group separator")
	}
}

func TestTable2(t *testing.T) {
	out := Table2(map[string]time.Duration{
		"MWD": 120 * time.Millisecond,
		"D26": 6320 * time.Millisecond,
	}, []string{"MWD", "D26", "missing"})
	if !strings.Contains(out, "0.120") || !strings.Contains(out, "6.320") {
		t.Errorf("Table2 output wrong:\n%s", out)
	}
	if strings.Contains(out, "missing") {
		t.Error("Table2 rendered a benchmark without data")
	}
	// MWD appears before D26 (given order).
	if strings.Index(out, "MWD") > strings.Index(out, "D26") {
		t.Error("Table2 order not respected")
	}
}

func TestFig7(t *testing.T) {
	out := Fig7(sampleRows())
	if !strings.Contains(out, "#wl=8") || !strings.Contains(out, "#wl=5") {
		t.Errorf("Fig7 missing wavelength labels:\n%s", out)
	}
	// The maximum-power row gets the full-width bar.
	lines := strings.Split(out, "\n")
	var ornocBar, sringBar int
	for _, l := range lines {
		if strings.Contains(l, "ORNoC") {
			ornocBar = strings.Count(l, "#")
		}
		if strings.Contains(l, "SRing") && strings.Contains(l, "0.400") {
			sringBar = strings.Count(l, "#")
		}
	}
	if ornocBar <= sringBar {
		t.Errorf("bar lengths do not reflect power: ORNoC %d vs SRing %d", ornocBar, sringBar)
	}
}

func TestHistogram(t *testing.T) {
	values := []float64{1, 1.2, 1.4, 2, 2.2, 3, 5}
	out := Histogram("il_w", values, 0.5, 5)
	if !strings.Contains(out, "7 feasible solutions") {
		t.Errorf("Histogram missing count:\n%s", out)
	}
	if !strings.Contains(out, "<-- SRing") {
		t.Errorf("Histogram missing reference marker:\n%s", out)
	}
	// Reference extends the range: first bin starts at 0.5.
	if !strings.Contains(out, "0.5") {
		t.Errorf("Histogram range does not include reference:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	out := Histogram("wl", nil, 4, 10)
	if !strings.Contains(out, "no feasible solutions") || !strings.Contains(out, "SRing: 4") {
		t.Errorf("empty Histogram wrong:\n%s", out)
	}
	out = Histogram("wl", nil, math.NaN(), 10)
	if strings.Contains(out, "SRing:") {
		t.Errorf("NaN reference should be omitted:\n%s", out)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	// All-equal values must not divide by zero.
	out := Histogram("x", []float64{2, 2, 2}, 2, 4)
	if !strings.Contains(out, "3 feasible") {
		t.Errorf("degenerate Histogram wrong:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(sampleRows())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,method,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], "MWD,ORNoC,1.8,5.2,5,21.7,8,1.2") {
		t.Errorf("CSV row wrong: %s", lines[1])
	}
}

func TestSummary(t *testing.T) {
	s := Summary("#wl", 5, []float64{9, 8, 12})
	if !strings.Contains(s, "beats") || strings.Contains(s, "NOT") {
		t.Errorf("Summary wrong: %s", s)
	}
	s = Summary("#wl", 10, []float64{9, 8, 12})
	if !strings.Contains(s, "does NOT beat") {
		t.Errorf("Summary wrong: %s", s)
	}
	s = Summary("#wl", 5, nil)
	if !strings.Contains(s, "no feasible") {
		t.Errorf("Summary wrong: %s", s)
	}
}

func TestIntHistogramValues(t *testing.T) {
	out := IntHistogramValues([]int{1, 2, 3})
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("IntHistogramValues = %v", out)
	}
}

func TestSortRows(t *testing.T) {
	rows := []Row{
		{Benchmark: "VOPD", Method: "SRing"},
		{Benchmark: "MWD", Method: "SRing"},
		{Benchmark: "MWD", Method: "ORNoC"},
	}
	SortRows(rows, []string{"MWD", "VOPD"}, []string{"ORNoC", "SRing"})
	if rows[0].Benchmark != "MWD" || rows[0].Method != "ORNoC" {
		t.Errorf("SortRows order wrong: %+v", rows)
	}
	if rows[2].Benchmark != "VOPD" {
		t.Errorf("SortRows order wrong: %+v", rows)
	}
}
