// Package report renders the paper's tables and figures as text: Table I
// (the four-method comparison), Table II (SRing runtimes), Fig. 7 (total
// laser power and wavelength usage), and Fig. 8 (random-solution
// histograms). It also emits CSV for downstream plotting.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Row is one method's metrics on one benchmark (a cell group of Table I).
type Row struct {
	Benchmark string
	Method    string
	// Table I columns.
	LongestPathMM float64 // L
	WorstILdB     float64 // il_w
	MaxSplitters  int     // #sp_w
	WorstILAlldB  float64 // il_w_all
	// Fig. 7 values.
	NumWavelengths    int
	TotalLaserPowerMW float64
}

// Table1 renders the comparison table in the paper's layout: one line per
// method per benchmark.
func Table1(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %8s %8s %6s %10s\n",
		"benchmark", "method", "L[mm]", "il_w[dB]", "#sp_w", "il_all[dB]")
	last := ""
	for _, r := range rows {
		if r.Benchmark != last && last != "" {
			b.WriteString(strings.Repeat("-", 56) + "\n")
		}
		last = r.Benchmark
		fmt.Fprintf(&b, "%-10s %-9s %8.2f %8.2f %6d %10.2f\n",
			r.Benchmark, r.Method, r.LongestPathMM, r.WorstILdB, r.MaxSplitters, r.WorstILAlldB)
	}
	return b.String()
}

// Table2 renders SRing's program runtimes (paper Table II).
func Table2(runtimes map[string]time.Duration, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s\n", "benchmark", "runtime[s]")
	for _, name := range order {
		d, ok := runtimes[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-10s %12.3f\n", name, d.Seconds())
	}
	return b.String()
}

// StageTiming breaks one SRing synthesis run into its pipeline stages
// (from the telemetry trace): sub-ring construction, layout, wavelength
// assignment (with the MILP share listed separately) and PDN construction.
type StageTiming struct {
	Total   time.Duration
	Cluster time.Duration
	Layout  time.Duration
	Assign  time.Duration
	MILP    time.Duration
	PDN     time.Duration
}

// Table2Stages renders the per-stage timing breakdown that accompanies
// Table II when telemetry is collected. The MILP column is the share of the
// assignment time spent in the exact solver (zero when the heuristic result
// is kept).
func Table2Stages(stages map[string]StageTiming, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %10s %10s\n",
		"benchmark", "total[s]", "cluster[s]", "layout[s]", "assign[s]", "milp[s]", "pdn[s]")
	for _, name := range order {
		st, ok := stages[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			name, st.Total.Seconds(), st.Cluster.Seconds(), st.Layout.Seconds(),
			st.Assign.Seconds(), st.MILP.Seconds(), st.PDN.Seconds())
	}
	return b.String()
}

// Fig7 renders total laser power and wavelength usage per method per
// benchmark with proportional ASCII bars (the paper's grouped bar chart).
func Fig7(rows []Row) string {
	var maxPower float64
	for _, r := range rows {
		if r.TotalLaserPowerMW > maxPower {
			maxPower = r.TotalLaserPowerMW
		}
	}
	const width = 40
	var b strings.Builder
	fmt.Fprintf(&b, "total laser power [mW] (bar) and wavelength usage (#wl)\n")
	last := ""
	for _, r := range rows {
		if r.Benchmark != last {
			fmt.Fprintf(&b, "\n%s\n", r.Benchmark)
			last = r.Benchmark
		}
		n := 0
		if maxPower > 0 {
			n = int(math.Round(r.TotalLaserPowerMW / maxPower * width))
		}
		fmt.Fprintf(&b, "  %-9s %8.3f mW |%-*s| #wl=%d\n",
			r.Method, r.TotalLaserPowerMW, width, strings.Repeat("#", n), r.NumWavelengths)
	}
	return b.String()
}

// Histogram renders the distribution of values in nbins equal-width bins
// between the data extremes, marking the reference value (e.g. SRing's
// result) with "<-- SRing". Matches the paper's Fig. 8 presentation
// (#fea_sol per bin).
func Histogram(title string, values []float64, reference float64, nbins int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d feasible solutions)\n", title, len(values))
	if len(values) == 0 {
		fmt.Fprintf(&b, "  (no feasible solutions)\n")
		if !math.IsNaN(reference) {
			fmt.Fprintf(&b, "  SRing: %.3g\n", reference)
		}
		return b.String()
	}
	if nbins < 1 {
		nbins = 10
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if !math.IsNaN(reference) {
		lo = math.Min(lo, reference)
		hi = math.Max(hi, reference)
	}
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	binW := (hi - lo) / float64(nbins)
	counts := make([]int, nbins)
	for _, v := range values {
		i := int((v - lo) / binW)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const width = 40
	refBin := -1
	if !math.IsNaN(reference) {
		refBin = int((reference - lo) / binW)
		if refBin >= nbins {
			refBin = nbins - 1
		}
	}
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * width))
		}
		mark := ""
		if i == refBin {
			mark = "  <-- SRing"
		}
		fmt.Fprintf(&b, "  (%7.3g, %7.3g] %6d |%-*s|%s\n",
			lo+float64(i)*binW, lo+float64(i+1)*binW, c, width, strings.Repeat("#", bar), mark)
	}
	return b.String()
}

// CSV renders the rows as comma-separated values with a header, sorted by
// (benchmark, method) order of first appearance preserved.
func CSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("benchmark,method,longest_path_mm,il_w_db,max_splitters,il_all_db,num_wavelengths,total_laser_power_mw\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%.6g,%.6g,%d,%.6g,%d,%.6g\n",
			r.Benchmark, r.Method, r.LongestPathMM, r.WorstILdB, r.MaxSplitters,
			r.WorstILAlldB, r.NumWavelengths, r.TotalLaserPowerMW)
	}
	return b.String()
}

// IntHistogramValues converts integer samples (e.g. wavelength counts) to
// floats for Histogram.
func IntHistogramValues(values []int) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = float64(v)
	}
	return out
}

// Summary compares SRing's metric against the best feasible random value,
// reporting the paper's "better than all feasible solutions" check.
func Summary(metric string, reference float64, values []float64) string {
	if len(values) == 0 {
		return fmt.Sprintf("%s: SRing %.3g; no feasible random solutions to compare\n", metric, reference)
	}
	best := values[0]
	for _, v := range values {
		best = math.Min(best, v)
	}
	verdict := "beats"
	if reference > best {
		verdict = "does NOT beat"
	}
	return fmt.Sprintf("%s: SRing %.3g %s best random %.3g (of %d feasible)\n",
		metric, reference, verdict, best, len(values))
}

// SortRows orders rows by benchmark (in the given order) then by method (in
// the given order), for stable table rendering.
func SortRows(rows []Row, benchOrder, methodOrder []string) {
	bi := make(map[string]int, len(benchOrder))
	for i, b := range benchOrder {
		bi[b] = i
	}
	mi := make(map[string]int, len(methodOrder))
	for i, m := range methodOrder {
		mi[m] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if bi[rows[i].Benchmark] != bi[rows[j].Benchmark] {
			return bi[rows[i].Benchmark] < bi[rows[j].Benchmark]
		}
		return mi[rows[i].Method] < mi[rows[j].Method]
	})
}
