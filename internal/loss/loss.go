// Package loss models the optical power budget of a WRONoC ring router:
// the technology parameters of the physical layer (after Ortín-Obón et al.,
// TVLSI'17, the parameter source cited by the SRing paper), per-path
// insertion-loss accounting, and laser power aggregation.
//
// The insertion loss of a signal is the sum of (paper Sec. II-B):
// modulator loss and photodetector loss (fixed per signal); drop loss and
// through loss at MRRs; splitter loss in the PDN; and propagation, crossing
// and bending loss along the waveguides. The worst-case insertion loss of a
// wavelength sets that wavelength's laser power; total laser power is the
// sum over used wavelengths.
package loss

import (
	"fmt"
	"math"
)

// Tech is a set of physical-layer technology parameters. All losses are in
// dB (positive numbers mean attenuation).
type Tech struct {
	// PropagationDBPerMM is waveguide propagation loss per millimetre.
	PropagationDBPerMM float64
	// DropDB is the loss of coupling a signal into or out of a waveguide
	// through an on-resonance MRR (one drop at the sender, one at the
	// receiver).
	DropDB float64
	// ThroughDB is the loss of passing one off-resonance MRR.
	ThroughDB float64
	// BendDB is the loss per 90-degree waveguide bend.
	BendDB float64
	// CrossingDB is the loss per waveguide crossing traversed.
	CrossingDB float64
	// ModulatorDB is the sender's electro-optic modulator insertion loss.
	ModulatorDB float64
	// PhotodetectorDB is the receiver's photodetector insertion loss.
	PhotodetectorDB float64
	// SplitterExcessDB is the excess loss of a 1x2 PDN splitter stage.
	SplitterExcessDB float64
	// SplitRatioDB is the intrinsic 50/50 power division per stage (3 dB).
	SplitRatioDB float64
	// DetectorSensitivityDBm is the minimum optical power the receiver
	// needs, in dBm.
	DetectorSensitivityDBm float64
}

// Default returns the technology parameters used throughout the
// reproduction. The splitter stage loss (SplitterStageDB = 3.3 dB) is
// calibrated so that the paper's Table I identity
// il_w_all ≈ il_w + #sp_w · L_sp holds; see DESIGN.md §2.
func Default() Tech {
	return Tech{
		PropagationDBPerMM:     0.274, // 2.74 dB/cm (lossy-waveguide assumption; see note)
		DropDB:                 0.5,
		ThroughDB:              0.01,
		BendDB:                 0.005,
		CrossingDB:             0.04,
		ModulatorDB:            1.0,
		PhotodetectorDB:        1.0,
		SplitterExcessDB:       0.3,
		SplitRatioDB:           3.0,
		DetectorSensitivityDBm: -26.0,
	}
}

// Note on PropagationDBPerMM: the paper's Table I implies roughly 1 dB/mm
// of length-dependent worst-case loss (e.g. D26: ORNoC loses 3.0 dB more
// than SRing over 2.6 mm of extra path). We use 0.274 dB/mm — the classic
// 0.274 dB/cm silicon figure scaled one decade, as used by worst-case
// WRONoC power studies — which reproduces the L-vs-il_w sensitivity of the
// paper's comparison while keeping all other constants at their cited
// values.

// Validate rejects physically meaningless parameter sets.
func (t Tech) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("loss: %s = %v, want a finite non-negative value", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"PropagationDBPerMM", t.PropagationDBPerMM},
		{"DropDB", t.DropDB},
		{"ThroughDB", t.ThroughDB},
		{"BendDB", t.BendDB},
		{"CrossingDB", t.CrossingDB},
		{"ModulatorDB", t.ModulatorDB},
		{"PhotodetectorDB", t.PhotodetectorDB},
		{"SplitterExcessDB", t.SplitterExcessDB},
		{"SplitRatioDB", t.SplitRatioDB},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if math.IsNaN(t.DetectorSensitivityDBm) || math.IsInf(t.DetectorSensitivityDBm, 0) {
		return fmt.Errorf("loss: DetectorSensitivityDBm = %v, want finite", t.DetectorSensitivityDBm)
	}
	return nil
}

// IsZero reports whether t is the zero value, which the pipeline treats as
// "use Default()".
func (t Tech) IsZero() bool { return t == Tech{} }

// Normalize maps a caller-supplied Tech to the one the pipeline should use:
// the zero value becomes Default(), anything else must pass Validate plus a
// plausibility check that catches partially populated structs — the classic
// mistake of setting a couple of loss fields and leaving the rest zero,
// which Validate alone accepts and which silently yields meaningless power
// numbers. Every synthesis entry point (sring.Synthesize, the baselines,
// design.Finish) normalises through here, so a nonsensical parameter set
// fails the same way everywhere.
func Normalize(t Tech) (Tech, error) {
	if t.IsZero() {
		return Default(), nil
	}
	if err := t.Validate(); err != nil {
		return Tech{}, err
	}
	// A real technology always divides power in the PDN and has a finite
	// detector floor strictly below 0 dBm. Zero values here mean the struct
	// was part-filled, not that the technology is lossless.
	if t.SplitRatioDB == 0 {
		return Tech{}, fmt.Errorf("loss: SplitRatioDB is 0: a 1x2 splitter stage always divides power (3 dB for 50/50); start from loss.Default() and override fields instead of building a Tech from scratch")
	}
	if t.DetectorSensitivityDBm == 0 {
		return Tech{}, fmt.Errorf("loss: DetectorSensitivityDBm is 0: set the receiver sensitivity floor (e.g. -26 dBm); start from loss.Default() and override fields instead of building a Tech from scratch")
	}
	return t, nil
}

// SplitterStageDB is the loss a signal's laser power suffers per 1x2
// splitter stage: excess loss plus the 3 dB power division. This is the
// paper's L_sp constant.
func (t Tech) SplitterStageDB() float64 { return t.SplitterExcessDB + t.SplitRatioDB }

// PathGeometry captures everything about a routed signal path that the loss
// model needs, independent of wavelength assignment and PDN.
type PathGeometry struct {
	// LengthMM is the waveguide length travelled.
	LengthMM float64
	// Bends is the number of 90-degree bends traversed.
	Bends int
	// Crossings is the number of waveguide crossings traversed.
	Crossings int
	// MRRsPassed is the number of off-resonance MRRs the signal passes at
	// intermediate nodes.
	MRRsPassed int
}

// PathDB returns the insertion loss of a signal path excluding PDN losses:
// the paper's L_s (Eq. 5).
func (t Tech) PathDB(g PathGeometry) float64 {
	return t.ModulatorDB +
		t.PhotodetectorDB +
		2*t.DropDB + // couple onto the ring at the sender, drop at the receiver
		t.PropagationDBPerMM*g.LengthMM +
		t.BendDB*float64(g.Bends) +
		t.CrossingDB*float64(g.Crossings) +
		t.ThroughDB*float64(g.MRRsPassed)
}

// LaserPowerMW returns the optical laser power, in milliwatts, required for
// one wavelength whose worst-case insertion loss (including PDN losses) is
// worstILDB: the receiver must still see DetectorSensitivityDBm after the
// loss.
func (t Tech) LaserPowerMW(worstILDB float64) float64 {
	dbm := t.DetectorSensitivityDBm + worstILDB
	return math.Pow(10, dbm/10)
}

// TotalLaserPowerMW sums the per-wavelength laser powers for the given
// worst-case insertion losses (one entry per used wavelength).
func (t Tech) TotalLaserPowerMW(worstILPerWavelength []float64) float64 {
	var total float64
	for _, il := range worstILPerWavelength {
		total += t.LaserPowerMW(il)
	}
	return total
}
