package loss

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default parameters invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := Default()
	bad.DropDB = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative DropDB accepted")
	}
	bad = Default()
	bad.PropagationDBPerMM = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN propagation accepted")
	}
	bad = Default()
	bad.DetectorSensitivityDBm = math.Inf(-1)
	if err := bad.Validate(); err == nil {
		t.Error("infinite sensitivity accepted")
	}
}

func TestSplitterStageCalibration(t *testing.T) {
	// DESIGN.md §2: the paper's Table I numbers imply L_sp ≈ 3.3 dB.
	if got := Default().SplitterStageDB(); math.Abs(got-3.3) > 1e-12 {
		t.Errorf("SplitterStageDB = %v, want 3.3", got)
	}
}

func TestPathDBComponents(t *testing.T) {
	tech := Default()
	// Zero-geometry path: fixed sender/receiver losses only.
	base := tech.PathDB(PathGeometry{})
	want := tech.ModulatorDB + tech.PhotodetectorDB + 2*tech.DropDB
	if math.Abs(base-want) > 1e-12 {
		t.Errorf("base PathDB = %v, want %v", base, want)
	}
	// Each component adds linearly.
	g := PathGeometry{LengthMM: 10, Bends: 4, Crossings: 3, MRRsPassed: 50}
	got := tech.PathDB(g)
	want = base + 10*tech.PropagationDBPerMM + 4*tech.BendDB + 3*tech.CrossingDB + 50*tech.ThroughDB
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PathDB = %v, want %v", got, want)
	}
}

func TestPathDBMonotone(t *testing.T) {
	tech := Default()
	f := func(lenRaw, bendsRaw, crossRaw, mrrRaw uint8) bool {
		g := PathGeometry{
			LengthMM:   float64(lenRaw) / 10,
			Bends:      int(bendsRaw),
			Crossings:  int(crossRaw),
			MRRsPassed: int(mrrRaw),
		}
		base := tech.PathDB(g)
		worse := g
		worse.LengthMM += 1
		worse.Bends++
		worse.Crossings++
		worse.MRRsPassed++
		return tech.PathDB(worse) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("PathDB not monotone: %v", err)
	}
}

func TestLaserPowerMW(t *testing.T) {
	tech := Default()
	// At 0 dB loss, power is the sensitivity itself: -26 dBm ≈ 0.00251 mW.
	p0 := tech.LaserPowerMW(0)
	if math.Abs(p0-math.Pow(10, -2.6)) > 1e-12 {
		t.Errorf("LaserPowerMW(0) = %v", p0)
	}
	// +3 dB loss doubles required power (within rounding of 10^0.3).
	ratio := tech.LaserPowerMW(3) / p0
	if math.Abs(ratio-math.Pow(10, 0.3)) > 1e-9 {
		t.Errorf("3 dB ratio = %v", ratio)
	}
	// +10 dB is exactly 10x.
	if r := tech.LaserPowerMW(10) / p0; math.Abs(r-10) > 1e-9 {
		t.Errorf("10 dB ratio = %v, want 10", r)
	}
}

func TestTotalLaserPowerMW(t *testing.T) {
	tech := Default()
	single := tech.LaserPowerMW(5)
	total := tech.TotalLaserPowerMW([]float64{5, 5, 5})
	if math.Abs(total-3*single) > 1e-12 {
		t.Errorf("TotalLaserPowerMW = %v, want %v", total, 3*single)
	}
	if got := tech.TotalLaserPowerMW(nil); got != 0 {
		t.Errorf("empty total = %v, want 0", got)
	}
}

// The headline power effect in the paper: removing one splitter stage
// (3.3 dB) from the worst-case loss cuts that wavelength's laser power by
// more than half.
func TestSplitterRemovalPowerShape(t *testing.T) {
	tech := Default()
	with := tech.LaserPowerMW(20)
	without := tech.LaserPowerMW(20 - tech.SplitterStageDB())
	if without >= with/2 {
		t.Errorf("removing a splitter stage: %v -> %v, want >2x reduction", with, without)
	}
}
