package wavelength

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sring/internal/lp"
	"sring/internal/milp"
	"sring/internal/netlist"
	"sring/internal/obs"
)

// SolveInfo reports how a SolveMILP call went.
type SolveInfo struct {
	// Exact is true when optimality was proven.
	Exact bool
	// Bound is the proven lower bound on the Eq. 8 objective (for the
	// model's palette); meaningful whenever Nodes > 0.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Gap is the relative optimality gap of the returned assignment:
	// 0 for a proven optimum, +Inf when no bound was established.
	Gap float64
	// TimeLimitHit reports that the solver's wall-clock budget expired
	// before the search finished.
	TimeLimitHit bool
	// Cancelled reports that the solve was interrupted by context
	// cancellation; the returned assignment is the solver's best incumbent
	// at that moment.
	Cancelled bool
	// NodeFingerprint is the solver's explored-node fingerprint
	// (milp.Result.NodeFingerprint): identical across parallelism
	// settings for the same model and limits.
	NodeFingerprint uint64
}

// SolveMILP builds and solves the SRing wavelength-assignment MILP
// (paper Sec. III-B) over a palette of numLambda wavelengths, seeded with
// the incumbent assignment (which must use at most numLambda wavelengths).
// It returns the best assignment found and the solver telemetry. A zero
// timeLimit means milp.DefaultTimeLimit; parallelism is the LP worker
// count (0 = GOMAXPROCS, 1 = sequential), with no effect on the result.
// Cancelling ctx stops the search gracefully: the incumbent at that point
// is returned with SolveInfo.Cancelled set. The solve records under parent
// (model size, branch-and-bound progress, gap trajectory); a nil parent
// records nothing.
//
// Model notes relative to the paper:
//   - Eq. 2 (collision avoidance) is implemented as per-segment clique
//     constraints — for every waveguide segment and wavelength, at most one
//     of the paths crossing that segment may use it — which is equivalent
//     for overlap-defined conflicts and yields a tighter LP relaxation than
//     pairwise rows. (Read literally, Eq. 2's star form would also forbid
//     two mutually non-conflicting paths that each conflict with a third
//     from sharing a wavelength, which is over-strict.)
//   - Eq. 3's min(·, 1) is linearised with indicator binaries y_λ and rows
//     b_{s,λ} ≤ y_λ, plus symmetry-breaking y_λ ≥ y_{λ+1}.
//   - Eq. 5's il_s is substituted directly into Eqs. 6-7: il_s = L_s +
//     L_sp · b_sp^{n(s)}, removing one continuous variable per path.
func SolveMILP(ctx context.Context, infos []PathInfo, numLambda int, w Weights, incumbent *Assignment, timeLimit time.Duration, parallelism int, parent *obs.Span) (*Assignment, SolveInfo, error) {
	return SolveMILPRegistry(ctx, infos, numLambda, w, incumbent, timeLimit, parallelism, 0, nil, parent)
}

// SolveMILPRegistry is SolveMILP with an explicit aggregate-telemetry
// registry for the solver's kernel histograms (nil: obs.Default()) and a
// cut-separation budget (milp.Options.CutRounds: 0 solver default, negative
// disables cutting planes).
func SolveMILPRegistry(ctx context.Context, infos []PathInfo, numLambda int, w Weights, incumbent *Assignment, timeLimit time.Duration, parallelism, cutRounds int, reg *obs.Registry, parent *obs.Span) (*Assignment, SolveInfo, error) {
	if incumbent != nil && incumbent.NumLambda > numLambda {
		return nil, SolveInfo{}, fmt.Errorf("wavelength: incumbent uses %d wavelengths, palette has %d", incumbent.NumLambda, numLambda)
	}
	m, err := BuildMILP(infos, numLambda, w)
	if err != nil {
		return nil, SolveInfo{}, err
	}
	return solveModel(ctx, m, infos, incumbent, w, timeLimit, parallelism, cutRounds, reg, parent)
}

// MILPModel is one instance's built Eq. 8 linearisation: the mixed-integer
// problem plus the variable layout needed to seed and decode it.
// SolveMILPRegistry consumes it; the cut-validity property tests drive
// milp.SolveContext on it directly (with presolve disabled, so audited cut
// coordinates stay in this model's variable space).
type MILPModel struct {
	// Prob is the problem to hand to milp.SolveContext.
	Prob *milp.Problem
	// Priority is the branch-priority vector for milp.Options.BranchPriority.
	Priority []int

	s, l    int
	spNodes []netlist.NodeID
}

// Variable layout (see BuildMILP):
//
//	b_{s,λ}   : s*L + λ                      (binary)   [0, S*L)
//	y_λ       : S*L + λ                      (binary)
//	sp_n      : S*L + L + spIndex[n]         (binary)
//	ilSmax    : S*L + L + |sp|               (continuous)
//	ilmax_λ   : S*L + L + |sp| + 1 + λ       (continuous)
func (m *MILPModel) bVar(s, l int) int  { return s*m.l + l }
func (m *MILPModel) yVar(l int) int     { return m.s*m.l + l }
func (m *MILPModel) spVar(i int) int    { return m.s*m.l + m.l + i }
func (m *MILPModel) ilSmaxVar() int     { return m.s*m.l + m.l + len(m.spNodes) }
func (m *MILPModel) ilMaxVar(l int) int { return m.ilSmaxVar() + 1 + l }

// IncumbentVector lifts a feasible assignment into the model's variable
// space, suitable for milp.Options.Incumbent. The assignment is normalised
// to first-use wavelength order first — the model's symmetry rows assume it.
func (m *MILPModel) IncumbentVector(infos []PathInfo, a *Assignment, w Weights) []float64 {
	norm := &Assignment{Lambda: append([]int(nil), a.Lambda...), NumLambda: a.NumLambda}
	norm.Normalize()
	return incumbentVector(infos, norm, m.Prob.LP.NumVars, m.l,
		m.bVar, m.yVar, m.spVar, m.ilSmaxVar(), m.ilMaxVar, w)
}

// Decode reads the wavelength assignment out of a solver point.
func (m *MILPModel) Decode(x []float64) (*Assignment, error) {
	a := &Assignment{Lambda: make([]int, m.s), NumLambda: m.l}
	for s := 0; s < m.s; s++ {
		found := false
		for l := 0; l < m.l; l++ {
			if x[m.bVar(s, l)] > 0.5 {
				a.Lambda[s] = l
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("wavelength: MILP solution assigns no wavelength to path %d", s)
		}
	}
	a.Normalize()
	return a, nil
}

// BuildMILP constructs the wavelength-assignment MILP over a palette of
// numLambda wavelengths without solving it. See SolveMILP for the model
// notes.
func BuildMILP(infos []PathInfo, numLambda int, w Weights) (*MILPModel, error) {
	if numLambda < 1 {
		return nil, fmt.Errorf("wavelength: SolveMILP needs numLambda >= 1, got %d", numLambda)
	}
	S := len(infos)
	L := numLambda

	// Two-sender nodes get a b_sp variable (single-sender nodes never need
	// a node splitter).
	nodeRings := make(map[netlist.NodeID]map[int]bool)
	for _, pi := range infos {
		n := pi.SenderNode()
		if nodeRings[n] == nil {
			nodeRings[n] = make(map[int]bool)
		}
		nodeRings[n][pi.SenderRing()] = true
	}
	var spNodes []netlist.NodeID
	for n, rings := range nodeRings {
		if len(rings) >= 2 {
			spNodes = append(spNodes, n)
		}
	}
	sort.Slice(spNodes, func(i, j int) bool { return spNodes[i] < spNodes[j] })
	spIndex := make(map[netlist.NodeID]int, len(spNodes))
	for i, n := range spNodes {
		spIndex[n] = i
	}

	// Variable layout:
	//   b_{s,λ}   : s*L + λ                      (binary)   [0, S*L)
	//   y_λ       : S*L + λ                      (binary)
	//   sp_n      : S*L + L + spIndex[n]         (binary)
	//   ilSmax    : S*L + L + |sp|               (continuous)
	//   ilmax_λ   : S*L + L + |sp| + 1 + λ       (continuous)
	bVar := func(s, l int) int { return s*L + l }
	yVar := func(l int) int { return S*L + l }
	spVar := func(i int) int { return S*L + L + i }
	ilSmaxVar := S*L + L + len(spNodes)
	ilMaxVar := func(l int) int { return ilSmaxVar + 1 + l }
	numVars := ilSmaxVar + 1 + L

	prob := &milp.Problem{
		LP:      lp.Problem{NumVars: numVars, Objective: make([]float64, numVars)},
		Integer: make([]bool, numVars),
	}
	for s := 0; s < S; s++ {
		for l := 0; l < L; l++ {
			prob.Integer[bVar(s, l)] = true
		}
	}
	for l := 0; l < L; l++ {
		prob.Integer[yVar(l)] = true
		prob.LP.Objective[yVar(l)] = w.Alpha     // α · i_wl
		prob.LP.Objective[ilMaxVar(l)] = w.Gamma // γ · Σ il_λ^max
	}
	for i := range spNodes {
		prob.Integer[spVar(i)] = true
	}
	prob.LP.Objective[ilSmaxVar] = w.Beta // β · il^Smax

	// Eq. 1: each path gets exactly one wavelength.
	for s := 0; s < S; s++ {
		terms := make(map[int]float64, L)
		for l := 0; l < L; l++ {
			terms[bVar(s, l)] = 1
		}
		prob.LP.AddConstraint(lp.EQ, 1, terms)
	}

	// Eq. 2 (clique form): per (ring, segment) with >= 2 paths, per λ. The
	// right-hand side is y_λ rather than 1 — equivalent for integral points
	// (b ≤ y forces every term to 0 when y_λ = 0) but strictly tighter in
	// the LP relaxation, where it charges every congested segment against
	// the wavelength-activation objective.
	segPaths := make(map[[2]int][]int)
	for s, pi := range infos {
		for _, seg := range pi.Path.Segs {
			key := [2]int{pi.Path.RingID, seg}
			segPaths[key] = append(segPaths[key], s)
		}
	}
	// A segment's paths pairwise conflict, but conflicts chain across
	// segments (s1~s2 on one segment, s2~s3 on another, s1~s3 on a third),
	// so the maximal cliques of the whole conflict graph can be strictly
	// larger than any one segment's clique. Rows over maximal cliques
	// dominate the per-segment form — fewer rows, each tighter.
	cliques := maximalCliques(S, segPaths)
	maxClique := 1
	for _, c := range cliques {
		if len(c) > maxClique {
			maxClique = len(c)
		}
	}
	for _, c := range cliques {
		for l := 0; l < L; l++ {
			terms := make(map[int]float64, len(c)+1)
			for _, s := range c {
				terms[bVar(s, l)] = 1
			}
			terms[yVar(l)] = -1
			prob.LP.AddConstraint(lp.LE, 0, terms)
		}
	}
	// Any segment crossed by k paths needs k distinct wavelengths, so the
	// largest such clique is a valid lower bound on Σ y_λ. It lifts the
	// root relaxation's wavelength count off the fractional floor.
	if maxClique > 1 {
		terms := make(map[int]float64, L)
		for l := 0; l < L; l++ {
			terms[yVar(l)] = 1
		}
		prob.LP.AddConstraint(lp.GE, float64(maxClique), terms)
	}

	// Ring-capacity bound: a path is an arc on its ring, and paths sharing
	// a wavelength must be segment-disjoint (Eq. 2 collision avoidance is
	// physical — splitters do not relax it), so on ring r one wavelength
	// carries at most K_r segments' worth of arcs, K_r being the number of
	// segments of r any path crosses. The per-λ length rows are sums of
	// per-segment rows and hence dominated by the clique rows above, but
	// Chvátal-Gomory rounding of the aggregate survives domination: the
	// integral Σ y_λ must reach ⌈(Σ_{s on r} len_s)/K_r⌉, which the LP
	// cannot derive on its own.
	ringIDs := make([]int, 0, 4)
	ringSegs := make(map[int]map[int]bool)
	for _, pi := range infos {
		r := pi.Path.RingID
		if ringSegs[r] == nil {
			ringSegs[r] = make(map[int]bool)
			ringIDs = append(ringIDs, r)
		}
		for _, seg := range pi.Path.Segs {
			ringSegs[r][seg] = true
		}
	}
	sort.Ints(ringIDs)
	minColours := maxClique
	for _, r := range ringIDs {
		K := len(ringSegs[r])
		totalLen := 0
		for _, pi := range infos {
			if pi.Path.RingID == r {
				totalLen += len(pi.Path.Segs)
			}
		}
		if need := (totalLen + K - 1) / K; need > minColours {
			minColours = need
		}
	}
	if minColours > maxClique {
		terms := make(map[int]float64, L)
		for l := 0; l < L; l++ {
			terms[yVar(l)] = 1
		}
		prob.LP.AddConstraint(lp.GE, float64(minColours), terms)
	}

	minLoss := math.Inf(1)
	for _, pi := range infos {
		if pi.LossDB < minLoss {
			minLoss = pi.LossDB
		}
	}

	// Aggregated clique loss rows: within one clique at most one path
	// occupies λ (Eq. 2), so ilmax_λ ≥ Σ_{s∈C} L_s · b_{s,λ} holds with no
	// big-M at all. These rows anchor the γ·Σ ilmax objective term, which a
	// fractional relaxation otherwise dilutes to nearly zero by spreading
	// each b_{s,λ} across the palette, and they dominate the individual
	// Eqs. 5+7 rows of every splitter-free clique member (dropped below).
	cliqueCovered := make([]bool, S)
	for _, c := range cliques {
		for l := 0; l < L; l++ {
			terms := make(map[int]float64, len(c)+1)
			terms[ilMaxVar(l)] = 1
			for _, s := range c {
				terms[bVar(s, l)] = -infos[s].LossDB
			}
			prob.LP.AddConstraint(lp.GE, 0, terms)
		}
		for _, s := range c {
			cliqueCovered[s] = true
		}
	}

	// The same aggregation works for the splitter-aware loss rows of
	// Eqs. 5+7 (the McCormick form below): within a clique drawn from ONE
	// splitter-eligible sender n,
	//
	//	ilmax_λ ≥ Σ_{s∈C} (L_s + L_sp)·b_{s,λ} + L_sp·sp_n − L_sp
	//
	// is exact (at most one b is 1; the corners match the paper's il_s) and
	// dominates every member's individual row. Summed over λ it charges
	// each clique member its splitter stage as soon as sp_n rises, pricing
	// the wavelength-for-splitter trade at a hub node instead of leaving it
	// free in the relaxation. Cliques are taken within each sender's own
	// paths, so members of a mixed maximal clique still aggregate here.
	nodeCliqueCovered := make([]bool, S)
	for i, n := range spNodes {
		nodeSegPaths := make(map[[2]int][]int)
		for s, pi := range infos {
			if pi.SenderNode() != n {
				continue
			}
			for _, seg := range pi.Path.Segs {
				key := [2]int{pi.Path.RingID, seg}
				nodeSegPaths[key] = append(nodeSegPaths[key], s)
			}
		}
		for _, c := range maximalCliques(S, nodeSegPaths) {
			for l := 0; l < L; l++ {
				terms := make(map[int]float64, len(c)+2)
				terms[ilMaxVar(l)] = 1
				for _, s := range c {
					terms[bVar(s, l)] = -(infos[s].LossDB + w.SplitterStageDB)
				}
				terms[spVar(i)] = -w.SplitterStageDB
				prob.LP.AddConstraint(lp.GE, -w.SplitterStageDB, terms)
			}
			for _, s := range c {
				nodeCliqueCovered[s] = true
			}
		}
	}

	// Level cut: write each per-wavelength maximum as the integral of its
	// indicator, Σ_λ ilmax_λ = Σ_λ ∫ [ilmax_λ > t] dt. A wavelength hosting
	// a path with L_s > t has ilmax_λ > t, and the paths above the threshold
	// that pairwise conflict need distinct wavelengths, so the integrand is
	// at least the maximum clique size among {s : L_s > t} — and, below the
	// minimum loss, at least the number of open wavelengths: an open
	// wavelength hosting no path is feasible in the paper's model but never
	// uniquely optimal (dropping its y only improves Eq. 8), and first-use
	// normalisation yields optima where every open wavelength hosts a path
	// of loss ≥ Lmin. Integrating gives
	//
	//	Σ_λ ilmax_λ ≥ Lmin·Σ_λ y_λ + ∫_{Lmin}^∞ q(t) dt
	//
	// a single row that charges every (fractionally) open wavelength the
	// minimum loss — the conflict-number-versus-clique-number gap that pure
	// clique rows cannot see — while keeping at least one optimum feasible.
	var levelTail, prevLevel float64
	type lossLevel struct{ t, q float64 }
	var levels []lossLevel
	lossesAsc := make([]float64, S)
	for s, pi := range infos {
		lossesAsc[s] = pi.LossDB
	}
	sort.Float64s(lossesAsc)
	prevLevel = minLoss
	for i, t := range lossesAsc {
		if t <= minLoss || (i > 0 && t == lossesAsc[i-1]) {
			continue
		}
		q := 1 // at least one wavelength carries the paths at this level
		for _, c := range cliques {
			cnt := 0
			for _, s := range c {
				if infos[s].LossDB >= t {
					cnt++
				}
			}
			if cnt > q {
				q = cnt
			}
		}
		// The ring-capacity argument also applies level-wise: the arcs of
		// loss ≥ t on ring r need ⌈(their total length)/K_r⌉ wavelengths.
		for _, r := range ringIDs {
			lenAbove := 0
			for _, pi := range infos {
				if pi.Path.RingID == r && pi.LossDB >= t {
					lenAbove += len(pi.Path.Segs)
				}
			}
			if K := len(ringSegs[r]); lenAbove > 0 {
				if need := (lenAbove + K - 1) / K; need > q {
					q = need
				}
			}
		}
		levelTail += (t - prevLevel) * float64(q)
		levels = append(levels, lossLevel{t: t, q: float64(q)})
		prevLevel = t
	}
	if S > 0 {
		terms := make(map[int]float64, 2*L)
		for l := 0; l < L; l++ {
			terms[ilMaxVar(l)] = 1
			terms[yVar(l)] = -minLoss
		}
		prob.LP.AddConstraint(lp.GE, levelTail, terms)
	}

	// Splitter-conditional level rows: with sp_n = 0, Eq. 4 gives each of
	// node n's paths its own wavelength, so above threshold t at least
	// #{paths of n with loss ≥ t} wavelengths carry ilmax_λ ≥ t — a larger
	// integrand than the clique count wherever a hub's fan-out exceeds the
	// clique number. Interpolating between the sp = 0 tail and the
	// unconditional one keeps the row valid at both splitter values:
	//
	//	Σ_λ ilmax_λ − Lmin·Σ_λ y_λ + (tail_n − tail)·sp_n ≥ tail_n
	for i, n := range spNodes {
		var tailN float64
		prev := minLoss
		for _, lv := range levels {
			cnt := 0
			for _, pi := range infos {
				if pi.SenderNode() == n && pi.LossDB >= lv.t {
					cnt++
				}
			}
			q := lv.q
			if float64(cnt) > q {
				q = float64(cnt)
			}
			tailN += (lv.t - prev) * q
			prev = lv.t
		}
		if tailN > levelTail+1e-9 {
			terms := make(map[int]float64, 2*L+1)
			for l := 0; l < L; l++ {
				terms[ilMaxVar(l)] = 1
				terms[yVar(l)] = -minLoss
			}
			terms[spVar(i)] = tailN - levelTail
			prob.LP.AddConstraint(lp.GE, tailN, terms)
		}
	}

	// Eq. 3 linearisation: b_{s,λ} ≤ y_λ (skipped for paths already covered
	// by a clique row, which dominates it); y binary; symmetry y_λ ≥ y_{λ+1}.
	for s := 0; s < S; s++ {
		if cliqueCovered[s] {
			continue
		}
		for l := 0; l < L; l++ {
			prob.LP.AddConstraint(lp.LE, 0, map[int]float64{bVar(s, l): 1, yVar(l): -1})
		}
	}
	for l := 0; l < L; l++ {
		prob.LP.AddConstraint(lp.LE, 1, map[int]float64{yVar(l): 1})
	}
	for l := 0; l+1 < L; l++ {
		prob.LP.AddConstraint(lp.LE, 0, map[int]float64{yVar(l + 1): 1, yVar(l): -1})
	}

	// Wavelength labels are interchangeable, so every assignment can be
	// relabelled to first-use order (path s introduces at most one new
	// wavelength, hence uses some λ ≤ s). Fixing b_{s,λ} = 0 for λ > s cuts
	// the symmetric copies out of the search tree; the rows are singletons,
	// which the MILP presolve turns into variable bounds — for free at the
	// LP level. The incumbent is normalised below to honour the same order.
	for s := 0; s < S && s < L-1; s++ {
		for l := s + 1; l < L; l++ {
			prob.LP.AddConstraint(lp.LE, 0, map[int]float64{bVar(s, l): 1})
		}
	}

	// Eq. 4: per multi-sender node and λ, sharing forces the splitter
	// binary. The paper states the constraint for SRing's two-sender
	// nodes; with R_n sender rings (XRing chords can exceed two) the
	// generalisation is Σ b ≤ 1 + (R_n − 1)·sp: without a splitter only
	// one sender may use λ, with one the node's full complement may.
	for i, n := range spNodes {
		var fromNode []int
		for s, pi := range infos {
			if pi.SenderNode() == n {
				fromNode = append(fromNode, s)
			}
		}
		ringCount := float64(len(nodeRings[n]))
		for l := 0; l < L; l++ {
			terms := make(map[int]float64, len(fromNode)+1)
			for _, s := range fromNode {
				terms[bVar(s, l)] = 1
			}
			terms[spVar(i)] = -(ringCount - 1)
			prob.CoverRows = append(prob.CoverRows, len(prob.LP.Constraints))
			prob.LP.AddConstraint(lp.LE, 1, terms)
		}
		prob.LP.AddConstraint(lp.LE, 1, map[int]float64{spVar(i): 1})
	}

	// Node-degree cut: without a splitter, Eq. 4 gives each of a node's
	// paths its own wavelength, so Σ y_λ ≥ outdeg(n); with one, the node's
	// paths still need q1_n = max(their own per-segment load, ⌈outdeg/R_n⌉)
	// wavelengths (same-segment arcs conflict regardless of splitters, and
	// Eq. 4 admits at most R_n of them per λ). The linear interpolation
	//
	//	Σ_λ y_λ + (outdeg(n) − q1_n)·sp_n ≥ outdeg(n)
	//
	// is valid at both sp values, hence for every integral point. This is
	// the bound clique rows cannot see: MPEG's hub sends 11 paths across
	// two rings, so sp = 0 forces all 11 wavelengths open even though the
	// segment-conflict clique number is only 7.
	for i, n := range spNodes {
		outdeg := 0
		q1 := 1
		load := make(map[[2]int]int)
		for _, pi := range infos {
			if pi.SenderNode() != n {
				continue
			}
			outdeg++
			for _, seg := range pi.Path.Segs {
				key := [2]int{pi.Path.RingID, seg}
				load[key]++
				if load[key] > q1 {
					q1 = load[key]
				}
			}
		}
		if c := (outdeg + len(nodeRings[n]) - 1) / len(nodeRings[n]); c > q1 {
			q1 = c
		}
		if outdeg <= q1 || outdeg <= minColours {
			continue
		}
		terms := make(map[int]float64, L+1)
		for l := 0; l < L; l++ {
			terms[yVar(l)] = 1
		}
		terms[spVar(i)] = float64(outdeg - q1)
		prob.CoverRows = append(prob.CoverRows, len(prob.LP.Constraints))
		prob.LP.AddConstraint(lp.GE, float64(outdeg), terms)
	}

	// Eqs. 5+6: il^Smax ≥ L_s + L_sp · sp_{n(s)}.
	for _, pi := range infos {
		terms := map[int]float64{ilSmaxVar: 1}
		if i, ok := spIndex[pi.SenderNode()]; ok {
			terms[spVar(i)] = -w.SplitterStageDB
		}
		prob.LP.AddConstraint(lp.GE, pi.LossDB, terms)
	}

	// Eqs. 5+7: the paper writes ilmax_λ ≥ il_s − Ξ(1 − b_{s,λ}) with a
	// big-M Ξ, whose LP relaxation is nearly vacuous (a fractional b buys
	// back Ξ(1 − b) of slack). Because il_s = L_s + L_sp·sp_{n(s)} involves
	// at most one binary besides b, the product il_s·b_{s,λ} linearises
	// exactly instead — McCormick on the sp·b product:
	//
	//	ilmax_λ ≥ (L_s + L_sp)·b_{s,λ} + L_sp·sp_{n(s)} − L_sp
	//
	// (check the four corners: b=1,sp=1 → L_s+L_sp; b=1,sp=0 → L_s;
	// b=0 → ≤ 0). Splitter-free paths reduce to ilmax_λ ≥ L_s·b_{s,λ},
	// which the aggregated clique row already dominates for covered paths.
	for s, pi := range infos {
		spI, hasSp := spIndex[pi.SenderNode()]
		for l := 0; l < L; l++ {
			if hasSp {
				if nodeCliqueCovered[s] {
					continue // the sender-clique row above dominates this one
				}
				prob.LP.AddConstraint(lp.GE, -w.SplitterStageDB, map[int]float64{
					ilMaxVar(l): 1,
					bVar(s, l):  -(pi.LossDB + w.SplitterStageDB),
					spVar(spI):  -w.SplitterStageDB,
				})
			} else if !cliqueCovered[s] {
				prob.LP.AddConstraint(lp.GE, 0, map[int]float64{
					ilMaxVar(l): 1,
					bVar(s, l):  -pi.LossDB,
				})
			}
		}
	}

	// Branch on the structure of the solution before its details: fixing a
	// y_λ decides whether a wavelength exists at all (and the symmetry
	// ordering rows then cascade), and a splitter binary moves every loss
	// row of its node; the b assignment binaries go last, highest-loss
	// paths first — a lossy path's wavelength choice moves ilmax rows the
	// most, so deciding it early forces the per-λ maxima (the last
	// fractional slack in the relaxation) instead of grinding through
	// interchangeable low-loss assignments.
	prio := make([]int, numVars)
	for l := 0; l < L; l++ {
		prio[yVar(l)] = 2
	}
	for i := range spNodes {
		prio[spVar(i)] = 1
	}
	lossRank := make([]int, S)
	for s := range lossRank {
		lossRank[s] = s
	}
	sort.SliceStable(lossRank, func(a, b int) bool { return infos[lossRank[a]].LossDB > infos[lossRank[b]].LossDB })
	for r, s := range lossRank {
		for l := 0; l < L; l++ {
			prio[bVar(s, l)] = -r
		}
	}

	return &MILPModel{Prob: prob, Priority: prio, s: S, l: L, spNodes: spNodes}, nil
}

// solveModel runs the built model through the branch-and-cut solver and
// decodes the result.
func solveModel(ctx context.Context, m *MILPModel, infos []PathInfo, incumbent *Assignment, w Weights, timeLimit time.Duration, parallelism, cutRounds int, reg *obs.Registry, parent *obs.Span) (*Assignment, SolveInfo, error) {
	S, L := m.s, m.l
	numLambda := L
	msp := parent.StartSpan("wavelength.milp")
	defer msp.End()
	msp.SetInt("num_lambda", int64(numLambda))
	msp.SetInt("binaries", int64(S*L+L+len(m.spNodes)))
	msp.SetInt("vars", int64(m.Prob.LP.NumVars))
	msp.SetInt("constraints", int64(len(m.Prob.LP.Constraints)))
	msp.SetBool("seeded", incumbent != nil)

	opts := milp.Options{TimeLimit: timeLimit, Parallelism: parallelism, CutRounds: cutRounds, BranchPriority: m.Priority, Obs: msp, Registry: reg}
	if incumbent != nil {
		opts.Incumbent = m.IncumbentVector(infos, incumbent, w)
	}
	res, err := milp.SolveContext(ctx, m.Prob, opts)
	if err != nil {
		return nil, SolveInfo{}, fmt.Errorf("wavelength: MILP solve: %w", err)
	}
	info := SolveInfo{
		Exact:           res.Status == milp.Optimal,
		Bound:           res.Bound,
		Nodes:           res.Nodes,
		Gap:             res.Gap(),
		TimeLimitHit:    res.TimeLimitHit,
		Cancelled:       res.Cancelled,
		NodeFingerprint: res.NodeFingerprint,
	}
	msp.SetBool("exact", info.Exact)
	msp.SetFloat("bound", info.Bound)
	msp.SetInt("nodes", int64(info.Nodes))
	msp.SetFloat("milp_gap", info.Gap)
	msp.SetBool("time_limit_hit", info.TimeLimitHit)
	msp.SetBool("cancelled", info.Cancelled)
	switch res.Status {
	case milp.Optimal, milp.Feasible:
		a, err := m.Decode(res.X)
		if err != nil {
			return nil, SolveInfo{}, err
		}
		return a, info, nil
	case milp.Infeasible:
		return nil, SolveInfo{}, fmt.Errorf("wavelength: MILP %w with %d wavelengths", ErrInfeasible, numLambda)
	default:
		return nil, info, nil // no solution found within limits
	}
}

// maximalCliques lists the maximal cliques (size >= 2) of the path conflict
// graph, where two paths conflict when they cross a common (ring, segment).
// Bron-Kerbosch with vertices processed in index order keeps the enumeration
// deterministic; path counts are small (tens), so the worst case is a
// non-issue. Each clique is sorted ascending and the list is ordered
// lexicographically.
func maximalCliques(S int, segPaths map[[2]int][]int) [][]int {
	adj := make([][]bool, S)
	for i := range adj {
		adj[i] = make([]bool, S)
	}
	for _, ps := range segPaths {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				adj[ps[i]][ps[j]] = true
				adj[ps[j]][ps[i]] = true
			}
		}
	}
	var out [][]int
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if len(p) == 0 && len(x) == 0 {
			if len(r) >= 2 {
				out = append(out, append([]int(nil), r...))
			}
			return
		}
		for i := 0; i < len(p); i++ {
			v := p[i]
			var p2, x2 []int
			for _, u := range p {
				if adj[v][u] {
					p2 = append(p2, u)
				}
			}
			for _, u := range x {
				if adj[v][u] {
					x2 = append(x2, u)
				}
			}
			bk(append(r, v), p2, x2)
			p = append(p[:i:i], p[i+1:]...)
			i--
			x = append(x, v)
		}
	}
	all := make([]int, S)
	for i := range all {
		all[i] = i
	}
	bk(nil, all, nil)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// incumbentVector lifts a heuristic assignment into the MILP variable space
// so branch and bound starts with a cutoff.
func incumbentVector(infos []PathInfo, a *Assignment, numVars, L int,
	bVar func(int, int) int, yVar func(int) int, spVar func(int) int,
	ilSmaxVar int, ilMaxVar func(int) int, w Weights) []float64 {

	x := make([]float64, numVars)
	for s, l := range a.Lambda {
		x[bVar(s, l)] = 1
	}
	for l := 0; l < a.NumLambda && l < L; l++ {
		x[yVar(l)] = 1
	}
	sp := NodeSplitters(infos, a)
	// Recover sp variable order: spVar indices assigned over sorted nodes
	// with >= 2 sender rings, mirrored from SolveMILP.
	nodeRings := make(map[netlist.NodeID]map[int]bool)
	for _, pi := range infos {
		n := pi.SenderNode()
		if nodeRings[n] == nil {
			nodeRings[n] = make(map[int]bool)
		}
		nodeRings[n][pi.SenderRing()] = true
	}
	var spNodes []netlist.NodeID
	for n, rings := range nodeRings {
		if len(rings) >= 2 {
			spNodes = append(spNodes, n)
		}
	}
	sort.Slice(spNodes, func(i, j int) bool { return spNodes[i] < spNodes[j] })
	for i, n := range spNodes {
		if sp[n] {
			x[spVar(i)] = 1
		}
	}
	var worst float64
	perLambda := make([]float64, L)
	for i, pi := range infos {
		il := pi.LossDB
		if sp[pi.SenderNode()] {
			il += w.SplitterStageDB
		}
		worst = math.Max(worst, il)
		l := a.Lambda[i]
		perLambda[l] = math.Max(perLambda[l], il)
	}
	x[ilSmaxVar] = worst
	for l := 0; l < L; l++ {
		x[ilMaxVar(l)] = perLambda[l]
	}
	return x
}
