package wavelength

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sring/internal/lp"
	"sring/internal/milp"
	"sring/internal/netlist"
	"sring/internal/obs"
)

// SolveInfo reports how a SolveMILP call went.
type SolveInfo struct {
	// Exact is true when optimality was proven.
	Exact bool
	// Bound is the proven lower bound on the Eq. 8 objective (for the
	// model's palette); meaningful whenever Nodes > 0.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// SolveMILP builds and solves the SRing wavelength-assignment MILP
// (paper Sec. III-B) over a palette of numLambda wavelengths, seeded with
// the incumbent assignment (which must use at most numLambda wavelengths).
// It returns the best assignment found and the solver telemetry. A zero
// timeLimit means milp.DefaultTimeLimit; parallelism is the LP worker
// count (0 = GOMAXPROCS, 1 = sequential), with no effect on the result.
// The solve records under parent (model size, branch-and-bound progress,
// gap trajectory); a nil parent records nothing.
//
// Model notes relative to the paper:
//   - Eq. 2 (collision avoidance) is implemented as per-segment clique
//     constraints — for every waveguide segment and wavelength, at most one
//     of the paths crossing that segment may use it — which is equivalent
//     for overlap-defined conflicts and yields a tighter LP relaxation than
//     pairwise rows. (Read literally, Eq. 2's star form would also forbid
//     two mutually non-conflicting paths that each conflict with a third
//     from sharing a wavelength, which is over-strict.)
//   - Eq. 3's min(·, 1) is linearised with indicator binaries y_λ and rows
//     b_{s,λ} ≤ y_λ, plus symmetry-breaking y_λ ≥ y_{λ+1}.
//   - Eq. 5's il_s is substituted directly into Eqs. 6-7: il_s = L_s +
//     L_sp · b_sp^{n(s)}, removing one continuous variable per path.
func SolveMILP(infos []PathInfo, numLambda int, w Weights, incumbent *Assignment, timeLimit time.Duration, parallelism int, parent *obs.Span) (*Assignment, SolveInfo, error) {
	if numLambda < 1 {
		return nil, SolveInfo{}, fmt.Errorf("wavelength: SolveMILP needs numLambda >= 1, got %d", numLambda)
	}
	if incumbent != nil && incumbent.NumLambda > numLambda {
		return nil, SolveInfo{}, fmt.Errorf("wavelength: incumbent uses %d wavelengths, palette has %d", incumbent.NumLambda, numLambda)
	}
	S := len(infos)
	L := numLambda

	// Two-sender nodes get a b_sp variable (single-sender nodes never need
	// a node splitter).
	nodeRings := make(map[netlist.NodeID]map[int]bool)
	for _, pi := range infos {
		n := pi.SenderNode()
		if nodeRings[n] == nil {
			nodeRings[n] = make(map[int]bool)
		}
		nodeRings[n][pi.SenderRing()] = true
	}
	var spNodes []netlist.NodeID
	for n, rings := range nodeRings {
		if len(rings) >= 2 {
			spNodes = append(spNodes, n)
		}
	}
	sort.Slice(spNodes, func(i, j int) bool { return spNodes[i] < spNodes[j] })
	spIndex := make(map[netlist.NodeID]int, len(spNodes))
	for i, n := range spNodes {
		spIndex[n] = i
	}

	// Variable layout:
	//   b_{s,λ}   : s*L + λ                      (binary)   [0, S*L)
	//   y_λ       : S*L + λ                      (binary)
	//   sp_n      : S*L + L + spIndex[n]         (binary)
	//   ilSmax    : S*L + L + |sp|               (continuous)
	//   ilmax_λ   : S*L + L + |sp| + 1 + λ       (continuous)
	bVar := func(s, l int) int { return s*L + l }
	yVar := func(l int) int { return S*L + l }
	spVar := func(i int) int { return S*L + L + i }
	ilSmaxVar := S*L + L + len(spNodes)
	ilMaxVar := func(l int) int { return ilSmaxVar + 1 + l }
	numVars := ilSmaxVar + 1 + L

	var maxLs float64
	for _, pi := range infos {
		if pi.LossDB > maxLs {
			maxLs = pi.LossDB
		}
	}
	xi := maxLs + w.SplitterStageDB + 1 // the paper's Ξ

	prob := &milp.Problem{
		LP:      lp.Problem{NumVars: numVars, Objective: make([]float64, numVars)},
		Integer: make([]bool, numVars),
	}
	for s := 0; s < S; s++ {
		for l := 0; l < L; l++ {
			prob.Integer[bVar(s, l)] = true
		}
	}
	for l := 0; l < L; l++ {
		prob.Integer[yVar(l)] = true
		prob.LP.Objective[yVar(l)] = w.Alpha     // α · i_wl
		prob.LP.Objective[ilMaxVar(l)] = w.Gamma // γ · Σ il_λ^max
	}
	for i := range spNodes {
		prob.Integer[spVar(i)] = true
	}
	prob.LP.Objective[ilSmaxVar] = w.Beta // β · il^Smax

	// Eq. 1: each path gets exactly one wavelength.
	for s := 0; s < S; s++ {
		terms := make(map[int]float64, L)
		for l := 0; l < L; l++ {
			terms[bVar(s, l)] = 1
		}
		prob.LP.AddConstraint(lp.EQ, 1, terms)
	}

	// Eq. 2 (clique form): per (ring, segment) with >= 2 paths, per λ.
	segPaths := make(map[[2]int][]int)
	for s, pi := range infos {
		for _, seg := range pi.Path.Segs {
			key := [2]int{pi.Path.RingID, seg}
			segPaths[key] = append(segPaths[key], s)
		}
	}
	var segKeys [][2]int
	for key, ps := range segPaths {
		if len(ps) >= 2 {
			segKeys = append(segKeys, key)
		}
	}
	sort.Slice(segKeys, func(i, j int) bool {
		if segKeys[i][0] != segKeys[j][0] {
			return segKeys[i][0] < segKeys[j][0]
		}
		return segKeys[i][1] < segKeys[j][1]
	})
	for _, key := range segKeys {
		for l := 0; l < L; l++ {
			terms := make(map[int]float64, len(segPaths[key]))
			for _, s := range segPaths[key] {
				terms[bVar(s, l)] = 1
			}
			prob.LP.AddConstraint(lp.LE, 1, terms)
		}
	}

	// Eq. 3 linearisation: b_{s,λ} ≤ y_λ; y binary; symmetry y_λ ≥ y_{λ+1}.
	for s := 0; s < S; s++ {
		for l := 0; l < L; l++ {
			prob.LP.AddConstraint(lp.LE, 0, map[int]float64{bVar(s, l): 1, yVar(l): -1})
		}
	}
	for l := 0; l < L; l++ {
		prob.LP.AddConstraint(lp.LE, 1, map[int]float64{yVar(l): 1})
	}
	for l := 0; l+1 < L; l++ {
		prob.LP.AddConstraint(lp.LE, 0, map[int]float64{yVar(l + 1): 1, yVar(l): -1})
	}

	// Eq. 4: per multi-sender node and λ, sharing forces the splitter
	// binary. The paper states the constraint for SRing's two-sender
	// nodes; with R_n sender rings (XRing chords can exceed two) the
	// generalisation is Σ b ≤ 1 + (R_n − 1)·sp: without a splitter only
	// one sender may use λ, with one the node's full complement may.
	for i, n := range spNodes {
		var fromNode []int
		for s, pi := range infos {
			if pi.SenderNode() == n {
				fromNode = append(fromNode, s)
			}
		}
		ringCount := float64(len(nodeRings[n]))
		for l := 0; l < L; l++ {
			terms := make(map[int]float64, len(fromNode)+1)
			for _, s := range fromNode {
				terms[bVar(s, l)] = 1
			}
			terms[spVar(i)] = -(ringCount - 1)
			prob.LP.AddConstraint(lp.LE, 1, terms)
		}
		prob.LP.AddConstraint(lp.LE, 1, map[int]float64{spVar(i): 1})
	}

	// Eqs. 5+6: il^Smax ≥ L_s + L_sp · sp_{n(s)}.
	for _, pi := range infos {
		terms := map[int]float64{ilSmaxVar: 1}
		if i, ok := spIndex[pi.SenderNode()]; ok {
			terms[spVar(i)] = -w.SplitterStageDB
		}
		prob.LP.AddConstraint(lp.GE, pi.LossDB, terms)
	}

	// Eqs. 5+7: ilmax_λ ≥ L_s + L_sp·sp_{n(s)} − Ξ(1 − b_{s,λ}).
	for s, pi := range infos {
		for l := 0; l < L; l++ {
			terms := map[int]float64{ilMaxVar(l): 1, bVar(s, l): -xi}
			if i, ok := spIndex[pi.SenderNode()]; ok {
				terms[spVar(i)] = -w.SplitterStageDB
			}
			prob.LP.AddConstraint(lp.GE, pi.LossDB-xi, terms)
		}
	}

	msp := parent.StartSpan("wavelength.milp")
	defer msp.End()
	msp.SetInt("num_lambda", int64(numLambda))
	msp.SetInt("binaries", int64(S*L+L+len(spNodes)))
	msp.SetInt("vars", int64(numVars))
	msp.SetInt("constraints", int64(len(prob.LP.Constraints)))
	msp.SetBool("seeded", incumbent != nil)

	opts := milp.Options{TimeLimit: timeLimit, Parallelism: parallelism, Obs: msp}
	if incumbent != nil {
		opts.Incumbent = incumbentVector(infos, incumbent, numVars, L, bVar, yVar, spVar, ilSmaxVar, ilMaxVar, w)
	}
	res, err := milp.Solve(prob, opts)
	if err != nil {
		return nil, SolveInfo{}, fmt.Errorf("wavelength: MILP solve: %w", err)
	}
	info := SolveInfo{Exact: res.Status == milp.Optimal, Bound: res.Bound, Nodes: res.Nodes}
	msp.SetBool("exact", info.Exact)
	msp.SetFloat("bound", info.Bound)
	msp.SetInt("nodes", int64(info.Nodes))
	switch res.Status {
	case milp.Optimal, milp.Feasible:
		a := &Assignment{Lambda: make([]int, S), NumLambda: L}
		for s := 0; s < S; s++ {
			found := false
			for l := 0; l < L; l++ {
				if res.X[bVar(s, l)] > 0.5 {
					a.Lambda[s] = l
					found = true
					break
				}
			}
			if !found {
				return nil, SolveInfo{}, fmt.Errorf("wavelength: MILP solution assigns no wavelength to path %d", s)
			}
		}
		a.Normalize()
		return a, info, nil
	case milp.Infeasible:
		return nil, SolveInfo{}, fmt.Errorf("wavelength: MILP infeasible with %d wavelengths", numLambda)
	default:
		return nil, info, nil // no solution found within limits
	}
}

// incumbentVector lifts a heuristic assignment into the MILP variable space
// so branch and bound starts with a cutoff.
func incumbentVector(infos []PathInfo, a *Assignment, numVars, L int,
	bVar func(int, int) int, yVar func(int) int, spVar func(int) int,
	ilSmaxVar int, ilMaxVar func(int) int, w Weights) []float64 {

	x := make([]float64, numVars)
	for s, l := range a.Lambda {
		x[bVar(s, l)] = 1
	}
	for l := 0; l < a.NumLambda && l < L; l++ {
		x[yVar(l)] = 1
	}
	sp := NodeSplitters(infos, a)
	// Recover sp variable order: spVar indices assigned over sorted nodes
	// with >= 2 sender rings, mirrored from SolveMILP.
	nodeRings := make(map[netlist.NodeID]map[int]bool)
	for _, pi := range infos {
		n := pi.SenderNode()
		if nodeRings[n] == nil {
			nodeRings[n] = make(map[int]bool)
		}
		nodeRings[n][pi.SenderRing()] = true
	}
	var spNodes []netlist.NodeID
	for n, rings := range nodeRings {
		if len(rings) >= 2 {
			spNodes = append(spNodes, n)
		}
	}
	sort.Slice(spNodes, func(i, j int) bool { return spNodes[i] < spNodes[j] })
	for i, n := range spNodes {
		if sp[n] {
			x[spVar(i)] = 1
		}
	}
	var worst float64
	perLambda := make([]float64, L)
	for i, pi := range infos {
		il := pi.LossDB
		if sp[pi.SenderNode()] {
			il += w.SplitterStageDB
		}
		worst = math.Max(worst, il)
		l := a.Lambda[i]
		perLambda[l] = math.Max(perLambda[l], il)
	}
	x[ilSmaxVar] = worst
	for l := 0; l < L; l++ {
		x[ilMaxVar(l)] = perLambda[l]
	}
	return x
}
