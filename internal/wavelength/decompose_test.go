package wavelength

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// TestSplitterComponents checks the ring-coupling partition: rings sharing
// a sender node merge, rings without shared senders stay apart.
func TestSplitterComponents(t *testing.T) {
	mk := func(src netlist.NodeID, ringID, seg int) PathInfo {
		return PathInfo{Path: ring.Path{
			Msg:    netlist.Message{Src: src, Dst: 99},
			RingID: ringID,
			Segs:   []int{seg},
		}, LossDB: 4}
	}
	infos := []PathInfo{
		mk(1, 0, 0), // node 1 sends on rings 0 and 1: couples them
		mk(1, 1, 0),
		mk(2, 1, 1),
		mk(3, 2, 0), // ring 2 has private senders: own component
		mk(4, 2, 1),
	}
	comps := splitterComponents(infos)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	want := [][]int{{0, 1, 2}, {3, 4}}
	for c := range want {
		if len(comps[c]) != len(want[c]) {
			t.Fatalf("component %d = %v, want %v", c, comps[c], want[c])
		}
		for i := range want[c] {
			if comps[c][i] != want[c][i] {
				t.Fatalf("component %d = %v, want %v", c, comps[c], want[c])
			}
		}
	}
}

// randomSplitInstance builds paths over nRings rings whose sender name
// spaces are disjoint per ring, so every ring is its own coupling
// component.
func randomSplitInstance(rng *rand.Rand) []PathInfo {
	nRings := 2 + rng.Intn(2)
	var infos []PathInfo
	for r := 0; r < nRings; r++ {
		nPaths := 2 + rng.Intn(2)
		for i := 0; i < nPaths; i++ {
			const ringLen = 5
			start := rng.Intn(ringLen)
			length := 1 + rng.Intn(3)
			segs := make([]int, length)
			for k := range segs {
				segs[k] = (start + k) % ringLen
			}
			infos = append(infos, PathInfo{
				Path: ring.Path{
					Msg:    netlist.Message{Src: netlist.NodeID(100*r + rng.Intn(3)), Dst: netlist.NodeID(90 + len(infos))},
					RingID: r,
					Segs:   segs,
				},
				LossDB: 3 + rng.Float64()*2,
			})
		}
	}
	return infos
}

// The decomposed solve must reach the brute-force optimum of Eq. 8 on
// exhaustively checkable multi-component instances, and always return a
// collision-free assignment.
func TestDecomposedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		infos := randomSplitInstance(rng)
		w := DefaultWeights()
		a, stats, err := Assign(infos, Options{
			Weights:       w,
			UseMILP:       true,
			Decompose:     true,
			MILPTimeLimit: 30 * time.Second,
			ExtraLambda:   2,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(infos, a); err != nil {
			t.Fatalf("trial %d: invalid decomposed assignment: %v", trial, err)
		}
		if stats.DecompComponents < 2 {
			t.Fatalf("trial %d: expected a multi-component instance, got %d", trial, stats.DecompComponents)
		}
		got := Evaluate(infos, a, w).Value
		want := bruteForce(infos, a.NumLambda+2, w)
		if got > want+1e-6 {
			t.Errorf("trial %d: decomposed objective %v, brute force %v (paths %d, components %d)",
				trial, got, want, len(infos), stats.DecompComponents)
		}
	}
}

// Decomposed and monolithic solves must agree on instances both can solve
// exactly — the palette coordination may not lose anything the global
// model sees.
func TestDecomposedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		infos := randomSplitInstance(rng)
		w := DefaultWeights()
		opt := Options{Weights: w, UseMILP: true, MILPTimeLimit: 30 * time.Second, ExtraLambda: 2}
		mono, mstats, err := Assign(infos, opt)
		if err != nil {
			t.Fatalf("trial %d monolithic: %v", trial, err)
		}
		opt.Decompose = true
		dec, dstats, err := Assign(infos, opt)
		if err != nil {
			t.Fatalf("trial %d decomposed: %v", trial, err)
		}
		if !mstats.MILPExact || !dstats.DecompExact {
			continue // only compare proven optima
		}
		mv := Evaluate(infos, mono, w).Value
		dv := Evaluate(infos, dec, w).Value
		if dv > mv+1e-6 {
			t.Errorf("trial %d: decomposed %v worse than monolithic %v (components %d)",
				trial, dv, mv, dstats.DecompComponents)
		}
	}
}

// A single-component instance must run the monolithic solve verbatim under
// Decompose — bit-identical assignment and stats.
func TestDecomposeSingleComponentDelegates(t *testing.T) {
	infos := cliqueInfos(4)
	w := DefaultWeights()
	opt := Options{Weights: w, UseMILP: true, MILPTimeLimit: 30 * time.Second}
	mono, mstats, err := Assign(infos, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Decompose = true
	dec, dstats, err := Assign(infos, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dstats.DecompComponents != 1 {
		t.Fatalf("DecompComponents = %d, want 1", dstats.DecompComponents)
	}
	if !equalLambda(mono.Lambda, dec.Lambda) || mono.NumLambda != dec.NumLambda {
		t.Errorf("single-component delegation differs: %v vs %v", mono.Lambda, dec.Lambda)
	}
	if mstats.MILPRan != dstats.MILPRan || mstats.MILPExact != dstats.MILPExact ||
		mstats.MILPNodeFingerprint != dstats.MILPNodeFingerprint {
		t.Errorf("single-component delegation stats differ: %+v vs %+v", mstats, dstats)
	}
}

// hierInfos builds a hierarchical single-component instance: nClusters
// intra rings (level 0) whose first sender is a hub that also sends on one
// shared inter ring (level 1), chaining every ring into one coupling
// component — the shape SRing constructions produce at scale.
func hierInfos(nClusters, perCluster int) ([]PathInfo, map[int]int) {
	const ringLen = 6
	var infos []PathInfo
	levels := make(map[int]int)
	for c := 0; c < nClusters; c++ {
		levels[c] = 0
		for i := 0; i < perCluster; i++ {
			infos = append(infos, PathInfo{Path: ring.Path{
				Msg:    netlist.Message{Src: netlist.NodeID(100*c + i), Dst: netlist.NodeID(1000 + len(infos))},
				RingID: c,
				Segs:   []int{i % ringLen, (i + 1) % ringLen},
			}, LossDB: 3 + 0.3*float64(i)})
		}
	}
	inter := nClusters
	levels[inter] = 1
	for c := 0; c < nClusters; c++ {
		infos = append(infos, PathInfo{Path: ring.Path{
			Msg:    netlist.Message{Src: netlist.NodeID(100 * c), Dst: netlist.NodeID(2000 + c)},
			RingID: inter,
			Segs:   []int{c % ringLen, (c + 1) % ringLen},
		}, LossDB: 4.5})
	}
	return infos, levels
}

// An oversized single-component hierarchical instance must be cut along
// the construction tiers: one boundary piece (the inter ring) plus one
// leaf piece per cluster, with boundary and leaf paths never mixed in a
// piece, and the merged assignment must keep every hub's intra and inter
// wavelengths disjoint (the cut introduces no splitter).
func TestDecomposeTierCut(t *testing.T) {
	infos, levels := hierInfos(3, 4)
	w := DefaultWeights()
	comps := splitterComponents(infos)
	if len(comps) != 1 {
		t.Fatalf("expected one coupling component, got %d", len(comps))
	}
	heur := Improve(infos, DSATUR(infos), w)

	const maxBin = 20 // force the cut: 15 paths x any palette exceeds this
	pieces := buildPieces(infos, comps, heur, 1, maxBin, levels)
	if len(pieces) != 4 {
		t.Fatalf("got %d pieces, want 4 (1 boundary + 3 leaves)", len(pieces))
	}
	nBoundary := 0
	for p, piece := range pieces {
		if piece.boundary {
			nBoundary++
		}
		for _, g := range piece.paths {
			if inter := levels[infos[g].SenderRing()] > 0; inter != piece.boundary {
				t.Errorf("piece %d (boundary=%v) holds path %d of the wrong tier", p, piece.boundary, g)
			}
		}
	}
	if nBoundary != 1 {
		t.Errorf("got %d boundary pieces, want 1", nBoundary)
	}

	merged, _, _, cancelled, err := assignDecomposed(context.Background(), infos, pieces, heur, w,
		10*time.Second, maxBin, 1, 1, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled || merged == nil {
		t.Fatal("decomposed solve did not finish")
	}
	if err := Verify(infos, merged); err != nil {
		t.Fatalf("merged assignment invalid: %v", err)
	}
	intra := make(map[netlist.NodeID]map[int]bool)
	for i, pi := range infos {
		if levels[pi.SenderRing()] == 0 {
			if intra[pi.SenderNode()] == nil {
				intra[pi.SenderNode()] = make(map[int]bool)
			}
			intra[pi.SenderNode()][merged.Lambda[i]] = true
		}
	}
	for i, pi := range infos {
		if levels[pi.SenderRing()] > 0 && intra[pi.SenderNode()][merged.Lambda[i]] {
			t.Errorf("hub %d shares wavelength %d across the tier cut", pi.SenderNode(), merged.Lambda[i])
		}
	}

	// The full path adopts the merged result only when it beats the
	// heuristic, so the final objective can never regress.
	a, stats, err := Assign(infos, Options{Weights: w, UseMILP: true, Decompose: true,
		RingLevels: levels, MILPTimeLimit: 10 * time.Second, MaxBinaries: maxBin})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(infos, a); err != nil {
		t.Fatalf("final assignment invalid: %v", err)
	}
	if stats.DecompComponents != 4 {
		t.Errorf("DecompComponents = %d, want 4", stats.DecompComponents)
	}
	if stats.Final.Value > stats.Heuristic.Value+1e-9 {
		t.Errorf("decomposed final %.6f worse than heuristic %.6f", stats.Final.Value, stats.Heuristic.Value)
	}
}
