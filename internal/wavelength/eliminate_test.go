package wavelength

import (
	"context"
	"testing"
	"time"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// multiShareInfos: node 1 sends two paths on ring 0 and two on ring 1;
// other traffic occupies the low wavelengths so that eliminating the
// splitter takes coordinated recolouring.
func multiShareInfos() []PathInfo {
	return []PathInfo{
		// Node 1 on ring 0.
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 2}, RingID: 0, Segs: []int{0}}, LossDB: 4},
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 3}, RingID: 0, Segs: []int{1}}, LossDB: 4},
		// Node 1 on ring 1.
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 4}, RingID: 1, Segs: []int{0}}, LossDB: 4},
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 5}, RingID: 1, Segs: []int{1}}, LossDB: 4},
		// Background traffic pinning segments on both rings.
		{Path: ring.Path{Msg: netlist.Message{Src: 6, Dst: 7}, RingID: 0, Segs: []int{0, 1}}, LossDB: 4.2},
		{Path: ring.Path{Msg: netlist.Message{Src: 8, Dst: 9}, RingID: 1, Segs: []int{0, 1}}, LossDB: 4.2},
	}
}

func TestResolveNodeDisjointsWavelengths(t *testing.T) {
	infos := multiShareInfos()
	adj := conflictAdj(infos)
	// Shared assignment: node 1 uses λ0 and λ1 on both rings.
	a := &Assignment{Lambda: []int{0, 1, 0, 1, 2, 2}, NumLambda: 3}
	if err := Verify(infos, a); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	if sp := NodeSplitters(infos, a); !sp[1] {
		t.Fatal("fixture should need a splitter at node 1")
	}
	if !resolveNode(infos, a, adj, 1) {
		t.Fatal("resolveNode failed on a resolvable instance")
	}
	if err := Verify(infos, a); err != nil {
		t.Fatalf("resolution broke the assignment: %v", err)
	}
	if sp := NodeSplitters(infos, a); sp[1] {
		t.Errorf("splitter still needed after resolution: %v (lambda %v)", sp, a.Lambda)
	}
}

func TestResolveNodeSingleRingNoop(t *testing.T) {
	infos := disjointInfos(3)
	adj := conflictAdj(infos)
	a := &Assignment{Lambda: []int{0, 0, 0}, NumLambda: 1}
	if !resolveNode(infos, a, adj, infos[0].SenderNode()) {
		t.Error("single-ring sender should trivially resolve")
	}
}

func TestEliminateSplittersEndToEnd(t *testing.T) {
	infos := multiShareInfos()
	adj := conflictAdj(infos)
	w := DefaultWeights()
	start := &Assignment{Lambda: []int{0, 1, 0, 1, 2, 2}, NumLambda: 3}
	cand, obj, ok := eliminateSplitters(infos, start, adj, w)
	if !ok {
		t.Fatal("eliminateSplitters made no progress")
	}
	if obj.Splitters != 0 {
		t.Errorf("splitters remain: %+v", obj)
	}
	if err := Verify(infos, cand); err != nil {
		t.Fatal(err)
	}
	// No splitters at all: early-out branch.
	clean := &Assignment{Lambda: []int{0, 1, 2, 3, 4, 5}, NumLambda: 6}
	if _, _, ok := eliminateSplitters(infos, clean, adj, w); ok {
		t.Error("splitter-free assignment should report no progress")
	}
}

func TestImproveFromSharedStart(t *testing.T) {
	// The full Improve pipeline must reach a splitter-free solution from
	// the adversarial shared start.
	infos := multiShareInfos()
	w := DefaultWeights()
	start := &Assignment{Lambda: []int{0, 1, 0, 1, 2, 2}, NumLambda: 3}
	out := Improve(infos, start, w)
	if err := Verify(infos, out); err != nil {
		t.Fatal(err)
	}
	if o := Evaluate(infos, out, w); o.Splitters != 0 {
		t.Errorf("Improve left %d splitters (lambda %v)", o.Splitters, out.Lambda)
	}
}

func TestSolveMILPNoSolutionWithinLimits(t *testing.T) {
	// A tiny time budget with no incumbent: the solver may return no
	// assignment; Assign must then fall back to the heuristic.
	infos := cliqueInfos(4)
	a, _, err := SolveMILP(context.Background(), infos, 4, DefaultWeights(), nil, 1, 1, nil)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	// Either a real assignment or nil are acceptable; nil must not panic
	// downstream.
	if a != nil {
		if err := Verify(infos, a); err != nil {
			t.Fatal(err)
		}
	}
}

// Regression: a node sending on three rings (XRing base pair + chord) must
// be expressible in the MILP — the generalised Eq. 4 admits full sharing
// once the splitter binary is set.
func TestSolveMILPThreeRingSender(t *testing.T) {
	infos := []PathInfo{
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 2}, RingID: 0, Segs: []int{0}}, LossDB: 4},
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 3}, RingID: 1, Segs: []int{0}}, LossDB: 4},
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 4}, RingID: 2, Segs: []int{0}}, LossDB: 4},
	}
	// Incumbent shares one wavelength across all three senders.
	inc := &Assignment{Lambda: []int{0, 0, 0}, NumLambda: 1}
	if err := Verify(infos, inc); err != nil {
		t.Fatal(err)
	}
	a, info, err := SolveMILP(context.Background(), infos, 3, DefaultWeights(), inc, 30*time.Second, 1, nil)
	if err != nil {
		t.Fatalf("MILP rejected a 3-ring sender: %v", err)
	}
	if !info.Exact {
		t.Error("tiny instance should solve to optimality")
	}
	if err := Verify(infos, a); err != nil {
		t.Fatal(err)
	}
	// The Eq. 8 optimum here keeps the shared wavelength: one wavelength
	// plus one splitter (1 + 7.3 + 7.3 = 15.6) beats three wavelengths
	// (3 + 4 + 12 = 19). Check against exhaustive search.
	got := Evaluate(infos, a, DefaultWeights()).Value
	want := bruteForce(infos, 3, DefaultWeights())
	if got > want+1e-6 {
		t.Errorf("MILP objective %v, brute force %v", got, want)
	}
}
