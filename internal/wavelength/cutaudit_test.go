package wavelength_test

// Cut-validity property tests for the branch-and-cut engine. A cutting
// plane is only sound if it separates the fractional relaxation point from
// the integer hull without cutting off any integer-feasible solution; a bug
// in the GMI tableau arithmetic or the cover lifting would instead silently
// prune the true optimum and the solver would still return "Optimal" — the
// worst failure mode an exact solver has. So every cut the engine applies
// on the real paper benchmarks is audited against both properties:
//
//  1. violated by the fractional point it was separated from (otherwise it
//     did no work and the efficacy selection is broken), and
//  2. satisfied by known integer-feasible points — the heuristic incumbent
//     lifted into the model space and the solver's own final solution —
//     whenever the point lies in the cut's validity domain (everywhere for
//     global cuts, the separating node's bound box for local ones).
//
// The solve runs with presolve disabled so the audited coordinates stay in
// BuildMILP's variable space and the hand-built incumbent vector can be
// checked against them directly.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"sring/internal/lp"
	"sring/internal/milp"
	"sring/internal/netlist"
	"sring/internal/pipeline"
	"sring/internal/wavelength"

	_ "sring/internal/cluster"
)

// cutViolation returns how far x is on the wrong side of the cut:
// positive means violated, <= 0 satisfied.
func cutViolation(r milp.CutAuditRecord, x []float64) float64 {
	act := 0.0
	for v, a := range r.Coeffs {
		act += a * x[v]
	}
	switch r.Rel {
	case lp.LE:
		return act - r.RHS
	case lp.GE:
		return r.RHS - act
	default:
		return math.Inf(1) // equality cuts are never separated
	}
}

// inBox reports whether x respects the record's node bounds — the validity
// domain of a non-global cut.
func inBox(r milp.CutAuditRecord, x []float64) bool {
	for i := range x {
		if x[i] < r.Lower[i]-1e-9 || x[i] > r.Upper[i]+1e-9 {
			return false
		}
	}
	return true
}

func TestCutValidityOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("separates cuts on every paper benchmark; skipped in -short")
	}
	const tol = 1e-6
	totalRecords := 0
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			infos, w, err := pipeline.PathInfos(t.Context(), app, "SRing", pipeline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			heur := wavelength.Improve(infos, wavelength.DSATUR(infos), w)
			numLambda := heur.NumLambda + 1
			// Mirror Assign's MaxBinaries gate: without presolve a dense
			// relaxation of the over-sized instances would eat the whole
			// budget in one LP and separate nothing worth auditing.
			if len(infos)*numLambda > 500 {
				t.Skipf("%d assignment binaries exceed the monolithic size gate", len(infos)*numLambda)
			}
			m, err := wavelength.BuildMILP(infos, numLambda, w)
			if err != nil {
				t.Fatal(err)
			}
			inc := m.IncumbentVector(infos, heur, w)

			var records []milp.CutAuditRecord
			milp.CutAudit = func(r milp.CutAuditRecord) { records = append(records, r) }
			defer func() { milp.CutAudit = nil }()

			res, err := milp.SolveContext(t.Context(), m.Prob, milp.Options{
				TimeLimit:       2 * time.Second,
				Parallelism:     1,
				BranchPriority:  m.Priority,
				Incumbent:       inc,
				DisablePresolve: true,
				CutRounds:       10,
			})
			if err != nil {
				t.Fatal(err)
			}
			milp.CutAudit = nil
			t.Logf("status=%v nodes=%d cuts audited=%d", res.Status, res.Nodes, len(records))
			totalRecords += len(records)

			// Known integer-feasible points to test each cut against.
			points := [][]float64{inc}
			if res.Status == milp.Optimal || res.Status == milp.Feasible {
				points = append(points, res.X)
			}
			for i, r := range records {
				if len(r.FracX) != m.Prob.LP.NumVars || len(r.Lower) != m.Prob.LP.NumVars || len(r.Upper) != m.Prob.LP.NumVars {
					t.Fatalf("cut %d (%s): audit vectors have wrong length", i, r.Kind)
				}
				if v := cutViolation(r, r.FracX); v <= 0 {
					t.Errorf("cut %d (%s, global=%v): not violated by its own fractional point (violation %g)",
						i, r.Kind, r.Global, v)
				}
				for pi, x := range points {
					if !r.Global && !inBox(r, x) {
						continue // local cut, point outside its validity domain
					}
					if v := cutViolation(r, x); v > tol {
						t.Errorf("cut %d (%s, global=%v) cuts off integer-feasible point %d by %g:\n  %s",
							i, r.Kind, r.Global, pi, v, describeCut(r))
					}
				}
			}
		})
	}
	if totalRecords == 0 {
		t.Error("no cuts were separated on any benchmark — the property test is vacuous")
	}
}

func describeCut(r milp.CutAuditRecord) string {
	return fmt.Sprintf("kind=%s rel=%v rhs=%.9g terms=%d", r.Kind, r.Rel, r.RHS, len(r.Coeffs))
}
