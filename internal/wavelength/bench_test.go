package wavelength

import (
	"testing"
)

// BenchmarkDSATUR and BenchmarkImprove measure the assignment stages on a
// clique-heavy instance.
func BenchmarkDSATUR(b *testing.B) {
	infos := cliqueInfos(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DSATUR(infos)
	}
}

func BenchmarkImprove(b *testing.B) {
	infos := cliqueInfos(20)
	w := DefaultWeights()
	start := DSATUR(infos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Improve(infos, start, w)
	}
}
