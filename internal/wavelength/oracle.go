package wavelength

import (
	"context"
	"fmt"
	"time"

	"sring/internal/milp"
	"sring/internal/obs"
	"sring/internal/wavelength/cpcheck"
)

// OracleCP names the constraint-propagation cross-oracle for
// Options.Oracle.
const OracleCP = "cp"

// cpProblem translates the assignment instance into the oracle's terms.
// Both solvers see the same conflict adjacency and price splitters the same
// way, so their objectives are directly comparable.
func cpProblem(infos []PathInfo, numLambda int, w Weights) cpcheck.Problem {
	p := cpcheck.Problem{
		Paths:     make([]cpcheck.Path, len(infos)),
		Adj:       conflictAdj(infos),
		MaxLambda: numLambda,
		W: cpcheck.Weights{
			Alpha: w.Alpha, Beta: w.Beta, Gamma: w.Gamma,
			SplitterDB: w.SplitterStageDB,
		},
	}
	for i, info := range infos {
		p.Paths[i] = cpcheck.Path{
			Node:   int(info.SenderNode()),
			Ring:   info.SenderRing(),
			LossDB: info.LossDB,
		}
	}
	return p
}

// SolveCP runs the CP oracle on the instance over a numLambda-wavelength
// palette, seeded with the incumbent assignment (nil for none). It is the
// exported entry the cross-check tests drive directly.
func SolveCP(ctx context.Context, infos []PathInfo, numLambda int, w Weights, seed *Assignment, limit time.Duration) (cpcheck.Result, error) {
	if numLambda > cpcheck.MaxLambdaLimit {
		return cpcheck.Result{}, fmt.Errorf("wavelength: palette %d exceeds the CP oracle's %d-wavelength limit", numLambda, cpcheck.MaxLambdaLimit)
	}
	var seedLambda []int
	if seed != nil {
		seedLambda = seed.Lambda
	}
	var deadline time.Time
	if limit > 0 {
		deadline = time.Now().Add(limit)
	}
	return cpcheck.Solve(ctx, cpProblem(infos, numLambda, w), seedLambda, deadline)
}

// runOracle is the -oracle=cp fallback inside AssignContext: when the MILP
// failed to prove optimality, an independent CP search gets the same time
// budget, seeded with the best assignment so far. A CP improvement replaces
// the incumbent; a CP proof of optimality (or a stronger CP bound) tightens
// the reported bound and gap.
func runOracle(ctx context.Context, infos []PathInfo, best *Assignment, numLambda int, w Weights, opt Options, stats *Stats, sp *obs.Span) (*Assignment, error) {
	limit := opt.MILPTimeLimit
	if limit <= 0 {
		limit = milp.DefaultTimeLimit
	}
	osp := sp.StartSpan("wavelength.oracle")
	defer osp.End()
	reg := obs.OrDefault(opt.Registry)
	reg.Add("wavelength.oracle.runs", 1)
	res, err := SolveCP(ctx, infos, numLambda, w, best, limit)
	if err != nil && ctx.Err() == nil {
		return best, err
	}
	stats.OracleRan = true
	stats.OracleExact = res.Exact
	stats.OracleNodes = res.Nodes
	stats.OracleBound = res.Bound
	osp.SetBool("exact", res.Exact)
	osp.SetInt("nodes", res.Nodes)
	osp.SetFloat("bound", res.Bound)
	if res.Exact {
		reg.Add("wavelength.oracle.exact", 1)
	}
	if ctx.Err() != nil {
		stats.Cancelled = true
	}
	if res.Lambda != nil {
		cand := &Assignment{Lambda: append([]int(nil), res.Lambda...), NumLambda: numLambda}
		cand.Normalize()
		if err := Verify(infos, cand); err != nil {
			return best, fmt.Errorf("wavelength: CP oracle produced invalid assignment: %w", err)
		}
		if o := Evaluate(infos, cand, w); o.Value < stats.Final.Value-1e-9 {
			best = cand
			stats.Final = o
			reg.Add("wavelength.oracle.improved", 1)
		}
	}
	// The CP bound is valid over the same palette the MILP searched, so the
	// stronger of the two governs the reported gap.
	if stats.MILPRan && res.Bound > stats.MILPBound {
		stats.MILPBound = res.Bound
		if stats.Final.Value > 0 {
			gap := (stats.Final.Value - res.Bound) / stats.Final.Value
			if gap < 0 {
				gap = 0
			}
			if gap < stats.MILPGap {
				stats.MILPGap = gap
			}
		}
	}
	return best, nil
}
