package wavelength

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// bruteForce enumerates every assignment of the paths to wavelengths
// 0..maxLambda-1 and returns the best Eq. 8 objective over the
// collision-free ones (+Inf if none).
func bruteForce(infos []PathInfo, maxLambda int, w Weights) float64 {
	adj := conflictAdj(infos)
	lambda := make([]int, len(infos))
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(infos) {
			a := &Assignment{Lambda: append([]int(nil), lambda...), NumLambda: maxLambda}
			a.Normalize()
			if v := Evaluate(infos, a, w).Value; v < best {
				best = v
			}
			return
		}
		for c := 0; c < maxLambda; c++ {
			ok := true
			for _, j := range adj[i] {
				if j < i && lambda[j] == c {
					ok = false
					break
				}
			}
			if ok {
				lambda[i] = c
				rec(i + 1)
			}
		}
	}
	rec(0)
	return best
}

// randomTinyInstance builds a small random path set over one or two rings
// with contiguous arcs, suitable for exhaustive checking.
func randomTinyInstance(rng *rand.Rand) []PathInfo {
	nPaths := 3 + rng.Intn(3) // 3..5
	infos := make([]PathInfo, nPaths)
	for i := range infos {
		ringID := rng.Intn(2)
		ringLen := 5
		start := rng.Intn(ringLen)
		length := 1 + rng.Intn(3)
		segs := make([]int, length)
		for k := range segs {
			segs[k] = (start + k) % ringLen
		}
		infos[i] = PathInfo{
			Path: ring.Path{
				Msg:    netlist.Message{Src: netlist.NodeID(rng.Intn(4)), Dst: netlist.NodeID(90 + i)},
				RingID: ringID,
				Segs:   segs,
			},
			LossDB: 3 + rng.Float64()*2,
		}
	}
	return infos
}

// The full Assign pipeline (heuristic + MILP) must reach the brute-force
// optimum of Eq. 8 on exhaustively checkable instances.
func TestAssignMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		infos := randomTinyInstance(rng)
		w := DefaultWeights()
		a, _, err := Assign(infos, Options{
			Weights:       w,
			UseMILP:       true,
			MILPTimeLimit: 30 * time.Second,
			ExtraLambda:   2,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := Evaluate(infos, a, w).Value
		// Brute force over the same palette the pipeline could reach.
		want := bruteForce(infos, a.NumLambda+2, w)
		if got > want+1e-6 {
			t.Errorf("trial %d: Assign objective %v, brute force %v (paths %d)",
				trial, got, want, len(infos))
		}
	}
}

// DSATUR alone must always be within the brute-force optimum's wavelength
// count + a small slack on tiny instances (sanity on the heuristic floor).
func TestDSATURNearOptimalColours(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		infos := randomTinyInstance(rng)
		a := DSATUR(infos)
		// Optimal colour count: smallest k admitting a feasible assignment.
		opt := 0
		for k := 1; k <= len(infos); k++ {
			if !math.IsInf(bruteForce(infos, k, Weights{Alpha: 1, SplitterStageDB: 0}), 1) {
				opt = k
				break
			}
		}
		if opt == 0 {
			t.Fatalf("trial %d: no feasible colouring found by brute force", trial)
		}
		if a.NumLambda > opt+1 {
			t.Errorf("trial %d: DSATUR used %d colours, optimum %d", trial, a.NumLambda, opt)
		}
	}
}
