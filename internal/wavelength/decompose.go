package wavelength

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sring/internal/lp"
	"sring/internal/milp"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/ring"
)

// Cluster-decomposed wavelength assignment. The monolithic MILP couples
// every path to every other through three mechanisms: segment conflicts
// (Eq. 2, local to one ring), splitter binaries (Eq. 4, local to the rings
// one node sends on), and the shared wavelength palette (the α·i_wl and
// γ·Σ il_λ^max terms of Eq. 8, global). The first two induce a coupling
// graph over rings — two rings are coupled when some node sends on both —
// whose connected components can be solved independently; only the palette
// coupling crosses components, and it has enough structure to coordinate
// exactly without re-solving anything:
//
// Given one candidate assignment per piece, the optimal way to overlay
// their private palettes onto shared slots is to sort every piece's
// per-wavelength worst losses descending and align them slot by slot
// (a rearrangement argument: exchanging two slots of one piece against a
// descending partner never decreases Σ_j max_p il_{p,j}). The merged
// objective is then a closed form of the chosen candidates, so the global
// problem reduces to choosing one candidate per piece — a small assembly
// MILP over candidate-selection binaries, solved by the same internal/milp
// engine.
//
// On SRing's hierarchical constructions the coupling graph is usually ONE
// component: every cluster hub sends on its intra ring and on an
// inter-cluster ring, chaining all rings together, so pure component
// decomposition degenerates exactly where the monolithic size gate starts
// rejecting the instance. Those components are cut along the construction
// hierarchy instead: inter-ring paths (ring Level >= 1) form boundary
// pieces and each cluster's intra-ring paths a leaf piece, and the two
// sides are assigned DISJOINT palette banks. A node whose two senders face
// different banks then never shares a wavelength between them, so the cut
// introduces no splitter and every piece's candidate losses stay exact;
// the price is that the optimum may no longer share wavelengths across the
// boundary, which is why the cut is applied only to components too large
// for the monolithic solve (small instances delegate and stay
// oracle-exact — the root-package cross-check pins this).
//
// Candidates per piece come from a palette sweep: the exact model with
// α = 0 (the wavelength count is priced by the coordination model, not the
// subproblem) for every palette size between the piece's clique lower
// bound and its heuristic count plus ExtraLambda, plus a β = 0 variant
// (when another piece dominates the worst-case loss, this piece should
// spend everything on Σ il_λ^max alone), plus the splitter-aware heuristic
// itself. Each exact solve is warm-started from the piece's restriction of
// the global heuristic, exactly as the monolithic solve is seeded.

// ErrInfeasible is wrapped by SolveMILP when the model admits no assignment
// within the given palette, so palette sweeps can distinguish "needs more
// wavelengths" from a genuine failure.
var ErrInfeasible = errors.New("model infeasible")

// decompPiece is one independently solvable sub-instance: path indices
// (ascending, into the full info slice) plus the palette bank it draws
// slots from.
type decompPiece struct {
	paths []int
	// boundary pieces (inter-ring paths of a tier-cut component) use the
	// boundary palette bank, disjoint from the leaf bank, so cut nodes
	// never share a wavelength between their two senders.
	boundary bool
}

// decompCand is one palette candidate for a piece: a valid assignment of
// the piece's paths plus the merge-relevant summary.
type decompCand struct {
	a *Assignment
	// losses are the per-wavelength worst losses (splitter-aware), sorted
	// descending; len(losses) == a.NumLambda.
	losses []float64
	// worst is the piece's il^Smax under this candidate.
	worst float64
	// exact reports the candidate came from a MILP solve that proved
	// optimality for its palette.
	exact bool
}

// splitterComponents partitions path indices into the connected components
// of the ring-coupling graph: rings are coupled when one node sends on
// both. Paths on rings of the same component share segment conflicts and
// splitter decisions only with each other. Components are ordered by their
// smallest path index; indices within a component are ascending.
func splitterComponents(infos []PathInfo) [][]int {
	ringIdx := make(map[int]int)
	var ringOf []int // path -> dense ring index
	for _, pi := range infos {
		r := pi.SenderRing()
		if _, ok := ringIdx[r]; !ok {
			ringIdx[r] = len(ringIdx)
		}
		ringOf = append(ringOf, ringIdx[r])
	}
	parent := make([]int, len(ringIdx))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	nodeRing := make(map[netlist.NodeID]int)
	for i, pi := range infos {
		n := pi.SenderNode()
		if prev, ok := nodeRing[n]; ok {
			union(prev, ringOf[i])
		} else {
			nodeRing[n] = ringOf[i]
		}
	}
	byRoot := make(map[int][]int)
	var order []int
	for i := range infos {
		root := find(ringOf[i])
		if _, ok := byRoot[root]; !ok {
			order = append(order, root)
		}
		byRoot[root] = append(byRoot[root], i)
	}
	out := make([][]int, 0, len(order))
	for _, root := range order {
		out = append(out, byRoot[root])
	}
	return out
}

// subInfos gathers the PathInfos at the given global indices.
func subInfos(infos []PathInfo, idx []int) []PathInfo {
	sub := make([]PathInfo, len(idx))
	for i, g := range idx {
		sub[i] = infos[g]
	}
	return sub
}

// buildPieces turns the coupling components into solve pieces. Components
// whose exact model fits the size gate stay whole. Oversized components
// spanning both construction tiers (ringLevels maps ring ID to hierarchy
// level; level >= 1 is an inter-cluster ring) are cut at the boundary:
// their inter-ring paths become boundary pieces and the remaining
// intra-ring paths re-decompose by sender coupling — on SRing
// constructions, one piece per cluster. Oversized components without tier
// information stay whole (their candidates are then heuristic-only).
//
// The gate estimate is the component's distinct wavelength count under the
// global heuristic, so a single-component instance splits exactly when the
// monolithic gate would have skipped it.
func buildPieces(infos []PathInfo, comps [][]int, heur *Assignment, extra, maxBin int, ringLevels map[int]int) []decompPiece {
	var pieces []decompPiece
	for _, comp := range comps {
		seen := make(map[int]bool)
		for _, g := range comp {
			seen[heur.Lambda[g]] = true
		}
		k := len(seen) + extra
		split := len(comp)*k > maxBin && len(ringLevels) > 0
		var bnd, leaf []int
		if split {
			for _, g := range comp {
				if ringLevels[infos[g].SenderRing()] > 0 {
					bnd = append(bnd, g)
				} else {
					leaf = append(leaf, g)
				}
			}
			split = len(bnd) > 0 && len(leaf) > 0
		}
		if !split {
			pieces = append(pieces, decompPiece{paths: comp})
			continue
		}
		for _, sc := range splitterComponents(subInfos(infos, bnd)) {
			p := make([]int, len(sc))
			for i, l := range sc {
				p[i] = bnd[l]
			}
			pieces = append(pieces, decompPiece{paths: p, boundary: true})
		}
		for _, sc := range splitterComponents(subInfos(infos, leaf)) {
			p := make([]int, len(sc))
			for i, l := range sc {
				p[i] = leaf[l]
			}
			pieces = append(pieces, decompPiece{paths: p})
		}
	}
	return pieces
}

// candLosses summarises an assignment for the coordination model: its
// per-wavelength worst losses sorted descending and the piece worst.
func candLosses(sub []PathInfo, a *Assignment, w Weights) ([]float64, float64) {
	per := PerLambdaLoss(sub, a, w)
	sorted := append([]float64(nil), per...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	worst := 0.0
	if len(sorted) > 0 {
		worst = sorted[0]
	}
	return sorted, worst
}

// componentCandidates builds the candidate set for one piece. It returns
// the candidates, whether every exact solve attempted proved optimality
// (false too when the size gate skipped part of the sweep), and whether a
// solve was cut short by ctx cancellation.
func componentCandidates(ctx context.Context, sub []PathInfo, start *Assignment, w Weights,
	timeLimit time.Duration, maxBin, extra, parallelism, cutRounds int, reg *obs.Registry, sp *obs.Span) (cands []decompCand, exactAll bool, cancelled bool, err error) {

	add := func(a *Assignment, exact bool) {
		a = a.Clone()
		a.Normalize()
		for _, c := range cands {
			if c.a.NumLambda == a.NumLambda && equalLambda(c.a.Lambda, a.Lambda) {
				return
			}
		}
		losses, worst := candLosses(sub, a, w)
		cands = append(cands, decompCand{a: a, losses: losses, worst: worst, exact: exact})
	}

	if len(sub) == 1 {
		add(&Assignment{Lambda: []int{0}, NumLambda: 1}, true)
		return cands, true, false, nil
	}

	local := Improve(sub, start, w)
	add(local, false)

	paths := make([]ring.Path, len(sub))
	for i, pi := range sub {
		paths[i] = pi.Path
	}
	lb := ring.BuildConflictGraph(paths).CliqueLowerBound()
	if lb < 1 {
		lb = 1
	}

	exactAll = true
	variants := []Weights{
		{Alpha: 0, Beta: w.Beta, Gamma: w.Gamma, SplitterStageDB: w.SplitterStageDB},
		{Alpha: 0, Beta: 0, Gamma: w.Gamma, SplitterStageDB: w.SplitterStageDB},
	}
	for k := lb; k <= local.NumLambda+extra; k++ {
		if len(sub)*k > maxBin {
			exactAll = false
			continue
		}
		for _, wv := range variants {
			var inc *Assignment
			if local.NumLambda <= k {
				inc = local
			}
			a, info, serr := SolveMILPRegistry(ctx, sub, k, wv, inc, timeLimit, parallelism, cutRounds, reg, sp)
			if serr != nil {
				if errors.Is(serr, ErrInfeasible) {
					break // palette too small; larger k may work
				}
				return nil, false, false, serr
			}
			if info.Cancelled {
				return cands, false, true, nil
			}
			if !info.Exact {
				exactAll = false
			}
			if a != nil {
				if verr := Verify(sub, a); verr != nil {
					return nil, false, false, fmt.Errorf("wavelength: piece MILP produced invalid assignment: %w", verr)
				}
				add(a, info.Exact)
			}
		}
	}
	return cands, exactAll, false, nil
}

func equalLambda(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bankOffsets returns the slot offset of each piece and the total slot
// count: boundary pieces draw from slots [0, kB), leaf pieces from
// [kB, kB+kL), where each bank is sized by the largest candidate it must
// accommodate. Unused slots vanish in the final Normalize.
func bankOffsets(pieces []decompPiece, cands [][]decompCand) (offsets []int, kB, total int) {
	kL := 0
	for p := range pieces {
		maxK := 0
		for _, c := range cands[p] {
			if c.a.NumLambda > maxK {
				maxK = c.a.NumLambda
			}
		}
		if pieces[p].boundary {
			if maxK > kB {
				kB = maxK
			}
		} else if maxK > kL {
			kL = maxK
		}
	}
	offsets = make([]int, len(pieces))
	for p := range pieces {
		if !pieces[p].boundary {
			offsets[p] = kB
		}
	}
	return offsets, kB, kB + kL
}

// coordinate selects one candidate per piece by solving the assembly MILP:
// binaries z_{p,t} pick candidates, slot maxima M_j capture the
// descending-overlay merge, ordered open-wavelength binaries y_j price the
// shared palette and W the global worst loss. Boundary and leaf pieces
// draw from disjoint slot banks. It returns the selected candidate
// indices and whether optimality was proven.
func coordinate(ctx context.Context, pieces []decompPiece, cands [][]decompCand, w Weights,
	timeLimit time.Duration, parallelism, cutRounds int, reg *obs.Registry, sp *obs.Span) ([]int, bool, bool, error) {

	P := len(pieces)
	zOff := make([]int, P)
	totalT := 0
	for p := range pieces {
		zOff[p] = totalT
		totalT += len(cands[p])
	}
	slotOff, kB, slots := bankOffsets(pieces, cands)
	zVar := func(p, t int) int { return zOff[p] + t }
	yVar := func(j int) int { return totalT + j }
	mVar := func(j int) int { return totalT + slots + j }
	wVar := totalT + 2*slots
	numVars := wVar + 1

	prob := &milp.Problem{
		LP:      lp.Problem{NumVars: numVars, Objective: make([]float64, numVars)},
		Integer: make([]bool, numVars),
	}
	for p := range pieces {
		for t := range cands[p] {
			prob.Integer[zVar(p, t)] = true
		}
	}
	for j := 0; j < slots; j++ {
		prob.Integer[yVar(j)] = true
		prob.LP.Objective[yVar(j)] = w.Alpha
		prob.LP.Objective[mVar(j)] = w.Gamma
	}
	prob.LP.Objective[wVar] = w.Beta

	for p := range pieces {
		terms := make(map[int]float64, len(cands[p]))
		for t := range cands[p] {
			terms[zVar(p, t)] = 1
		}
		prob.LP.AddConstraint(lp.EQ, 1, terms)
	}
	// Slot maxima and palette opening. Exactly one z per piece is 1, so
	// both row families are exact with no big-M.
	for p := range pieces {
		maxK := 0
		for _, c := range cands[p] {
			if c.a.NumLambda > maxK {
				maxK = c.a.NumLambda
			}
		}
		for j := 0; j < maxK; j++ {
			slot := slotOff[p] + j
			mTerms := map[int]float64{mVar(slot): 1}
			yTerms := map[int]float64{yVar(slot): 1}
			needM := false
			for t, c := range cands[p] {
				if j < len(c.losses) {
					if c.losses[j] > 0 {
						mTerms[zVar(p, t)] = -c.losses[j]
						needM = true
					}
					yTerms[zVar(p, t)] = -1
				}
			}
			if needM {
				prob.LP.AddConstraint(lp.GE, 0, mTerms)
			}
			prob.LP.AddConstraint(lp.GE, 0, yTerms)
		}
	}
	for j := 0; j < slots; j++ {
		prob.LP.AddConstraint(lp.LE, 1, map[int]float64{yVar(j): 1})
	}
	// Symmetry ordering within each bank.
	for j := 0; j+1 < kB; j++ {
		prob.LP.AddConstraint(lp.LE, 0, map[int]float64{yVar(j + 1): 1, yVar(j): -1})
	}
	for j := kB; j+1 < slots; j++ {
		prob.LP.AddConstraint(lp.LE, 0, map[int]float64{yVar(j + 1): 1, yVar(j): -1})
	}
	for p := range pieces {
		terms := map[int]float64{wVar: 1}
		for t, c := range cands[p] {
			if c.worst > 0 {
				terms[zVar(p, t)] = -c.worst
			}
		}
		prob.LP.AddConstraint(lp.GE, 0, terms)
	}

	// Incumbent: each piece's standalone-best candidate, overlaid.
	incSel := make([]int, P)
	x := make([]float64, numVars)
	incM := make([]float64, slots)
	incOpen := make([]bool, slots)
	var incW float64
	for p, pc := range cands {
		best, bestVal := 0, math.Inf(1)
		for t, c := range pc {
			v := w.Alpha*float64(c.a.NumLambda) + w.Beta*c.worst
			for _, l := range c.losses {
				v += w.Gamma * l
			}
			if v < bestVal {
				best, bestVal = t, v
			}
		}
		incSel[p] = best
		x[zVar(p, best)] = 1
		c := pc[best]
		for j, l := range c.losses {
			slot := slotOff[p] + j
			incOpen[slot] = true
			if l > incM[slot] {
				incM[slot] = l
			}
		}
		if c.worst > incW {
			incW = c.worst
		}
	}
	for j := 0; j < slots; j++ {
		if incOpen[j] {
			x[yVar(j)] = 1
		}
		x[mVar(j)] = incM[j]
	}
	x[wVar] = incW

	csp := sp.StartSpan("wavelength.decomp.coordinate")
	defer csp.End()
	csp.SetInt("pieces", int64(P))
	csp.SetInt("candidates", int64(totalT))
	csp.SetInt("slots", int64(slots))
	res, err := milp.SolveContext(ctx, prob, milp.Options{
		TimeLimit:   timeLimit,
		Parallelism: parallelism,
		CutRounds:   cutRounds,
		Incumbent:   x,
		Obs:         csp,
		Registry:    reg,
	})
	if err != nil {
		return nil, false, false, fmt.Errorf("wavelength: coordination solve: %w", err)
	}
	csp.SetBool("exact", res.Status == milp.Optimal)
	if res.Cancelled {
		return nil, false, true, nil
	}
	switch res.Status {
	case milp.Optimal, milp.Feasible:
		sel := make([]int, P)
		for p := range pieces {
			sel[p] = -1
			for t := range cands[p] {
				if res.X[zVar(p, t)] > 0.5 {
					sel[p] = t
					break
				}
			}
			if sel[p] < 0 {
				return nil, false, false, fmt.Errorf("wavelength: coordination selected no candidate for piece %d", p)
			}
		}
		return sel, res.Status == milp.Optimal, false, nil
	default:
		// No solution within limits: fall back to the standalone incumbent.
		return incSel, false, false, nil
	}
}

// mergeComponents overlays the selected per-piece assignments onto the
// shared palette: within each piece, wavelengths are ranked by their worst
// loss descending (ties by first use) and rank r maps to the piece's
// bank-offset slot r — the alignment the coordination model priced. The
// final Normalize compacts unused slots away.
func mergeComponents(infos []PathInfo, pieces []decompPiece, cands [][]decompCand, sel []int, w Weights) *Assignment {
	slotOff, _, _ := bankOffsets(pieces, cands)
	out := &Assignment{Lambda: make([]int, len(infos))}
	for p, piece := range pieces {
		cand := cands[p][sel[p]]
		sub := subInfos(infos, piece.paths)
		per := PerLambdaLoss(sub, cand.a, w)
		rank := make([]int, len(per))
		for l := range rank {
			rank[l] = l
		}
		sort.SliceStable(rank, func(i, j int) bool { return per[rank[i]] > per[rank[j]] })
		slotOf := make([]int, len(per))
		for r, l := range rank {
			slotOf[l] = slotOff[p] + r
		}
		for i, g := range piece.paths {
			slot := slotOf[cand.a.Lambda[i]]
			out.Lambda[g] = slot
			if slot+1 > out.NumLambda {
				out.NumLambda = slot + 1
			}
		}
	}
	out.Normalize()
	return out
}

// assignDecomposed runs the decomposed exact assignment over the given
// pieces: candidate sweeps per piece, the assembly MILP, and the
// descending-overlay merge. It returns the merged assignment (nil when
// cancelled before coordination finished), the candidate count, whether
// every solve proved optimality, and the cancellation flag.
func assignDecomposed(ctx context.Context, infos []PathInfo, pieces []decompPiece, heur *Assignment, w Weights,
	timeLimit time.Duration, maxBin, extra, parallelism, cutRounds int, reg *obs.Registry, sp *obs.Span) (*Assignment, int, bool, bool, error) {

	cands := make([][]decompCand, len(pieces))
	exactAll := true
	total := 0
	for p, piece := range pieces {
		sub := subInfos(infos, piece.paths)
		lam := make([]int, len(piece.paths))
		for i, g := range piece.paths {
			lam[i] = heur.Lambda[g]
		}
		start := &Assignment{Lambda: lam, NumLambda: heur.NumLambda}
		start.Normalize()
		cc, ok, cancelled, err := componentCandidates(ctx, sub, start, w, timeLimit, maxBin, extra, parallelism, cutRounds, reg, sp)
		if err != nil {
			return nil, 0, false, false, err
		}
		if cancelled {
			return nil, total, false, true, nil
		}
		if !ok {
			exactAll = false
		}
		if len(cc) == 0 {
			return nil, total, false, false, fmt.Errorf("wavelength: no candidate for piece %d", p)
		}
		cands[p] = cc
		total += len(cc)
	}

	sel, coordExact, cancelled, err := coordinate(ctx, pieces, cands, w, timeLimit, parallelism, cutRounds, reg, sp)
	if err != nil {
		return nil, total, false, false, err
	}
	if cancelled {
		return nil, total, false, true, nil
	}
	merged := mergeComponents(infos, pieces, cands, sel, w)
	if err := Verify(infos, merged); err != nil {
		return nil, total, false, false, fmt.Errorf("wavelength: decomposed merge invalid: %w", err)
	}
	return merged, total, exactAll && coordExact, false, nil
}
