package wavelength_test

// The CP cross-oracle and the MILP are fully independent solvers for the
// same Eq. 8 problem: the oracle propagates all-different constraints over
// conflict cliques and bounds with a monotone partial objective, the MILP
// runs branch-and-cut over the linearised model. This test runs both on
// every paper benchmark's real SRing instance and demands they agree —
// exactly where both prove optimality, and consistently (neither bound
// contradicting the other's incumbent) where a budget runs out.

import (
	"context"
	"math"
	"testing"
	"time"

	"sring/internal/netlist"
	"sring/internal/pipeline"
	"sring/internal/wavelength"

	_ "sring/internal/cluster"
)

func TestCPOracleAgreesWithMILP(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checks every paper benchmark; skipped in -short")
	}
	const tol = 1e-6
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			infos, w, err := pipeline.PathInfos(context.Background(), app, "SRing", pipeline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			a, stats, err := wavelength.Assign(infos, wavelength.Options{
				Weights:       w,
				UseMILP:       true,
				MILPTimeLimit: 5 * time.Second,
				Parallelism:   1,
			})
			if err != nil {
				t.Fatal(err)
			}
			numLambda := a.NumLambda
			if !stats.MILPRan {
				// The size gate skipped the MILP; still cross-check the
				// heuristic result against the CP optimum.
				numLambda++
			}
			res, err := wavelength.SolveCP(context.Background(), infos, numLambda, w, a, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("milp: ran=%v exact=%v obj=%.6f bound=%.6f; cp: exact=%v obj=%.6f bound=%.6f nodes=%d",
				stats.MILPRan, stats.MILPExact, stats.Final.Value, stats.MILPBound,
				res.Exact, res.Objective, res.Bound, res.Nodes)
			if res.Lambda == nil && res.Exact {
				t.Fatalf("CP proved infeasible but the pipeline assigned %d wavelengths", numLambda)
			}
			if stats.MILPExact && res.Exact {
				// Both proved optimality over the same palette: the optima
				// must coincide.
				if math.Abs(res.Objective-stats.Final.Value) > tol {
					t.Fatalf("proven optima disagree: MILP %.9f, CP %.9f", stats.Final.Value, res.Objective)
				}
				return
			}
			// At least one solver ran out of budget: the surviving
			// certificates must still be mutually consistent. Any proven
			// lower bound must not exceed any incumbent's value.
			if res.Bound > stats.Final.Value+tol {
				t.Fatalf("CP bound %.9f exceeds pipeline incumbent %.9f", res.Bound, stats.Final.Value)
			}
			if stats.MILPRan && res.Lambda != nil && stats.MILPBound > res.Objective+tol {
				t.Fatalf("MILP bound %.9f exceeds CP incumbent %.9f", stats.MILPBound, res.Objective)
			}
		})
	}
}

// The -oracle=cp fallback must never worsen the assignment, and on
// instances it proves optimal the reported gap must collapse to zero.
func TestOracleFallbackImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the exact pipeline twice; skipped in -short")
	}
	app := netlist.MWD()
	infos, w, err := pipeline.PathInfos(context.Background(), app, "SRing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := wavelength.Options{
		Weights:       w,
		UseMILP:       true,
		MILPTimeLimit: 100 * time.Millisecond,
		Parallelism:   1,
	}
	_, plain, err := wavelength.Assign(infos, base)
	if err != nil {
		t.Fatal(err)
	}
	withOracle := base
	withOracle.Oracle = wavelength.OracleCP
	_, st, err := wavelength.Assign(infos, withOracle)
	if err != nil {
		t.Fatal(err)
	}
	if st.Final.Value > plain.Final.Value+1e-9 {
		t.Fatalf("oracle fallback worsened the objective: %.9f vs %.9f", st.Final.Value, plain.Final.Value)
	}
	if plain.MILPExact {
		if st.OracleRan {
			t.Fatal("oracle ran although the MILP already proved optimality")
		}
		return
	}
	if !st.OracleRan {
		t.Fatal("MILP inexact but the oracle fallback did not run")
	}
	if st.OracleExact && st.MILPGap > 1e-9 {
		t.Fatalf("oracle proved optimality but the reported gap is %.9f", st.MILPGap)
	}
}
