package wavelength

import (
	"context"
	"math"
	"testing"
	"time"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// chainInfos builds k paths on one ring that all overlap pairwise on
// segment 0 (a clique: needs k wavelengths).
func cliqueInfos(k int) []PathInfo {
	infos := make([]PathInfo, k)
	for i := 0; i < k; i++ {
		infos[i] = PathInfo{
			Path: ring.Path{
				Msg:    netlist.Message{Src: netlist.NodeID(i + 10), Dst: netlist.NodeID(99)},
				RingID: 0,
				Segs:   []int{0, i + 1}, // all share segment 0
			},
			LossDB: 4 + 0.1*float64(i),
		}
	}
	return infos
}

// disjointInfos builds k paths with pairwise disjoint arcs (1 wavelength
// suffices).
func disjointInfos(k int) []PathInfo {
	infos := make([]PathInfo, k)
	for i := 0; i < k; i++ {
		infos[i] = PathInfo{
			Path: ring.Path{
				Msg:    netlist.Message{Src: netlist.NodeID(i), Dst: netlist.NodeID(50 + i)},
				RingID: 0,
				Segs:   []int{i},
			},
			LossDB: 4,
		}
	}
	return infos
}

func TestDSATURClique(t *testing.T) {
	infos := cliqueInfos(5)
	a := DSATUR(infos)
	if a.NumLambda != 5 {
		t.Errorf("clique of 5 coloured with %d wavelengths, want 5", a.NumLambda)
	}
	if err := Verify(infos, a); err != nil {
		t.Errorf("invalid DSATUR assignment: %v", err)
	}
}

func TestDSATURDisjoint(t *testing.T) {
	infos := disjointInfos(6)
	a := DSATUR(infos)
	if a.NumLambda != 1 {
		t.Errorf("disjoint paths coloured with %d wavelengths, want 1", a.NumLambda)
	}
	if err := Verify(infos, a); err != nil {
		t.Errorf("invalid assignment: %v", err)
	}
}

func TestDSATUROddCycle(t *testing.T) {
	// 5-cycle conflict structure: paths i and i+1 share a segment. Needs 3.
	infos := make([]PathInfo, 5)
	for i := 0; i < 5; i++ {
		infos[i] = PathInfo{
			Path: ring.Path{
				Msg:    netlist.Message{Src: netlist.NodeID(i), Dst: netlist.NodeID(20 + i)},
				RingID: 0,
				Segs:   []int{i, (i + 1) % 5},
			},
			LossDB: 4,
		}
	}
	a := DSATUR(infos)
	if err := Verify(infos, a); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	if a.NumLambda != 3 {
		t.Errorf("odd cycle coloured with %d wavelengths, want 3", a.NumLambda)
	}
}

func TestVerifyCatchesCollision(t *testing.T) {
	infos := cliqueInfos(2)
	bad := &Assignment{Lambda: []int{0, 0}, NumLambda: 1}
	if err := Verify(infos, bad); err == nil {
		t.Error("Verify accepted colliding assignment")
	}
	short := &Assignment{Lambda: []int{0}, NumLambda: 1}
	if err := Verify(infos, short); err == nil {
		t.Error("Verify accepted short assignment")
	}
	oor := &Assignment{Lambda: []int{0, 5}, NumLambda: 2}
	if err := Verify(infos, oor); err == nil {
		t.Error("Verify accepted out-of-range wavelength")
	}
}

func TestNormalize(t *testing.T) {
	a := &Assignment{Lambda: []int{7, 3, 7, 9}, NumLambda: 10}
	a.Normalize()
	if a.NumLambda != 3 {
		t.Errorf("NumLambda = %d, want 3", a.NumLambda)
	}
	want := []int{0, 1, 0, 2}
	for i, l := range a.Lambda {
		if l != want[i] {
			t.Errorf("Lambda = %v, want %v", a.Lambda, want)
			break
		}
	}
}

// twoSenderInfos: node 1 sends on rings 0 and 1; paths can avoid sharing a
// wavelength, so an optimal assignment needs no splitter.
func twoSenderInfos() []PathInfo {
	return []PathInfo{
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 2}, RingID: 0, Segs: []int{0}}, LossDB: 4},
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 3}, RingID: 1, Segs: []int{0}}, LossDB: 4},
	}
}

func TestNodeSplitters(t *testing.T) {
	infos := twoSenderInfos()
	shared := &Assignment{Lambda: []int{0, 0}, NumLambda: 1}
	sp := NodeSplitters(infos, shared)
	if !sp[1] {
		t.Error("sharing senders should need a splitter")
	}
	disjoint := &Assignment{Lambda: []int{0, 1}, NumLambda: 2}
	sp = NodeSplitters(infos, disjoint)
	if sp[1] {
		t.Error("disjoint wavelength sets should not need a splitter")
	}
	// Single-sender node never needs one.
	single := disjointInfos(2)
	sp = NodeSplitters(single, &Assignment{Lambda: []int{0, 0}, NumLambda: 1})
	if len(sp) != 0 {
		t.Errorf("single-sender nodes flagged: %v", sp)
	}
}

func TestEvaluateComponents(t *testing.T) {
	infos := twoSenderInfos()
	w := DefaultWeights()
	shared := &Assignment{Lambda: []int{0, 0}, NumLambda: 1}
	o := Evaluate(infos, shared, w)
	if o.NumLambda != 1 || o.Splitters != 1 {
		t.Errorf("shared: %+v", o)
	}
	// Both paths lose L_s + L_sp = 7.3.
	if math.Abs(o.WorstIL-7.3) > 1e-9 || math.Abs(o.SumPerLambda-7.3) > 1e-9 {
		t.Errorf("shared IL: %+v", o)
	}
	if math.Abs(o.Value-(1*1+1*7.3+1*7.3)) > 1e-9 {
		t.Errorf("shared value = %v", o.Value)
	}

	disjoint := &Assignment{Lambda: []int{0, 1}, NumLambda: 2}
	o = Evaluate(infos, disjoint, w)
	if o.NumLambda != 2 || o.Splitters != 0 {
		t.Errorf("disjoint: %+v", o)
	}
	if math.Abs(o.WorstIL-4) > 1e-9 || math.Abs(o.SumPerLambda-8) > 1e-9 {
		t.Errorf("disjoint IL: %+v", o)
	}
}

// The splitter trade: Improve must discover that separating the two senders
// onto different wavelengths beats sharing (7.3+7.3+1 = 15.6 vs 2+4+8 = 14).
func TestImproveRemovesSplitter(t *testing.T) {
	infos := twoSenderInfos()
	w := DefaultWeights()
	start := &Assignment{Lambda: []int{0, 0}, NumLambda: 1}
	improved := Improve(infos, start, w)
	if err := Verify(infos, improved); err != nil {
		t.Fatalf("Improve produced invalid assignment: %v", err)
	}
	o := Evaluate(infos, improved, w)
	if o.Splitters != 0 {
		t.Errorf("Improve kept the splitter: %+v (lambda %v)", o, improved.Lambda)
	}
	if o.Value >= Evaluate(infos, start, w).Value {
		t.Errorf("Improve did not improve: %v", o.Value)
	}
	// Input untouched.
	if start.Lambda[0] != 0 || start.Lambda[1] != 0 {
		t.Error("Improve mutated its input")
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	infos := cliqueInfos(4)
	w := DefaultWeights()
	start := DSATUR(infos)
	before := Evaluate(infos, start, w)
	after := Evaluate(infos, Improve(infos, start, w), w)
	if after.Value > before.Value+1e-9 {
		t.Errorf("Improve worsened objective: %v -> %v", before.Value, after.Value)
	}
}

func TestAssignHeuristicOnly(t *testing.T) {
	infos := cliqueInfos(3)
	a, stats, err := Assign(infos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(infos, a); err != nil {
		t.Fatal(err)
	}
	if stats.MILPRan {
		t.Error("MILP ran without UseMILP")
	}
	if a.NumLambda != 3 {
		t.Errorf("NumLambda = %d, want 3 (clique)", a.NumLambda)
	}
}

func TestAssignEmpty(t *testing.T) {
	if _, _, err := Assign(nil, Options{}); err == nil {
		t.Error("Assign accepted empty path set")
	}
}

func TestSolveMILPMatchesCliqueBound(t *testing.T) {
	infos := cliqueInfos(3)
	w := DefaultWeights()
	inc := DSATUR(infos)
	a, info, err := SolveMILP(context.Background(), infos, 3, w, inc, 30*time.Second, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Exact {
		t.Error("small MILP should prove optimality")
	}
	if err := Verify(infos, a); err != nil {
		t.Fatal(err)
	}
	if a.NumLambda != 3 {
		t.Errorf("MILP used %d wavelengths, want 3", a.NumLambda)
	}
}

func TestSolveMILPRemovesSplitter(t *testing.T) {
	infos := twoSenderInfos()
	w := DefaultWeights()
	a, info, err := SolveMILP(context.Background(), infos, 2, w, nil, 30*time.Second, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Exact {
		t.Error("tiny MILP should prove optimality")
	}
	sp := NodeSplitters(infos, a)
	if len(sp) != 0 {
		t.Errorf("MILP optimum should avoid the splitter, got %v (lambda %v)", sp, a.Lambda)
	}
}

func TestSolveMILPInfeasiblePalette(t *testing.T) {
	infos := cliqueInfos(3)
	if _, _, err := SolveMILP(context.Background(), infos, 2, DefaultWeights(), nil, 10*time.Second, 1, nil); err == nil {
		t.Error("3-clique with 2 wavelengths should be infeasible")
	}
	if _, _, err := SolveMILP(context.Background(), infos, 0, DefaultWeights(), nil, 0, 1, nil); err == nil {
		t.Error("numLambda = 0 accepted")
	}
	big := &Assignment{Lambda: []int{0, 1, 2}, NumLambda: 3}
	if _, _, err := SolveMILP(context.Background(), infos, 2, DefaultWeights(), big, 0, 1, nil); err == nil {
		t.Error("incumbent larger than palette accepted")
	}
}

func TestAssignWithMILPAgreesOrImproves(t *testing.T) {
	infos := cliqueInfos(3)
	w := DefaultWeights()
	aH, _, err := Assign(infos, Options{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	aM, stats, err := Assign(infos, Options{Weights: w, UseMILP: true, MILPTimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.MILPRan {
		t.Fatal("MILP did not run on a tiny instance")
	}
	oh := Evaluate(infos, aH, w)
	om := Evaluate(infos, aM, w)
	if om.Value > oh.Value+1e-9 {
		t.Errorf("MILP result worse than heuristic: %v > %v", om.Value, oh.Value)
	}
}

func TestAssignDeterministic(t *testing.T) {
	infos := cliqueInfos(6)
	a1, _, err := Assign(infos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Assign(infos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Lambda {
		if a1.Lambda[i] != a2.Lambda[i] {
			t.Fatal("Assign not deterministic")
		}
	}
}

// Mixed scenario resembling a real sub-ring design: two rings, some paths
// overlapping, one two-sender node. End-to-end Assign must produce a valid,
// splitter-light assignment.
func TestAssignMixedScenario(t *testing.T) {
	infos := []PathInfo{
		// Ring 0 (intra): chain overlaps.
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 2}, RingID: 0, Segs: []int{0, 1}}, LossDB: 4.1},
		{Path: ring.Path{Msg: netlist.Message{Src: 2, Dst: 3}, RingID: 0, Segs: []int{1, 2}}, LossDB: 4.2},
		{Path: ring.Path{Msg: netlist.Message{Src: 3, Dst: 1}, RingID: 0, Segs: []int{2, 3}}, LossDB: 4.0},
		// Ring 1 (inter): node 1 sends here too.
		{Path: ring.Path{Msg: netlist.Message{Src: 1, Dst: 9}, RingID: 1, Segs: []int{0}}, LossDB: 4.5},
		{Path: ring.Path{Msg: netlist.Message{Src: 9, Dst: 1}, RingID: 1, Segs: []int{1}}, LossDB: 4.4},
	}
	a, stats, err := Assign(infos, Options{UseMILP: true, MILPTimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(infos, a); err != nil {
		t.Fatal(err)
	}
	o := Evaluate(infos, a, DefaultWeights())
	if o.Splitters != 0 {
		t.Errorf("splitter avoidable but used: %+v lambda=%v", o, a.Lambda)
	}
	if stats.Final.Value > stats.Heuristic.Value+1e-9 {
		t.Error("final worse than heuristic")
	}
}

func TestDefaultWeights(t *testing.T) {
	w := DefaultWeights()
	if w.Alpha != 1 || w.Beta != 1 || w.Gamma != 1 {
		t.Errorf("weights = %+v, want α=β=γ=1 (paper Sec. IV)", w)
	}
	if math.Abs(w.SplitterStageDB-3.3) > 1e-12 {
		t.Errorf("L_sp = %v, want 3.3", w.SplitterStageDB)
	}
}
