// Package cpcheck is an independent exact oracle for the paper's Eq. 8
// wavelength-assignment problem: a constraint-propagation + backtracking
// solver over the palette-assignment variables, used to cross-check the
// MILP's optima and as a fallback when branch-and-bound stalls.
//
// The solver shares no code with the simplex/MILP stack — conflicts are
// all-different constraints over conflict cliques, losses enter through a
// monotone lower bound — so agreement between the two is meaningful
// evidence that both are right.
//
// The package deliberately does not import internal/wavelength: it states
// the problem in its own minimal terms (paths with a sender node, a sender
// ring and a loss; a conflict adjacency), which lets the wavelength package
// import it for the -oracle=cp fallback without a cycle.
package cpcheck

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// Path is one sender path: the sender node and ring identify the physical
// sender (splitter bookkeeping), LossDB is the path's insertion loss
// excluding any node-splitter stage.
type Path struct {
	Node   int
	Ring   int
	LossDB float64
}

// Weights are the Eq. 8 objective coefficients and the splitter stage loss.
type Weights struct {
	Alpha, Beta, Gamma float64
	SplitterDB         float64
}

// Problem is one assignment instance. Adj must be a symmetric conflict
// adjacency over the path indices; MaxLambda caps the palette (at most 64:
// domains are single-word bitsets).
type Problem struct {
	Paths     []Path
	Adj       [][]int
	MaxLambda int
	W         Weights
}

// Result reports the search outcome.
type Result struct {
	// Lambda is the best complete assignment found, nil when none exists
	// within the palette (or none was found before the deadline).
	Lambda []int
	// Objective is Lambda's Eq. 8 value, +Inf when Lambda is nil.
	Objective float64
	// Bound is a proven lower bound on the optimal value: equal to
	// Objective when Exact, the weaker root bound otherwise.
	Bound float64
	// Exact reports that the search ran to completion, so Objective is the
	// proven optimum (or the instance is proven infeasible).
	Exact bool
	// Nodes counts the backtracking search nodes explored.
	Nodes int64
}

// MaxLambdaLimit is the largest palette the bitset domains support.
const MaxLambdaLimit = 64

const eps = 1e-9

// solver holds the search state. All state is deterministic: variable and
// value orders break ties on indices, and the deadline only aborts the
// search (marking the result inexact), never reorders it.
type solver struct {
	p        Problem
	n        int
	cliques  [][]int // greedy clique cover, each sorted
	byVertex [][]int // path -> indices into cliques
	nodeIdx  []int   // path -> dense sender-node index
	nodePath [][]int // dense node -> its path indices
	nRings   []int   // dense node -> number of distinct sender rings

	lambda  []int    // current partial assignment, -1 = unassigned
	dom     []uint64 // remaining palette bits per path
	minLoss float64  // min LossDB over all paths
	maxLoss float64  // max LossDB over all paths

	best    []int
	bestVal float64

	deadline time.Time
	ctx      context.Context
	nodes    int64
	aborted  bool
}

// Solve searches for the optimal assignment. seed, when non-nil, must be a
// valid assignment; its objective primes the incumbent so the search can
// prove optimality by exhaustion. A zero deadline means no time limit.
func Solve(ctx context.Context, p Problem, seed []int, deadline time.Time) (Result, error) {
	n := len(p.Paths)
	if n == 0 {
		return Result{}, fmt.Errorf("cpcheck: no paths")
	}
	if p.MaxLambda < 1 || p.MaxLambda > MaxLambdaLimit {
		return Result{}, fmt.Errorf("cpcheck: MaxLambda %d out of range 1..%d", p.MaxLambda, MaxLambdaLimit)
	}
	if len(p.Adj) != n {
		return Result{}, fmt.Errorf("cpcheck: adjacency covers %d paths, want %d", len(p.Adj), n)
	}
	s := &solver{
		p:        p,
		n:        n,
		lambda:   make([]int, n),
		dom:      make([]uint64, n),
		deadline: deadline,
		ctx:      ctx,
		bestVal:  math.Inf(1),
	}
	full := uint64(1)<<uint(p.MaxLambda) - 1
	s.minLoss, s.maxLoss = math.Inf(1), 0
	for i := range s.lambda {
		s.lambda[i] = -1
		s.dom[i] = full
		if l := p.Paths[i].LossDB; l < s.minLoss {
			s.minLoss = l
		}
		if l := p.Paths[i].LossDB; l > s.maxLoss {
			s.maxLoss = l
		}
	}
	s.buildCliques()
	s.buildNodes()
	if seed != nil {
		if v, ok := s.evaluate(seed); ok {
			s.best = append([]int(nil), seed...)
			s.bestVal = v
		}
	}
	rootBound := s.lowerBound()
	s.search()

	res := Result{
		Lambda:    s.best,
		Objective: s.bestVal,
		Nodes:     s.nodes,
		Exact:     !s.aborted,
	}
	if res.Exact {
		res.Bound = res.Objective
	} else {
		res.Bound = rootBound
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// buildCliques greedily covers the conflict graph with cliques, highest
// degree first. Each path lists the cliques containing it; the largest
// clique's size is a chromatic lower bound.
func (s *solver) buildCliques() {
	order := make([]int, s.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(s.p.Adj[order[a]]), len(s.p.Adj[order[b]])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	adjSet := make([]map[int]bool, s.n)
	for i, nb := range s.p.Adj {
		adjSet[i] = make(map[int]bool, len(nb))
		for _, j := range nb {
			adjSet[i][j] = true
		}
	}
	placed := make([]bool, s.n)
	s.byVertex = make([][]int, s.n)
	for _, v := range order {
		if placed[v] {
			continue
		}
		clique := []int{v}
		placed[v] = true
		// Extend with unplaced vertices adjacent to every member, in the
		// same degree order.
		for _, u := range order {
			if placed[u] {
				continue
			}
			ok := true
			for _, m := range clique {
				if !adjSet[m][u] {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, u)
				placed[u] = true
			}
		}
		sort.Ints(clique)
		ci := len(s.cliques)
		s.cliques = append(s.cliques, clique)
		for _, m := range clique {
			s.byVertex[m] = append(s.byVertex[m], ci)
		}
	}
}

// buildNodes densifies the sender nodes and counts each node's distinct
// sender rings (single-ring nodes never need a splitter).
func (s *solver) buildNodes() {
	idx := make(map[int]int)
	s.nodeIdx = make([]int, s.n)
	for i, pt := range s.p.Paths {
		j, ok := idx[pt.Node]
		if !ok {
			j = len(idx)
			idx[pt.Node] = j
			s.nodePath = append(s.nodePath, nil)
			s.nRings = append(s.nRings, 0)
		}
		s.nodeIdx[i] = j
		s.nodePath[j] = append(s.nodePath[j], i)
	}
	for j, paths := range s.nodePath {
		rings := make(map[int]bool)
		for _, i := range paths {
			rings[s.p.Paths[i].Ring] = true
		}
		s.nRings[j] = len(rings)
	}
}

// splitters returns, for the paths assigned in lambda, which dense nodes
// currently require a splitter: two of the node's rings sharing a
// wavelength. Monotone — extending the assignment never removes one.
func (s *solver) splitters(lambda []int) []bool {
	out := make([]bool, len(s.nodePath))
	for j, paths := range s.nodePath {
		if s.nRings[j] < 2 {
			continue
		}
		seen := make(map[int]int) // λ -> first ring
		for _, i := range paths {
			l := lambda[i]
			if l < 0 {
				continue
			}
			if r, ok := seen[l]; ok {
				if r != s.p.Paths[i].Ring {
					out[j] = true
					break
				}
			} else {
				seen[l] = s.p.Paths[i].Ring
			}
		}
	}
	return out
}

// evaluate computes the Eq. 8 objective of a complete assignment; ok=false
// when the assignment is out of palette or has a conflict collision.
func (s *solver) evaluate(lambda []int) (float64, bool) {
	if len(lambda) != s.n {
		return 0, false
	}
	for i, l := range lambda {
		if l < 0 || l >= s.p.MaxLambda {
			return 0, false
		}
		for _, j := range s.p.Adj[i] {
			if j < i && lambda[j] == l {
				return 0, false
			}
		}
	}
	sp := s.splitters(lambda)
	perColor := make([]float64, s.p.MaxLambda)
	var worst float64
	for i, l := range lambda {
		il := s.p.Paths[i].LossDB
		if sp[s.nodeIdx[i]] {
			il += s.p.W.SplitterDB
		}
		if il > worst {
			worst = il
		}
		if il > perColor[l] {
			perColor[l] = il
		}
	}
	var sum float64
	used := 0
	for _, v := range perColor {
		if v > 0 {
			used++
			sum += v
		}
	}
	return s.p.W.Alpha*float64(used) + s.p.W.Beta*worst + s.p.W.Gamma*sum, true
}

// lowerBound computes a monotone bound on any completion of the current
// partial assignment:
//
//   - splitters already forced stay forced, so assigned paths price their
//     current splitter stage;
//   - every color opened stays open and its max loss never decreases;
//   - unassigned paths whose domain misses every open color must open
//     fresh ones — pairwise-conflicting such paths (within one cover
//     clique) need pairwise-distinct fresh colors, each adding at least
//     the cheapest unassigned loss to the per-color sum;
//   - the worst loss is at least the largest raw path loss, assigned or
//     not.
func (s *solver) lowerBound() float64 {
	sp := s.splitters(s.lambda)
	perColor := make([]float64, s.p.MaxLambda)
	worst := s.maxLoss
	var usedMask uint64
	for i, l := range s.lambda {
		if l < 0 {
			continue
		}
		il := s.p.Paths[i].LossDB
		if sp[s.nodeIdx[i]] {
			il += s.p.W.SplitterDB
		}
		if il > worst {
			worst = il
		}
		if il > perColor[l] {
			perColor[l] = il
		}
		usedMask |= 1 << uint(l)
	}
	var sum float64
	used := 0
	for _, v := range perColor {
		if v > 0 {
			used++
			sum += v
		}
	}
	// Fresh colors forced by domains: per cover clique, unassigned members
	// whose domains avoid every open color conflict pairwise, so each
	// needs its own fresh color.
	extra := 0
	minFresh := math.Inf(1)
	for _, clique := range s.cliques {
		forced := 0
		for _, i := range clique {
			if s.lambda[i] >= 0 {
				continue
			}
			if s.dom[i]&usedMask == 0 {
				forced++
				if l := s.p.Paths[i].LossDB; l < minFresh {
					minFresh = l
				}
			}
		}
		if forced > extra {
			extra = forced
		}
	}
	lb := s.p.W.Alpha*float64(used+extra) + s.p.W.Beta*worst + s.p.W.Gamma*sum
	if extra > 0 && !math.IsInf(minFresh, 1) {
		lb += s.p.W.Gamma * float64(extra) * minFresh
	}
	return lb
}

// propagateOK runs the clique all-different check: within every cover
// clique the unassigned members must fit injectively into the union of
// their domains.
func (s *solver) propagateOK(touched []int) bool {
	for _, ci := range touched {
		clique := s.cliques[ci]
		var union uint64
		free := 0
		for _, i := range clique {
			if s.lambda[i] < 0 {
				union |= s.dom[i]
				free++
			}
		}
		if bits.OnesCount64(union) < free {
			return false
		}
	}
	return true
}

// pickVar returns the unassigned path with the smallest domain (first
// fail), ties to the higher conflict degree, then the lower index; -1 when
// everything is assigned.
func (s *solver) pickVar() int {
	bestI, bestSize, bestDeg := -1, 65, -1
	for i, l := range s.lambda {
		if l >= 0 {
			continue
		}
		sz := bits.OnesCount64(s.dom[i])
		deg := len(s.p.Adj[i])
		if sz < bestSize || (sz == bestSize && deg > bestDeg) {
			bestI, bestSize, bestDeg = i, sz, deg
		}
	}
	return bestI
}

const deadlineCheckMask = 0x3ff // check the clock every 1024 nodes

// search runs the depth-first branch-and-bound.
func (s *solver) search() {
	s.nodes++
	if s.nodes&deadlineCheckMask == 0 {
		if s.ctx != nil && s.ctx.Err() != nil {
			s.aborted = true
		} else if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.aborted = true
		}
	}
	if s.aborted {
		return
	}
	i := s.pickVar()
	if i < 0 {
		if v, ok := s.evaluate(s.lambda); ok && v < s.bestVal-eps {
			s.best = append(s.best[:0], s.lambda...)
			s.bestVal = v
		}
		return
	}
	if s.lowerBound() >= s.bestVal-eps {
		return
	}
	// Value symmetry: colors are interchangeable, so beyond the open ones
	// only the single lowest fresh color is tried.
	var usedMask uint64
	for _, l := range s.lambda {
		if l >= 0 {
			usedMask |= 1 << uint(l)
		}
	}
	fresh := bits.TrailingZeros64(^usedMask)
	for c := 0; c < s.p.MaxLambda; c++ {
		bit := uint64(1) << uint(c)
		if s.dom[i]&bit == 0 {
			continue
		}
		if usedMask&bit == 0 && c != fresh {
			continue
		}
		s.assign(i, c)
		if s.propagateOK(s.byVertex[i]) {
			s.search()
		}
		s.unassign(i, c)
		if s.aborted {
			return
		}
	}
}

// assign sets path i to color c and prunes neighbour domains.
func (s *solver) assign(i, c int) {
	s.lambda[i] = c
	bit := uint64(1) << uint(c)
	for _, j := range s.p.Adj[i] {
		if s.lambda[j] < 0 {
			s.dom[j] &^= bit
		}
	}
}

// unassign undoes assign(i, c), restoring neighbour domains that no other
// assigned neighbour still blocks.
func (s *solver) unassign(i, c int) {
	s.lambda[i] = -1
	bit := uint64(1) << uint(c)
	for _, j := range s.p.Adj[i] {
		if s.lambda[j] >= 0 {
			continue
		}
		blocked := false
		for _, k := range s.p.Adj[j] {
			if s.lambda[k] == c {
				blocked = true
				break
			}
		}
		if !blocked {
			s.dom[j] |= bit
		}
	}
}
