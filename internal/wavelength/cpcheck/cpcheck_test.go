package cpcheck

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// refEvaluate is an independent Eq. 8 evaluator written directly from the
// problem statement, deliberately sharing nothing with the solver's
// incremental bookkeeping.
func refEvaluate(p Problem, lambda []int) (float64, bool) {
	for i, l := range lambda {
		if l < 0 || l >= p.MaxLambda {
			return 0, false
		}
		for _, j := range p.Adj[i] {
			if lambda[j] == l && j != i {
				return 0, false
			}
		}
	}
	// A node needs a splitter when two of its paths on different rings
	// share a wavelength.
	splitter := make(map[int]bool)
	for i := range p.Paths {
		for j := range p.Paths {
			if i == j || p.Paths[i].Node != p.Paths[j].Node {
				continue
			}
			if p.Paths[i].Ring != p.Paths[j].Ring && lambda[i] == lambda[j] {
				splitter[p.Paths[i].Node] = true
			}
		}
	}
	perColor := make([]float64, p.MaxLambda)
	var worst float64
	for i, l := range lambda {
		il := p.Paths[i].LossDB
		if splitter[p.Paths[i].Node] {
			il += p.W.SplitterDB
		}
		worst = math.Max(worst, il)
		perColor[l] = math.Max(perColor[l], il)
	}
	used, sum := 0, 0.0
	for _, v := range perColor {
		if v > 0 {
			used++
			sum += v
		}
	}
	return p.W.Alpha*float64(used) + p.W.Beta*worst + p.W.Gamma*sum, true
}

// bruteForce enumerates all p.MaxLambda^n assignments.
func bruteForce(p Problem) (float64, []int) {
	n := len(p.Paths)
	lambda := make([]int, n)
	best := math.Inf(1)
	var bestL []int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if v, ok := refEvaluate(p, lambda); ok && v < best {
				best = v
				bestL = append([]int(nil), lambda...)
			}
			return
		}
		for c := 0; c < p.MaxLambda; c++ {
			lambda[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestL
}

func randomProblem(rng *rand.Rand) Problem {
	n := 3 + rng.Intn(4) // 3..6 paths
	p := Problem{
		Paths:     make([]Path, n),
		Adj:       make([][]int, n),
		MaxLambda: 2 + rng.Intn(3), // 2..4
		W:         Weights{Alpha: 1, Beta: 1, Gamma: 1, SplitterDB: 3.3},
	}
	for i := range p.Paths {
		p.Paths[i] = Path{
			Node:   rng.Intn(3),
			Ring:   rng.Intn(2),
			LossDB: 3 + rng.Float64()*2,
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				p.Adj[i] = append(p.Adj[i], j)
				p.Adj[j] = append(p.Adj[j], i)
			}
		}
	}
	return p
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		want, _ := bruteForce(p)
		res, err := Solve(context.Background(), p, nil, time.Time{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Exact {
			t.Fatalf("trial %d: not exact without a deadline", trial)
		}
		if math.IsInf(want, 1) {
			if res.Lambda != nil {
				t.Fatalf("trial %d: brute force infeasible but solver found %v", trial, res.Lambda)
			}
			continue
		}
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: solver %.9f, brute force %.9f", trial, res.Objective, want)
		}
		if v, ok := refEvaluate(p, res.Lambda); !ok || math.Abs(v-res.Objective) > 1e-6 {
			t.Fatalf("trial %d: reported objective %.9f but assignment evaluates to %.9f (valid=%v)",
				trial, res.Objective, v, ok)
		}
		if res.Bound > want+1e-6 {
			t.Fatalf("trial %d: bound %.9f exceeds optimum %.9f", trial, res.Bound, want)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	// A 3-clique with a 2-color palette has no proper coloring.
	p := Problem{
		Paths:     []Path{{0, 0, 4}, {1, 0, 4}, {2, 0, 4}},
		Adj:       [][]int{{1, 2}, {0, 2}, {0, 1}},
		MaxLambda: 2,
		W:         Weights{Alpha: 1, Beta: 1, Gamma: 1, SplitterDB: 3.3},
	}
	res, err := Solve(context.Background(), p, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Lambda != nil {
		t.Fatalf("want exact infeasible, got exact=%v lambda=%v", res.Exact, res.Lambda)
	}
	if !math.IsInf(res.Objective, 1) {
		t.Fatalf("objective of infeasible instance = %v, want +Inf", res.Objective)
	}
}

func TestSolveSeedIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng)
		want, seed := bruteForce(p)
		if seed == nil {
			continue
		}
		res, err := Solve(context.Background(), p, seed, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: seeded solve %.9f, optimum %.9f", trial, res.Objective, want)
		}
	}
}

func TestSolveDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomProblem(rng)
	want, _ := bruteForce(p)
	// An already-expired deadline: the search may abort at any node, but
	// the result must stay internally consistent.
	res, err := Solve(context.Background(), p, nil, time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != nil {
		if v, ok := refEvaluate(p, res.Lambda); !ok || math.Abs(v-res.Objective) > 1e-6 {
			t.Fatalf("aborted solve returned inconsistent incumbent (valid=%v, %.9f vs %.9f)", ok, v, res.Objective)
		}
	}
	if !math.IsInf(want, 1) && res.Bound > want+1e-6 {
		t.Fatalf("aborted bound %.9f exceeds optimum %.9f", res.Bound, want)
	}
}

func TestSolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng)
		a, err := Solve(context.Background(), p, nil, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(context.Background(), p, nil, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Nodes != b.Nodes || a.Objective != b.Objective {
			t.Fatalf("trial %d: nondeterministic search: %d/%f vs %d/%f",
				trial, a.Nodes, a.Objective, b.Nodes, b.Objective)
		}
		for i := range a.Lambda {
			if a.Lambda[i] != b.Lambda[i] {
				t.Fatalf("trial %d: assignments differ at %d", trial, i)
			}
		}
	}
}
