// Package wavelength assigns wavelengths to the reserved signal paths of a
// WRONoC ring router.
//
// It implements the SRing paper's MILP model (Sec. III-B, Eqs. 1-8), which
// jointly minimises the number of used wavelengths, the worst-case insertion
// loss over all signal paths, and the sum of per-wavelength worst-case
// insertion losses — with a binary per node deciding whether its two senders
// share a wavelength and therefore need a PDN splitter (Eq. 4).
//
// Because the MILP is NP-hard, the package also provides a deterministic
// DSATUR colouring followed by splitter-aware hill climbing on the same
// objective. The hill-climbing solution seeds the MILP as an incumbent; on
// instances too large for the exact solver within the time budget, the
// incumbent is returned.
package wavelength

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/ring"
	"sring/internal/wavelength/cpcheck"
)

// PathInfo is one signal path plus the data the assignment objective needs:
// its layout insertion loss L_s (excluding PDN losses) and its sender
// endpoint.
type PathInfo struct {
	Path ring.Path
	// LossDB is L_s: the path's insertion loss from the physical layout
	// excluding PDN losses (paper Eq. 5).
	LossDB float64
}

// SenderNode returns the node originating the path.
func (pi PathInfo) SenderNode() netlist.NodeID { return pi.Path.Msg.Src }

// SenderRing returns the ring carrying the path; (SenderNode, SenderRing)
// identifies the physical sender.
func (pi PathInfo) SenderRing() int { return pi.Path.RingID }

// Assignment maps each path (by index into the PathInfo slice) to a
// wavelength index in 0..NumLambda-1.
type Assignment struct {
	Lambda    []int
	NumLambda int
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{Lambda: append([]int(nil), a.Lambda...), NumLambda: a.NumLambda}
}

// Normalize renumbers wavelengths to a dense 0..k-1 range ordered by first
// use and updates NumLambda.
func (a *Assignment) Normalize() {
	remap := make(map[int]int)
	next := 0
	for i, l := range a.Lambda {
		m, ok := remap[l]
		if !ok {
			m = next
			remap[l] = m
			next++
		}
		a.Lambda[i] = m
	}
	a.NumLambda = next
}

// Verify checks that the assignment is collision-free: every path has a
// wavelength in range and no two conflicting paths (overlapping arcs on the
// same ring) share one.
func Verify(infos []PathInfo, a *Assignment) error {
	if len(a.Lambda) != len(infos) {
		return fmt.Errorf("wavelength: assignment covers %d paths, want %d", len(a.Lambda), len(infos))
	}
	for i, l := range a.Lambda {
		if l < 0 || l >= a.NumLambda {
			return fmt.Errorf("wavelength: path %d assigned out-of-range wavelength %d", i, l)
		}
	}
	paths := make([]ring.Path, len(infos))
	for i, pi := range infos {
		paths[i] = pi.Path
	}
	g := ring.BuildConflictGraph(paths)
	for i, adj := range g.Adj {
		for _, j := range adj {
			if j > i && a.Lambda[i] == a.Lambda[j] {
				return fmt.Errorf("wavelength: conflicting paths %d and %d share wavelength %d", i, j, a.Lambda[i])
			}
		}
	}
	return nil
}

// NodeSplitters derives which sender nodes need a PDN splitter under the
// assignment: a node whose senders on two different rings share at least
// one wavelength (paper Sec. III-B). Nodes with a single sender never need
// one.
func NodeSplitters(infos []PathInfo, a *Assignment) map[netlist.NodeID]bool {
	byNode := make(map[netlist.NodeID]map[int]map[int]bool) // node -> ring -> λ set
	for i, pi := range infos {
		n, r := pi.SenderNode(), pi.SenderRing()
		if byNode[n] == nil {
			byNode[n] = make(map[int]map[int]bool)
		}
		if byNode[n][r] == nil {
			byNode[n][r] = make(map[int]bool)
		}
		byNode[n][r][a.Lambda[i]] = true
	}
	out := make(map[netlist.NodeID]bool)
	for n, rings := range byNode {
		if len(rings) < 2 {
			continue
		}
		// Union-intersection across ring pairs: shared λ anywhere => splitter.
		var ringIDs []int
		for r := range rings {
			ringIDs = append(ringIDs, r)
		}
		sort.Ints(ringIDs)
		shared := false
	outer:
		for i := 0; i < len(ringIDs) && !shared; i++ {
			for j := i + 1; j < len(ringIDs); j++ {
				for l := range rings[ringIDs[i]] {
					if rings[ringIDs[j]][l] {
						shared = true
						break outer
					}
				}
			}
		}
		if shared {
			out[n] = true
		}
	}
	return out
}

// Objective is the paper's Eq. 8 value and its components for a given
// assignment.
type Objective struct {
	NumLambda    int     // i_wl
	WorstIL      float64 // il^Smax: worst path loss incl. node splitter
	SumPerLambda float64 // sum over used λ of il_λ^max
	Splitters    int     // number of node splitters implied
	Value        float64 // α·i_wl + β·il^Smax + γ·Σ il_λ^max
}

// Weights are the objective coefficients (α, β, γ) plus the splitter stage
// loss L_sp used inside il_s.
type Weights struct {
	Alpha, Beta, Gamma float64
	SplitterStageDB    float64
}

// DefaultWeights returns the paper's setting α = β = γ = 1 with the
// calibrated L_sp.
func DefaultWeights() Weights {
	return Weights{Alpha: 1, Beta: 1, Gamma: 1, SplitterStageDB: 3.3}
}

// PerLambdaLoss returns the worst-case insertion loss carried by each
// wavelength under the assignment, including the node-splitter stage of
// senders the assignment forces a splitter on (the il_λ^max terms of Eq. 8,
// without PDN feed losses).
func PerLambdaLoss(infos []PathInfo, a *Assignment, w Weights) []float64 {
	sp := NodeSplitters(infos, a)
	perLambda := make([]float64, a.NumLambda)
	for i, pi := range infos {
		il := pi.LossDB
		if sp[pi.SenderNode()] {
			il += w.SplitterStageDB
		}
		if l := a.Lambda[i]; il > perLambda[l] {
			perLambda[l] = il
		}
	}
	return perLambda
}

// Evaluate computes the objective of an assignment.
func Evaluate(infos []PathInfo, a *Assignment, w Weights) Objective {
	sp := NodeSplitters(infos, a)
	perLambda := make([]float64, a.NumLambda)
	var worst float64
	for i, pi := range infos {
		il := pi.LossDB
		if sp[pi.SenderNode()] {
			il += w.SplitterStageDB
		}
		if il > worst {
			worst = il
		}
		if l := a.Lambda[i]; il > perLambda[l] {
			perLambda[l] = il
		}
	}
	var sum float64
	used := 0
	for _, v := range perLambda {
		sum += v
		if v > 0 {
			used++
		}
	}
	obj := Objective{
		NumLambda:    used,
		WorstIL:      worst,
		SumPerLambda: sum,
		Splitters:    len(sp),
	}
	obj.Value = w.Alpha*float64(used) + w.Beta*worst + w.Gamma*sum
	return obj
}

// conflictAdj builds the conflict adjacency of the paths.
func conflictAdj(infos []PathInfo) [][]int {
	paths := make([]ring.Path, len(infos))
	for i, pi := range infos {
		paths[i] = pi.Path
	}
	return ring.BuildConflictGraph(paths).Adj
}

// DSATUR colours the conflict graph with the classic saturation-degree
// heuristic, deterministically. The result is a valid assignment with a
// small (not necessarily minimal) number of wavelengths.
func DSATUR(infos []PathInfo) *Assignment {
	n := len(infos)
	adj := conflictAdj(infos)
	lambda := make([]int, n)
	for i := range lambda {
		lambda[i] = -1
	}
	satur := make([]map[int]bool, n)
	for i := range satur {
		satur[i] = make(map[int]bool)
	}
	colored := 0
	maxColor := -1
	for colored < n {
		// Pick uncoloured vertex with max saturation, tie: max degree,
		// tie: lowest index.
		best := -1
		for i := 0; i < n; i++ {
			if lambda[i] >= 0 {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			si, sb := len(satur[i]), len(satur[best])
			if si > sb || (si == sb && len(adj[i]) > len(adj[best])) {
				best = i
			}
		}
		// Smallest feasible colour.
		c := 0
		for satur[best][c] {
			c++
		}
		lambda[best] = c
		if c > maxColor {
			maxColor = c
		}
		for _, j := range adj[best] {
			satur[j][c] = true
		}
		colored++
	}
	a := &Assignment{Lambda: lambda, NumLambda: maxColor + 1}
	a.Normalize()
	return a
}

// Improve hill-climbs the assignment under the Eq. 8 objective using
// single-path recolour moves, including moves to one brand-new wavelength
// (which is how the optimiser trades wavelength count against splitter
// usage, the behaviour the paper reports at high communication density).
// It returns the improved assignment; the input is not modified.
func Improve(infos []PathInfo, start *Assignment, w Weights) *Assignment {
	cur := start.Clone()
	cur.Normalize()
	adj := conflictAdj(infos)
	curObj := Evaluate(infos, cur, w)

	feasible := func(i, c int) bool {
		for _, j := range adj[i] {
			if cur.Lambda[j] == c {
				return false
			}
		}
		return true
	}

	const maxPasses = 60
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := range infos {
			old := cur.Lambda[i]
			// Try every existing colour plus one fresh colour.
			for c := 0; c <= cur.NumLambda; c++ {
				if c == old || !feasible(i, c) {
					continue
				}
				cur.Lambda[i] = c
				if c == cur.NumLambda {
					cur.NumLambda = c + 1
				}
				cand := Evaluate(infos, cur, w)
				if cand.Value < curObj.Value-1e-9 {
					curObj = cand
					improved = true
					cur.Normalize()
					old = cur.Lambda[i]
				} else {
					cur.Lambda[i] = old
					cur.Normalize()
				}
			}
		}
		// Compound splitter-elimination moves: recolouring a single path
		// rarely pays off on its own (the splitter only disappears once
		// every shared wavelength is resolved), so attempt the whole
		// elimination for each splitter node and keep it if the objective
		// improves.
		if cand, obj, ok := eliminateSplitters(infos, cur, adj, w); ok && obj.Value < curObj.Value-1e-9 {
			cur = cand
			curObj = obj
			improved = true
		}
		if !improved {
			break
		}
	}
	cur.Normalize()
	return cur
}

// eliminateSplitters tries, for each node currently needing a PDN splitter,
// to recolour the offending paths so its senders' wavelength sets become
// disjoint. It returns the best resulting assignment and its objective, or
// ok=false if no elimination attempt changed anything.
func eliminateSplitters(infos []PathInfo, start *Assignment, adj [][]int, w Weights) (*Assignment, Objective, bool) {
	splitters := NodeSplitters(infos, start)
	if len(splitters) == 0 {
		return nil, Objective{}, false
	}
	nodes := make([]netlist.NodeID, 0, len(splitters))
	for n := range splitters {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	cur := start.Clone()
	changed := false
	for _, n := range nodes {
		cand := cur.Clone()
		if resolveNode(infos, cand, adj, n) {
			// Keep the elimination only if it does not worsen Eq. 8.
			if Evaluate(infos, cand, w).Value <= Evaluate(infos, cur, w).Value+1e-9 {
				cur = cand
				changed = true
			}
		}
	}
	if !changed {
		return nil, Objective{}, false
	}
	cur.Normalize()
	return cur, Evaluate(infos, cur, w), true
}

// resolveNode recolours paths sent by node n until its senders' wavelength
// sets are disjoint, preferring existing wavelengths and opening fresh ones
// as a last resort. Reports whether full disjointness was achieved.
func resolveNode(infos []PathInfo, a *Assignment, adj [][]int, n netlist.NodeID) bool {
	// Paths from n grouped by sender ring.
	byRing := make(map[int][]int)
	for i, pi := range infos {
		if pi.SenderNode() == n {
			byRing[pi.SenderRing()] = append(byRing[pi.SenderRing()], i)
		}
	}
	if len(byRing) < 2 {
		return true
	}
	ringIDs := make([]int, 0, len(byRing))
	for r := range byRing {
		ringIDs = append(ringIDs, r)
	}
	sort.Ints(ringIDs)
	// The first ring keeps its colours; later rings move off any colour
	// already claimed by earlier rings.
	claimed := make(map[int]bool)
	for _, i := range byRing[ringIDs[0]] {
		claimed[a.Lambda[i]] = true
	}
	for _, r := range ringIDs[1:] {
		for _, i := range byRing[r] {
			if !claimed[a.Lambda[i]] {
				continue
			}
			moved := false
			for c := 0; c <= a.NumLambda && !moved; c++ {
				if claimed[c] {
					continue
				}
				ok := true
				for _, j := range adj[i] {
					if a.Lambda[j] == c {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				a.Lambda[i] = c
				if c == a.NumLambda {
					a.NumLambda = c + 1
				}
				moved = true
			}
			if !moved {
				return false
			}
		}
		for _, i := range byRing[r] {
			claimed[a.Lambda[i]] = true
		}
	}
	return true
}

// Options controls Assign.
type Options struct {
	// Weights are the objective coefficients; zero value means
	// DefaultWeights.
	Weights Weights
	// UseMILP enables the exact branch-and-bound polish after the
	// heuristic.
	UseMILP bool
	// MILPTimeLimit bounds the exact solve. Zero means the pipeline-wide
	// default, milp.DefaultTimeLimit (10 s); the value is passed through
	// unchanged so the default lives in one place.
	MILPTimeLimit time.Duration
	// Parallelism is the worker count for the exact solve's LP
	// relaxations, forwarded to milp.Options.Parallelism: 0 means
	// GOMAXPROCS, 1 means sequential. The assignment returned is
	// bit-identical either way.
	Parallelism int
	// MaxBinaries skips the MILP when |S| x |Λ| exceeds it (the dense
	// simplex would be too slow to help within the budget — a single LP
	// solve can overshoot the time limit). Zero means 500.
	MaxBinaries int
	// ExtraLambda lets the MILP use up to this many wavelengths beyond the
	// heuristic's count, enabling the λ-for-splitter trade. Zero means 1.
	ExtraLambda int
	// CutRounds is the exact solver's cutting-plane budget, forwarded to
	// milp.Options.CutRounds (monolithic, decomposed and assembly solves
	// alike): 0 means the solver default, negative disables cut separation.
	// Cuts only ever change the search path, never the optimum — the
	// cuts-on-vs-off CI step relies on exactly that.
	CutRounds int
	// Decompose splits the exact solve into the connected components of the
	// ring-coupling graph (rings are coupled when one node sends on both),
	// solves each piece's MILP separately over a palette sweep, and
	// coordinates the shared palette with a small assembly MILP — see
	// decompose.go. Components too large for the monolithic size gate are
	// further cut along the construction hierarchy (RingLevels) into
	// boundary and per-cluster leaf pieces on disjoint palette banks, so
	// the decomposed solve reaches sizes the MaxBinaries gate would reject
	// monolithically. Instances that reduce to one gate-sized piece run
	// the monolithic solve unchanged, so results are identical there.
	// Effective only with UseMILP.
	Decompose bool
	// RingLevels maps ring ID to its construction hierarchy level (0 =
	// intra-cluster, >= 1 = inter-cluster) and enables the boundary/leaf
	// tier cut for oversized components under Decompose. Nil disables the
	// cut; such components then contribute heuristic candidates only.
	RingLevels map[int]int
	// Obs, when non-nil, is the parent span under which the assignment
	// records its telemetry: heuristic and MILP child spans, the
	// heuristic-vs-MILP objective delta, and per-wavelength loss events.
	Obs *obs.Span
	// Registry receives aggregate telemetry (LP/MILP kernel histograms and
	// counters), forwarded to milp.Options.Registry. Nil means the
	// process-wide obs.Default() registry.
	Registry *obs.Registry
	// Oracle names an independent cross-check solver to run when the exact
	// solve fails to prove optimality (stalled, skipped by the size gate,
	// or decomposed without a global certificate). OracleCP ("cp") runs the
	// constraint-propagation search in cpcheck with the same time budget,
	// seeded with the incumbent; an improvement replaces the assignment and
	// a stronger bound tightens the reported gap. Empty disables.
	Oracle string
}

// Stats reports how an assignment was obtained.
type Stats struct {
	Heuristic Objective
	Final     Objective
	MILPRan   bool
	MILPExact bool // true if the MILP proved optimality
	// MILPBound is the proven lower bound on the Eq. 8 objective over the
	// MILP's palette (valid when MILPRan).
	MILPBound float64
	// MILPNodes counts the branch-and-bound nodes explored.
	MILPNodes int
	// MILPGap is the relative optimality gap of the final assignment:
	// 0 for a proven optimum, +Inf when no bound was established
	// (valid when MILPRan).
	MILPGap float64
	// MILPTimeLimitHit reports that the MILP's wall-clock budget expired
	// before the search finished (valid when MILPRan).
	MILPTimeLimitHit bool
	// MILPNodeFingerprint is the solver's explored-node fingerprint
	// (milp.Result.NodeFingerprint), identical across Parallelism
	// settings; 0 when the MILP did not run or presolve decided it.
	MILPNodeFingerprint uint64
	// Cancelled reports that the assignment was interrupted by context
	// cancellation: the exact solve stopped early and the returned
	// assignment is the best of the heuristic and the solver's incumbent
	// at that moment, not the converged result.
	Cancelled bool
	// DecompComponents is the number of pieces the decomposed solve
	// partitioned the instance into — ring-coupling components, after the
	// boundary/leaf tier cut of components too large for the monolithic
	// gate. 0 when decomposition was not requested, 1 when the instance
	// was one gate-sized piece and ran the monolithic solve verbatim.
	DecompComponents int
	// DecompCandidates is the total number of per-piece palette candidates
	// offered to the coordination model (multi-piece decomposed solves
	// only).
	DecompCandidates int
	// OracleRan reports that the Options.Oracle fallback solver ran.
	OracleRan bool
	// OracleExact reports that the oracle search ran to completion, proving
	// its result optimal over the palette it was given.
	OracleExact bool
	// OracleNodes counts the oracle's search nodes.
	OracleNodes int64
	// OracleBound is the oracle's proven lower bound on the Eq. 8 objective
	// (valid when OracleRan).
	OracleBound float64
	// DecompExact reports that every per-piece MILP in a multi-piece
	// decomposed solve proved optimality and the coordination model was
	// solved to optimality. Unlike MILPExact it does not certify a global
	// optimum — the candidate palette sweep is heuristically complete and
	// the tier cut forbids cross-bank wavelength sharing (see
	// decompose.go) — so MILPExact stays false on multi-piece decomposed
	// solves.
	DecompExact bool
}

// Assign computes a wavelength assignment with no cancellation hook. See
// AssignContext.
func Assign(infos []PathInfo, opt Options) (*Assignment, *Stats, error) {
	return AssignContext(context.Background(), infos, opt)
}

// AssignContext computes a wavelength assignment for the given paths:
// DSATUR, splitter-aware hill climbing, and (optionally) the paper's MILP
// seeded with the heuristic incumbent. The best solution found is
// returned. Cancelling ctx stops the exact solve gracefully: the best
// solution known at that point is returned with Stats.Cancelled set.
func AssignContext(ctx context.Context, infos []PathInfo, opt Options) (*Assignment, *Stats, error) {
	if len(infos) == 0 {
		return nil, nil, fmt.Errorf("wavelength: no paths to assign")
	}
	sp := opt.Obs.StartSpan("wavelength.assign")
	defer sp.End()
	sp.SetInt("paths", int64(len(infos)))
	w := opt.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	hsp := sp.StartSpan("wavelength.heuristic")
	best := Improve(infos, DSATUR(infos), w)
	if err := Verify(infos, best); err != nil {
		return nil, nil, fmt.Errorf("wavelength: heuristic produced invalid assignment: %w", err)
	}
	stats := &Stats{Heuristic: Evaluate(infos, best, w)}
	stats.Final = stats.Heuristic
	hsp.SetFloat("objective", stats.Heuristic.Value)
	hsp.SetInt("wavelengths", int64(best.NumLambda))
	hsp.SetInt("splitters", int64(stats.Heuristic.Splitters))
	hsp.End()

	if opt.UseMILP {
		maxBin := opt.MaxBinaries
		if maxBin == 0 {
			maxBin = 500
		}
		extra := opt.ExtraLambda
		if extra == 0 {
			extra = 1
		}
		ranDecomposed := false
		if opt.Decompose {
			comps := splitterComponents(infos)
			pieces := buildPieces(infos, comps, best, extra, maxBin, opt.RingLevels)
			stats.DecompComponents = len(pieces)
			sp.SetInt("decomp_components", int64(len(pieces)))
			reg := obs.OrDefault(opt.Registry)
			reg.Add("wavelength.decomp.solves", 1)
			reg.Observe("wavelength.decomp.components", int64(len(pieces)))
			// One gate-sized piece carries the whole instance: fall through
			// to the monolithic solve, which is then the decomposition
			// verbatim.
			if len(pieces) > 1 {
				ranDecomposed = true
				merged, nCand, exact, cancelled, err := assignDecomposed(ctx, infos, pieces, best, w,
					opt.MILPTimeLimit, maxBin, extra, opt.Parallelism, opt.CutRounds, opt.Registry, sp)
				if err != nil {
					return nil, nil, err
				}
				stats.DecompCandidates = nCand
				stats.DecompExact = exact
				stats.Cancelled = cancelled
				sp.SetInt("decomp_candidates", int64(nCand))
				sp.SetBool("decomp_exact", exact)
				reg.Add("wavelength.decomp.candidates", int64(nCand))
				if exact {
					reg.Add("wavelength.decomp.exact", 1)
				}
				if merged != nil {
					if o := Evaluate(infos, merged, w); o.Value < stats.Final.Value-1e-9 {
						best = merged
						stats.Final = o
					}
				}
			}
		}
		numLambda := best.NumLambda + extra
		if ranDecomposed {
			// The exact work happened per component above.
		} else if len(infos)*numLambda <= maxBin {
			milpA, info, err := SolveMILPRegistry(ctx, infos, numLambda, w, best, opt.MILPTimeLimit, opt.Parallelism, opt.CutRounds, opt.Registry, sp)
			if err != nil {
				return nil, nil, err
			}
			stats.MILPRan = true
			stats.MILPExact = info.Exact
			stats.MILPBound = info.Bound
			stats.MILPNodes = info.Nodes
			stats.MILPGap = info.Gap
			stats.MILPTimeLimitHit = info.TimeLimitHit
			stats.MILPNodeFingerprint = info.NodeFingerprint
			stats.Cancelled = info.Cancelled
			if milpA != nil {
				if err := Verify(infos, milpA); err != nil {
					return nil, nil, fmt.Errorf("wavelength: MILP produced invalid assignment: %w", err)
				}
				if o := Evaluate(infos, milpA, w); o.Value < stats.Final.Value-1e-9 {
					best = milpA
					stats.Final = o
				}
			}
		} else {
			// The exact solve would not finish within budget at this size;
			// make the skip visible instead of silent.
			sp.SetBool("milp_skipped", true)
		}
		if opt.Oracle == OracleCP && !stats.MILPExact && !stats.DecompExact &&
			ctx.Err() == nil && numLambda <= cpcheck.MaxLambdaLimit {
			var err error
			best, err = runOracle(ctx, infos, best, numLambda, w, opt, stats, sp)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	best.Normalize()
	sp.SetFloat("heuristic_objective", stats.Heuristic.Value)
	sp.SetFloat("final_objective", stats.Final.Value)
	sp.SetFloat("milp_delta", stats.Heuristic.Value-stats.Final.Value)
	sp.SetInt("wavelengths", int64(best.NumLambda))
	sp.SetInt("splitters", int64(stats.Final.Splitters))
	if sp.Enabled() {
		for l, loss := range PerLambdaLoss(infos, best, w) {
			sp.Event("lambda_loss", float64(l), loss)
		}
	}
	return best, stats, nil
}
