// Package lambdarouter models the classic crossbar-style WRONoC topology —
// the λ-router (Brière et al., DATE'07) — that the SRing paper's Fig. 1
// contrasts ring routers against.
//
// An N-port λ-router is a brick-wall network of N columns of 2x2 optical
// switching elements (OSEs) between N horizontal waveguides. A signal from
// input i to output j switches waveguides |i-j| times (one drop per
// switch) and passes the remaining OSEs on their through ports; every OSE
// contains a waveguide crossing. Wavelength assignment is the classic
// cyclic scheme λ_(i,j) = (j - i) mod N, giving full connectivity with N
// wavelengths and no collisions.
//
// The point of the model, as in the paper's Fig. 1: crossbar loss grows
// linearly with the port count (drops + crossings), while ring routers
// avoid OSEs and crossings entirely — and SRing shortens the rings on top.
package lambdarouter

import (
	"fmt"

	"sring/internal/loss"
	"sring/internal/netlist"
)

// Design is an N-port λ-router serving an application: nodes map to ports
// in ID order.
type Design struct {
	App *netlist.Application
	// N is the port count (number of active nodes).
	N int
	// PitchMM is the spacing between adjacent waveguides/stages.
	PitchMM float64
	// Lambda[msg index] is the cyclic wavelength of each message.
	Lambda []int
	// NumLambda is the number of distinct wavelengths used.
	NumLambda int
}

// Synthesize maps the application onto a λ-router. Unlike the ring
// methods, the crossbar provides full connectivity whether needed or not;
// only the required messages consume wavelengths on their (input, output)
// pairs.
func Synthesize(app *netlist.Application, pitchMM float64) (*Design, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("lambdarouter: %w", err)
	}
	if pitchMM == 0 {
		pitchMM = 0.1
	}
	if pitchMM < 0 {
		return nil, fmt.Errorf("lambdarouter: negative pitch %v", pitchMM)
	}
	active := app.ActiveNodes()
	n := len(active)
	port := make(map[netlist.NodeID]int, n)
	for i, id := range active {
		port[id] = i
	}
	d := &Design{App: app, N: n, PitchMM: pitchMM, Lambda: make([]int, len(app.Messages))}
	used := make(map[int]bool)
	for k, m := range app.Messages {
		i, j := port[m.Src], port[m.Dst]
		l := ((j-i)%n + n) % n
		d.Lambda[k] = l
		used[l] = true
	}
	d.NumLambda = len(used)
	return d, nil
}

// PathGeometry returns the loss-relevant geometry of message k's path
// through the crossbar: the serpentine length, the number of OSE drops
// (waveguide switches), the through-passed OSEs, and the crossings
// traversed.
func (d *Design) PathGeometry(k int) (lengthMM float64, drops, throughs, crossings int, err error) {
	if k < 0 || k >= len(d.App.Messages) {
		return 0, 0, 0, 0, fmt.Errorf("lambdarouter: message %d out of range", k)
	}
	m := d.App.Messages[k]
	active := d.App.ActiveNodes()
	port := make(map[netlist.NodeID]int, len(active))
	for i, id := range active {
		port[id] = i
	}
	i, j := port[m.Src], port[m.Dst]
	hops := j - i
	if hops < 0 {
		hops = -hops
	}
	// The signal traverses all N stages horizontally plus |i-j| vertical
	// hops of one pitch each.
	lengthMM = float64(d.N)*d.PitchMM + float64(hops)*d.PitchMM
	drops = hops
	// One OSE encountered per stage; non-switching encounters are
	// through-passes. Every OSE embeds one waveguide crossing.
	throughs = d.N - hops
	if throughs < 0 {
		throughs = 0
	}
	crossings = d.N
	return lengthMM, drops, throughs, crossings, nil
}

// Metrics mirrors the ring methods' evaluation for the crossbar: worst-case
// insertion loss, wavelength count, and total laser power. The λ-router
// needs no PDN splitters (each sender is fed directly), which is its one
// structural advantage; its losses come from the OSE fabric.
type Metrics struct {
	WorstILdB         float64
	NumWavelengths    int
	TotalLaserPowerMW float64
	TotalOSEs         int
}

// Evaluate computes the crossbar metrics under the shared technology
// parameters.
func (d *Design) Evaluate(tech loss.Tech) (*Metrics, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	perLambda := make([]float64, d.NumLambda)
	lambdaIndex := make(map[int]int)
	var worst float64
	for k := range d.App.Messages {
		lengthMM, drops, throughs, crossings, err := d.PathGeometry(k)
		if err != nil {
			return nil, err
		}
		il := tech.ModulatorDB + tech.PhotodetectorDB +
			// Entry coupling plus one drop per switch.
			tech.DropDB*float64(1+drops) +
			tech.ThroughDB*float64(throughs) +
			tech.CrossingDB*float64(crossings) +
			tech.PropagationDBPerMM*lengthMM
		if il > worst {
			worst = il
		}
		li, ok := lambdaIndex[d.Lambda[k]]
		if !ok {
			li = len(lambdaIndex)
			lambdaIndex[d.Lambda[k]] = li
		}
		if il > perLambda[li] {
			perLambda[li] = il
		}
	}
	// The brick-wall fabric has (N-1) OSEs per column over N columns
	// alternating with (N-2)-ish columns; the standard count is N(N-1)/2
	// add-drop elements for full connectivity.
	return &Metrics{
		WorstILdB:         worst,
		NumWavelengths:    d.NumLambda,
		TotalLaserPowerMW: tech.TotalLaserPowerMW(perLambda),
		TotalOSEs:         d.N * (d.N - 1) / 2,
	}, nil
}
