package lambdarouter

import (
	"context"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/pipeline"
)

func TestSynthesizeBasics(t *testing.T) {
	app := netlist.MWD()
	d, err := Synthesize(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 12 {
		t.Errorf("N = %d, want 12", d.N)
	}
	if len(d.Lambda) != app.M() {
		t.Errorf("Lambda covers %d messages", len(d.Lambda))
	}
	if d.NumLambda < 1 || d.NumLambda > d.N {
		t.Errorf("NumLambda = %d", d.NumLambda)
	}
}

// The cyclic assignment is collision-free: two messages from the same
// input, or into the same output, never share a wavelength.
func TestCyclicAssignmentCollisionFree(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		d, err := Synthesize(app, 0)
		if err != nil {
			t.Fatal(err)
		}
		bySrc := make(map[netlist.NodeID]map[int]bool)
		byDst := make(map[netlist.NodeID]map[int]bool)
		for k, m := range app.Messages {
			l := d.Lambda[k]
			if bySrc[m.Src] == nil {
				bySrc[m.Src] = map[int]bool{}
			}
			if bySrc[m.Src][l] {
				t.Errorf("%s: input %d reuses λ%d", app.Name, m.Src, l)
			}
			bySrc[m.Src][l] = true
			if byDst[m.Dst] == nil {
				byDst[m.Dst] = map[int]bool{}
			}
			if byDst[m.Dst][l] {
				t.Errorf("%s: output %d reuses λ%d", app.Name, m.Dst, l)
			}
			byDst[m.Dst][l] = true
		}
	}
}

func TestPathGeometry(t *testing.T) {
	app := netlist.PM24()
	d, err := Synthesize(app, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for k := range app.Messages {
		length, drops, throughs, crossings, err := d.PathGeometry(k)
		if err != nil {
			t.Fatal(err)
		}
		if drops < 1 || drops >= d.N {
			t.Errorf("msg %d: drops = %d", k, drops)
		}
		if drops+throughs != d.N {
			t.Errorf("msg %d: drops %d + throughs %d != N %d", k, drops, throughs, d.N)
		}
		if crossings != d.N {
			t.Errorf("msg %d: crossings = %d, want %d", k, crossings, d.N)
		}
		if length <= 0 {
			t.Errorf("msg %d: length = %v", k, length)
		}
	}
	if _, _, _, _, err := d.PathGeometry(99); err == nil {
		t.Error("out-of-range message accepted")
	}
}

func TestEvaluate(t *testing.T) {
	d, err := Synthesize(netlist.MWD(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Evaluate(loss.Default())
	if err != nil {
		t.Fatal(err)
	}
	if m.WorstILdB <= 0 || m.TotalLaserPowerMW <= 0 {
		t.Errorf("degenerate metrics: %+v", m)
	}
	if m.TotalOSEs != 12*11/2 {
		t.Errorf("TotalOSEs = %d, want 66", m.TotalOSEs)
	}
	bad := loss.Tech{DropDB: -1}
	if _, err := d.Evaluate(bad); err == nil {
		t.Error("invalid tech accepted")
	}
}

// Crossbar loss grows with port count — the scaling problem the paper's
// Fig. 1 motivates ring routers with.
func TestLossGrowsWithPorts(t *testing.T) {
	small, err := Synthesize(netlist.Ring(6), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Synthesize(netlist.Ring(20), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := small.Evaluate(loss.Default())
	if err != nil {
		t.Fatal(err)
	}
	mb, err := big.Evaluate(loss.Default())
	if err != nil {
		t.Fatal(err)
	}
	if mb.WorstILdB <= ms.WorstILdB {
		t.Errorf("worst IL did not grow with ports: %v vs %v", mb.WorstILdB, ms.WorstILdB)
	}
}

// The paper's Fig. 1 story quantified: for the benchmark applications, the
// customised ring router beats the crossbar on worst-case insertion loss
// (crossbars pay one OSE crossing per stage).
func TestRingBeatsCrossbarOnLoss(t *testing.T) {
	for _, name := range []string{"VOPD", "D26"} {
		app, err := netlist.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		xbar, err := Synthesize(app, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		mx, err := xbar.Evaluate(loss.Default())
		if err != nil {
			t.Fatal(err)
		}
		rd, err := pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mr, err := rd.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if mr.WorstILdB >= mx.WorstILdB {
			t.Errorf("%s: ring il_w %v not below crossbar's %v", name, mr.WorstILdB, mx.WorstILdB)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(&netlist.Application{}, 0); err == nil {
		t.Error("invalid app accepted")
	}
	if _, err := Synthesize(netlist.MWD(), -1); err == nil {
		t.Error("negative pitch accepted")
	}
}
