package cluster

import (
	"context"
	"fmt"

	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

func init() {
	pipeline.Register("SRing", Construct)
}

// Construct is the SRing pipeline constructor (paper Sec. III-A): sub-ring
// construction by clustering, then per-message routing on the selected
// rings. The wavelength objective uses the paper's weights with the
// splitter term taken from the technology at assignment time, keeping the
// construction itself tech-independent (and cacheable across Tech sweeps).
func Construct(ctx context.Context, app *netlist.Application, opt pipeline.Options, parent *obs.Span) (*pipeline.Construction, error) {
	res, err := SynthesizeContext(ctx, app, Options{
		TreeHeight:       opt.TreeHeight,
		MaxInitialTrials: opt.ClusterTrials,
		Parallelism:      opt.Parallelism,
		Obs:              parent,
		Registry:         opt.Registry,
	})
	if err != nil {
		return nil, err
	}
	ringByID := make(map[int]*ring.Ring, len(res.Rings))
	for _, r := range res.Rings {
		ringByID[r.ID] = r
	}
	paths := make([]ring.Path, len(app.Messages))
	for i, m := range app.Messages {
		r, ok := ringByID[res.RingForMessage[i]]
		if !ok {
			return nil, fmt.Errorf("sring: message %d unmapped", i)
		}
		p, err := ring.Route(app, r, m)
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}
	return &pipeline.Construction{
		Rings:                  res.Rings,
		Paths:                  paths,
		Levels:                 res.Levels,
		PDNStyle:               pdn.StyleShared,
		Weights:                wavelength.DefaultWeights(),
		SplitterWeightFromTech: true,
		Cancelled:              res.Cancelled,
	}, nil
}
