package cluster

import (
	"testing"

	"sring/internal/netlist"
)

// BenchmarkSynthesize measures the clustering (the Table II cost centre)
// per benchmark.
func BenchmarkSynthesize(b *testing.B) {
	for _, app := range netlist.Benchmarks() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(app, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRingOrderLongest measures the absorption inner loop.
func BenchmarkRingOrderLongest(b *testing.B) {
	app := netlist.D26()
	order := app.ActiveNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringOrderLongest(app, order, app.Messages)
	}
}
