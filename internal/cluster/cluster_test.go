package cluster

import (
	"math"
	"testing"

	"sring/internal/geom"
	"sring/internal/netlist"
	"sring/internal/ring"
)

// checkSolution verifies the structural invariants the paper promises:
// every message rides a ring containing both endpoints, every node has at
// most two senders (one intra + one inter), at most one inter ring, and all
// signal paths respect L_max.
func checkSolution(t *testing.T, app *netlist.Application, res *Result) {
	t.Helper()
	ringByID := make(map[int]*ring.Ring)
	inter := 0
	for _, r := range res.Rings {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid ring: %v", err)
		}
		ringByID[r.ID] = r
		if r.Kind == ring.Inter {
			inter++
		}
	}
	if inter > 1 {
		t.Fatalf("%d inter rings, want at most 1", inter)
	}
	senderRings := make(map[netlist.NodeID]map[int]bool)
	var worst float64
	for i, m := range app.Messages {
		rid := res.RingForMessage[i]
		r, ok := ringByID[rid]
		if !ok {
			t.Fatalf("message %d mapped to unknown ring %d", i, rid)
		}
		if !r.Contains(m.Src) || !r.Contains(m.Dst) {
			t.Fatalf("message %d (%d->%d) endpoints not on ring %d", i, m.Src, m.Dst, rid)
		}
		l, err := r.PathLength(app, m.Src, m.Dst)
		if err != nil {
			t.Fatal(err)
		}
		worst = math.Max(worst, l)
		if senderRings[m.Src] == nil {
			senderRings[m.Src] = make(map[int]bool)
		}
		senderRings[m.Src][rid] = true
	}
	for n, rs := range senderRings {
		if len(rs) > 2 {
			t.Errorf("node %d has senders on %d rings, want <= 2", n, len(rs))
		}
	}
	if !math.IsInf(res.Lmax, 1) && worst > res.Lmax+1e-9 {
		t.Errorf("longest path %v exceeds Lmax %v", worst, res.Lmax)
	}
	// Clusters partition the active nodes.
	seen := make(map[netlist.NodeID]bool)
	for _, c := range res.Clusters {
		for _, id := range c {
			if seen[id] {
				t.Errorf("node %d in two clusters", id)
			}
			seen[id] = true
		}
	}
	for _, id := range app.ActiveNodes() {
		if !seen[id] {
			t.Errorf("active node %d unclustered", id)
		}
	}
}

func TestSynthesizeRingApp(t *testing.T) {
	app := netlist.Ring(6)
	res, err := Synthesize(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, app, res)
	if res.D1 > res.D2 {
		t.Errorf("d1 %v > d2 %v", res.D1, res.D2)
	}
	if !math.IsInf(res.Lmax, 1) && (res.Lmax < res.D1-1e-9 || res.Lmax > res.D2+1e-9) {
		t.Errorf("Lmax %v outside [d1, d2] = [%v, %v]", res.Lmax, res.D1, res.D2)
	}
}

func TestSynthesizeClusteredWorkload(t *testing.T) {
	// Three well-separated clusters with light inter traffic: SRing must
	// find multiple intra rings plus one inter ring.
	app, err := netlist.Clustered(3, 4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, app, res)
	intra := 0
	for _, r := range res.Rings {
		if r.Kind == ring.Intra {
			intra++
		}
	}
	if intra < 2 {
		t.Errorf("only %d intra rings for a 3-cluster workload", intra)
	}
	if res.InterRing == nil {
		t.Error("inter traffic present but no inter ring")
	}
}

func TestSynthesizeAllBenchmarks(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			res, err := Synthesize(app, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkSolution(t, app, res)
			if math.IsInf(res.Lmax, 1) {
				t.Errorf("%s: only the unbounded fallback succeeded", app.Name)
			}
		})
	}
}

func TestSynthesizeShortensWorstPath(t *testing.T) {
	// The headline claim: SRing's longest path beats the conventional
	// sequential ring bound d2 on the clustered MWD-style workloads.
	for _, name := range []string{"MWD", "VOPD", "D26"} {
		app, err := netlist.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Synthesize(app, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		ringByID := make(map[int]*ring.Ring)
		for _, r := range res.Rings {
			ringByID[r.ID] = r
		}
		for i, m := range app.Messages {
			l, err := ringByID[res.RingForMessage[i]].PathLength(app, m.Src, m.Dst)
			if err != nil {
				t.Fatal(err)
			}
			worst = math.Max(worst, l)
		}
		if worst >= res.D2 {
			t.Errorf("%s: SRing longest path %v does not beat sequential-ring bound %v", name, worst, res.D2)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	app := netlist.MWD()
	a, err := Synthesize(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Lmax != b.Lmax || len(a.Rings) != len(b.Rings) {
		t.Fatal("Synthesize not deterministic")
	}
	for i := range a.Rings {
		if a.Rings[i].String() != b.Rings[i].String() {
			t.Fatalf("ring %d differs across runs:\n%s\n%s", i, a.Rings[i], b.Rings[i])
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	bad := &netlist.Application{Name: "bad"}
	if _, err := Synthesize(bad, Options{}); err == nil {
		t.Error("invalid app accepted")
	}
	app := netlist.Ring(4)
	if _, err := Synthesize(app, Options{TreeHeight: 99}); err == nil {
		t.Error("absurd tree height accepted")
	}
}

func TestTreeHeightTradeoff(t *testing.T) {
	// A taller search tree can only refine L_max downward (or match).
	app := netlist.MWD()
	coarse, err := Synthesize(app, Options{TreeHeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Synthesize(app, Options{TreeHeight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Lmax > coarse.Lmax+1e-9 {
		t.Errorf("finer search found larger Lmax: %v > %v", fine.Lmax, coarse.Lmax)
	}
	if coarse.Evaluated > 3 {
		t.Errorf("h=2 evaluated %d values, want <= 3", coarse.Evaluated)
	}
}

func TestRingOrderLongest(t *testing.T) {
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(1, 1)},
			{ID: 3, Pos: geom.Pt(0, 1)},
		},
	}
	order := []netlist.NodeID{0, 1, 2, 3}
	// Single message 0->3: forward goes the long way (3), reverse is 1.
	l, rev := ringOrderLongest(app, order, []netlist.Message{{Src: 0, Dst: 3}})
	if math.Abs(l-1) > 1e-9 || !rev {
		t.Errorf("got (%v, %v), want (1, true)", l, rev)
	}
	// Opposing messages: both directions yield max 3.
	l, _ = ringOrderLongest(app, order, []netlist.Message{{Src: 0, Dst: 3}, {Src: 3, Dst: 0}})
	if math.Abs(l-3) > 1e-9 {
		t.Errorf("opposing messages longest = %v, want 3", l)
	}
	// Node off the order: infeasible.
	l, _ = ringOrderLongest(app, order[:2], []netlist.Message{{Src: 0, Dst: 3}})
	if !math.IsInf(l, 1) {
		t.Errorf("off-ring message longest = %v, want +Inf", l)
	}
	// No messages: zero.
	if l, _ := ringOrderLongest(app, order, nil); l != 0 {
		t.Errorf("no-message longest = %v, want 0", l)
	}
}

func TestRingOrderLongestMatchesRingPathLength(t *testing.T) {
	// Cross-check the prefix-sum fast path against ring.PathLength.
	app := netlist.MWD()
	order := app.ActiveNodes()
	r := &ring.Ring{Order: order}
	rev := r.Reversed()
	var lf, lr float64
	for _, m := range app.Messages {
		a, err := r.PathLength(app, m.Src, m.Dst)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := rev.PathLength(app, m.Src, m.Dst)
		lf = math.Max(lf, a)
		lr = math.Max(lr, b)
	}
	want := math.Min(lf, lr)
	got, _ := ringOrderLongest(app, order, app.Messages)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("fast path %v, reference %v", got, want)
	}
}

func TestBestAbsorptionPicksMinimalIncrease(t *testing.T) {
	// Paper Fig. 5(c)-(e): absorbing the nearby v3 (longest path 3) beats
	// absorbing the distant v5 (longest path 7) under L_max = 8.
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)}, // v1
			{ID: 1, Pos: geom.Pt(1, 0)}, // v2
			{ID: 2, Pos: geom.Pt(2, 1)}, // v3: close
			{ID: 3, Pos: geom.Pt(0, 4)}, // v5: far
		},
		Messages: []netlist.Message{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
			{Src: 1, Dst: 2}, {Src: 3, Dst: 0},
		},
	}
	order := []netlist.NodeID{1, 0} // initial cluster {v2, v1}
	members := map[netlist.NodeID]bool{0: true, 1: true}
	candidates := map[netlist.NodeID]bool{2: true, 3: true}
	newOrder, longest, cand, ok := bestAbsorption(app, order, members, candidates, 8)
	if !ok {
		t.Fatal("no valid absorption found")
	}
	if cand != 2 {
		t.Errorf("absorbed %d, want 2 (the closer candidate)", cand)
	}
	if len(newOrder) != 3 {
		t.Errorf("order = %v", newOrder)
	}
	if longest >= 8 {
		t.Errorf("longest = %v, want < Lmax", longest)
	}
	// With a tight L_max, neither absorption is valid.
	_, _, _, ok = bestAbsorption(app, order, members, candidates, 0.5)
	if ok {
		t.Error("absorption valid under impossible L_max")
	}
}

func TestGrowClusterSingleton(t *testing.T) {
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
		},
		Messages: []netlist.Message{{Src: 0, Dst: 1}},
	}
	adj := app.Adjacency()
	// Node 0's only partner is unavailable: singleton.
	g := growCluster(app, adj, 0, map[netlist.NodeID]bool{0: true}, 10, nil)
	if g.order != nil || len(g.members) != 1 {
		t.Errorf("expected singleton, got order=%v members=%v", g.order, g.members)
	}
}

func TestConventionalRingBound(t *testing.T) {
	// 4 nodes on a unit square, one message 0->1: shorter direction is the
	// single hop of length 1.
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 0)},
			{ID: 1, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(1, 1)},
			{ID: 3, Pos: geom.Pt(0, 1)},
		},
		Messages: []netlist.Message{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
	}
	if got := conventionalRingBound(app); math.Abs(got-1) > 1e-9 {
		t.Errorf("conventionalRingBound = %v, want 1", got)
	}
}
