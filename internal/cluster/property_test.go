package cluster

import (
	"math"
	"testing"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// Structural invariants over randomly generated applications: the paper's
// guarantees must hold for any input, not just the benchmarks.
func TestSynthesizeRandomApplications(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 4 + int(seed)%10
		m := n + int(seed*7)%(n*(n-1)-n) + 1
		if m > n*(n-1) {
			m = n * (n - 1)
		}
		app, err := netlist.Random(n, m, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Synthesize(app, Options{TreeHeight: 4})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, app, err)
		}
		checkSolution(t, app, res)
	}
}

// Growing clusters never orphan a message: every message's endpoints end up
// on a common ring even for pathological shapes (stars, chains, two
// disconnected components).
func TestSynthesizeShapes(t *testing.T) {
	mk := func(name string, n int, msgs [][2]int) *netlist.Application {
		app := &netlist.Application{Name: name}
		cols := 1
		for cols*cols < n {
			cols++
		}
		for i := 0; i < n; i++ {
			app.Nodes = append(app.Nodes, netlist.Node{
				ID: netlist.NodeID(i),
				Pos: netlist.MWD().Nodes[0].Pos.Add(
					float64(i%cols)*0.2, float64(i/cols)*0.2),
			})
		}
		for _, e := range msgs {
			app.Messages = append(app.Messages, netlist.Message{
				Src: netlist.NodeID(e[0]), Dst: netlist.NodeID(e[1]), Bandwidth: 8,
			})
		}
		return app
	}
	cases := []*netlist.Application{
		mk("star-out", 6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}),
		mk("star-in", 6, [][2]int{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}}),
		mk("chain", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}),
		mk("two-components", 8, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5}, {6, 7}}),
		mk("bidir-pair", 2, [][2]int{{0, 1}, {1, 0}}),
		mk("dense-4", 4, [][2]int{
			{0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}, {3, 0},
			{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2},
		}),
	}
	for _, app := range cases {
		if err := app.Validate(); err != nil {
			t.Fatalf("%s: bad fixture: %v", app.Name, err)
		}
		res, err := Synthesize(app, Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		checkSolution(t, app, res)
	}
}

// Two disconnected communication components must never need an inter ring.
func TestDisconnectedComponentsNoInterRing(t *testing.T) {
	app, err := netlist.Clustered(2, 3, 0, 1) // no inter flows
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InterRing != nil {
		t.Error("inter ring built without inter-cluster traffic")
	}
	intra := 0
	for _, r := range res.Rings {
		if r.Kind == ring.Intra {
			intra++
		}
	}
	if intra != 2 {
		t.Errorf("%d intra rings, want 2", intra)
	}
}

// The solution's real longest path can only improve (or stay) when the
// search tree gets taller, across a spread of random apps.
func TestTallerTreeNeverWorse(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		app, err := netlist.Random(8, 14, seed)
		if err != nil {
			t.Fatal(err)
		}
		worst := func(h int) float64 {
			res, err := Synthesize(app, Options{TreeHeight: h})
			if err != nil {
				t.Fatal(err)
			}
			ringByID := make(map[int]*ring.Ring)
			for _, r := range res.Rings {
				ringByID[r.ID] = r
			}
			var w float64
			for i, m := range app.Messages {
				l, err := ringByID[res.RingForMessage[i]].PathLength(app, m.Src, m.Dst)
				if err != nil {
					t.Fatal(err)
				}
				w = math.Max(w, l)
			}
			return w
		}
		if w8, w2 := worst(8), worst(2); w8 > w2+1e-9 {
			t.Errorf("seed %d: h=8 longest path %v worse than h=2's %v", seed, w8, w2)
		}
	}
}

// The initial-vertex cap preserves all structural guarantees; only solution
// quality may differ.
func TestMaxInitialTrials(t *testing.T) {
	app, err := netlist.Random(20, 34, 1)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Synthesize(app, Options{MaxInitialTrials: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, app, capped)
	full, err := Synthesize(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, app, full)
	// The uncapped search considers a superset of initial vertices, so its
	// chosen Lmax is never larger.
	if full.Lmax > capped.Lmax+1e-9 {
		t.Errorf("uncapped Lmax %v above capped %v", full.Lmax, capped.Lmax)
	}
}
