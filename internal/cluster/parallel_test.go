package cluster

import (
	"reflect"
	"testing"

	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/par"
)

// forceProbes ignores the speculative core cap for the duration of a test
// so the prober is exercised even on single-core machines.
func forceProbes(t *testing.T) {
	t.Helper()
	old := resolveSpecWorkers
	resolveSpecWorkers = par.Resolve
	t.Cleanup(func() { resolveSpecWorkers = old })
}

// TestParallelProbesMatchSequential: the construction returned with
// concurrent L_max probes must equal the sequential one field for field on
// every benchmark — same L_max, same clusters, same ring orders, same
// message-to-ring mapping.
func TestParallelProbesMatchSequential(t *testing.T) {
	forceProbes(t)
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			seq, err := Synthesize(app, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				got, err := Synthesize(app, Options{Parallelism: workers})
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("parallelism %d diverged from sequential:\n got %+v\nwant %+v", workers, got, seq)
				}
			}
		})
	}
}

// TestParallelProbeTelemetryMatchesSequential: absorption and iteration
// counters accumulate at consumption time, so they must match the
// sequential run exactly (spec.* diagnostics excluded).
func TestParallelProbeTelemetryMatchesSequential(t *testing.T) {
	forceProbes(t)
	app, err := netlist.Clustered(3, 4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *obs.Recorder {
		rec := obs.New()
		sp := rec.StartSpan("test")
		if _, err := Synthesize(app, Options{Parallelism: workers, Obs: sp}); err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		sp.End()
		return rec
	}
	seq, par := run(1), run(4)
	for _, name := range []string{"cluster.search.iterations", "cluster.absorptions"} {
		if s, g := seq.Counter(name).Value(), par.Counter(name).Value(); s != g {
			t.Errorf("counter %s: parallel %d, sequential %d", name, g, s)
		}
	}
	if par.Counter("cluster.spec.scheduled").Value() == 0 {
		t.Error("parallel run scheduled no speculative probes")
	}
}
