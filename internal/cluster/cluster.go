// Package cluster implements the SRing sub-ring construction method
// (paper Sec. III-A): nodes are clustered by communication requirement and
// physical location, each cluster is connected by one intra-cluster sub-ring
// waveguide, and at most one additional inter-cluster sub-ring connects all
// nodes with cross-cluster traffic — so every node has at most two senders.
//
// The maximum permissible signal-path length L_max is binary-searched over a
// balanced tree of 2^h − 1 equidistant values in [d1, d2], where d1 is the
// maximum Manhattan distance between communicating nodes and d2 the longest
// signal path of a conventional sequential ring. For each candidate L_max,
// sub-rings grow by absorption: a candidate vertex is inserted into the ring
// edge that minimises the resulting longest signal path, rejecting
// insertions that would exceed L_max.
package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/ring"
)

// Options tunes the synthesis.
type Options struct {
	// TreeHeight is the paper's h: the L_max search tree holds 2^h − 1
	// equidistant values. Zero means 6 (63 values).
	TreeHeight int
	// MaxInitialTrials caps how many initial vertices are tried per
	// cluster round. The paper tries every unclustered vertex, which is
	// O(n) growths per round and fine at benchmark scale (n <= 26); for
	// larger networks a cap trades a little quality for a lot of runtime.
	// Zero means unlimited (the paper's behaviour).
	MaxInitialTrials int
	// Parallelism is the number of concurrent L_max feasibility probes:
	// 0 means GOMAXPROCS, 1 means the plain sequential search. Candidate
	// bounds in the current candidate's BST subtree are probed
	// speculatively while the binary search consumes verdicts in its
	// sequential descent order, so the selected L_max and the returned
	// construction are bit-identical to the sequential run.
	Parallelism int
	// InterRingMax bounds how many nodes the classic single inter-ring
	// construction is attempted for. When more nodes than this carry
	// escalated traffic, the escalation set is recursively partitioned
	// into a further level of sub-rings (clusters of clusters) instead of
	// being forced onto one ring. Zero means 32, comfortably above the
	// ≤26-node paper benchmarks, which therefore always take the paper's
	// exact two-level construction.
	InterRingMax int
	// MaxLevels caps the hierarchy depth, counting the cluster level.
	// Zero means 8.
	MaxLevels int
	// Obs, when non-nil, is the parent span under which the construction
	// records its telemetry: the L_max binary search (one child span per
	// evaluated bound with its feasibility verdict), absorption-step
	// counters, and the final cluster/ring counts.
	Obs *obs.Span
	// Registry receives aggregate telemetry: cluster.probe.ns, the
	// distribution of per-candidate feasibility-probe times across runs.
	// Nil means the process-wide obs.Default() registry.
	Registry *obs.Registry
}

// Result is a complete sub-ring construction.
type Result struct {
	// Clusters lists the node sets, sorted by ID within each cluster and
	// by smallest member across clusters. Singleton clusters (nodes whose
	// traffic is all inter-cluster) carry no intra ring.
	Clusters [][]netlist.NodeID
	// Rings holds the intra-cluster sub-rings followed by the escalation
	// levels' inter sub-rings in level order. Ring IDs are dense indices
	// into this slice; each ring's Level is 0 for intra rings and k >= 1
	// for level-k inter rings.
	Rings []*ring.Ring
	// InterRing points at the inter-cluster ring inside Rings when the
	// construction has the paper's two-level shape (exactly one inter
	// ring), nil otherwise.
	InterRing *ring.Ring
	// Levels is the hierarchy depth: 1 when all traffic is intra-cluster,
	// 2 for the paper's cluster + single-inter-ring shape, more when the
	// escalation set was recursively partitioned.
	Levels int
	// Escalated counts the messages carried above level 1, i.e. the
	// traffic the paper's two-level construction could not have placed.
	Escalated int
	// RingForMessage maps each message index to the ID of the ring that
	// carries it.
	RingForMessage []int
	// Lmax is the bound under which the returned solution was constructed
	// (+Inf if only the unbounded fallback succeeded).
	Lmax float64
	// D1, D2 bound the search range.
	D1, D2 float64
	// Evaluated counts how many L_max values the binary search tried.
	Evaluated int
	// Cancelled reports that the L_max binary search was interrupted by
	// context cancellation: the construction is the best (smallest) feasible
	// L_max found before the interrupt, valid but possibly not minimal.
	Cancelled bool
}

// Synthesize runs the SRing clustering with no cancellation hook. See
// SynthesizeContext.
func Synthesize(app *netlist.Application, opt Options) (*Result, error) {
	return SynthesizeContext(context.Background(), app, opt)
}

// SynthesizeContext runs the SRing clustering for the application.
// Cancelling ctx stops the L_max binary search after the candidate being
// evaluated: if a feasible clustering was already found it is returned
// with Result.Cancelled set; otherwise the context error is returned.
func SynthesizeContext(ctx context.Context, app *netlist.Application, opt Options) (*Result, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	h := opt.TreeHeight
	if h == 0 {
		h = 6
	}
	if h < 1 || h > 20 {
		return nil, fmt.Errorf("cluster: tree height %d out of range [1, 20]", h)
	}

	sp := opt.Obs.StartSpan("cluster.synthesize")
	defer sp.End()
	iters := sp.Recorder().Counter("cluster.search.iterations")
	absorb := sp.Recorder().Counter("cluster.absorptions")

	d1 := app.MaxCommDistance()
	d2 := conventionalRingBound(app)
	adj := app.Adjacency()
	sp.SetInt("tree_height", int64(h))
	sp.SetFloat("d1", d1)
	sp.SetFloat("d2", d2)

	// recordBound wraps one consumed candidate verdict in its own span, so
	// the trace shows the whole descent in selection order regardless of
	// when (or on which goroutine) the probe actually ran.
	recordBound := func(lmax float64, sol *Result) {
		iters.Add(1)
		bsp := sp.StartSpan("cluster.bound")
		bsp.SetFloat("lmax", lmax)
		bsp.SetBool("feasible", sol != nil)
		if sol != nil {
			bsp.SetInt("clusters", int64(len(sol.Clusters)))
		}
		bsp.End()
	}

	// tryBound evaluates one L_max candidate inline (the sequential path,
	// also used for the fallback bounds below).
	cfg := opt.hierConfig()
	probeH := obs.OrDefault(opt.Registry).Histogram("cluster.probe.ns")
	tryBound := func(lmax float64) *Result {
		probeStart := time.Now()
		sol := buildSolution(app, adj, lmax, opt.MaxInitialTrials, absorb, cfg)
		probeH.RecordSince(probeStart)
		recordBound(lmax, sol)
		return sol
	}

	// Binary search over the 2^h − 1 equidistant interior values of
	// [d1, d2] (the paper's balanced BST descent: valid -> left child,
	// invalid -> right child).
	count := 1<<h - 1
	valueAt := func(k int) float64 { // k in 1..count
		return d1 + float64(k)*(d2-d1)/float64(int(1)<<h)
	}
	var pb *prober
	if workers := resolveSpecWorkers(opt.Parallelism); workers > 1 {
		pb = newProber(app, adj, opt.MaxInitialTrials, cfg, valueAt, workers, probeH)
		defer pb.close(sp.Recorder())
	}
	var best *Result
	cancelled := false
	evaluated := 0
	lo, hi := 1, count
	for lo <= hi {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		mid := (lo + hi) / 2
		lmax := valueAt(mid)
		evaluated++
		var sol *Result
		if pb != nil {
			pb.speculate(lo, hi)
			var absorbs int64
			sol, absorbs = pb.get(mid)
			absorb.Add(absorbs)
			recordBound(lmax, sol)
		} else {
			sol = tryBound(lmax)
		}
		if sol != nil {
			sol.Lmax = lmax
			best = sol
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		if cancelled {
			// Nothing feasible yet: there is no incumbent to degrade to.
			return nil, fmt.Errorf("cluster: %w", ctx.Err())
		}
		// Right edge of the range, then the unbounded fallback (always
		// feasible: every communication component collapses into one
		// cluster and no inter ring is needed).
		evaluated++
		if sol := tryBound(d2); sol != nil {
			sol.Lmax = d2
			best = sol
		} else {
			evaluated++
			sol = tryBound(math.Inf(1))
			if sol == nil {
				return nil, fmt.Errorf("cluster: no feasible clustering for %s (internal error)", app.Name)
			}
			sol.Lmax = math.Inf(1)
			best = sol
		}
	}
	best.D1, best.D2 = d1, d2
	best.Evaluated = evaluated
	best.Cancelled = cancelled
	sp.SetInt("evaluated", int64(evaluated))
	sp.SetInt("clusters", int64(len(best.Clusters)))
	sp.SetInt("rings", int64(len(best.Rings)))
	sp.SetBool("inter_ring", best.InterRing != nil)
	sp.SetInt("levels", int64(best.Levels))
	sp.SetFloat("lmax", best.Lmax)
	sp.SetBool("cancelled", cancelled)
	// Aggregate hierarchy telemetry, recorded once from the selected
	// solution so the counters are deterministic at any Parallelism:
	// cluster.level.depth   — hierarchy depth distribution across runs;
	// cluster.level.rings   — inter rings above level 1 (0 for the paper's
	//                         two-level shape);
	// cluster.level.escalated — messages carried above level 1.
	reg := obs.OrDefault(opt.Registry)
	reg.Histogram("cluster.level.depth").Record(int64(best.Levels))
	deep := 0
	for _, r := range best.Rings {
		if r.Level >= 2 {
			deep++
		}
	}
	reg.Counter("cluster.level.rings").Add(int64(deep))
	reg.Counter("cluster.level.escalated").Add(int64(best.Escalated))
	return best, nil
}

// conventionalRingBound returns d2: the longest signal path if all active
// nodes are connected sequentially as in a conventional dual-direction ring
// router, taking each message's shorter direction.
func conventionalRingBound(app *netlist.Application) float64 {
	order := app.ActiveNodes()
	cw := &ring.Ring{ID: 0, Order: order}
	ccw := cw.Reversed()
	var worst float64
	for _, m := range app.Messages {
		a, err1 := cw.PathLength(app, m.Src, m.Dst)
		b, err2 := ccw.PathLength(app, m.Src, m.Dst)
		if err1 != nil || err2 != nil {
			continue // inactive endpoints cannot occur: both sides messaged
		}
		if l := math.Min(a, b); l > worst {
			worst = l
		}
	}
	return worst
}

// ringOrderLongest evaluates a candidate node order carrying the given
// messages: the longest directed path length, minimised over the two
// traversal directions. It returns the longest path and whether the order
// should be reversed to achieve it.
//
// Implemented with prefix sums over the cycle (O(len + msgs)); this is the
// inner loop of the absorption search.
func ringOrderLongest(app *netlist.Application, order []netlist.NodeID, msgs []netlist.Message) (longest float64, reversed bool) {
	if len(msgs) == 0 {
		return 0, false
	}
	n := len(order)
	idx := make(map[netlist.NodeID]int, n)
	for i, id := range order {
		idx[id] = i
	}
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		next := order[(i+1)%n]
		prefix[i+1] = prefix[i] + app.Pos(order[i]).Manhattan(app.Pos(next))
	}
	perimeter := prefix[n]
	var lf, lr float64
	for _, m := range msgs {
		si, ok1 := idx[m.Src]
		di, ok2 := idx[m.Dst]
		if !ok1 || !ok2 || si == di {
			return math.Inf(1), false
		}
		fwd := prefix[di] - prefix[si]
		if fwd < 0 {
			fwd += perimeter
		}
		lf = math.Max(lf, fwd)
		lr = math.Max(lr, perimeter-fwd)
	}
	if lr < lf {
		return lr, true
	}
	return lf, false
}

// messagesWithin returns the app messages whose endpoints both lie in set.
func messagesWithin(app *netlist.Application, set map[netlist.NodeID]bool) []netlist.Message {
	var out []netlist.Message
	for _, m := range app.Messages {
		if set[m.Src] && set[m.Dst] {
			out = append(out, m)
		}
	}
	return out
}

// grown is a grown sub-ring candidate.
type grown struct {
	order   []netlist.NodeID
	members map[netlist.NodeID]bool
	longest float64
}

// growCluster grows an intra-cluster sub-ring from the initial vertex under
// lmax, absorbing communication-adjacent available vertices. A vertex with
// no available neighbours yields a singleton (order nil).
func growCluster(app *netlist.Application, adj map[netlist.NodeID][]netlist.NodeID,
	initial netlist.NodeID, avail map[netlist.NodeID]bool, lmax float64, absorb *obs.Counter) grown {

	members := map[netlist.NodeID]bool{initial: true}
	// Nearest available communication partner forms the initial cluster.
	var nearest netlist.NodeID = -1
	bestDist := math.Inf(1)
	for _, u := range adj[initial] {
		if !avail[u] {
			continue
		}
		d := app.Pos(initial).Manhattan(app.Pos(u))
		if d < bestDist || (d == bestDist && (nearest < 0 || u < nearest)) {
			nearest, bestDist = u, d
		}
	}
	if nearest < 0 {
		return grown{members: members}
	}
	members[nearest] = true
	order := []netlist.NodeID{initial, nearest}
	longest, _ := ringOrderLongest(app, order, messagesWithin(app, members))
	if longest > lmax {
		// Cannot even pair with the nearest partner: singleton. (Possible
		// only for L_max below d1, which the search range excludes, but we
		// guard anyway.)
		return grown{members: map[netlist.NodeID]bool{initial: true}}
	}

	candidates := make(map[netlist.NodeID]bool)
	addCandidates := func(v netlist.NodeID) {
		for _, u := range adj[v] {
			if avail[u] && !members[u] {
				candidates[u] = true
			}
		}
	}
	addCandidates(initial)
	addCandidates(nearest)

	for len(candidates) > 0 {
		order2, longest2, cand, ok := bestAbsorption(app, order, members, candidates, lmax)
		if !ok {
			break
		}
		order = order2
		longest = longest2
		members[cand] = true
		absorb.Add(1)
		delete(candidates, cand)
		addCandidates(cand)
		for u := range candidates {
			if members[u] {
				delete(candidates, u)
			}
		}
	}
	return grown{order: order, members: members, longest: longest}
}

// hierConfig resolves the multi-level options for buildSolution.
type hierConfig struct {
	interMax  int // escalation sets larger than this recurse into another level
	maxLevels int // hierarchy depth cap, counting the cluster level
}

func (o Options) hierConfig() hierConfig {
	cfg := hierConfig{interMax: o.InterRingMax, maxLevels: o.MaxLevels}
	if cfg.interMax == 0 {
		cfg.interMax = defaultInterRingMax
	}
	if cfg.maxLevels == 0 {
		cfg.maxLevels = defaultMaxLevels
	}
	return cfg
}

// defaultInterRingMax is comfortably above the ≤26-node paper benchmarks, so
// they always take the paper's exact two-level construction; the 64-node
// scale apps typically do too, while 128 nodes and up recurse.
const (
	defaultInterRingMax = 32
	defaultMaxLevels    = 8
)

// levelGroups is one escalation level of the hierarchy: the indices of the
// messages that reached it (not carried by any lower level) and the node
// groups, each with its grown sub-ring, formed there.
type levelGroups struct {
	pool   []int
	groups []grown
}

// growLevel partitions the given node set into grown sub-rings under lmax:
// rounds of trying each available vertex as the initial vertex and keeping
// the best grown ring (the paper's cluster-formation loop, reused verbatim
// at every hierarchy level).
func growLevel(app *netlist.Application, adj map[netlist.NodeID][]netlist.NodeID,
	nodes map[netlist.NodeID]bool, lmax float64, maxTrials int, absorb *obs.Counter) []grown {

	avail := make(map[netlist.NodeID]bool, len(nodes))
	for id := range nodes {
		avail[id] = true
	}
	var out []grown
	for len(avail) > 0 {
		ids := make([]netlist.NodeID, 0, len(avail))
		for id := range avail {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		// Try each available vertex as the initial vertex; keep the grown
		// cluster with the shortest longest signal path (ties: larger
		// cluster, then smaller initial ID). MaxInitialTrials caps the
		// candidate set for large networks.
		trials := sampleTrials(ids, maxTrials)
		var best grown
		haveBest := false
		for _, v := range trials {
			g := growCluster(app, adj, v, avail, lmax, absorb)
			if !haveBest || better(g, best) {
				best = g
				haveBest = true
			}
		}
		out = append(out, best)
		for m := range best.members {
			delete(avail, m)
		}
	}
	return out
}

// sampleTrials caps the initial-vertex candidate list with a deterministic
// spread over the available vertices. maxTrials <= 0 means no cap.
func sampleTrials(ids []netlist.NodeID, maxTrials int) []netlist.NodeID {
	if maxTrials <= 0 || len(ids) <= maxTrials {
		return ids
	}
	sampled := make([]netlist.NodeID, 0, maxTrials)
	step := float64(len(ids)) / float64(maxTrials)
	for k := 0; k < maxTrials; k++ {
		sampled = append(sampled, ids[int(float64(k)*step)])
	}
	return sampled
}

// groupIndex maps every member of every group to its group's index.
func groupIndex(groups []grown) map[netlist.NodeID]int {
	of := make(map[netlist.NodeID]int)
	for gi, g := range groups {
		for m := range g.members {
			of[m] = gi
		}
	}
	return of
}

// buildSolution attempts a full clustering under lmax. It returns nil if
// the escalation levels cannot all be closed (the paper's "invalid
// solution": move L_max to its right child).
//
// Level 0 is the paper's cluster formation over all active nodes. Messages
// crossing clusters escalate to level 1; while the escalated node set is
// larger than cfg.interMax the set is recursively partitioned into another
// level of sub-rings by the same absorption growth (clusters of clusters),
// with the messages still crossing groups escalating further. Once the set
// fits — or the recursion stops making progress or hits cfg.maxLevels — a
// single terminal ring over all remaining nodes closes the hierarchy, the
// paper's inter-ring construction verbatim. Every node therefore sends on
// at most one ring per level it appears in, the multi-level extension of
// the paper's ≤2-senders invariant.
func buildSolution(app *netlist.Application, adj map[netlist.NodeID][]netlist.NodeID, lmax float64, maxTrials int, absorb *obs.Counter, cfg hierConfig) *Result {
	active := make(map[netlist.NodeID]bool)
	for _, id := range app.ActiveNodes() {
		active[id] = true
	}
	clusters := growLevel(app, adj, active, lmax, maxTrials, absorb)
	clusterOf := groupIndex(clusters)

	// Messages crossing clusters escalate to level 1.
	var pool []int
	for i, m := range app.Messages {
		if clusterOf[m.Src] != clusterOf[m.Dst] {
			pool = append(pool, i)
		}
	}

	var upper []levelGroups
	for level := 1; len(pool) > 0; level++ {
		nodes := make(map[netlist.NodeID]bool)
		for _, i := range pool {
			nodes[app.Messages[i].Src] = true
			nodes[app.Messages[i].Dst] = true
		}
		if len(nodes) <= cfg.interMax || level >= cfg.maxLevels {
			order := buildInterRing(app, nodes, lmax, maxTrials, absorb)
			if order == nil {
				return nil // no valid initial vertex: solution invalid
			}
			members := make(map[netlist.NodeID]bool, len(order))
			for _, id := range order {
				members[id] = true
			}
			upper = append(upper, levelGroups{pool: pool, groups: []grown{{order: order, members: members}}})
			break
		}
		// Too many escalated nodes for one ring: partition them into a
		// further level of sub-rings and escalate what still crosses.
		groups := growLevel(app, adj, nodes, lmax, maxTrials, absorb)
		groupOf := groupIndex(groups)
		var next []int
		for _, i := range pool {
			m := app.Messages[i]
			if groupOf[m.Src] != groupOf[m.Dst] {
				next = append(next, i)
			}
		}
		if len(next) == len(pool) {
			// No message was absorbed at this level: grouping made no
			// progress, so fall back to the terminal single ring.
			order := buildInterRing(app, nodes, lmax, maxTrials, absorb)
			if order == nil {
				return nil
			}
			members := make(map[netlist.NodeID]bool, len(order))
			for _, id := range order {
				members[id] = true
			}
			upper = append(upper, levelGroups{pool: pool, groups: []grown{{order: order, members: members}}})
			break
		}
		upper = append(upper, levelGroups{pool: pool, groups: groups})
		pool = next
	}

	return assembleResult(app, clusters, clusterOf, upper)
}

// better orders grown clusters: shorter longest path wins, then more
// members, then smaller smallest ID.
func better(a, b grown) bool {
	if a.longest != b.longest {
		return a.longest < b.longest
	}
	if len(a.members) != len(b.members) {
		return len(a.members) > len(b.members)
	}
	return minID(a.members) < minID(b.members)
}

func minID(set map[netlist.NodeID]bool) netlist.NodeID {
	min := netlist.NodeID(math.MaxInt32)
	for id := range set {
		if id < min {
			min = id
		}
	}
	return min
}

// buildInterRing constructs the inter-cluster sub-ring over all interNodes.
// Every node in the set must be absorbed; each is tried as the initial
// vertex and the valid ring with the shortest longest path wins. Returns
// nil if no initial vertex yields a valid complete ring.
func buildInterRing(app *netlist.Application, interNodes map[netlist.NodeID]bool, lmax float64, maxTrials int, absorb *obs.Counter) []netlist.NodeID {
	ids := make([]netlist.NodeID, 0, len(interNodes))
	for id := range interNodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) < 2 {
		return nil
	}

	interMsgs := make(map[netlist.NodeID][]netlist.NodeID) // adjacency in the inter graph
	for _, m := range app.Messages {
		if interNodes[m.Src] && interNodes[m.Dst] {
			interMsgs[m.Src] = append(interMsgs[m.Src], m.Dst)
			interMsgs[m.Dst] = append(interMsgs[m.Dst], m.Src)
		}
	}

	trials := ids
	if maxTrials > 0 && len(trials) > maxTrials {
		sampled := make([]netlist.NodeID, 0, maxTrials)
		step := float64(len(trials)) / float64(maxTrials)
		for k := 0; k < maxTrials; k++ {
			sampled = append(sampled, trials[int(float64(k)*step)])
		}
		trials = sampled
	}
	var bestOrder []netlist.NodeID
	bestLongest := math.Inf(1)
	for _, v := range trials {
		order, longest, ok := growInter(app, interMsgs, v, ids, lmax, absorb)
		if ok && longest < bestLongest {
			bestOrder, bestLongest = order, longest
		}
	}
	return bestOrder
}

// growInter grows the inter ring from initial, absorbing adjacent inter
// nodes first and falling back to the remaining ones, until all inter nodes
// are on the ring or no valid absorption exists.
func growInter(app *netlist.Application, adj map[netlist.NodeID][]netlist.NodeID,
	initial netlist.NodeID, all []netlist.NodeID, lmax float64, absorb *obs.Counter) ([]netlist.NodeID, float64, bool) {

	members := map[netlist.NodeID]bool{initial: true}
	remaining := make(map[netlist.NodeID]bool)
	for _, id := range all {
		if id != initial {
			remaining[id] = true
		}
	}
	// Nearest partner (adjacent preferred, else nearest remaining).
	pick := func(from []netlist.NodeID) (netlist.NodeID, bool) {
		var nearest netlist.NodeID = -1
		bestDist := math.Inf(1)
		for _, u := range from {
			if !remaining[u] {
				continue
			}
			d := app.Pos(initial).Manhattan(app.Pos(u))
			if d < bestDist || (d == bestDist && (nearest < 0 || u < nearest)) {
				nearest, bestDist = u, d
			}
		}
		return nearest, nearest >= 0
	}
	first, ok := pick(adj[initial])
	if !ok {
		first, ok = pick(all)
		if !ok {
			return nil, 0, false
		}
	}
	members[first] = true
	delete(remaining, first)
	order := []netlist.NodeID{initial, first}
	longest, _ := ringOrderLongest(app, order, messagesWithin(app, members))
	if longest > lmax {
		return nil, 0, false
	}

	for len(remaining) > 0 {
		// Candidates: remaining nodes adjacent to a member; if none, all
		// remaining (the inter graph may be disconnected, but a single
		// ring must still carry everything).
		candidates := make(map[netlist.NodeID]bool)
		for m := range members {
			for _, u := range adj[m] {
				if remaining[u] {
					candidates[u] = true
				}
			}
		}
		if len(candidates) == 0 {
			for u := range remaining {
				candidates[u] = true
			}
		}
		order2, longest2, cand, ok := bestAbsorption(app, order, members, candidates, lmax)
		if !ok {
			return nil, 0, false // stuck before absorbing everyone
		}
		order = order2
		longest = longest2
		members[cand] = true
		absorb.Add(1)
		delete(remaining, cand)
	}
	return order, longest, true
}

// assembleResult freezes clusters and the escalation levels into a Result,
// fixing each ring's direction to the one minimising its longest signal
// path over the messages it carries.
func assembleResult(app *netlist.Application, clusters []grown, clusterOf map[netlist.NodeID]int, upper []levelGroups) *Result {
	res := &Result{}
	ringID := 0
	intraRingOf := make(map[int]int) // cluster index -> ring ID
	for ci, g := range clusters {
		memberList := make([]netlist.NodeID, 0, len(g.members))
		for m := range g.members {
			memberList = append(memberList, m)
		}
		sort.Slice(memberList, func(i, j int) bool { return memberList[i] < memberList[j] })
		res.Clusters = append(res.Clusters, memberList)
		if len(g.order) >= 2 {
			order := g.order
			if _, rev := ringOrderLongest(app, order, messagesWithin(app, g.members)); rev {
				order = (&ring.Ring{Order: order}).Reversed().Order
			}
			res.Rings = append(res.Rings, &ring.Ring{ID: ringID, Kind: ring.Intra, Order: order})
			intraRingOf[ci] = ringID
			ringID++
		} else {
			intraRingOf[ci] = -1
		}
	}
	sort.Slice(res.Clusters, func(i, j int) bool { return res.Clusters[i][0] < res.Clusters[j][0] })

	// Escalation-level rings, level by level in group-formation order. A
	// group ring materialises only if it carries at least one escalated
	// message; a group whose members reached it only through already-carried
	// traffic would waste a sender per member.
	type upperRing struct {
		members map[netlist.NodeID]bool
		ring    *ring.Ring
	}
	levels := make([][]upperRing, len(upper))
	for li, lv := range upper {
		for _, g := range lv.groups {
			if len(g.order) < 2 {
				continue
			}
			carried := poolWithin(app, lv.pool, g.members)
			if len(carried) == 0 {
				continue
			}
			order := g.order
			if _, rev := ringOrderLongest(app, order, carried); rev {
				order = (&ring.Ring{Order: order}).Reversed().Order
			}
			r := &ring.Ring{ID: ringID, Kind: ring.Inter, Level: li + 1, Order: order}
			res.Rings = append(res.Rings, r)
			levels[li] = append(levels[li], upperRing{members: g.members, ring: r})
			ringID++
		}
	}
	if len(upper) == 1 && len(levels[0]) == 1 {
		res.InterRing = levels[0][0].ring
	}

	res.RingForMessage = make([]int, len(app.Messages))
	for i, m := range app.Messages {
		if clusterOf[m.Src] == clusterOf[m.Dst] {
			res.RingForMessage[i] = intraRingOf[clusterOf[m.Src]]
			continue
		}
		// Carried at the lowest level where both endpoints share a group.
		res.RingForMessage[i] = -1 // cannot happen: the terminal ring holds everyone
		for _, refs := range levels {
			for _, ref := range refs {
				if ref.members[m.Src] && ref.members[m.Dst] {
					res.RingForMessage[i] = ref.ring.ID
					break
				}
			}
			if res.RingForMessage[i] >= 0 {
				break
			}
		}
		if rid := res.RingForMessage[i]; rid >= 0 && res.Rings[rid].Level >= 2 {
			res.Escalated++
		}
	}
	res.Levels = 1 + len(upper)
	return res
}

// poolWithin returns the pool messages (by index) whose endpoints both lie
// in set, in message order.
func poolWithin(app *netlist.Application, pool []int, set map[netlist.NodeID]bool) []netlist.Message {
	var out []netlist.Message
	for _, i := range pool {
		m := app.Messages[i]
		if set[m.Src] && set[m.Dst] {
			out = append(out, m)
		}
	}
	return out
}
