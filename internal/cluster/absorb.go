package cluster

import (
	"math"
	"sort"

	"sring/internal/netlist"
)

// Incremental absorption. The paper evaluates every candidate vertex at
// every ring position by rescanning the whole trial ring with
// ringOrderLongest — O(len + msgs) per trial, O(n·(n+m)) per absorption
// step. Inserting a vertex c into segment pos only changes path lengths in
// a structured way, though: the segment (a, b) = (order[pos], order[pos+1])
// grows by delta = d(a,c) + d(c,b) − d(a,b), a message's forward path grows
// by delta exactly when its arc covers segment pos (its reverse path grows
// by delta exactly when it does not), and the only genuinely new paths are
// the candidate's own messages. absorbScratch precomputes, once per
// absorption step, per-segment maxima over the member messages; each
// (candidate, position) trial is then evaluated in O(deg(c)) instead of
// O(n + m).
//
// The incremental value is mathematically exact but can differ from the
// full rescan in the last floating-point bits (the prefix sums associate
// differently). To keep the selected absorptions bit-identical to the
// paper algorithm — the golden Table I tests pin its exact output — the
// incremental value is used only to prune: trials whose incremental value
// exceeds the current bound by more than absorbEps are skipped, and every
// surviving trial is re-evaluated with the exact rescan before it can win.
const absorbEps = 1e-9

// absorbScratch holds the per-segment aggregates for the current ring order
// and its member-message set.
type absorbScratch struct {
	app    *netlist.Application
	order  []netlist.NodeID
	idx    map[netlist.NodeID]int
	prefix []float64
	perim  float64
	// Per segment j (between order[j] and order[j+1]):
	//   coverFwd[j]: max forward length over messages whose arc covers j
	//                (these grow by delta when inserting into j);
	//   freeFwd[j]:  max forward length over messages missing j (unchanged);
	//   coverRev[j]: max reverse length over messages missing j (grow by
	//                delta in the reversed traversal);
	//   freeRev[j]:  max reverse length over messages covering j.
	// Cover maxima start at -Inf (empty max must not contribute after
	// +delta); free maxima start at 0 to match ringOrderLongest's zero
	// floor over an empty message set.
	coverFwd, freeFwd []float64
	coverRev, freeRev []float64
}

func prepareAbsorb(app *netlist.Application, order []netlist.NodeID, msgs []netlist.Message) *absorbScratch {
	n := len(order)
	sc := &absorbScratch{
		app:      app,
		order:    order,
		idx:      make(map[netlist.NodeID]int, n),
		prefix:   make([]float64, n+1),
		coverFwd: make([]float64, n),
		freeFwd:  make([]float64, n),
		coverRev: make([]float64, n),
		freeRev:  make([]float64, n),
	}
	for i, id := range order {
		sc.idx[id] = i
	}
	for i := 0; i < n; i++ {
		next := order[(i+1)%n]
		sc.prefix[i+1] = sc.prefix[i] + app.Pos(order[i]).Manhattan(app.Pos(next))
	}
	sc.perim = sc.prefix[n]
	for j := 0; j < n; j++ {
		sc.coverFwd[j] = math.Inf(-1)
		sc.coverRev[j] = math.Inf(-1)
	}
	for _, m := range msgs {
		si := sc.idx[m.Src]
		di := sc.idx[m.Dst]
		fwd := sc.prefix[di] - sc.prefix[si]
		if fwd < 0 {
			fwd += sc.perim
		}
		rev := sc.perim - fwd
		for j := 0; j < n; j++ {
			covered := ((j-si)%n+n)%n < ((di-si)%n+n)%n
			if covered {
				if fwd > sc.coverFwd[j] {
					sc.coverFwd[j] = fwd
				}
				if rev > sc.freeRev[j] {
					sc.freeRev[j] = rev
				}
			} else {
				if fwd > sc.freeFwd[j] {
					sc.freeFwd[j] = fwd
				}
				if rev > sc.coverRev[j] {
					sc.coverRev[j] = rev
				}
			}
		}
	}
	return sc
}

// wrap maps a prefix-sum difference onto [0, perim).
func (sc *absorbScratch) wrap(v float64) float64 {
	if v < 0 {
		return v + sc.perim
	}
	return v
}

// insertionLongest returns the longest signal path (minimised over the two
// traversal directions) of the ring obtained by inserting candidate c into
// segment pos, where cTo / cFrom hold the ring positions of the members c
// sends to / receives from. Exact up to floating-point association order.
func (sc *absorbScratch) insertionLongest(c netlist.NodeID, pos int, cTo, cFrom []int) float64 {
	n := len(sc.order)
	a := sc.order[pos]
	b := sc.order[(pos+1)%n]
	cPos := sc.app.Pos(c)
	dac := sc.app.Pos(a).Manhattan(cPos)
	dcb := cPos.Manhattan(sc.app.Pos(b))
	delta := dac + dcb - (sc.prefix[pos+1] - sc.prefix[pos])
	newPerim := sc.perim + delta

	lf := sc.coverFwd[pos] + delta
	if sc.freeFwd[pos] > lf {
		lf = sc.freeFwd[pos]
	}
	lr := sc.coverRev[pos] + delta
	if sc.freeRev[pos] > lr {
		lr = sc.freeRev[pos]
	}
	bi := (pos + 1) % n
	for _, xi := range cTo { // c -> member at position xi
		f := dcb + sc.wrap(sc.prefix[xi]-sc.prefix[bi])
		if f > lf {
			lf = f
		}
		if r := newPerim - f; r > lr {
			lr = r
		}
	}
	for _, xi := range cFrom { // member at position xi -> c
		f := sc.wrap(sc.prefix[pos]-sc.prefix[xi]) + dac
		if f > lf {
			lf = f
		}
		if r := newPerim - f; r > lr {
			lr = r
		}
	}
	if lr < lf {
		return lr
	}
	return lf
}

// bestAbsorption tries to absorb each candidate at each ring position
// (replacing segment (order[i], order[i+1]) with two segments through the
// candidate) and returns the valid absorption minimising the longest signal
// path. Trials are screened with the incremental evaluator and only
// survivors are re-scanned exactly, so the selection is bit-identical to
// evaluating every trial with ringOrderLongest.
func bestAbsorption(app *netlist.Application, order []netlist.NodeID,
	members, candidates map[netlist.NodeID]bool, lmax float64) (newOrder []netlist.NodeID, longest float64, cand netlist.NodeID, ok bool) {

	sortedCands := make([]netlist.NodeID, 0, len(candidates))
	for c := range candidates {
		sortedCands = append(sortedCands, c)
	}
	sort.Slice(sortedCands, func(i, j int) bool { return sortedCands[i] < sortedCands[j] })

	sc := prepareAbsorb(app, order, messagesWithin(app, members))
	// Ring positions of each candidate's messages to and from members.
	cTo := make(map[netlist.NodeID][]int)
	cFrom := make(map[netlist.NodeID][]int)
	for _, m := range app.Messages {
		if candidates[m.Src] && members[m.Dst] {
			cTo[m.Src] = append(cTo[m.Src], sc.idx[m.Dst])
		}
		if members[m.Src] && candidates[m.Dst] {
			cFrom[m.Dst] = append(cFrom[m.Dst], sc.idx[m.Src])
		}
	}

	longest = math.Inf(1)
	for _, c := range sortedCands {
		var msgs []netlist.Message // lazily: messages within members ∪ {c}
		for pos := 0; pos < len(order); pos++ {
			bound := lmax
			if longest < bound {
				bound = longest
			}
			if sc.insertionLongest(c, pos, cTo[c], cFrom[c]) > bound+absorbEps {
				continue
			}
			if msgs == nil {
				members[c] = true
				msgs = messagesWithin(app, members)
				delete(members, c)
			}
			trial := make([]netlist.NodeID, 0, len(order)+1)
			trial = append(trial, order[:pos+1]...)
			trial = append(trial, c)
			trial = append(trial, order[pos+1:]...)
			l, _ := ringOrderLongest(app, trial, msgs)
			if l <= lmax && l < longest {
				longest = l
				newOrder = trial
				cand = c
				ok = true
			}
		}
	}
	return newOrder, longest, cand, ok
}
