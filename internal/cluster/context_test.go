package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"sring/internal/netlist"
)

// flipCtx reports Canceled from its nth Err() call onward — a deterministic
// way to cancel after exactly n binary-search iterations. Done() is nil (the
// search polls Err directly), and once flipped it stays flipped, preserving
// the context contract.
type flipCtx struct {
	context.Context
	calls   atomic.Int32
	after   int32
	flipped atomic.Bool
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after || c.flipped.Load() {
		c.flipped.Store(true)
		return context.Canceled
	}
	return nil
}

// A cancellation mid-search keeps the best feasible construction found so
// far, flagged Cancelled, instead of failing.
func TestSynthesizeContextKeepsBestOnCancel(t *testing.T) {
	full, err := Synthesize(netlist.MWD(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let three L_max probes run, then cancel. The binary search needs
	// h = 6 iterations to converge, so the cancel strikes mid-descent.
	ctx := &flipCtx{Context: context.Background(), after: 3}
	res, err := SynthesizeContext(ctx, netlist.MWD(), Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("cancelled search returned error %v, want best-so-far result", err)
	}
	if !res.Cancelled {
		t.Error("Result.Cancelled not set")
	}
	if len(res.Rings) == 0 {
		t.Error("cancelled result has no rings")
	}
	// The interrupted search saw a prefix of the candidate bounds, so its
	// L_max can only be as good as the full search's — never better.
	if res.Lmax < full.Lmax-1e-9 {
		t.Errorf("cancelled Lmax %v beats full search %v", res.Lmax, full.Lmax)
	}
}

// A context cancelled before any feasible bound is found propagates the
// context error.
func TestSynthesizeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SynthesizeContext(ctx, netlist.MWD(), Options{Parallelism: 1})
	if res != nil {
		t.Errorf("pre-cancelled search returned %v, want nil", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}
