package cluster

import (
	"sync"
	"time"

	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/par"
)

// resolveSpecWorkers caps speculative probe workers at the core count (see
// par.ResolveSpeculative): look-ahead probes on a machine with no spare
// cores execute serially and steal time from the search's critical path.
// A var so tests can substitute par.Resolve and exercise the prober on
// single-core machines.
var resolveSpecWorkers = par.ResolveSpeculative

// probe is one speculative buildSolution run for a candidate L_max index.
// The goroutine writes sol and its local absorption count, then closes done;
// the channel close orders those writes before the search loop's reads.
type probe struct {
	done    chan struct{}
	sol     *Result
	absorbs obs.Counter
}

// prober runs L_max feasibility probes concurrently while the binary search
// keeps its exact sequential descent. buildSolution is a pure function of
// (app, adj, lmax, maxTrials, cfg), so probing a candidate early cannot change
// its verdict — only when it is computed. At every search step the prober
// speculatively starts the probes the descent could visit next (the
// candidate's BST subtree, breadth-first: both children before either
// grandchild), and the search consumes verdicts strictly in its own order,
// so the selected L_max, the absorption totals and every recorded bound
// span match the sequential run exactly. Only the cluster.spec.* counters
// are timing-dependent.
type prober struct {
	app       *netlist.Application
	adj       map[netlist.NodeID][]netlist.NodeID
	maxTrials int
	cfg       hierConfig
	valueAt   func(k int) float64
	workers   int
	probeH    *obs.Histogram // cluster.probe.ns, shared with the inline path

	wg        sync.WaitGroup
	probes    map[int]*probe // candidate index -> run; search goroutine only
	scheduled int64
	consumed  int64
}

func newProber(app *netlist.Application, adj map[netlist.NodeID][]netlist.NodeID,
	maxTrials int, cfg hierConfig, valueAt func(k int) float64, workers int, probeH *obs.Histogram) *prober {
	return &prober{
		app:       app,
		adj:       adj,
		maxTrials: maxTrials,
		cfg:       cfg,
		valueAt:   valueAt,
		workers:   workers,
		probeH:    probeH,
		probes:    map[int]*probe{},
	}
}

// launch starts the probe for candidate k unless it is already running.
func (pb *prober) launch(k int) {
	if _, ok := pb.probes[k]; ok {
		return
	}
	pr := &probe{done: make(chan struct{})}
	pb.probes[k] = pr
	pb.scheduled++
	pb.wg.Add(1)
	go func() {
		defer pb.wg.Done()
		defer close(pr.done)
		probeStart := time.Now()
		pr.sol = buildSolution(pb.app, pb.adj, pb.valueAt(k), pb.maxTrials, &pr.absorbs, pb.cfg)
		pb.probeH.RecordSince(probeStart)
	}()
}

// speculate starts probes for up to `workers` candidates reachable from the
// current search interval [lo, hi]: the interval's mid (the value the search
// needs right now) plus its possible descendants in BST breadth-first
// order, so the likeliest next candidates go first.
func (pb *prober) speculate(lo, hi int) {
	queue := [][2]int{{lo, hi}}
	for budget := pb.workers; budget > 0 && len(queue) > 0; {
		iv := queue[0]
		queue = queue[1:]
		if iv[0] > iv[1] {
			continue
		}
		mid := (iv[0] + iv[1]) / 2
		pb.launch(mid)
		budget--
		queue = append(queue, [2]int{iv[0], mid - 1}, [2]int{mid + 1, iv[1]})
	}
}

// get blocks until candidate k's probe finishes and returns its solution
// plus the absorption count its growth performed. The caller adds the count
// to the shared counter, so absorption telemetry accumulates in consumption
// order — identical to the sequential run; wasted probes contribute nothing.
func (pb *prober) get(k int) (*Result, int64) {
	pr, ok := pb.probes[k]
	if !ok {
		// Defensive: speculate always launches the current mid first, but
		// solve inline rather than rely on that.
		var local obs.Counter
		return buildSolution(pb.app, pb.adj, pb.valueAt(k), pb.maxTrials, &local, pb.cfg), local.Value()
	}
	<-pr.done
	pb.consumed++
	return pr.sol, pr.absorbs.Value()
}

// close waits for outstanding speculative probes and flushes the
// speculation diagnostics.
func (pb *prober) close(rec *obs.Recorder) {
	pb.wg.Wait()
	rec.Add("cluster.spec.scheduled", pb.scheduled)
	rec.Add("cluster.spec.wasted", pb.scheduled-pb.consumed)
}
