// Package xring implements the XRing baseline (Zheng et al., DATE'23) as a
// behavioural model: the sequential dual ring is augmented with optical
// switching elements (OSEs) that create express chords for the worst signal
// paths, shortening them toward their Manhattan distance; redundant senders
// are pruned (a node only drives the waveguides its messages actually use);
// and the wavelength assignment packs aggressively to minimise wavelength
// count.
//
// The chord waveguides physically cross the base rings, so the crossing
// loss the layout engine counts on chord paths models the OSE insertion
// penalty. XRing's own PDN adds one distribution stage per feed
// (pdn.StyleXRing), which is why it passes the most splitters in the
// paper's Table I despite using the fewest wavelengths.
package xring

import (
	"context"
	"fmt"
	"sort"

	"sring/internal/baseline"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

func init() {
	pipeline.Register("XRing", Construct)
}

// Construct is the XRing pipeline constructor: the dual ring plus express
// chords for the worst signal paths (capped by Options.MaxChords), with
// the method's pack-aggressively wavelength objective. The chord search is
// a short deterministic loop, so ctx is only honoured by the stages
// downstream.
func Construct(_ context.Context, app *netlist.Application, opt pipeline.Options, _ *obs.Span) (*pipeline.Construction, error) {
	cw, ccw, err := baseline.DualRing(app)
	if err != nil {
		return nil, fmt.Errorf("xring: %w", err)
	}
	paths, err := baseline.RouteShorter(app, cw, ccw)
	if err != nil {
		return nil, fmt.Errorf("xring: %w", err)
	}
	rings := []*ring.Ring{cw, ccw}

	maxChords := opt.MaxChords
	if maxChords == 0 {
		maxChords = len(app.ActiveNodes()) / 3
		if maxChords < 1 {
			maxChords = 1
		}
	}

	// Express chords: repeatedly take the message with the longest path
	// whose length meaningfully exceeds its Manhattan distance and give its
	// node pair a chord waveguide; all traffic between the pair (both
	// directions) moves onto the chord.
	chordOf := make(map[[2]netlist.NodeID]*ring.Ring)
	pairKey := func(a, b netlist.NodeID) [2]netlist.NodeID {
		if a > b {
			a, b = b, a
		}
		return [2]netlist.NodeID{a, b}
	}
	nextID := 2
	for len(chordOf) < maxChords {
		worst, worstGain := -1, 0.0
		for i, p := range paths {
			if _, done := chordOf[pairKey(p.Msg.Src, p.Msg.Dst)]; done {
				continue
			}
			direct := app.Pos(p.Msg.Src).Manhattan(app.Pos(p.Msg.Dst))
			gain := p.Length - direct
			if gain > worstGain+1e-12 {
				worst, worstGain = i, gain
			}
		}
		if worst < 0 {
			break // nothing left to shorten
		}
		m := paths[worst].Msg
		key := pairKey(m.Src, m.Dst)
		chord := &ring.Ring{ID: nextID, Kind: ring.Base, Order: []netlist.NodeID{key[0], key[1]}}
		nextID++
		chordOf[key] = chord
		rings = append(rings, chord)
		for i, p := range paths {
			if pairKey(p.Msg.Src, p.Msg.Dst) == key {
				np, err := ring.Route(app, chord, p.Msg)
				if err != nil {
					return nil, fmt.Errorf("xring: %w", err)
				}
				paths[i] = np
			}
		}
	}

	// Keep chord rings in deterministic order for reproducible layouts.
	sort.Slice(rings, func(i, j int) bool { return rings[i].ID < rings[j].ID })

	return &pipeline.Construction{
		Rings:             rings,
		Paths:             paths,
		PDNStyle:          pdn.StyleXRing,
		ForceNodeSplitter: true,
		// XRing shares wavelengths across senders (splitters are cheap in
		// its convention), so the optimiser packs for minimum wavelength
		// count: high α, splitter-blind.
		Weights: wavelength.Weights{Alpha: 10, Beta: 1, Gamma: 1, SplitterStageDB: 0},
	}, nil
}
