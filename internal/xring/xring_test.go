package xring

import (
	"context"
	"testing"

	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pipeline"

	_ "sring/internal/ctoring" // registers the CTORing constructor for comparison tests
)

func synth(t *testing.T, app *netlist.Application, method string, opt pipeline.Options) (*design.Design, error) {
	t.Helper()
	return pipeline.Synthesize(context.Background(), app, method, opt)
}

func TestSynthesizeBenchmarks(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			d, err := synth(t, app, "XRing", pipeline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("design invalid: %v", err)
			}
			if len(d.Rings) < 3 {
				t.Errorf("XRing built %d rings, want base pair + chords", len(d.Rings))
			}
		})
	}
}

// XRing's claimed advantages (paper Sec. II-C): shorter worst paths than
// CTORing (OSE shortcuts) and the fewest wavelengths.
func TestBeatsCTORingOnPathAndWavelengths(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		xr, err := synth(t, app, "XRing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cto, err := synth(t, app, "CTORing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mx, err := xr.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		mc, err := cto.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if mx.LongestPathMM > mc.LongestPathMM+1e-9 {
			t.Errorf("%s: XRing L %v > CTORing L %v", app.Name, mx.LongestPathMM, mc.LongestPathMM)
		}
		if mx.NumWavelengths > mc.NumWavelengths {
			t.Errorf("%s: XRing #wl %d > CTORing #wl %d", app.Name, mx.NumWavelengths, mc.NumWavelengths)
		}
		// And its cost: more splitters passed (StyleXRing extra stage).
		if mx.MaxSplitters <= mc.MaxSplitters-1 {
			t.Errorf("%s: XRing #sp_w %d unexpectedly below CTORing %d", app.Name, mx.MaxSplitters, mc.MaxSplitters)
		}
	}
}

func TestChordCap(t *testing.T) {
	app := netlist.D26()
	d, err := synth(t, app, "XRing", pipeline.Options{MaxChords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Rings); got != 4 {
		t.Errorf("rings = %d, want 2 base + 2 chords", got)
	}
}

func TestChordsShortenWorstMessages(t *testing.T) {
	app := netlist.MWD()
	d, err := synth(t, app, "XRing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every chord-routed message travels exactly its Manhattan distance.
	for _, pi := range d.Infos {
		if pi.Path.RingID >= 2 {
			direct := app.Pos(pi.Path.Msg.Src).Manhattan(app.Pos(pi.Path.Msg.Dst))
			if pi.Path.Length > direct+1e-9 {
				t.Errorf("chord path %v longer than Manhattan %v", pi.Path.Length, direct)
			}
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	bad := &netlist.Application{Name: "bad"}
	if _, err := synth(t, bad, "XRing", pipeline.Options{}); err == nil {
		t.Error("invalid app accepted")
	}
}
