package pipeline

import (
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"sring/internal/pdn"
	"sring/internal/wavelength"
)

// Disk persistence for the stage cache: entries are saved write-behind —
// store enqueues, a single background goroutine serialises to
// <dir>/<hex key>.entry via temp-file + rename — and loaded back when a
// cache is constructed over the same directory, so warm state survives
// process restarts (cmd/serve's main use).
//
// Correctness leans on content addressing, not on the files: a key already
// encodes the stage's versioned semantics ("construct/1", …), the full
// application content and the option prefix, so a stale or foreign file
// can at worst waste disk — its key never matches a live request. Files
// that fail to decode (older gob schema, truncated write, wrong version
// tag) are skipped on load. Evicted entries stay on disk: disk is the
// larger tier, and reloading routes through store, which re-applies the
// byte budget.

// persistVersion guards the file envelope. Bump when diskEntry or any
// persisted value type changes shape incompatibly.
const persistVersion = "sringcache/1"

// diskEntry is the gob envelope of one persisted cache entry.
type diskEntry struct {
	Version string
	Stage   string
	Value   interface{}
}

func init() {
	// The concrete types the cache stores, registered for gob's interface
	// encoding. layout.Result rides inside layoutValue via its own
	// GobEncode (its ring index lives in an unexported field).
	gob.Register(&Construction{})
	gob.Register(&layoutValue{})
	gob.Register([]wavelength.PathInfo{})
	gob.Register(&assignValue{})
	gob.Register(&pdn.Network{})
}

// persistQueueDepth bounds the write-behind queue. A full queue drops the
// write (counted) rather than stalling synthesis: persistence is an
// optimisation, never a dependency.
const persistQueueDepth = 256

type persistItem struct {
	stage string
	key   cacheKey
	v     interface{}
}

type persister struct {
	dir     string
	ch      chan persistItem
	done    chan struct{}
	dropped atomic.Int64
	saved   atomic.Int64
}

func newPersister(dir string) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: cache dir: %w", err)
	}
	p := &persister{
		dir:  dir,
		ch:   make(chan persistItem, persistQueueDepth),
		done: make(chan struct{}),
	}
	go p.run()
	return p, nil
}

func (p *persister) run() {
	defer close(p.done)
	for item := range p.ch {
		if err := p.write(item); err == nil {
			p.saved.Add(1)
		}
	}
}

func (p *persister) enqueue(stage string, key cacheKey, v interface{}) {
	select {
	case p.ch <- persistItem{stage: stage, key: key, v: v}:
	default:
		p.dropped.Add(1)
	}
}

func (p *persister) close() error {
	close(p.ch)
	<-p.done
	return nil
}

func (p *persister) path(key cacheKey) string {
	return filepath.Join(p.dir, hex.EncodeToString(key[:])+".entry")
}

// write serialises one entry atomically: gob to a temp file, then rename.
func (p *persister) write(item persistItem) error {
	final := p.path(item.key)
	if _, err := os.Stat(final); err == nil {
		return nil // content-addressed: an existing file is already right
	}
	tmp, err := os.CreateTemp(p.dir, ".entry-*")
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(diskEntry{Version: persistVersion, Stage: item.stage, Value: item.v}); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// loadInto reads every decodable entry file in the directory into the
// cache (via store, so the byte budget applies). Undecodable files are
// skipped; unreadable directories error.
func (p *persister) loadInto(c *Cache) error {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return fmt.Errorf("pipeline: cache dir: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".entry") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".entry"))
		if err != nil || len(raw) != len(cacheKey{}) {
			continue
		}
		var key cacheKey
		copy(key[:], raw)
		f, err := os.Open(filepath.Join(p.dir, name))
		if err != nil {
			continue
		}
		var d diskEntry
		err = gob.NewDecoder(f).Decode(&d)
		f.Close()
		if err != nil || d.Version != persistVersion || d.Value == nil {
			continue
		}
		// Bypass enqueue: the entry came from this very directory.
		sh := c.shardFor(key)
		size := entrySize(d.Value)
		sh.mu.Lock()
		if _, exists := sh.m[key]; !exists {
			e := &cacheEntry{key: key, stage: d.Stage, v: d.Value, size: size}
			sh.m[key] = e
			sh.pushFront(e)
			sh.bytes += size
			c.bytes.Add(size)
			if c.perShard > 0 {
				for sh.bytes > c.perShard && sh.tail != nil && sh.tail != e {
					victim := sh.tail
					sh.unlink(victim)
					delete(sh.m, victim.key)
					sh.bytes -= victim.size
					c.bytes.Add(-victim.size)
					c.evictions.Add(1)
				}
			}
		}
		sh.mu.Unlock()
	}
	return nil
}
