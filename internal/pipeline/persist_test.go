package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"sring/internal/loss"
	"sring/internal/netlist"
)

// Warm state must survive a restart: a cache persisted to disk and
// reloaded serves every stage from memory, and the designs are
// byte-identical to the cold ones.
func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	app := netlist.MWD()
	tech2 := loss.Default()
	tech2.SplitRatioDB = 3.5

	c1, err := NewCacheWithConfig(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Cache: c1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Tech: tech2, Cache: c1, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache over the same directory.
	c2, err := NewCacheWithConfig(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != c1.Len() {
		t.Fatalf("reloaded Len = %d, want %d", c2.Len(), c1.Len())
	}
	d2, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Cache: c2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c2.Stats(); hits != 5 || misses != 0 {
		t.Errorf("warm-restart run: %d hits / %d misses, want 5/0", hits, misses)
	}
	if !designsEqual(t, d1, d2) {
		t.Error("design served from reloaded cache differs from the cold one")
	}
}

// Undecodable persistence files — truncated writes, foreign junk, older
// versions — are skipped on load, never fatal.
func TestPersistenceSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCacheWithConfig(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(context.Background(), netlist.MWD(), "CoalesceProbe", Options{Cache: c1, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	var key cacheKey
	key[0] = 0xAB
	junk := c1.persist.path(key)
	if err := os.WriteFile(junk, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCacheWithConfig(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatalf("corrupt entry file must not fail construction: %v", err)
	}
	defer c2.Close()
	if c2.Len() != c1.Len() {
		t.Errorf("reloaded Len = %d, want %d (junk skipped)", c2.Len(), c1.Len())
	}
}

// The byte budget applies to loaded entries too: booting a small cache
// over a large persistence directory must not blow past the bound.
func TestPersistenceRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCacheWithConfig(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	app := netlist.MWD()
	for i := 0; i < 8; i++ {
		tech := loss.Default()
		tech.SplitRatioDB = 3.0 + 0.1*float64(i)
		if _, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Tech: tech, Cache: c1, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	const budget = int64(8 << 10)
	c2, err := NewCacheWithConfig(CacheConfig{Dir: dir, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() >= c1.Len() {
		t.Errorf("budgeted reload kept all %d entries; eviction expected", c1.Len())
	}
	if c2.StatsSnapshot().Evictions == 0 {
		t.Error("budgeted reload reported no evictions")
	}
	// The bound is soft per shard: each shard may overshoot its slice of the
	// budget by at most its most recently loaded entry.
	perShard := budget / int64(len(c2.shards))
	for i := range c2.shards {
		sh := &c2.shards[i]
		sh.mu.Lock()
		over := sh.bytes - perShard
		var newest int64
		if sh.head != nil {
			newest = sh.head.size
		}
		sh.mu.Unlock()
		if over > 0 && over > newest {
			t.Errorf("shard %d holds %d bytes over its %d budget (newest entry %d)", i, over+perShard, perShard, newest)
		}
	}
}
