package pipeline

import (
	"context"
	"sync"
	"sync/atomic"

	"sring/internal/obs"
)

// Cache memoizes stage outputs across Synthesize calls. Keys are
// content-addressed — a SHA-256 over the application's full content plus
// the option prefix the stage depends on — so a cache can safely be shared
// between applications, methods and option sweeps; only genuinely
// identical stage work hits. The zero value is not usable; create caches
// with NewCache or NewCacheWithConfig. All methods are safe for concurrent
// use, and a nil *Cache is a valid "caching off" value everywhere in this
// package.
//
// The key space is sharded (the first key byte picks a mutexed shard), each
// shard keeps its entries on an LRU list, and a configurable total byte
// budget bounds resident size: inserts that push a shard past its slice of
// the budget evict least-recently-used entries. Concurrent identical stage
// computations coalesce — a per-key singleflight makes racing requests
// share one execution instead of duplicating seconds of MILP work. An
// optional persistence directory saves entries to disk write-behind and
// reloads them on construction, so warm state survives restarts.
//
// Cached stage outputs are either treated as immutable by all downstream
// code (rings, paths, layouts, priced paths, PDNs) or defensively copied on
// the way in and out (wavelength assignments, whose Normalize mutates), so
// designs served from the cache are bit-identical to uncached ones.
// Parallelism and Recorder never enter a key: neither changes the result.
type Cache struct {
	shards   []cacheShard
	perShard int64 // per-shard byte budget; 0 = unbounded
	maxBytes int64

	hits, misses         atomic.Int64
	coalesced, evictions atomic.Int64
	invalid              atomic.Int64
	bytes                atomic.Int64

	persist *persister
}

// CacheConfig configures NewCacheWithConfig. The zero value means
// "unbounded, memory-only" — exactly what NewCache builds.
type CacheConfig struct {
	// MaxBytes bounds the cache's resident size (estimated entry bytes,
	// see entrySize). 0 means unbounded. The budget is split evenly across
	// the shards; a shard always retains at least its most recently
	// inserted entry, so the bound is soft by at most one entry per shard.
	MaxBytes int64
	// Shards is the number of mutexed key-space shards (0: 16). More
	// shards reduce lock contention under concurrent serving.
	Shards int
	// Dir, when non-empty, enables disk persistence: entries are saved
	// write-behind as gob files keyed by their content address, and loaded
	// back on construction. See persist.go for the format and caveats.
	Dir string
}

const defaultCacheShards = 16

// NewCache returns an empty, unbounded, memory-only stage cache.
func NewCache() *Cache {
	c, _ := NewCacheWithConfig(CacheConfig{})
	return c
}

// NewCacheWithConfig returns a stage cache with the given bounds and
// optional persistence directory. The only error source is the persistence
// directory (creation or an unreadable existing file set).
func NewCacheWithConfig(cfg CacheConfig) (*Cache, error) {
	n := cfg.Shards
	if n <= 0 {
		n = defaultCacheShards
	}
	c := &Cache{
		shards:   make([]cacheShard, n),
		maxBytes: cfg.MaxBytes,
	}
	if cfg.MaxBytes > 0 {
		c.perShard = cfg.MaxBytes / int64(n)
		if c.perShard == 0 {
			c.perShard = 1
		}
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.m = make(map[cacheKey]*cacheEntry)
		sh.inflight = make(map[cacheKey]chan struct{})
	}
	if cfg.Dir != "" {
		p, err := newPersister(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.persist = p
		if err := p.loadInto(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close flushes any pending write-behind persistence and stops the
// background writer. Safe on nil and on memory-only caches; the cache
// itself remains usable (further stores are simply no longer persisted).
func (c *Cache) Close() error {
	if c == nil || c.persist == nil {
		return nil
	}
	return c.persist.close()
}

// cacheShard is one slice of the key space: a map for lookup plus an
// intrusive doubly-linked LRU list (head = most recently used).
type cacheShard struct {
	mu         sync.Mutex
	m          map[cacheKey]*cacheEntry
	head, tail *cacheEntry
	bytes      int64
	inflight   map[cacheKey]chan struct{}
}

type cacheEntry struct {
	key        cacheKey
	stage      string
	v          interface{}
	size       int64
	prev, next *cacheEntry
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) touch(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (c *Cache) shardFor(key cacheKey) *cacheShard {
	return &c.shards[int(key[0])%len(c.shards)]
}

// lookup fetches a stage entry and updates the hit/miss telemetry: the
// cache's own counters, the run's pipeline.cache.* obs counters, and the
// aggregate registry's pipeline.cache.hits/misses counters. A hit promotes
// the entry to the front of its shard's LRU list.
//
// A nil cache is "caching off": nothing was looked up, so instead of a
// miss it counts into the distinct pipeline.cache.disabled counter —
// otherwise hit-rate computations over mixed cached/uncached runs would
// silently undercount (hits/(hits+misses) with phantom misses).
func (c *Cache) lookup(rec *obs.Recorder, reg *obs.Registry, stage string, key cacheKey) (interface{}, bool) {
	if c == nil {
		rec.Add("pipeline.cache.disabled", 1)
		reg.Add("pipeline.cache.disabled", 1)
		return nil, false
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	var v interface{}
	if ok {
		sh.touch(e)
		v = e.v
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
		rec.Add("pipeline.cache.hits", 1)
		rec.Add("pipeline.cache."+stage+".hits", 1)
		reg.Add("pipeline.cache.hits", 1)
	} else {
		c.misses.Add(1)
		rec.Add("pipeline.cache.misses", 1)
		rec.Add("pipeline.cache."+stage+".misses", 1)
		reg.Add("pipeline.cache.misses", 1)
	}
	return v, ok
}

// store inserts a stage entry. First writer wins: a concurrent duplicate
// insert keeps the existing value, so racing synthesis calls always read
// one consistent (and, by determinism, identical) result. When the insert
// pushes the shard past its byte budget, least-recently-used entries are
// evicted — never the entry just inserted, so a single oversized entry
// overshoots the budget rather than thrashing. Returns the net change in
// resident bytes and the number of entries evicted.
func (c *Cache) store(stage string, key cacheKey, v interface{}) (bytesDelta int64, evicted int) {
	if c == nil {
		return 0, 0
	}
	size := entrySize(v)
	sh := c.shardFor(key)
	sh.mu.Lock()
	if _, exists := sh.m[key]; exists {
		sh.mu.Unlock()
		return 0, 0
	}
	e := &cacheEntry{key: key, stage: stage, v: v, size: size}
	sh.m[key] = e
	sh.pushFront(e)
	sh.bytes += size
	bytesDelta = size
	if c.perShard > 0 {
		for sh.bytes > c.perShard && sh.tail != nil && sh.tail != e {
			victim := sh.tail
			sh.unlink(victim)
			delete(sh.m, victim.key)
			sh.bytes -= victim.size
			bytesDelta -= victim.size
			evicted++
		}
	}
	sh.mu.Unlock()
	c.bytes.Add(bytesDelta)
	c.evictions.Add(int64(evicted))
	if c.persist != nil {
		c.persist.enqueue(stage, key, v)
	}
	return bytesDelta, evicted
}

// invalidate drops one entry (a hit that failed shape validation).
func (c *Cache) invalidate(key cacheKey) {
	if c == nil {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.unlink(e)
		delete(sh.m, key)
		sh.bytes -= e.size
		c.bytes.Add(-e.size)
	}
	sh.mu.Unlock()
}

// compute is the engine's per-stage entry point: a singleflight-coalesced,
// validated lookup-or-execute. fn computes the stage value and reports
// whether it is cacheable (cancelled results are not); validate, when
// non-nil, is the cheap shape check a cache hit must pass — a failing hit
// is dropped, counted into pipeline.cache.invalid, and recomputed, so a
// corrupted entry (bad persistence file, aliasing bug) degrades to a miss
// instead of corrupting a design.
//
// Exactly one of several racing callers with the same key executes fn; the
// rest wait on the leader's completion and read the stored result (counted
// into pipeline.cache.coalesced). A waiter whose context falls while
// waiting — or whose leader's result was uncacheable — runs fn itself, so
// the engine's graceful-degradation semantics survive coalescing.
//
// Returns the value, whether it was served from the cache, and fn's error.
func (c *Cache) compute(ctx context.Context, rec *obs.Recorder, reg *obs.Registry, stage string, key cacheKey,
	validate func(interface{}) error, fn func() (v interface{}, cacheable bool, err error)) (interface{}, bool, error) {
	if c == nil {
		rec.Add("pipeline.cache.disabled", 1)
		reg.Add("pipeline.cache.disabled", 1)
		v, _, err := fn()
		return v, false, err
	}
	waited := false
	for {
		if v, ok := c.lookup(rec, reg, stage, key); ok {
			if validate != nil {
				if err := validate(v); err != nil {
					c.invalidate(key)
					c.invalid.Add(1)
					rec.Add("pipeline.cache.invalid", 1)
					reg.Add("pipeline.cache.invalid", 1)
					continue
				}
			}
			if waited {
				c.coalesced.Add(1)
				rec.Add("pipeline.cache.coalesced", 1)
				reg.Add("pipeline.cache.coalesced", 1)
			}
			return v, true, nil
		}

		sh := c.shardFor(key)
		sh.mu.Lock()
		if ch, inflight := sh.inflight[key]; inflight {
			sh.mu.Unlock()
			if ctx.Err() != nil {
				// Cancelled while a leader runs: don't queue behind it —
				// run fn under the cancelled context so the stage returns
				// its best feasible result immediately.
				v, _, err := fn()
				return v, false, err
			}
			select {
			case <-ch:
				waited = true
			case <-ctx.Done():
			}
			continue
		}
		ch := make(chan struct{})
		sh.inflight[key] = ch
		sh.mu.Unlock()

		v, cacheable, err := fn()
		if err == nil && cacheable {
			delta, evicted := c.store(stage, key, v)
			if delta != 0 {
				reg.Add("pipeline.cache.bytes", delta)
			}
			if evicted > 0 {
				rec.Add("pipeline.cache.evictions", int64(evicted))
				reg.Add("pipeline.cache.evictions", int64(evicted))
			}
		}
		sh.mu.Lock()
		delete(sh.inflight, key)
		sh.mu.Unlock()
		close(ch)
		return v, false, err
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// CacheStats is a point-in-time summary of a cache's counters and resident
// size, shaped for JSON (cmd/serve's /stats.json).
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Invalid   int64 `json:"invalid"`
}

// StatsSnapshot captures every counter. Safe on nil (zero stats).
func (c *Cache) StatsSnapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Entries:   c.Len(),
		Bytes:     c.bytes.Load(),
		MaxBytes:  c.maxBytes,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Invalid:   c.invalid.Load(),
	}
}

// Len returns the number of cached stage entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the estimated resident size of the cached entries.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}
