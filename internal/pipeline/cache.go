package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/obs"
)

// Cache memoizes stage outputs across Synthesize calls. Keys are
// content-addressed — a SHA-256 over the application's full content plus
// the option prefix the stage depends on — so a cache can safely be shared
// between applications, methods and option sweeps; only genuinely
// identical stage work hits. The zero value is not usable; create caches
// with NewCache. All methods are safe for concurrent use, and a nil *Cache
// is a valid "caching off" value everywhere in this package.
//
// Cached stage outputs are either treated as immutable by all downstream
// code (rings, paths, layouts, priced paths, PDNs) or defensively copied on
// the way in and out (wavelength assignments, whose Normalize mutates), so
// designs served from the cache are bit-identical to uncached ones.
// Parallelism and Recorder never enter a key: neither changes the result.
type Cache struct {
	mu           sync.Mutex
	m            map[cacheKey]interface{}
	hits, misses atomic.Int64
}

// NewCache returns an empty stage cache.
func NewCache() *Cache { return &Cache{m: make(map[cacheKey]interface{})} }

type cacheKey [sha256.Size]byte

// lookup fetches a stage entry and updates the hit/miss telemetry: the
// cache's own counters, the run's pipeline.cache.* obs counters, and the
// aggregate registry's pipeline.cache.hits/misses counters. A nil cache
// counts as a miss without touching the registry (nothing was looked up).
func (c *Cache) lookup(rec *obs.Recorder, reg *obs.Registry, stage string, key cacheKey) (interface{}, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	v, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		rec.Add("pipeline.cache.hits", 1)
		rec.Add("pipeline.cache."+stage+".hits", 1)
		reg.Add("pipeline.cache.hits", 1)
	} else {
		c.misses.Add(1)
		rec.Add("pipeline.cache.misses", 1)
		rec.Add("pipeline.cache."+stage+".misses", 1)
		reg.Add("pipeline.cache.misses", 1)
	}
	return v, ok
}

// store inserts a stage entry. First writer wins: a concurrent duplicate
// insert keeps the existing value, so racing synthesis calls always read
// one consistent (and, by determinism, identical) result.
func (c *Cache) store(key cacheKey, v interface{}) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, exists := c.m[key]; !exists {
		c.m[key] = v
	}
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached stage entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// stageKeys holds one content-addressed key per stage. Keys chain: each
// stage's key incorporates its upstream stage's key, so a change anywhere
// upstream invalidates everything after it while downstream-only option
// changes (e.g. Tech in a sensitivity sweep) leave the upstream keys — and
// their cached outputs — intact.
type stageKeys struct {
	construct cacheKey
	layout    cacheKey
	loss      cacheKey
	assign    cacheKey
	pdn       cacheKey
}

// buildStageKeys derives the stage keys for one synthesis run. The leading
// version tags let a future change to any stage's semantics invalidate old
// entries wholesale.
func buildStageKeys(app *netlist.Application, method string, opt Options, tech loss.Tech) stageKeys {
	var ks stageKeys

	h := newKeyHasher("construct/1")
	h.application(app)
	h.str(method)
	h.i64(int64(opt.TreeHeight))
	h.i64(int64(opt.ClusterTrials))
	h.i64(int64(opt.MaxChords))
	ks.construct = h.sum()

	h = newKeyHasher("layout/1")
	h.key(ks.construct)
	ks.layout = h.sum()

	h = newKeyHasher("loss/1")
	h.key(ks.layout)
	h.tech(tech)
	ks.loss = h.sum()

	// The assignment depends on the effective weights too, but those are a
	// pure function of (construction, tech) — both already in the chain.
	h = newKeyHasher("assign/1")
	h.key(ks.loss)
	h.bool(opt.UseMILP)
	h.i64(int64(opt.MILPTimeLimit))
	ks.assign = h.sum()

	h = newKeyHasher("pdn/1")
	h.key(ks.assign)
	h.bool(opt.PhysicalPDN)
	ks.pdn = h.sum()

	return ks
}

// keyHasher serialises values into a SHA-256 with unambiguous (length
// prefixed, fixed width) encodings.
type keyHasher struct {
	h   hash.Hash
	buf [8]byte
}

func newKeyHasher(tag string) *keyHasher {
	kh := &keyHasher{h: sha256.New()}
	kh.str(tag)
	return kh
}

func (kh *keyHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(kh.buf[:], v)
	kh.h.Write(kh.buf[:])
}

func (kh *keyHasher) i64(v int64)   { kh.u64(uint64(v)) }
func (kh *keyHasher) f64(v float64) { kh.u64(math.Float64bits(v)) }

func (kh *keyHasher) bool(v bool) {
	if v {
		kh.u64(1)
	} else {
		kh.u64(0)
	}
}

func (kh *keyHasher) str(s string) {
	kh.u64(uint64(len(s)))
	io.WriteString(kh.h, s)
}

func (kh *keyHasher) key(k cacheKey) { kh.h.Write(k[:]) }

func (kh *keyHasher) sum() cacheKey {
	var k cacheKey
	kh.h.Sum(k[:0])
	return k
}

// application hashes the full synthesis-relevant content of an application:
// every node's identity and position, every message's endpoints and
// bandwidth.
func (kh *keyHasher) application(app *netlist.Application) {
	kh.str(app.Name)
	kh.u64(uint64(len(app.Nodes)))
	for _, n := range app.Nodes {
		kh.i64(int64(n.ID))
		kh.f64(n.Pos.X)
		kh.f64(n.Pos.Y)
	}
	kh.u64(uint64(len(app.Messages)))
	for _, m := range app.Messages {
		kh.i64(int64(m.Src))
		kh.i64(int64(m.Dst))
		kh.f64(m.Bandwidth)
	}
}

// tech hashes every technology parameter, field by field.
func (kh *keyHasher) tech(t loss.Tech) {
	kh.f64(t.PropagationDBPerMM)
	kh.f64(t.DropDB)
	kh.f64(t.ThroughDB)
	kh.f64(t.BendDB)
	kh.f64(t.CrossingDB)
	kh.f64(t.ModulatorDB)
	kh.f64(t.PhotodetectorDB)
	kh.f64(t.SplitterExcessDB)
	kh.f64(t.SplitRatioDB)
	kh.f64(t.DetectorSensitivityDBm)
}
