package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"math"

	"sring/internal/loss"
	"sring/internal/netlist"
)

type cacheKey [sha256.Size]byte

// stageKeys holds one content-addressed key per stage. Keys chain: each
// stage's key incorporates its upstream stage's key, so a change anywhere
// upstream invalidates everything after it while downstream-only option
// changes (e.g. Tech in a sensitivity sweep) leave the upstream keys — and
// their cached outputs — intact.
type stageKeys struct {
	construct cacheKey
	layout    cacheKey
	loss      cacheKey
	assign    cacheKey
	pdn       cacheKey
}

// buildStageKeys derives the stage keys for one synthesis run. The leading
// version tags let a future change to any stage's semantics invalidate old
// entries wholesale — including entries loaded back from a persistence
// directory written by an older binary, whose keys simply never match.
func buildStageKeys(app *netlist.Application, method string, opt Options, tech loss.Tech) stageKeys {
	var ks stageKeys

	// construct/2: the multi-level hierarchical constructor changed the
	// SRing construction semantics (and Construction gained Levels).
	h := newKeyHasher("construct/2")
	h.application(app)
	h.str(method)
	h.i64(int64(opt.TreeHeight))
	h.i64(int64(opt.ClusterTrials))
	h.i64(int64(opt.MaxChords))
	ks.construct = h.sum()

	h = newKeyHasher("layout/1")
	h.key(ks.construct)
	ks.layout = h.sum()

	h = newKeyHasher("loss/1")
	h.key(ks.layout)
	h.tech(tech)
	ks.loss = h.sum()

	// The assignment depends on the effective weights too, but those are a
	// pure function of (construction, tech) — both already in the chain.
	// assign/3: the assignment stage gained the branch-and-cut engine and
	// the CP oracle fallback. CutRounds is hashed even though cuts never
	// change a proven optimum: an unproven incumbent can legitimately
	// differ between cut budgets.
	h = newKeyHasher("assign/3")
	h.key(ks.loss)
	h.bool(opt.UseMILP)
	h.bool(opt.DecomposeAssign)
	h.i64(int64(opt.MILPTimeLimit))
	h.str(opt.Oracle)
	h.i64(int64(opt.CutRounds))
	ks.assign = h.sum()

	h = newKeyHasher("pdn/1")
	h.key(ks.assign)
	h.bool(opt.PhysicalPDN)
	ks.pdn = h.sum()

	return ks
}

// keyHasher serialises values into a SHA-256 with unambiguous (length
// prefixed, fixed width) encodings.
type keyHasher struct {
	h   hash.Hash
	buf [8]byte
}

func newKeyHasher(tag string) *keyHasher {
	kh := &keyHasher{h: sha256.New()}
	kh.str(tag)
	return kh
}

func (kh *keyHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(kh.buf[:], v)
	kh.h.Write(kh.buf[:])
}

func (kh *keyHasher) i64(v int64)   { kh.u64(uint64(v)) }
func (kh *keyHasher) f64(v float64) { kh.u64(math.Float64bits(v)) }

func (kh *keyHasher) bool(v bool) {
	if v {
		kh.u64(1)
	} else {
		kh.u64(0)
	}
}

func (kh *keyHasher) str(s string) {
	kh.u64(uint64(len(s)))
	io.WriteString(kh.h, s)
}

func (kh *keyHasher) key(k cacheKey) { kh.h.Write(k[:]) }

func (kh *keyHasher) sum() cacheKey {
	var k cacheKey
	kh.h.Sum(k[:0])
	return k
}

// application hashes the full synthesis-relevant content of an application:
// every node's identity and position, every message's endpoints and
// bandwidth.
func (kh *keyHasher) application(app *netlist.Application) {
	kh.str(app.Name)
	kh.u64(uint64(len(app.Nodes)))
	for _, n := range app.Nodes {
		kh.i64(int64(n.ID))
		kh.f64(n.Pos.X)
		kh.f64(n.Pos.Y)
	}
	kh.u64(uint64(len(app.Messages)))
	for _, m := range app.Messages {
		kh.i64(int64(m.Src))
		kh.i64(int64(m.Dst))
		kh.f64(m.Bandwidth)
	}
}

// tech hashes every technology parameter, field by field.
func (kh *keyHasher) tech(t loss.Tech) {
	kh.f64(t.PropagationDBPerMM)
	kh.f64(t.DropDB)
	kh.f64(t.ThroughDB)
	kh.f64(t.BendDB)
	kh.f64(t.CrossingDB)
	kh.f64(t.ModulatorDB)
	kh.f64(t.PhotodetectorDB)
	kh.f64(t.SplitterExcessDB)
	kh.f64(t.SplitRatioDB)
	kh.f64(t.DetectorSensitivityDBm)
}
