// Package pipeline is the canonical staged synthesis engine behind every
// method in this repository. A synthesis run is the fixed stage sequence
//
//	construct → layout → loss pricing → wavelength assignment → PDN
//
// where only the first stage differs between methods: each method package
// registers a Constructor that turns an application into rings, routed
// paths and downstream conventions (a Construction), and everything after
// that is shared code driven by one Options struct. The per-method option
// structs the front-ends used to copy (UseMILP, MILPTimeLimit, Parallelism,
// …) live here exactly once.
//
// The engine is context-aware: Synthesize fails fast on an already
// cancelled context, and a cancellation mid-flight degrades gracefully —
// the clustering returns its best feasible construction and the MILP its
// best incumbent, both flagged on the returned design (Design.Cancelled)
// instead of surfacing an error.
//
// Stage outputs are content-addressed: with a Cache installed, each stage's
// result is memoized under a hash of the application plus the option prefix
// that stage actually depends on. Sweeps that vary only downstream knobs
// (loss constants, MILP budgets) skip every upstream stage; hits and misses
// are reported through the pipeline.cache.* counters.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sring/internal/design"
	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// Options configures a synthesis run. One struct drives every method and
// every stage; fields a method does not use are ignored by its constructor.
type Options struct {
	// Tech overrides the technology parameters (zero value: loss.Default()).
	// A non-zero Tech must be a plausible, fully populated parameter set:
	// Synthesize rejects negative or non-finite losses and partially
	// populated structs. Start from loss.Default() and override fields
	// rather than building a Tech from scratch.
	Tech loss.Tech
	// TreeHeight is the paper's h, the height of the L_max search tree used
	// by SRing's clustering (zero: 6). SRing only.
	TreeHeight int
	// ClusterTrials caps the initial vertices tried per cluster round
	// (zero: unlimited, the paper's behaviour). SRing only.
	ClusterTrials int
	// MaxChords caps the number of OSE express chords (zero:
	// max(1, #activeNodes / 3)). XRing only.
	MaxChords int
	// UseMILP enables the exact MILP wavelength assignment on instances
	// small enough for the built-in solver; the splitter-aware heuristic
	// always runs and seeds it.
	UseMILP bool
	// DecomposeAssign splits the exact wavelength assignment into the
	// connected components of the ring-coupling graph, solved separately
	// and coordinated by a small assembly MILP (internal/wavelength,
	// Options.Decompose). Components too large for the monolithic size
	// gate are further cut along the construction hierarchy into boundary
	// (inter-ring) and per-cluster leaf pieces on disjoint palette banks,
	// so large hierarchical constructions reach exact per-cluster solves
	// the monolithic gate rejects. On instances that reduce to one
	// gate-sized piece the result is identical to the monolithic solve.
	// Effective only with UseMILP.
	DecomposeAssign bool
	// MILPTimeLimit bounds each exact solve (zero: milp.DefaultTimeLimit);
	// under DecomposeAssign the per-piece palette sweep runs several
	// solves, each with this budget. A context deadline or cancellation
	// unifies with it: the solver stops at whichever comes first and
	// returns its incumbent.
	MILPTimeLimit time.Duration
	// Parallelism is the worker count used throughout the pipeline (0 =
	// GOMAXPROCS, 1 = sequential). The synthesised design is bit-identical
	// for every setting, which is why Parallelism is excluded from cache
	// keys.
	Parallelism int
	// Oracle names an independent cross-check solver run when the exact
	// wavelength assignment fails to prove optimality (wavelength
	// Options.Oracle; "cp" for the constraint-propagation search). Effective
	// only with UseMILP; empty disables.
	Oracle string
	// CutRounds is the exact solver's cutting-plane budget (wavelength
	// Options.CutRounds → milp.Options.CutRounds): 0 means the solver
	// default, negative disables cut separation.
	CutRounds int
	// PhysicalPDN routes the power-distribution tree physically instead of
	// the abstract stage-count model.
	PhysicalPDN bool
	// Recorder, when non-nil, collects the full synthesis trace. Excluded
	// from cache keys; note that stages served from the cache record a
	// single cached-stage span instead of their usual sub-tree.
	Recorder *obs.Recorder
	// Cache, when non-nil, memoizes stage outputs across Synthesize calls
	// (content-addressed; safe for concurrent use). Cached designs are
	// bit-identical to uncached ones.
	Cache *Cache
	// Registry receives aggregate telemetry — stage latency histograms,
	// cache hit/miss counters, LP/MILP kernel distributions — accumulated
	// across runs. Nil means the process-wide obs.Default() registry, so
	// aggregate telemetry is always on; it is allocation-free at recording
	// time and, like Recorder, excluded from cache keys.
	Registry *obs.Registry
}

// Construction is a constructor's output: the method-specific raw material
// plus the downstream conventions the shared stages must apply.
type Construction struct {
	// Rings are the ring waveguides, IDs unique.
	Rings []*ring.Ring
	// Paths holds one routed path per application message, in message order.
	Paths []ring.Path
	// Preset, when non-nil, is the method's own wavelength assignment (e.g.
	// ORNoC's first-fit), used verbatim after verification instead of
	// running the optimiser.
	Preset *wavelength.Assignment
	// PDNStyle and ForceNodeSplitter select the PDN construction convention.
	PDNStyle          pdn.Style
	ForceNodeSplitter bool
	// PDNAllTwoSender treats every sender node as having the full
	// two-sender complement (ORNoC/CTORing convention).
	PDNAllTwoSender bool
	// MRRFullComplement populates every node's complete MRR arrays on every
	// ring (ORNoC/CTORing convention); SRing and XRing prune.
	MRRFullComplement bool
	// Levels is the construction's hierarchy depth: 0 for flat methods,
	// 1 for an all-intra SRing clustering, 2 for the paper's two-level
	// shape, more when the multi-level constructor recursed.
	Levels int
	// Weights are the wavelength-assignment objective coefficients.
	Weights wavelength.Weights
	// SplitterWeightFromTech, when set, overrides Weights.SplitterStageDB
	// with the technology's splitter stage loss at assignment time. This
	// keeps the construction tech-independent (and therefore cacheable
	// across Tech variations) even for methods whose objective is
	// tech-coupled.
	SplitterWeightFromTech bool
	// Cancelled reports that the constructor was interrupted by context
	// cancellation and returned its best feasible construction so far.
	Cancelled bool
}

// Constructor builds a method's Construction. It must be deterministic in
// (app, opt) — Parallelism excepted, which must not change the result — and
// should honour ctx by returning its best feasible construction with
// Cancelled set rather than an error.
type Constructor func(ctx context.Context, app *netlist.Application, opt Options, parent *obs.Span) (*Construction, error)

var registry = map[string]Constructor{}

// Register installs a method's constructor; method packages call it from
// init(). Registering a name twice panics.
func Register(method string, c Constructor) {
	if c == nil {
		panic("pipeline: Register with nil constructor")
	}
	if _, dup := registry[method]; dup {
		panic(fmt.Sprintf("pipeline: method %q registered twice", method))
	}
	registry[method] = c
}

// Methods returns the registered method names, sorted.
func Methods() []string {
	out := make([]string, 0, len(registry))
	for m := range registry {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Synthesize runs the staged engine for the application with the named
// method. Synthesis wall-clock time is measured here, uniformly for all
// methods, and stored in the returned design's SynthesisTime.
//
// A context that is already cancelled fails fast with the context's error
// wrapped. A cancellation mid-run degrades gracefully: the stages return
// their best feasible results and the design comes back with Cancelled set
// instead of an error (unless cancellation struck before anything feasible
// existed, in which case the context error is returned).
func Synthesize(ctx context.Context, app *netlist.Application, method string, opt Options) (*design.Design, error) {
	start := time.Now()
	if app == nil {
		return nil, errors.New("pipeline: nil application")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: synthesis not started: %w", err)
	}
	ctor, ok := registry[method]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown method %q (registered: %v)", method, Methods())
	}
	root := opt.Recorder.StartSpan("synthesize")
	root.SetString("method", method)
	root.SetString("app", app.Name)
	root.SetInt("nodes", int64(len(app.Nodes)))
	root.SetInt("messages", int64(len(app.Messages)))
	d, err := run(ctx, app, method, ctor, opt, root)
	root.End()
	if err != nil {
		return nil, err
	}
	d.SynthesisTime = time.Since(start)
	return d, nil
}

// run executes the stage sequence under the root span.
func run(ctx context.Context, app *netlist.Application, method string, ctor Constructor, opt Options, root *obs.Span) (*design.Design, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	tech, err := loss.Normalize(opt.Tech)
	if err != nil {
		return nil, err
	}
	rec := root.Recorder()
	reg := obs.OrDefault(opt.Registry)
	var keys stageKeys
	if opt.Cache != nil {
		keyStart := time.Now()
		keys = buildStageKeys(app, method, opt, tech)
		reg.Histogram("pipeline.cache.keybuild.ns").RecordSince(keyStart)
	}

	// Stage 1: construct (method-specific). checkConstruction guards both
	// sides: fresh results before they enter the cache, and — as compute's
	// validator — every hit, so a corrupted entry degrades to a recompute.
	stageStart := time.Now()
	v, fromCache, err := opt.Cache.compute(ctx, rec, reg, "construct", keys.construct,
		func(v interface{}) error { return validateConstruction(app, v) },
		func() (interface{}, bool, error) {
			con, err := ctor(ctx, app, opt, root)
			if err != nil {
				return nil, false, err
			}
			if err := checkConstruction(app, con); err != nil {
				return nil, false, err
			}
			return con, !con.Cancelled, nil
		})
	if err != nil {
		return nil, err
	}
	con := v.(*Construction)
	if fromCache {
		markCached(root, "construct")
	}
	reg.Histogram("pipeline.stage.construct.ns").RecordSince(stageStart)

	// Stage 2: layout.
	stageStart = time.Now()
	v, fromCache, err = opt.Cache.compute(ctx, rec, reg, "layout", keys.layout,
		func(v interface{}) error { return validateLayout(con, v) },
		func() (interface{}, bool, error) {
			res, err := design.RouteLayout(app, con.Rings, root)
			if err != nil {
				return nil, false, err
			}
			return &layoutValue{Res: res}, true, nil
		})
	if err != nil {
		return nil, err
	}
	lay := v.(*layoutValue)
	if fromCache {
		markCached(root, "layout")
	}
	reg.Histogram("pipeline.stage.layout.ns").RecordSince(stageStart)

	// Stage 3: loss pricing (depends on Tech).
	stageStart = time.Now()
	v, fromCache, err = opt.Cache.compute(ctx, rec, reg, "loss", keys.loss,
		func(v interface{}) error { return validateInfos(app, v) },
		func() (interface{}, bool, error) {
			infos, err := design.PriceLoss(app, con.Rings, con.Paths, lay.Res, tech, con.MRRFullComplement, root)
			if err != nil {
				return nil, false, err
			}
			return infos, true, nil
		})
	if err != nil {
		return nil, err
	}
	infos := v.([]wavelength.PathInfo)
	if fromCache {
		markCached(root, "loss")
	}
	reg.Histogram("pipeline.stage.loss.ns").RecordSince(stageStart)

	// Stage 4: wavelength assignment. The cache stores a private clone —
	// assignments are mutable (Normalize) — so hits clone back out, while
	// the computing caller keeps its own original.
	stageStart = time.Now()
	var freshAssign *wavelength.Assignment
	var freshStats *wavelength.Stats
	v, fromCache, err = opt.Cache.compute(ctx, rec, reg, "assign", keys.assign,
		func(v interface{}) error { return validateAssign(infos, v) },
		func() (interface{}, bool, error) {
			var assignment *wavelength.Assignment
			var stats *wavelength.Stats
			var err error
			if con.Preset != nil {
				assignment, stats, err = design.UsePreset(infos, con.Preset, root)
			} else {
				w := con.Weights
				if con.SplitterWeightFromTech {
					w.SplitterStageDB = tech.SplitterStageDB()
				}
				var ringLevels map[int]int
				if opt.DecomposeAssign && con.Levels > 0 {
					ringLevels = make(map[int]int, len(con.Rings))
					for _, r := range con.Rings {
						ringLevels[r.ID] = r.Level
					}
				}
				assignment, stats, err = wavelength.AssignContext(ctx, infos, wavelength.Options{
					Weights:       w,
					UseMILP:       opt.UseMILP,
					Decompose:     opt.DecomposeAssign,
					RingLevels:    ringLevels,
					MILPTimeLimit: opt.MILPTimeLimit,
					Parallelism:   opt.Parallelism,
					Oracle:        opt.Oracle,
					CutRounds:     opt.CutRounds,
					Obs:           root,
					Registry:      opt.Registry,
				})
			}
			if err != nil {
				return nil, false, err
			}
			freshAssign, freshStats = assignment, stats
			statsCopy := *stats
			return &assignValue{Assignment: assignment.Clone(), Stats: &statsCopy}, !stats.Cancelled, nil
		})
	if err != nil {
		return nil, err
	}
	var assignment *wavelength.Assignment
	var stats *wavelength.Stats
	if !fromCache && freshAssign != nil {
		assignment, stats = freshAssign, freshStats
	} else {
		av := v.(*assignValue)
		assignment = av.Assignment.Clone()
		statsCopy := *av.Stats
		stats = &statsCopy
	}
	if fromCache {
		markCached(root, "assign")
	}
	reg.Histogram("pipeline.stage.assign.ns").RecordSince(stageStart)

	// Stage 5: PDN.
	stageStart = time.Now()
	cfg := pdn.Config{
		Style:             con.PDNStyle,
		ForceNodeSplitter: con.ForceNodeSplitter,
		RoutePhysical:     opt.PhysicalPDN,
	}
	v, fromCache, err = opt.Cache.compute(ctx, rec, reg, "pdn", keys.pdn,
		func(v interface{}) error { return validatePDN(v) },
		func() (interface{}, bool, error) {
			network, err := design.BuildPDN(app, infos, assignment, cfg, con.PDNAllTwoSender, root)
			if err != nil {
				return nil, false, err
			}
			return network, true, nil
		})
	if err != nil {
		return nil, err
	}
	network := v.(*pdn.Network)
	if fromCache {
		markCached(root, "pdn")
	}
	reg.Histogram("pipeline.stage.pdn.ns").RecordSince(stageStart)

	return &design.Design{
		App:         app,
		Method:      method,
		Levels:      con.Levels,
		Rings:       con.Rings,
		Infos:       infos,
		Assignment:  assignment,
		Layout:      lay.Res,
		PDN:         network,
		Tech:        tech,
		AssignStats: stats,
		Cancelled:   con.Cancelled || stats.Cancelled,
	}, nil
}

// PathInfos runs the synthesis front half — construct, layout, loss
// pricing — and returns the priced paths the assignment stage would see,
// plus the effective objective weights. Cross-check tests use it to drive
// the assignment solvers directly on the real benchmark instances without
// duplicating the stage plumbing. Uncached; Recorder and Registry in opt
// are honoured, Cache is ignored.
func PathInfos(ctx context.Context, app *netlist.Application, method string, opt Options) ([]wavelength.PathInfo, wavelength.Weights, error) {
	var w wavelength.Weights
	if app == nil {
		return nil, w, errors.New("pipeline: nil application")
	}
	if err := app.Validate(); err != nil {
		return nil, w, fmt.Errorf("pipeline: %w", err)
	}
	ctor, ok := registry[method]
	if !ok {
		return nil, w, fmt.Errorf("pipeline: unknown method %q (registered: %v)", method, Methods())
	}
	tech, err := loss.Normalize(opt.Tech)
	if err != nil {
		return nil, w, err
	}
	root := opt.Recorder.StartSpan("pathinfos")
	defer root.End()
	con, err := ctor(ctx, app, opt, root)
	if err != nil {
		return nil, w, err
	}
	if err := checkConstruction(app, con); err != nil {
		return nil, w, err
	}
	lay, err := design.RouteLayout(app, con.Rings, root)
	if err != nil {
		return nil, w, err
	}
	infos, err := design.PriceLoss(app, con.Rings, con.Paths, lay, tech, con.MRRFullComplement, root)
	if err != nil {
		return nil, w, err
	}
	w = con.Weights
	if con.SplitterWeightFromTech {
		w.SplitterStageDB = tech.SplitterStageDB()
	}
	return infos, w, nil
}

// layoutValue wraps the layout result so the cache holds a single pointer
// type per stage. Fields are exported for the cache's gob persistence.
type layoutValue struct{ Res *layoutResult }

// layoutResult aliases the layout package's result through the design
// package's stage signature, keeping pipeline's import set minimal.
type layoutResult = design.LayoutResult

// assignValue is the cached output of the assignment stage. Fields are
// exported for the cache's gob persistence.
type assignValue struct {
	Assignment *wavelength.Assignment
	Stats      *wavelength.Stats
}

// markCached records that a stage was served from the cache, so traces
// show where the usual stage sub-tree went.
func markCached(root *obs.Span, stage string) {
	if sp := root.StartSpan("pipeline.cached"); sp.Enabled() {
		sp.SetString("stage", stage)
		sp.End()
	}
}

// The stage-hit validators: every cache hit — construct and downstream
// alike — passes a cheap shape check against this request's inputs before
// it is trusted, so a corrupted entry (a bad persistence file, a caller
// that mutated shared state) is dropped and recomputed instead of
// producing a corrupted design. Each starts with a type assertion because
// compute hands over a raw interface{}; a wrong dynamic type is just
// another corruption mode.

func validateConstruction(app *netlist.Application, v interface{}) error {
	con, ok := v.(*Construction)
	if !ok {
		return fmt.Errorf("pipeline: construct entry holds %T", v)
	}
	return checkConstruction(app, con)
}

func validateLayout(con *Construction, v interface{}) error {
	lay, ok := v.(*layoutValue)
	if !ok {
		return fmt.Errorf("pipeline: layout entry holds %T", v)
	}
	if lay.Res == nil || lay.Res.Routes == nil {
		return errors.New("pipeline: layout entry has no routes")
	}
	// Every ring of this construction must be routed and indexed —
	// RingWaveguideMM also exercises the ring index a persistence
	// round-trip has to restore.
	for _, r := range con.Rings {
		if _, err := lay.Res.RingWaveguideMM(r.ID); err != nil {
			return fmt.Errorf("pipeline: layout entry: %w", err)
		}
	}
	return nil
}

func validateInfos(app *netlist.Application, v interface{}) error {
	infos, ok := v.([]wavelength.PathInfo)
	if !ok {
		return fmt.Errorf("pipeline: loss entry holds %T", v)
	}
	if len(infos) != len(app.Messages) {
		return fmt.Errorf("pipeline: loss entry prices %d paths for %d messages", len(infos), len(app.Messages))
	}
	for i, pi := range infos {
		if pi.Path.Msg != app.Messages[i] {
			return fmt.Errorf("pipeline: loss entry path %d carries message %v, want %v", i, pi.Path.Msg, app.Messages[i])
		}
		if math.IsNaN(pi.LossDB) || math.IsInf(pi.LossDB, 0) || pi.LossDB < 0 {
			return fmt.Errorf("pipeline: loss entry path %d has loss %v dB", i, pi.LossDB)
		}
	}
	return nil
}

func validateAssign(infos []wavelength.PathInfo, v interface{}) error {
	av, ok := v.(*assignValue)
	if !ok {
		return fmt.Errorf("pipeline: assign entry holds %T", v)
	}
	if av.Assignment == nil || av.Stats == nil {
		return errors.New("pipeline: assign entry incomplete")
	}
	if len(av.Assignment.Lambda) != len(infos) {
		return fmt.Errorf("pipeline: assign entry covers %d paths, want %d", len(av.Assignment.Lambda), len(infos))
	}
	for i, l := range av.Assignment.Lambda {
		if l < 0 || l >= av.Assignment.NumLambda {
			return fmt.Errorf("pipeline: assign entry path %d has wavelength %d of %d", i, l, av.Assignment.NumLambda)
		}
	}
	return nil
}

func validatePDN(v interface{}) error {
	network, ok := v.(*pdn.Network)
	if !ok {
		return fmt.Errorf("pipeline: pdn entry holds %T", v)
	}
	if network == nil || network.FeedLengthMM == nil {
		return errors.New("pipeline: pdn entry has no feed lengths")
	}
	if network.TotalSplitters < 0 || network.TreeStages < 0 {
		return errors.New("pipeline: pdn entry has negative counts")
	}
	return nil
}

// checkConstruction validates a constructor's output the same way
// design.Finish validates its inputs; it runs on cache hits too (it is
// O(paths), cheap insurance against a corrupted cache entry).
func checkConstruction(app *netlist.Application, con *Construction) error {
	if con == nil {
		return errors.New("pipeline: constructor returned nil construction")
	}
	if len(con.Paths) != len(app.Messages) {
		return fmt.Errorf("pipeline: %d paths for %d messages", len(con.Paths), len(app.Messages))
	}
	ringByID := make(map[int]*ring.Ring, len(con.Rings))
	for _, r := range con.Rings {
		ringByID[r.ID] = r
	}
	for i, p := range con.Paths {
		if p.Msg != app.Messages[i] {
			return fmt.Errorf("pipeline: path %d carries message %v, want %v", i, p.Msg, app.Messages[i])
		}
		if _, ok := ringByID[p.RingID]; !ok {
			return fmt.Errorf("pipeline: path %d rides unknown ring %d", i, p.RingID)
		}
	}
	return nil
}
