package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"sring/internal/loss"
	"sring/internal/netlist"
)

// Stage keys must react to exactly the options each stage depends on:
// upstream keys stay stable under downstream-only changes (that is the
// whole point of the chain), and every relevant knob invalidates its stage
// plus everything after it.
func TestStageKeySensitivity(t *testing.T) {
	app := netlist.MWD()
	tech := loss.Default()
	base := buildStageKeys(app, "SRing", Options{}, tech)

	t.Run("deterministic", func(t *testing.T) {
		again := buildStageKeys(app, "SRing", Options{}, tech)
		if base != again {
			t.Error("same inputs produced different stage keys")
		}
	})

	t.Run("parallelism and recorder never enter keys", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{Parallelism: 7}, tech)
		if base != k {
			t.Error("Parallelism changed a stage key")
		}
	})

	t.Run("method invalidates from construct", func(t *testing.T) {
		k := buildStageKeys(app, "XRing", Options{}, tech)
		if base.construct == k.construct || base.pdn == k.pdn {
			t.Error("method change did not invalidate the chain")
		}
	})

	t.Run("tree height invalidates from construct", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{TreeHeight: 4}, tech)
		if base.construct == k.construct {
			t.Error("TreeHeight did not change the construct key")
		}
	})

	t.Run("tech invalidates loss but not construct or layout", func(t *testing.T) {
		tech2 := tech
		tech2.SplitRatioDB = 3.5
		k := buildStageKeys(app, "SRing", Options{}, tech2)
		if base.construct != k.construct || base.layout != k.layout {
			t.Error("tech change invalidated tech-independent upstream stages")
		}
		if base.loss == k.loss || base.assign == k.assign || base.pdn == k.pdn {
			t.Error("tech change did not invalidate loss and downstream")
		}
	})

	t.Run("milp options invalidate assign but not loss", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{UseMILP: true, MILPTimeLimit: time.Second}, tech)
		if base.loss != k.loss {
			t.Error("MILP options invalidated the loss stage")
		}
		if base.assign == k.assign || base.pdn == k.pdn {
			t.Error("MILP options did not invalidate the assignment")
		}
	})

	t.Run("physical pdn invalidates only pdn", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{PhysicalPDN: true}, tech)
		if base.assign != k.assign {
			t.Error("PhysicalPDN invalidated the assignment stage")
		}
		if base.pdn == k.pdn {
			t.Error("PhysicalPDN did not invalidate the PDN stage")
		}
	})

	t.Run("application content invalidates everything", func(t *testing.T) {
		app2 := netlist.MWD()
		app2.Messages[0].Bandwidth++
		k := buildStageKeys(app2, "SRing", Options{}, tech)
		if base.construct == k.construct {
			t.Error("message bandwidth change did not invalidate the construct key")
		}
	})
}

// First writer wins: a duplicate store keeps the original value, so racing
// synthesis calls always read one consistent result.
func TestCacheFirstWriterWins(t *testing.T) {
	c := NewCache()
	var key cacheKey
	c.store(key, "first")
	c.store(key, "second")
	v, ok := c.lookup(nil, nil, "construct", key)
	if !ok || v != "first" {
		t.Errorf("lookup = %v %v, want the first stored value", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 0 {
		t.Errorf("Stats = %d/%d, want 1 hit, 0 misses", hits, misses)
	}
}

// A nil *Cache is a valid "caching off" value: lookups miss without
// counting, stores vanish.
func TestNilCache(t *testing.T) {
	var c *Cache
	var key cacheKey
	if _, ok := c.lookup(nil, nil, "construct", key); ok {
		t.Error("nil cache reported a hit")
	}
	c.store(key, "x")
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("nil cache stats = %d/%d, want 0/0", h, m)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d, want 0", c.Len())
	}
}

// Unknown methods fail with an error naming the registered alternatives.
func TestUnknownMethod(t *testing.T) {
	_, err := Synthesize(context.Background(), netlist.MWD(), "NoSuchMethod", Options{})
	if err == nil || !strings.Contains(err.Error(), "NoSuchMethod") {
		t.Errorf("err = %v, want unknown-method error naming the method", err)
	}
}
