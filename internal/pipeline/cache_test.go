package pipeline

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sring/internal/design"
	"sring/internal/layout"
	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// Stage keys must react to exactly the options each stage depends on:
// upstream keys stay stable under downstream-only changes (that is the
// whole point of the chain), and every relevant knob invalidates its stage
// plus everything after it.
func TestStageKeySensitivity(t *testing.T) {
	app := netlist.MWD()
	tech := loss.Default()
	base := buildStageKeys(app, "SRing", Options{}, tech)

	t.Run("deterministic", func(t *testing.T) {
		again := buildStageKeys(app, "SRing", Options{}, tech)
		if base != again {
			t.Error("same inputs produced different stage keys")
		}
	})

	t.Run("parallelism and recorder never enter keys", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{Parallelism: 7}, tech)
		if base != k {
			t.Error("Parallelism changed a stage key")
		}
	})

	t.Run("method invalidates from construct", func(t *testing.T) {
		k := buildStageKeys(app, "XRing", Options{}, tech)
		if base.construct == k.construct || base.pdn == k.pdn {
			t.Error("method change did not invalidate the chain")
		}
	})

	t.Run("tree height invalidates from construct", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{TreeHeight: 4}, tech)
		if base.construct == k.construct {
			t.Error("TreeHeight did not change the construct key")
		}
	})

	t.Run("tech invalidates loss but not construct or layout", func(t *testing.T) {
		tech2 := tech
		tech2.SplitRatioDB = 3.5
		k := buildStageKeys(app, "SRing", Options{}, tech2)
		if base.construct != k.construct || base.layout != k.layout {
			t.Error("tech change invalidated tech-independent upstream stages")
		}
		if base.loss == k.loss || base.assign == k.assign || base.pdn == k.pdn {
			t.Error("tech change did not invalidate loss and downstream")
		}
	})

	t.Run("milp options invalidate assign but not loss", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{UseMILP: true, MILPTimeLimit: time.Second}, tech)
		if base.loss != k.loss {
			t.Error("MILP options invalidated the loss stage")
		}
		if base.assign == k.assign || base.pdn == k.pdn {
			t.Error("MILP options did not invalidate the assignment")
		}
	})

	t.Run("physical pdn invalidates only pdn", func(t *testing.T) {
		k := buildStageKeys(app, "SRing", Options{PhysicalPDN: true}, tech)
		if base.assign != k.assign {
			t.Error("PhysicalPDN invalidated the assignment stage")
		}
		if base.pdn == k.pdn {
			t.Error("PhysicalPDN did not invalidate the PDN stage")
		}
	})

	t.Run("application content invalidates everything", func(t *testing.T) {
		app2 := netlist.MWD()
		app2.Messages[0].Bandwidth++
		k := buildStageKeys(app2, "SRing", Options{}, tech)
		if base.construct == k.construct {
			t.Error("message bandwidth change did not invalidate the construct key")
		}
	})
}

// First writer wins: a duplicate store keeps the original value, so racing
// synthesis calls always read one consistent result.
func TestCacheFirstWriterWins(t *testing.T) {
	c := NewCache()
	var key cacheKey
	c.store("construct", key, "first")
	c.store("construct", key, "second")
	v, ok := c.lookup(nil, nil, "construct", key)
	if !ok || v != "first" {
		t.Errorf("lookup = %v %v, want the first stored value", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 0 {
		t.Errorf("Stats = %d/%d, want 1 hit, 0 misses", hits, misses)
	}
}

// A nil *Cache is a valid "caching off" value: lookups miss without
// counting, stores vanish.
func TestNilCache(t *testing.T) {
	var c *Cache
	var key cacheKey
	if _, ok := c.lookup(nil, nil, "construct", key); ok {
		t.Error("nil cache reported a hit")
	}
	c.store("construct", key, "x")
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("nil cache stats = %d/%d, want 0/0", h, m)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d, want 0", c.Len())
	}
}

// Unknown methods fail with an error naming the registered alternatives.
func TestUnknownMethod(t *testing.T) {
	_, err := Synthesize(context.Background(), netlist.MWD(), "NoSuchMethod", Options{})
	if err == nil || !strings.Contains(err.Error(), "NoSuchMethod") {
		t.Errorf("err = %v, want unknown-method error naming the method", err)
	}
}

// Regression (unbounded growth): a byte-budgeted cache must hold Len() and
// byte usage under the cap across a sweep far larger than the budget,
// evicting LRU entries instead of leaking. The synthetic sweep stores many
// distinct loss-stage-sized entries across the whole key space.
func TestCacheBounded(t *testing.T) {
	const budget = 64 << 10
	c, err := NewCacheWithConfig(CacheConfig{MaxBytes: budget, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	value := make([]wavelength.PathInfo, 8) // entrySize ≈ 48 + 8·96 bytes
	perEntry := entrySize(value)
	for i := 0; i < 4096; i++ {
		var key cacheKey
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		key[2] = byte(i >> 16)
		c.store("loss", key, value)
	}
	st := c.StatsSnapshot()
	if st.Bytes > budget {
		t.Errorf("Bytes = %d, want <= budget %d", st.Bytes, budget)
	}
	if max := budget / perEntry; int64(c.Len()) > max {
		t.Errorf("Len = %d, want <= %d (budget/entry)", c.Len(), max)
	}
	if st.Evictions == 0 {
		t.Error("no evictions across a sweep 50x the byte budget")
	}
	// The accounted bytes must agree with the shards' actual content.
	var shardBytes int64
	for i := range c.shards {
		for _, e := range c.shards[i].m {
			shardBytes += e.size
		}
	}
	if shardBytes != st.Bytes {
		t.Errorf("accounted bytes %d != resident bytes %d", st.Bytes, shardBytes)
	}
}

// The bound must also hold for real synthesis sweeps, with designs still
// coming back correct after evictions.
func TestCacheBoundedSynthesis(t *testing.T) {
	const budget = 32 << 10
	c, err := NewCacheWithConfig(CacheConfig{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	app := netlist.MWD()
	for i := 0; i < 12; i++ {
		tech := loss.Default()
		tech.SplitRatioDB = 3.0 + 0.05*float64(i)
		if _, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Tech: tech, Cache: c, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Bytes(); got > budget+budget/defaultCacheShards {
		t.Errorf("Bytes = %d, want within one per-shard overshoot of %d", got, budget)
	}
	if c.StatsSnapshot().Evictions == 0 {
		t.Error("sweep past the budget evicted nothing")
	}
}

// coalesceCtorCalls counts executions of the CoalesceProbe constructor;
// coalesceCtorGate, when non-nil, blocks the first execution until closed
// so a test can guarantee a second request races it.
var (
	coalesceCtorCalls atomic.Int64
	coalesceCtorGate  chan struct{}
)

func init() {
	Register("CoalesceProbe", func(ctx context.Context, app *netlist.Application, opt Options, parent *obs.Span) (*Construction, error) {
		if coalesceCtorCalls.Add(1) == 1 && coalesceCtorGate != nil {
			<-coalesceCtorGate
		}
		var order []netlist.NodeID
		for _, n := range app.Nodes {
			order = append(order, n.ID)
		}
		r := &ring.Ring{ID: 0, Kind: ring.Base, Order: order}
		var paths []ring.Path
		for _, m := range app.Messages {
			p, err := ring.Route(app, r, m)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
		return &Construction{Rings: []*ring.Ring{r}, Paths: paths, Weights: wavelength.DefaultWeights()}, nil
	})
}

// Regression (duplicate concurrent stage execution): two racing identical
// Synthesize calls on a cold cache must run the construct stage exactly
// once — the second request coalesces onto the first's in-flight execution
// instead of duplicating it, observable in pipeline.cache.coalesced.
func TestSingleflightCoalesces(t *testing.T) {
	c := NewCache()
	reg := obs.NewRegistry()
	app := netlist.MWD()
	opt := Options{Cache: c, Registry: reg, Parallelism: 1}

	coalesceCtorCalls.Store(0)
	coalesceCtorGate = make(chan struct{})
	defer func() { coalesceCtorGate = nil }()

	errs := make(chan error, 2)
	run := func() {
		_, err := Synthesize(context.Background(), app, "CoalesceProbe", opt)
		errs <- err
	}
	go run()
	// Wait until the first request is inside the constructor (holding the
	// construct singleflight slot), then race the second against it.
	for coalesceCtorCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go run()
	// Give the second request time to reach the in-flight wait, then let
	// the leader finish.
	time.Sleep(10 * time.Millisecond)
	close(coalesceCtorGate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	if got := coalesceCtorCalls.Load(); got != 1 {
		t.Errorf("construct stage executed %d times, want exactly 1", got)
	}
	if got := c.StatsSnapshot().Coalesced; got < 1 {
		t.Errorf("cache coalesced = %d, want >= 1", got)
	}
	if got := reg.Counter("pipeline.cache.coalesced").Value(); got < 1 {
		t.Errorf("pipeline.cache.coalesced = %d, want >= 1", got)
	}
}

// Regression (unvalidated cache hits): a corrupted non-construct entry —
// wrong type, wrong shape — must be dropped and recomputed, not handed to
// downstream stages. The design must come out identical to an uncached run.
func TestCacheHitValidation(t *testing.T) {
	app := netlist.MWD()
	tech, err := loss.Normalize(loss.Tech{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	poisons := map[string]interface{}{
		"layout": "not a layout",
		"loss":   make([]wavelength.PathInfo, 3), // wrong length, zero msgs
		"assign": &assignValue{},                 // nil assignment
		"pdn":    &pdn.Network{},                 // no feed lengths
	}
	keys := buildStageKeys(app, "CoalesceProbe", Options{}, tech)
	keyOf := map[string]cacheKey{
		"layout": keys.layout, "loss": keys.loss, "assign": keys.assign, "pdn": keys.pdn,
	}
	for stage, poison := range poisons {
		c := NewCache()
		c.store(stage, keyOf[stage], poison)
		got, err := Synthesize(context.Background(), app, "CoalesceProbe", Options{Cache: c, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s poisoned: %v", stage, err)
		}
		if c.StatsSnapshot().Invalid != 1 {
			t.Errorf("%s poisoned: invalid = %d, want 1", stage, c.StatsSnapshot().Invalid)
		}
		if !designsEqual(t, want, got) {
			t.Errorf("%s poisoned: recomputed design differs from uncached run", stage)
		}
	}
}

// The sharing contract: cached values are immutable; what callers may
// mutate (assignments, whose Normalize renumbers in place) is cloned on
// the way in and out. Hash every cached value, hammer the cache with
// concurrent reuse while mutating the returned designs, and hash again.
func TestCachedValueImmutability(t *testing.T) {
	c := NewCache()
	app := netlist.MWD()
	opt := Options{Cache: c, Parallelism: 1}
	want, err := Synthesize(context.Background(), app, "CoalesceProbe", opt)
	if err != nil {
		t.Fatal(err)
	}
	before := hashCacheEntries(t, c)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := Synthesize(context.Background(), app, "CoalesceProbe", opt)
			if err != nil {
				t.Error(err)
				return
			}
			// A caller-side mutation that must not reach the cache.
			d.Assignment.Normalize()
		}()
	}
	wg.Wait()

	after := hashCacheEntries(t, c)
	if len(before) != len(after) {
		t.Fatalf("entry count changed %d -> %d under pure reuse", len(before), len(after))
	}
	for k, h := range before {
		if after[k] != h {
			t.Errorf("cached entry mutated by concurrent reuse (key %x...)", k[:4])
		}
	}
	got, err := Synthesize(context.Background(), app, "CoalesceProbe", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !designsEqual(t, want, got) {
		t.Error("design served after concurrent reuse differs from the first")
	}
}

// Regression (nil-cache lookups under-count telemetry): with caching off,
// stages must count into pipeline.cache.disabled — not misses — so
// hits/(hits+misses) stays meaningful over mixed cached/uncached runs.
func TestNilCacheDisabledCounter(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := Synthesize(context.Background(), netlist.MWD(), "CoalesceProbe", Options{Registry: reg, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pipeline.cache.disabled").Value(); got != 5 {
		t.Errorf("pipeline.cache.disabled = %d, want 5 (one per stage)", got)
	}
	if got := reg.Counter("pipeline.cache.misses").Value(); got != 0 {
		t.Errorf("pipeline.cache.misses = %d, want 0 for an uncached run", got)
	}
	if got := reg.Counter("pipeline.cache.hits").Value(); got != 0 {
		t.Errorf("pipeline.cache.hits = %d, want 0 for an uncached run", got)
	}
}

// hashCacheEntries fingerprints every cached value and returns a per-key
// SHA-256 — a content fingerprint of the whole cache. Map-bearing values
// are serialised with sorted keys (gob's map encoding is order-random, so
// it cannot be hashed directly).
func hashCacheEntries(t *testing.T, c *Cache) map[cacheKey][sha256.Size]byte {
	t.Helper()
	out := make(map[cacheKey][sha256.Size]byte)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			out[k] = sha256.Sum256(fingerprint(t, e.v))
		}
		sh.mu.Unlock()
	}
	return out
}

// fingerprint canonically serialises one cached value.
func fingerprint(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	switch x := v.(type) {
	case *layoutValue:
		res := x.Res
		keys := make([]layout.SegKey, 0, len(res.Routes))
		for k := range res.Routes {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].RingID != keys[j].RingID {
				return keys[i].RingID < keys[j].RingID
			}
			return keys[i].Seg < keys[j].Seg
		})
		for _, k := range keys {
			fmt.Fprintf(&buf, "%v=%v b%d c%d;", k, res.Routes[k], res.SegBends[k], res.SegCrossings[k])
		}
		fmt.Fprintf(&buf, "x%d b%d mm%v rings%v", res.TotalCrossings, res.TotalBends, res.TotalWaveguideMM, res.Rings())
	case *pdn.Network:
		fmt.Fprintf(&buf, "t%d e%d s%d;", x.TreeStages, x.ExtraStages, x.TotalSplitters)
		var ids []int
		for id := range x.FeedLengthMM {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&buf, "%d=%v/%v;", id, x.FeedLengthMM[netlist.NodeID(id)], x.NodeSplitter[netlist.NodeID(id)])
		}
	default:
		// Slice-backed values (constructions, priced paths, assignments)
		// gob-encode deterministically.
		if err := gob.NewEncoder(&buf).Encode(&diskEntry{Version: persistVersion, Stage: "", Value: v}); err != nil {
			t.Fatalf("encode cached %T entry: %v", v, err)
		}
	}
	return buf.Bytes()
}

// designsEqual compares two designs by their canonical JSON encodings.
func designsEqual(t *testing.T, a, b *design.Design) bool {
	t.Helper()
	var ab, bb bytes.Buffer
	if err := design.EncodeJSON(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := design.EncodeJSON(&bb, b); err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}
