package pipeline

import (
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// entrySize estimates the resident bytes of one cached stage value. The
// estimates are deliberately simple — struct headers rounded up, map
// entries costed at a flat overhead — because the byte budget only needs
// to bound growth, not to account bytes exactly. Unknown types (tests,
// future stages) get a flat conservative charge so they still count
// against the budget.
func entrySize(v interface{}) int64 {
	const (
		ptrOverhead = 48  // allocation header + pointer slot
		mapEntry    = 64  // bucket share + key + value
		unknown     = 256 // conservative default for unrecognised types
	)
	switch t := v.(type) {
	case *Construction:
		s := int64(ptrOverhead + 128)
		for _, r := range t.Rings {
			s += ptrOverhead + 32 + 8*int64(len(r.Order))
		}
		s += pathsSize(t.Paths)
		if t.Preset != nil {
			s += ptrOverhead + 8*int64(len(t.Preset.Lambda))
		}
		return s
	case *layoutValue:
		if t.Res == nil {
			return ptrOverhead
		}
		s := int64(ptrOverhead + 96)
		for _, pl := range t.Res.Routes {
			s += mapEntry + 16*int64(len(pl.Points))
		}
		s += mapEntry * int64(len(t.Res.SegBends)+len(t.Res.SegCrossings))
		s += mapEntry * int64(len(t.Res.Rings())) // the ring index map
		return s
	case []wavelength.PathInfo:
		s := int64(ptrOverhead)
		for _, pi := range t {
			s += 96 + 8*int64(len(pi.Path.Segs))
		}
		return s
	case *assignValue:
		s := int64(ptrOverhead + 160) // stats copy
		if t.Assignment != nil {
			s += ptrOverhead + 8*int64(len(t.Assignment.Lambda))
		}
		return s
	case *pdn.Network:
		s := int64(ptrOverhead + 64)
		s += mapEntry * int64(len(t.NodeSplitter)+len(t.FeedLengthMM))
		if t.Tree != nil {
			s += ptrOverhead + 64 + mapEntry*int64(len(t.Tree.FeedLengthMM))
			s += treeSize(t.Tree.Root)
		}
		return s
	default:
		return unknown
	}
}

func pathsSize(paths []ring.Path) int64 {
	s := int64(24)
	for _, p := range paths {
		s += 96 + 8*int64(len(p.Segs))
	}
	return s
}

func treeSize(n *pdn.TreeNode) int64 {
	if n == nil {
		return 0
	}
	s := int64(64)
	for _, c := range n.Children {
		s += treeSize(c)
	}
	return s
}
