package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestResolveSpeculative(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	if got := ResolveSpeculative(0); got != cores {
		t.Errorf("ResolveSpeculative(0) = %d, want GOMAXPROCS %d", got, cores)
	}
	if got := ResolveSpeculative(1); got != 1 {
		t.Errorf("ResolveSpeculative(1) = %d, want 1", got)
	}
	// An explicit knob above the core count is capped: speculative work
	// beyond the cores only steals cycles from the critical path.
	if got := ResolveSpeculative(cores + 5); got != cores {
		t.Errorf("ResolveSpeculative(%d) = %d, want core cap %d", cores+5, got, cores)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, parallelism := range []int{1, 2, 4, 0} {
		const n = 137
		seen := make([]int32, n)
		ForEach(parallelism, n, func(i int) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times, want 1", parallelism, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach out of order: %v", order)
		}
	}
}

func TestForEachZeroN(t *testing.T) {
	ForEach(4, 0, func(i int) { t.Error("fn called for n = 0") })
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn did not propagate")
		}
	}()
	ForEach(4, 16, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}
