// Package par holds the small shared primitives of the synthesis
// pipeline's deterministic parallel execution layer: resolving the public
// Parallelism knob (0 = GOMAXPROCS, 1 = sequential) and a bounded,
// index-addressed fan-out helper.
//
// The pipeline's determinism guarantee — parallel synthesis produces
// bit-identical designs to sequential synthesis — is upheld by the callers:
// every use of ForEach writes results only to index-distinct storage, and
// the speculative solvers in internal/milp and internal/cluster commit
// results in a canonical order. This package only supplies the mechanics.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sring/internal/obs"
)

// Aggregate telemetry for the parallel dispatch path: how long each task
// waited between fan-out start and its dispatch, and how long it ran.
// Recorded only when ForEach actually goes parallel — the sequential inline
// path stays instrumentation-free, so parallelism-1 runs keep their exact
// cost profile. par has no options struct to plumb a registry through, so
// these record into the process default.
var (
	taskWaitH = obs.Default().Histogram("par.task.wait.ns")
	taskRunH  = obs.Default().Histogram("par.task.run.ns")
)

// Resolve maps a Parallelism knob to a worker count: 0 means
// runtime.GOMAXPROCS(0), anything below 1 is clamped to 1 (sequential).
func Resolve(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// ResolveSpeculative maps the knob to a worker count for *speculative*
// helpers — optional work (prefetched LP relaxations, look-ahead L_max
// probes) that only pays off on cores the critical path is not using. The
// resolved count is additionally capped at GOMAXPROCS: splitting mandatory
// ForEach work across more goroutines than cores is merely neutral, but
// speculative solves beyond the core count steal cycles from the very
// path they are meant to hide, which is how -j 4 made single-core runs
// slower. Determinism is unaffected — speculation never changes results,
// only where (and whether ahead of time) they are computed.
func ResolveSpeculative(parallelism int) int {
	w := Resolve(parallelism)
	if cores := runtime.GOMAXPROCS(0); w > cores {
		w = cores
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on up to Resolve(parallelism)
// goroutines and returns when all calls have finished. With an effective
// worker count of 1 the calls run inline, in index order, on the calling
// goroutine — exactly the sequential behaviour. fn must write its result to
// index-distinct storage; ForEach imposes no other ordering.
//
// A panic in fn is re-raised on the calling goroutine after the remaining
// workers drain.
func ForEach(parallelism, n int, fn func(i int)) {
	_ = ForEachContext(context.Background(), parallelism, n, fn)
}

// ForEachContext is ForEach with cooperative cancellation: once ctx is
// cancelled no further indices are dispatched (calls already running
// finish) and the context's error is returned. Indices not dispatched are
// simply skipped — the caller can identify them because fn never wrote
// their slots. A nil return means fn ran for every index.
func ForEachContext(ctx context.Context, parallelism, n int, fn func(i int)) error {
	workers := Resolve(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	fanoutStart := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					next.Store(int64(n)) // stop handing out work
				}
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				dispatched := time.Now()
				taskWaitH.RecordDuration(dispatched.Sub(fanoutStart))
				fn(i)
				taskRunH.RecordSince(dispatched)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}
