package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// Sequential path: a cancellation between indices stops the loop; indices
// already dispatched have run, the rest were never touched.
func TestForEachContextSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := make([]bool, 5)
	err := ForEachContext(ctx, 1, len(ran), func(i int) {
		ran[i] = true
		if i == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	want := []bool{true, true, false, false, false}
	for i := range want {
		if ran[i] != want[i] {
			t.Errorf("ran[%d] = %v, want %v", i, ran[i], want[i])
		}
	}
}

// Parallel path: a pre-cancelled context dispatches nothing.
func TestForEachContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	err := ForEachContext(ctx, 4, 100, func(i int) { calls.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("fn ran %d times under a pre-cancelled context, want 0", n)
	}
}

// Uncancelled contexts change nothing: every index runs, nil error.
func TestForEachContextComplete(t *testing.T) {
	var calls atomic.Int32
	if err := ForEachContext(context.Background(), 4, 64, func(i int) { calls.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 64 {
		t.Errorf("fn ran %d times, want 64", n)
	}
}
