package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sring/internal/lp"
)

// Graph colouring as a MILP: minimise the number of colours used on graphs
// with known chromatic numbers — the same model family as the wavelength
// assignment.
func TestGraphColouring(t *testing.T) {
	colour := func(n int, edges [][2]int, maxK int) (int, error) {
		// Vars: x[v*maxK+c] = vertex v has colour c; y[c] = colour used.
		nx := n * maxK
		p := &Problem{
			LP:      lp.Problem{NumVars: nx + maxK, Objective: make([]float64, nx+maxK)},
			Integer: make([]bool, nx+maxK),
		}
		for i := range p.Integer {
			p.Integer[i] = true
		}
		for c := 0; c < maxK; c++ {
			p.LP.Objective[nx+c] = 1
		}
		for v := 0; v < n; v++ {
			terms := map[int]float64{}
			for c := 0; c < maxK; c++ {
				terms[v*maxK+c] = 1
			}
			p.LP.AddConstraint(lp.EQ, 1, terms)
		}
		for _, e := range edges {
			for c := 0; c < maxK; c++ {
				p.LP.AddConstraint(lp.LE, 1, map[int]float64{
					e[0]*maxK + c: 1, e[1]*maxK + c: 1,
				})
			}
		}
		for c := 0; c < maxK; c++ {
			for v := 0; v < n; v++ {
				p.LP.AddConstraint(lp.LE, 0, map[int]float64{v*maxK + c: 1, nx + c: -1})
			}
			p.LP.AddConstraint(lp.LE, 1, map[int]float64{nx + c: 1})
		}
		// Symmetry breaking.
		for c := 0; c+1 < maxK; c++ {
			p.LP.AddConstraint(lp.LE, 0, map[int]float64{nx + c + 1: 1, nx + c: -1})
		}
		res, err := Solve(p, Options{})
		if err != nil {
			return 0, err
		}
		if res.Status != Optimal {
			t.Fatalf("colouring status %v", res.Status)
		}
		return int(math.Round(res.Objective)), nil
	}

	// Triangle: chromatic number 3.
	if k, err := colour(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3); err != nil || k != 3 {
		t.Errorf("triangle coloured with %d (err %v), want 3", k, err)
	}
	// 5-cycle: chromatic number 3.
	if k, err := colour(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 3); err != nil || k != 3 {
		t.Errorf("C5 coloured with %d (err %v), want 3", k, err)
	}
	// Path: chromatic number 2.
	if k, err := colour(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, 3); err != nil || k != 2 {
		t.Errorf("path coloured with %d (err %v), want 2", k, err)
	}
	// Bipartite K2,3: chromatic number 2.
	if k, err := colour(5, [][2]int{{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}}, 3); err != nil || k != 2 {
		t.Errorf("K2,3 coloured with %d (err %v), want 2", k, err)
	}
}

// The MILP optimum is never better than its LP relaxation's.
func TestRelaxationBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		p := &Problem{
			LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
			Integer: make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.LP.Objective[j] = math.Round(rng.Float64()*10 - 5)
			p.Integer[j] = true
			p.LP.AddConstraint(lp.LE, 1, map[int]float64{j: 1})
		}
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			terms[j] = 1 + math.Round(rng.Float64()*3)
		}
		p.LP.AddConstraint(lp.LE, math.Round(rng.Float64()*float64(2*n))+1, terms)

		relax, err := lp.Solve(&p.LP)
		if err != nil || relax.Status != lp.Optimal {
			t.Fatalf("trial %d: relaxation failed: %v", trial, err)
		}
		res, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		if res.Objective < relax.Objective-1e-6 {
			t.Errorf("trial %d: MILP %v beat its relaxation %v", trial, res.Objective, relax.Objective)
		}
		if res.Bound > res.Objective+1e-6 {
			t.Errorf("trial %d: reported bound %v above objective %v", trial, res.Bound, res.Objective)
		}
	}
}

// Equality-constrained integer program: magic-square-like row/column sums.
func TestIntegerEqualities(t *testing.T) {
	// 2x2 matrix of integers in [0,3], all row/col sums equal 3, minimise
	// the top-left cell. Optimum: x00 = 0 (e.g. [[0,3],[3,0]]).
	p := &Problem{
		LP:      lp.Problem{NumVars: 4, Objective: []float64{1, 0, 0, 0}},
		Integer: []bool{true, true, true, true},
	}
	for j := 0; j < 4; j++ {
		p.LP.AddConstraint(lp.LE, 3, map[int]float64{j: 1})
	}
	p.LP.AddConstraint(lp.EQ, 3, map[int]float64{0: 1, 1: 1}) // row 0
	p.LP.AddConstraint(lp.EQ, 3, map[int]float64{2: 1, 3: 1}) // row 1
	p.LP.AddConstraint(lp.EQ, 3, map[int]float64{0: 1, 2: 1}) // col 0
	p.LP.AddConstraint(lp.EQ, 3, map[int]float64{1: 1, 3: 1}) // col 1
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 0", res.Status, res.Objective)
	}
}

// When every LP relaxation is cut off (microscopic time limit) and no
// incumbent exists, the solver must report Unknown — never Optimal with a
// nil solution.
func TestUnresolvedWithoutIncumbentIsUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 40
	p := &Problem{
		LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
		Integer: make([]bool, n),
	}
	for j := 0; j < n; j++ {
		p.Integer[j] = true
		p.LP.Objective[j] = -1 - rng.Float64()
		p.LP.AddConstraint(lp.LE, 1, map[int]float64{j: 1})
	}
	for r := 0; r < 30; r++ {
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			terms[j] = 0.5 + rng.Float64()
		}
		p.LP.AddConstraint(lp.LE, 2+rng.Float64()*3, terms)
	}
	res, err := Solve(p, Options{TimeLimit: time.Nanosecond, DisablePresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal && res.X == nil {
		t.Fatal("Optimal status with nil solution")
	}
	if res.Status != Unknown && res.X == nil {
		t.Fatalf("status %v with nil X, want unknown", res.Status)
	}
}
