package milp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sring/internal/lp"
	"sring/internal/obs"
	"sring/internal/par"
)

// randomBinaryProgram builds a small random binary program (the same family
// as TestRandomBinaryProgramsVsBruteForce, but larger so the search tree is
// deep enough for speculation to matter).
func randomBinaryProgram(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{
		LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
		Integer: allInt(n),
	}
	for j := range p.LP.Objective {
		p.LP.Objective[j] = math.Round(rng.Float64()*20 - 10)
	}
	for i := 0; i < m; i++ {
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			if c := math.Round(rng.Float64() * 5); c != 0 {
				terms[j] = c
			}
		}
		p.LP.AddConstraint(lp.LE, math.Round(rng.Float64()*float64(3*n)), terms)
	}
	binaryBox(&p.LP)
	return p
}

// hardKnapsack builds a knapsack with irrational-ish weights and a tight
// capacity, whose LP relaxation is fractional at almost every node — the
// search explores tens of nodes, enough for speculation to engage.
func hardKnapsack(rng *rand.Rand, n int) *Problem {
	p := &Problem{
		LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
		Integer: allInt(n),
	}
	terms := map[int]float64{}
	for j := 0; j < n; j++ {
		p.LP.Objective[j] = -(1 + rng.Float64()*9) // maximise value
		terms[j] = 1 + rng.Float64()*9
	}
	var tot float64
	for _, w := range terms {
		tot += w
	}
	p.LP.AddConstraint(lp.LE, tot/2, terms)
	binaryBox(&p.LP)
	return p
}

// forceSpeculation lowers the speculation gates for the duration of a test
// so the deliberately small instances here exercise the prefetcher, which
// the production thresholds would route to the inline evaluator.
func forceSpeculation(t *testing.T) {
	t.Helper()
	oldSize, oldOpen, oldResolve := specMinProblemSize, specMinOpenNodes, resolveSpecWorkers
	specMinProblemSize, specMinOpenNodes = 0, 0
	resolveSpecWorkers = par.Resolve // ignore the core cap on 1-CPU CI boxes
	t.Cleanup(func() {
		specMinProblemSize, specMinOpenNodes, resolveSpecWorkers = oldSize, oldOpen, oldResolve
	})
}

// TestParallelMatchesSequential is the core determinism contract: the
// parallel solve must reproduce the sequential Result field for field —
// same status, same X, same objective, same bound, same node count.
func TestParallelMatchesSequential(t *testing.T) {
	forceSpeculation(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 24; trial++ {
		var p *Problem
		if trial%2 == 0 {
			p = randomBinaryProgram(rng, 6+rng.Intn(6), 2+rng.Intn(4))
		} else {
			p = hardKnapsack(rng, 10+rng.Intn(6))
		}
		seq, err := Solve(p, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := Solve(p, Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("trial %d parallelism %d: %v", trial, workers, err)
			}
			if got.Status != seq.Status {
				t.Fatalf("trial %d parallelism %d: status %v, sequential %v", trial, workers, got.Status, seq.Status)
			}
			if got.Objective != seq.Objective || got.Bound != seq.Bound {
				t.Fatalf("trial %d parallelism %d: objective/bound %v/%v, sequential %v/%v",
					trial, workers, got.Objective, got.Bound, seq.Objective, seq.Bound)
			}
			if got.Nodes != seq.Nodes {
				t.Fatalf("trial %d parallelism %d: %d nodes, sequential %d", trial, workers, got.Nodes, seq.Nodes)
			}
			if !reflect.DeepEqual(got.X, seq.X) {
				t.Fatalf("trial %d parallelism %d: X diverged\n got %v\nwant %v", trial, workers, got.X, seq.X)
			}
		}
	}
}

// TestParallelTelemetryMatchesSequential: LP pivot counters are attributed
// at consumption time, so lp.* and milp.* counters (bar the spec.*
// diagnostics) must be identical between sequential and parallel runs.
func TestParallelTelemetryMatchesSequential(t *testing.T) {
	forceSpeculation(t)
	rng := rand.New(rand.NewSource(11))
	p := hardKnapsack(rng, 14)

	run := func(workers int) *obs.Recorder {
		rec := obs.New()
		sp := rec.StartSpan("test")
		if _, err := Solve(p, Options{Parallelism: workers, Obs: sp}); err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		sp.End()
		return rec
	}
	seq, par := run(1), run(4)
	for _, name := range []string{
		"milp.nodes", "milp.incumbents",
		"lp.solves", "lp.pivots.phase1", "lp.pivots.phase2",
	} {
		if s, g := seq.Counter(name).Value(), par.Counter(name).Value(); s != g {
			t.Errorf("counter %s: parallel %d, sequential %d", name, g, s)
		}
	}
	if par.Counter("milp.steal.scheduled").Value() == 0 {
		t.Error("parallel run scheduled no speculative solves")
	}
}

// TestParallelWithSeededIncumbent checks the publish path: a seeded
// incumbent lets workers skip, and the result still matches sequential.
func TestParallelWithSeededIncumbent(t *testing.T) {
	forceSpeculation(t)
	rng := rand.New(rand.NewSource(3))
	p := hardKnapsack(rng, 12)
	seq, err := Solve(p, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.X == nil {
		t.Skip("random instance infeasible")
	}
	opts := Options{Parallelism: 4, Incumbent: seq.X}
	got, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(p, Options{Parallelism: 1, Incumbent: seq.X})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != ref.Status || got.Objective != ref.Objective ||
		got.Nodes != ref.Nodes || !reflect.DeepEqual(got.X, ref.X) {
		t.Fatalf("seeded parallel diverged: got %+v want %+v", got, ref)
	}
}

// TestSpeculationGatedOnSmallProblems: below the size gate a parallel
// solve must route to the inline evaluator — no speculative solves are
// scheduled, and the result still matches the sequential one exactly.
func TestSpeculationGatedOnSmallProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := hardKnapsack(rng, 14) // 14 vars × 2 rows: far below specMinProblemSize

	run := func(workers int) (*Result, *obs.Recorder) {
		rec := obs.New()
		sp := rec.StartSpan("test")
		res, err := Solve(p, Options{Parallelism: workers, Obs: sp})
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		sp.End()
		return res, rec
	}
	seq, _ := run(1)
	par4, rec := run(4)
	if n := rec.Counter("milp.steal.scheduled").Value(); n != 0 {
		t.Errorf("small problem scheduled %d speculative solves, want 0", n)
	}
	if par4.Status != seq.Status || par4.Objective != seq.Objective ||
		par4.Nodes != seq.Nodes || !reflect.DeepEqual(par4.X, seq.X) {
		t.Fatalf("gated parallel diverged: got %+v want %+v", par4, seq)
	}
}

// TestPrefetcherLazyStart: even above the size gate, a solve whose
// frontier never reaches specMinOpenNodes must not start the worker pool.
func TestPrefetcherLazyStart(t *testing.T) {
	oldSize, oldResolve := specMinProblemSize, resolveSpecWorkers
	specMinProblemSize = 0 // size gate open, open-node gate at production value
	resolveSpecWorkers = par.Resolve
	t.Cleanup(func() { specMinProblemSize, resolveSpecWorkers = oldSize, oldResolve })

	rng := rand.New(rand.NewSource(7))
	p := randomBinaryProgram(rng, 4, 2) // tree too small to grow a frontier
	rec := obs.New()
	sp := rec.StartSpan("test")
	if _, err := Solve(p, Options{Parallelism: 4, Obs: sp}); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if n := rec.Counter("milp.steal.scheduled").Value(); n != 0 {
		t.Errorf("tiny tree scheduled %d speculative solves, want 0", n)
	}
}

// TestNodeFingerprintDeterministic: the explored-node fingerprint (the
// FNV-1a fold of every (seq, bound) pair in exploration order) must be
// identical across worker counts — the strongest form of the determinism
// contract, sensitive to any reordering of pops, not just to the final
// Result fields.
func TestNodeFingerprintDeterministic(t *testing.T) {
	forceSpeculation(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		var p *Problem
		if trial%2 == 0 {
			p = randomBinaryProgram(rng, 7+rng.Intn(5), 2+rng.Intn(4))
		} else {
			p = hardKnapsack(rng, 11+rng.Intn(5))
		}
		seq, err := Solve(p, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		if seq.Nodes > 0 && seq.NodeFingerprint == 0 {
			t.Fatalf("trial %d: explored %d nodes but fingerprint is 0", trial, seq.Nodes)
		}
		for _, workers := range []int{2, 8} {
			got, err := Solve(p, Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("trial %d parallelism %d: %v", trial, workers, err)
			}
			if got.NodeFingerprint != seq.NodeFingerprint {
				t.Fatalf("trial %d parallelism %d: fingerprint %#x, sequential %#x (nodes %d vs %d)",
					trial, workers, got.NodeFingerprint, seq.NodeFingerprint, got.Nodes, seq.Nodes)
			}
		}
	}
}

// TestParallelBruteForce re-runs the brute-force oracle with workers on, so
// exactness (not just seq-equivalence) is checked under the pool.
func TestParallelBruteForce(t *testing.T) {
	forceSpeculation(t)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4)
		p := randomBinaryProgram(rng, n, 1+rng.Intn(3))
		bestObj := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					x[j] = 1
				}
			}
			if obj, err := checkIncumbent(p, x); err == nil && obj < bestObj {
				bestObj = obj
			}
		}
		res, err := Solve(p, Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(bestObj, 1) {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: status %v, want infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal || !approx(res.Objective, bestObj, 1e-6) {
			t.Fatalf("trial %d: got %v obj %v, brute force %v", trial, res.Status, res.Objective, bestObj)
		}
	}
}
