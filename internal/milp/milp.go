// Package milp implements a mixed-integer linear programming solver by
// LP-based branch and bound on top of sring/internal/lp.
//
// It stands in for the commercial MILP solver (Gurobi) used by the SRing
// paper: the wavelength-assignment model of paper Sec. III-B is built and
// solved through this package. The solver is exact when run to completion;
// with a time or node limit it returns the best incumbent found and the
// remaining optimality gap.
package milp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"sring/internal/lp"
	"sring/internal/obs"
)

// Problem is a minimisation MILP: the embedded LP plus integrality marks.
type Problem struct {
	LP lp.Problem
	// Integer[i] marks variable i as integral. Length must equal NumVars.
	Integer []bool
	// CoverRows optionally lists indices into LP.Constraints of rows with
	// knapsack structure over binary variables — after negating a ≥-row and
	// complementing negative coefficients they read Σ a'_j x̃_j ≤ b' with
	// a' > 0 over 0/1 variables — that the branch-and-cut layer targets for
	// lifted cover separation. Rows that turn out not to be knapsacks over
	// root-binary variables are skipped at solve time; out-of-range indices
	// fail Validate. The indices are remapped through presolve and row
	// prepping automatically.
	CoverRows []int
}

// Validate checks dimensions.
func (p *Problem) Validate() error {
	if err := p.LP.Validate(); err != nil {
		return err
	}
	if len(p.Integer) != p.LP.NumVars {
		return fmt.Errorf("milp: Integer has length %d, want %d", len(p.Integer), p.LP.NumVars)
	}
	for _, r := range p.CoverRows {
		if r < 0 || r >= len(p.LP.Constraints) {
			return fmt.Errorf("milp: CoverRows index %d out of range [0,%d)", r, len(p.LP.Constraints))
		}
	}
	return nil
}

// DefaultTimeLimit is the wall-clock budget applied when Options.TimeLimit
// is zero. It is the single default for the whole pipeline: the wavelength
// assignment and the public sring.Options pass a zero limit through to
// here rather than substituting their own.
const DefaultTimeLimit = 10 * time.Second

// Options tunes the branch-and-bound search.
type Options struct {
	// TimeLimit bounds the wall-clock search time. Zero means
	// DefaultTimeLimit (10 s). The deadline is enforced inside LP pivot
	// iterations too, so a single long relaxation cannot overshoot it.
	TimeLimit time.Duration
	// NodeLimit bounds the number of explored branch-and-bound nodes.
	// Zero means 200000.
	NodeLimit int
	// Parallelism is the number of workers evaluating LP relaxations of
	// frontier nodes concurrently: 0 means GOMAXPROCS, 1 means the plain
	// sequential solve. Workers evaluate the best-first frontier
	// speculatively while results are committed in the canonical heap
	// order (bound, then node sequence number), so the returned solution
	// — explored-node count, incumbents, bound, X — is bit-identical to
	// the sequential solve whenever the search completes within its
	// limits.
	Parallelism int
	// Incumbent optionally seeds the search with a known feasible solution
	// (e.g. from a heuristic); it is validated before use.
	Incumbent []float64
	// BranchPriority optionally ranks integer variables for branching:
	// among the fractional integer variables of a relaxation, one with the
	// highest priority is branched on, ties broken by fractionality. nil
	// means pure most-fractional branching. Length must equal NumVars when
	// set. Model-structure variables (e.g. wavelength activations) branched
	// before dependent assignment variables can shrink the tree by orders
	// of magnitude.
	BranchPriority []int
	// Gap is the relative optimality gap at which the search stops early.
	// Zero means solve to proven optimality.
	Gap float64
	// CutRounds caps the cutting-plane rounds run when a node's relaxation
	// comes back fractional: the root gets the full budget, shallow nodes
	// (depth ≤ 4) one round, deeper nodes none. Zero means the default (6);
	// negative disables cut separation entirely. Cuts are separated,
	// selected and purged only at canonical node consumption on the main
	// goroutine, so any Parallelism setting reproduces the same cuts —
	// and the same NodeFingerprint — bit for bit.
	CutRounds int
	// MaxCutsPerRound caps how many cuts are appended per round (highest
	// efficacy — norm-scaled violation — first). Zero means the default
	// (8); negative means no cap.
	MaxCutsPerRound int
	// DisablePresolve skips the bound-propagation reduction.
	DisablePresolve bool
	// Obs, when non-nil, is the parent span under which the solve records
	// its telemetry: a milp.solve span (status, node count, bound, gap), a
	// milp.presolve span, gap-trajectory events (one per incumbent), and
	// the milp.nodes / milp.incumbents / lp.* counters.
	Obs *obs.Span
	// Registry receives aggregate telemetry across solves: per-node LP
	// times (milp.node.ns), incumbent improvements
	// (milp.incumbent.delta.micro, objective decrease in micro-units), the
	// milp.nodes / milp.incumbents counters, and the lp.* kernel
	// histograms. Nil means the process-wide obs.Default() registry.
	Registry *obs.Registry
}

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal: proven optimal within the requested gap.
	Optimal Status = iota
	// Feasible: a limit was reached; the returned solution is the best
	// incumbent but optimality is unproven.
	Feasible
	// Infeasible: no integral solution exists.
	Infeasible
	// Unknown: a limit was reached before any incumbent was found.
	Unknown
)

// String returns the status label.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64 // best integral solution (valid for Optimal/Feasible)
	Objective float64   // objective of X
	Bound     float64   // proven lower bound on the optimum
	Nodes     int       // branch-and-bound nodes explored
	// TimeLimitHit reports that the wall-clock budget expired before the
	// search finished (the node limit alone does not set it).
	TimeLimitHit bool
	// NodeFingerprint is an FNV-1a hash folding in the (seq, bound,
	// active-cut signature) triple of every node at the moment it is
	// explored, in order — the cut signature hashes the cutting planes the
	// node inherited, so the fingerprint certifies the cut trajectory too.
	// It makes the determinism contract checkable: any Parallelism setting
	// must reproduce the sequential fingerprint bit for bit, because the
	// main loop alone pops nodes, separates cuts and commits results in
	// canonical heap order. Zero when branch and bound never ran (presolve
	// decided the instance).
	NodeFingerprint uint64
	// Cancelled reports that the context passed to SolveContext was
	// cancelled before the search finished. The result is still valid:
	// X is the best incumbent found (the seeded incumbent at worst) and
	// Bound the best proven bound at the moment of cancellation.
	Cancelled bool
}

// Gap returns the relative optimality gap (Objective − Bound) / |Objective|
// of the result: 0 for a proven optimum, +Inf when no incumbent exists or
// no finite bound was proven.
func (r *Result) Gap() float64 {
	if r.X == nil || math.IsInf(r.Objective, 0) || math.IsInf(r.Bound, -1) {
		return math.Inf(1)
	}
	g := (r.Objective - r.Bound) / math.Max(math.Abs(r.Objective), 1e-9)
	if g < 0 {
		return 0 // bound overshot the incumbent within tolerance
	}
	return g
}

const intTol = 1e-6

// fnv64Offset/fnv64Prime are the FNV-1a parameters used for the explored
// node fingerprint (hash/fnv is not used directly: the fingerprint mixes
// raw uint64 words, not bytes).
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// mixNode folds one explored node into the running fingerprint: its
// sequence number, its bound, and the signature of its active cut list
// (0 for a cut-free node).
func mixNode(h uint64, seq int, bound float64, cutSig uint64) uint64 {
	h ^= uint64(seq)
	h *= fnv64Prime
	h ^= math.Float64bits(bound)
	h *= fnv64Prime
	h ^= cutSig
	h *= fnv64Prime
	return h
}

// node is an unexplored subproblem: variable bound tightenings relative to
// the root, plus the parent's LP bound used as its search priority.
type node struct {
	lower map[int]float64
	upper map[int]float64
	bound float64
	depth int
	seq   int // tie-break for determinism
	// basis is the parent's optimal LP basis; the node's relaxation is
	// warm-started from it by dual simplex (both children share the one
	// snapshot, which is immutable once taken). nil means solve cold.
	basis *lp.Basis
	// cuts is the active cut list: exactly the cut rows of the LP that
	// produced basis, so the warm start stays shape-consistent. Fixed at
	// node creation and immutable from then on (the cutter swaps in a new
	// list after its rounds; it never mutates one), which is what lets
	// speculative workers solve the node without any cut-pool
	// coordination. cutSig is foldCuts(cuts), precomputed for mixNode.
	cuts   []*cut
	cutSig uint64
	// pcVar/pcUp/pcFrac record the branch that created this node: the
	// variable branched on, whether this is the up (ceil) child, and the
	// variable's fractional part in the parent relaxation. When the
	// node's own relaxation is consumed, the bound degradation per unit
	// of fractionality becomes a pseudocost observation for pcVar.
	// pcVar is -1 at the root (no observation).
	pcVar  int
	pcUp   bool
	pcFrac float64
	// est is the pseudocost best-case objective estimate for the subtree
	// (parent objective plus the summed cheaper-direction degradations of
	// its fractional variables). The work-stealing pool ranks prefetch
	// candidates by it; the heap and the commit order never look at it,
	// so est cannot affect results.
	est float64
}

// nodeLess is the canonical search order: best bound first, then deeper
// nodes (incumbents surface sooner), then the higher sequence number. The
// heap and the speculative prefetcher both rank by it, which is what makes
// the parallel solve commit nodes in the sequential order.
func nodeLess(a, b *node) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	if a.depth != b.depth {
		return a.depth > b.depth // deeper first: find incumbents sooner
	}
	return a.seq > b.seq
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return nodeLess(h[i], h[j]) }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// reliabilityMinObs is the reliability-branching threshold: a variable's
// own pseudocost average is trusted only after this many observations in
// the relevant direction; below it the global average stands in, and with
// no observations at all the unit estimate makes the product score reduce
// to most-fractional branching (f·(1−f) is strictly increasing in
// min(f, 1−f)).
const reliabilityMinObs = 4

// pseudocosts tracks, per integer variable and branch direction, the
// average objective degradation per unit of fractionality observed when a
// child node's relaxation was solved. Only the main branch-and-bound loop
// updates it — at the moment it consumes a child's solution, in canonical
// node order — so parallel runs accumulate the identical statistics and
// make the identical branching decisions.
type pseudocosts struct {
	downSum, upSum []float64
	downCnt, upCnt []int
	// Global running averages across all variables: the fallback for
	// variables with fewer than reliabilityMinObs observations.
	gDownSum, gUpSum float64
	gDownCnt, gUpCnt int
}

func newPseudocosts(n int) *pseudocosts {
	return &pseudocosts{
		downSum: make([]float64, n), upSum: make([]float64, n),
		downCnt: make([]int, n), upCnt: make([]int, n),
	}
}

// estimate returns the per-unit degradation estimate for branching
// variable i in the given direction.
func (pc *pseudocosts) estimate(i int, up bool) float64 {
	if up {
		if pc.upCnt[i] >= reliabilityMinObs {
			return pc.upSum[i] / float64(pc.upCnt[i])
		}
		if pc.gUpCnt > 0 {
			return pc.gUpSum / float64(pc.gUpCnt)
		}
		return 1
	}
	if pc.downCnt[i] >= reliabilityMinObs {
		return pc.downSum[i] / float64(pc.downCnt[i])
	}
	if pc.gDownCnt > 0 {
		return pc.gDownSum / float64(pc.gDownCnt)
	}
	return 1
}

// observe records the bound degradation of a consumed child relaxation
// against the branch that created the node. delta is divided by the
// branching distance (f down, 1−f up), the classic pseudocost statistic.
func (pc *pseudocosts) observe(nd *node, objective float64) {
	if nd.pcVar < 0 {
		return
	}
	delta := math.Max(0, objective-nd.bound)
	if nd.pcUp {
		per := delta / (1 - nd.pcFrac)
		pc.upSum[nd.pcVar] += per
		pc.upCnt[nd.pcVar]++
		pc.gUpSum += per
		pc.gUpCnt++
	} else {
		per := delta / nd.pcFrac
		pc.downSum[nd.pcVar] += per
		pc.downCnt[nd.pcVar]++
		pc.gDownSum += per
		pc.gDownCnt++
	}
}

// selectBranchVar picks the branching variable: within the highest
// BranchPriority class holding a fractional variable, the one maximising
// the pseudocost product score max(downEst·f, ε)·max(upEst·(1−f), ε).
// Ties (and the cold start, where every estimate is 1 or the shared
// global average) resolve to the most fractional variable, lowest index
// first — the same choice mostFractional makes.
func (pc *pseudocosts) selectBranchVar(p *Problem, prio []int, x []float64) int {
	const eps = 1e-12
	best, bestScore, bestDist, bestPrio := -1, 0.0, 0.0, math.MinInt
	for i, isInt := range p.Integer {
		if !isInt {
			continue
		}
		f := x[i] - math.Floor(x[i])
		dist := math.Min(f, 1-f)
		if dist <= intTol {
			continue
		}
		pr := 0
		if prio != nil {
			pr = prio[i]
		}
		if pr < bestPrio {
			continue
		}
		score := math.Max(pc.estimate(i, false)*f, eps) * math.Max(pc.estimate(i, true)*(1-f), eps)
		if pr > bestPrio || score > bestScore || (score == bestScore && dist > bestDist) {
			best, bestScore, bestDist, bestPrio = i, score, dist, pr
		}
	}
	return best
}

// subtreeEstimate is the pseudocost best-case objective for a node about
// to be branched: its relaxation objective plus, for every fractional
// integer variable, the cheaper of the two per-direction degradations.
// Used only to rank speculative work (node.est).
func (pc *pseudocosts) subtreeEstimate(p *Problem, objective float64, x []float64) float64 {
	est := objective
	for i, isInt := range p.Integer {
		if !isInt {
			continue
		}
		f := x[i] - math.Floor(x[i])
		if math.Min(f, 1-f) <= intTol {
			continue
		}
		est += math.Min(pc.estimate(i, false)*f, pc.estimate(i, true)*(1-f))
	}
	return est
}

// Solve runs presolve followed by branch and bound with no cancellation
// hook. See SolveContext.
func Solve(p *Problem, opt Options) (*Result, error) {
	return SolveContext(context.Background(), p, opt)
}

// SolveContext runs presolve followed by branch and bound. The returned
// error is non-nil only for malformed input (including an infeasible or
// fractional seeded incumbent).
//
// ctx unifies with the wall-clock budget: a context deadline earlier than
// TimeLimit tightens it, and cancellation stops the search gracefully —
// the branch-and-bound loop checks ctx between nodes and the LP pivot
// loops poll ctx.Done() at their deadline cadence, so the solve returns
// its best incumbent promptly with Result.Cancelled set instead of an
// error.
func SolveContext(ctx context.Context, p *Problem, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.BranchPriority != nil && len(opt.BranchPriority) != p.LP.NumVars {
		return nil, fmt.Errorf("milp: BranchPriority has length %d, want %d", len(opt.BranchPriority), p.LP.NumVars)
	}
	if opt.Incumbent != nil {
		// Validate against the original problem before any reduction so
		// the error contract is independent of presolve.
		if _, err := checkIncumbent(p, opt.Incumbent); err != nil {
			return nil, fmt.Errorf("milp: bad incumbent: %w", err)
		}
	}
	if !opt.DisablePresolve {
		psp := opt.Obs.StartSpan("milp.presolve")
		pr := presolve(p)
		psp.SetInt("vars", int64(p.LP.NumVars))
		psp.SetInt("fixed", int64(len(pr.fixed)))
		psp.SetBool("infeasible", pr.infeasible)
		if pr.reduced != nil {
			psp.SetInt("reduced_vars", int64(pr.reduced.LP.NumVars))
			psp.SetInt("reduced_constraints", int64(len(pr.reduced.LP.Constraints)))
		}
		psp.End()
		psp.Count("milp.presolve.fixed", int64(len(pr.fixed)))
		if pr.infeasible {
			return &Result{Status: Infeasible, Objective: math.Inf(1), Bound: math.Inf(1)}, nil
		}
		if len(pr.fixed) > 0 {
			if pr.reduced == nil {
				// Every variable fixed; verify the assignment satisfies
				// all rows.
				x := pr.expand(nil, p.LP.NumVars)
				obj, err := checkIncumbent(p, x)
				if err != nil {
					return &Result{Status: Infeasible, Objective: math.Inf(1), Bound: math.Inf(1)}, nil
				}
				return &Result{Status: Optimal, X: x, Objective: obj, Bound: obj}, nil
			}
			sub := opt
			sub.DisablePresolve = true
			if opt.Incumbent != nil {
				shrunk, err := pr.shrink(opt.Incumbent)
				if err != nil {
					return nil, err
				}
				sub.Incumbent = shrunk
			}
			if opt.BranchPriority != nil {
				prio := make([]int, pr.reduced.LP.NumVars)
				for i, j := range pr.oldToNew {
					if j >= 0 {
						prio[j] = opt.BranchPriority[i]
					}
				}
				sub.BranchPriority = prio
			}
			res, err := solveBB(ctx, pr.reduced, sub)
			if err != nil {
				return nil, err
			}
			if res.X != nil {
				res.X = pr.expand(res.X, p.LP.NumVars)
			}
			if res.Status == Optimal || res.Status == Feasible {
				res.Objective += pr.constant
			}
			if !math.IsInf(res.Bound, 0) {
				res.Bound += pr.constant
			}
			return res, nil
		}
	}
	return solveBB(ctx, p, opt)
}

// solveBB is the branch-and-bound core.
func solveBB(ctx context.Context, p *Problem, opt Options) (*Result, error) {
	sp := opt.Obs.StartSpan("milp.solve")
	rec := sp.Recorder()
	nodesC := rec.Counter("milp.nodes")
	incumbentsC := rec.Counter("milp.incumbents")
	reg := obs.OrDefault(opt.Registry)
	regNodesC := reg.Counter("milp.nodes")
	regIncumbentsC := reg.Counter("milp.incumbents")
	nodeH := reg.Histogram("milp.node.ns")
	incDeltaH := reg.Histogram("milp.incumbent.delta.micro")
	sp.SetInt("vars", int64(p.LP.NumVars))
	sp.SetInt("constraints", int64(len(p.LP.Constraints)))

	timeLimit := opt.TimeLimit
	if timeLimit == 0 {
		timeLimit = DefaultTimeLimit
	}
	nodeLimit := opt.NodeLimit
	if nodeLimit == 0 {
		nodeLimit = 200000
	}
	deadline := time.Now().Add(timeLimit)
	// A context deadline earlier than the time limit tightens the budget;
	// both are enforced by the same deadline checks.
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	// Convert singleton/empty/duplicate rows into root variable bounds so
	// every node solves a smaller bounded-variable LP.
	pp := prepRelaxation(p, rec)
	if pp == nil {
		sp.SetString("status", Infeasible.String())
		sp.End()
		return &Result{Status: Infeasible, Objective: math.Inf(1), Bound: math.Inf(1)}, nil
	}
	sp.SetInt("prepped_constraints", int64(len(pp.p.LP.Constraints)))
	// LP solves share the exact same deadline: the simplex checks it
	// between pivots and returns IterLimit, which the search records as an
	// unresolved node, so one long relaxation cannot overshoot TimeLimit.
	eval, err := newEvaluator(pp, opt.Parallelism, deadline, ctx.Done(), rec, reg)
	if err != nil {
		sp.End()
		return nil, err
	}
	defer eval.close()

	// Branch and cut: the cutter runs on this goroutine only, at canonical
	// node consumption, against its own solver arena (the tableau of a
	// consumed node is re-established there by a canonical refactorisation
	// of its basis, so separation is independent of which worker solved it).
	var ct *cutter
	if cutsEnabled(opt) {
		crs, cerr := newRelaxSolver(pp, ctx.Done(), reg)
		if cerr != nil {
			sp.End()
			return nil, cerr
		}
		ct = newCutter(pp, crs, opt, rec)
		defer func() { ct.flush(reg) }()
	}

	res := &Result{Status: Unknown, Objective: math.Inf(1), Bound: math.Inf(-1)}
	defer func() {
		sp.SetString("status", res.Status.String())
		sp.SetInt("nodes", int64(res.Nodes))
		if res.X != nil {
			sp.SetFloat("objective", res.Objective)
		}
		sp.SetFloat("bound", res.Bound)
		sp.SetFloat("gap", res.Gap())
		sp.End()
	}()
	if opt.Incumbent != nil {
		obj, err := checkIncumbent(p, opt.Incumbent)
		if err != nil {
			return nil, fmt.Errorf("milp: bad incumbent: %w", err)
		}
		res.X = append([]float64(nil), opt.Incumbent...)
		res.Objective = obj
		res.Status = Feasible
		eval.publish(obj)
	}

	seq := 0
	unresolved := false // an LP hit its limit: the optimality proof is lost
	pc := newPseudocosts(p.LP.NumVars)
	res.NodeFingerprint = fnv64Offset
	open := &nodeHeap{{lower: map[int]float64{}, upper: map[int]float64{}, bound: math.Inf(-1), pcVar: -1, est: math.Inf(-1)}}
	heap.Init(open)

	// Each basis snapshot is shared by exactly two children; once both have
	// been warm-started (popped and solved) the memoised LU factor attached
	// to the snapshot can never be needed again by the sequential order, so
	// it is dropped to bound the memory held by the open-node frontier.
	// DropFactor only clears the memo pointer — a speculative solver that
	// already loaded the factor keeps using its own reference, and one that
	// misses simply refactorises (counters are invariant to memo hits).
	basisUses := make(map[*lp.Basis]int8)
	release := func(nd *node) {
		if nd.basis == nil {
			return
		}
		if n := basisUses[nd.basis]; n > 1 {
			basisUses[nd.basis] = n - 1
		} else {
			delete(basisUses, nd.basis)
			nd.basis.DropFactor()
		}
	}

	for open.Len() > 0 {
		if res.Nodes >= nodeLimit || ctx.Err() != nil || time.Now().After(deadline) {
			// The best open bound is the proven lower bound.
			res.Bound = math.Max(res.Bound, (*open)[0].bound)
			res.TimeLimitHit = time.Now().After(deadline)
			res.Cancelled = ctx.Err() != nil
			return res, nil
		}
		nd := heap.Pop(open).(*node)
		if nd.bound >= res.Objective-1e-9 {
			// Everything remaining is at least as bad; done.
			res.Bound = math.Max(res.Bound, math.Min(nd.bound, res.Objective))
			break
		}
		res.Nodes++
		res.NodeFingerprint = mixNode(res.NodeFingerprint, nd.seq, nd.bound, nd.cutSig)
		nodesC.Add(1)
		regNodesC.Add(1)

		nodeStart := time.Now()
		sol, bas, err := eval.solve(nd, open)
		nodeH.RecordSince(nodeStart)
		if err != nil {
			return nil, err
		}
		release(nd)
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, errors.New("milp: LP relaxation unbounded; bound integer variables")
		case lp.IterLimit:
			// Cannot trust this node's bound; skip it conservatively
			// (incumbents stay correct, the optimality proof is lost).
			unresolved = true
			continue
		}
		// Pseudocost observation for the branch that created this node,
		// recorded before any pruning so the statistics are a pure
		// function of the canonical exploration order.
		pc.observe(nd, sol.Objective)
		if sol.Objective >= res.Objective-1e-9 {
			continue // bound: cannot improve
		}
		branchVar := pc.selectBranchVar(p, opt.BranchPriority, sol.X)
		if ct != nil && branchVar >= 0 && bas != nil {
			// Cutting-plane rounds: tighten the fractional relaxation
			// before branching. A pruned=true return means the cut-
			// augmented LP is infeasible — valid cuts only remove
			// fractional points, so the subtree holds no integral solution.
			csol, cbas, pruned := ct.run(nd, sol, bas, deadline)
			if pruned {
				continue
			}
			if csol != nil {
				sol, bas = csol, cbas
				if sol.Objective >= res.Objective-1e-9 {
					continue // the moved bound prunes the node
				}
				branchVar = pc.selectBranchVar(p, opt.BranchPriority, sol.X)
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent.
			x := append([]float64(nil), sol.X...)
			for i, isInt := range p.Integer {
				if isInt {
					x[i] = math.Round(x[i])
				}
			}
			if len(nd.cuts) > 0 {
				// The point came from a cut-augmented LP; re-verify against
				// the original rows so correctness never rests on cut
				// validity alone.
				if _, verr := checkIncumbent(p, x); verr != nil {
					continue
				}
			}
			if prev := res.Objective; !math.IsInf(prev, 1) {
				incDeltaH.Record(int64((prev - sol.Objective) * 1e6))
			}
			res.X = x
			res.Objective = sol.Objective
			res.Status = Feasible
			incumbentsC.Add(1)
			regIncumbentsC.Add(1)
			eval.publish(res.Objective)
			if sp.Enabled() {
				// Gap trajectory point: the new incumbent against the
				// tightest proven lower bound at this moment (the best
				// open node, or this node's own relaxation when the
				// frontier is exhausted).
				bound := sol.Objective
				if open.Len() > 0 && (*open)[0].bound < bound {
					bound = (*open)[0].bound
				}
				sp.Event("incumbent", res.Objective, bound)
			}
			if opt.Gap > 0 && gapClosed(res, open, opt.Gap) {
				res.Status = Optimal
				return res, nil
			}
			continue
		}
		if nd.depth == 0 && res.Nodes == 1 {
			// Root primal heuristic: a deterministic rounding dive seeds the
			// incumbent so bound pruning bites from the very first branches.
			if hs, herr := newRelaxSolver(pp, ctx.Done(), reg); herr == nil {
				if x, obj, ok := diveHeuristic(pp, hs, opt.BranchPriority, sol, bas, nd.cuts, deadline, rec); ok && obj < res.Objective-1e-9 {
					if prev := res.Objective; !math.IsInf(prev, 1) {
						incDeltaH.Record(int64((prev - obj) * 1e6))
					}
					res.X = x
					res.Objective = obj
					res.Status = Feasible
					incumbentsC.Add(1)
					regIncumbentsC.Add(1)
					eval.publish(obj)
					if sp.Enabled() {
						sp.Event("incumbent", obj, sol.Objective)
					}
				}
			}
		}
		v := sol.X[branchVar]
		frac := v - math.Floor(v)
		est := pc.subtreeEstimate(p, sol.Objective, sol.X)
		// Children inherit the node's final cut rows (the LP that produced
		// bas), minus aged loose cuts — inherit purges those together with
		// a matching basis surgery, so the warm start stays shape-exact.
		childCuts, childBas, childSig := nd.cuts, bas, nd.cutSig
		if ct != nil {
			childCuts, childBas, childSig = ct.inherit(nd, bas)
		}
		down := child(nd, &seq, sol.Objective)
		down.upper[branchVar] = math.Floor(v)
		down.basis, down.cuts, down.cutSig = childBas, childCuts, childSig
		down.pcVar, down.pcUp, down.pcFrac, down.est = branchVar, false, frac, est
		up := child(nd, &seq, sol.Objective)
		up.lower[branchVar] = math.Ceil(v)
		up.basis, up.cuts, up.cutSig = childBas, childCuts, childSig
		up.pcVar, up.pcUp, up.pcFrac, up.est = branchVar, true, frac, est
		if childBas != nil {
			basisUses[childBas] = 2
		}
		heap.Push(open, down)
		heap.Push(open, up)
	}

	if unresolved && time.Now().After(deadline) {
		res.TimeLimitHit = true
	}
	if unresolved && ctx.Err() != nil {
		res.Cancelled = true
	}
	switch {
	case res.X != nil && !unresolved:
		res.Status = Optimal
		if res.Bound == math.Inf(-1) || res.Bound > res.Objective {
			res.Bound = res.Objective
		}
	case res.X != nil:
		res.Status = Feasible // unresolved nodes were skipped: unproven
	case unresolved:
		res.Status = Unknown
	default:
		res.Status = Infeasible
	}
	return res, nil
}

func child(parent *node, seq *int, bound float64) *node {
	c := &node{
		lower: make(map[int]float64, len(parent.lower)+1),
		upper: make(map[int]float64, len(parent.upper)+1),
		bound: bound,
		depth: parent.depth + 1,
		pcVar: -1, // callers that branch overwrite; heuristic probes never observe
		est:   bound,
	}
	for k, v := range parent.lower {
		c.lower[k] = v
	}
	for k, v := range parent.upper {
		c.upper[k] = v
	}
	*seq++
	c.seq = *seq
	return c
}

// mostFractional returns the integer variable to branch on — the highest
// priority class first, farthest from integral within it — or -1 if all
// integer variables are integral. prio may be nil (uniform priority).
func mostFractional(p *Problem, prio []int, x []float64) int {
	best, bestDist, bestPrio := -1, intTol, math.MinInt
	for i, isInt := range p.Integer {
		if !isInt {
			continue
		}
		f := x[i] - math.Floor(x[i])
		dist := math.Min(f, 1-f)
		if dist <= intTol {
			continue
		}
		pr := 0
		if prio != nil {
			pr = prio[i]
		}
		if pr > bestPrio || (pr == bestPrio && dist > bestDist) {
			best, bestDist, bestPrio = i, dist, pr
		}
	}
	return best
}

// gapClosed reports whether the incumbent is within the relative gap of the
// best open bound.
func gapClosed(res *Result, open *nodeHeap, gap float64) bool {
	if open.Len() == 0 {
		return true
	}
	bound := (*open)[0].bound
	if math.IsInf(bound, -1) {
		return false
	}
	denom := math.Max(math.Abs(res.Objective), 1e-9)
	return (res.Objective-bound)/denom <= gap
}

// checkIncumbent verifies feasibility and integrality of a candidate
// solution and returns its objective value.
func checkIncumbent(p *Problem, x []float64) (float64, error) {
	if len(x) != p.LP.NumVars {
		return 0, fmt.Errorf("length %d, want %d", len(x), p.LP.NumVars)
	}
	for i, v := range x {
		if v < -intTol {
			return 0, fmt.Errorf("variable %d negative (%v)", i, v)
		}
		if p.Integer[i] && math.Abs(v-math.Round(v)) > intTol {
			return 0, fmt.Errorf("variable %d not integral (%v)", i, v)
		}
	}
	for i, c := range p.LP.Constraints {
		var lhs float64
		for v, coeff := range c.Coeffs {
			lhs += coeff * x[v]
		}
		feasible := true
		switch c.Rel {
		case lp.LE:
			feasible = lhs <= c.RHS+1e-6
		case lp.GE:
			feasible = lhs >= c.RHS-1e-6
		case lp.EQ:
			feasible = math.Abs(lhs-c.RHS) <= 1e-6
		}
		if !feasible {
			return 0, fmt.Errorf("constraint %d violated (lhs=%v rhs=%v)", i, lhs, c.RHS)
		}
	}
	var obj float64
	if p.LP.Objective != nil {
		for i, v := range x {
			obj += p.LP.Objective[i] * v
		}
	}
	return obj, nil
}
