package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sring/internal/lp"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func allInt(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

// binaryBox adds 0 <= x_i <= 1 rows for all variables.
func binaryBox(p *lp.Problem) {
	for i := 0; i < p.NumVars; i++ {
		p.AddConstraint(lp.LE, 1, map[int]float64{i: 1})
	}
}

// Knapsack: max 10x0 + 13x1 + 7x2 + 4x3 s.t. 5x0+7x1+4x2+3x3 <= 10, binary.
// Optimum: x1 + x3 = 17? Check: {0,1}: 12w? w(0)+w(1)=12 > 10.
// {1,2}: w=11 no. {0,2}: w=9 val=17. {1,3}: w=10 val=17. {0,3}: w=8 val=14.
// {2,3}: w=7 val=11. Best = 17.
func TestKnapsack(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{-10, -13, -7, -4},
		},
		Integer: allInt(4),
	}
	p.LP.AddConstraint(lp.LE, 10, map[int]float64{0: 5, 1: 7, 2: 4, 3: 3})
	binaryBox(&p.LP)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, -17, 1e-6) {
		t.Errorf("objective = %v, want -17", res.Objective)
	}
}

// Integer rounding matters: LP relaxation optimum is fractional.
func TestFractionalRelaxation(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 3, integers => LP opt 1.5, IP opt 1.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, -1}},
		Integer: allInt(2),
	}
	p.LP.AddConstraint(lp.LE, 3, map[int]float64{0: 2, 1: 2})
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, -1, 1e-6) {
		t.Errorf("objective = %v, want -1 (IP), not -1.5 (LP)", res.Objective)
	}
	if !approx(res.X[0]+res.X[1], 1, 1e-6) {
		t.Errorf("X = %v, want sum 1", res.X)
	}
}

func TestSetCover(t *testing.T) {
	// Universe {1..5}; sets A={1,2,3}, B={2,4}, C={3,4}, D={4,5}, E={1,5}.
	// min #sets covering all. Optimum 2: A + D.
	sets := [][]int{{0, 1, 2}, {1, 3}, {2, 3}, {3, 4}, {0, 4}}
	p := &Problem{
		LP:      lp.Problem{NumVars: 5, Objective: []float64{1, 1, 1, 1, 1}},
		Integer: allInt(5),
	}
	for elem := 0; elem < 5; elem++ {
		terms := map[int]float64{}
		for si, s := range sets {
			for _, e := range s {
				if e == elem {
					terms[si] = 1
				}
			}
		}
		p.LP.AddConstraint(lp.GE, 1, terms)
	}
	binaryBox(&p.LP)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, 2, 1e-6) {
		t.Fatalf("status=%v objective=%v, want optimal 2", res.Status, res.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x + y = 1.5 with x, y integer and 0 <= x,y <= 1... wait 1.5 infeasible
	// only for integers: LP feasible (0.5, 1), integrality infeasible? No:
	// x=1, y=0.5 not integral; x=0,y=1.5 violates bound. So IP infeasible.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{1, 1}},
		Integer: allInt(2),
	}
	p.LP.AddConstraint(lp.EQ, 1.5, map[int]float64{0: 1, 1: 1})
	binaryBox(&p.LP)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestLPInfeasibleRoot(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: []float64{1}},
		Integer: allInt(1),
	}
	p.LP.AddConstraint(lp.GE, 2, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{0: 1})
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10y, x continuous <= 2.5, y binary, x + 4y <= 5.
	// y=1: x <= 1 => obj -11. y=0: x <= 2.5 => obj -2.5. Optimum -11.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, -10}},
		Integer: []bool{false, true},
	}
	p.LP.AddConstraint(lp.LE, 2.5, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.LE, 5, map[int]float64{0: 1, 1: 4})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{1: 1})
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, -11, 1e-6) {
		t.Fatalf("status=%v objective=%v, want optimal -11", res.Status, res.Objective)
	}
	if !approx(res.X[1], 1, 1e-6) || !approx(res.X[0], 1, 1e-6) {
		t.Errorf("X = %v, want [1 1]", res.X)
	}
}

func TestIncumbentSeeding(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{1, 1}},
		Integer: allInt(2),
	}
	p.LP.AddConstraint(lp.GE, 2, map[int]float64{0: 1, 1: 1})
	binaryBox(&p.LP)
	// Incumbent [1, 1] is optimal already.
	res, err := Solve(p, Options{Incumbent: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, 2, 1e-6) {
		t.Fatalf("status=%v objective=%v", res.Status, res.Objective)
	}
}

func TestBadIncumbentRejected(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: []float64{1}},
		Integer: allInt(1),
	}
	p.LP.AddConstraint(lp.GE, 1, map[int]float64{0: 1})
	if _, err := Solve(p, Options{Incumbent: []float64{0}}); err == nil {
		t.Error("infeasible incumbent accepted")
	}
	if _, err := Solve(p, Options{Incumbent: []float64{1.5}}); err == nil {
		t.Error("fractional incumbent accepted")
	}
	if _, err := Solve(p, Options{Incumbent: []float64{1, 2}}); err == nil {
		t.Error("wrong-length incumbent accepted")
	}
}

func TestNodeLimitReturnsIncumbent(t *testing.T) {
	// A problem needing branching, with node limit 1 and a seeded incumbent:
	// must return the incumbent with Feasible status.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, -1}},
		Integer: allInt(2),
	}
	p.LP.AddConstraint(lp.LE, 3, map[int]float64{0: 2, 1: 2})
	binaryBox(&p.LP)
	// Cuts disabled: a root Gomory round would prove optimality at node 1,
	// and this test is about the limit path.
	res, err := Solve(p, Options{NodeLimit: 1, Incumbent: []float64{1, 0}, CutRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v, want feasible", res.Status)
	}
	if !approx(res.Objective, -1, 1e-6) {
		t.Errorf("objective = %v", res.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 2, Objective: []float64{1, 1}}, Integer: []bool{true}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("accepted Integer of wrong length")
	}
}

// Brute-force cross-check on random small binary programs.
func TestRandomBinaryProgramsVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5) // up to 6 binaries
		m := 1 + rng.Intn(4)
		p := &Problem{
			LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
			Integer: allInt(n),
		}
		for j := range p.LP.Objective {
			p.LP.Objective[j] = math.Round(rng.Float64()*20 - 10)
		}
		type row struct {
			coeffs []float64
			rhs    float64
			rel    lp.Rel
		}
		var rows []row
		for i := 0; i < m; i++ {
			r := row{coeffs: make([]float64, n), rel: lp.LE}
			terms := map[int]float64{}
			for j := 0; j < n; j++ {
				c := math.Round(rng.Float64() * 5)
				r.coeffs[j] = c
				if c != 0 {
					terms[j] = c
				}
			}
			r.rhs = math.Round(rng.Float64() * float64(3*n))
			rows = append(rows, r)
			p.LP.AddConstraint(lp.LE, r.rhs, terms)
		}
		binaryBox(&p.LP)

		// Brute force.
		bestObj := math.Inf(1)
		feasibleExists := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, r := range rows {
				var lhs float64
				for j := 0; j < n; j++ {
					if mask&(1<<j) != 0 {
						lhs += r.coeffs[j]
					}
				}
				if lhs > r.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasibleExists = true
			var obj float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += p.LP.Objective[j]
				}
			}
			if obj < bestObj {
				bestObj = obj
			}
		}

		res, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasibleExists {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: status %v, want infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, res.Status)
		}
		if !approx(res.Objective, bestObj, 1e-6) {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, bestObj)
		}
	}
}

func TestTimeLimit(t *testing.T) {
	// Tiny time limit on a nontrivial problem: must return promptly without
	// error; with a seeded incumbent, the incumbent survives.
	n := 14
	p := &Problem{
		LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
		Integer: allInt(n),
	}
	rng := rand.New(rand.NewSource(3))
	for j := 0; j < n; j++ {
		p.LP.Objective[j] = -1 - rng.Float64()
	}
	terms := map[int]float64{}
	for j := 0; j < n; j++ {
		terms[j] = 1 + rng.Float64()
	}
	p.LP.AddConstraint(lp.LE, 5.5, terms)
	binaryBox(&p.LP)
	start := time.Now()
	zero := make([]float64, n)
	res, err := Solve(p, Options{TimeLimit: time.Millisecond, Incumbent: zero})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("time limit not respected")
	}
	if res.Status != Feasible && res.Status != Optimal {
		t.Errorf("status = %v", res.Status)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Feasible.String() != "feasible" ||
		Infeasible.String() != "infeasible" || Unknown.String() != "unknown" {
		t.Error("status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string wrong")
	}
}

func TestBoundReported(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, -1}},
		Integer: allInt(2),
	}
	p.LP.AddConstraint(lp.LE, 3, map[int]float64{0: 2, 1: 2})
	binaryBox(&p.LP)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Bound > res.Objective+1e-9 {
		t.Errorf("bound %v exceeds objective %v", res.Bound, res.Objective)
	}
}
