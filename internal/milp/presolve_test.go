package milp

import (
	"math"
	"math/rand"
	"testing"

	"sring/internal/lp"
)

func TestPresolveFixesSingletons(t *testing.T) {
	// x0 <= 0 with x0 binary: fixed to 0. x1 = 1: fixed to 1.
	p := &Problem{
		LP:      lp.Problem{NumVars: 3, Objective: []float64{-1, -1, -1}},
		Integer: []bool{true, true, true},
	}
	p.LP.AddConstraint(lp.LE, 0, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.EQ, 1, map[int]float64{1: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{2: 1})
	pr := presolve(p)
	if pr.infeasible {
		t.Fatal("presolve reported infeasible")
	}
	if pr.fixed[0] != 0 {
		t.Errorf("x0 not fixed to 0: %v", pr.fixed)
	}
	if pr.fixed[1] != 1 {
		t.Errorf("x1 not fixed to 1: %v", pr.fixed)
	}
	if _, done := pr.fixed[2]; done {
		t.Error("x2 wrongly fixed")
	}
	if pr.reduced == nil || pr.reduced.LP.NumVars != 1 {
		t.Fatalf("reduced problem wrong: %+v", pr.reduced)
	}
	// Objective constant: fixing x1 = 1 contributes -1.
	if math.Abs(pr.constant-(-1)) > 1e-9 {
		t.Errorf("constant = %v, want -1", pr.constant)
	}
}

func TestPresolveDetectsInfeasibleSingleton(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: []float64{1}},
		Integer: []bool{true},
	}
	p.LP.AddConstraint(lp.GE, 2, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{0: 1})
	pr := presolve(p)
	if !pr.infeasible {
		t.Error("contradictory bounds not detected")
	}
}

func TestPresolvePinsOversizedCoefficients(t *testing.T) {
	// 5 x0 + x1 <= 3 with binaries: x0 must be 0 (its step of 5 breaks the
	// row), x1 stays free.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, -1}},
		Integer: []bool{true, true},
	}
	p.LP.AddConstraint(lp.LE, 3, map[int]float64{0: 5, 1: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{1: 1})
	pr := presolve(p)
	if pr.infeasible {
		t.Fatal("presolve reported infeasible")
	}
	if v, done := pr.fixed[0]; !done || v != 0 {
		t.Errorf("x0 not pinned to 0: %v", pr.fixed)
	}
}

func TestPresolveIntegerRounding(t *testing.T) {
	// 2 x0 <= 3 with x0 integer: ub rounds to 1... then x0 in {0, 1}, not
	// fixed. 2 x0 <= 1: ub rounds to 0 -> fixed.
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: []float64{-1}},
		Integer: []bool{true},
	}
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{0: 2})
	pr := presolve(p)
	if v, done := pr.fixed[0]; !done || v != 0 {
		t.Errorf("integer rounding missed the fix: %v", pr.fixed)
	}
}

// Solving with and without presolve must agree on random binary programs.
func TestPresolveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		p := &Problem{
			LP:      lp.Problem{NumVars: n, Objective: make([]float64, n)},
			Integer: make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.LP.Objective[j] = math.Round(rng.Float64()*10 - 5)
			p.Integer[j] = true
			p.LP.AddConstraint(lp.LE, 1, map[int]float64{j: 1})
		}
		// A mix of rows, some of which trigger the presolve rules.
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			terms[j] = math.Round(rng.Float64() * 6)
		}
		p.LP.AddConstraint(lp.LE, math.Round(rng.Float64()*4)+1, terms)
		if rng.Float64() < 0.5 {
			p.LP.AddConstraint(lp.EQ, 1, map[int]float64{rng.Intn(n): 1})
		}
		if rng.Float64() < 0.5 {
			p.LP.AddConstraint(lp.LE, 0, map[int]float64{rng.Intn(n): 1})
		}

		with, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d (with): %v", trial, err)
		}
		without, err := Solve(p, Options{DisablePresolve: true})
		if err != nil {
			t.Fatalf("trial %d (without): %v", trial, err)
		}
		if with.Status != without.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, with.Status, without.Status)
		}
		if with.Status == Optimal && math.Abs(with.Objective-without.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %v vs %v", trial, with.Objective, without.Objective)
		}
	}
}

func TestPresolveFullyFixedProblem(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{3, 4}},
		Integer: []bool{true, true},
	}
	p.LP.AddConstraint(lp.EQ, 1, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.EQ, 1, map[int]float64{1: 1})
	p.LP.AddConstraint(lp.LE, 3, map[int]float64{0: 1, 1: 1}) // satisfied
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-7) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal 7", res.Status, res.Objective)
	}
	// And the infeasible variant: fixed values violating a row.
	p2 := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{3, 4}},
		Integer: []bool{true, true},
	}
	p2.LP.AddConstraint(lp.EQ, 1, map[int]float64{0: 1})
	p2.LP.AddConstraint(lp.EQ, 1, map[int]float64{1: 1})
	p2.LP.AddConstraint(lp.LE, 1, map[int]float64{0: 1, 1: 1}) // violated
	res, err = Solve(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestPresolveWithIncumbent(t *testing.T) {
	// Incumbent must survive the reduction.
	p := &Problem{
		LP:      lp.Problem{NumVars: 3, Objective: []float64{1, 1, 1}},
		Integer: []bool{true, true, true},
	}
	p.LP.AddConstraint(lp.EQ, 1, map[int]float64{0: 1})
	p.LP.AddConstraint(lp.GE, 1, map[int]float64{1: 1, 2: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{1: 1})
	p.LP.AddConstraint(lp.LE, 1, map[int]float64{2: 1})
	res, err := Solve(p, Options{Incumbent: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-2) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal 2", res.Status, res.Objective)
	}
	// Incumbent disagreeing with a fixing is rejected as infeasible input.
	if _, err := Solve(p, Options{Incumbent: []float64{0, 1, 1}}); err == nil {
		t.Error("incumbent violating x0 = 1 accepted")
	}
}
