package milp

import (
	"context"
	"testing"
	"time"

	"sring/internal/lp"
)

// A cancelled context must not discard a seeded incumbent: the solver
// returns it promptly with Result.Cancelled set, as an unproven Feasible —
// never an error.
func TestSolveContextCancelledKeepsIncumbent(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{-10, -13, -7, -4},
		},
		Integer: allInt(4),
	}
	p.LP.AddConstraint(lp.LE, 10, map[int]float64{0: 5, 1: 7, 2: 4, 3: 3})
	binaryBox(&p.LP)
	// {x2, x3}: weight 7 <= 10, objective -11. Feasible but not optimal
	// (-17), so returning it proves the solver kept the seed rather than
	// re-solving.
	incumbent := []float64{0, 0, 1, 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := SolveContext(ctx, p, Options{Incumbent: incumbent})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("Result.Cancelled not set")
	}
	if res.Status != Feasible {
		t.Errorf("status = %v, want Feasible (unproven incumbent)", res.Status)
	}
	if !approx(res.Objective, -11, 1e-9) {
		t.Errorf("objective = %v, want the seeded incumbent's -11", res.Objective)
	}
	for i, v := range incumbent {
		if !approx(res.X[i], v, 1e-9) {
			t.Errorf("X[%d] = %v, want seeded %v", i, res.X[i], v)
		}
	}
	if elapsed > time.Second {
		t.Errorf("cancelled solve took %v, want immediate return", elapsed)
	}
}

// Without an incumbent a cancelled solve reports Unknown/Infeasible-free
// cancellation: no X, Cancelled set, no error.
func TestSolveContextCancelledWithoutIncumbent(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, -1}},
		Integer: allInt(2),
	}
	p.LP.AddConstraint(lp.LE, 3, map[int]float64{0: 2, 1: 2})
	binaryBox(&p.LP)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("Result.Cancelled not set")
	}
	if res.X != nil {
		t.Errorf("X = %v, want nil (no incumbent existed)", res.X)
	}
}

// Solve (the context-free wrapper) must behave exactly as before: same
// knapsack, optimal, no cancellation flag.
func TestSolveWrapperUncancelled(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{-10, -13, -7, -4},
		},
		Integer: allInt(4),
	}
	p.LP.AddConstraint(lp.LE, 10, map[int]float64{0: 5, 1: 7, 2: 4, 3: 3})
	binaryBox(&p.LP)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Cancelled {
		t.Errorf("status = %v cancelled = %v, want Optimal, not cancelled", res.Status, res.Cancelled)
	}
	if !approx(res.Objective, -17, 1e-6) {
		t.Errorf("objective = %v, want -17", res.Objective)
	}
}
