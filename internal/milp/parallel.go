package milp

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sring/internal/lp"
	"sring/internal/obs"
	"sring/internal/par"
)

// evaluator abstracts how solveBB obtains LP relaxation solutions for the
// nodes it explores. The sequential implementation solves inline; the
// parallel one pre-solves frontier nodes speculatively on a work-stealing
// pool. Either way the main loop consumes solutions in its own (canonical)
// order, so the search trajectory is identical.
type evaluator interface {
	// solve returns the LP relaxation solution for nd, plus the optimal
	// basis for warm-starting its children (nil unless Optimal). open is
	// the current frontier, which a speculative implementation may scan to
	// schedule work ahead; it must not be mutated.
	solve(nd *node, open *nodeHeap) (*lp.Solution, *lp.Basis, error)
	// publish announces a new (lower) incumbent objective so speculative
	// workers can skip nodes the main loop is guaranteed to prune.
	publish(objective float64)
	// close stops any workers and flushes speculation telemetry.
	close()
}

// specMinProblemSize gates speculation on LP size (vars × presolved rows).
// Below it a relaxation solves in microseconds, so handing nodes to another
// goroutine costs more than the overlap buys — the j=4 slowdown on MWD and
// VOPD in BENCH_2026-08-06-warmstart.json. MWD (44×90) and VOPD (90×190)
// fall under the threshold; MPEG (274×471) and the 8PM apps stay above it.
// A var only so tests can lower the gate to exercise the pool on
// deliberately small instances.
var specMinProblemSize = 50000

// specMinOpenNodes suppresses speculative scheduling while the frontier is
// smaller than this: the next pops are consumed immediately after being
// pushed, so a speculative solve would only race the main loop for the same
// node. Trees that never grow past it (small apps, root-proven solves)
// therefore never start the worker pool at all. A var for the same test
// reason.
var specMinOpenNodes = 4

// resolveSpecWorkers caps speculative workers at the core count (see
// par.ResolveSpeculative); tests substitute par.Resolve to exercise the
// pool on single-core machines.
var resolveSpecWorkers = par.ResolveSpeculative

// newEvaluator picks the implementation for the resolved worker count and
// problem size. interrupt (a context's Done channel, possibly nil) is
// installed in every LP solver the evaluator creates, the workers'
// included. The choice never changes results — both evaluators feed the
// main loop the same canonical solutions — only where they are computed.
func newEvaluator(pp *prepped, parallelism int, deadline time.Time, interrupt <-chan struct{}, rec *obs.Recorder, reg *obs.Registry) (evaluator, error) {
	rs, err := newRelaxSolver(pp, interrupt, reg)
	if err != nil {
		return nil, err
	}
	size := pp.p.LP.NumVars * (len(pp.p.LP.Constraints) + 1)
	if workers := resolveSpecWorkers(parallelism); workers > 1 && size >= specMinProblemSize {
		return newStealPool(pp, rs, workers, deadline, interrupt, rec, reg), nil
	}
	return &inlineEvaluator{rs: rs, deadline: deadline, rec: rec}, nil
}

// inlineEvaluator is the sequential path: every relaxation is solved on the
// calling goroutine at the moment the main loop needs it, against one
// persistent bounded-simplex arena.
type inlineEvaluator struct {
	rs       *relaxSolver
	deadline time.Time
	rec      *obs.Recorder
}

func (e *inlineEvaluator) solve(nd *node, _ *nodeHeap) (*lp.Solution, *lp.Basis, error) {
	sol, bas, err := e.rs.solve(nd, e.deadline)
	if err == nil {
		lp.AccumulateStats(e.rec, sol)
	}
	return sol, bas, err
}

func (e *inlineEvaluator) publish(float64) {}
func (e *inlineEvaluator) close()          {}

// lpFuture is one speculative relaxation solve. Its lifecycle is governed
// by the claim word: 0 while queued on a deque, 1 once claimed — by the
// worker that dequeued it (which then writes sol/err and closes done) or
// by the main loop (which reclaims the node and solves it inline, leaving
// the stale deque entry for some worker to dequeue and drop). The
// compare-and-swap makes the two claims mutually exclusive, and the
// channel close orders the worker's writes before the main loop's reads.
type lpFuture struct {
	nd      *node
	claim   atomic.Uint32
	done    chan struct{}
	sol     *lp.Solution
	bas     *lp.Basis
	err     error
	skipped bool // worker declined: the node is certain to be pruned
	stolen  bool // solved by a worker other than the one it was placed on
}

// stealPool solves LP relaxations of likely-next frontier nodes on a pool
// of workers with per-worker deques and work stealing, while the main loop
// runs the exact sequential control flow.
//
// Scheduling: the main loop ranks a prefix of the frontier by the
// pseudocost subtree estimate (node.est), canonical nodeLess order
// breaking ties, and places each node on the deque of worker
// ((seq+1)/2) mod workers — siblings land on the same worker, so the
// shared parent-basis LU memo is loaded from one arena instead of being
// refactorised twice. An owner pops its own deque from the front (its
// best-ranked work); an idle worker steals from the back of the first
// non-empty deque after its own (the work its owner would reach last),
// the classic deque discipline that keeps the two ends from contending
// over the same entries.
//
// Determinism: the main loop alone pops nodes, prunes, branches, updates
// pseudocosts and accepts incumbents — workers only ever run
// relaxSolver.solve, a pure function of (prepped problem, node): a warm
// start refactorises the node's parent basis canonically, so the result
// does not depend on which worker's arena ran it, nor on any tableau
// state left by earlier solves. A speculative result is consumed only when
// the main loop reaches that node in canonical heap order, so
// explored-node counts, fingerprints, incumbents, bounds and the final X
// match the sequential solve bit for bit. LP pivot counters are attributed
// at consumption time (lp.AccumulateStats), so lp.* telemetry matches the
// sequential run too; only the milp.steal.* diagnostics are
// timing-dependent.
//
// Workers skip a node when its parent bound already exceeds the published
// incumbent: the incumbent is monotone non-increasing and published only by
// the main loop, so the main loop's own prune test — the same inequality
// against an equal-or-lower objective — is then guaranteed to discard the
// node before asking for its solution. The consume path still re-solves
// inline if a skipped future is ever reached, keeping exactness independent
// of that argument.
type stealPool struct {
	pp        *prepped
	rs        *relaxSolver // main-goroutine solver for non-speculated nodes
	deadline  time.Time
	interrupt <-chan struct{} // installed in each worker's LP solver
	rec       *obs.Recorder
	reg       *obs.Registry // aggregate registry for worker LP solvers
	workers   int

	// mu guards the deques; cond wakes idle workers when work is pushed
	// or the pool closes.
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]*lpFuture
	closed bool
	wg     sync.WaitGroup
	// started is set (by the main goroutine) once the worker pool has been
	// launched; the pool starts lazily on the first scheduled task, so a
	// solve whose frontier never reaches specMinOpenNodes pays nothing.
	started bool

	// incumbent is the published incumbent objective as math.Float64bits
	// (+Inf until the first incumbent). Written by the main loop, read by
	// workers.
	incumbent atomic.Uint64

	// futures is touched only by the main goroutine (solve/close); workers
	// see futures solely through the deques.
	futures   map[*node]*lpFuture
	scheduled int64
	consumed  int64
	stolen    int64
	reclaimed int64
}

func newStealPool(pp *prepped, rs *relaxSolver, workers int, deadline time.Time, interrupt <-chan struct{}, rec *obs.Recorder, reg *obs.Registry) *stealPool {
	f := &stealPool{
		pp:        pp,
		rs:        rs,
		deadline:  deadline,
		interrupt: interrupt,
		rec:       rec,
		reg:       reg,
		workers:   workers,
		deques:    make([][]*lpFuture, workers),
		futures:   make(map[*node]*lpFuture),
	}
	f.cond = sync.NewCond(&f.mu)
	f.incumbent.Store(math.Float64bits(math.Inf(1)))
	return f
}

// start launches the worker pool; called from the main goroutine when the
// first speculative task is about to be scheduled.
func (f *stealPool) start() {
	f.started = true
	f.wg.Add(f.workers)
	for w := 0; w < f.workers; w++ {
		go f.worker(w)
	}
}

// next blocks until the pool closes or a future is available: the front of
// worker w's own deque first, else a steal from the back of the first
// non-empty deque after w (cyclic scan). The second return reports a
// steal.
func (f *stealPool) next(w int) (*lpFuture, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if q := f.deques[w]; len(q) > 0 {
			fut := q[0]
			q[0] = nil
			f.deques[w] = q[1:]
			return fut, false
		}
		for i := 1; i < f.workers; i++ {
			v := (w + i) % f.workers
			if q := f.deques[v]; len(q) > 0 {
				fut := q[len(q)-1]
				q[len(q)-1] = nil
				f.deques[v] = q[:len(q)-1]
				return fut, true
			}
		}
		if f.closed {
			return nil, false
		}
		f.cond.Wait()
	}
}

func (f *stealPool) worker(w int) {
	defer f.wg.Done()
	rs, err := newRelaxSolver(f.pp, f.interrupt, f.reg)
	for {
		fut, wasSteal := f.next(w)
		if fut == nil {
			return
		}
		if !fut.claim.CompareAndSwap(0, 1) {
			continue // the main loop reclaimed it; stale deque entry
		}
		if err != nil {
			// The main goroutine's identical construction succeeded, so this
			// cannot normally happen; degrade to skipped futures (the consume
			// path re-solves inline).
			fut.skipped = true
			close(fut.done)
			continue
		}
		if inc := math.Float64frombits(f.incumbent.Load()); fut.nd.bound >= inc-1e-9 {
			fut.skipped = true
			close(fut.done)
			continue
		}
		fut.stolen = wasSteal
		fut.sol, fut.bas, fut.err = rs.solve(fut.nd, f.deadline)
		close(fut.done)
	}
}

func (f *stealPool) publish(objective float64) {
	// Only the main loop publishes, and incumbents only improve, so a plain
	// store keeps the value monotone non-increasing.
	f.incumbent.Store(math.Float64bits(objective))
}

// prefetch schedules speculative solves for the nodes most likely to be
// popped next: it scans a prefix of the heap's backing array (the heap
// property keeps the best candidates near the front), ranks them by the
// pseudocost subtree estimate with canonical nodeLess order breaking ties,
// and places as many as fit the speculation window on their affine
// workers' deques.
func (f *stealPool) prefetch(open *nodeHeap) {
	if open.Len() < specMinOpenNodes {
		return
	}
	window := 2 * f.workers
	if len(f.futures) >= window {
		return // speculation window full
	}
	if !f.started {
		f.start()
	}
	scan := 4 * window
	if scan > open.Len() {
		scan = open.Len()
	}
	cand := make([]*node, 0, scan)
	for _, nd := range (*open)[:scan] {
		if _, ok := f.futures[nd]; !ok {
			cand = append(cand, nd)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].est != cand[j].est {
			return cand[i].est < cand[j].est
		}
		return nodeLess(cand[i], cand[j])
	})
	if room := window - len(f.futures); len(cand) > room {
		cand = cand[:room]
	}
	f.mu.Lock()
	for _, nd := range cand {
		fut := &lpFuture{nd: nd, done: make(chan struct{})}
		f.futures[nd] = fut
		f.scheduled++
		// Sibling affinity: the down child (odd seq) and up child (even
		// seq) of one branch share (seq+1)/2 and hence a deque, so the
		// parent-basis factor memo is loaded once.
		wid := ((nd.seq + 1) / 2) % f.workers
		f.deques[wid] = append(f.deques[wid], fut)
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// solveInline runs nd on the main goroutine's own solver, attributing LP
// telemetry immediately.
func (f *stealPool) solveInline(nd *node) (*lp.Solution, *lp.Basis, error) {
	sol, bas, err := f.rs.solve(nd, f.deadline)
	if err == nil {
		lp.AccumulateStats(f.rec, sol)
	}
	return sol, bas, err
}

func (f *stealPool) solve(nd *node, open *nodeHeap) (*lp.Solution, *lp.Basis, error) {
	fut, ok := f.futures[nd]
	if ok {
		delete(f.futures, nd)
	}
	// Refill the speculation window before (possibly) blocking, so workers
	// stay busy while the main loop waits.
	f.prefetch(open)
	if !ok {
		return f.solveInline(nd)
	}
	if fut.claim.CompareAndSwap(0, 1) {
		// Still sitting unclaimed on a deque: reclaim it and solve inline
		// rather than wait for a worker to get around to it. The stale
		// deque entry is dropped when a worker's own claim fails.
		f.reclaimed++
		return f.solveInline(nd)
	}
	<-fut.done
	if fut.skipped {
		// The skip argument in the type comment says the main loop prunes
		// such nodes before asking; re-solve inline so correctness never
		// rests on it.
		return f.solveInline(nd)
	}
	f.consumed++
	if fut.stolen {
		f.stolen++
	}
	if fut.err == nil {
		lp.AccumulateStats(f.rec, fut.sol)
	}
	return fut.sol, fut.bas, fut.err
}

func (f *stealPool) close() {
	// Publishing −Inf makes workers skip everything still queued, so
	// shutdown does not wait on stale LP solves.
	f.incumbent.Store(math.Float64bits(math.Inf(-1)))
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
	if f.started {
		f.wg.Wait()
	}
	if f.rec != nil {
		f.rec.Add("milp.steal.scheduled", f.scheduled)
		f.rec.Add("milp.steal.wasted", f.scheduled-f.consumed)
		f.rec.Add("milp.steal.stolen", f.stolen)
		f.rec.Add("milp.steal.reclaimed", f.reclaimed)
	}
}
