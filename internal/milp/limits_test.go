package milp

// Limit-path coverage: when the branch-and-bound search is cut off by the
// node or time limit, the solver must come back with Status Feasible, hand
// the seeded incumbent back as the best known solution, and report a
// non-zero optimality gap instead of silently claiming optimality.

import (
	"math"
	"testing"
	"time"

	"sring/internal/lp"
)

// limitKnapsack returns a knapsack whose LP relaxation is fractional, so
// proving optimality requires branching beyond the root node:
// min -10x0 -13x1 -7x2 -4x3  s.t.  5x0+7x1+4x2+3x3 <= 10, x binary.
// IP optimum -17; LP relaxation bound ~ -17.86.
func limitKnapsack() *Problem {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{-10, -13, -7, -4},
		},
		Integer: allInt(4),
	}
	p.LP.AddConstraint(lp.LE, 10, map[int]float64{0: 5, 1: 7, 2: 4, 3: 3})
	binaryBox(&p.LP)
	return p
}

// seeded incumbent: x3 only, objective -4 (feasible, far from optimal).
var limitIncumbent = []float64{0, 0, 0, 1}

func TestNodeLimitReturnsIncumbentWithGap(t *testing.T) {
	p := limitKnapsack()
	res, err := Solve(p, Options{
		NodeLimit:       1,
		Incumbent:       append([]float64(nil), limitIncumbent...),
		DisablePresolve: true,
		CutRounds:       -1, // root cuts would prove this knapsack optimal at node 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v, want Feasible (node limit hit)", res.Status)
	}
	if res.Nodes > 1 {
		t.Errorf("explored %d nodes, want <= 1", res.Nodes)
	}
	for i, v := range limitIncumbent {
		if !approx(res.X[i], v, 1e-9) {
			t.Fatalf("X = %v, want the seeded incumbent %v", res.X, limitIncumbent)
		}
	}
	if !approx(res.Objective, -4, 1e-6) {
		t.Errorf("objective = %v, want the incumbent's -4", res.Objective)
	}
	if res.Bound >= res.Objective {
		t.Errorf("bound = %v, want < objective %v (unproven)", res.Bound, res.Objective)
	}
	g := res.Gap()
	if g <= 0 {
		t.Errorf("gap = %v, want > 0 when cut off early", g)
	}
	if math.IsInf(g, 0) || math.IsNaN(g) {
		t.Errorf("gap = %v, want finite after the root relaxation ran", g)
	}
}

func TestTimeLimitReturnsIncumbentWithGap(t *testing.T) {
	p := limitKnapsack()
	res, err := Solve(p, Options{
		TimeLimit:       time.Nanosecond,
		Incumbent:       append([]float64(nil), limitIncumbent...),
		DisablePresolve: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v, want Feasible (time limit hit)", res.Status)
	}
	for i, v := range limitIncumbent {
		if !approx(res.X[i], v, 1e-9) {
			t.Fatalf("X = %v, want the seeded incumbent %v", res.X, limitIncumbent)
		}
	}
	if !approx(res.Objective, -4, 1e-6) {
		t.Errorf("objective = %v, want the incumbent's -4", res.Objective)
	}
	if g := res.Gap(); g <= 0 {
		t.Errorf("gap = %v, want > 0 when cut off early", g)
	}
}

// Without a seed, hitting a limit before any integral solution is found
// must not fabricate a solution: the gap reads as infinite.
func TestNodeLimitNoIncumbentInfiniteGap(t *testing.T) {
	p := limitKnapsack()
	res, err := Solve(p, Options{NodeLimit: 1, DisablePresolve: true, CutRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		t.Fatalf("status = %v, optimality cannot be proven in one node", res.Status)
	}
	if res.X == nil {
		if g := res.Gap(); !math.IsInf(g, 1) {
			t.Errorf("gap = %v, want +Inf with no solution", g)
		}
	}
}
