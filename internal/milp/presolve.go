package milp

import (
	"fmt"
	"math"

	"sring/internal/lp"
)

// presolveResult captures a problem reduction: variables proven to take a
// fixed value are substituted out, shrinking the LP the branch-and-bound
// solves at every node.
type presolveResult struct {
	// fixed maps original variable -> forced value.
	fixed map[int]float64
	// reduced is the problem over the remaining variables (nil if
	// everything was fixed).
	reduced *Problem
	// oldToNew maps original variable indices to reduced indices (-1 for
	// fixed variables).
	oldToNew []int
	// constant is the objective contribution of the fixed variables.
	constant float64
	// infeasible reports that presolve proved the problem has no solution.
	infeasible bool
}

const presolveTol = 1e-9

// presolve applies iterated bound propagation:
//
//  1. Singleton rows become variable bounds (rounded for integer vars).
//  2. In a <=-row whose unfixed coefficients are all non-negative, any
//     integer variable whose smallest step would already violate the row's
//     slack (given every other variable at its lower bound) is pinned to
//     its lower bound.
//  3. Bounds meeting (lb == ub) fix the variable.
//
// Only integer variables are ever fixed; continuous variables keep their
// ranges (the simplex handles them).
func presolve(p *Problem) presolveResult {
	n := p.LP.NumVars
	lb := make([]float64, n) // all-zero: x >= 0 by the LP convention
	ub := make([]float64, n)
	for i := range ub {
		ub[i] = math.Inf(1)
	}
	fixed := make(map[int]float64)

	tighten := func(i int) bool { // returns false on contradiction
		if p.Integer[i] {
			lb[i] = math.Ceil(lb[i] - presolveTol)
			ub[i] = math.Floor(ub[i] + presolveTol)
		}
		if ub[i] < lb[i]-presolveTol {
			return false
		}
		if _, done := fixed[i]; !done && p.Integer[i] && ub[i]-lb[i] < presolveTol {
			fixed[i] = lb[i]
		}
		return true
	}

	for pass := 0; pass < 20; pass++ {
		changed := false
		before := len(fixed)
		for _, c := range p.LP.Constraints {
			// Singleton rows.
			if len(c.Coeffs) == 1 {
				for v, a := range c.Coeffs {
					if a == 0 {
						continue
					}
					bound := c.RHS / a
					switch {
					case c.Rel == lp.EQ:
						if bound < lb[v]-presolveTol || bound > ub[v]+presolveTol {
							return presolveResult{infeasible: true}
						}
						lb[v] = math.Max(lb[v], bound)
						ub[v] = math.Min(ub[v], bound)
					case (c.Rel == lp.LE && a > 0) || (c.Rel == lp.GE && a < 0):
						if bound < ub[v] {
							ub[v] = bound
							changed = true
						}
					default: // LE with a<0, or GE with a>0: lower bound
						if bound > lb[v] {
							lb[v] = bound
							changed = true
						}
					}
					if !tighten(v) {
						return presolveResult{infeasible: true}
					}
				}
				continue
			}
			// Non-negative LE rows: pin integers that cannot move.
			if c.Rel != lp.LE {
				continue
			}
			allNonNeg := true
			minAct := 0.0
			for v, a := range c.Coeffs {
				if a < 0 {
					allNonNeg = false
					break
				}
				if val, done := fixed[v]; done {
					minAct += a * val
				} else {
					minAct += a * lb[v]
				}
			}
			if !allNonNeg {
				continue
			}
			if minAct > c.RHS+1e-7 {
				return presolveResult{infeasible: true}
			}
			for v, a := range c.Coeffs {
				if a <= 0 || !p.Integer[v] {
					continue
				}
				if _, done := fixed[v]; done {
					continue
				}
				// One integer step up would break the row.
				if minAct+a > c.RHS+1e-7 && ub[v] > lb[v] {
					ub[v] = lb[v]
					if !tighten(v) {
						return presolveResult{infeasible: true}
					}
					changed = true
				}
			}
		}
		if !changed && len(fixed) == before {
			break
		}
	}

	if len(fixed) == 0 {
		return presolveResult{fixed: fixed}
	}
	return buildReduced(p, fixed)
}

// buildReduced substitutes the fixed variables out of the problem.
func buildReduced(p *Problem, fixed map[int]float64) presolveResult {
	n := p.LP.NumVars
	res := presolveResult{fixed: fixed, oldToNew: make([]int, n)}
	next := 0
	for i := 0; i < n; i++ {
		if _, done := fixed[i]; done {
			res.oldToNew[i] = -1
			continue
		}
		res.oldToNew[i] = next
		next++
	}
	if next == 0 {
		// Everything fixed: feasibility of the remaining rows is checked
		// by the caller through checkIncumbent on the expanded vector.
		for v, val := range fixed {
			if p.LP.Objective != nil {
				res.constant += p.LP.Objective[v] * val
			}
		}
		return res
	}
	red := &Problem{
		LP:      lp.Problem{NumVars: next, Objective: make([]float64, next)},
		Integer: make([]bool, next),
	}
	for i := 0; i < n; i++ {
		if j := res.oldToNew[i]; j >= 0 {
			if p.LP.Objective != nil {
				red.LP.Objective[j] = p.LP.Objective[i]
			}
			red.Integer[j] = p.Integer[i]
		} else if p.LP.Objective != nil {
			res.constant += p.LP.Objective[i] * fixed[i]
		}
	}
	// rowMap records each original row's index in the reduced problem (-1:
	// dropped as constant), so CoverRows survive the reduction.
	rowMap := make([]int, len(p.LP.Constraints))
	for ci, c := range p.LP.Constraints {
		rowMap[ci] = -1
		terms := make(map[int]float64)
		rhs := c.RHS
		for v, a := range c.Coeffs {
			if val, done := fixed[v]; done {
				rhs -= a * val
			} else {
				terms[res.oldToNew[v]] += a
			}
		}
		if len(terms) == 0 {
			// Constant row: verify it.
			ok := true
			switch c.Rel {
			case lp.LE:
				ok = 0 <= rhs+1e-7
			case lp.GE:
				ok = 0 >= rhs-1e-7
			case lp.EQ:
				ok = math.Abs(rhs) <= 1e-7
			}
			if !ok {
				return presolveResult{infeasible: true}
			}
			continue
		}
		rowMap[ci] = len(red.LP.Constraints)
		red.LP.Constraints = append(red.LP.Constraints, lp.Constraint{Coeffs: terms, Rel: c.Rel, RHS: rhs})
	}
	for _, r := range p.CoverRows {
		if j := rowMap[r]; j >= 0 {
			red.CoverRows = append(red.CoverRows, j)
		}
	}
	res.reduced = red
	return res
}

// expand lifts a reduced solution vector back to the original variable
// space.
func (res presolveResult) expand(x []float64, n int) []float64 {
	full := make([]float64, n)
	for i := 0; i < n; i++ {
		if val, done := res.fixed[i]; done {
			full[i] = val
		} else if x != nil {
			full[i] = x[res.oldToNew[i]]
		}
	}
	return full
}

// shrink projects a full-space vector into the reduced space; it errors if
// the vector disagrees with a fixing (the incumbent would be infeasible).
func (res presolveResult) shrink(x []float64) ([]float64, error) {
	if res.reduced == nil {
		return nil, nil
	}
	out := make([]float64, res.reduced.LP.NumVars)
	for i, v := range x {
		if val, done := res.fixed[i]; done {
			if math.Abs(v-val) > 1e-6 {
				return nil, fmt.Errorf("milp: incumbent sets variable %d to %v, presolve fixed it to %v", i, v, val)
			}
			continue
		}
		out[res.oldToNew[i]] = v
	}
	return out, nil
}
