package milp

// Branch and cut: Gomory mixed-integer and lifted cover cut separation at
// branch-and-bound nodes, with a deterministic cut pool.
//
// Determinism. Every piece of mutable cutting state — the pool, the per-cut
// age/tightness bookkeeping, the separation itself — lives on the main
// branch-and-bound goroutine and is touched only inside cutter.run and
// cutter.inherit, which the main loop calls at canonical node consumption.
// A node's active cut list is fixed at the moment the node is created and
// never mutated afterwards, so the work-stealing workers see cuts only as
// immutable extra LP rows: a speculative solve stays the pure function of
// (prepped problem, node) that PR 2's bit-identity argument rests on. The
// cutter re-establishes a consumed node's tableau on its own arena by
// SolveDual from the consumed basis — a canonical refactorisation that
// depends on the basis *set*, not on which worker produced it — so the
// separated cuts are identical whatever the parallelism.
//
// Locality. A Gomory cut's derivation shifts every nonbasic column to the
// bound it rests at. When all of those bounds are root bounds the cut is
// valid everywhere (global) and enters the pool for adoption by other
// subtrees; when any is a branching tightening the cut is valid only below
// this node (local) and travels solely by inheritance to the node's own
// descendants. Cover cuts are derived from root binarity and original rows,
// hence always global.
//
// Warm starts. Children inherit exactly the cut rows of the LP that
// produced their warm-start basis. When inheritance purges an aged slack-
// basic cut, the basis is surgically shrunk with it (drop the cut row and
// its basic slack column; the slack column has a single nonzero in its own
// row, so the minor stays nonsingular), keeping the dual warm start intact
// across purges.

import (
	"math"
	"sort"
	"time"

	"sring/internal/lp"
	"sring/internal/obs"
)

const (
	// defaultCutRounds / defaultMaxCutsPerRound back the zero values of
	// Options.CutRounds / Options.MaxCutsPerRound.
	defaultCutRounds       = 30
	defaultMaxCutsPerRound = 8
	// cutMaxDepth bounds how deep in the tree separation still runs: the
	// root gets the full round budget, nodes at depth <= cutMaxDepth one
	// round, deeper nodes none (their bounds move mostly by inheritance).
	cutMaxDepth = 0
	// adoptMaxDepth bounds pool adoption at non-separating nodes: below it
	// a purged-then-revived cut would thrash (re-adopted, re-purged) faster
	// than it helps the bound.
	adoptMaxDepth = 0
	// gmiMinFrac rejects tableau rows whose basic value is too close to
	// integral — the cut would be shallow and ill-conditioned.
	gmiMinFrac = 0.01
	// cutViolTol is the minimum absolute violation (relative to 1+|rhs|)
	// for a candidate to be considered at all; cutEffTol the minimum
	// norm-scaled violation (efficacy).
	cutViolTol = 1e-6
	cutEffTol  = 1e-4
	// cutCoeffDropTol: coefficients at or below it are dropped with a
	// right-hand-side compensation over the variable's range (kept when the
	// range is unbounded — dropping would be invalid).
	cutCoeffDropTol = 1e-11
	// gmiZeroTol: tableau-row entries at or below it are BTRAN roundoff of
	// an exact zero and are skipped outright in the GMI derivation.
	gmiZeroTol = 1e-11
	// cutMaxDynamism rejects cuts whose coefficient magnitude ratio would
	// destabilise the basis factorisation.
	cutMaxDynamism = 1e7
	// cutDropAge / poolPurgeAge: a cut slack-basic (loose) for this many
	// consecutive canonical consumptions is dropped from children / from
	// the global pool.
	cutDropAge   = 20
	poolPurgeAge = 50
)

// CutAuditRecord describes one applied cut for the CutAudit test hook. All
// slices and maps are private copies. Variable indices are in the space the
// branch and bound runs in (the original space when presolve is disabled,
// since row prepping never renumbers variables).
type CutAuditRecord struct {
	Kind   string // "gmi", "cover" or "pool" (a re-adopted global cut)
	Coeffs map[int]float64
	Rel    lp.Rel
	RHS    float64
	Global bool
	// FracX is the fractional relaxation point the cut was separated from
	// (violated by construction); Lower/Upper the node's variable bounds at
	// that moment — the validity domain of a non-global cut.
	FracX        []float64
	Lower, Upper []float64
}

// CutAudit, when non-nil, receives every cut the moment it is applied to a
// node LP. It is a test hook (the cut-validity property tests install it);
// it runs on the solver's main goroutine and must not retain the solver.
var CutAudit func(CutAuditRecord)

// cut is one separated cutting plane over structural variables. Immutable
// after construction except for the pool bookkeeping fields, which only the
// main goroutine touches.
type cut struct {
	id     int
	kind   string // "gmi" | "cover"
	coeffs map[int]float64
	vars   []int // sorted keys of coeffs: deterministic iteration order
	rel    lp.Rel
	rhs    float64
	norm   float64 // ||coeffs||_2, for efficacy scaling
	sig    uint64  // content signature, for dedup and fingerprints
	global bool
	// pooled marks membership in the cutter's active global list.
	pooled bool
	// born / lastTight are canonical consumption indices: when the cut was
	// admitted and when its row was last observed tight (slack nonbasic).
	born, lastTight int
}

func (c *cut) row() lp.Constraint {
	return lp.Constraint{Coeffs: c.coeffs, Rel: c.rel, RHS: c.rhs}
}

// violation is positive when x violates the cut. Summation follows the
// sorted variable order so the float result is deterministic.
func (c *cut) violation(x []float64) float64 {
	var act float64
	for _, v := range c.vars {
		act += c.coeffs[v] * x[v]
	}
	if c.rel == lp.GE {
		return c.rhs - act
	}
	return act - c.rhs
}

// cutListEq reports whether two cut lists are element-wise identical; node
// cut lists are immutable, so pointer equality is exact.
func cutListEq(a, b []*cut) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// foldCuts hashes a cut list for the explored-node fingerprint. Empty lists
// fold to 0, so cut-free solves keep a stable shape.
func foldCuts(cuts []*cut) uint64 {
	if len(cuts) == 0 {
		return 0
	}
	h := fnv64Offset
	for _, c := range cuts {
		h ^= c.sig
		h *= fnv64Prime
	}
	return h
}

// roundSig rounds to ~9 significant digits: cut signatures tolerate the
// last-bit noise of equivalent derivations without colliding in practice.
func roundSig(x float64) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	exp := math.Ceil(math.Log10(math.Abs(x)))
	scale := math.Pow(10, 9-exp)
	return math.Round(x*scale) / scale
}

func cutSignature(rel lp.Rel, rhs float64, vars []int, coeffs map[int]float64) uint64 {
	h := fnv64Offset
	h ^= uint64(rel)
	h *= fnv64Prime
	h ^= math.Float64bits(roundSig(rhs))
	h *= fnv64Prime
	for _, v := range vars {
		h ^= uint64(v)
		h *= fnv64Prime
		h ^= math.Float64bits(roundSig(coeffs[v]))
		h *= fnv64Prime
	}
	return h
}

// candidate is a separated-but-not-yet-selected cut with its efficacy at
// the separating point.
type candidate struct {
	c     *cut
	eff   float64
	fresh bool // newly separated (vs re-adopted from the pool)
}

// cutter owns all cutting-plane state of one solveBB run. Main goroutine
// only.
type cutter struct {
	pp *prepped
	rs *relaxSolver // dedicated arena: tableau re-establishment + cut rounds
	// rounds / perRound are the resolved knob values.
	rounds, perRound int
	rec              *obs.Recorder

	bySig  map[uint64]*cut // every cut ever admitted, by signature
	global []*cut          // active global pool, admission order
	nextID int
	// consume counts canonical node consumptions (cutter.run calls): the
	// clock for age-based purging.
	consume int

	separatedN, appliedN, purgedN, roundsN int64
}

func newCutter(pp *prepped, rs *relaxSolver, opt Options, rec *obs.Recorder) *cutter {
	rounds := opt.CutRounds
	if rounds == 0 {
		rounds = defaultCutRounds
	}
	per := opt.MaxCutsPerRound
	switch {
	case per == 0:
		per = defaultMaxCutsPerRound
	case per < 0:
		per = math.MaxInt32
	}
	return &cutter{
		pp:       pp,
		rs:       rs,
		rounds:   rounds,
		perRound: per,
		rec:      rec,
		bySig:    make(map[uint64]*cut),
	}
}

// cutsEnabled reports whether the options ask for cut separation at all.
func cutsEnabled(opt Options) bool { return opt.CutRounds >= 0 }

func (ct *cutter) roundsFor(depth int) int {
	switch {
	case depth == 0:
		return ct.rounds
	case depth <= cutMaxDepth:
		return 1
	default:
		return 0
	}
}

// flush publishes the run's counters.
func (ct *cutter) flush(reg *obs.Registry) {
	if ct.rec != nil {
		ct.rec.Add("milp.cuts.separated", ct.separatedN)
		ct.rec.Add("milp.cuts.applied", ct.appliedN)
		ct.rec.Add("milp.cuts.purged", ct.purgedN)
		ct.rec.Add("milp.cuts.rounds", ct.roundsN)
	}
	if reg != nil {
		reg.Add("milp.cuts.separated", ct.separatedN)
		reg.Add("milp.cuts.applied", ct.appliedN)
		reg.Add("milp.cuts.purged", ct.purgedN)
		reg.Add("milp.cuts.rounds", ct.roundsN)
	}
}

// prunePool retires global cuts that have been loose for poolPurgeAge
// consumptions. They stay in bySig (a re-separated duplicate is re-adopted
// rather than duplicated) but stop being offered to new nodes.
func (ct *cutter) prunePool() {
	kept := ct.global[:0]
	for _, c := range ct.global {
		if ct.consume-c.lastTight > poolPurgeAge {
			c.pooled = false
			ct.purgedN++
			continue
		}
		kept = append(kept, c)
	}
	ct.global = kept
}

// run performs the cutting-plane rounds for a consumed node whose
// relaxation came back fractional. On success it extends nd.cuts with the
// applied cuts and returns the re-solved relaxation (tighter bound, new
// warm-start basis). A nil solution means no cuts were applied and the
// caller's solution stands. pruned=true means the cut-augmented LP is
// infeasible: valid cuts only remove fractional points, so the subtree
// holds no integral solution and the node can be discarded.
func (ct *cutter) run(nd *node, sol *lp.Solution, bas *lp.Basis, deadline time.Time) (*lp.Solution, *lp.Basis, bool) {
	ct.consume++
	ct.prunePool()
	rounds := ct.roundsFor(nd.depth)
	adoptOnly := rounds == 0
	if adoptOnly {
		// Below the separation depth, nodes still adopt violated global
		// pool cuts: a pool scan against the node's relaxation point (a
		// deterministic function of the node, whichever worker solved it)
		// costs no tableau work.
		if nd.depth > adoptMaxDepth || len(ct.global) == 0 || !ct.anyAdoptable(sol, nd.cuts) {
			return nil, nil, false
		}
		rounds = 1
	}
	var curSol *lp.Solution
	var curBas *lp.Basis
	if adoptOnly {
		// No tableau needed; the arena only has to carry the node's rows
		// and bounds so the cut rounds can extend them.
		if err := ct.rs.configure(nd.cuts); err != nil {
			return nil, nil, false
		}
		ct.rs.setBounds(nd)
		curSol, curBas = sol, bas
	} else {
		// Re-establish the node's tableau on the cutter's arena: a
		// canonical refactorisation of the consumed basis, identical
		// whichever worker arena produced bas.
		probe := &node{lower: nd.lower, upper: nd.upper, basis: bas, cuts: nd.cuts}
		var err error
		curSol, curBas, err = ct.rs.solve(probe, deadline)
		if err != nil || curSol.Status != lp.Optimal || curBas == nil {
			return nil, nil, false
		}
		lp.AccumulateStats(ct.rec, curSol)
	}
	cur := nd.cuts
	for r := 0; r < rounds; r++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		sel := ct.separate(curSol, cur, adoptOnly)
		if len(sel) == 0 {
			break
		}
		ct.roundsN++
		next := make([]*cut, 0, len(cur)+len(sel))
		next = append(next, cur...)
		next = append(next, sel...)
		if err := ct.rs.configure(next); err != nil {
			break
		}
		ext := ct.rs.s.ExtendBasis(curBas)
		if ext == nil {
			break
		}
		nsol, ok, nerr := ct.rs.s.SolveDual(ext, ct.rs.lo, ct.rs.hi, deadline)
		if nerr != nil || !ok {
			break // keep the last consistent (cur, curSol, curBas) state
		}
		if nsol.Status == lp.Infeasible {
			ct.appliedN += int64(len(sel))
			return nil, nil, true
		}
		if nsol.Status != lp.Optimal {
			break
		}
		lp.AccumulateStats(ct.rec, nsol)
		ct.appliedN += int64(len(sel))
		cur, curSol, curBas = next, nsol, ct.rs.s.Basis()
	}
	if cutListEq(cur, nd.cuts) {
		return nil, nil, false
	}
	nd.cuts = cur
	return curSol, curBas, false
}

// inherit computes the cut list, warm-start basis and cut signature the
// children of nd inherit: the node's final cut rows, minus cuts that have
// been slack-basic (loose) for cutDropAge consumptions — those are purged
// with a matching basis surgery so the dual warm start survives.
func (ct *cutter) inherit(nd *node, bas *lp.Basis) ([]*cut, *lp.Basis, uint64) {
	cur := nd.cuts
	if len(cur) == 0 || bas == nil {
		return cur, bas, foldCuts(cur)
	}
	base := len(ct.pp.p.LP.Constraints)
	nVars := ct.pp.p.LP.NumVars
	slackBasic := make([]bool, len(cur))
	for _, col := range bas.Basic {
		if i := int(col) - nVars - base; i >= 0 && i < len(cur) {
			slackBasic[i] = true
		}
	}
	drop := 0
	for i, c := range cur {
		if !slackBasic[i] {
			c.lastTight = ct.consume
		} else if ct.consume-c.lastTight > cutDropAge {
			drop++
		}
	}
	if drop == 0 {
		return cur, bas, foldCuts(cur)
	}
	kept := make([]*cut, 0, len(cur)-drop)
	dropped := make([]bool, len(cur))
	for i, c := range cur {
		if slackBasic[i] && ct.consume-c.lastTight > cutDropAge {
			dropped[i] = true
			ct.purgedN++
			continue
		}
		kept = append(kept, c)
	}
	return kept, shrinkBasis(bas, nVars, base, dropped), foldCuts(kept)
}

// shrinkBasis removes the dropped cut rows and their (basic) slack columns
// from a basis snapshot. Slack columns of retained rows shift down by the
// number of dropped rows before them; structural and base-row slack columns
// are untouched. The dropped columns each carry a single nonzero in their
// own row, so cofactor expansion keeps the shrunk basis nonsingular.
func shrinkBasis(bas *lp.Basis, nVars, base int, dropped []bool) *lp.Basis {
	shift := make([]int, len(dropped)) // cut index -> columns removed before it
	run := 0
	for i, d := range dropped {
		shift[i] = run
		if d {
			run++
		}
	}
	remap := func(col int32) (int32, bool) {
		i := int(col) - nVars - base
		if i < 0 || i >= len(dropped) {
			return col, true // structural or base-row slack: unchanged
		}
		if dropped[i] {
			return 0, false
		}
		return col - int32(shift[i]), true
	}
	out := &lp.Basis{
		Basic:   make([]int32, 0, len(bas.Basic)-run),
		AtUpper: make([]bool, 0, len(bas.AtUpper)-run),
	}
	for _, col := range bas.Basic {
		if nc, keep := remap(col); keep {
			out.Basic = append(out.Basic, nc)
		}
	}
	for col, up := range bas.AtUpper {
		if _, keep := remap(int32(col)); keep {
			out.AtUpper = append(out.AtUpper, up)
		}
	}
	return out
}

// anyAdoptable reports whether the pool holds a global cut violated at x
// that the node's LP does not already carry.
func (ct *cutter) anyAdoptable(sol *lp.Solution, cur []*cut) bool {
	inLP := make(map[uint64]bool, len(cur))
	for _, c := range cur {
		inLP[c.sig] = true
	}
	for _, c := range ct.global {
		if inLP[c.sig] {
			continue
		}
		if v := c.violation(sol.X); v >= cutViolTol*(1+math.Abs(c.rhs)) && v/c.norm >= cutEffTol {
			return true
		}
	}
	return false
}

// separate generates candidate cuts at the current fractional point and
// returns the efficacy-selected batch (at most perRound): fresh Gomory and
// cover cuts, plus violated global pool cuts the node's LP does not carry
// yet. Fresh selections are admitted to the pool here. With adoptOnly the
// fresh separators are skipped — only the pool scan runs.
func (ct *cutter) separate(sol *lp.Solution, cur []*cut, adoptOnly bool) []*cut {
	inLP := make(map[uint64]bool, len(cur))
	for _, c := range cur {
		inLP[c.sig] = true
	}
	var cands []candidate
	seen := make(map[uint64]bool)
	add := func(c *cut, eff float64, fresh bool) {
		if inLP[c.sig] || seen[c.sig] {
			return
		}
		seen[c.sig] = true
		cands = append(cands, candidate{c: c, eff: eff, fresh: fresh})
		if fresh {
			ct.separatedN++
		}
	}
	if !adoptOnly {
		ct.separateGomory(sol, add)
		ct.separateCovers(sol, add)
	}
	// Pool adoption: global cuts separated elsewhere that this node's
	// point violates.
	for _, c := range ct.global {
		if inLP[c.sig] || seen[c.sig] {
			continue
		}
		if v := c.violation(sol.X); v >= cutViolTol*(1+math.Abs(c.rhs)) && v/c.norm >= cutEffTol {
			add(c, v/c.norm, false)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].eff != cands[j].eff {
			return cands[i].eff > cands[j].eff
		}
		return cands[i].c.sig < cands[j].c.sig
	})
	if len(cands) > ct.perRound {
		cands = cands[:ct.perRound]
	}
	sel := make([]*cut, len(cands))
	for i, cd := range cands {
		c := cd.c
		if cd.fresh {
			if prev, ok := ct.bySig[c.sig]; ok {
				c = prev // purged earlier, re-separated now: reuse
			} else {
				c.id = ct.nextID
				ct.nextID++
				c.born = ct.consume
				ct.bySig[c.sig] = c
			}
			c.lastTight = ct.consume
			if c.global && !c.pooled {
				c.pooled = true
				ct.global = append(ct.global, c)
			}
		}
		sel[i] = c
		if CutAudit != nil {
			ct.audit(c, sol)
		}
	}
	return sel
}

// audit emits a CutAuditRecord for the test hook; copies everything.
func (ct *cutter) audit(c *cut, sol *lp.Solution) {
	coeffs := make(map[int]float64, len(c.coeffs))
	for v, a := range c.coeffs {
		coeffs[v] = a
	}
	CutAudit(CutAuditRecord{
		Kind:   c.kind,
		Coeffs: coeffs,
		Rel:    c.rel,
		RHS:    c.rhs,
		Global: c.global,
		FracX:  append([]float64(nil), sol.X...),
		Lower:  append([]float64(nil), ct.rs.lo...),
		Upper:  append([]float64(nil), ct.rs.hi...),
	})
}

// --- Gomory mixed-integer cuts ---------------------------------------------

// gmiRowBudget bounds how many tableau rows are extracted per round; the
// most fractional basic integers go first.
func (ct *cutter) gmiRowBudget() int {
	b := 4 * ct.perRound
	if b < 16 {
		b = 16
	}
	if b > 128 {
		b = 128
	}
	return b
}

func (ct *cutter) separateGomory(sol *lp.Solution, add func(*cut, float64, bool)) {
	s := ct.rs.s
	n := ct.pp.p.LP.NumVars
	m := s.NumRows()
	type rowCand struct {
		r    int
		dist float64
	}
	var rows []rowCand
	for r := 0; r < m; r++ {
		bv := s.BasicVar(r)
		if bv >= n || !ct.pp.p.Integer[bv] {
			continue
		}
		f0 := frac(s.BasicValue(r))
		if f0 < gmiMinFrac || f0 > 1-gmiMinFrac {
			continue
		}
		rows = append(rows, rowCand{r, math.Min(f0, 1-f0)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].dist != rows[j].dist {
			return rows[i].dist > rows[j].dist
		}
		return rows[i].r < rows[j].r
	})
	if b := ct.gmiRowBudget(); len(rows) > b {
		rows = rows[:b]
	}
	for _, rc := range rows {
		if c, eff := ct.gmiFromRow(rc.r, sol); c != nil {
			add(c, eff, true)
		}
	}
}

func frac(x float64) float64 { return x - math.Floor(x) }

func nearInt(x float64) bool { return math.Abs(x-math.Round(x)) <= 1e-9 }

// gmiFromRow derives the Gomory mixed-integer cut of tableau row r.
//
// With every nonbasic column shifted to its resting bound (t_j = x_j - l_j
// at lower, u_j - x_j at upper; slack columns included), the row reads
// x_B = b̄ - Σ a_j t_j with x_B integral and f0 = frac(b̄) ∈ (0,1). The GMI
// inequality Σ γ_j t_j ≥ f0 uses γ_j = min(f_j, f0(1-f_j)/(1-f0)) for
// integer-shift columns (f_j = frac(a_j)) and γ_j = a_j (a_j ≥ 0) or
// f0·(-a_j)/(1-f0) (a_j < 0) for continuous ones. Substituting the shifts
// and the slack definitions s_i = rhs_i - A_i·x back yields a structural-
// space inequality Σ c_v x_v ≥ rhs. The cut is global exactly when every
// bound used in the shifts is the root bound.
func (ct *cutter) gmiFromRow(r int, sol *lp.Solution) (*cut, float64) {
	s := ct.rs.s
	n := ct.pp.p.LP.NumVars
	row := s.TableauRow(r)
	b := s.BasicValue(r)
	f0 := frac(b)
	terms := make(map[int]float64)
	rhs := f0
	global := true
	for j := range row {
		if s.IsBasic(j) {
			continue // basic columns: coefficient 0 (or 1 in its own row)
		}
		lo, hi := s.ColBounds(j)
		if hi-lo < 1e-12 {
			// Fixed column: t ≡ 0. Global only if fixed at the root too.
			if j < n && (lo != ct.pp.lo[j] || hi != ct.pp.hi[j]) {
				global = false
			}
			continue
		}
		// BTRAN roundoff leaves ~1e-13 ghosts on columns whose exact tableau
		// coefficient is zero; treating them as entries would abort every cut
		// that touches an unbounded column. They are noise, not data.
		if math.Abs(row[j]) <= gmiZeroTol {
			continue
		}
		atUp := s.NonbasicAtUpper(j)
		bound := lo
		if atUp {
			bound = hi
		}
		if math.IsInf(bound, 0) {
			return nil, 0 // resting at an infinite bound: cannot shift
		}
		a := row[j]
		if atUp {
			a = -a
		}
		var g float64
		if j < n && ct.pp.p.Integer[j] && nearInt(bound) {
			fj := frac(a)
			if fj <= f0 {
				g = fj
			} else {
				g = f0 * (1 - fj) / (1 - f0)
			}
		} else if a >= 0 {
			g = a
		} else {
			g = f0 * (-a) / (1 - f0)
		}
		if g <= cutCoeffDropTol {
			if g > 0 {
				// Dropping γ·t weakens the ≥-cut by at most γ·range; only
				// valid (and worth it) over a finite range.
				rng := hi - lo
				if math.IsInf(rng, 0) || g*rng > 1e-7 {
					return nil, 0
				}
				rhs -= g * rng
			}
			continue
		}
		if j < n {
			// Structural shift: t = x - lo or hi - x.
			if atUp {
				terms[j] -= g
				rhs -= g * bound
				if bound != ct.pp.hi[j] {
					global = false
				}
			} else {
				terms[j] += g
				rhs += g * bound
				if bound != ct.pp.lo[j] {
					global = false
				}
			}
			continue
		}
		// Slack shift: s_i = rhs_i - A_i·x, so t expands through row i's
		// structural coefficients (cut rows are structural too, so this
		// never recurses). Slack bounds encode the row relation and are
		// root properties: no locality impact.
		cons := s.Row(j - n)
		if atUp {
			for v, av := range cons.Coeffs {
				terms[v] += g * av
			}
			rhs += g * (cons.RHS - bound)
		} else {
			for v, av := range cons.Coeffs {
				terms[v] -= g * av
			}
			rhs -= g * (cons.RHS - bound)
		}
	}
	return ct.finishCut("gmi", terms, lp.GE, rhs, global, sol)
}

// finishCut cleans, normalises, filters and packages a derived inequality;
// returns nil when it fails the numeric or violation gates.
func (ct *cutter) finishCut(kind string, terms map[int]float64, rel lp.Rel, rhs float64, global bool, sol *lp.Solution) (*cut, float64) {
	vars := make([]int, 0, len(terms))
	for v := range terms {
		vars = append(vars, v)
	}
	if len(vars) == 0 {
		return nil, 0
	}
	sort.Ints(vars)
	// Drop negligible coefficients — absolute noise and anything 9 orders
	// below the largest entry (which would otherwise trip the dynamism
	// gate) — with a right-hand-side compensation over the tightest finite
	// range available (root if possible, else the node bounds — which makes
	// the cut local).
	dropTol := cutCoeffDropTol
	for _, v := range vars {
		if a := math.Abs(terms[v]); a*1e-9 > dropTol {
			dropTol = a * 1e-9
		}
	}
	kept := vars[:0]
	for _, v := range vars {
		c := terms[v]
		if math.Abs(c) > dropTol {
			kept = append(kept, v)
			continue
		}
		if c == 0 {
			delete(terms, v)
			continue
		}
		lo, hi := ct.pp.lo[v], ct.pp.hi[v]
		local := false
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			lo, hi = ct.rs.lo[v], ct.rs.hi[v]
			local = true
		}
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			kept = append(kept, v) // unbounded range: must keep the term
			continue
		}
		// For a ≥-row dropping c·x costs at most max(c·lo, c·hi); for ≤
		// at least min(c·lo, c·hi).
		if rel == lp.GE {
			rhs -= math.Max(c*lo, c*hi)
		} else {
			rhs -= math.Min(c*lo, c*hi)
		}
		if local {
			global = false
		}
		delete(terms, v)
	}
	vars = kept
	if len(vars) == 0 {
		return nil, 0
	}
	minAbs, maxAbs := math.Inf(1), 0.0
	for _, v := range vars {
		a := math.Abs(terms[v])
		if a < minAbs {
			minAbs = a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs/minAbs > cutMaxDynamism || math.Abs(rhs) > cutMaxDynamism*maxAbs {
		return nil, 0
	}
	// Normalise to max |coefficient| = 1: keeps appended rows well scaled
	// and makes signatures of rescaled derivations collide as intended.
	if maxAbs != 1 {
		inv := 1 / maxAbs
		for _, v := range vars {
			terms[v] *= inv
		}
		rhs *= inv
	}
	c := &cut{
		kind:   kind,
		coeffs: terms,
		vars:   vars,
		rel:    rel,
		rhs:    rhs,
		global: global,
	}
	var norm2 float64
	for _, v := range vars {
		norm2 += terms[v] * terms[v]
	}
	c.norm = math.Sqrt(norm2)
	viol := c.violation(sol.X)
	if viol < cutViolTol*(1+math.Abs(rhs)) {
		return nil, 0
	}
	eff := viol / c.norm
	if eff < cutEffTol {
		return nil, 0
	}
	c.sig = cutSignature(rel, rhs, vars, terms)
	return c, eff
}

// --- Lifted cover cuts -----------------------------------------------------

// separateCovers runs lifted cover separation on the rows the model tagged
// as knapsacks (Problem.CoverRows, remapped through presolve and row
// prepping). A ≥-row is negated to ≤ first; negative coefficients are
// complemented away through root binarity, yielding Σ a'_j x̃_j ≤ b' with
// a' > 0. A greedy minimal cover C (cheapest (1-x̃*)/a' first) gives
// Σ_{C} x̃ ≤ |C|-1, extended with coefficient 1 over every variable whose
// weight reaches max_{C} a' — the classic extended cover inequality. The
// derivation uses only the original row and root bounds: always global.
func (ct *cutter) separateCovers(sol *lp.Solution, add func(*cut, float64, bool)) {
	for _, ri := range ct.pp.coverRows {
		if c, eff := ct.coverFromRow(ri, sol); c != nil {
			add(c, eff, true)
		}
	}
}

type coverItem struct {
	v    int
	a    float64 // complemented weight a' > 0
	comp bool    // variable entered complemented (x̃ = 1 - x)
	xt   float64 // x̃* at the fractional point
}

func (ct *cutter) coverFromRow(ri int, sol *lp.Solution) (*cut, float64) {
	cons := ct.pp.p.LP.Constraints[ri]
	sign := 1.0
	switch cons.Rel {
	case lp.LE, lp.EQ: // EQ relaxes to its ≤ half
	case lp.GE:
		sign = -1
	}
	b := sign * cons.RHS
	items := make([]coverItem, 0, len(cons.Coeffs))
	for v, a0 := range cons.Coeffs {
		a := sign * a0
		if a == 0 {
			continue
		}
		// Knapsack structure needs root-binary variables.
		if !ct.pp.p.Integer[v] || ct.pp.lo[v] != 0 || ct.pp.hi[v] != 1 {
			return nil, 0
		}
		x := math.Min(1, math.Max(0, sol.X[v]))
		if a > 0 {
			items = append(items, coverItem{v: v, a: a, xt: x})
		} else {
			b -= a // complement: a·x = -(-a)·(1-x) + a
			items = append(items, coverItem{v: v, a: -a, comp: true, xt: 1 - x})
		}
	}
	if len(items) == 0 || b < 0 {
		return nil, 0
	}
	var total float64
	for _, it := range items {
		total += it.a
	}
	if total <= b+1e-9 {
		return nil, 0 // no cover exists
	}
	// Greedy minimal cover: cheapest violation contribution per unit of
	// weight first; deterministic tie-break on the variable index.
	sort.Slice(items, func(i, j int) bool {
		ci := (1 - items[i].xt) / items[i].a
		cj := (1 - items[j].xt) / items[j].a
		if ci != cj {
			return ci < cj
		}
		return items[i].v < items[j].v
	})
	var sum, maxA float64
	cover := 0
	for _, it := range items {
		sum += it.a
		cover++
		if it.a > maxA {
			maxA = it.a
		}
		if sum > b+1e-9 {
			break
		}
	}
	if sum <= b+1e-9 {
		return nil, 0
	}
	// Extended cover: Σ_{C ∪ E} x̃ ≤ |C| - 1 with E = {j ∉ C : a'_j ≥ max_C a'}.
	terms := make(map[int]float64, len(items))
	rhs := float64(cover - 1)
	for i, it := range items {
		if i >= cover && it.a < maxA {
			continue
		}
		if it.comp {
			terms[it.v] -= 1
			rhs -= 1
		} else {
			terms[it.v] += 1
		}
	}
	return ct.finishCut("cover", terms, lp.LE, rhs, true, sol)
}
