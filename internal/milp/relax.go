package milp

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"sring/internal/lp"
	"sring/internal/obs"
)

// prepped is the branch-and-bound's working form of the relaxation: the
// constraint rows with singleton/empty/duplicate rows stripped, plus the
// root variable bounds those rows implied. Variable indices are unchanged,
// so solution vectors, branching and incumbent checks all stay in the
// original space.
type prepped struct {
	p      *Problem  // rows reduced; variables and objective untouched
	lo, hi []float64 // root bounds (lo starts at 0 by the LP convention)
	// coverRows is Problem.CoverRows remapped to the reduced row indices
	// (deduplicated, ascending): the cover-cut separator's targets.
	coverRows []int
}

// prepRelaxation converts the problem into bounded-variable form:
//
//  1. Singleton rows become variable bounds (integer-rounded for integer
//     variables) and are dropped — the bounded simplex enforces bounds for
//     free, so every such row removed shrinks the tableau at every node.
//  2. Empty rows are checked for consistency and dropped.
//  3. Rows with identical coefficients and relation are deduplicated,
//     keeping the tightest right-hand side.
//
// Returns nil when the bounds alone prove infeasibility. The reduction is
// deterministic: rows are scanned in order and survivors keep their order.
func prepRelaxation(p *Problem, rec *obs.Recorder) *prepped {
	n := p.LP.NumVars
	pr := &prepped{
		lo: make([]float64, n),
		hi: make([]float64, n),
	}
	for i := range pr.hi {
		pr.hi[i] = math.Inf(1)
	}
	rows := make([]lp.Constraint, 0, len(p.LP.Constraints))
	var removedRows, boundRows int64
	seen := make(map[string]int) // canonical row key -> index in rows
	// rowMap tracks where each original row ended up (-1: dropped; a
	// duplicate maps to the kept copy) so CoverRows can be remapped.
	rowMap := make([]int, len(p.LP.Constraints))
	for ci, c := range p.LP.Constraints {
		rowMap[ci] = -1
		if len(c.Coeffs) == 0 {
			ok := true
			switch c.Rel {
			case lp.LE:
				ok = 0 <= c.RHS+1e-9
			case lp.GE:
				ok = 0 >= c.RHS-1e-9
			case lp.EQ:
				ok = math.Abs(c.RHS) <= 1e-9
			}
			if !ok {
				return nil
			}
			removedRows++
			continue
		}
		if len(c.Coeffs) == 1 {
			var v int
			var a float64
			for v, a = range c.Coeffs {
			}
			if a == 0 {
				// Degenerate 0*x REL rhs row: same as an empty row.
				ok := true
				switch c.Rel {
				case lp.LE:
					ok = 0 <= c.RHS+1e-9
				case lp.GE:
					ok = 0 >= c.RHS-1e-9
				case lp.EQ:
					ok = math.Abs(c.RHS) <= 1e-9
				}
				if !ok {
					return nil
				}
				removedRows++
				continue
			}
			bound := c.RHS / a
			lower := c.Rel == lp.EQ || (c.Rel == lp.GE && a > 0) || (c.Rel == lp.LE && a < 0)
			upper := c.Rel == lp.EQ || (c.Rel == lp.LE && a > 0) || (c.Rel == lp.GE && a < 0)
			if lower {
				if p.Integer[v] {
					bound = math.Ceil(bound - presolveTol)
				}
				if bound > pr.lo[v] {
					pr.lo[v] = bound
				}
			}
			if upper {
				b := bound
				if p.Integer[v] {
					b = math.Floor(c.RHS/a + presolveTol)
				}
				if b < pr.hi[v] {
					pr.hi[v] = b
				}
			}
			if pr.hi[v] < pr.lo[v]-presolveTol {
				return nil
			}
			removedRows++
			boundRows++
			continue
		}
		key := rowKey(&c)
		if j, dup := seen[key]; dup {
			rowMap[ci] = j
			prev := &rows[j]
			switch c.Rel {
			case lp.LE:
				if c.RHS < prev.RHS {
					prev.RHS = c.RHS
				}
			case lp.GE:
				if c.RHS > prev.RHS {
					prev.RHS = c.RHS
				}
			case lp.EQ:
				if math.Abs(c.RHS-prev.RHS) > 1e-9 {
					return nil
				}
			}
			removedRows++
			continue
		}
		seen[key] = len(rows)
		rowMap[ci] = len(rows)
		rows = append(rows, c)
	}
	if rec != nil {
		rec.Add("milp.presolve.rows_removed", removedRows)
		rec.Add("milp.presolve.bound_rows", boundRows)
	}
	if len(p.CoverRows) > 0 {
		mapped := make(map[int]bool, len(p.CoverRows))
		for _, r := range p.CoverRows {
			if j := rowMap[r]; j >= 0 {
				mapped[j] = true
			}
		}
		pr.coverRows = make([]int, 0, len(mapped))
		for j := range mapped {
			pr.coverRows = append(pr.coverRows, j)
		}
		sort.Ints(pr.coverRows)
	}
	pr.p = &Problem{
		LP: lp.Problem{
			NumVars:     n,
			Objective:   p.LP.Objective,
			Constraints: rows,
		},
		Integer: p.Integer,
	}
	return pr
}

// rowKey canonicalises a constraint's coefficient pattern and relation so
// duplicate rows can be merged.
func rowKey(c *lp.Constraint) string {
	vars := make([]int, 0, len(c.Coeffs))
	for v := range c.Coeffs {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	var b strings.Builder
	b.WriteByte(byte('0' + int(c.Rel)))
	for _, v := range vars {
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(c.Coeffs[v], 'g', -1, 64))
	}
	return b.String()
}

// relaxSolver evaluates node relaxations against a persistent bounded
// simplex. The tableau, basis arrays and the lo/hi scratch below are reused
// across every solve the owner performs, so steady-state node evaluation
// allocates only the Solution it returns.
//
// The solve itself is a pure function of (prepped problem, node, deadline):
// a node carrying a parent basis is re-solved by canonical refactorisation +
// dual simplex, and the refactorisation depends only on the basis *set*, not
// on which worker's tableau last held it. That keeps the speculative
// parallel search bit-identical to the sequential one (see prefetcher).
type relaxSolver struct {
	pp     *prepped
	s      *lp.Solver
	lo, hi []float64 // per-solve scratch bounds
	// cuts is the cut list currently installed as appended rows past the
	// prepped constraints. Node cut lists are immutable and shared between
	// siblings, so the pointer comparison in configure makes consecutive
	// same-subtree solves (sibling affinity on the steal pool) skip the
	// row rebuild entirely.
	cuts []*cut
}

// newRelaxSolver builds a solver arena for pp. interrupt, when non-nil
// (typically a context's Done channel), is polled inside the LP pivot
// loops so a cancellation stops even a single long relaxation promptly.
// reg receives the solver's lp.* kernel histograms (nil: obs.Default()).
func newRelaxSolver(pp *prepped, interrupt <-chan struct{}, reg *obs.Registry) (*relaxSolver, error) {
	s, err := lp.NewSolver(&pp.p.LP)
	if err != nil {
		return nil, err
	}
	s.SetInterrupt(interrupt)
	s.SetRegistry(reg)
	return &relaxSolver{
		pp: pp,
		s:  s,
		lo: make([]float64, len(pp.lo)),
		hi: make([]float64, len(pp.hi)),
	}, nil
}

// configure installs a node's cut rows: the solver is truncated back to
// the prepped constraints and the cut list appended. A no-op when the list
// is already installed (node cut lists are immutable, so an element-wise
// pointer comparison is exact).
func (rs *relaxSolver) configure(cuts []*cut) error {
	if cutListEq(rs.cuts, cuts) {
		return nil
	}
	if err := rs.s.TruncateRows(rs.s.BaseRows()); err != nil {
		return err
	}
	if len(cuts) > 0 {
		rows := make([]lp.Constraint, len(cuts))
		for i, c := range cuts {
			rows[i] = c.row()
		}
		if err := rs.s.AppendRows(rows); err != nil {
			return err
		}
	}
	rs.cuts = cuts
	return nil
}

// solve evaluates the node's LP relaxation. When the node carries a parent
// basis the dual simplex re-solves it warm (bound tightenings keep the
// parent's optimal basis dual-feasible), falling back to a cold solve if the
// basis cannot be refactorised against the new bounds; the fallback is
// marked on the Solution for telemetry. The returned basis is the optimal
// basis for warm-starting the node's children, nil unless Status==Optimal.
//
// The node's cut rows are installed first: nd.basis was taken from an LP
// with exactly nd.cuts appended, so the warm start remains shape-exact.
// The rebuild-and-refactorise on a cut-list switch is the same order of
// work as the periodic refactorisation a solve performs anyway.
func (rs *relaxSolver) solve(nd *node, deadline time.Time) (*lp.Solution, *lp.Basis, error) {
	if err := rs.configure(nd.cuts); err != nil {
		return nil, nil, err
	}
	rs.setBounds(nd)
	var sol *lp.Solution
	var err error
	fellBack := false
	if nd.basis != nil {
		var ok bool
		sol, ok, err = rs.s.SolveDual(nd.basis, rs.lo, rs.hi, deadline)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			sol, fellBack = nil, true
		}
	}
	if sol == nil {
		sol, err = rs.s.SolveBounded(rs.lo, rs.hi, deadline)
		if err != nil {
			return nil, nil, err
		}
		sol.WarmFallback = fellBack
	}
	var bas *lp.Basis
	if sol.Status == lp.Optimal {
		bas = rs.s.Basis()
	}
	return sol, bas, nil
}

// setBounds loads the node's variable bounds (root bounds tightened by the
// node's branching history) into the solver's working arrays.
func (rs *relaxSolver) setBounds(nd *node) {
	copy(rs.lo, rs.pp.lo)
	copy(rs.hi, rs.pp.hi)
	for v, l := range nd.lower {
		if l > rs.lo[v] {
			rs.lo[v] = l
		}
	}
	for v, h := range nd.upper {
		if h < rs.hi[v] {
			rs.hi[v] = h
		}
	}
}

// diveHeuristic is the root primal heuristic: starting from the root
// relaxation it repeatedly rounds the most fractional integer variable to
// its nearest integer, pins it with a bound, and re-solves warm. A dive
// either reaches an integral, feasible point — returned with its objective —
// or dies on an infeasible/fractional dead end. It runs on the main
// goroutine only and is fully deterministic, so sequential and parallel
// searches see the same incumbent seed.
func diveHeuristic(pp *prepped, rs *relaxSolver, prio []int, root *lp.Solution, rootBasis *lp.Basis, cuts []*cut, deadline time.Time, rec *obs.Recorder) ([]float64, float64, bool) {
	if rec != nil {
		rec.Add("milp.heuristic.dives", 1)
	}
	p := pp.p
	nd := &node{
		lower: map[int]float64{},
		upper: map[int]float64{},
		basis: rootBasis,
		cuts:  cuts, // the dive warm-starts from the post-cut root basis
	}
	sol := root
	for depth := 0; depth < 4*p.LP.NumVars+8; depth++ {
		frac := mostFractional(p, prio, sol.X)
		if frac < 0 {
			x := append([]float64(nil), sol.X...)
			var obj float64
			for i, isInt := range p.Integer {
				if isInt {
					x[i] = math.Round(x[i])
				}
				if p.LP.Objective != nil {
					obj += p.LP.Objective[i] * x[i]
				}
			}
			// Re-verify against the *original* rows: rounding within intTol
			// cannot break them beyond the incumbent tolerance, but stay
			// defensive.
			if _, err := checkIncumbent(p, x); err != nil {
				return nil, 0, false
			}
			if rec != nil {
				rec.Add("milp.heuristic.found", 1)
			}
			return x, obj, true
		}
		v := sol.X[frac]
		r := math.Round(v)
		nd.lower[frac] = r
		nd.upper[frac] = r
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, 0, false
		}
		next, bas, err := rs.solve(nd, deadline)
		if err != nil || next.Status != lp.Optimal {
			return nil, 0, false
		}
		if rec != nil {
			lp.AccumulateStats(rec, next)
		}
		sol, nd.basis = next, bas
	}
	return nil, 0, false
}
