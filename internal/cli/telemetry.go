// Package cli holds the small helpers shared by the repository's command
// binaries: wiring the opt-in -telemetry endpoint with its post-run hold
// window. It exists so the four commands expose identical observability
// flags without four copies of the start/hold/shutdown choreography.
package cli

import (
	"context"
	"fmt"
	"io"
	"time"

	"sring/internal/obs"
)

// ServeTelemetry starts the live observability endpoint on addr (the
// -telemetry flag value) and returns a shutdown func for the caller to
// defer. The endpoint serves /metrics (Prometheus text), /metrics.json,
// /trace.json, /trace.chrome.json and /debug/pprof/; trace may be nil when
// the command has no Recorder attached.
//
// hold is the -telemetry-hold window: when positive, shutdown keeps the
// endpoint serving for that long (or until ctx is cancelled — ^C) before
// closing, so short-lived runs can still be scraped after their work is
// done. Progress messages go to w (the command's stderr).
func ServeTelemetry(ctx context.Context, w io.Writer, prog, addr string, hold time.Duration, trace func() *obs.Trace) (shutdown func(), err error) {
	ts, err := obs.ServeTelemetry(addr, obs.TelemetryOptions{Trace: trace})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%s: telemetry serving on http://%s/ (/metrics, /debug/pprof/, /trace.json)\n", prog, ts.Addr())
	return func() {
		if hold > 0 {
			fmt.Fprintf(w, "%s: holding telemetry endpoint for %s (^C to stop)\n", prog, hold)
			t := time.NewTimer(hold)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
		if err := ts.Close(); err != nil {
			fmt.Fprintf(w, "%s: telemetry shutdown: %v\n", prog, err)
		}
	}, nil
}
