package cli

// Shared stage-cache flag wiring: the serving and load-generation binaries
// (and any future command that wants a bounded, persistent cache) expose
// identical -cache-* flags and report the same one-line statistics summary.

import (
	"flag"
	"fmt"
	"io"

	"sring/internal/pipeline"
)

// CacheFlags holds the -cache-* flag values.
type CacheFlags struct {
	Bytes  int64
	Shards int
	Dir    string
}

// Register installs the cache flags on fs with the given default byte
// budget (0 = unbounded).
func (f *CacheFlags) Register(fs *flag.FlagSet, defaultBytes int64) {
	fs.Int64Var(&f.Bytes, "cache-bytes", defaultBytes, "stage cache byte budget (0 = unbounded)")
	fs.IntVar(&f.Shards, "cache-shards", 0, "stage cache shard count (0 = default)")
	fs.StringVar(&f.Dir, "cache-dir", "", "persist cache entries to this directory and reload them on boot")
}

// Open builds the cache the flags describe, loading any persisted entries.
func (f *CacheFlags) Open() (*pipeline.Cache, error) {
	return pipeline.NewCacheWithConfig(pipeline.CacheConfig{
		MaxBytes: f.Bytes,
		Shards:   f.Shards,
		Dir:      f.Dir,
	})
}

// FprintCacheStats writes the one-line cache summary the commands print on
// exit. The hit rate is hits/(hits+misses); lookups with caching disabled
// are counted separately (pipeline.cache.disabled) and do not dilute it.
func FprintCacheStats(w io.Writer, prog string, st pipeline.CacheStats) {
	total := st.Hits + st.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(st.Hits) / float64(total)
	}
	fmt.Fprintf(w, "%s: cache %d entries, %d/%d bytes, %d hits / %d misses (%.1f%% hit rate), %d coalesced, %d evictions, %d invalid\n",
		prog, st.Entries, st.Bytes, st.MaxBytes, st.Hits, st.Misses, 100*rate, st.Coalesced, st.Evictions, st.Invalid)
}
