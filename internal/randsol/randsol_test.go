package randsol

import (
	"testing"

	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/ring"
)

func TestGeneratorDeterministic(t *testing.T) {
	app := netlist.MWD()
	tech := loss.Default()
	g1, err := NewGenerator(app, tech, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(app, tech, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, b := g1.Draw(), g2.Draw()
		if a != b {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(&netlist.Application{}, loss.Default(), 1); err == nil {
		t.Error("invalid app accepted")
	}
	bad := loss.Tech{DropDB: -1}
	if _, err := NewGenerator(netlist.MWD(), bad, 1); err == nil {
		t.Error("invalid tech accepted")
	}
}

func TestFeasibleSamplesAreConsistent(t *testing.T) {
	app := netlist.MWD()
	g, err := NewGenerator(app, loss.Default(), 7)
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	for i := 0; i < 5000 && feasible < 50; i++ {
		s := g.Draw()
		if !s.Feasible {
			continue
		}
		feasible++
		if s.NumWavelengths < 1 || s.NumWavelengths > app.M() {
			t.Errorf("NumWavelengths = %d out of range", s.NumWavelengths)
		}
		if s.WorstILdB <= 0 {
			t.Errorf("WorstILdB = %v", s.WorstILdB)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible MWD samples in 5000 draws; paper reports ~7%")
	}
}

// The paper's Fig. 8 narrative: MWD has a few percent feasible samples,
// VOPD under 1%, and denser benchmarks none (at practical sample counts).
func TestFeasibilityRatesShape(t *testing.T) {
	tech := loss.Default()
	mwd, err := Run(netlist.MWD(), tech, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	vopd, err := Run(netlist.VOPD(), tech, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	d26, err := Run(netlist.D26(), tech, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if mwd.Feasible == 0 {
		t.Error("MWD: no feasible random solutions")
	}
	if mwd.FeasibleRate() <= vopd.FeasibleRate() {
		t.Errorf("feasibility should drop with density: MWD %.4f vs VOPD %.4f",
			mwd.FeasibleRate(), vopd.FeasibleRate())
	}
	if d26.Feasible != 0 {
		t.Errorf("D26: %d feasible random solutions, expected none", d26.Feasible)
	}
}

func TestStudyAggregates(t *testing.T) {
	st, err := Run(netlist.MWD(), loss.Default(), 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 1000 {
		t.Errorf("Total = %d", st.Total)
	}
	if len(st.WavelengthCounts) != st.Feasible || len(st.WorstILs) != st.Feasible {
		t.Error("aggregate lengths inconsistent")
	}
	if st.FeasibleRate() < 0 || st.FeasibleRate() > 1 {
		t.Errorf("FeasibleRate = %v", st.FeasibleRate())
	}
	empty := &Study{}
	if empty.FeasibleRate() != 0 {
		t.Error("empty study rate should be 0")
	}
}

func TestReducedWorstIL(t *testing.T) {
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: netlist.MWD().Nodes[0].Pos},
			{ID: 1, Pos: netlist.MWD().Nodes[1].Pos},
			{ID: 2, Pos: netlist.MWD().Nodes[2].Pos},
		},
		Messages: []netlist.Message{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}},
	}
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 1, 2}}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	tech := loss.Default()
	got := ReducedWorstIL(app, tech, []*ring.Ring{r}, paths)
	// Worst path is 0->2 (two hops, passes node 1 with its 1 sender MRR).
	want := tech.PathDB(loss.PathGeometry{LengthMM: paths[0].Length, MRRsPassed: 1})
	if got != want {
		t.Errorf("ReducedWorstIL = %v, want %v", got, want)
	}
}
