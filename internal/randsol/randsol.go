// Package randsol generates random ring-router solutions for the paper's
// solution-quality study (Sec. IV-B, Fig. 8): nodes are clustered randomly,
// the nodes of each cluster are connected sequentially into sub-rings, and
// wavelengths are assigned to signal paths uniformly at random. A solution
// is feasible iff no two signal paths that overlap on a waveguide segment
// share a wavelength.
//
// Comparing 100 000 such samples against SRing's solution shows both how
// rare feasible solutions are (only MWD and VOPD yield any) and how much
// better SRing's wavelength usage and worst-case insertion loss are than
// even the best random feasible solution.
package randsol

import (
	"fmt"
	"math/rand"

	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/ring"
)

// Sample is one random solution.
type Sample struct {
	// Feasible reports whether the random wavelength assignment is
	// collision-free.
	Feasible bool
	// NumWavelengths is the number of distinct wavelengths used
	// (only meaningful when Feasible).
	NumWavelengths int
	// WorstILdB is the worst-case insertion loss excluding PDN losses
	// (il_w), computed with the reduced loss model of ReducedWorstIL.
	WorstILdB float64
}

// Generator draws random solutions for one application.
type Generator struct {
	app  *netlist.Application
	tech loss.Tech
	rng  *rand.Rand
}

// NewGenerator returns a deterministic generator for the application.
func NewGenerator(app *netlist.Application, tech loss.Tech, seed int64) (*Generator, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("randsol: %w", err)
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	return &Generator{app: app, tech: tech, rng: rand.New(rand.NewSource(seed))}, nil
}

// Draw generates the next random solution (paper footnote f): random
// clustering, sequential sub-ring connection, random wavelength assignment
// from a palette of |messages| wavelengths.
func (g *Generator) Draw() Sample {
	app := g.app
	active := app.ActiveNodes()
	n := len(active)

	// Random clustering: each active node picks one of k random clusters.
	k := 1 + g.rng.Intn(n)
	clusterOf := make(map[netlist.NodeID]int, n)
	memberLists := make([][]netlist.NodeID, k)
	for _, id := range active {
		c := g.rng.Intn(k)
		clusterOf[id] = c
		memberLists[c] = append(memberLists[c], id)
	}

	// Sequential sub-rings: cluster members in random order.
	rings := make([]*ring.Ring, 0, k+1)
	ringOf := make(map[int]*ring.Ring, k)
	id := 0
	for c, members := range memberLists {
		if len(members) < 2 {
			continue
		}
		order := append([]netlist.NodeID(nil), members...)
		g.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		r := &ring.Ring{ID: id, Kind: ring.Intra, Order: order}
		rings = append(rings, r)
		ringOf[c] = r
		id++
	}
	// Inter ring over all nodes with cross-cluster traffic (or traffic in a
	// ring-less cluster), in random order.
	interSet := make(map[netlist.NodeID]bool)
	for _, m := range app.Messages {
		if clusterOf[m.Src] != clusterOf[m.Dst] || ringOf[clusterOf[m.Src]] == nil {
			interSet[m.Src] = true
			interSet[m.Dst] = true
		}
	}
	var interRing *ring.Ring
	if len(interSet) >= 2 {
		order := make([]netlist.NodeID, 0, len(interSet))
		for _, nid := range active { // deterministic base order before shuffle
			if interSet[nid] {
				order = append(order, nid)
			}
		}
		g.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		interRing = &ring.Ring{ID: id, Kind: ring.Inter, Order: order}
		rings = append(rings, interRing)
	}

	// Route each message; if any message cannot be carried (e.g. needs an
	// inter ring that could not be formed) the sample is infeasible.
	paths := make([]ring.Path, 0, len(app.Messages))
	for _, m := range app.Messages {
		var r *ring.Ring
		if clusterOf[m.Src] == clusterOf[m.Dst] && ringOf[clusterOf[m.Src]] != nil {
			r = ringOf[clusterOf[m.Src]]
		} else {
			r = interRing
		}
		if r == nil || !r.Contains(m.Src) || !r.Contains(m.Dst) {
			return Sample{}
		}
		p, err := ring.Route(app, r, m)
		if err != nil {
			return Sample{}
		}
		paths = append(paths, p)
	}

	// Random wavelength assignment from a palette of |S| wavelengths.
	palette := len(app.Messages)
	lambda := make([]int, len(paths))
	for i := range lambda {
		lambda[i] = g.rng.Intn(palette)
	}

	// Feasibility: overlapping paths on the same ring must differ.
	occupied := make(map[[3]int]bool) // (ringID, segment, lambda)
	for i, p := range paths {
		for _, s := range p.Segs {
			key := [3]int{p.RingID, s, lambda[i]}
			if occupied[key] {
				return Sample{}
			}
			occupied[key] = true
		}
	}

	used := make(map[int]bool)
	for _, l := range lambda {
		used[l] = true
	}
	return Sample{
		Feasible:       true,
		NumWavelengths: len(used),
		WorstILdB:      ReducedWorstIL(g.app, g.tech, rings, paths),
	}
}

// ReducedWorstIL computes il_w with the reduced loss model used for the
// 100 000-sample study: fixed sender/receiver losses, propagation over the
// path length, and through loss over the MRRs passed — omitting the layout
// bend/crossing terms, which are negligible at these scales and identical
// in character across solutions. Use the same function on SRing's rings
// and paths when placing its marker in the histogram, so the comparison is
// like-for-like.
func ReducedWorstIL(app *netlist.Application, tech loss.Tech, rings []*ring.Ring, paths []ring.Path) float64 {
	mrrs := make(map[[2]int]int)
	for _, p := range paths {
		mrrs[[2]int{int(p.Msg.Src), p.RingID}]++
		mrrs[[2]int{int(p.Msg.Dst), p.RingID}]++
	}
	ringByID := make(map[int]*ring.Ring, len(rings))
	for _, r := range rings {
		ringByID[r.ID] = r
	}
	var worst float64
	for _, p := range paths {
		passed := 0
		if r := ringByID[p.RingID]; r != nil {
			for k := 1; k < len(p.Segs); k++ {
				node := r.Order[p.Segs[k]] // entry node of the k-th segment
				passed += mrrs[[2]int{int(node), p.RingID}]
			}
		}
		il := tech.PathDB(loss.PathGeometry{LengthMM: p.Length, MRRsPassed: passed})
		if il > worst {
			worst = il
		}
	}
	return worst
}

// Study is an aggregate over many samples.
type Study struct {
	Total    int
	Feasible int
	// WavelengthCounts and WorstILs hold the per-feasible-sample values.
	WavelengthCounts []int
	WorstILs         []float64
}

// Run draws total samples and aggregates the feasible ones.
func Run(app *netlist.Application, tech loss.Tech, seed int64, total int) (*Study, error) {
	g, err := NewGenerator(app, tech, seed)
	if err != nil {
		return nil, err
	}
	st := &Study{Total: total}
	for i := 0; i < total; i++ {
		s := g.Draw()
		if !s.Feasible {
			continue
		}
		st.Feasible++
		st.WavelengthCounts = append(st.WavelengthCounts, s.NumWavelengths)
		st.WorstILs = append(st.WorstILs, s.WorstILdB)
	}
	return st, nil
}

// FeasibleRate returns the fraction of feasible samples.
func (s *Study) FeasibleRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Feasible) / float64(s.Total)
}
