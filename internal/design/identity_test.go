package design_test

import (
	"context"
	"math"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/netlist"
	_ "sring/internal/ornoc"
	"sring/internal/pipeline"
)

// The paper's Table I identity: il_w_all equals il_w plus the PDN losses of
// the worst wavelength's worst path — splitter stages (L_sp each) plus feed
// propagation. This test verifies the decomposition path by path on real
// designs.
func TestILAllDecomposition(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		d, err := pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := d.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		// Recompute il_w_all by hand.
		var want float64
		for _, pi := range d.Infos {
			feed, err := d.PDN.FeedLossDB(pi.SenderNode(), d.Tech)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := d.PDN.SplittersOnFeed(pi.SenderNode())
			if err != nil {
				t.Fatal(err)
			}
			// Feed loss decomposes into stages + propagation.
			prop := d.PDN.FeedLengthMM[pi.SenderNode()] * d.Tech.PropagationDBPerMM
			if math.Abs(feed-(float64(sp)*d.Tech.SplitterStageDB()+prop)) > 1e-9 {
				t.Fatalf("%s: feed loss decomposition broken", app.Name)
			}
			want = math.Max(want, pi.LossDB+feed)
		}
		if math.Abs(want-m.WorstILAlldB) > 1e-9 {
			t.Errorf("%s: il_w_all = %v, decomposed %v", app.Name, m.WorstILAlldB, want)
		}
		// And il_w_all >= il_w + minimum PDN stages.
		if m.WorstILAlldB < m.WorstILdB {
			t.Errorf("%s: il_w_all below il_w", app.Name)
		}
	}
}

// Laser power must be reproducible from the per-wavelength losses alone,
// and monotone: removing the worst wavelength strictly decreases it.
func TestPowerAggregationConsistency(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.VOPD(), "ORNoC", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, il := range m.PerLambdaWorstILdB {
		sum += d.Tech.LaserPowerMW(il)
	}
	if math.Abs(sum-m.TotalLaserPowerMW) > 1e-12 {
		t.Errorf("power %v != per-λ sum %v", m.TotalLaserPowerMW, sum)
	}
	if len(m.PerLambdaWorstILdB) > 1 {
		partial := d.Tech.TotalLaserPowerMW(m.PerLambdaWorstILdB[1:])
		if partial >= m.TotalLaserPowerMW {
			t.Error("dropping a wavelength did not reduce power")
		}
	}
}

// Metrics must be stable: calling Metrics twice returns identical values
// (no internal mutation).
func TestMetricsIdempotent(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.MWD(), "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLaserPowerMW != b.TotalLaserPowerMW || a.WorstILAlldB != b.WorstILAlldB ||
		a.MaxSplitters != b.MaxSplitters {
		t.Error("Metrics not idempotent")
	}
}
