// Package design assembles and evaluates complete WRONoC ring-router
// designs. All four synthesis methods in this repository (SRing, ORNoC,
// CTORing, XRing) produce the same raw material — a set of directed ring
// waveguides plus one reserved signal path per message — and share this
// package's pipeline for everything downstream: physical layout, insertion
// loss accounting, wavelength assignment, PDN construction, and the Table I
// / Fig. 7 metrics.
//
// Sharing the downstream pipeline is what makes the comparison fair, and
// mirrors the paper's setup ("we implemented the three methods ... and
// applied the technology parameters from [22]").
package design

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sring/internal/layout"
	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/obs"
	"sring/internal/pdn"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// Design is a fully synthesised router.
type Design struct {
	App    *netlist.Application
	Method string
	// Levels is the construction's hierarchy depth: 0 for flat methods,
	// 1 for an all-intra SRing clustering, 2 for the paper's two-level
	// shape, more when the multi-level constructor recursed.
	Levels int
	Rings  []*ring.Ring
	// Infos holds one entry per message, aligned with App.Messages, with
	// the routed path and its layout insertion loss L_s.
	Infos      []wavelength.PathInfo
	Assignment *wavelength.Assignment
	Layout     *layout.Result
	PDN        *pdn.Network
	Tech       loss.Tech
	// AssignStats reports how the wavelength assignment was obtained.
	AssignStats *wavelength.Stats
	// SynthesisTime is the wall-clock time of the full synthesis, set by
	// the method front-ends (Table II).
	SynthesisTime time.Duration
	// Cancelled reports that synthesis was interrupted by context
	// cancellation and this design is the best feasible result found so
	// far (a best-so-far clustering, a MILP incumbent) rather than the
	// fully converged one. The design is still complete and valid.
	Cancelled bool
}

// LayoutResult aliases the layout engine's result for the staged pipeline's
// signatures, so pipeline code can name it without importing the layout
// package directly.
type LayoutResult = layout.Result

// Options configures Finish.
type Options struct {
	// Tech is the technology parameter set; the zero value means
	// loss.Default().
	Tech loss.Tech
	// PDN selects the PDN construction convention for the method.
	PDN pdn.Config
	// PDNAllTwoSender treats every sender node as having the full
	// two-sender complement, the ORNoC/CTORing convention of equipping
	// each node with a sender per ring waveguide (paper Sec. II-C),
	// regardless of which rings its messages actually use.
	PDNAllTwoSender bool
	// MRRFullComplement applies the same convention to MRR populations:
	// every node carries its complete sender and receiver MRR arrays on
	// every ring waveguide, so a signal passing a node runs the full
	// gauntlet. SRing and XRing prune unused senders/receivers; ORNoC and
	// CTORing do not (paper Sec. II-C).
	MRRFullComplement bool
	// Assign configures the wavelength assignment.
	Assign wavelength.Options
	// PresetAssignment, when non-nil, is used verbatim (after collision
	// verification) instead of running the optimiser — for methods like
	// ORNoC whose wavelength assignment is part of the method itself.
	PresetAssignment *wavelength.Assignment
	// Obs, when non-nil, is the parent span under which Finish records its
	// stage spans (layout, loss pricing, wavelength assignment, PDN).
	Obs *obs.Span
}

// Finish completes a design: it lays out the rings, prices every path's
// insertion loss, assigns wavelengths, and builds the PDN. It is the
// single-call composition of the exported stage functions (RouteLayout,
// PriceLoss, UsePreset, BuildPDN) that the staged pipeline engine runs —
// and caches — individually.
//
// paths must contain exactly one entry per message of app, in message
// order, each produced by ring.Route on one of the given rings.
func Finish(app *netlist.Application, method string, rings []*ring.Ring, paths []ring.Path, opt Options) (*Design, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	if len(paths) != len(app.Messages) {
		return nil, fmt.Errorf("design: %d paths for %d messages", len(paths), len(app.Messages))
	}
	ringByID := make(map[int]*ring.Ring, len(rings))
	for _, r := range rings {
		ringByID[r.ID] = r
	}
	for i, p := range paths {
		if p.Msg != app.Messages[i] {
			return nil, fmt.Errorf("design: path %d carries message %v, want %v", i, p.Msg, app.Messages[i])
		}
		if _, ok := ringByID[p.RingID]; !ok {
			return nil, fmt.Errorf("design: path %d rides unknown ring %d", i, p.RingID)
		}
	}
	tech, err := loss.Normalize(opt.Tech)
	if err != nil {
		return nil, err
	}

	lay, err := RouteLayout(app, rings, opt.Obs)
	if err != nil {
		return nil, err
	}
	infos, err := PriceLoss(app, rings, paths, lay, tech, opt.MRRFullComplement, opt.Obs)
	if err != nil {
		return nil, err
	}

	var assignment *wavelength.Assignment
	var stats *wavelength.Stats
	if opt.PresetAssignment != nil {
		assignment, stats, err = UsePreset(infos, opt.PresetAssignment, opt.Obs)
		if err != nil {
			return nil, err
		}
	} else {
		assignOpts := opt.Assign
		if assignOpts.Weights == (wavelength.Weights{}) {
			assignOpts.Weights = wavelength.DefaultWeights()
			assignOpts.Weights.SplitterStageDB = tech.SplitterStageDB()
		}
		assignOpts.Obs = opt.Obs
		assignment, stats, err = wavelength.Assign(infos, assignOpts)
		if err != nil {
			return nil, err
		}
	}

	network, err := BuildPDN(app, infos, assignment, opt.PDN, opt.PDNAllTwoSender, opt.Obs)
	if err != nil {
		return nil, err
	}

	return &Design{
		App:         app,
		Method:      method,
		Rings:       rings,
		Infos:       infos,
		Assignment:  assignment,
		Layout:      lay,
		PDN:         network,
		Tech:        tech,
		AssignStats: stats,
		Cancelled:   stats != nil && stats.Cancelled,
	}, nil
}

// RouteLayout runs the physical layout stage: it routes every ring
// waveguide and counts bends and crossings, recording the design.layout
// span under parent.
func RouteLayout(app *netlist.Application, rings []*ring.Ring, parent *obs.Span) (*layout.Result, error) {
	lsp := parent.StartSpan("design.layout")
	lay, err := layout.Route(app, rings)
	if err != nil {
		lsp.End()
		return nil, err
	}
	lsp.SetInt("rings", int64(len(rings)))
	lsp.SetInt("crossings", int64(lay.TotalCrossings))
	lsp.SetInt("bends", int64(lay.TotalBends))
	lsp.SetFloat("waveguide_mm", lay.TotalWaveguideMM)
	lsp.End()
	return lay, nil
}

// PriceLoss runs the loss-pricing stage: it derives each path's insertion
// loss L_s from the layout under the given technology, recording the
// design.loss span under parent. mrrFullComplement selects the ORNoC/
// CTORing convention of populating every node's complete MRR arrays on
// every ring (see Options.MRRFullComplement).
func PriceLoss(app *netlist.Application, rings []*ring.Ring, paths []ring.Path, lay *layout.Result, tech loss.Tech, mrrFullComplement bool, parent *obs.Span) ([]wavelength.PathInfo, error) {
	ringByID := make(map[int]*ring.Ring, len(rings))
	for _, r := range rings {
		ringByID[r.ID] = r
	}
	// Off-resonance MRR population per (node, ring): one MRR per message
	// sent plus one per message received by the node on that ring (the
	// assignment-independent upper bound used for through-loss). Under the
	// full-complement convention the node carries its complete arrays on
	// every ring instead.
	mrrs := make(map[[2]int]int)
	if mrrFullComplement {
		total := make(map[int]int)
		for _, p := range paths {
			total[int(p.Msg.Src)]++
			total[int(p.Msg.Dst)]++
		}
		for _, r := range rings {
			for _, n := range r.Order {
				mrrs[[2]int{int(n), r.ID}] = total[int(n)]
			}
		}
	} else {
		for _, p := range paths {
			mrrs[[2]int{int(p.Msg.Src), p.RingID}]++
			mrrs[[2]int{int(p.Msg.Dst), p.RingID}]++
		}
	}

	losssp := parent.StartSpan("design.loss")
	infos := make([]wavelength.PathInfo, len(paths))
	for i, p := range paths {
		r := ringByID[p.RingID]
		bends, err := lay.PathBends(p)
		if err != nil {
			losssp.End()
			return nil, err
		}
		crossings, err := lay.PathCrossings(p)
		if err != nil {
			losssp.End()
			return nil, err
		}
		passed := 0
		for k := 1; k < len(p.Segs); k++ {
			node := r.Order[p.Segs[k]] // entry node of the k-th segment
			passed += mrrs[[2]int{int(node), p.RingID}]
		}
		g := loss.PathGeometry{
			LengthMM:   p.Length,
			Bends:      bends,
			Crossings:  crossings,
			MRRsPassed: passed,
		}
		infos[i] = wavelength.PathInfo{Path: p, LossDB: tech.PathDB(g)}
	}
	worst := 0.0
	for _, pi := range infos {
		if pi.LossDB > worst {
			worst = pi.LossDB
		}
	}
	losssp.SetInt("paths", int64(len(infos)))
	losssp.SetFloat("worst_il_db", worst)
	losssp.End()
	return infos, nil
}

// UsePreset runs the assignment stage for methods whose wavelength
// assignment is part of the method itself (e.g. ORNoC's first-fit): the
// preset is cloned, normalised, verified collision-free and evaluated.
// The input assignment is not modified.
func UsePreset(infos []wavelength.PathInfo, preset *wavelength.Assignment, parent *obs.Span) (*wavelength.Assignment, *wavelength.Stats, error) {
	assignment := preset.Clone()
	assignment.Normalize()
	if err := wavelength.Verify(infos, assignment); err != nil {
		return nil, nil, fmt.Errorf("design: preset assignment: %w", err)
	}
	o := wavelength.Evaluate(infos, assignment, wavelength.DefaultWeights())
	stats := &wavelength.Stats{Heuristic: o, Final: o}
	if sp := parent.StartSpan("wavelength.assign"); sp.Enabled() {
		sp.SetBool("preset", true)
		sp.SetInt("paths", int64(len(infos)))
		sp.SetInt("wavelengths", int64(assignment.NumLambda))
		sp.SetFloat("final_objective", o.Value)
		sp.End()
	}
	return assignment, stats, nil
}

// BuildPDN runs the PDN stage: it derives the sender and splitter demand
// implied by the assignment and builds the power-distribution network,
// recording the design.pdn span under parent. allTwoSender applies the
// ORNoC/CTORing full two-sender convention (see Options.PDNAllTwoSender).
func BuildPDN(app *netlist.Application, infos []wavelength.PathInfo, assignment *wavelength.Assignment, cfg pdn.Config, allTwoSender bool, parent *obs.Span) (*pdn.Network, error) {
	senderNodes := app.Senders()
	twoSender := make(map[netlist.NodeID]bool)
	ringsPerNode := make(map[netlist.NodeID]map[int]bool)
	for _, pi := range infos {
		n := pi.SenderNode()
		if ringsPerNode[n] == nil {
			ringsPerNode[n] = make(map[int]bool)
		}
		ringsPerNode[n][pi.SenderRing()] = true
	}
	for n, rs := range ringsPerNode {
		if len(rs) >= 2 {
			twoSender[n] = true
		}
	}
	if allTwoSender {
		for _, n := range senderNodes {
			twoSender[n] = true
		}
	}
	psp := parent.StartSpan("design.pdn")
	splitters := wavelength.NodeSplitters(infos, assignment)
	network, err := pdn.Build(app, senderNodes, twoSender, splitters, cfg)
	if err != nil {
		psp.End()
		return nil, err
	}
	psp.SetInt("senders", int64(len(senderNodes)))
	psp.SetInt("two_sender", int64(len(twoSender)))
	psp.SetInt("total_splitters", int64(network.TotalSplitters))
	psp.End()
	return network, nil
}

// Metrics are the evaluation results the paper reports per design:
// Table I columns, Fig. 7 values, and supporting detail.
type Metrics struct {
	// LongestPathMM is L: the length of the longest signal path.
	LongestPathMM float64
	// WorstILdB is il_w: worst-case insertion loss excluding PDN losses.
	WorstILdB float64
	// MaxSplitters is #sp_w: the largest number of splitters passed by any
	// signal path's laser power.
	MaxSplitters int
	// WorstILAlldB is il_w_all: the worst-case insertion loss of a
	// wavelength including PDN losses.
	WorstILAlldB float64
	// NumWavelengths is #wl.
	NumWavelengths int
	// TotalLaserPowerMW is the Fig. 7 headline: the sum over used
	// wavelengths of the laser power covering that wavelength's worst-case
	// loss.
	TotalLaserPowerMW float64
	// PerLambdaWorstILdB lists il_λ^max (including PDN) per wavelength.
	PerLambdaWorstILdB []float64
	// NodeSplitters is the number of node-level PDN splitters.
	NodeSplitters int
	// TotalSplitters counts all fabricated 1x2 splitters.
	TotalSplitters int
	// TotalCrossings, TotalBends and TotalWaveguideMM summarise the layout.
	TotalCrossings   int
	TotalBends       int
	TotalWaveguideMM float64
	// NumRings is the number of ring waveguides.
	NumRings int
	// SenderMRRs and ReceiverMRRs count the microring resonators the
	// design fabricates: one sender MRR per distinct wavelength a node
	// modulates onto a ring, one receiver MRR per distinct wavelength it
	// drops from a ring. A device-cost metric alongside the power metrics.
	SenderMRRs   int
	ReceiverMRRs int
}

// Metrics evaluates the design.
func (d *Design) Metrics() (*Metrics, error) {
	m := &Metrics{
		NumWavelengths:   d.Assignment.NumLambda,
		NodeSplitters:    len(d.PDN.NodeSplitter),
		TotalSplitters:   d.PDN.TotalSplitters,
		TotalCrossings:   d.Layout.TotalCrossings,
		TotalBends:       d.Layout.TotalBends,
		TotalWaveguideMM: d.Layout.TotalWaveguideMM,
		NumRings:         len(d.Rings),
	}
	perLambda := make([]float64, d.Assignment.NumLambda)
	for i, pi := range d.Infos {
		if pi.Path.Length > m.LongestPathMM {
			m.LongestPathMM = pi.Path.Length
		}
		if pi.LossDB > m.WorstILdB {
			m.WorstILdB = pi.LossDB
		}
		sp, err := d.PDN.SplittersOnFeed(pi.SenderNode())
		if err != nil {
			return nil, err
		}
		if sp > m.MaxSplitters {
			m.MaxSplitters = sp
		}
		feed, err := d.PDN.FeedLossDB(pi.SenderNode(), d.Tech)
		if err != nil {
			return nil, err
		}
		all := pi.LossDB + feed
		l := d.Assignment.Lambda[i]
		if all > perLambda[l] {
			perLambda[l] = all
		}
		if all > m.WorstILAlldB {
			m.WorstILAlldB = all
		}
	}
	m.PerLambdaWorstILdB = perLambda
	m.TotalLaserPowerMW = d.Tech.TotalLaserPowerMW(perLambda)

	// Device counts: distinct (node, ring, λ) triples on each side.
	senders := make(map[[3]int]bool)
	receivers := make(map[[3]int]bool)
	for i, pi := range d.Infos {
		l := d.Assignment.Lambda[i]
		senders[[3]int{int(pi.Path.Msg.Src), pi.Path.RingID, l}] = true
		receivers[[3]int{int(pi.Path.Msg.Dst), pi.Path.RingID, l}] = true
	}
	m.SenderMRRs = len(senders)
	m.ReceiverMRRs = len(receivers)
	return m, nil
}

// Validate re-checks the design's internal consistency: paths re-derivable
// from their rings, collision-free assignment, and PDN coverage.
func (d *Design) Validate() error {
	ringByID := make(map[int]*ring.Ring, len(d.Rings))
	for _, r := range d.Rings {
		if err := r.Validate(); err != nil {
			return err
		}
		ringByID[r.ID] = r
	}
	for i, pi := range d.Infos {
		r, ok := ringByID[pi.Path.RingID]
		if !ok {
			return fmt.Errorf("design: path %d on unknown ring %d", i, pi.Path.RingID)
		}
		want, err := ring.Route(d.App, r, pi.Path.Msg)
		if err != nil {
			return fmt.Errorf("design: path %d: %w", i, err)
		}
		if math.Abs(want.Length-pi.Path.Length) > 1e-9 || len(want.Segs) != len(pi.Path.Segs) {
			return fmt.Errorf("design: path %d inconsistent with ring %d", i, pi.Path.RingID)
		}
	}
	if err := wavelength.Verify(d.Infos, d.Assignment); err != nil {
		return err
	}
	for _, pi := range d.Infos {
		if _, err := d.PDN.SplittersOnFeed(pi.SenderNode()); err != nil {
			return err
		}
	}
	return nil
}

// PathsOnRing returns the indices of messages routed on the given ring,
// sorted.
func (d *Design) PathsOnRing(ringID int) []int {
	var out []int
	for i, pi := range d.Infos {
		if pi.Path.RingID == ringID {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
