package design_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/design"
	"sring/internal/netlist"
	"sring/internal/pipeline"
)

func TestEncodeJSON(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.MWD(), "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := design.EncodeJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out["application"] != "MWD" || out["method"] != "CTORing" {
		t.Errorf("header fields wrong: %v %v", out["application"], out["method"])
	}
	rings, ok := out["rings"].([]interface{})
	if !ok || len(rings) != 2 {
		t.Errorf("rings = %v", out["rings"])
	}
	paths, ok := out["paths"].([]interface{})
	if !ok || len(paths) != 13 {
		t.Errorf("paths count = %d, want 13", len(paths))
	}
	if _, ok := out["metrics"].(map[string]interface{}); !ok {
		t.Error("metrics missing")
	}
	pdn, ok := out["pdn"].(map[string]interface{})
	if !ok {
		t.Fatal("pdn missing")
	}
	if int(pdn["tree_stages"].(float64)) != 4 {
		t.Errorf("tree_stages = %v, want 4", pdn["tree_stages"])
	}
}

func TestEncodeJSONDeterministic(t *testing.T) {
	d, err := pipeline.Synthesize(context.Background(), netlist.PM24(), "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := design.EncodeJSON(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := design.EncodeJSON(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("EncodeJSON not deterministic")
	}
}
