package design

import (
	"encoding/json"
	"fmt"
	"io"

	"sring/internal/netlist"
)

// jsonDesign is the export schema: everything a downstream tool (layout
// viewer, power budgeting spreadsheet, tape-out flow) needs to consume a
// synthesised router without re-running the synthesis.
type jsonDesign struct {
	Application string       `json:"application"`
	Method      string       `json:"method"`
	Levels      int          `json:"levels,omitempty"`
	Rings       []jsonRing   `json:"rings"`
	Paths       []jsonPath   `json:"paths"`
	Metrics     *Metrics     `json:"metrics"`
	PDN         jsonPDN      `json:"pdn"`
	Nodes       []jsonNodeEx `json:"nodes"`
}

type jsonRing struct {
	ID    int    `json:"id"`
	Kind  string `json:"kind"`
	Level int    `json:"level,omitempty"`
	Order []int  `json:"order"`
}

type jsonPath struct {
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	Ring       int     `json:"ring"`
	Wavelength int     `json:"wavelength"`
	LengthMM   float64 `json:"length_mm"`
	LossDB     float64 `json:"loss_db"`
}

type jsonPDN struct {
	TreeStages     int   `json:"tree_stages"`
	ExtraStages    int   `json:"extra_stages"`
	NodeSplitters  []int `json:"node_splitters"`
	TotalSplitters int   `json:"total_splitters"`
}

type jsonNodeEx struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// EncodeJSON writes the design (structure, assignment, metrics, PDN) as
// JSON.
func EncodeJSON(w io.Writer, d *Design) error {
	met, err := d.Metrics()
	if err != nil {
		return err
	}
	jd := jsonDesign{
		Application: d.App.Name,
		Method:      d.Method,
		Levels:      d.Levels,
		Metrics:     met,
	}
	for _, n := range d.App.Nodes {
		jd.Nodes = append(jd.Nodes, jsonNodeEx{ID: int(n.ID), Name: n.Name, X: n.Pos.X, Y: n.Pos.Y})
	}
	for _, r := range d.Rings {
		jr := jsonRing{ID: r.ID, Kind: r.Kind.String(), Level: r.Level}
		for _, id := range r.Order {
			jr.Order = append(jr.Order, int(id))
		}
		jd.Rings = append(jd.Rings, jr)
	}
	for i, pi := range d.Infos {
		jd.Paths = append(jd.Paths, jsonPath{
			Src:        int(pi.Path.Msg.Src),
			Dst:        int(pi.Path.Msg.Dst),
			Ring:       pi.Path.RingID,
			Wavelength: d.Assignment.Lambda[i],
			LengthMM:   pi.Path.Length,
			LossDB:     pi.LossDB,
		})
	}
	jd.PDN = jsonPDN{
		TreeStages:     d.PDN.TreeStages,
		ExtraStages:    d.PDN.ExtraStages,
		TotalSplitters: d.PDN.TotalSplitters,
	}
	var spNodes []netlist.NodeID
	for n := range d.PDN.NodeSplitter {
		spNodes = append(spNodes, n)
	}
	for i := 0; i < len(spNodes); i++ { // insertion sort keeps output stable
		for j := i; j > 0 && spNodes[j] < spNodes[j-1]; j-- {
			spNodes[j], spNodes[j-1] = spNodes[j-1], spNodes[j]
		}
	}
	for _, n := range spNodes {
		jd.PDN.NodeSplitters = append(jd.PDN.NodeSplitters, int(n))
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jd); err != nil {
		return fmt.Errorf("design: encode: %w", err)
	}
	return nil
}
