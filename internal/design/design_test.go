package design

import (
	"math"
	"strings"
	"testing"

	"sring/internal/geom"
	"sring/internal/loss"
	"sring/internal/netlist"
	"sring/internal/pdn"
	"sring/internal/ring"
)

// squareApp: 4 nodes on a unit square, a directed message cycle.
func squareApp() *netlist.Application {
	return &netlist.Application{
		Name: "square",
		Nodes: []netlist.Node{
			{ID: 0, Name: "a", Pos: geom.Pt(0, 0)},
			{ID: 1, Name: "b", Pos: geom.Pt(1, 0)},
			{ID: 2, Name: "c", Pos: geom.Pt(1, 1)},
			{ID: 3, Name: "d", Pos: geom.Pt(0, 1)},
		},
		Messages: []netlist.Message{
			{Src: 0, Dst: 1, Bandwidth: 8},
			{Src: 1, Dst: 2, Bandwidth: 8},
			{Src: 2, Dst: 3, Bandwidth: 8},
			{Src: 3, Dst: 0, Bandwidth: 8},
		},
	}
}

// buildSquareDesign routes the message cycle on one ring.
func buildSquareDesign(t *testing.T, opt Options) *Design {
	t.Helper()
	app := squareApp()
	r := &ring.Ring{ID: 0, Kind: ring.Base, Order: []netlist.NodeID{0, 1, 2, 3}}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	d, err := Finish(app, "test", []*ring.Ring{r}, paths, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFinishBasic(t *testing.T) {
	d := buildSquareDesign(t, Options{})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// Four single-hop paths, none overlapping: one wavelength suffices.
	if m.NumWavelengths != 1 {
		t.Errorf("NumWavelengths = %d, want 1", m.NumWavelengths)
	}
	if math.Abs(m.LongestPathMM-1) > 1e-9 {
		t.Errorf("LongestPathMM = %v, want 1", m.LongestPathMM)
	}
	// Single-hop paths pass no intermediate nodes: L_s = fixed + propagation.
	tech := loss.Default()
	wantIL := tech.PathDB(loss.PathGeometry{LengthMM: 1})
	if math.Abs(m.WorstILdB-wantIL) > 1e-9 {
		t.Errorf("WorstILdB = %v, want %v", m.WorstILdB, wantIL)
	}
	// 4 sender nodes, single sender each: tree depth 2, no node splitters.
	if m.MaxSplitters != 2 {
		t.Errorf("MaxSplitters = %d, want 2", m.MaxSplitters)
	}
	if m.NodeSplitters != 0 {
		t.Errorf("NodeSplitters = %d, want 0", m.NodeSplitters)
	}
	if m.TotalLaserPowerMW <= 0 {
		t.Error("TotalLaserPowerMW must be positive")
	}
	if m.NumRings != 1 {
		t.Errorf("NumRings = %d", m.NumRings)
	}
}

func TestFinishThroughLossCounted(t *testing.T) {
	// Add a long message passing intermediate nodes: its L_s must exceed
	// the single-hop loss by through-loss and propagation.
	app := squareApp()
	app.Messages = append(app.Messages, netlist.Message{Src: 0, Dst: 3, Bandwidth: 8})
	r := &ring.Ring{ID: 0, Kind: ring.Base, Order: []netlist.NodeID{0, 1, 2, 3}}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	d, err := Finish(app, "test", []*ring.Ring{r}, paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	long := d.Infos[4]
	short := d.Infos[0]
	if long.Path.NodesPassed != 2 {
		t.Fatalf("long path NodesPassed = %d, want 2", long.Path.NodesPassed)
	}
	if long.LossDB <= short.LossDB {
		t.Errorf("long path L_s (%v) should exceed short path L_s (%v)", long.LossDB, short.LossDB)
	}
	// Exactly: 2 extra mm propagation, through loss at nodes 1 and 2, and
	// the two 90-degree junction turns at the square's corners.
	tech := loss.Default()
	// Node 1: sends 1 message on ring 0, receives 1 => 2 MRRs; same node 2.
	wantDelta := 2*tech.PropagationDBPerMM + 4*tech.ThroughDB + 2*tech.BendDB
	if math.Abs((long.LossDB-short.LossDB)-wantDelta) > 1e-9 {
		t.Errorf("L_s delta = %v, want %v", long.LossDB-short.LossDB, wantDelta)
	}
}

func TestFinishErrors(t *testing.T) {
	app := squareApp()
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 1, 2, 3}}
	good := make([]ring.Path, 0, 4)
	for _, m := range app.Messages {
		p, _ := ring.Route(app, r, m)
		good = append(good, p)
	}
	if _, err := Finish(app, "t", []*ring.Ring{r}, good[:3], Options{}); err == nil ||
		!strings.Contains(err.Error(), "paths for") {
		t.Errorf("short path list accepted: %v", err)
	}
	swapped := append([]ring.Path(nil), good...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := Finish(app, "t", []*ring.Ring{r}, swapped, Options{}); err == nil {
		t.Error("misordered paths accepted")
	}
	ghost := append([]ring.Path(nil), good...)
	ghost[0].RingID = 9
	if _, err := Finish(app, "t", []*ring.Ring{r}, ghost, Options{}); err == nil {
		t.Error("path on unknown ring accepted")
	}
	bad := loss.Tech{PropagationDBPerMM: -1}
	if _, err := Finish(app, "t", []*ring.Ring{r}, good, Options{Tech: bad}); err == nil {
		t.Error("invalid tech accepted")
	}
}

func TestPDNAllTwoSenderForcesSplitters(t *testing.T) {
	base := buildSquareDesign(t, Options{})
	forced := buildSquareDesign(t, Options{
		PDN:             pdn.Config{ForceNodeSplitter: true},
		PDNAllTwoSender: true,
	})
	mBase, _ := base.Metrics()
	mForced, _ := forced.Metrics()
	if mForced.MaxSplitters != mBase.MaxSplitters+1 {
		t.Errorf("forced MaxSplitters = %d, want %d", mForced.MaxSplitters, mBase.MaxSplitters+1)
	}
	if mForced.NodeSplitters != 4 {
		t.Errorf("forced NodeSplitters = %d, want 4", mForced.NodeSplitters)
	}
	// The extra 3.3 dB per path shows up in il_w_all but NOT in il_w.
	if math.Abs(mForced.WorstILdB-mBase.WorstILdB) > 1e-9 {
		t.Error("il_w must exclude PDN losses")
	}
	wantDelta := loss.Default().SplitterStageDB()
	if math.Abs((mForced.WorstILAlldB-mBase.WorstILAlldB)-wantDelta) > 1e-9 {
		t.Errorf("il_w_all delta = %v, want %v", mForced.WorstILAlldB-mBase.WorstILAlldB, wantDelta)
	}
	if mForced.TotalLaserPowerMW <= mBase.TotalLaserPowerMW {
		t.Error("forced splitters must cost laser power")
	}
}

func TestMetricsPerLambdaConsistency(t *testing.T) {
	d := buildSquareDesign(t, Options{})
	m, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerLambdaWorstILdB) != m.NumWavelengths {
		t.Fatalf("per-λ list length %d != #wl %d", len(m.PerLambdaWorstILdB), m.NumWavelengths)
	}
	var worst float64
	for _, il := range m.PerLambdaWorstILdB {
		worst = math.Max(worst, il)
	}
	if math.Abs(worst-m.WorstILAlldB) > 1e-9 {
		t.Errorf("max per-λ IL %v != WorstILAll %v", worst, m.WorstILAlldB)
	}
	want := d.Tech.TotalLaserPowerMW(m.PerLambdaWorstILdB)
	if math.Abs(want-m.TotalLaserPowerMW) > 1e-12 {
		t.Errorf("power %v != aggregate %v", m.TotalLaserPowerMW, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildSquareDesign(t, Options{})
	d.Assignment.Lambda[0] = d.Assignment.Lambda[1] // not conflicting here...
	// Corrupt a path's length instead: re-derivation must catch it.
	d.Infos[0].Path.Length += 1
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted corrupted path length")
	}
}

func TestPathsOnRing(t *testing.T) {
	d := buildSquareDesign(t, Options{})
	got := d.PathsOnRing(0)
	if len(got) != 4 {
		t.Errorf("PathsOnRing(0) = %v", got)
	}
	if len(d.PathsOnRing(9)) != 0 {
		t.Error("unknown ring should carry no paths")
	}
}
