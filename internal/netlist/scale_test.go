package netlist

import (
	"reflect"
	"testing"
)

// Every registered scale app must be a valid application with a unique
// name, and the node counts must match what the name advertises.
func TestScaleAppsValid(t *testing.T) {
	apps := Scale()
	if len(apps) != 8 {
		t.Fatalf("Scale() returned %d apps, want 8", len(apps))
	}
	// The PM names follow the paper's 8PM-24 convention: node count,
	// then message count.
	wantN := map[string]int{
		"D64": 64, "D128": 128, "D256": 256, "D512": 512,
		"32PM-96": 32, "32PM-128": 32,
		"circ64-1-9": 64, "circ128-1-11": 128,
	}
	wantM := map[string]int{"32PM-96": 96, "32PM-128": 128}
	seen := make(map[string]bool)
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate scale app name %q", a.Name)
		}
		seen[a.Name] = true
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if n, ok := wantN[a.Name]; ok && a.N() != n {
			t.Errorf("%s: %d nodes, want %d", a.Name, a.N(), n)
		}
		if m, ok := wantM[a.Name]; ok && a.M() != m {
			t.Errorf("%s: %d messages, want %d", a.Name, a.M(), m)
		}
	}
	for name := range wantN {
		if !seen[name] {
			t.Errorf("scale app %q not registered", name)
		}
	}
}

// The scale generators are pure functions of their parameters: calling one
// twice must produce byte-identical applications (the golden-determinism
// contract the stage cache and the CI smoke comparison rely on).
func TestScaleGeneratorsDeterministic(t *testing.T) {
	if !reflect.DeepEqual(Scale(), Scale()) {
		t.Error("Scale() is not reproducible across calls")
	}
	twice := func(name string, gen func() (*Application, error)) {
		a, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s is not reproducible across calls", name)
		}
	}
	twice("ScaledSoC(128)", func() (*Application, error) { return ScaledSoC(128) })
	twice("PMN(32,3,false)", func() (*Application, error) { return PMN(32, 3, false) })
	twice("Circulant(64,1,9)", func() (*Application, error) { return Circulant(64, 1, 9) })
}

// Infeasible generator parameters are reported as errors, never panics —
// these reach the serve daemon's request path.
func TestScaleGeneratorErrors(t *testing.T) {
	if _, err := ScaledSoC(3); err == nil {
		t.Error("ScaledSoC(3) did not fail")
	}
	if _, err := PMN(0, 1, false); err == nil {
		t.Error("PMN(0,1,false) did not fail")
	}
	if _, err := Circulant(8, 0); err == nil {
		t.Error("Circulant(8,0) did not fail")
	}
	if _, err := Circulant(8, 2, 2); err == nil {
		t.Error("Circulant(8,2,2) with a duplicate generator did not fail")
	}
}
