package netlist

import (
	"fmt"

	"sring/internal/geom"
)

// The seven benchmark applications evaluated in the SRing paper (Table I):
// four large-scale low-density multimedia systems (MWD, VOPD, MPEG, D26) and
// three small-scale high-density processor-memory networks (8PM-24/32/44).
//
// MWD, VOPD and MPEG follow the task graphs commonly used in the NoC
// synthesis literature ([17], [19], [29]); D26 is a synthesized 26-node
// multimedia SoC with 68 flows standing in for the SunFloor 3D design [21]
// (not publicly distributed); the 8PM networks are 4-processor/4-memory
// systems at three communication densities. See DESIGN.md §2 for the
// substitution rationale.

// grid places n nodes row-major on a cols-wide grid with the given pitch in
// millimetres, naming them from names (or "n<i>" if names is nil).
func grid(n, cols int, pitch float64, names []string) []Node {
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i+1)
		if names != nil {
			name = names[i]
		}
		nodes[i] = Node{
			ID:   NodeID(i),
			Name: name,
			Pos:  geom.Pt(float64(i%cols)*pitch, float64(i/cols)*pitch),
		}
	}
	return nodes
}

func msgs(list [][3]float64) []Message {
	out := make([]Message, len(list))
	for i, m := range list {
		out[i] = Message{Src: NodeID(m[0]), Dst: NodeID(m[1]), Bandwidth: m[2]}
	}
	return out
}

// MWD returns the 12-node, 13-message multi-window display application
// (paper Fig. 2). Node numbering follows the paper's 1-based figure shifted
// to 0-based IDs: the paper's node 3 (ID 2) sends to exactly one node, and
// the paper's nodes 4 and 11 (IDs 3 and 10) exchange traffic while sitting
// far apart on a sequential ring.
func MWD() *Application {
	return &Application{
		Name:  "MWD",
		Nodes: grid(12, 4, 0.15, nil),
		Messages: msgs([][3]float64{
			{2, 3, 96},  // node 3 -> node 4 (its only message)
			{10, 3, 64}, // node 11 -> node 4
			{3, 10, 64}, // node 4 -> node 11
			{0, 1, 128}, // node 1 -> node 2
			{1, 5, 96},  // node 2 -> node 6
			{5, 4, 96},  // node 6 -> node 5
			{4, 0, 64},  // node 5 -> node 1
			{6, 7, 96},  // node 7 -> node 8
			{7, 11, 96}, // node 8 -> node 12
			{11, 6, 64}, // node 12 -> node 7
			{8, 9, 96},  // node 9 -> node 10
			{9, 8, 64},  // node 10 -> node 9
			{4, 9, 64},  // node 5 -> node 10  (inter-cluster)
		}),
	}
}

// VOPD returns the 16-node, 21-message video object plane decoder.
func VOPD() *Application {
	names := []string{
		"vld", "run_le_dec", "inv_scan", "acdc_pred",
		"stripe_mem", "iquan", "idct", "up_samp",
		"vop_rec", "pad", "vop_mem", "arm",
		"mem_ctrl", "dsp", "risc", "audio",
	}
	return &Application{
		Name:  "VOPD",
		Nodes: grid(16, 4, 0.15, names),
		Messages: msgs([][3]float64{
			{0, 1, 70},   // vld -> run_le_dec
			{1, 2, 362},  // run_le_dec -> inv_scan
			{2, 3, 362},  // inv_scan -> acdc_pred
			{3, 4, 49},   // acdc_pred -> stripe_mem
			{4, 3, 27},   // stripe_mem -> acdc_pred
			{3, 5, 362},  // acdc_pred -> iquan
			{5, 6, 357},  // iquan -> idct
			{6, 7, 353},  // idct -> up_samp
			{7, 8, 300},  // up_samp -> vop_rec
			{8, 9, 313},  // vop_rec -> pad
			{9, 10, 313}, // pad -> vop_mem
			{10, 9, 94},  // vop_mem -> pad
			{11, 6, 16},  // arm -> idct
			{6, 11, 16},  // idct -> arm
			{11, 12, 32}, // arm -> mem_ctrl
			{12, 11, 32}, // mem_ctrl -> arm
			{13, 5, 27},  // dsp -> iquan
			{14, 11, 24}, // risc -> arm
			{11, 14, 24}, // arm -> risc
			{15, 13, 48}, // audio -> dsp
			{13, 15, 48}, // dsp -> audio
		}),
	}
}

// MPEG returns the 12-node, 26-message MPEG4 decoder. The SDRAM node is a
// hub exchanging traffic with every other node, the paper's example of "a
// node needs to talk to almost all other nodes".
func MPEG() *Application {
	names := []string{
		"vu", "au", "med_cpu", "idct", "rast", "sdram",
		"sram1", "sram2", "bab", "risc", "adsp", "up_samp",
	}
	list := [][3]float64{
		{2, 9, 0.5}, {9, 2, 0.5}, // med_cpu <-> risc
		{0, 11, 75}, {11, 0, 75}, // vu <-> up_samp
	}
	bw := []float64{190, 0.5, 60, 600, 40, 910, 32, 670, 173, 500, 910}
	other := []float64{1, 2, 3, 4, 0, 6, 7, 8, 9, 10, 11}
	for i, o := range other {
		// sdram (node 5) exchanges traffic with every other node.
		list = append(list, [3]float64{5, o, bw[i]}, [3]float64{o, 5, bw[i]})
	}
	return &Application{
		Name:     "MPEG",
		Nodes:    grid(12, 4, 0.15, names),
		Messages: msgs(list),
	}
}

// D26 returns the synthesized 26-node, 68-message multimedia SoC standing in
// for the SunFloor 3D media design of [21] (see DESIGN.md §2).
func D26() *Application {
	names := []string{
		"cam", "vfe", "venc", "vdec", "scaler", "disp", "vmem", // video
		"amic", "adsp", "acodec", "amem", "aspk", // audio
		"cpu0", "cpu1", "l2", "dram0", "dram1", // cpu cluster
		"dma", "usb", "eth", "flash", "sd", // dma / io
		"gpu", "gmem", "isp", "sec", // gpu / misc
	}
	return &Application{
		Name:  "D26",
		Nodes: grid(26, 6, 0.2, names),
		Messages: msgs([][3]float64{
			// Video pipeline.
			{0, 1, 400}, {1, 2, 350}, {1, 4, 200}, {4, 5, 250}, {3, 4, 300},
			{2, 6, 320}, {6, 2, 120}, {3, 6, 280}, {6, 3, 280}, {1, 6, 200},
			{6, 5, 220}, {24, 1, 380}, {0, 24, 400}, {24, 6, 260},
			// Audio subsystem.
			{7, 8, 12}, {8, 9, 12}, {9, 11, 12}, {8, 10, 24}, {10, 8, 24},
			{9, 10, 16}, {10, 9, 16},
			// CPU cluster.
			{12, 14, 800}, {14, 12, 800}, {13, 14, 800}, {14, 13, 800},
			{14, 15, 640}, {15, 14, 640}, {14, 16, 640}, {16, 14, 640},
			{12, 13, 96}, {13, 12, 96},
			// DRAM hub traffic.
			{17, 15, 480}, {15, 17, 480}, {17, 16, 480}, {16, 17, 480},
			{6, 15, 360}, {15, 6, 360}, {10, 15, 60}, {23, 16, 420}, {16, 23, 420},
			// DMA / IO.
			{17, 18, 60}, {18, 17, 60}, {17, 19, 120}, {19, 17, 120},
			{17, 20, 40}, {20, 17, 40}, {17, 21, 48}, {21, 17, 48},
			{12, 17, 32}, {17, 12, 32},
			// GPU.
			{22, 23, 720}, {23, 22, 720}, {14, 22, 320}, {22, 14, 320},
			{23, 5, 400}, {22, 16, 380}, {16, 22, 380},
			// Security block.
			{25, 14, 20}, {14, 25, 20}, {25, 20, 16}, {20, 25, 16},
			// Cross-subsystem spill traffic.
			{2, 15, 300}, {15, 3, 300}, {12, 15, 240}, {15, 12, 240},
			{13, 16, 240}, {16, 13, 240}, {19, 15, 96},
		}),
	}
}

// pm8 builds an 8-node processor-memory network: processors P0..P3 on the
// bottom row, memories M0..M3 on the top row of a 4x2 grid.
func pm8(name string, memsPerCPU int, cpuPairs bool) *Application {
	names := []string{"P0", "P1", "P2", "P3", "M0", "M1", "M2", "M3"}
	var list [][3]float64
	for p := 0; p < 4; p++ {
		for k := 0; k < memsPerCPU; k++ {
			m := 4 + (p+k)%4
			list = append(list, [3]float64{float64(p), float64(m), 800})
			list = append(list, [3]float64{float64(m), float64(p), 800})
		}
	}
	if cpuPairs {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				list = append(list, [3]float64{float64(i), float64(j), 200})
				list = append(list, [3]float64{float64(j), float64(i), 200})
			}
		}
	}
	return &Application{
		Name:     name,
		Nodes:    grid(8, 4, 0.1, names),
		Messages: msgs(list),
	}
}

// PM24 returns the 8-node, 24-message processor-memory network (each
// processor exchanges traffic with three of the four memories).
func PM24() *Application { return pm8("8PM-24", 3, false) }

// PM32 returns the 8-node, 32-message processor-memory network (full
// processor-memory bipartite traffic).
func PM32() *Application { return pm8("8PM-32", 4, false) }

// PM44 returns the 8-node, 44-message network (full processor-memory traffic
// plus all-pairs inter-processor traffic).
func PM44() *Application { return pm8("8PM-44", 4, true) }

// Benchmarks returns all seven paper benchmarks in Table I order. The full
// builtin-app registry (paper + extended + scale apps) is Apps in
// registry.go; ByName resolves against that registry.
func Benchmarks() []*Application {
	return []*Application{MWD(), VOPD(), MPEG(), D26(), PM24(), PM32(), PM44()}
}
