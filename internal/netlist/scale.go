package netlist

import (
	"fmt"

	"sring/internal/geom"
)

// Large synthetic applications for stressing the synthesis pipeline past the
// ≤26-node paper benchmarks. Three families:
//
//   - ScaledSoC: hierarchical subsystem traffic in the style of D26, scaled
//     to 64/128/256/512 nodes. Tiles of 16 nodes carry dense local pipeline
//     traffic, tile hubs exchange within quads, quad leaders exchange with a
//     global root — a three-tier traffic hierarchy that exercises the
//     multi-level cluster constructor.
//   - PMN: processor-memory networks generalising 8PM-24/32/44 to arbitrary
//     even node counts, for density sweeps.
//   - Circulant: ring-circulant patterns after Romanov's circulant NoC
//     topologies (PAPERS.md), message i -> (i+s) mod n for each generator s.
//
// All three are pure functions of their parameters — no RNG — so their
// output is byte-identical across runs and platforms.

// scaledTile is the number of nodes per subsystem tile in ScaledSoC.
const scaledTile = 16

// ScaledSoC returns a hierarchical multimedia-SoC-style application with n
// nodes, n a positive multiple of 16. Node IDs are tile-major: tile b holds
// IDs [16b, 16b+16). Within a tile, local ID 0 is the tile hub (memory
// controller); IDs 1..15 form a processing pipeline with hub spill traffic.
// Tiles are grouped in quads whose member hubs talk to the quad leader hub
// (tile 4*(b/4)), and quad leader hubs talk to the global root hub (tile 0) —
// the same subsystem/backbone shape as D26, one level deeper.
func ScaledSoC(n int) (*Application, error) {
	if n < scaledTile || n%scaledTile != 0 {
		return nil, fmt.Errorf("netlist: ScaledSoC needs n a positive multiple of %d, got %d", scaledTile, n)
	}
	tiles := n / scaledTile
	tileCols := 1
	for tileCols*tileCols < tiles {
		tileCols++
	}
	app := &Application{Name: fmt.Sprintf("D%d", n)}
	// Tiles sit on a coarse grid; members on a 4x4 fine grid inside.
	const pitch, tilePitch = 0.15, 0.8
	for b := 0; b < tiles; b++ {
		base := geom.Pt(float64(b%tileCols)*tilePitch, float64(b/tileCols)*tilePitch)
		for i := 0; i < scaledTile; i++ {
			app.Nodes = append(app.Nodes, Node{
				ID:   NodeID(b*scaledTile + i),
				Name: fmt.Sprintf("t%d_n%d", b, i),
				Pos:  base.Add(float64(i%4)*pitch, float64(i/4)*pitch),
			})
		}
	}
	hub := func(b int) NodeID { return NodeID(b * scaledTile) }
	add := func(src, dst NodeID, bw float64) {
		app.Messages = append(app.Messages, Message{Src: src, Dst: dst, Bandwidth: bw})
	}
	for b := 0; b < tiles; b++ {
		o := b * scaledTile
		// Local pipeline through the tile's fifteen workers, bandwidths
		// varied deterministically by position so assignments are not
		// symmetric.
		for i := 1; i < scaledTile-1; i++ {
			add(NodeID(o+i), NodeID(o+i+1), float64(96+((b+i)%5)*32))
		}
		add(NodeID(o+scaledTile-1), NodeID(o+1), 64) // pipeline wrap-around
		// Hub spill traffic: pipeline head and two staging points exchange
		// with the tile hub.
		add(NodeID(o+1), hub(b), 320)
		add(hub(b), NodeID(o+1), 280)
		add(NodeID(o+8), hub(b), 240)
		add(hub(b), NodeID(o+12), 200)
	}
	// Neighbour spill: consecutive tiles stream through their edge nodes,
	// the cross-subsystem spill traffic of D26 scaled out.
	for b := 1; b < tiles; b++ {
		add(NodeID(b*scaledTile+2), NodeID((b-1)*scaledTile+3), 96)
		add(NodeID((b-1)*scaledTile+3), NodeID(b*scaledTile+2), 96)
	}
	// Quad backbone: each non-leader hub exchanges with its quad leader,
	// and each tile's DMA node feeds the leader's staging node.
	for b := 0; b < tiles; b++ {
		leader := 4 * (b / 4)
		if b != leader {
			add(hub(b), hub(leader), 160)
			add(hub(leader), hub(b), 160)
			add(NodeID(b*scaledTile+4), NodeID(leader*scaledTile+12), 80)
		}
	}
	// Root backbone: each quad leader exchanges with the global root hub.
	for q := 1; q < (tiles+3)/4; q++ {
		add(hub(4*q), hub(0), 128)
		add(hub(0), hub(4*q), 128)
	}
	return app, nil
}

// PMN returns an n-node processor-memory network generalising the paper's
// 8PM family: n/2 processors P0..P(n/2-1) followed by n/2 memories, placed
// row-major on a square-ish grid. Each processor exchanges traffic with
// memsPerCPU memories (round-robin offset, both directions); cpuPairs
// additionally adds all-pairs inter-processor traffic. n must be even
// and >= 4.
func PMN(n, memsPerCPU int, cpuPairs bool) (*Application, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("netlist: PMN needs even n >= 4, got %d", n)
	}
	p := n / 2
	if memsPerCPU < 1 || memsPerCPU > p {
		return nil, fmt.Errorf("netlist: PMN with %d memories cannot give each processor %d", p, memsPerCPU)
	}
	m := 2 * p * memsPerCPU
	if cpuPairs {
		m += p * (p - 1)
	}
	names := make([]string, n)
	for i := 0; i < p; i++ {
		names[i] = fmt.Sprintf("P%d", i)
		names[p+i] = fmt.Sprintf("M%d", i)
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	app := &Application{
		Name:  fmt.Sprintf("%dPM-%d", n, m),
		Nodes: grid(n, cols, 0.1, names),
	}
	for pi := 0; pi < p; pi++ {
		for k := 0; k < memsPerCPU; k++ {
			mi := NodeID(p + (pi+k)%p)
			app.Messages = append(app.Messages,
				Message{Src: NodeID(pi), Dst: mi, Bandwidth: 800},
				Message{Src: mi, Dst: NodeID(pi), Bandwidth: 800})
		}
	}
	if cpuPairs {
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				app.Messages = append(app.Messages,
					Message{Src: NodeID(i), Dst: NodeID(j), Bandwidth: 200},
					Message{Src: NodeID(j), Dst: NodeID(i), Bandwidth: 200})
			}
		}
	}
	return app, nil
}

// Circulant returns an n-node ring-circulant application: one message
// i -> (i+s) mod n for every node i and every generator s. Generators must
// be distinct values in [1, n-1]. The name encodes the parameters, e.g.
// Circulant(64, 1, 9) is "circ64-1-9".
func Circulant(n int, gens ...int) (*Application, error) {
	if n < 2 {
		return nil, fmt.Errorf("netlist: Circulant needs n >= 2, got %d", n)
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("netlist: Circulant needs at least one generator")
	}
	seen := make(map[int]bool)
	name := fmt.Sprintf("circ%d", n)
	for _, s := range gens {
		if s < 1 || s >= n {
			return nil, fmt.Errorf("netlist: Circulant generator %d out of range [1, %d]", s, n-1)
		}
		if seen[s] {
			return nil, fmt.Errorf("netlist: duplicate Circulant generator %d", s)
		}
		seen[s] = true
		name += fmt.Sprintf("-%d", s)
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	app := &Application{Name: name, Nodes: grid(n, cols, 0.15, nil)}
	for i := 0; i < n; i++ {
		for _, s := range gens {
			app.Messages = append(app.Messages, Message{
				Src: NodeID(i), Dst: NodeID((i + s) % n), Bandwidth: 64,
			})
		}
	}
	return app, nil
}

// mustApp converts a generator (app, error) pair into a registry builder;
// the registered parameter sets are all statically valid, so an error here
// is a programming bug.
func mustApp(app *Application, err error) *Application {
	if err != nil {
		panic(err)
	}
	return app
}

// Scale returns the registered large synthetic applications: the scaled-SoC
// hierarchy at 64/128/256/512 nodes, two processor-memory density points
// extending the 8PM family, and two Romanov-style circulants.
func Scale() []*Application {
	return []*Application{
		mustApp(ScaledSoC(64)),
		mustApp(ScaledSoC(128)),
		mustApp(ScaledSoC(256)),
		mustApp(ScaledSoC(512)),
		mustApp(PMN(32, 3, false)), // 32PM-96
		mustApp(PMN(32, 4, false)), // 32PM-128
		mustApp(Circulant(64, 1, 9)),
		mustApp(Circulant(128, 1, 11)),
	}
}
