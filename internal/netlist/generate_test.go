package netlist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandomValid(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{2, 1}, {5, 8}, {12, 13}, {20, 60}} {
		app, err := Random(tc.n, tc.m, 1)
		if err != nil {
			t.Fatalf("Random(%d,%d): %v", tc.n, tc.m, err)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("Random(%d,%d) invalid: %v", tc.n, tc.m, err)
		}
		if app.N() != tc.n || app.M() != tc.m {
			t.Errorf("Random(%d,%d) = (#N=%d, #M=%d)", tc.n, tc.m, app.N(), app.M())
		}
		if got := len(app.ActiveNodes()); got != tc.n {
			t.Errorf("Random(%d,%d): only %d active nodes", tc.n, tc.m, got)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(10, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(10, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || len(a.Messages) != len(b.Messages) {
		t.Fatal("Random not deterministic in shape")
	}
	for i := range a.Messages {
		if a.Messages[i] != b.Messages[i] {
			t.Fatalf("Random not deterministic at message %d: %v vs %v", i, a.Messages[i], b.Messages[i])
		}
	}
	c, err := Random(10, 20, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Messages {
		if a.Messages[i] != c.Messages[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical message lists")
	}
}

func TestRandomProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%14
		maxM := n * (n - 1)
		span := maxM - (n - 1)
		m := n - 1 + int(mRaw)%(span+1)
		app, err := Random(n, m, seed)
		return err == nil && app.Validate() == nil && app.M() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("Random property violated: %v", err)
	}
}

func TestRandomErrors(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 1}, {3, 1}, {3, 7}} {
		if _, err := Random(tc.n, tc.m, 1); err == nil {
			t.Errorf("Random(%d,%d) should report an error", tc.n, tc.m)
		}
	}
}

func TestClusteredErrors(t *testing.T) {
	for _, tc := range []struct{ k, csize, inter int }{{0, 4, 1}, {3, 1, 1}, {3, 4, -1}} {
		if _, err := Clustered(tc.k, tc.csize, tc.inter, 1); err == nil {
			t.Errorf("Clustered(%d,%d,%d) should report an error", tc.k, tc.csize, tc.inter)
		}
	}
}

func TestRing(t *testing.T) {
	app := Ring(6)
	if err := app.Validate(); err != nil {
		t.Fatalf("Ring invalid: %v", err)
	}
	if app.N() != 6 || app.M() != 6 {
		t.Errorf("Ring(6) = %s", app)
	}
	for i, m := range app.Messages {
		if int(m.Src) != i || int(m.Dst) != (i+1)%6 {
			t.Errorf("Ring message %d = %v", i, m)
		}
	}
}

func TestClustered(t *testing.T) {
	app, err := Clustered(3, 4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("Clustered invalid: %v", err)
	}
	if app.N() != 12 {
		t.Errorf("Clustered N = %d, want 12", app.N())
	}
	if app.M() != 3*4+3 {
		t.Errorf("Clustered M = %d, want 15", app.M())
	}
	// Clusters are spatially separated: intra-cluster distances must be much
	// smaller than inter-cluster distances.
	intra := app.Pos(0).Manhattan(app.Pos(1))
	inter := app.Pos(0).Manhattan(app.Pos(4))
	if intra >= inter {
		t.Errorf("intra distance %v should be < inter distance %v", intra, inter)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := MWD()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != orig.Name || got.N() != orig.N() || got.M() != orig.M() {
		t.Fatalf("round trip mismatch: %s vs %s", got, orig)
	}
	for i := range orig.Nodes {
		if !got.Nodes[i].Pos.Eq(orig.Nodes[i].Pos) || got.Nodes[i].Name != orig.Nodes[i].Name {
			t.Errorf("node %d mismatch: %+v vs %+v", i, got.Nodes[i], orig.Nodes[i])
		}
	}
	for i := range orig.Messages {
		if got.Messages[i] != orig.Messages[i] {
			t.Errorf("message %d mismatch", i)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad json", `{`},
		{"self message", `{"name":"x","nodes":[{"name":"a","x":0,"y":0},{"name":"b","x":1,"y":0}],"messages":[{"src":0,"dst":0}]}`},
		{"unknown node", `{"name":"x","nodes":[{"name":"a","x":0,"y":0},{"name":"b","x":1,"y":0}],"messages":[{"src":0,"dst":7}]}`},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", c.name)
		}
	}
}

func TestDecodeDefaultsNames(t *testing.T) {
	in := `{"name":"x","nodes":[{"x":0,"y":0},{"x":1,"y":0}],"messages":[{"src":0,"dst":1}]}`
	app, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if app.Nodes[0].Name != "n1" || app.Nodes[1].Name != "n2" {
		t.Errorf("default names = %q, %q", app.Nodes[0].Name, app.Nodes[1].Name)
	}
}

func TestDecodeRawSkipsValidation(t *testing.T) {
	// All nodes at the origin: Decode rejects, DecodeRaw accepts (for
	// later placement).
	in := `{"name":"bare","nodes":[{"name":"a"},{"name":"b"}],"messages":[{"src":0,"dst":1}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("Decode accepted coincident nodes")
	}
	app, err := DecodeRaw(strings.NewReader(in))
	if err != nil {
		t.Fatalf("DecodeRaw: %v", err)
	}
	if app.N() != 2 || app.M() != 1 {
		t.Errorf("DecodeRaw shape wrong: %s", app)
	}
	if _, err := DecodeRaw(strings.NewReader("{")); err == nil {
		t.Error("DecodeRaw accepted malformed JSON")
	}
}
