package netlist

import (
	"encoding/json"
	"fmt"
	"io"

	"sring/internal/geom"
)

// jsonApp is the on-disk JSON schema for an application. Coordinates are in
// millimetres; bandwidths in MB/s.
type jsonApp struct {
	Name     string        `json:"name"`
	Nodes    []jsonNode    `json:"nodes"`
	Messages []jsonMessage `json:"messages"`
}

type jsonNode struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

type jsonMessage struct {
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
}

// Encode writes the application to w as JSON.
func Encode(w io.Writer, app *Application) error {
	ja := jsonApp{Name: app.Name}
	for _, n := range app.Nodes {
		ja.Nodes = append(ja.Nodes, jsonNode{Name: n.Name, X: n.Pos.X, Y: n.Pos.Y})
	}
	for _, m := range app.Messages {
		ja.Messages = append(ja.Messages, jsonMessage{Src: int(m.Src), Dst: int(m.Dst), Bandwidth: m.Bandwidth})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ja); err != nil {
		return fmt.Errorf("netlist: encode %q: %w", app.Name, err)
	}
	return nil
}

// Decode reads a JSON application from r and validates it.
func Decode(r io.Reader) (*Application, error) {
	app, err := DecodeRaw(r)
	if err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// DecodeRaw reads a JSON application without validating it — for inputs
// that lack placements (all nodes at the origin) and will be placed by
// sring/internal/floorplan before use.
func DecodeRaw(r io.Reader) (*Application, error) {
	var ja jsonApp
	if err := json.NewDecoder(r).Decode(&ja); err != nil {
		return nil, fmt.Errorf("netlist: decode: %w", err)
	}
	app := &Application{Name: ja.Name}
	for i, n := range ja.Nodes {
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("n%d", i+1)
		}
		app.Nodes = append(app.Nodes, Node{
			ID:   NodeID(i),
			Name: name,
			Pos:  geom.Pt(n.X, n.Y),
		})
	}
	for _, m := range ja.Messages {
		app.Messages = append(app.Messages, Message{
			Src: NodeID(m.Src), Dst: NodeID(m.Dst), Bandwidth: m.Bandwidth,
		})
	}
	return app, nil
}
