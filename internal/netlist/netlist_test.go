package netlist

import (
	"strings"
	"testing"

	"sring/internal/geom"
)

func twoNodeApp() *Application {
	return &Application{
		Name: "t",
		Nodes: []Node{
			{ID: 0, Name: "a", Pos: geom.Pt(0, 0)},
			{ID: 1, Name: "b", Pos: geom.Pt(1, 0)},
		},
		Messages: []Message{{Src: 0, Dst: 1, Bandwidth: 8}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := twoNodeApp().Validate(); err != nil {
		t.Fatalf("valid app rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Application)
		wantSub string
	}{
		{"too few nodes", func(a *Application) { a.Nodes = a.Nodes[:1] }, "at least 2 nodes"},
		{"non-dense IDs", func(a *Application) { a.Nodes[1].ID = 5 }, "dense IDs"},
		{"duplicate position", func(a *Application) { a.Nodes[1].Pos = a.Nodes[0].Pos }, "share position"},
		{"no messages", func(a *Application) { a.Messages = nil }, "no messages"},
		{"unknown node", func(a *Application) { a.Messages[0].Dst = 9 }, "unknown node"},
		{"negative node", func(a *Application) { a.Messages[0].Src = -1 }, "unknown node"},
		{"self message", func(a *Application) { a.Messages[0].Dst = 0 }, "self-message"},
		{"duplicate message", func(a *Application) {
			a.Messages = append(a.Messages, a.Messages[0])
		}, "duplicate message"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			app := twoNodeApp()
			c.mutate(app)
			err := app.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid app")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestBenchmarkSignatures(t *testing.T) {
	want := map[string][2]int{
		"MWD":    {12, 13},
		"VOPD":   {16, 21},
		"MPEG":   {12, 26},
		"D26":    {26, 68},
		"8PM-24": {8, 24},
		"8PM-32": {8, 32},
		"8PM-44": {8, 44},
	}
	got := map[string]bool{}
	for _, app := range Benchmarks() {
		sig, ok := want[app.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", app.Name)
			continue
		}
		got[app.Name] = true
		if app.N() != sig[0] || app.M() != sig[1] {
			t.Errorf("%s: (#N=%d, #M=%d), want (#N=%d, #M=%d)", app.Name, app.N(), app.M(), sig[0], sig[1])
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s invalid: %v", app.Name, err)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("benchmark %q missing", name)
		}
	}
}

func TestBenchmarksAllNodesActive(t *testing.T) {
	for _, app := range Benchmarks() {
		if got := len(app.ActiveNodes()); got != app.N() {
			t.Errorf("%s: %d active nodes of %d; benchmarks should have no idle nodes", app.Name, got, app.N())
		}
	}
}

func TestMWDPaperProperties(t *testing.T) {
	app := MWD()
	// Paper node 3 (ID 2) sends to exactly one node: paper node 4 (ID 3).
	from := app.MessagesFrom(2)
	if len(from) != 1 || from[0].Dst != 3 {
		t.Errorf("MWD node 3 should send only to node 4, got %v", from)
	}
	// Paper nodes 4 and 11 (IDs 3, 10) communicate in both directions.
	dir := map[[2]NodeID]bool{}
	for _, m := range app.Messages {
		dir[[2]NodeID{m.Src, m.Dst}] = true
	}
	if !dir[[2]NodeID{3, 10}] || !dir[[2]NodeID{10, 3}] {
		t.Error("MWD nodes 4 and 11 should exchange traffic both ways")
	}
}

func TestMPEGHubProperty(t *testing.T) {
	app := MPEG()
	adj := app.Adjacency()
	if got := len(adj[5]); got != app.N()-1 {
		t.Errorf("MPEG sdram adjacency = %d, want %d (talks to all other nodes)", got, app.N()-1)
	}
}

func TestByName(t *testing.T) {
	app, err := ByName("VOPD")
	if err != nil || app.Name != "VOPD" {
		t.Fatalf("ByName(VOPD) = %v, %v", app, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown name")
	} else if !strings.Contains(err.Error(), "MWD") {
		t.Errorf("error should list available names, got %q", err)
	}
}

func TestCommEdges(t *testing.T) {
	app := &Application{
		Name: "t",
		Nodes: []Node{
			{ID: 0, Pos: geom.Pt(0, 0)}, {ID: 1, Pos: geom.Pt(1, 0)}, {ID: 2, Pos: geom.Pt(2, 0)},
		},
		Messages: []Message{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, // same undirected edge
			{Src: 2, Dst: 0},
		},
	}
	edges := app.CommEdges()
	if len(edges) != 2 {
		t.Fatalf("CommEdges = %v, want 2 edges", edges)
	}
	if edges[0] != [2]NodeID{0, 1} || edges[1] != [2]NodeID{0, 2} {
		t.Errorf("CommEdges = %v, want [[0 1] [0 2]]", edges)
	}
}

func TestAdjacencySorted(t *testing.T) {
	app := MWD()
	for id, neigh := range app.Adjacency() {
		for i := 1; i < len(neigh); i++ {
			if neigh[i-1] >= neigh[i] {
				t.Errorf("adjacency of %d not strictly sorted: %v", id, neigh)
			}
		}
		for _, v := range neigh {
			if v == id {
				t.Errorf("node %d adjacent to itself", id)
			}
		}
	}
}

func TestMaxCommDistance(t *testing.T) {
	app := twoNodeApp()
	if got := app.MaxCommDistance(); got != 1 {
		t.Errorf("MaxCommDistance = %v, want 1", got)
	}
	// MWD: nodes 4 (ID 3, pos (0.45,0)) and 11 (ID 10, pos (0.3,0.3))
	// communicate at distance 0.45; verify d1 >= that.
	mwd := MWD()
	if got := mwd.MaxCommDistance(); got < 0.45-geom.Eps {
		t.Errorf("MWD MaxCommDistance = %v, want >= 0.45", got)
	}
}

func TestDensityOrdering(t *testing.T) {
	// Paper: MWD/VOPD low density, 8PM-44 high density.
	if MWD().Density() >= PM44().Density() {
		t.Error("MWD should be less dense than 8PM-44")
	}
	if PM24().Density() >= PM44().Density() {
		t.Error("8PM-24 should be less dense than 8PM-44")
	}
}

func TestSendersAndActive(t *testing.T) {
	app := &Application{
		Name: "t",
		Nodes: []Node{
			{ID: 0, Pos: geom.Pt(0, 0)}, {ID: 1, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(2, 0)}, {ID: 3, Pos: geom.Pt(3, 0)},
		},
		Messages: []Message{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}},
	}
	if got := app.Senders(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Senders = %v, want [0]", got)
	}
	if got := app.ActiveNodes(); len(got) != 3 {
		t.Errorf("ActiveNodes = %v, want 3 nodes (node 3 idle)", got)
	}
}

func TestClone(t *testing.T) {
	app := MWD()
	cp := app.Clone()
	cp.Nodes[0].Name = "mutated"
	cp.Messages[0].Src = 5
	if app.Nodes[0].Name == "mutated" || app.Messages[0].Src == 5 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestString(t *testing.T) {
	if got := MWD().String(); got != "MWD (#N=12, #M=13)" {
		t.Errorf("String = %q", got)
	}
}
