package netlist

import (
	"fmt"
	"math/rand"

	"sring/internal/geom"
)

// Random returns a deterministic pseudo-random application with n nodes on a
// grid and m distinct directed messages. The communication graph is kept
// connected by threading a random spanning path through all nodes first, so
// generated applications always admit a single-ring solution.
//
// Random returns an error if the requested message count is infeasible
// (m < n-1 or m > n*(n-1)), so callers accepting generator parameters from
// untrusted input (e.g. serve requests) can reject them gracefully.
func Random(n, m int, seed int64) (*Application, error) {
	if n < 2 {
		return nil, fmt.Errorf("netlist: Random needs n >= 2, got %d", n)
	}
	if m < n-1 || m > n*(n-1) {
		return nil, fmt.Errorf("netlist: Random with n=%d cannot place m=%d messages (need %d <= m <= %d)", n, m, n-1, n*(n-1))
	}
	rng := rand.New(rand.NewSource(seed))
	cols := 1
	for cols*cols < n {
		cols++
	}
	app := &Application{
		Name:  fmt.Sprintf("rand-n%d-m%d-s%d", n, m, seed),
		Nodes: grid(n, cols, 0.15, nil),
	}
	// Random spanning path keeps every node active.
	perm := rng.Perm(n)
	used := make(map[[2]NodeID]bool)
	add := func(src, dst NodeID) bool {
		key := [2]NodeID{src, dst}
		if src == dst || used[key] {
			return false
		}
		used[key] = true
		app.Messages = append(app.Messages, Message{
			Src: src, Dst: dst, Bandwidth: float64(8 * (1 + rng.Intn(64))),
		})
		return true
	}
	for i := 1; i < n; i++ {
		add(NodeID(perm[i-1]), NodeID(perm[i]))
	}
	for len(app.Messages) < m {
		add(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return app, nil
}

// Ring returns an n-node application whose messages form a directed cycle
// 0 -> 1 -> ... -> n-1 -> 0: the simplest workload that exercises a full
// ring. Useful in tests and examples.
func Ring(n int) *Application {
	if n < 2 {
		panic(fmt.Sprintf("netlist: Ring needs n >= 2, got %d", n))
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	app := &Application{Name: fmt.Sprintf("ring-%d", n), Nodes: grid(n, cols, 0.15, nil)}
	for i := 0; i < n; i++ {
		app.Messages = append(app.Messages, Message{
			Src: NodeID(i), Dst: NodeID((i + 1) % n), Bandwidth: 64,
		})
	}
	return app
}

// Clustered returns an application with k well-separated clusters of size
// csize each, dense traffic inside clusters and a few inter-cluster flows:
// the workload shape SRing is designed for. interFlows inter-cluster
// messages are threaded between consecutive clusters' first nodes.
// Infeasible parameters are reported as an error, never a panic.
func Clustered(k, csize, interFlows int, seed int64) (*Application, error) {
	if k < 1 || csize < 2 {
		return nil, fmt.Errorf("netlist: Clustered needs k >= 1, csize >= 2, got k=%d csize=%d", k, csize)
	}
	if interFlows < 0 {
		return nil, fmt.Errorf("netlist: Clustered needs interFlows >= 0, got %d", interFlows)
	}
	rng := rand.New(rand.NewSource(seed))
	app := &Application{Name: fmt.Sprintf("clustered-k%d-c%d", k, csize)}
	// Clusters sit on a coarse grid, members on a fine grid inside.
	clusterCols := 1
	for clusterCols*clusterCols < k {
		clusterCols++
	}
	memberCols := 1
	for memberCols*memberCols < csize {
		memberCols++
	}
	id := 0
	for c := 0; c < k; c++ {
		base := geom.Pt(float64(c%clusterCols)*2.0, float64(c/clusterCols)*2.0)
		for i := 0; i < csize; i++ {
			app.Nodes = append(app.Nodes, Node{
				ID:   NodeID(id),
				Name: fmt.Sprintf("c%d_n%d", c, i),
				Pos:  base.Add(float64(i%memberCols)*0.1, float64(i/memberCols)*0.1),
			})
			id++
		}
	}
	// Intra-cluster: a cycle through the cluster members.
	for c := 0; c < k; c++ {
		base := c * csize
		for i := 0; i < csize; i++ {
			app.Messages = append(app.Messages, Message{
				Src:       NodeID(base + i),
				Dst:       NodeID(base + (i+1)%csize),
				Bandwidth: float64(8 * (1 + rng.Intn(32))),
			})
		}
	}
	// Inter-cluster flows between cluster heads.
	for f := 0; f < interFlows && k > 1; f++ {
		a := f % k
		b := (f + 1) % k
		app.Messages = append(app.Messages, Message{
			Src:       NodeID(a * csize),
			Dst:       NodeID(b * csize),
			Bandwidth: 32,
		})
	}
	return app, nil
}
