// Package netlist models the input to WRONoC router synthesis: an
// application consisting of network nodes with physical placements and the
// set of directed messages (signal paths to reserve) between them.
//
// It also ships the seven benchmark applications evaluated in the SRing
// paper (MWD, VOPD, MPEG, D26, 8PM-24, 8PM-32, 8PM-44) and deterministic
// generators for synthetic workloads.
package netlist

import (
	"errors"
	"fmt"
	"sort"

	"sring/internal/geom"
)

// NodeID identifies a node within an application. IDs are dense indices
// 0..len(Nodes)-1 after validation.
type NodeID int

// Node is a network endpoint (a processing element, memory, or IP block)
// with a fixed physical location on the optical layer.
type Node struct {
	ID   NodeID
	Name string
	Pos  geom.Point // millimetres
}

// Message is a directed communication requirement: Src must be able to send
// to Dst on a dedicated wavelength-routed signal path.
type Message struct {
	Src, Dst NodeID
	// Bandwidth is the requested bandwidth in MB/s. It is informational:
	// WRONoC path reservation is per-message regardless of bandwidth, but
	// benchmarks carry the literature values.
	Bandwidth float64
}

// Application is a complete synthesis input.
type Application struct {
	Name     string
	Nodes    []Node
	Messages []Message
}

// Validate checks structural invariants: at least two nodes, dense node IDs
// matching slice positions, distinct positions, messages referencing valid
// nodes, no self-messages, and no duplicate (src, dst) pairs.
func (a *Application) Validate() error {
	if len(a.Nodes) < 2 {
		return fmt.Errorf("netlist: application %q needs at least 2 nodes, has %d", a.Name, len(a.Nodes))
	}
	for i, n := range a.Nodes {
		if int(n.ID) != i {
			return fmt.Errorf("netlist: node %d has ID %d, want dense IDs", i, n.ID)
		}
	}
	for i := range a.Nodes {
		for j := i + 1; j < len(a.Nodes); j++ {
			if a.Nodes[i].Pos.Eq(a.Nodes[j].Pos) {
				return fmt.Errorf("netlist: nodes %q and %q share position %v",
					a.Nodes[i].Name, a.Nodes[j].Name, a.Nodes[i].Pos)
			}
		}
	}
	if len(a.Messages) == 0 {
		return errors.New("netlist: application has no messages")
	}
	seen := make(map[[2]NodeID]bool, len(a.Messages))
	for _, m := range a.Messages {
		if m.Src < 0 || int(m.Src) >= len(a.Nodes) || m.Dst < 0 || int(m.Dst) >= len(a.Nodes) {
			return fmt.Errorf("netlist: message %d->%d references unknown node", m.Src, m.Dst)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("netlist: self-message at node %d", m.Src)
		}
		key := [2]NodeID{m.Src, m.Dst}
		if seen[key] {
			return fmt.Errorf("netlist: duplicate message %d->%d", m.Src, m.Dst)
		}
		seen[key] = true
	}
	return nil
}

// N returns the number of nodes (#N in the paper's Table I).
func (a *Application) N() int { return len(a.Nodes) }

// M returns the number of messages (#M in the paper's Table I).
func (a *Application) M() int { return len(a.Messages) }

// Density is the communication density #M / #N used in the paper's
// discussion of wavelength usage.
func (a *Application) Density() float64 {
	if len(a.Nodes) == 0 {
		return 0
	}
	return float64(len(a.Messages)) / float64(len(a.Nodes))
}

// Pos returns the position of node id.
func (a *Application) Pos(id NodeID) geom.Point { return a.Nodes[id].Pos }

// CommEdges returns the undirected communication edges of graph G = (V, E)
// from the paper (Sec. III-A): one edge per node pair with traffic in either
// direction, each pair reported once with the smaller ID first, sorted.
func (a *Application) CommEdges() [][2]NodeID {
	set := make(map[[2]NodeID]bool)
	for _, m := range a.Messages {
		u, v := m.Src, m.Dst
		if u > v {
			u, v = v, u
		}
		set[[2]NodeID{u, v}] = true
	}
	edges := make([][2]NodeID, 0, len(set))
	for e := range set {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// Adjacency returns, for each node, the sorted set of nodes it communicates
// with in either direction (the adjacency of graph G).
func (a *Application) Adjacency() map[NodeID][]NodeID {
	set := make(map[NodeID]map[NodeID]bool)
	add := func(u, v NodeID) {
		if set[u] == nil {
			set[u] = make(map[NodeID]bool)
		}
		set[u][v] = true
	}
	for _, m := range a.Messages {
		add(m.Src, m.Dst)
		add(m.Dst, m.Src)
	}
	adj := make(map[NodeID][]NodeID, len(set))
	for u, vs := range set {
		list := make([]NodeID, 0, len(vs))
		for v := range vs {
			list = append(list, v)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		adj[u] = list
	}
	return adj
}

// ActiveNodes returns the sorted IDs of nodes that send or receive at least
// one message. Idle nodes need no senders, receivers, or ring membership.
func (a *Application) ActiveNodes() []NodeID {
	seen := make(map[NodeID]bool)
	for _, m := range a.Messages {
		seen[m.Src] = true
		seen[m.Dst] = true
	}
	ids := make([]NodeID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Senders returns the sorted IDs of nodes that originate at least one
// message.
func (a *Application) Senders() []NodeID {
	seen := make(map[NodeID]bool)
	for _, m := range a.Messages {
		seen[m.Src] = true
	}
	ids := make([]NodeID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MaxCommDistance returns the maximum Manhattan distance between any two
// communicating nodes: the paper's d1, the lower end of the L_max search
// range.
func (a *Application) MaxCommDistance() float64 {
	var d float64
	for _, m := range a.Messages {
		if dist := a.Pos(m.Src).Manhattan(a.Pos(m.Dst)); dist > d {
			d = dist
		}
	}
	return d
}

// MessagesFrom returns the messages originating at node id.
func (a *Application) MessagesFrom(id NodeID) []Message {
	var out []Message
	for _, m := range a.Messages {
		if m.Src == id {
			out = append(out, m)
		}
	}
	return out
}

// Clone returns a deep copy of the application.
func (a *Application) Clone() *Application {
	cp := &Application{Name: a.Name}
	cp.Nodes = append([]Node(nil), a.Nodes...)
	cp.Messages = append([]Message(nil), a.Messages...)
	return cp
}

// String summarises the application as "name (#N nodes, #M messages)".
func (a *Application) String() string {
	return fmt.Sprintf("%s (#N=%d, #M=%d)", a.Name, a.N(), a.M())
}
