package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the JSON front door: Decode must never panic and must
// either return a validated application or an error, for arbitrary input.
// The seed corpus covers the accepted shapes and common malformations; `go
// test` replays the corpus, `go test -fuzz=FuzzDecode` explores further.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		`{"name":"x","nodes":[{"name":"a","x":0,"y":0},{"name":"b","x":1,"y":0}],"messages":[{"src":0,"dst":1}]}`,
		`{"name":"x","nodes":[],"messages":[]}`,
		`{"nodes":[{"x":0,"y":0},{"x":0,"y":0}],"messages":[{"src":0,"dst":1}]}`,
		`{"nodes":[{"x":0,"y":0},{"x":1,"y":0}],"messages":[{"src":-1,"dst":9}]}`,
		`{`,
		`null`,
		`[]`,
		`{"nodes":[{"x":1e308,"y":-1e308},{"x":0,"y":0}],"messages":[{"src":0,"dst":1,"bandwidth":-5}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// A serialized benchmark as a rich seed.
	var buf bytes.Buffer
	if err := Encode(&buf, MWD()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		app, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is always acceptable
		}
		// Anything accepted must be fully valid.
		if verr := app.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid application: %v", verr)
		}
		// And re-encodable.
		var out strings.Builder
		if eerr := Encode(&out, app); eerr != nil {
			t.Fatalf("accepted application does not re-encode: %v", eerr)
		}
	})
}
