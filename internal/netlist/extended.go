package netlist

// Extended benchmark suite: four additional application task graphs in the
// style of the common NoC synthesis literature (picture-in-picture, H.263
// codec, MP3 decoder, and a combined multimedia system). The SRing paper
// evaluates only the seven Table-I benchmarks; these extend the evaluation
// surface for downstream users and for the density analysis in
// cmd/sweep.

// PIP returns an 8-node, 8-message picture-in-picture application: two
// scaler pipelines sharing a memory.
func PIP() *Application {
	names := []string{
		"inp_mem", "hs", "vs", "jug",
		"mem", "hvs", "jug2", "op_disp",
	}
	return &Application{
		Name:  "PIP",
		Nodes: grid(8, 4, 0.15, names),
		Messages: msgs([][3]float64{
			{0, 1, 128}, // inp_mem -> hs
			{1, 2, 64},  // hs -> vs
			{2, 4, 64},  // vs -> mem
			{0, 3, 64},  // inp_mem -> jug
			{3, 4, 64},  // jug -> mem
			{4, 5, 96},  // mem -> hvs
			{5, 7, 96},  // hvs -> op_disp
			{4, 6, 64},  // mem -> jug2
		}),
	}
}

// H263 returns a 14-node, 18-message H.263 encoder/decoder pair sharing a
// frame memory.
func H263() *Application {
	names := []string{
		"cam", "me", "mc_enc", "dct", "quant", "vlc", "fmem",
		"vld", "iquant", "idct", "mc_dec", "disp", "rate_ctl", "strm",
	}
	return &Application{
		Name:  "H263",
		Nodes: grid(14, 4, 0.15, names),
		Messages: msgs([][3]float64{
			// Encoder pipeline.
			{0, 1, 400}, {1, 2, 300}, {2, 3, 300}, {3, 4, 250},
			{4, 5, 100}, {5, 13, 64},
			// Frame memory traffic.
			{1, 6, 200}, {6, 1, 200}, {2, 6, 150},
			// Rate control loop.
			{4, 12, 16}, {12, 4, 16},
			// Decoder pipeline.
			{13, 7, 64}, {7, 8, 100}, {8, 9, 250}, {9, 10, 300},
			{10, 11, 400}, {6, 10, 200}, {10, 6, 150},
		}),
	}
}

// MP3 returns a 13-node, 14-message MP3 decoder pipeline with a shared
// sample memory.
func MP3() *Application {
	names := []string{
		"strm", "sync", "huff", "dequant", "reorder", "stereo",
		"alias", "imdct", "freqinv", "synth", "pcm", "smem", "ctl",
	}
	return &Application{
		Name:  "MP3",
		Nodes: grid(13, 4, 0.15, names),
		Messages: msgs([][3]float64{
			{0, 1, 32}, {1, 2, 32}, {2, 3, 48}, {3, 4, 48},
			{4, 5, 48}, {5, 6, 48}, {6, 7, 64}, {7, 8, 64},
			{8, 9, 64}, {9, 10, 96},
			// Sample memory and control.
			{7, 11, 64}, {11, 7, 64}, {12, 1, 4}, {12, 9, 4},
		}),
	}
}

// MMS returns a 25-node, 33-message combined multimedia system: video
// encode/decode, audio, and a processor/memory backbone.
func MMS() *Application {
	names := []string{
		"cpu", "dsp1", "dsp2", "dsp3", "dsp4",
		"mem1", "mem2", "mem3", "aswitch", "vswitch",
		"vin", "venc", "vdec", "vout", "ain",
		"aenc", "adec", "aout", "dma", "bridge",
		"per1", "per2", "rast", "idct2", "up2",
	}
	return &Application{
		Name:  "MMS",
		Nodes: grid(25, 5, 0.18, names),
		Messages: msgs([][3]float64{
			// Video encode path.
			{10, 9, 600}, {9, 11, 600}, {11, 5, 400}, {5, 11, 200},
			// Video decode path.
			{5, 12, 400}, {12, 9, 600}, {9, 13, 600}, {12, 23, 300},
			{23, 24, 300}, {24, 13, 300}, {22, 12, 150},
			// Audio paths.
			{14, 8, 48}, {8, 15, 48}, {15, 6, 32}, {6, 16, 32},
			{16, 8, 48}, {8, 17, 48},
			// Processor / memory backbone.
			{0, 5, 800}, {5, 0, 800}, {0, 6, 640}, {6, 0, 640},
			{1, 6, 320}, {6, 1, 320}, {2, 7, 320}, {7, 2, 320},
			{3, 7, 160}, {4, 7, 160},
			// DMA and peripherals.
			{18, 5, 240}, {18, 7, 240}, {0, 19, 64},
			{19, 20, 32}, {19, 21, 32}, {0, 18, 64},
		}),
	}
}

// Extended returns the extension benchmarks (not part of the paper's
// Table I).
func Extended() []*Application {
	return []*Application{PIP(), H263(), MP3(), MMS()}
}
