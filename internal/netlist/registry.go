package netlist

import (
	"fmt"
	"strings"
)

// The builtin-app registry: the single place commands (cmd/sring, cmd/bench,
// cmd/serve, cmd/sweep) resolve named applications from, instead of
// per-command switch statements. It spans the seven paper benchmarks, the
// four extension task graphs, and the large synthetic scale apps.

// Apps returns every registered builtin application: paper benchmarks in
// Table I order, then the extended task graphs, then the scale apps.
// Each call builds fresh Application values, so callers may mutate them.
func Apps() []*Application {
	var all []*Application
	all = append(all, Benchmarks()...)
	all = append(all, Extended()...)
	all = append(all, Scale()...)
	return all
}

// Names returns the names of all registered builtin applications, in
// registry order.
func Names() []string {
	apps := Apps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}

// ByName returns the builtin application with the given (case-sensitive)
// name — paper benchmark, extended task graph, or scale app — or an error
// listing the available names.
func ByName(name string) (*Application, error) {
	for _, b := range Apps() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("netlist: unknown benchmark %q (available: %s)",
		name, strings.Join(Names(), ", "))
}
