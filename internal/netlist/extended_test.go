package netlist

import "testing"

func TestExtendedSignatures(t *testing.T) {
	want := map[string][2]int{
		"PIP":  {8, 8},
		"H263": {14, 18},
		"MP3":  {13, 14},
		"MMS":  {25, 33},
	}
	got := map[string]bool{}
	for _, app := range Extended() {
		sig, ok := want[app.Name]
		if !ok {
			t.Errorf("unexpected extended benchmark %q", app.Name)
			continue
		}
		got[app.Name] = true
		if app.N() != sig[0] || app.M() != sig[1] {
			t.Errorf("%s: (#N=%d, #M=%d), want (#N=%d, #M=%d)",
				app.Name, app.N(), app.M(), sig[0], sig[1])
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s invalid: %v", app.Name, err)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("extended benchmark %q missing", name)
		}
	}
}

func TestExtendedAllNodesActive(t *testing.T) {
	for _, app := range Extended() {
		if got := len(app.ActiveNodes()); got != app.N() {
			t.Errorf("%s: %d active of %d nodes", app.Name, got, app.N())
		}
	}
}

func TestExtendedAreLowDensity(t *testing.T) {
	// The extended suite targets the clusterable regime SRing is built
	// for: density below 2 messages per node.
	for _, app := range Extended() {
		if d := app.Density(); d >= 2 {
			t.Errorf("%s: density %.2f, want < 2", app.Name, d)
		}
	}
}
