package sim

import (
	"context"
	"math"
	"testing"

	_ "sring/internal/ctoring"
	"sring/internal/design"
	"sring/internal/netlist"
	_ "sring/internal/ornoc"
	"sring/internal/pdn"
	"sring/internal/pipeline"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

func ctoringDesign(t *testing.T, app *netlist.Application) *design.Design {
	t.Helper()
	d, err := pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunBasics(t *testing.T) {
	d := ctoringDesign(t, netlist.MWD())
	res, err := Run(d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("no packets delivered")
	}
	if res.Collisions != 0 {
		t.Errorf("valid design produced %d collisions", res.Collisions)
	}
	if res.AvgLatencyNS <= 0 || res.WorstLatencyNS < res.AvgLatencyNS {
		t.Errorf("latency stats inconsistent: avg %v worst %v", res.AvgLatencyNS, res.WorstLatencyNS)
	}
	if res.ThroughputGbps <= 0 || res.LaserEnergyPJPerBit <= 0 {
		t.Errorf("throughput/energy not positive: %v / %v", res.ThroughputGbps, res.LaserEnergyPJPerBit)
	}
	if len(res.PerMessage) != len(d.Infos) {
		t.Errorf("PerMessage length %d", len(res.PerMessage))
	}
}

func TestRunDeterministic(t *testing.T) {
	d := ctoringDesign(t, netlist.MWD())
	a, err := Run(d, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.PacketsDelivered != b.PacketsDelivered || a.AvgLatencyNS != b.AvgLatencyNS {
		t.Error("simulation not deterministic")
	}
	c, err := Run(d, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.PacketsDelivered == c.PacketsDelivered && a.AvgLatencyNS == c.AvgLatencyNS {
		t.Error("different seeds produced identical traffic")
	}
}

func TestLatencyScalesWithPathLength(t *testing.T) {
	// Latency floor = serialization + propagation; longer paths must show
	// a higher propagation component.
	d := ctoringDesign(t, netlist.D26())
	res, err := Run(d, Config{Seed: 1, Load: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var shortest, longest int
	for i, pi := range d.Infos {
		if pi.Path.Length < d.Infos[shortest].Path.Length {
			shortest = i
		}
		if pi.Path.Length > d.Infos[longest].Path.Length {
			longest = i
		}
		_ = i
	}
	if res.PerMessage[longest].PropagationNS <= res.PerMessage[shortest].PropagationNS {
		t.Errorf("propagation latency not increasing with length: %v vs %v",
			res.PerMessage[longest].PropagationNS, res.PerMessage[shortest].PropagationNS)
	}
	// 10.45 ps/mm: a 9.8 mm worst path adds ~0.102 ns over conversions.
	want := d.Infos[longest].Path.Length*10.45/1000 + 0.2
	if math.Abs(res.PerMessage[longest].PropagationNS-want) > 1e-9 {
		t.Errorf("propagation = %v ns, want %v", res.PerMessage[longest].PropagationNS, want)
	}
}

func TestHigherLoadHigherLatency(t *testing.T) {
	d := ctoringDesign(t, netlist.MWD())
	low, err := Run(d, Config{Seed: 3, Load: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(d, Config{Seed: 3, Load: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgLatencyNS <= low.AvgLatencyNS {
		t.Errorf("queueing missing: load 0.9 avg %v <= load 0.1 avg %v",
			high.AvgLatencyNS, low.AvgLatencyNS)
	}
	if high.PacketsDelivered <= low.PacketsDelivered {
		t.Error("higher load should deliver more packets")
	}
}

// Failure injection: corrupt the assignment so two overlapping paths share
// a wavelength — the simulator must detect collisions.
func TestCollisionDetection(t *testing.T) {
	app := &netlist.Application{
		Name: "overlap",
		Nodes: []netlist.Node{
			{ID: 0, Pos: netlist.MWD().Nodes[0].Pos},
			{ID: 1, Pos: netlist.MWD().Nodes[1].Pos},
			{ID: 2, Pos: netlist.MWD().Nodes[2].Pos},
		},
		// Both messages traverse segment 0->1.
		Messages: []netlist.Message{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}},
	}
	r := &ring.Ring{ID: 0, Kind: ring.Base, Order: []netlist.NodeID{0, 1, 2}}
	var paths []ring.Path
	for _, m := range app.Messages {
		p, err := ring.Route(app, r, m)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	d, err := design.Finish(app, "test", []*ring.Ring{r}, paths, design.Options{PDN: pdn.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the real assignment is collision-free.
	clean, err := Run(d, Config{Seed: 1, Load: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Collisions != 0 {
		t.Fatalf("clean design collided %d times", clean.Collisions)
	}
	// Corrupt: force both messages onto wavelength 0.
	d.Assignment = &wavelength.Assignment{Lambda: []int{0, 0}, NumLambda: 1}
	dirty, err := Run(d, Config{Seed: 1, Load: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Collisions == 0 {
		t.Error("corrupted assignment produced no collisions")
	}
}

func TestConfigValidation(t *testing.T) {
	d := ctoringDesign(t, netlist.MWD())
	if _, err := Run(d, Config{Load: 1.5}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := Run(d, Config{Load: -0.1}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := Run(d, Config{DurationNS: -5}); err == nil {
		t.Error("negative duration accepted")
	}
}

// All methods simulate collision-free on every benchmark (the WRONoC
// static-reservation guarantee, end to end).
func TestAllMethodsCollisionFree(t *testing.T) {
	for _, app := range netlist.Benchmarks() {
		for name, synth := range map[string]func() (*design.Design, error){
			"ORNoC": func() (*design.Design, error) {
				return pipeline.Synthesize(context.Background(), app, "ORNoC", pipeline.Options{})
			},
			"CTORing": func() (*design.Design, error) {
				return pipeline.Synthesize(context.Background(), app, "CTORing", pipeline.Options{})
			},
		} {
			d, err := synth()
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, name, err)
			}
			res, err := Run(d, Config{Seed: 5, Load: 0.8, DurationNS: 300})
			if err != nil {
				t.Fatal(err)
			}
			if res.Collisions != 0 {
				t.Errorf("%s/%s: %d collisions", app.Name, name, res.Collisions)
			}
		}
	}
}

// Energy per bit tracks static laser power: a design with lower laser power
// delivers the same traffic for less energy.
func TestEnergyPerBitOrdering(t *testing.T) {
	app := netlist.MWD()
	orn, err := pipeline.Synthesize(context.Background(), app, "ORNoC", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cto := ctoringDesign(t, app)
	r1, err := Run(orn, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cto, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.LaserEnergyPJPerBit >= r1.LaserEnergyPJPerBit {
		t.Errorf("CTORing energy/bit %v not below ORNoC's %v",
			r2.LaserEnergyPJPerBit, r1.LaserEnergyPJPerBit)
	}
}

func TestWavelengthUtilization(t *testing.T) {
	d := ctoringDesign(t, netlist.MWD())
	res, err := Run(d, Config{Seed: 1, Load: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WavelengthUtilization) != d.Assignment.NumLambda {
		t.Fatalf("utilization entries = %d, want %d",
			len(res.WavelengthUtilization), d.Assignment.NumLambda)
	}
	any := false
	for l, u := range res.WavelengthUtilization {
		if u < 0 || u > 1 {
			t.Errorf("λ%d utilization %v outside [0,1]", l, u)
		}
		if u > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no wavelength saw any traffic")
	}
	// More load, more utilization (aggregate).
	high, err := Run(d, Config{Seed: 1, Load: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	var sumLow, sumHigh float64
	for l := range res.WavelengthUtilization {
		sumLow += res.WavelengthUtilization[l]
		sumHigh += high.WavelengthUtilization[l]
	}
	if sumHigh <= sumLow {
		t.Errorf("utilization did not grow with load: %v vs %v", sumHigh, sumLow)
	}
}
