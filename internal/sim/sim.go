// Package sim is a discrete-event transmission simulator for synthesised
// WRONoC designs. It injects packet traffic on every reserved signal path,
// models wavelength-division transmission at the physical parameters the
// paper's introduction cites (10.45 ps/mm waveguide propagation), and
// dynamically verifies the static collision-freedom guarantee: no two
// packets may ever occupy the same (waveguide segment, wavelength) at the
// same time.
//
// Because WRONoCs reserve all paths at design time, a correct design always
// simulates with zero collisions; the simulator exists to demonstrate that
// end-to-end (and to catch corrupted designs in failure-injection tests),
// and to turn the static power numbers into dynamic figures of merit:
// per-message latency, aggregate throughput, and laser energy per delivered
// bit.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sring/internal/design"
)

// Config parameterises a simulation run.
type Config struct {
	// BitrateGbps is the modulation rate per wavelength. Zero means 10.
	BitrateGbps float64
	// PacketBits is the packet size. Zero means 512.
	PacketBits int
	// PropagationPSPerMM is the waveguide group delay. Zero means 10.45
	// (paper Sec. I).
	PropagationPSPerMM float64
	// EOConversionPS and OEConversionPS are the fixed sender/receiver
	// conversion latencies. Zeros mean 100 each.
	EOConversionPS float64
	OEConversionPS float64
	// DurationNS is the simulated injection window in nanoseconds. Zero
	// means 1000 (1 µs).
	DurationNS float64
	// Load is the offered load per message as a fraction of a wavelength's
	// capacity, in (0, 1]. Zero means 0.5.
	Load float64
	// Seed drives the Poisson arrival processes.
	Seed int64
}

func (c *Config) fill() {
	if c.BitrateGbps == 0 {
		c.BitrateGbps = 10
	}
	if c.PacketBits == 0 {
		c.PacketBits = 512
	}
	if c.PropagationPSPerMM == 0 {
		c.PropagationPSPerMM = 10.45
	}
	if c.EOConversionPS == 0 {
		c.EOConversionPS = 100
	}
	if c.OEConversionPS == 0 {
		c.OEConversionPS = 100
	}
	if c.DurationNS == 0 {
		c.DurationNS = 1000
	}
	if c.Load == 0 {
		c.Load = 0.5
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	c.fill()
	if c.BitrateGbps <= 0 || c.PacketBits <= 0 || c.DurationNS <= 0 {
		return fmt.Errorf("sim: non-positive rate/size/duration")
	}
	if c.Load <= 0 || c.Load > 1 {
		return fmt.Errorf("sim: load %v outside (0, 1]", c.Load)
	}
	return nil
}

// MessageStats aggregates one message's traffic.
type MessageStats struct {
	Packets        int
	AvgLatencyNS   float64
	WorstLatencyNS float64
	// PropagationNS is the fixed flight component (no queueing).
	PropagationNS float64
}

// Result is the outcome of a run.
type Result struct {
	PacketsDelivered int
	BitsDelivered    int64
	// Collisions counts (segment, wavelength) occupancy overlaps between
	// different messages; zero for every valid design.
	Collisions int
	// AvgLatencyNS / WorstLatencyNS are over all delivered packets
	// (injection to last bit detected).
	AvgLatencyNS   float64
	WorstLatencyNS float64
	// ThroughputGbps is delivered bits over the simulated horizon.
	ThroughputGbps float64
	// LaserEnergyPJPerBit divides the design's static laser power over the
	// delivered bits: the dynamic counterpart of the paper's Fig. 7.
	LaserEnergyPJPerBit float64
	PerMessage          []MessageStats
	// WavelengthUtilization maps each wavelength to the fraction of the
	// simulated horizon its busiest segment was occupied — how hard the
	// WDM channels actually work.
	WavelengthUtilization []float64
}

// interval is one packet's occupancy of its arc.
type interval struct {
	msg        int
	start, end float64 // ns
}

// Run simulates the design under the configuration.
func Run(d *design.Design, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	met, err := d.Metrics()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	serNS := float64(cfg.PacketBits) / cfg.BitrateGbps // bits / (Gbit/s) = ns

	res := &Result{PerMessage: make([]MessageStats, len(d.Infos))}
	// occupancy[(ring, seg, λ)] collects per-packet intervals for the
	// collision check.
	occupancy := make(map[[3]int][]interval)

	var totalLatency float64
	for mi, pi := range d.Infos {
		propNS := pi.Path.Length*cfg.PropagationPSPerMM/1000 +
			(cfg.EOConversionPS+cfg.OEConversionPS)/1000
		st := &res.PerMessage[mi]
		st.PropagationNS = propNS

		// Poisson arrivals at the requested load; packets queue at the
		// sender (one modulator per message wavelength).
		meanGapNS := serNS / cfg.Load
		t := 0.0
		lastFree := 0.0
		for {
			t += rng.ExpFloat64() * meanGapNS
			if t > cfg.DurationNS {
				break
			}
			start := math.Max(t, lastFree)
			end := start + serNS
			lastFree = end
			delivered := end + propNS
			latency := delivered - t

			st.Packets++
			st.AvgLatencyNS += latency
			if latency > st.WorstLatencyNS {
				st.WorstLatencyNS = latency
			}
			res.PacketsDelivered++
			res.BitsDelivered += int64(cfg.PacketBits)
			totalLatency += latency
			if latency > res.WorstLatencyNS {
				res.WorstLatencyNS = latency
			}

			lambda := d.Assignment.Lambda[mi]
			for _, seg := range pi.Path.Segs {
				key := [3]int{pi.Path.RingID, seg, lambda}
				occupancy[key] = append(occupancy[key], interval{msg: mi, start: start, end: end + propNS})
			}
		}
		if st.Packets > 0 {
			st.AvgLatencyNS /= float64(st.Packets)
		}
	}

	// Collision sweep: per (segment, wavelength), sort intervals and count
	// overlaps between different messages. Busy time per key feeds the
	// utilization stats.
	busiest := make(map[int]float64) // wavelength -> max busy ns over its segments
	for key, ivs := range occupancy {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		var busy float64
		for i, iv := range ivs {
			busy += iv.end - iv.start
			if i > 0 && iv.msg != ivs[i-1].msg && iv.start < ivs[i-1].end {
				res.Collisions++
			}
		}
		if busy > busiest[key[2]] {
			busiest[key[2]] = busy
		}
	}

	if res.PacketsDelivered > 0 {
		res.AvgLatencyNS = totalLatency / float64(res.PacketsDelivered)
	}
	horizonNS := cfg.DurationNS + res.WorstLatencyNS
	res.WavelengthUtilization = make([]float64, d.Assignment.NumLambda)
	for l := range res.WavelengthUtilization {
		res.WavelengthUtilization[l] = math.Min(1, busiest[l]/horizonNS)
	}
	res.ThroughputGbps = float64(res.BitsDelivered) / horizonNS
	if res.BitsDelivered > 0 {
		// mW * ns / bit = pJ / bit.
		res.LaserEnergyPJPerBit = met.TotalLaserPowerMW * horizonNS / float64(res.BitsDelivered)
	}
	return res, nil
}
