package layout

import (
	"bytes"
	"encoding/gob"
	"sort"

	"sring/internal/geom"
	"sring/internal/ring"
)

// The pipeline's disk-persisted stage cache serialises layout results with
// encoding/gob, which skips unexported fields — and Result keeps its ring
// index in one. These custom encoders round-trip the full value, rings
// included, so a Result loaded from a persistence directory answers
// RingWaveguideMM exactly like the freshly routed one.

// gobResult mirrors Result with every field exported. Rings are sorted by
// ID so the encoding is deterministic.
type gobResult struct {
	Routes           map[SegKey]geom.Polyline
	SegBends         map[SegKey]int
	SegCrossings     map[SegKey]int
	TotalCrossings   int
	TotalBends       int
	TotalWaveguideMM float64
	Rings            []*ring.Ring
}

// Rings returns the routed rings, sorted by ID.
func (res *Result) Rings() []*ring.Ring {
	out := make([]*ring.Ring, 0, len(res.rings))
	for _, r := range res.rings {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GobEncode implements gob.GobEncoder.
func (res *Result) GobEncode() ([]byte, error) {
	g := gobResult{
		Routes:           res.Routes,
		SegBends:         res.SegBends,
		SegCrossings:     res.SegCrossings,
		TotalCrossings:   res.TotalCrossings,
		TotalBends:       res.TotalBends,
		TotalWaveguideMM: res.TotalWaveguideMM,
		Rings:            res.Rings(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (res *Result) GobDecode(data []byte) error {
	var g gobResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return err
	}
	res.Routes = g.Routes
	res.SegBends = g.SegBends
	res.SegCrossings = g.SegCrossings
	res.TotalCrossings = g.TotalCrossings
	res.TotalBends = g.TotalBends
	res.TotalWaveguideMM = g.TotalWaveguideMM
	res.rings = make(map[int]*ring.Ring, len(g.Rings))
	for _, r := range g.Rings {
		res.rings[r.ID] = r
	}
	return nil
}
