package layout

import (
	"math"
	"testing"

	"sring/internal/geom"
	"sring/internal/netlist"
	"sring/internal/ring"
)

func gridApp(n, cols int, pitch float64) *netlist.Application {
	app := &netlist.Application{Name: "grid"}
	for i := 0; i < n; i++ {
		app.Nodes = append(app.Nodes, netlist.Node{
			ID:  netlist.NodeID(i),
			Pos: geom.Pt(float64(i%cols)*pitch, float64(i/cols)*pitch),
		})
	}
	return app
}

func TestRouteSquareRing(t *testing.T) {
	// 2x2 grid, ring around it: all segments straight, no bends/crossings.
	app := gridApp(4, 2, 1)
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 1, 3, 2}}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBends != 0 {
		t.Errorf("TotalBends = %d, want 0 (all segments axis-aligned)", res.TotalBends)
	}
	if res.TotalCrossings != 0 {
		t.Errorf("TotalCrossings = %d, want 0", res.TotalCrossings)
	}
	if math.Abs(res.TotalWaveguideMM-4) > geom.Eps {
		t.Errorf("TotalWaveguideMM = %v, want 4", res.TotalWaveguideMM)
	}
}

func TestRouteDiagonalSegmentsBend(t *testing.T) {
	// Ring visiting diagonal corners needs L-shapes with one bend each.
	app := gridApp(4, 2, 1)
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 3}}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBends != 2 {
		t.Errorf("TotalBends = %d, want 2 (one per L-segment)", res.TotalBends)
	}
	// Out-and-back two-node ring must not route both segments on the same
	// track: total length 2 Manhattan = 4.
	if math.Abs(res.TotalWaveguideMM-4) > geom.Eps {
		t.Errorf("TotalWaveguideMM = %v, want 4", res.TotalWaveguideMM)
	}
	// The two L-shapes use opposite corners (proper loop).
	pl0 := res.Routes[SegKey{0, 0}]
	pl1 := res.Routes[SegKey{0, 1}]
	if len(pl0.Points) != 3 || len(pl1.Points) != 3 {
		t.Fatal("expected L-shaped segments")
	}
	if pl0.Points[1].Eq(pl1.Points[1]) {
		t.Errorf("both segments bend at the same corner %v", pl0.Points[1])
	}
}

func TestRouteErrors(t *testing.T) {
	app := gridApp(4, 2, 1)
	bad := &ring.Ring{ID: 0, Order: []netlist.NodeID{0}}
	if _, err := Route(app, []*ring.Ring{bad}); err == nil {
		t.Error("accepted invalid ring")
	}
	offApp := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 9}}
	if _, err := Route(app, []*ring.Ring{offApp}); err == nil {
		t.Error("accepted ring with node outside application")
	}
	dup := []*ring.Ring{
		{ID: 0, Order: []netlist.NodeID{0, 1}},
		{ID: 0, Order: []netlist.NodeID{2, 3}},
	}
	if _, err := Route(app, dup); err == nil {
		t.Error("accepted duplicate ring IDs")
	}
}

func TestCrossingsBetweenRings(t *testing.T) {
	// Two 2-node rings forced to cross: ring A spans (0,1)..(2,1)
	// horizontally, ring B spans (1,0)..(1,2) vertically.
	app := &netlist.Application{
		Nodes: []netlist.Node{
			{ID: 0, Pos: geom.Pt(0, 1)},
			{ID: 1, Pos: geom.Pt(2, 1)},
			{ID: 2, Pos: geom.Pt(1, 0)},
			{ID: 3, Pos: geom.Pt(1, 2)},
		},
	}
	ra := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 1}}
	rb := &ring.Ring{ID: 1, Order: []netlist.NodeID{2, 3}}
	res, err := Route(app, []*ring.Ring{ra, rb})
	if err != nil {
		t.Fatal(err)
	}
	// Both rings route straight on the same tracks out and back; each of
	// B's two vertical segments crosses each of A's two horizontal ones.
	if res.TotalCrossings != 4 {
		t.Errorf("TotalCrossings = %d, want 4", res.TotalCrossings)
	}
	// Each segment carries 2 crossings.
	for _, key := range []SegKey{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if res.SegCrossings[key] != 2 {
			t.Errorf("SegCrossings[%v] = %d, want 2", key, res.SegCrossings[key])
		}
	}
}

func TestPathBendsAndCrossings(t *testing.T) {
	app := gridApp(4, 2, 1)
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 1, 3, 2}}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ring.Route(app, r, netlist.Message{Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	bends, err := res.PathBends(p)
	if err != nil {
		t.Fatal(err)
	}
	// 0(0,0) -> 1(1,0) -> 3(1,1): one junction turn at node 1.
	if bends != 1 {
		t.Errorf("PathBends = %d, want 1 (junction turn)", bends)
	}
	crossings, err := res.PathCrossings(p)
	if err != nil {
		t.Fatal(err)
	}
	if crossings != 0 {
		t.Errorf("PathCrossings = %d, want 0", crossings)
	}
}

func TestPathOnUnroutedSegment(t *testing.T) {
	app := gridApp(4, 2, 1)
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 1, 3, 2}}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}
	ghost := ring.Path{RingID: 5, Segs: []int{0}}
	if _, err := res.PathBends(ghost); err == nil {
		t.Error("PathBends accepted unrouted ring")
	}
	if _, err := res.PathCrossings(ghost); err == nil {
		t.Error("PathCrossings accepted unrouted ring")
	}
}

func TestRingWaveguideMM(t *testing.T) {
	app := gridApp(4, 2, 1)
	r := &ring.Ring{ID: 3, Order: []netlist.NodeID{0, 1, 3, 2}}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.RingWaveguideMM(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > geom.Eps {
		t.Errorf("RingWaveguideMM = %v, want 4", got)
	}
	if _, err := res.RingWaveguideMM(9); err == nil {
		t.Error("accepted unknown ring ID")
	}
}

// Routed length always equals the Manhattan (minimum) length: the router
// never detours.
func TestNoDetours(t *testing.T) {
	app := gridApp(9, 3, 0.5)
	r := &ring.Ring{ID: 0, Order: []netlist.NodeID{0, 4, 2, 8, 6}}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalWaveguideMM-r.Perimeter(app)) > geom.Eps {
		t.Errorf("routed %v mm, Manhattan perimeter %v mm", res.TotalWaveguideMM, r.Perimeter(app))
	}
}

// The greedy corner choice must never do worse than the worst single
// orientation on a crossing-heavy instance, and the layout must be
// deterministic.
func TestDeterminism(t *testing.T) {
	app := gridApp(12, 4, 0.15)
	rings := []*ring.Ring{
		{ID: 0, Order: []netlist.NodeID{0, 5, 10, 3}},
		{ID: 1, Order: []netlist.NodeID{1, 6, 11, 2}},
		{ID: 2, Order: []netlist.NodeID{4, 9, 7}},
	}
	a, err := Route(app, rings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(app, rings)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCrossings != b.TotalCrossings || a.TotalBends != b.TotalBends ||
		math.Abs(a.TotalWaveguideMM-b.TotalWaveguideMM) > geom.Eps {
		t.Error("layout not deterministic")
	}
	for key, pl := range a.Routes {
		plb := b.Routes[key]
		if len(pl.Points) != len(plb.Points) {
			t.Fatalf("segment %v routed differently across runs", key)
		}
		for i := range pl.Points {
			if !pl.Points[i].Eq(plb.Points[i]) {
				t.Fatalf("segment %v point %d differs", key, i)
			}
		}
	}
}
