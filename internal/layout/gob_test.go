package layout

import (
	"bytes"
	"encoding/gob"
	"testing"

	"sring/internal/netlist"
	"sring/internal/ring"
)

// A gob round-trip must restore the full Result, including the unexported
// ring index behind RingWaveguideMM.
func TestResultGobRoundTrip(t *testing.T) {
	app := netlist.MWD()
	var order []netlist.NodeID
	for _, n := range app.Nodes {
		order = append(order, n.ID)
	}
	r := &ring.Ring{ID: 3, Kind: ring.Base, Order: order}
	res, err := Route(app, []*ring.Ring{r})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}

	if back.TotalCrossings != res.TotalCrossings || back.TotalBends != res.TotalBends ||
		back.TotalWaveguideMM != res.TotalWaveguideMM {
		t.Errorf("totals changed: %+v vs %+v",
			[3]interface{}{back.TotalCrossings, back.TotalBends, back.TotalWaveguideMM},
			[3]interface{}{res.TotalCrossings, res.TotalBends, res.TotalWaveguideMM})
	}
	if len(back.Routes) != len(res.Routes) {
		t.Errorf("routes count %d, want %d", len(back.Routes), len(res.Routes))
	}
	wantMM, err := res.RingWaveguideMM(3)
	if err != nil {
		t.Fatal(err)
	}
	gotMM, err := back.RingWaveguideMM(3)
	if err != nil {
		t.Fatalf("decoded result lost its ring index: %v", err)
	}
	if gotMM != wantMM {
		t.Errorf("RingWaveguideMM = %v, want %v", gotMM, wantMM)
	}
}
