// Package layout performs the physical implementation step of ring-router
// synthesis (paper Sec. III-A3): every ring segment is routed on the optical
// layer as a horizontal/vertical (L-shaped or straight) waveguide, and the
// resulting bends and waveguide crossings are counted per segment so the
// loss model can charge them to the signal paths that traverse them.
//
// The paper optimises the routing manually; this package uses a
// deterministic greedy rule — each segment picks whichever of its two
// L-shapes creates fewer crossings with the waveguides routed so far — which
// is applied identically to all methods under comparison.
package layout

import (
	"fmt"

	"sring/internal/geom"
	"sring/internal/netlist"
	"sring/internal/ring"
)

// SegKey identifies one routed waveguide segment: segment Seg of ring
// RingID.
type SegKey struct {
	RingID int
	Seg    int
}

// Result is the physical routing of a set of rings.
type Result struct {
	// Routes holds the polyline of every routed segment.
	Routes map[SegKey]geom.Polyline
	// SegBends counts 90-degree bends inside each segment's polyline.
	SegBends map[SegKey]int
	// SegCrossings counts waveguide crossings lying on each segment.
	// A single physical crossing involves two segments and is counted on
	// both, because a signal travelling either segment traverses it.
	SegCrossings map[SegKey]int
	// TotalCrossings is the number of distinct physical crossings.
	TotalCrossings int
	// TotalBends is the number of bends over all segments.
	TotalBends int
	// TotalWaveguideMM is the total routed waveguide length.
	TotalWaveguideMM float64

	rings map[int]*ring.Ring
}

// Route routes all segments of all rings. Rings must be validated and node
// IDs must resolve in app.
func Route(app *netlist.Application, rings []*ring.Ring) (*Result, error) {
	res := &Result{
		Routes:       make(map[SegKey]geom.Polyline),
		SegBends:     make(map[SegKey]int),
		SegCrossings: make(map[SegKey]int),
		rings:        make(map[int]*ring.Ring, len(rings)),
	}
	type routed struct {
		key  SegKey
		segs []geom.Segment
	}
	var done []routed

	for _, r := range rings {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("layout: %w", err)
		}
		if _, dup := res.rings[r.ID]; dup {
			return nil, fmt.Errorf("layout: duplicate ring ID %d", r.ID)
		}
		res.rings[r.ID] = r
		for i := 0; i < r.Len(); i++ {
			from, to := r.SegmentEnds(i)
			if int(from) >= len(app.Nodes) || int(to) >= len(app.Nodes) || from < 0 || to < 0 {
				return nil, fmt.Errorf("layout: ring %d references node outside application", r.ID)
			}
			a, b := app.Pos(from), app.Pos(to)
			hFirst := geom.LRoute(a, b)
			vFirst := geom.LRouteVFirst(a, b)
			count := func(pl geom.Polyline) int {
				n := 0
				for _, d := range done {
					n += geom.CrossingCount(pl.Segments(), d.segs)
				}
				return n
			}
			var pick geom.Polyline
			ch, cv := count(hFirst), count(vFirst)
			// Ties go horizontal-first. Because "horizontal first" from b
			// back to a bends at the opposite corner than from a to b,
			// out-and-back two-node rings route as proper loops.
			if cv < ch {
				pick = vFirst
			} else {
				pick = hFirst
			}
			key := SegKey{RingID: r.ID, Seg: i}
			res.Routes[key] = pick
			res.SegBends[key] = pick.Bends()
			res.TotalBends += pick.Bends()
			res.TotalWaveguideMM += pick.Length()
			done = append(done, routed{key: key, segs: pick.Segments()})
		}
	}

	// Count physical crossings between all distinct routed segment pairs.
	for i := range done {
		for j := i + 1; j < len(done); j++ {
			n := geom.CrossingCount(done[i].segs, done[j].segs)
			if n == 0 {
				continue
			}
			res.TotalCrossings += n
			res.SegCrossings[done[i].key] += n
			res.SegCrossings[done[j].key] += n
		}
	}
	return res, nil
}

// PathBends returns the number of bends a signal on path p traverses: the
// in-segment bends of its arc plus the direction changes at the node
// junctions it passes through.
func (res *Result) PathBends(p ring.Path) (int, error) {
	var pts []geom.Point
	for _, s := range p.Segs {
		pl, ok := res.Routes[SegKey{RingID: p.RingID, Seg: s}]
		if !ok {
			return 0, fmt.Errorf("layout: path references unrouted segment %d of ring %d", s, p.RingID)
		}
		if len(pts) == 0 {
			pts = append(pts, pl.Points...)
		} else {
			// The first point duplicates the previous segment's last point.
			pts = append(pts, pl.Points[1:]...)
		}
	}
	return geom.Polyline{Points: pts}.Bends(), nil
}

// PathCrossings returns the number of crossings the signal traverses along
// its arc. If both waveguides of a crossing lie on the arc, the signal
// passes the crossing twice and it is counted twice.
func (res *Result) PathCrossings(p ring.Path) (int, error) {
	n := 0
	for _, s := range p.Segs {
		key := SegKey{RingID: p.RingID, Seg: s}
		if _, ok := res.Routes[key]; !ok {
			return 0, fmt.Errorf("layout: path references unrouted segment %d of ring %d", s, p.RingID)
		}
		n += res.SegCrossings[key]
	}
	return n, nil
}

// RingWaveguideMM returns the routed length of one ring.
func (res *Result) RingWaveguideMM(ringID int) (float64, error) {
	r, ok := res.rings[ringID]
	if !ok {
		return 0, fmt.Errorf("layout: unknown ring %d", ringID)
	}
	var total float64
	for i := 0; i < r.Len(); i++ {
		total += res.Routes[SegKey{RingID: ringID, Seg: i}].Length()
	}
	return total, nil
}
