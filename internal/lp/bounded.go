package lp

// Bounded-variable simplex with warm starting.
//
// The two-phase solver in lp.go treats every variable as x >= 0 and turns
// any other bound into an explicit constraint row. That is fine for one-shot
// solves but ruinous inside branch and bound, where the thousands of node
// LPs differ from the root only in variable bounds: every node pays for a
// bigger tableau, a fresh phase-1 run to drive out artificials, and a full
// reallocation of everything.
//
// Solver keeps the problem in computational standard form instead —
//
//	minimise c.x  subject to  Ax + s = b,  lo <= (x,s) <= hi
//
// with one slack per row whose bounds encode the relation (LE: s in [0,inf),
// GE: s in (-inf,0], EQ: s = 0). Variable bounds are data, not rows, so a
// branch-and-bound child costs no extra tableau columns, and no artificial
// variables exist at all. The same Solver value is reused for every node:
// bound arrays, status flags and the kernel's scratch are allocated once and
// overwritten per solve (a per-solver arena), which is what removes the
// per-node allocation cost of the old path.
//
// The pivot loops are linear-algebra agnostic: they read reduced costs from
// Solver.d, fetch tableau columns/rows from a kernel, and tell the kernel
// when a basis exchange happened. Two kernels implement that contract:
//
//   - denseKernel (this file): the original dense Gauss-Jordan tableau.
//     Every pivot rewrites the full m x nCols block. Retained as the
//     reference implementation and for cross-checking.
//   - sparseKernel (sparse.go): the sparse revised simplex — compressed
//     sparse columns, a product-form LU factorisation of the basis, eta
//     updates between periodic refactorisations, and partial (sparse)
//     pricing updates of the reduced-cost row. The default.
//
// All pivot *selection* (entering/leaving rules, tie-breaking, Bland
// switching, the bound-flipping dual ratio test, the deterministic cost
// perturbation) lives in the Solver and is shared verbatim by both kernels,
// which is what keeps their pivot sequences — and therefore golden outputs
// and parallel determinism — aligned.
//
// Two entry points:
//
//   - SolveBounded: cold solve. Starts from the all-slack basis, restores
//     primal feasibility with a zero-objective dual simplex (no artificials,
//     no phase-1 objective), then runs the bounded primal simplex.
//   - SolveDual: warm solve from a Basis snapshot. The kernel state is
//     rebuilt by canonical refactorisation (a pure function of the basis
//     set, so every caller — sequential or speculative worker — computes
//     bit-identical state), and the dual simplex repairs the handful of
//     bound violations the caller introduced. An optimal basis stays dual
//     feasible under any bound change, which is why a branch-and-bound
//     child typically re-solves in a few pivots.
//
// Pivot selection is Dantzig pricing with smallest-index tie-breaks,
// switching to Bland's rule if the iteration count suggests cycling; the
// switch counter is reset at the start of every solve, so a warm-started
// re-solve never inherits the previous solve's cycling suspicion.

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"sring/internal/obs"
)

const (
	feasTol = 1e-7 // primal feasibility tolerance on bounds
	dualTol = 1e-9 // reduced-cost tolerance
	pivTol  = 1e-9 // smallest acceptable pivot element
)

// Basis is a compact snapshot of a simplex basis: which column is basic in
// each row and, for every nonbasic column, which of its bounds it sits at.
// It is the whole warm-start state — a few kilobytes, cheap enough to attach
// to every branch-and-bound node — and is immutable once taken.
//
// When the sparse kernel warm-starts from a Basis it memoises the canonical
// LU factorisation of the basis on the snapshot itself, so sibling
// branch-and-bound nodes (and speculative workers, which share the snapshot
// pointer) exchange the LU factor instead of each refactorising from
// scratch. The factor is a pure function of the basis set, so whether a
// consumer hits or misses the memo is invisible in the results.
type Basis struct {
	Basic   []int32 // len m: column basic in row r
	AtUpper []bool  // len nCols: nonbasic column rests at its upper bound

	// factor memoises the canonical LU factorisation of this basis set
	// (sparse kernel only). Concurrent warm starts may race to fill it;
	// both compute identical content, so either store is fine.
	factor atomic.Pointer[luFactor]
}

// Clone returns a deep copy (sharing the immutable factor memo, if any).
func (b *Basis) Clone() *Basis {
	nb := &Basis{
		Basic:   append([]int32(nil), b.Basic...),
		AtUpper: append([]bool(nil), b.AtUpper...),
	}
	nb.factor.Store(b.factor.Load())
	return nb
}

// DropFactor releases the memoised LU factor, if any. Callers that know a
// snapshot will not be warm-started again (e.g. branch and bound after both
// children of a node were explored) can call it to bound the memory held by
// open-node snapshots; a subsequent warm start simply refactorises.
func (b *Basis) DropFactor() {
	if b != nil {
		b.factor.Store(nil)
	}
}

// kernel is the linear-algebra engine under the bounded simplex: it
// maintains a representation of B^-1 applied to the problem matrix and
// serves tableau columns and rows on demand. The Solver owns all pivot
// selection and all basis bookkeeping (basis, inBasis, atUpper, xB); the
// kernel owns the matrix representation plus the derived vectors rhsBar,
// d and pert, which it must keep in sync at every pivot.
type kernel interface {
	// beginSolve resets per-solve statistics.
	beginSolve()
	// loadSlack installs the all-slack basis (B = I). Solver bookkeeping
	// (basis/inBasis/atUpper/rhsBar/d) has already been reset by the caller.
	loadSlack()
	// refactorize rebuilds the representation for the basis set in bas,
	// writes the canonical row assignment into s.basis, and recomputes
	// rhsBar and d. Returns false when the basis is numerically singular.
	// Solver bookkeeping (inBasis) is already consistent with bas.
	refactorize(bas *Basis) bool
	// column returns B^-1 A_j as a dense slice of length m, valid until the
	// next column, computeXB, pivot or refactorize call.
	column(j int) []float64
	// row returns row i of B^-1 [A|I] as a dense slice of length nCols,
	// valid until the next row, pivot or refactorize call (column calls do
	// not invalidate it).
	row(i int) []float64
	// pivot applies the basis exchange (leaving row, entering column) to
	// the representation, rhsBar, d and (when active) pert. The Solver has
	// already updated basis/inBasis/atUpper/xB, and has fetched column(enter)
	// since the previous pivot.
	pivot(leave, enter int)
	// computeXB recomputes s.xB from rhsBar and the nonbasic resting values.
	computeXB()
	// solveStats copies per-solve kernel statistics into the Solution.
	solveStats(sol *Solution)
}

// Solver solves a fixed constraint system under varying variable bounds,
// reusing all scratch state across solves.
type Solver struct {
	m       int // constraint rows
	nStruct int // structural variables
	nCols   int // nStruct + m (one slack per row)

	obj     []float64 // len nCols: structural costs, zeros for slacks
	rhs     []float64 // len m
	slackLo []float64 // len m: slack bounds encoding the row relation
	slackHi []float64

	// Row-mutation state (see append.go). cons is the solver-owned
	// constraint list — a copy of the slice header taken at construction,
	// appended to by AppendRows — and objStruct the structural objective,
	// both retained so the kernel can be rebuilt after a row change.
	// newKernel is the constructor the solver was built with, so a rebuilt
	// kernel is the same engine; baseRows is the construction-time row
	// count, the floor TruncateRows enforces.
	cons      []Constraint
	objStruct []float64
	newKernel func(*Solver, *Problem) kernel
	baseRows  int

	// Scratch arena, allocated once in the constructor and overwritten per
	// solve.
	d       []float64 // len nCols: reduced costs of the current basis
	rhsBar  []float64 // len m: B^-1 b, maintained alongside the pivots
	xB      []float64 // len m: value of the basic variable of each row
	basis   []int32   // len m
	atUpper []bool    // len nCols
	inBasis []bool    // len nCols
	lo, hi  []float64 // len nCols: bounds of the current solve

	k kernel // linear-algebra engine (sparse by default)

	// pert is a second reduced-cost row holding a tiny deterministic cost
	// perturbation, active only while usePert is set (the dual simplex
	// phases). It breaks dual degeneracy: columns whose true reduced cost is
	// zero — the hundreds of cost-free assignment binaries in the wavelength
	// models — otherwise all tie at ratio zero and the dual walk makes no
	// objective progress, cycling until the Bland guard crawls it home. The
	// row transforms under pivots exactly like the true cost row, the true
	// row is never touched, and the perturbation is switched off before the
	// primal clean-up certifies the true optimum. pert0 keeps the initial
	// perturbation pattern so the sparse kernel can rebuild the transformed
	// row exactly at a refactorisation (pert = pert0 - y'.A with
	// B'y' = pert0_B).
	pert    []float64
	pert0   []float64
	usePert bool

	// blandAfterOverride, when positive, replaces the computed Bland-switch
	// iteration threshold. Test hook for the anti-cycling path; note the
	// threshold applies per solve — every SolveBounded/SolveDual call
	// starts a fresh iteration counter, so a warm-started re-solve never
	// inherits the previous solve's cycling suspicion.
	blandAfterOverride int

	// refactorEveryOverride, when positive, replaces the sparse kernel's
	// default refactorisation interval. Test hook for exercising
	// refactorisation-boundary behaviour.
	refactorEveryOverride int

	// interrupt, when non-nil, is polled between pivots (at the deadline
	// cadence): once it is closed, the current and every subsequent solve
	// stops with IterLimit, exactly as if the deadline had passed. Set via
	// SetInterrupt; used to propagate context cancellation into
	// long-running pivot loops.
	interrupt <-chan struct{}

	// Aggregate telemetry handles, resolved once per registry (the process
	// default until SetRegistry) so the per-solve recording is a few atomic
	// adds with no lookups or allocation. solveStart is stamped at each
	// solve entry and consumed by finish.
	solveH        *obs.Histogram // lp.solve.ns: wall time per completed solve
	pivotsH       *obs.Histogram // lp.solve.pivots: total pivots per solve
	refactorH     *obs.Histogram // lp.sparse.refactor.ns: per LU factorisation
	ftSpikeH      *obs.Histogram // lp.ft.spike.nnz: spike size per FT update
	sparseSolvesC *obs.Counter   // lp.sparse.solves
	rowsAppendedC *obs.Counter   // lp.rows.appended
	solveStart    time.Time
}

// SetInterrupt installs a cancellation channel (typically a
// context.Context's Done channel) that the pivot loop polls alongside the
// deadline. A nil channel disables the check.
func (s *Solver) SetInterrupt(ch <-chan struct{}) { s.interrupt = ch }

// SetRegistry redirects the solver's aggregate telemetry — lp.solve.ns,
// lp.solve.pivots and lp.sparse.refactor.ns — to reg (nil: the process
// default, which is also where a fresh Solver records).
func (s *Solver) SetRegistry(reg *obs.Registry) {
	r := obs.OrDefault(reg)
	s.solveH = r.Histogram("lp.solve.ns")
	s.pivotsH = r.Histogram("lp.solve.pivots")
	s.refactorH = r.Histogram("lp.sparse.refactor.ns")
	s.ftSpikeH = r.Histogram("lp.ft.spike.nnz")
	s.sparseSolvesC = r.Counter("lp.sparse.solves")
	s.rowsAppendedC = r.Counter("lp.rows.appended")
}

// NewSolver validates the problem and builds the reusable solve state with
// the Forrest-Tomlin sparse revised-simplex kernel (see forrest_tomlin.go),
// the default engine.
func NewSolver(p *Problem) (*Solver, error) {
	s, err := newSolverCore(p)
	if err != nil {
		return nil, err
	}
	s.newKernel = func(s *Solver, p *Problem) kernel { return newFTKernel(s, p) }
	s.k = s.newKernel(s, p)
	return s, nil
}

// NewEtaSolver is NewSolver with the product-form-eta sparse kernel (see
// sparse.go) — the previous default, kept as a cross-checked oracle: at
// refactorEveryOverride=1 its pivot sequence is bit-identical to the
// Forrest-Tomlin kernel's, because both reinstall the identical canonical
// factor after every pivot.
func NewEtaSolver(p *Problem) (*Solver, error) {
	s, err := newSolverCore(p)
	if err != nil {
		return nil, err
	}
	s.newKernel = func(s *Solver, p *Problem) kernel { return newSparseKernel(s, p) }
	s.k = s.newKernel(s, p)
	return s, nil
}

// NewDenseSolver is NewSolver with the dense full-tableau kernel: every
// pivot rewrites the whole (m+1) x nCols tableau. It is the reference
// implementation the sparse kernel is cross-checked against and the escape
// hatch for numerically hostile problems; both kernels share every pivot
// rule, so their pivot sequences coincide up to floating-point tie noise.
func NewDenseSolver(p *Problem) (*Solver, error) {
	s, err := newSolverCore(p)
	if err != nil {
		return nil, err
	}
	s.newKernel = func(s *Solver, p *Problem) kernel { return newDenseKernel(s, p) }
	s.k = s.newKernel(s, p)
	return s, nil
}

// newSolverCore builds the kernel-independent solve state.
func newSolverCore(p *Problem) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := len(p.Constraints), p.NumVars
	s := &Solver{
		m:       m,
		nStruct: n,
		nCols:   n + m,
		obj:     make([]float64, n+m),
		rhs:     make([]float64, m),
		slackLo: make([]float64, m),
		slackHi: make([]float64, m),
		d:       make([]float64, n+m),
		rhsBar:  make([]float64, m),
		xB:      make([]float64, m),
		basis:   make([]int32, m),
		atUpper: make([]bool, n+m),
		inBasis: make([]bool, n+m),
		lo:      make([]float64, n+m),
		hi:      make([]float64, n+m),
		pert:    make([]float64, n+m),
		pert0:   make([]float64, n+m),
	}
	s.SetRegistry(nil)
	s.cons = append([]Constraint(nil), p.Constraints...)
	s.baseRows = m
	s.objStruct = make([]float64, n)
	if p.Objective != nil {
		copy(s.obj, p.Objective)
		copy(s.objStruct, p.Objective)
	}
	for i, c := range p.Constraints {
		s.rhs[i] = c.RHS
		switch c.Rel {
		case LE:
			s.slackLo[i], s.slackHi[i] = 0, math.Inf(1)
		case GE:
			s.slackLo[i], s.slackHi[i] = math.Inf(-1), 0
		case EQ:
			s.slackLo[i], s.slackHi[i] = 0, 0
		}
	}
	return s, nil
}

// setBounds installs the solve's variable bounds (nil means the package
// default [0, inf) for every structural variable) and reports a variable
// whose bounds cross, which proves infeasibility outright.
func (s *Solver) setBounds(lo, hi []float64) (feasible bool, err error) {
	if lo != nil && len(lo) != s.nStruct {
		return false, fmt.Errorf("lp: lower bounds have length %d, want %d", len(lo), s.nStruct)
	}
	if hi != nil && len(hi) != s.nStruct {
		return false, fmt.Errorf("lp: upper bounds have length %d, want %d", len(hi), s.nStruct)
	}
	for j := 0; j < s.nStruct; j++ {
		l, h := 0.0, math.Inf(1)
		if lo != nil {
			l = lo[j]
		}
		if hi != nil {
			h = hi[j]
		}
		if math.IsInf(l, -1) {
			return false, fmt.Errorf("lp: variable %d has no finite lower bound", j)
		}
		s.lo[j], s.hi[j] = l, h
		if l > h+feasTol {
			return false, nil
		}
	}
	for i := 0; i < s.m; i++ {
		s.lo[s.nStruct+i], s.hi[s.nStruct+i] = s.slackLo[i], s.slackHi[i]
	}
	return true, nil
}

// boundVal returns the resting value of nonbasic column j.
func (s *Solver) boundVal(j int) float64 {
	if s.atUpper[j] {
		return s.hi[j]
	}
	return s.lo[j]
}

// loadSlackBasis installs the all-slack basis: every structural variable
// rests at its lower bound (or its upper bound when only that is finite),
// reduced costs are the raw objective, and the kernel holds the pristine
// problem under B = I.
func (s *Solver) loadSlackBasis() {
	for i := 0; i < s.m; i++ {
		s.basis[i] = int32(s.nStruct + i)
	}
	copy(s.d, s.obj)
	for j := 0; j < s.nCols; j++ {
		s.atUpper[j] = math.IsInf(s.lo[j], -1)
		s.inBasis[j] = false
	}
	for i := 0; i < s.m; i++ {
		s.inBasis[s.nStruct+i] = true
		s.atUpper[s.nStruct+i] = false
	}
	s.initRHSBar()
	s.k.loadSlack()
	s.k.computeXB()
}

// initRHSBar resets rhsBar to the pristine right-hand side; subsequent
// pivots keep it equal to B^-1 b.
func (s *Solver) initRHSBar() {
	copy(s.rhsBar, s.rhs)
}

// pertEps scales the dual-degeneracy-breaking cost perturbation: far above
// dualTol so perturbed reduced costs register as nonzero, far below the unit
// cost scale so the perturbed optimum sits a primal clean-up away from the
// true one.
const pertEps = 1e-7

// initPert arms the perturbation row for the current basis/bound statuses:
// +eta for an at-lower column, -eta for an at-upper column (preserving dual
// feasibility by construction), zero for basic and fixed columns. The
// magnitudes vary deterministically by column index so ratio ties break.
func (s *Solver) initPert() {
	s.usePert = true
	for j := 0; j < s.nCols; j++ {
		switch {
		case s.inBasis[j] || s.lo[j] == s.hi[j]:
			s.pert[j] = 0
		case s.atUpper[j]:
			s.pert[j] = -pertEps * float64(1+j%61)
		default:
			s.pert[j] = pertEps * float64(1+j%61)
		}
	}
	copy(s.pert0, s.pert)
}

// refactorise rebuilds the solve state for the given basis by canonical
// refactorisation: the kernel eliminates basic columns in ascending column
// order with partial (largest-magnitude, then lowest-row) pivoting. The
// result is a pure function of the basis set and the pristine problem —
// independent of the pivot history that produced the basis — which is what
// keeps warm-started solves bit-identical between the sequential search and
// speculative workers. Returns false if the basis is numerically singular.
func (s *Solver) refactorise(bas *Basis) bool {
	if len(bas.Basic) != s.m || len(bas.AtUpper) != s.nCols {
		return false
	}
	for j := 0; j < s.nCols; j++ {
		s.inBasis[j] = false
	}
	for _, c := range bas.Basic {
		if c < 0 || int(c) >= s.nCols || s.inBasis[c] {
			return false
		}
		s.inBasis[c] = true
	}
	if !s.k.refactorize(bas) {
		return false
	}
	copy(s.atUpper, bas.AtUpper)
	// A nonbasic column whose recorded bound is infinite (a GE slack
	// recorded at a -inf lower, say) cannot rest there; snap it to the
	// finite side.
	for j := 0; j < s.nCols; j++ {
		if s.inBasis[j] {
			continue
		}
		if s.atUpper[j] && math.IsInf(s.hi[j], 1) {
			s.atUpper[j] = false
		}
		if !s.atUpper[j] && math.IsInf(s.lo[j], -1) {
			s.atUpper[j] = true
		}
	}
	s.k.computeXB()
	return true
}

// Basis snapshots the basis of the most recent solve. The snapshot is
// self-contained: mutating the Solver afterwards does not affect it.
func (s *Solver) Basis() *Basis {
	return &Basis{
		Basic:   append([]int32(nil), s.basis...),
		AtUpper: append([]bool(nil), s.atUpper...),
	}
}

// iterState carries the shared pivot-loop bookkeeping of one solve.
type iterState struct {
	deadline    time.Time
	interrupt   <-chan struct{}
	maxIter     int
	blandAfter  int
	iter        int
	pivots      int
	blandPivots int
	// deadlineHit: the last step() returned false because the wall-clock
	// budget was exhausted — the deadline passed or the interrupt channel
	// closed — rather than the pivot cap. Callers use it to tell "out of
	// time" from "cycling suspicion".
	deadlineHit bool
}

func (s *Solver) newIterState(deadline time.Time) iterState {
	st := iterState{
		deadline:   deadline,
		interrupt:  s.interrupt,
		maxIter:    200 * (s.m + s.nCols + 10),
		blandAfter: blandTriggerFactor * (s.m + s.nCols),
	}
	if s.blandAfterOverride > 0 {
		st.blandAfter = s.blandAfterOverride
	}
	return st
}

// step advances the shared iteration accounting and reports whether the
// loop may continue (false: iteration limit, deadline, or interrupt).
func (st *iterState) step() bool {
	if st.iter >= st.maxIter {
		return false
	}
	if st.iter%16 == 0 {
		if !st.deadline.IsZero() && time.Now().After(st.deadline) {
			st.deadlineHit = true
			return false
		}
		if st.interrupt != nil {
			select {
			case <-st.interrupt:
				st.deadlineHit = true
				return false
			default:
			}
		}
	}
	st.iter++
	return true
}

func (st *iterState) bland() bool { return st.iter > st.blandAfter }

// primalSimplex runs the bounded primal method from the current (primal
// feasible) state until optimality, unboundedness, or a limit.
func (s *Solver) primalSimplex(st *iterState) Status {
	for {
		if !st.step() {
			return IterLimit
		}
		bland := st.bland()
		// Entering column: most negative "effective" reduced cost — d_j
		// for an at-lower column (wants to rise), -d_j for an at-upper
		// column (wants to fall).
		enter, bestScore := -1, dualTol
		for j := 0; j < s.nCols; j++ {
			if s.inBasis[j] || s.lo[j] == s.hi[j] {
				continue // fixed columns can never move
			}
			d := s.d[j]
			var score float64
			if s.atUpper[j] {
				score = d
			} else {
				score = -d
			}
			if score > bestScore {
				enter, bestScore = j, score
				if bland {
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		sigma := 1.0
		if s.atUpper[enter] {
			sigma = -1
		}
		col := s.k.column(enter)
		// Ratio test: the entering variable moves by sigma*t, t >= 0.
		tMax := s.hi[enter] - s.lo[enter] // own-range bound flip
		leave, leaveToUpper := -1, false
		for i := 0; i < s.m; i++ {
			g := col[i] * sigma
			bi := s.basis[i]
			var t float64
			var toUpper bool
			switch {
			case g > eps: // basic value decreases toward its lower bound
				if math.IsInf(s.lo[bi], -1) {
					continue
				}
				t = (s.xB[i] - s.lo[bi]) / g
			case g < -eps: // basic value increases toward its upper bound
				if math.IsInf(s.hi[bi], 1) {
					continue
				}
				t = (s.hi[bi] - s.xB[i]) / -g
				toUpper = true
			default:
				continue
			}
			if t < 0 {
				t = 0 // tolerance slack: never step backwards
			}
			// Within the eps tie band prefer the larger |pivot| (numerical
			// stability and faster escape from degenerate vertices), then
			// the smaller basis column index; under Bland, strictly the
			// smallest index (the anti-cycling guarantee).
			if t < tMax-eps {
				tMax, leave, leaveToUpper = t, i, toUpper
			} else if t < tMax+eps && leave >= 0 {
				better := false
				if bland {
					better = int(s.basis[i]) < int(s.basis[leave])
				} else {
					gi, gl := math.Abs(col[i]), math.Abs(col[leave])
					better = gi > gl+eps || (gi > gl-eps && int(s.basis[i]) < int(s.basis[leave]))
				}
				if better {
					tMax, leave, leaveToUpper = t, i, toUpper
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		st.pivots++
		if bland {
			st.blandPivots++
		}
		if leave < 0 {
			// Bound flip: the entering variable crosses its whole range.
			delta := sigma * tMax
			for i := 0; i < s.m; i++ {
				if aij := col[i]; aij != 0 {
					s.xB[i] -= aij * delta
				}
			}
			s.atUpper[enter] = !s.atUpper[enter]
			continue
		}
		enterVal := s.boundVal(enter) + sigma*tMax
		delta := sigma * tMax
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			if aij := col[i]; aij != 0 {
				s.xB[i] -= aij * delta
			}
		}
		out := s.basis[leave]
		s.inBasis[out] = false
		s.atUpper[out] = leaveToUpper
		s.inBasis[enter] = true
		s.basis[leave] = int32(enter)
		s.xB[leave] = enterVal
		s.k.pivot(leave, enter)
	}
}

// dualSimplex runs the bounded dual method from the current (dual feasible)
// state until primal feasibility — i.e. optimality — or proven primal
// infeasibility, or a limit. With zeroCosts the ratio test treats every
// reduced cost as zero, turning the routine into a pure feasibility search
// (the cold solve's phase 1); the reduced-cost row is still updated by each
// pivot so the true objective is ready for phase 2.
func (s *Solver) dualSimplex(st *iterState, zeroCosts bool) Status {
	for {
		if !st.step() {
			return IterLimit
		}
		// The cost perturbation already breaks the dual ratio ties that make
		// cycling possible — every pivot then strictly improves the perturbed
		// dual objective — so the Bland switch (whose smallest-index rule
		// abandons the large-|pivot| selection and crawls on degenerate
		// models) stays off while it is active.
		bland := st.bland() && !s.usePert
		// Leaving row: largest bound violation (Bland: lowest row index).
		leave, worst := -1, feasTol
		var target float64 // the bound the leaving variable is pushed to
		for i := 0; i < s.m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.xB[i]; v > worst {
				leave, worst, target = i, v, s.lo[bi]
				if bland {
					break
				}
			}
			if v := s.xB[i] - s.hi[bi]; v > worst {
				leave, worst, target = i, v, s.hi[bi]
				if bland {
					break
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		need := s.xB[leave] - target // entering delta must satisfy delta*a = need
		row := s.k.row(leave)
		// Entering column via the bound-flipping ratio test. The min-ratio
		// column pivots in — unless its own range cannot absorb the whole
		// violation, in which case it flips to its other bound (shrinking the
		// violation by |a|*range, a strict improvement) and the scan repeats
		// on the remainder. Without the flips a boxed column — a binary, say —
		// would enter the basis beyond its upper bound, manufacturing a fresh
		// violation for the next iteration to chase; on 0/1-dense models that
		// churn dominates the solve. Flips preserve dual feasibility because
		// every flipped column's ratio is no worse than the eventual pivot's,
		// so the pivot's cost update restores their sign condition.
		enter := -1
		for {
			enter = -1
			bestRatio := math.Inf(1)
			for j := 0; j < s.nCols; j++ {
				if s.inBasis[j] || s.lo[j] == s.hi[j] {
					continue // fixed columns can never compensate
				}
				aij := row[j]
				if math.Abs(aij) <= pivTol {
					continue
				}
				delta := need / aij
				// Direction legality: an at-lower column may only increase,
				// an at-upper column only decrease.
				if s.atUpper[j] {
					if delta > -eps {
						continue
					}
				} else if delta < eps {
					continue
				}
				var ratio float64
				if !zeroCosts {
					d := s.d[j]
					if s.usePert {
						d += s.pert[j]
					}
					ratio = math.Abs(d) / math.Abs(aij)
				}
				// Within the eps tie band prefer the larger |pivot| — with
				// zero costs every ratio ties, so this is the whole selection
				// rule, and it is what keeps the phase-1 feasibility search
				// from crawling through degenerate tiny-pivot columns. Under
				// Bland, strictly the smallest index.
				better := ratio < bestRatio-eps
				if !better && ratio < bestRatio+eps {
					if enter < 0 {
						better = true
					} else if bland {
						better = j < enter
					} else {
						ae := math.Abs(row[enter])
						aj := math.Abs(aij)
						better = aj > ae+eps || (aj > ae-eps && j < enter)
					}
				}
				if better {
					enter, bestRatio = j, ratio
					if bland && zeroCosts {
						// All ratios tie at zero, so the first (lowest-index)
						// eligible column already attains the minimum.
						break
					}
				}
			}
			if enter < 0 {
				// The violated row admits no compensating column: primal
				// infeasible (the row is a certificate).
				return Infeasible
			}
			span := s.hi[enter] - s.lo[enter]
			if zeroCosts || math.IsInf(span, 1) || math.Abs(need/row[enter]) <= span+eps {
				// The column can absorb the remaining violation — or the
				// solve is the zero-cost feasibility search, where flips are
				// unsafe: with no dual objective to make monotone progress,
				// flip/unflip oscillations can cycle outside the reach of
				// Bland's guarantee (which covers basis exchanges only).
				break
			}
			// Bound flip: move the column across its whole range and re-scan.
			flip := span
			if need/row[enter] < 0 {
				flip = -span
			}
			fcol := s.k.column(enter)
			for i := 0; i < s.m; i++ {
				if aij := fcol[i]; aij != 0 {
					s.xB[i] -= aij * flip
				}
			}
			s.atUpper[enter] = !s.atUpper[enter]
			need -= row[enter] * flip
			st.pivots++
			if bland {
				st.blandPivots++
			}
			if !st.step() {
				return IterLimit
			}
		}
		st.pivots++
		if bland {
			st.blandPivots++
		}
		delta := need / row[enter]
		enterVal := s.boundVal(enter) + delta
		col := s.k.column(enter)
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			if aij := col[i]; aij != 0 {
				s.xB[i] -= aij * delta
			}
		}
		out := s.basis[leave]
		s.inBasis[out] = false
		s.atUpper[out] = target == s.hi[out] && !math.IsInf(s.hi[out], 1)
		s.inBasis[enter] = true
		s.basis[leave] = int32(enter)
		s.xB[leave] = enterVal
		s.k.pivot(leave, enter)
	}
}

// extract builds the Solution for the current optimal state.
func (s *Solver) extract() *Solution {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		if !s.inBasis[j] {
			x[j] = s.boundVal(j)
		}
	}
	for i := 0; i < s.m; i++ {
		if b := int(s.basis[i]); b < s.nStruct {
			x[b] = s.xB[i]
		}
	}
	var obj float64
	for j := 0; j < s.nStruct; j++ {
		obj += s.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}
}

// dualFeasible reports whether every nonbasic column's reduced cost has the
// sign its resting bound requires (at-lower: d >= 0, at-upper: d <= 0).
func (s *Solver) dualFeasible() bool {
	for j := 0; j < s.nCols; j++ {
		if s.inBasis[j] || s.lo[j] == s.hi[j] {
			continue
		}
		if s.atUpper[j] {
			if s.d[j] > dualTol {
				return false
			}
		} else if s.d[j] < -dualTol {
			return false
		}
	}
	return true
}

// primalFeasible reports whether every basic value respects its bounds.
func (s *Solver) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		if s.xB[i] < s.lo[bi]-feasTol || s.xB[i] > s.hi[bi]+feasTol {
			return false
		}
	}
	return true
}

// SolveBounded solves min c.x subject to the Solver's constraints and
// lo <= x <= hi, from scratch. nil bound slices mean the default [0, inf)
// for every variable. The returned error is non-nil only for malformed
// bounds; infeasibility and unboundedness are reported via Status.
func (s *Solver) SolveBounded(lo, hi []float64, deadline time.Time) (*Solution, error) {
	s.solveStart = time.Now()
	feasible, err := s.setBounds(lo, hi)
	if err != nil {
		return nil, err
	}
	s.k.beginSolve()
	if !feasible {
		return s.finish(&Solution{Status: Infeasible}), nil
	}
	s.loadSlackBasis()
	st := s.newIterState(deadline)

	// Phase 1 restores primal feasibility without artificial variables. When
	// the all-slack basis is already dual feasible — true whenever no cost
	// pulls a variable away from its resting bound, which holds for every
	// minimise-nonnegative-costs model this repo builds — the true-cost dual
	// simplex goes straight at the optimum, with the bound-flipping ratio
	// test keeping boxed columns inside their ranges. Otherwise fall back to
	// the zero-cost feasibility search (no flips: without a dual objective
	// they can oscillate).
	if !s.primalFeasible() {
		zeroCosts := !s.dualFeasible()
		if !zeroCosts {
			s.initPert()
		}
		status := s.dualSimplex(&st, zeroCosts)
		s.usePert = false
		switch status {
		case Infeasible:
			return s.finish(&Solution{Status: Infeasible, Phase1Pivots: st.pivots, BlandPivots: st.blandPivots}), nil
		case IterLimit:
			return s.finish(&Solution{Status: IterLimit, Phase1Pivots: st.pivots, BlandPivots: st.blandPivots}), nil
		}
	}
	p1 := st.pivots
	st.pivots = 0

	// Phase 2: bounded primal simplex on the true objective.
	status := s.primalSimplex(&st)
	sol := &Solution{Status: status, Phase1Pivots: p1, Phase2Pivots: st.pivots, BlandPivots: st.blandPivots}
	if status == Optimal {
		opt := s.extract()
		sol.X, sol.Objective = opt.X, opt.Objective
	}
	return s.finish(sol), nil
}

// SolveDual re-solves the problem under new bounds, warm-starting from a
// basis snapshot (typically the optimal basis of a parent branch-and-bound
// node). ok is false when the snapshot cannot be used — wrong shape or a
// numerically singular refactorisation — in which case the caller should
// fall back to SolveBounded; the Solver state is then unspecified but valid
// for a subsequent solve. On ok, the Solution reports the solve through the
// warm-start fields: DualPivots (plus any primal clean-up pivots in
// Phase2Pivots) and WarmStarted.
func (s *Solver) SolveDual(bas *Basis, lo, hi []float64, deadline time.Time) (sol *Solution, ok bool, err error) {
	if bas == nil {
		return nil, false, nil
	}
	s.solveStart = time.Now()
	feasible, err := s.setBounds(lo, hi)
	if err != nil {
		return nil, false, err
	}
	s.k.beginSolve()
	if !feasible {
		return s.finish(&Solution{Status: Infeasible, WarmStarted: true}), true, nil
	}
	if !s.refactorise(bas) {
		return nil, false, nil
	}
	st := s.newIterState(deadline)
	// A warm re-solve after one or two bound changes should take a handful
	// of pivots. Cap the dual walk well below the general iteration limit:
	// on dual-degenerate models the walk can stall in zero-progress pivots,
	// and a cold two-phase solve is far cheaper than riding the Bland
	// anti-cycling guard to completion. The cap is a pivot count, so the
	// fallback decision is deterministic.
	if pivotCap := 4*s.m + 100; st.maxIter > pivotCap {
		st.maxIter = pivotCap
	}

	s.initPert()
	status := s.dualSimplex(&st, false)
	s.usePert = false
	if status == IterLimit && !st.deadlineHit {
		return nil, false, nil // stalled, not out of time: fall back cold
	}
	dualPivots := st.pivots
	st.pivots = 0
	st.maxIter = 200 * (s.m + s.nCols + 10) // lift the dual cap for clean-up
	if status == Optimal {
		// The dual run maintained dual feasibility only within tolerance;
		// a primal clean-up pass certifies optimality (usually 0 pivots).
		status = s.primalSimplex(&st)
	}
	sol = &Solution{
		Status:       status,
		DualPivots:   dualPivots,
		Phase2Pivots: st.pivots,
		BlandPivots:  st.blandPivots,
		WarmStarted:  true,
	}
	if status == Optimal {
		opt := s.extract()
		sol.X, sol.Objective = opt.X, opt.Objective
	}
	return s.finish(sol), true, nil
}

// finish stamps kernel statistics onto the solution and records the solve
// into the aggregate registry (duration and total pivot count).
func (s *Solver) finish(sol *Solution) *Solution {
	s.k.solveStats(sol)
	s.solveH.RecordSince(s.solveStart)
	s.pivotsH.Record(int64(sol.Phase1Pivots + sol.Phase2Pivots + sol.DualPivots))
	if sol.Sparse {
		s.sparseSolvesC.Add(1)
	}
	return sol
}

// NumVars returns the structural variable count the Solver was built for.
func (s *Solver) NumVars() int { return s.nStruct }

// denseKernel is the original dense Gauss-Jordan engine: the full
// m x nCols tableau B^-1 [A|I] is materialised and every pivot rewrites all
// of it (plus the reduced-cost rows). Simple and predictable, but each
// pivot costs O(m*nCols) regardless of sparsity.
type denseKernel struct {
	s     *Solver
	rows  [][]float64 // m x nStruct pristine structural coefficients
	a     [][]float64 // m x nCols tableau
	cells []float64   // backing storage for a
	col   []float64   // len m: column scratch handed to the pivot loops
	perm  []int32     // len m: refactorisation scratch
}

func newDenseKernel(s *Solver, p *Problem) *denseKernel {
	m, n := s.m, s.nStruct
	k := &denseKernel{
		s:    s,
		col:  make([]float64, m),
		perm: make([]int32, m),
	}
	k.rows = make([][]float64, m)
	rowCells := make([]float64, m*n)
	for i, c := range p.Constraints {
		k.rows[i] = rowCells[i*n : (i+1)*n]
		for v, coeff := range c.Coeffs {
			k.rows[i][v] = coeff
		}
	}
	k.a = make([][]float64, m)
	k.cells = make([]float64, m*s.nCols)
	for i := range k.a {
		k.a[i] = k.cells[i*s.nCols : (i+1)*s.nCols]
	}
	return k
}

func (k *denseKernel) beginSolve() {}

// fillPristine loads A|I into the tableau.
func (k *denseKernel) fillPristine() {
	s := k.s
	for i := 0; i < s.m; i++ {
		row := k.a[i]
		copy(row, k.rows[i])
		for j := s.nStruct; j < s.nCols; j++ {
			row[j] = 0
		}
		row[s.nStruct+i] = 1
	}
}

func (k *denseKernel) loadSlack() { k.fillPristine() }

// pivotTableau performs a Gauss-Jordan pivot on (row, col) over the
// coefficient columns, the reduced-cost row(s) and rhsBar.
func (k *denseKernel) pivotTableau(row, col int) {
	s := k.s
	pr := k.a[row]
	inv := 1 / pr[col]
	for j := 0; j < s.nCols; j++ {
		pr[j] *= inv
	}
	pr[col] = 1
	s.rhsBar[row] *= inv
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		f := k.a[i][col]
		if f == 0 {
			continue
		}
		ri := k.a[i]
		for j := 0; j < s.nCols; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		s.rhsBar[i] -= f * s.rhsBar[row]
	}
	if f := s.d[col]; f != 0 {
		for j := 0; j < s.nCols; j++ {
			s.d[j] -= f * pr[j]
		}
		s.d[col] = 0
	}
	if s.usePert {
		if f := s.pert[col]; f != 0 {
			for j := 0; j < s.nCols; j++ {
				s.pert[j] -= f * pr[j]
			}
			s.pert[col] = 0
		}
	}
}

func (k *denseKernel) refactorize(bas *Basis) bool {
	s := k.s
	k.fillPristine()
	copy(s.d, s.obj)
	s.initRHSBar()

	// Eliminate basic columns in ascending order; perm[r] < 0 marks rows
	// still available as pivot rows.
	for i := range k.perm {
		k.perm[i] = -1
	}
	done := 0
	for j := 0; j < s.nCols && done < s.m; j++ {
		if !s.inBasis[j] {
			continue
		}
		best, bestAbs := -1, pivTol
		for r := 0; r < s.m; r++ {
			if k.perm[r] >= 0 {
				continue
			}
			if abs := math.Abs(k.a[r][j]); abs > bestAbs {
				best, bestAbs = r, abs
			}
		}
		if best < 0 {
			return false // singular within tolerance
		}
		k.pivotTableau(best, j)
		k.perm[best] = int32(j)
		done++
	}
	if done != s.m {
		return false
	}
	for r := 0; r < s.m; r++ {
		s.basis[r] = k.perm[r]
	}
	return true
}

func (k *denseKernel) column(j int) []float64 {
	for i := 0; i < k.s.m; i++ {
		k.col[i] = k.a[i][j]
	}
	return k.col
}

func (k *denseKernel) row(i int) []float64 { return k.a[i] }

func (k *denseKernel) pivot(leave, enter int) { k.pivotTableau(leave, enter) }

// computeXB recomputes the basic values from rhsBar (B^-1 b) and the
// current nonbasic resting values: xB[i] = rhsBar[i] - sum over nonbasic j
// of a[i][j] * x_j. The tableau rows must already be in basis form (B^-1 A).
func (k *denseKernel) computeXB() {
	s := k.s
	copy(s.xB, s.rhsBar)
	for j := 0; j < s.nCols; j++ {
		if s.inBasis[j] {
			continue
		}
		v := s.boundVal(j)
		if v == 0 {
			continue
		}
		for i := 0; i < s.m; i++ {
			if aij := k.a[i][j]; aij != 0 {
				s.xB[i] -= aij * v
			}
		}
	}
}

func (k *denseKernel) solveStats(*Solution) {}
