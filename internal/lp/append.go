package lp

// Row mutation and tableau extraction: the API the branch-and-cut layer in
// internal/milp is built on.
//
// A cutting plane is a row appended to an already-solved problem. The
// append keeps every existing column index stable — the slack of row i is
// column nStruct+i, so new slacks take the columns past the old ones — and
// the prior optimal basis, extended with the new slacks basic, remains a
// valid (dual-feasible, primal-violated exactly on the new rows) starting
// point: SolveDual re-enters from it and drives the cut slacks feasible in
// a handful of pivots instead of re-solving cold. Rebuilding the kernel
// costs one CSR/CSC pass plus the refactorisation the changed matrix
// signature forces anyway — the same order as a single periodic
// refactorisation.
//
// The tableau accessors below read the simplex state left by the most
// recent solve; the Gomory separator derives its cuts from TableauRow
// (sparse BTRAN against the current Forrest-Tomlin factors) plus the basis
// heading and bound-status accessors.

import (
	"fmt"
	"math"
)

// validateRow checks a constraint against the solver's structural width.
func (s *Solver) validateRow(c *Constraint) error {
	for v := range c.Coeffs {
		if v < 0 || v >= s.nStruct {
			return fmt.Errorf("lp: row references variable %d, want [0,%d)", v, s.nStruct)
		}
	}
	if c.Rel != LE && c.Rel != GE && c.Rel != EQ {
		return fmt.Errorf("lp: row has unknown relation %d", c.Rel)
	}
	return nil
}

// AppendRows adds constraint rows to the problem and rebuilds the solve
// state. Existing column indices are unchanged (row i's slack stays column
// nStruct+i); the new rows' slacks occupy the columns past the old ones.
// Any Basis snapshot taken before the append is shape-stale — extend it
// with ExtendBasis before warm-starting from it. The rows are copied
// shallowly; callers must not mutate their Coeffs maps afterwards.
func (s *Solver) AppendRows(rows []Constraint) error {
	if len(rows) == 0 {
		return nil
	}
	for i := range rows {
		if err := s.validateRow(&rows[i]); err != nil {
			return err
		}
	}
	s.cons = append(s.cons, rows...)
	s.reshape()
	if s.rowsAppendedC != nil {
		s.rowsAppendedC.Add(int64(len(rows)))
	}
	return nil
}

// TruncateRows drops every row past the first n, undoing appends. n may
// not cut into the construction-time rows (n >= BaseRows) — the solver
// owns appended rows only.
func (s *Solver) TruncateRows(n int) error {
	if n < s.baseRows || n > len(s.cons) {
		return fmt.Errorf("lp: TruncateRows(%d) out of range [%d,%d]", n, s.baseRows, len(s.cons))
	}
	if n == len(s.cons) {
		return nil
	}
	s.cons = s.cons[:n]
	s.reshape()
	return nil
}

// reshape rebuilds the row-dimensioned solve state and the kernel for the
// current constraint list. Structural data (objective, variable count) is
// untouched; the fresh kernel's matrix signature no longer matches any
// memoised factor, so the next solve refactorises from pristine data.
func (s *Solver) reshape() {
	m := len(s.cons)
	s.m = m
	s.nCols = s.nStruct + m
	s.rhs = make([]float64, m)
	s.slackLo = make([]float64, m)
	s.slackHi = make([]float64, m)
	for i := range s.cons {
		c := &s.cons[i]
		s.rhs[i] = c.RHS
		switch c.Rel {
		case LE:
			s.slackLo[i], s.slackHi[i] = 0, math.Inf(1)
		case GE:
			s.slackLo[i], s.slackHi[i] = math.Inf(-1), 0
		case EQ:
			s.slackLo[i], s.slackHi[i] = 0, 0
		}
	}
	s.obj = make([]float64, s.nCols)
	copy(s.obj, s.objStruct)
	s.d = make([]float64, s.nCols)
	s.rhsBar = make([]float64, m)
	s.xB = make([]float64, m)
	s.basis = make([]int32, m)
	s.atUpper = make([]bool, s.nCols)
	s.inBasis = make([]bool, s.nCols)
	s.lo = make([]float64, s.nCols)
	s.hi = make([]float64, s.nCols)
	s.pert = make([]float64, s.nCols)
	s.pert0 = make([]float64, s.nCols)
	p := &Problem{NumVars: s.nStruct, Objective: s.objStruct, Constraints: s.cons}
	s.k = s.newKernel(s, p)
}

// NumRows returns the current constraint count (construction rows plus
// appends); BaseRows the construction-time count.
func (s *Solver) NumRows() int  { return s.m }
func (s *Solver) BaseRows() int { return s.baseRows }

// Row returns the i-th constraint as currently installed. The returned
// Constraint shares its Coeffs map with the solver; treat it as read-only.
func (s *Solver) Row(i int) Constraint { return s.cons[i] }

// ExtendBasis returns a copy of bas reshaped for the solver's current row
// count: rows appended after the snapshot was taken get their slack
// columns entered basic (at-lower status is irrelevant for a basic
// column). Appending rows never renumbers existing columns, so the old
// heading carries over verbatim; the extended basis is nonsingular
// whenever bas was, because the new rows' slack columns extend the basis
// matrix by a triangular block. Returns nil when bas does not match the
// pre-append shape of this solver.
func (s *Solver) ExtendBasis(bas *Basis) *Basis {
	oldM := len(bas.Basic)
	if oldM > s.m || len(bas.AtUpper) != s.nStruct+oldM {
		return nil
	}
	ext := &Basis{
		Basic:   make([]int32, s.m),
		AtUpper: make([]bool, s.nCols),
	}
	copy(ext.Basic, bas.Basic)
	copy(ext.AtUpper, bas.AtUpper)
	for i := oldM; i < s.m; i++ {
		ext.Basic[i] = int32(s.nStruct + i)
	}
	return ext
}

// The accessors below expose the simplex state of the most recent solve;
// they are meaningful only after a solve returned Optimal and before the
// next row mutation or solve.

// BasicVar returns the column basic in row i (a structural index < NumVars
// or a slack index nStruct+row), and BasicValue that column's value.
func (s *Solver) BasicVar(i int) int         { return int(s.basis[i]) }
func (s *Solver) BasicValue(i int) float64   { return s.xB[i] }
func (s *Solver) IsBasic(j int) bool         { return s.inBasis[j] }
func (s *Solver) NonbasicAtUpper(j int) bool { return s.atUpper[j] }

// ColBounds returns the bounds column j held in the most recent solve
// (structural bounds as passed to the solve; slack bounds encode the row
// relation).
func (s *Solver) ColBounds(j int) (lo, hi float64) { return s.lo[j], s.hi[j] }

// TableauRow returns row i of B^-1 [A I] for the most recent solve's
// basis: the coefficients of every column (structural then slack) in the
// row whose basic variable is BasicVar(i). Computed by one sparse BTRAN
// (rho = B^-T e_i) gathered through the pristine rows on the sparse
// kernels; the dense kernel reads its tableau directly. The returned slice
// is kernel scratch, valid until the next TableauRow, pivot or solve —
// copy what must be kept.
func (s *Solver) TableauRow(i int) []float64 { return s.k.row(i) }
