package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Balanced transportation problem with a known optimum.
// Supplies: 20, 30. Demands: 10, 25, 15.
// Costs: [[8, 6, 10], [9, 12, 13]].
// Optimal: ship s0->d1 (20 @6), s1->d0 (10 @9), s1->d1 (5 @12), s1->d2 (15 @13)
// = 120 + 90 + 60 + 195 = 465.
func TestTransportationProblem(t *testing.T) {
	costs := [][]float64{{8, 6, 10}, {9, 12, 13}}
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	p := &Problem{NumVars: 6, Objective: make([]float64, 6)}
	v := func(i, j int) int { return i*3 + j }
	for i := range costs {
		for j := range costs[i] {
			p.Objective[v(i, j)] = costs[i][j]
		}
	}
	for i := range supply {
		terms := map[int]float64{}
		for j := range demand {
			terms[v(i, j)] = 1
		}
		p.AddConstraint(EQ, supply[i], terms)
	}
	for j := range demand {
		terms := map[int]float64{}
		for i := range supply {
			terms[v(i, j)] = 1
		}
		p.AddConstraint(EQ, demand[j], terms)
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 465, 1e-6) {
		t.Errorf("objective = %v, want 465", s.Objective)
	}
	checkFeasible(t, p, s.X, 1e-6)
}

// Scaling the objective scales the optimum linearly.
func TestObjectiveScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = -rng.Float64()
		}
		for j := 0; j < n; j++ {
			p.AddConstraint(LE, 1+rng.Float64()*3, map[int]float64{j: 1})
		}
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, err, s1.Status)
		}
		scaled := &Problem{NumVars: n, Objective: make([]float64, n), Constraints: p.Constraints}
		k := 1 + rng.Float64()*5
		for j := range scaled.Objective {
			scaled.Objective[j] = k * p.Objective[j]
		}
		s2, err := Solve(scaled)
		if err != nil || s2.Status != Optimal {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !approx(s2.Objective, k*s1.Objective, 1e-6*(1+math.Abs(k*s1.Objective))) {
			t.Errorf("trial %d: scaled objective %v, want %v", trial, s2.Objective, k*s1.Objective)
		}
	}
}

// Adding a redundant constraint never changes the optimum.
func TestRedundantConstraintInvariance(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	p.AddConstraint(LE, 4, map[int]float64{0: 1})
	p.AddConstraint(LE, 12, map[int]float64{1: 2})
	p.AddConstraint(LE, 18, map[int]float64{0: 3, 1: 2})
	s1, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	p.AddConstraint(LE, 1000, map[int]float64{0: 1, 1: 1}) // redundant
	s2, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s1.Objective, s2.Objective, 1e-9) {
		t.Errorf("redundant constraint changed optimum: %v vs %v", s1.Objective, s2.Objective)
	}
}

// GE-heavy LP whose phase-1 must work hard; optimum known by hand:
// min x+y+z s.t. x+y >= 4, y+z >= 4, x+z >= 4 => x=y=z=2, obj 6.
func TestSymmetricCover(t *testing.T) {
	p := &Problem{NumVars: 3, Objective: []float64{1, 1, 1}}
	p.AddConstraint(GE, 4, map[int]float64{0: 1, 1: 1})
	p.AddConstraint(GE, 4, map[int]float64{1: 1, 2: 1})
	p.AddConstraint(GE, 4, map[int]float64{0: 1, 2: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 6, 1e-6) {
		t.Fatalf("status=%v obj=%v, want optimal 6", s.Status, s.Objective)
	}
	checkFeasible(t, p, s.X, 1e-6)
}

// A redundant equality system (rank-deficient) must still solve: the
// phase-1 basis repair path is exercised by duplicated rows.
func TestRedundantEqualities(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 2}}
	p.AddConstraint(EQ, 4, map[int]float64{0: 1, 1: 1})
	p.AddConstraint(EQ, 4, map[int]float64{0: 1, 1: 1}) // duplicate row
	p.AddConstraint(EQ, 8, map[int]float64{0: 2, 1: 2}) // scaled duplicate
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// Optimum: all weight on x (cheaper): x=4, y=0, obj 4.
	if !approx(s.Objective, 4, 1e-6) {
		t.Errorf("objective = %v, want 4", s.Objective)
	}
	checkFeasible(t, p, s.X, 1e-6)
}

func TestSolveDeadline(t *testing.T) {
	// A deadline in the past must abort promptly with IterLimit.
	rng := rand.New(rand.NewSource(99))
	const n = 30
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = -rng.Float64()
	}
	for r := 0; r < 40; r++ {
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			terms[j] = rng.Float64()
		}
		p.AddConstraint(LE, 1+rng.Float64()*5, terms)
	}
	s, err := SolveDeadline(p, time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != IterLimit {
		t.Errorf("status = %v, want iteration-limit", s.Status)
	}
	// A zero deadline solves normally.
	s, err = SolveDeadline(p, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Errorf("status = %v, want optimal", s.Status)
	}
}
