package lp

// Sparse revised simplex kernel.
//
// The dense kernel materialises B^-1 [A|I] and rewrites all of it at every
// pivot — O(m*nCols) per pivot however sparse the model is, and the
// wavelength-MILP rows (clique aggregations, McCormick loss rows, degree
// cuts) are overwhelmingly sparse. The revised simplex stores only the
// pristine matrix and a factorisation of the current basis, and computes
// tableau slices on demand:
//
//   - The structural matrix A is held twice, in compressed sparse column
//     form (for FTRAN scatters and pricing) and compressed sparse row form
//     (for assembling tableau rows from a BTRAN vector). Slack columns are
//     implicit: column nStruct+i is e_i.
//   - The basis is LU-factorised (see luFactor): Gaussian elimination over
//     the basic columns in a fill-reducing order, storing the multipliers
//     as L-etas and the frozen-row remainders as U columns. FTRAN solves
//     L then U; BTRAN solves U^T then L^T. On top of the factorisation the
//     kernel accumulates one product-form update eta per pivot.
//   - Tableau column j is FTRAN(A_j); tableau row i is rho^T [A|I] with
//     rho = BTRAN(e_i), gathered through the CSR rows rho touches.
//   - The reduced-cost row d lives in the Solver and is updated at each
//     pivot only at the columns where the pivot row is nonzero (partial
//     pricing over sparse columns); entering selection stays the shared
//     O(nCols) Dantzig scan in the Solver, so the pivot *sequence* follows
//     the same rules the dense kernel applies.
//
// The update-eta file grows with every pivot, so the kernel periodically
// refactorises: after refactorEvery update etas (or earlier on fill-in
// growth), it rebuilds the factorisation from the pristine matrix for the
// current basis, keeping each basic column in its current row — the
// leaving-row rules key on row labels, which therefore must not move
// mid-solve. The rebuild recomputes rhsBar, the reduced-cost rows and xB
// from pristine data; comparing the recomputed xB against the
// incrementally maintained one is the numerical-accuracy check, counted
// when it disagrees beyond refactorAccTol. All of this is deterministic —
// the refactorisation points are pivot counts, and the factorisation
// (elimination order included) is a pure function of the matrix and the
// basis — so parallel and sequential runs stay bit-identical.
//
// Everything the kernel needs per solve lives in reusable arenas (the eta
// file, scratch vectors, a two-slot ring of mid-solve factors), so a
// branch-and-bound node re-solve allocates almost nothing; the exception
// is a warm start over a basis nobody factorised yet, whose factor is
// freshly allocated because it outlives the solver on the Basis snapshot.

import (
	"math"
	"sort"
	"time"
)

// defaultRefactorEvery is the update-eta count that triggers a periodic
// refactorisation; Solver.refactorEveryOverride replaces it in tests.
const defaultRefactorEvery = 8

// refactorAccTol bounds the disagreement between the incrementally
// maintained basic values and their recomputation from pristine data at a
// refactorisation before it counts as an accuracy failure.
const refactorAccTol = 1e-6

// matrixSig identifies the pristine constraint matrix a factorisation was
// built from, so a memoised factor is never applied to a different problem.
type matrixSig struct {
	m, nCols, nnz int
	sum           uint64
}

// luFactor is an LU factorisation of a simplex basis, stored pivot step by
// pivot step. Step t eliminated basic column perm[piv[t]] with pivot row
// piv[t] and pivot value 1/inv[t]:
//
//   - L-eta t holds the elimination multipliers (lIdx, lVal) applied to the
//     rows still active at step t; applying the etas in order performs the
//     forward substitution L^-1.
//   - U column t holds the column's remainders (uRow, uVal) in rows frozen
//     by earlier steps; the columns together form the upper-triangular
//     factor (in pivot order), solved backward after L, column-oriented.
//
// A factor is immutable once built. Warm-start factors are memoised on the
// Basis snapshot and shared across solver instances (and speculative
// workers); mid-solve factors live in a per-kernel arena and are never
// shared.
type luFactor struct {
	sig  matrixSig
	perm []int32 // row r -> basic column (the factor's row assignment)

	piv    []int32   // len m: pivot row of each elimination step
	inv    []float64 // len m: reciprocal pivot values
	lStart []int32   // len m+1 offsets into lIdx/lVal
	lIdx   []int32
	lVal   []float64
	uStart []int32 // len m+1 offsets into uRow/uVal
	uRow   []int32
	uVal   []float64
	fill   int // nonzeros beyond the basic columns' own (fill-in)
}

// clone copies the factor into freshly allocated, exactly sized arrays.
// Memoised factors are built in a reusable scratch whose arrays carry
// append-growth slack; the snapshot keeps only a trimmed copy.
func (f *luFactor) clone() *luFactor {
	c := &luFactor{sig: f.sig, fill: f.fill}
	c.perm = append(make([]int32, 0, len(f.perm)), f.perm...)
	c.piv = append(make([]int32, 0, len(f.piv)), f.piv...)
	c.inv = append(make([]float64, 0, len(f.inv)), f.inv...)
	c.lStart = append(make([]int32, 0, len(f.lStart)), f.lStart...)
	c.lIdx = append(make([]int32, 0, len(f.lIdx)), f.lIdx...)
	c.lVal = append(make([]float64, 0, len(f.lVal)), f.lVal...)
	c.uStart = append(make([]int32, 0, len(f.uStart)), f.uStart...)
	c.uRow = append(make([]int32, 0, len(f.uRow)), f.uRow...)
	c.uVal = append(make([]float64, 0, len(f.uVal)), f.uVal...)
	return c
}

// ftranL overwrites v with L^-1 v: the forward sweep through the
// elimination multipliers. Split out so the Forrest-Tomlin kernel can run
// it alone, with its own U representation layered on top.
func (f *luFactor) ftranL(v []float64) {
	n := len(f.piv)
	for t := 0; t < n; t++ {
		c := v[f.piv[t]]
		if c != 0 {
			for q := f.lStart[t]; q < f.lStart[t+1]; q++ {
				v[f.lIdx[q]] -= f.lVal[q] * c
			}
		}
	}
}

// btranLT overwrites v with L^-T v: the backward transposed-multiplier
// sweep, the counterpart of ftranL for BTRAN.
func (f *luFactor) btranLT(v []float64) {
	for t := len(f.piv) - 1; t >= 0; t-- {
		r := f.piv[t]
		acc := v[r]
		for q := f.lStart[t]; q < f.lStart[t+1]; q++ {
			acc -= f.lVal[q] * v[f.lIdx[q]]
		}
		v[r] = acc
	}
}

// ftran overwrites v with B^-1 v: forward L sweep, then the
// column-oriented backward U sweep.
func (f *luFactor) ftran(v []float64) {
	n := len(f.piv)
	f.ftranL(v)
	for t := n - 1; t >= 0; t-- {
		r := f.piv[t]
		x := v[r] * f.inv[t]
		if x != 0 {
			for q := f.uStart[t]; q < f.uStart[t+1]; q++ {
				v[f.uRow[q]] -= f.uVal[q] * x
			}
		}
		v[r] = x
	}
}

// btran overwrites v with B^-T v: forward U^T sweep, then the backward L^T
// sweep.
func (f *luFactor) btran(v []float64) {
	n := len(f.piv)
	for t := 0; t < n; t++ {
		r := f.piv[t]
		acc := v[r]
		for q := f.uStart[t]; q < f.uStart[t+1]; q++ {
			acc -= f.uVal[q] * v[f.uRow[q]]
		}
		v[r] = acc * f.inv[t]
	}
	f.btranLT(v)
}

// sparseKernel implements kernel with the sparse revised simplex.
type sparseKernel struct {
	s *Solver

	// Pristine structural matrix, column- and row-compressed.
	ccStart []int32 // len nStruct+1
	ccRow   []int32
	ccVal   []float64
	crStart []int32 // len m+1
	crCol   []int32
	crVal   []float64
	nnz     int
	sig     matrixSig

	factor *luFactor // basis factorisation; nil while B is the slack identity

	// Update eta file (arena: truncated, never freed, across solves). Eta e
	// is a product-form Gauss-Jordan pivot: scale row etaPiv[e] by
	// etaInv[e], subtract multiplier*scaled from the rows in
	// etaIdx[etaStart[e]:etaStart[e+1]].
	etaPiv   []int32
	etaInv   []float64
	etaStart []int32 // len(etaPiv)+1
	etaIdx   []int32
	etaVal   []float64

	// Two-slot ring of mid-solve factor arenas: the slot being rebuilt is
	// never the live factor, so an aborted rebuild leaves the current
	// representation intact.
	midFactor [2]*luFactor
	// buildTmp is the reusable scratch the warm-start elimination writes
	// into before the exact-size clone is memoised on the Basis snapshot.
	buildTmp *luFactor
	midNext  int

	colScratch  []float64 // len m: column handed to the pivot loops
	rowScratch  []float64 // len nCols: row handed to the dual loop
	rho         []float64 // len m: BTRAN work
	work        []float64 // len m: internal FTRAN work
	xbScratch   []float64 // len m: accuracy-check snapshot
	rowOf       []int32   // len nCols: column -> current row, refactor scratch
	pivotedRows []bool    // len m: factor-build row state
	rowValidFor int       // row index rowScratch currently holds, -1 if none

	// Elimination-ordering scratch (orderBasisColumns).
	basicCols []int32 // ascending basic columns
	ordCols   []int32 // emitted elimination order
	ordPref   []int32 // structurally chosen pivot row per step, -1 if none
	rcStart   []int32 // len m+1: row -> basic-column incidence offsets
	rcIdx     []int32
	colCnt    []int32 // len nCols: active-row counts per basic column
	rowCnt    []int32 // len m: active-basic-column counts per row
	colActive []bool  // len nCols
	rowActive []bool  // len m

	noMoreRefactor bool // a mid-solve refactorisation went singular

	// Per-solve statistics (reset by beginSolve).
	stRefactor int
	stEtaPeak  int
	stFill     int
	stAccFail  int
	stSingular int // mid-solve refactorisations aborted as singular
}

func newSparseKernel(s *Solver, p *Problem) *sparseKernel {
	m, n := s.m, s.nStruct
	k := &sparseKernel{s: s, rowValidFor: -1}

	// CSR: per-row column indices in ascending order (Coeffs is a map, so
	// sort for a deterministic layout), zero coefficients dropped.
	k.crStart = make([]int32, m+1)
	var cols []int
	for i, c := range p.Constraints {
		cols = cols[:0]
		for v, coeff := range c.Coeffs {
			if coeff != 0 {
				cols = append(cols, v)
			}
		}
		sort.Ints(cols)
		for _, v := range cols {
			k.crCol = append(k.crCol, int32(v))
			k.crVal = append(k.crVal, c.Coeffs[v])
		}
		k.crStart[i+1] = int32(len(k.crCol))
	}
	k.nnz = len(k.crCol)

	// CSC from CSR; row order within each column is ascending because the
	// CSR rows are visited in ascending order.
	k.ccStart = make([]int32, n+1)
	for _, c := range k.crCol {
		k.ccStart[c+1]++
	}
	for j := 0; j < n; j++ {
		k.ccStart[j+1] += k.ccStart[j]
	}
	k.ccRow = make([]int32, k.nnz)
	k.ccVal = make([]float64, k.nnz)
	next := make([]int32, n)
	copy(next, k.ccStart[:n])
	for i := 0; i < m; i++ {
		for t := k.crStart[i]; t < k.crStart[i+1]; t++ {
			j := k.crCol[t]
			k.ccRow[next[j]] = int32(i)
			k.ccVal[next[j]] = k.crVal[t]
			next[j]++
		}
	}

	k.sig = matrixSig{m: m, nCols: s.nCols, nnz: k.nnz, sum: k.checksum()}
	k.etaStart = append(k.etaStart, 0)
	k.colScratch = make([]float64, m)
	k.rowScratch = make([]float64, s.nCols)
	k.rho = make([]float64, m)
	k.work = make([]float64, m)
	k.xbScratch = make([]float64, m)
	k.rowOf = make([]int32, s.nCols)
	k.pivotedRows = make([]bool, m)
	k.rcStart = make([]int32, m+1)
	k.colCnt = make([]int32, s.nCols)
	k.rowCnt = make([]int32, m)
	k.colActive = make([]bool, s.nCols)
	k.rowActive = make([]bool, m)
	return k
}

// checksum hashes the pristine matrix layout and values (FNV-1a over the
// CSR arrays) for the factor-memo signature.
func (k *sparseKernel) checksum() uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for _, v := range k.crStart {
		mix(uint64(v))
	}
	for i, c := range k.crCol {
		mix(uint64(c))
		mix(math.Float64bits(k.crVal[i]))
	}
	return h
}

func (k *sparseKernel) beginSolve() {
	k.stRefactor, k.stEtaPeak, k.stFill, k.stAccFail, k.stSingular = 0, 0, 0, 0, 0
	k.noMoreRefactor = false
}

func (k *sparseKernel) solveStats(sol *Solution) {
	sol.Sparse = true
	sol.SparseNNZ = k.nnz
	sol.SparseRefactorizations = k.stRefactor
	sol.SparseEtaPeak = k.stEtaPeak
	sol.SparseFillIn = k.stFill
	sol.SparseAccuracyFailures = k.stAccFail
	sol.SparseSingularRefactors = k.stSingular
}

func (k *sparseKernel) resetEtas() {
	k.etaPiv = k.etaPiv[:0]
	k.etaInv = k.etaInv[:0]
	k.etaStart = k.etaStart[:1]
	k.etaIdx = k.etaIdx[:0]
	k.etaVal = k.etaVal[:0]
}

func (k *sparseKernel) loadSlack() {
	k.factor = nil
	k.resetEtas()
	k.rowValidFor = -1
}

// scatter writes pristine column j of [A|I] into the dense vector v.
func (k *sparseKernel) scatter(v []float64, j int) {
	for i := range v {
		v[i] = 0
	}
	if j >= k.s.nStruct {
		v[j-k.s.nStruct] = 1
		return
	}
	for t := k.ccStart[j]; t < k.ccStart[j+1]; t++ {
		v[k.ccRow[t]] = k.ccVal[t]
	}
}

// applyEtas runs the forward (FTRAN) sweep of the update-eta file over v.
// Each eta performs a full Gauss-Jordan pivot on a column: scale the pivot
// row, then subtract multiplier*scaled from the rows the pivot column
// touched. Skipping the subtractions when the scaled pivot entry is zero
// can only change the sign of a zero, which no downstream comparison
// observes.
func (k *sparseKernel) applyEtas(v []float64) {
	for e := 0; e < len(k.etaPiv); e++ {
		r := k.etaPiv[e]
		vr := v[r] * k.etaInv[e]
		if vr != 0 {
			for t := k.etaStart[e]; t < k.etaStart[e+1]; t++ {
				v[k.etaIdx[t]] -= k.etaVal[t] * vr
			}
		}
		v[r] = vr
	}
}

// applyEtasT runs the backward (BTRAN) sweep of the update-eta file: the
// transposed etas in reverse order. Only the pivot entry changes per eta:
// it becomes inv * (v[r] - sum multiplier_i * v[i]).
func (k *sparseKernel) applyEtasT(v []float64) {
	for e := len(k.etaPiv) - 1; e >= 0; e-- {
		r := k.etaPiv[e]
		acc := v[r]
		for t := k.etaStart[e]; t < k.etaStart[e+1]; t++ {
			acc -= k.etaVal[t] * v[k.etaIdx[t]]
		}
		v[r] = k.etaInv[e] * acc
	}
}

// ftran overwrites v with B^-1 v (base factor, then update etas).
func (k *sparseKernel) ftran(v []float64) {
	if f := k.factor; f != nil {
		f.ftran(v)
	}
	k.applyEtas(v)
}

// btran overwrites v with B^-T v (update etas reversed, then base factor).
func (k *sparseKernel) btran(v []float64) {
	k.applyEtasT(v)
	if f := k.factor; f != nil {
		f.btran(v)
	}
}

// triSolver is the FTRAN/BTRAN surface the shared tableau helpers are
// parametrised over, so the eta kernel and the Forrest-Tomlin kernel (which
// layers a different U representation over the same pristine matrix) reuse
// one implementation of row assembly, pricing, rhsBar and xB recomputation.
type triSolver interface {
	ftran(v []float64)
	btran(v []float64)
}

func (k *sparseKernel) column(j int) []float64 {
	k.scatter(k.colScratch, j)
	k.ftran(k.colScratch)
	return k.colScratch
}

func (k *sparseKernel) row(i int) []float64 { return k.rowWith(k, i) }

// rowWith assembles tableau row i through tr's BTRAN: rho = B^-T e_i
// gathered across the CSR rows rho touches.
func (k *sparseKernel) rowWith(tr triSolver, i int) []float64 {
	s := k.s
	rho := k.rho
	for r := range rho {
		rho[r] = 0
	}
	rho[i] = 1
	tr.btran(rho)
	out := k.rowScratch
	for j := range out {
		out[j] = 0
	}
	for r := 0; r < s.m; r++ {
		yr := rho[r]
		if yr == 0 {
			continue
		}
		for t := k.crStart[r]; t < k.crStart[r+1]; t++ {
			out[k.crCol[t]] += yr * k.crVal[t]
		}
		out[s.nStruct+r] = yr
	}
	k.rowValidFor = i
	return out
}

func (k *sparseKernel) pivot(leave, enter int) {
	s := k.s
	// The reduced-cost update needs row `leave` of the pre-pivot tableau.
	// The dual simplex has just fetched it (row invalidation tracking makes
	// that reuse exact); a primal pivot computes it here, against the
	// representation as it stands before this pivot's eta is appended.
	if k.rowValidFor != leave {
		k.row(leave)
	}
	alpha := k.rowScratch
	col := k.colScratch // FTRAN'd entering column, fetched by the pivot loop
	inv := 1 / col[leave]

	// Capture the update eta and apply the pivot to rhsBar in one sweep —
	// the same scale-then-subtract arithmetic as the dense kernel.
	rb := s.rhsBar[leave] * inv
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		if f := col[i]; f != 0 {
			k.etaIdx = append(k.etaIdx, int32(i))
			k.etaVal = append(k.etaVal, f)
			s.rhsBar[i] -= f * rb
		}
	}
	s.rhsBar[leave] = rb
	k.etaPiv = append(k.etaPiv, int32(leave))
	k.etaInv = append(k.etaInv, inv)
	k.etaStart = append(k.etaStart, int32(len(k.etaIdx)))

	k.priceUpdate(alpha, inv, enter)
	k.rowValidFor = -1
	if n := len(k.etaPiv); n > k.stEtaPeak {
		k.stEtaPeak = n
	}

	// Periodic refactorisation: on eta-file length or fill-in growth.
	if !k.noMoreRefactor {
		every := defaultRefactorEvery
		if s.refactorEveryOverride > 0 {
			every = s.refactorEveryOverride
		}
		base := s.m
		if f := k.factor; f != nil {
			base += len(f.lIdx) + len(f.uRow) + len(f.piv)
		}
		if len(k.etaPiv) >= every || len(k.etaIdx) >= 4*base {
			k.midRefactor()
		}
	}
}

// priceUpdate is the partial pricing update shared by the eta and FT
// kernels: d (and the perturbation row) change only at the columns where
// the pivot row is nonzero. alpha_j * inv is the dense kernel's scaled
// pivot row entry.
func (k *sparseKernel) priceUpdate(alpha []float64, inv float64, enter int) {
	s := k.s
	if f := s.d[enter]; f != 0 {
		for j := 0; j < s.nCols; j++ {
			if a := alpha[j]; a != 0 {
				s.d[j] -= f * (a * inv)
			}
		}
		s.d[enter] = 0
	}
	if s.usePert {
		if f := s.pert[enter]; f != 0 {
			for j := 0; j < s.nCols; j++ {
				if a := alpha[j]; a != 0 {
					s.pert[j] -= f * (a * inv)
				}
			}
			s.pert[enter] = 0
		}
	}
}

// basisColsNnz counts the pristine nonzeros of the current basic columns,
// the baseline against which factor fill-in is measured.
func (k *sparseKernel) basisColsNnz() int {
	s, n := k.s, 0
	for _, c := range k.s.basis {
		if int(c) >= s.nStruct {
			n++
		} else {
			n += int(k.ccStart[c+1] - k.ccStart[c])
		}
	}
	return n
}

// orderBasisColumns computes a fill-reducing elimination order over the
// current basic columns by peeling singletons of the pristine pattern —
// the classic triangularisation pre-pass. A column with one remaining
// active row (or a row with one remaining active column) pivots without
// producing elimination work in the triangular part; whatever cannot be
// peeled (the kernel of the basis) is ordered by fewest active rows and
// left to numerical pivoting. The result — ordCols and, per step, the
// structurally forced pivot row in ordPref (-1 when the choice is left to
// the numerics) — is a pure function of the matrix pattern and the basis
// set, keeping refactorisation deterministic.
func (k *sparseKernel) orderBasisColumns() {
	s := k.s
	m := s.m

	k.basicCols = k.basicCols[:0]
	for j := 0; j < s.nCols; j++ {
		if s.inBasis[j] {
			k.basicCols = append(k.basicCols, int32(j))
		}
	}

	// Row -> basic-column incidence of the pristine pattern.
	for r := 0; r <= m; r++ {
		k.rcStart[r] = 0
	}
	for _, c := range k.basicCols {
		if int(c) >= s.nStruct {
			k.rcStart[int(c)-s.nStruct+1]++
		} else {
			for t := k.ccStart[c]; t < k.ccStart[c+1]; t++ {
				k.rcStart[k.ccRow[t]+1]++
			}
		}
	}
	for r := 0; r < m; r++ {
		k.rcStart[r+1] += k.rcStart[r]
	}
	need := int(k.rcStart[m])
	if cap(k.rcIdx) < need {
		k.rcIdx = make([]int32, need)
	}
	k.rcIdx = k.rcIdx[:need]
	fillPos := k.rowCnt // borrow as fill cursor before counts are computed
	for r := 0; r < m; r++ {
		fillPos[r] = k.rcStart[r]
	}
	for _, c := range k.basicCols {
		if int(c) >= s.nStruct {
			r := int(c) - s.nStruct
			k.rcIdx[fillPos[r]] = c
			fillPos[r]++
		} else {
			for t := k.ccStart[c]; t < k.ccStart[c+1]; t++ {
				r := k.ccRow[t]
				k.rcIdx[fillPos[r]] = c
				fillPos[r]++
			}
		}
	}

	for r := 0; r < m; r++ {
		k.rowActive[r] = true
		k.rowCnt[r] = k.rcStart[r+1] - k.rcStart[r]
	}
	for _, c := range k.basicCols {
		k.colActive[c] = true
		if int(c) >= s.nStruct {
			k.colCnt[c] = 1
		} else {
			k.colCnt[c] = k.ccStart[c+1] - k.ccStart[c]
		}
	}

	deactivateCol := func(c int32) {
		k.colActive[c] = false
		if int(c) >= s.nStruct {
			r := c - int32(s.nStruct)
			if k.rowActive[r] {
				k.rowCnt[r]--
			}
			return
		}
		for t := k.ccStart[c]; t < k.ccStart[c+1]; t++ {
			if r := k.ccRow[t]; k.rowActive[r] {
				k.rowCnt[r]--
			}
		}
	}
	deactivateRow := func(r int32) {
		k.rowActive[r] = false
		for t := k.rcStart[r]; t < k.rcStart[r+1]; t++ {
			if c := k.rcIdx[t]; k.colActive[c] {
				k.colCnt[c]--
			}
		}
	}
	activeRowOf := func(c int32) int32 {
		if int(c) >= k.s.nStruct {
			return c - int32(k.s.nStruct)
		}
		for t := k.ccStart[c]; t < k.ccStart[c+1]; t++ {
			if r := k.ccRow[t]; k.rowActive[r] {
				return r
			}
		}
		return -1
	}
	activeColOf := func(r int32) int32 {
		for t := k.rcStart[r]; t < k.rcStart[r+1]; t++ {
			if c := k.rcIdx[t]; k.colActive[c] {
				return c
			}
		}
		return -1
	}

	k.ordCols = k.ordCols[:0]
	k.ordPref = k.ordPref[:0]
	emit := func(c, r int32) {
		k.ordCols = append(k.ordCols, c)
		k.ordPref = append(k.ordPref, r)
		deactivateCol(c)
		if r >= 0 {
			deactivateRow(r)
		}
	}
	for len(k.ordCols) < len(k.basicCols) {
		progress := false
		for _, c := range k.basicCols {
			if k.colActive[c] && k.colCnt[c] == 1 {
				if r := activeRowOf(c); r >= 0 {
					emit(c, r)
					progress = true
				}
			}
		}
		if progress {
			continue
		}
		for r := int32(0); int(r) < m; r++ {
			if k.rowActive[r] && k.rowCnt[r] == 1 {
				if c := activeColOf(r); c >= 0 {
					emit(c, r)
					progress = true
					break
				}
			}
		}
		if progress {
			continue
		}
		// Kernel of the basis: Markowitz pivoting. Over every active
		// (column, active row of its pristine pattern) pair, minimise the
		// fill bound (colCnt-1)*(rowCnt-1); ties break to the lowest column,
		// then the lowest row, keeping the order a pure function of the
		// pattern. The winning row is emitted as a structural *preference* —
		// buildFactorInto still falls back to largest-|entry| when the
		// preferred pivot is numerically tiny, so the heuristic can never
		// cost correctness. Emitting a concrete row (unlike the old
		// fewest-active-rows rule, which left it to the numerics) also keeps
		// the active-count bookkeeping exact through the kernel block.
		bestC, bestR := int32(-1), int32(-1)
		bestCost := int64(math.MaxInt64)
		for _, c := range k.basicCols {
			if !k.colActive[c] {
				continue
			}
			cc := int64(k.colCnt[c] - 1)
			if cc < 0 || cc >= bestCost { // a whole column can't beat the best pair
				continue
			}
			if int(c) >= s.nStruct {
				if r := c - int32(s.nStruct); k.rowActive[r] {
					if cost := cc * int64(k.rowCnt[r]-1); cost < bestCost {
						bestC, bestR, bestCost = c, r, cost
					}
				}
				continue
			}
			for t := k.ccStart[c]; t < k.ccStart[c+1]; t++ {
				r := k.ccRow[t]
				if !k.rowActive[r] {
					continue
				}
				if cost := cc * int64(k.rowCnt[r]-1); cost < bestCost {
					bestC, bestR, bestCost = c, r, cost
				}
			}
		}
		if bestC >= 0 {
			emit(bestC, bestR)
			continue
		}
		// No active (column, row) pair left — structurally deficient tail;
		// emit the lowest active column and leave the row to the numerics.
		best := int32(-1)
		for _, c := range k.basicCols {
			if k.colActive[c] {
				best = c
				break
			}
		}
		if best < 0 {
			break
		}
		emit(best, -1)
	}
}

// buildFactorInto runs the left-looking LU elimination over the basic
// columns in the order computed by orderBasisColumns, into dst. With
// forced set, the pivot row of every column is taken from k.rowOf
// (mid-solve refactorisation: row labels must not move) and a too-small
// pivot aborts; otherwise the structural preference is tried first and
// falls back to the largest remaining |entry| (ties to the lowest row).
// Returns false on abort, leaving all live state untouched.
func (k *sparseKernel) buildFactorInto(dst *luFactor, forced bool) bool {
	factorStart := time.Now()
	defer k.s.refactorH.RecordSince(factorStart)
	s := k.s
	m := s.m
	dst.sig = k.sig
	dst.piv = dst.piv[:0]
	dst.inv = dst.inv[:0]
	dst.lStart = append(dst.lStart[:0], 0)
	dst.lIdx = dst.lIdx[:0]
	dst.lVal = dst.lVal[:0]
	dst.uStart = append(dst.uStart[:0], 0)
	dst.uRow = dst.uRow[:0]
	dst.uVal = dst.uVal[:0]
	if cap(dst.perm) < m {
		dst.perm = make([]int32, m)
	}
	dst.perm = dst.perm[:m]

	pivoted := k.pivotedRows
	for r := range pivoted {
		pivoted[r] = false
	}
	v := k.work
	for t, c := range k.ordCols {
		k.scatter(v, int(c))
		// Forward L sweep through the steps built so far.
		for e := 0; e < len(dst.piv); e++ {
			f := v[dst.piv[e]]
			if f != 0 {
				for q := dst.lStart[e]; q < dst.lStart[e+1]; q++ {
					v[dst.lIdx[q]] -= dst.lVal[q] * f
				}
			}
		}
		// Pivot row selection.
		r := -1
		if forced {
			r = int(k.rowOf[c])
			if math.Abs(v[r]) <= pivTol {
				return false
			}
		} else {
			if p := k.ordPref[t]; p >= 0 && !pivoted[p] && math.Abs(v[p]) > pivTol {
				r = int(p)
			} else {
				bestAbs := pivTol
				for i := 0; i < m; i++ {
					if pivoted[i] {
						continue
					}
					if abs := math.Abs(v[i]); abs > bestAbs {
						r, bestAbs = i, abs
					}
				}
				if r < 0 {
					return false // singular within tolerance
				}
			}
		}
		inv := 1 / v[r]
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := v[i]
			if f == 0 {
				continue
			}
			if pivoted[i] {
				dst.uRow = append(dst.uRow, int32(i))
				dst.uVal = append(dst.uVal, f)
			} else {
				dst.lIdx = append(dst.lIdx, int32(i))
				dst.lVal = append(dst.lVal, f*inv)
			}
		}
		dst.piv = append(dst.piv, int32(r))
		dst.inv = append(dst.inv, inv)
		dst.lStart = append(dst.lStart, int32(len(dst.lIdx)))
		dst.uStart = append(dst.uStart, int32(len(dst.uRow)))
		pivoted[r] = true
		dst.perm[r] = c
	}
	dst.fill = len(dst.lIdx) + len(dst.uRow) + len(dst.piv) - k.basisColsNnz()
	if dst.fill < 0 {
		dst.fill = 0
	}
	return true
}

// refactorize rebuilds the representation for a warm-start basis. The
// elimination — fill-reducing order, structural pivot preferences with
// largest-|entry| fallback — is a pure function of the matrix and the
// basis set, so every consumer of a snapshot computes an identical factor;
// the result is memoised on the snapshot so sibling branch-and-bound nodes
// and speculative workers exchange the factor instead of re-eliminating.
func (k *sparseKernel) refactorize(bas *Basis) bool {
	s := k.s
	k.resetEtas()
	k.rowValidFor = -1

	if f := bas.factor.Load(); f != nil && f.sig == k.sig {
		k.factor = f
		copy(s.basis, f.perm)
		k.installStats(f)
		return true
	}

	k.orderBasisColumns()
	// Build into the kernel-owned scratch factor (its append-grown arrays
	// amortise across solves), then clone exact-size arrays for the memo:
	// the snapshot outlives this solver, and trimming removes the capacity
	// slack growslice doubling would otherwise retain per node.
	if k.buildTmp == nil {
		k.buildTmp = &luFactor{}
	}
	if !k.buildFactorInto(k.buildTmp, false) {
		return false // singular within tolerance: caller solves cold
	}
	f := k.buildTmp.clone()
	bas.factor.Store(f)
	k.factor = f
	copy(s.basis, f.perm)
	k.installStats(f)
	return true
}

// installStats records a factor install and recomputes the derived
// vectors (rhsBar and reduced costs) from pristine data. Memoised and
// freshly built factors are byte-identical, so the recorded statistics are
// independent of memo hits — which keeps lp.sparse.* counters bit-equal
// between sequential and speculative runs.
func (k *sparseKernel) installStats(f *luFactor) {
	k.stRefactor++
	k.stFill += f.fill
	k.computeRHSBar()
	k.computeD()
}

// midRefactor rebuilds the factorisation for the current basis in the
// middle of a solve, collapsing the eta file. Each basic column keeps its
// current row, so a pivot that is too small with the prescribed row aborts
// the rebuild: the eta representation is still valid, and the kernel just
// stops refactorising for the rest of the solve.
func (k *sparseKernel) midRefactor() {
	s := k.s
	for r := 0; r < s.m; r++ {
		k.rowOf[s.basis[r]] = int32(r)
	}
	k.orderBasisColumns()
	dst := k.midFactor[k.midNext]
	if dst == nil {
		dst = &luFactor{}
		k.midFactor[k.midNext] = dst
	}
	if !k.buildFactorInto(dst, true) {
		k.noMoreRefactor = true
		k.stSingular++
		return
	}
	k.midNext ^= 1
	k.factor = dst
	k.resetEtas()
	k.rowValidFor = -1
	k.stRefactor++
	k.stFill += dst.fill
	k.computeRHSBar()
	k.computeD()
	if s.usePert {
		k.computePert()
	}
	// Accuracy check against the pristine matrix: the incrementally
	// maintained basic values must agree with their recomputation through
	// the fresh factorisation.
	copy(k.xbScratch, s.xB)
	k.computeXB()
	for i := 0; i < s.m; i++ {
		if math.Abs(k.xbScratch[i]-s.xB[i]) > refactorAccTol {
			k.stAccFail++
			break
		}
	}
}

// computeRHSBar recomputes rhsBar = B^-1 b through the current factor.
func (k *sparseKernel) computeRHSBar() { k.computeRHSBarWith(k) }

func (k *sparseKernel) computeRHSBarWith(tr triSolver) {
	s := k.s
	copy(s.rhsBar, s.rhs)
	tr.ftran(s.rhsBar)
}

// priceInto recomputes a transformed cost row from its pristine form:
// out_j = c_j - y . A_j with B^T y = c_B, exact zeros on basic columns.
func (k *sparseKernel) priceInto(out, c []float64) { k.priceIntoWith(k, out, c) }

func (k *sparseKernel) priceIntoWith(tr triSolver, out, c []float64) {
	s := k.s
	y := k.work
	for r := 0; r < s.m; r++ {
		y[r] = c[s.basis[r]]
	}
	tr.btran(y)
	copy(out, c[:s.nStruct])
	for r := 0; r < s.m; r++ {
		yr := y[r]
		if yr != 0 {
			for t := k.crStart[r]; t < k.crStart[r+1]; t++ {
				out[k.crCol[t]] -= yr * k.crVal[t]
			}
		}
		out[s.nStruct+r] = c[s.nStruct+r] - yr
	}
	for r := 0; r < s.m; r++ {
		out[s.basis[r]] = 0
	}
}

func (k *sparseKernel) computeD()    { k.priceInto(k.s.d, k.s.obj) }
func (k *sparseKernel) computePert() { k.priceInto(k.s.pert, k.s.pert0) }

// computeXB mirrors the dense kernel: start from rhsBar and subtract each
// nonbasic column at a nonzero resting value, columns in ascending order.
func (k *sparseKernel) computeXB() { k.computeXBWith(k) }

func (k *sparseKernel) computeXBWith(tr triSolver) {
	s := k.s
	copy(s.xB, s.rhsBar)
	for j := 0; j < s.nCols; j++ {
		if s.inBasis[j] {
			continue
		}
		v := s.boundVal(j)
		if v == 0 {
			continue
		}
		k.scatter(k.colScratch, j)
		tr.ftran(k.colScratch)
		col := k.colScratch
		for i := 0; i < s.m; i++ {
			if aij := col[i]; aij != 0 {
				s.xB[i] -= aij * v
			}
		}
	}
}
