package lp

import (
	"math/rand"
	"testing"
)

// BenchmarkSolveAssignment measures the simplex on n x n assignment LPs,
// the structure closest to the wavelength-assignment relaxations.
func BenchmarkSolveAssignment(b *testing.B) {
	for _, n := range []int{5, 10, 20} {
		n := n
		b.Run(map[int]string{5: "n5", 10: "n10", 20: "n20"}[n], func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			p := &Problem{NumVars: n * n, Objective: make([]float64, n*n)}
			for i := range p.Objective {
				p.Objective[i] = rng.Float64() * 10
			}
			for i := 0; i < n; i++ {
				row := map[int]float64{}
				col := map[int]float64{}
				for j := 0; j < n; j++ {
					row[i*n+j] = 1
					col[j*n+i] = 1
				}
				p.AddConstraint(EQ, 1, row)
				p.AddConstraint(EQ, 1, col)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Solve(p)
				if err != nil || s.Status != Optimal {
					b.Fatalf("%v %v", err, s.Status)
				}
			}
		})
	}
}

// BenchmarkSolveDense measures random dense LE systems.
func BenchmarkSolveDense(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, m = 40, 60
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for i := range p.Objective {
		p.Objective[i] = rng.Float64()*2 - 1
	}
	for r := 0; r < m; r++ {
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			terms[j] = rng.Float64()
		}
		p.AddConstraint(LE, 5+rng.Float64()*10, terms)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
