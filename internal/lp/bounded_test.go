package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// solveBothWays solves p with the legacy two-phase solver and with a cold
// Solver solve under default bounds, and checks they agree on status and
// objective.
func solveBothWays(t *testing.T, p *Problem) (*Solution, *Solver) {
	t.Helper()
	legacy, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.SolveBounded(nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != legacy.Status {
		t.Fatalf("bounded status = %v, legacy %v", sol.Status, legacy.Status)
	}
	if sol.Status == Optimal {
		if !approx(sol.Objective, legacy.Objective, 1e-6) {
			t.Fatalf("bounded objective = %v, legacy %v", sol.Objective, legacy.Objective)
		}
		checkFeasible(t, p, sol.X, 1e-6)
	}
	return sol, s
}

// The fixed textbook problems of lp_test.go, replayed through the bounded
// solver.
func TestBoundedMatchesLegacyFixed(t *testing.T) {
	prod := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	prod.AddConstraint(LE, 4, map[int]float64{0: 1})
	prod.AddConstraint(LE, 12, map[int]float64{1: 2})
	prod.AddConstraint(LE, 18, map[int]float64{0: 3, 1: 2})

	diet := &Problem{NumVars: 2, Objective: []float64{0.6, 1}}
	diet.AddConstraint(GE, 20, map[int]float64{0: 10, 1: 4})
	diet.AddConstraint(GE, 20, map[int]float64{0: 5, 1: 5})
	diet.AddConstraint(GE, 12, map[int]float64{0: 2, 1: 6})

	infeas := &Problem{NumVars: 1, Objective: []float64{1}}
	infeas.AddConstraint(LE, 1, map[int]float64{0: 1})
	infeas.AddConstraint(GE, 2, map[int]float64{0: 1})

	unbounded := &Problem{NumVars: 2, Objective: []float64{-1, 0}}
	unbounded.AddConstraint(GE, 1, map[int]float64{0: 1})

	eq := &Problem{NumVars: 3, Objective: []float64{2, 3, 1}}
	eq.AddConstraint(EQ, 10, map[int]float64{0: 1, 1: 1, 2: 1})
	eq.AddConstraint(GE, 4, map[int]float64{0: 1, 1: -1})

	for name, p := range map[string]*Problem{
		"production": prod, "diet": diet, "infeasible": infeas,
		"unbounded": unbounded, "equality": eq,
	} {
		p := p
		t.Run(name, func(t *testing.T) { solveBothWays(t, p) })
	}
}

// Bounds passed to the Solver must behave exactly like explicit constraint
// rows given to the legacy solver.
func TestBoundedBoundsMatchRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p, lo, hi := randomBoundedProblem(rng)

		// Legacy: bounds as rows.
		rowP := &Problem{NumVars: p.NumVars, Objective: p.Objective}
		rowP.Constraints = append(rowP.Constraints, p.Constraints...)
		for j := 0; j < p.NumVars; j++ {
			if lo[j] > 0 {
				rowP.AddConstraint(GE, lo[j], map[int]float64{j: 1})
			}
			if !math.IsInf(hi[j], 1) {
				rowP.AddConstraint(LE, hi[j], map[int]float64{j: 1})
			}
		}
		legacy, err := Solve(rowP)
		if err != nil {
			t.Fatal(err)
		}

		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.SolveBounded(lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != legacy.Status {
			t.Fatalf("trial %d: bounded status = %v, legacy %v (problem %+v lo=%v hi=%v)",
				trial, sol.Status, legacy.Status, p, lo, hi)
		}
		if sol.Status == Optimal && !approx(sol.Objective, legacy.Objective, 1e-5) {
			t.Fatalf("trial %d: bounded objective = %v, legacy %v (problem %+v lo=%v hi=%v)",
				trial, sol.Objective, legacy.Objective, p, lo, hi)
		}
	}
}

// TestDualEqualsCold is the warm-start contract: re-solving under tightened
// bounds via the dual simplex from the parent basis must reach the same
// objective as a cold solve of the child, with the pivots attributed to the
// warm-start fields.
func TestDualEqualsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmSeen := false
	for trial := 0; trial < 300; trial++ {
		p, lo, hi := randomBoundedProblem(rng)
		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		parent, err := s.SolveBounded(lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if parent.Status != Optimal {
			continue
		}
		bas := s.Basis()

		// Tighten a branching-style bound around the parent optimum.
		v := rng.Intn(p.NumVars)
		childLo := append([]float64(nil), lo...)
		childHi := append([]float64(nil), hi...)
		if rng.Intn(2) == 0 {
			childHi[v] = math.Floor(parent.X[v])
		} else {
			childLo[v] = math.Ceil(parent.X[v] + 1e-9)
		}

		warm, ok, err := s.SolveDual(bas, childLo, childHi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: refactorisation of a freshly produced basis failed", trial)
		}
		if !warm.WarmStarted {
			t.Fatalf("trial %d: warm solution not marked WarmStarted", trial)
		}
		if warm.Phase1Pivots != 0 {
			t.Fatalf("trial %d: warm solve reports phase-1 pivots (%d)", trial, warm.Phase1Pivots)
		}

		s2, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := s2.SolveBounded(childLo, childHi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status = %v, cold %v (problem %+v lo=%v hi=%v)",
				trial, warm.Status, cold.Status, p, childLo, childHi)
		}
		if warm.Status == Optimal {
			if !approx(warm.Objective, cold.Objective, 1e-5) {
				t.Fatalf("trial %d: warm objective = %v, cold %v", trial, warm.Objective, cold.Objective)
			}
			checkFeasible(t, p, warm.X, 1e-6)
			for j := range warm.X {
				if warm.X[j] < childLo[j]-1e-6 || warm.X[j] > childHi[j]+1e-6 {
					t.Fatalf("trial %d: warm X[%d]=%v outside [%v,%v]", trial, j, warm.X[j], childLo[j], childHi[j])
				}
			}
			if warm.DualPivots > 0 {
				warmSeen = true
			}
		}
	}
	if !warmSeen {
		t.Error("no trial exercised a non-trivial dual warm start")
	}
}

// Warm starts must also work across several levels of tightening, reusing
// one Solver's arena throughout (the branch-and-bound usage pattern).
func TestDualChain(t *testing.T) {
	p := &Problem{NumVars: 3, Objective: []float64{1, 2, 3}}
	p.AddConstraint(GE, 10, map[int]float64{0: 1, 1: 1, 2: 1})
	p.AddConstraint(GE, 4, map[int]float64{1: 1, 2: 2})
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.SolveBounded(nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 14, 1e-6) {
		t.Fatalf("root: %+v (want objective 14: x=[8,2,0])", sol)
	}
	lo := []float64{0, 0, 0}
	hi := []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	// Squeezing x0's upper bound to 8 and 6 leaves the optimum at 14
	// (alternate optima [8,0,2] and [6,4,0]); at 4 the cheapest fill is
	// y=6, giving 4+12=16.
	want := []float64{14, 14, 16}
	for depth := 0; depth < 3; depth++ {
		bas := s.Basis()
		hi[0] = 8 - 2*float64(depth) // 8, 6, 4: squeeze x0 down
		warm, ok, err := s.SolveDual(bas, lo, hi, time.Time{})
		if err != nil || !ok {
			t.Fatalf("depth %d: warm solve failed (ok=%v err=%v)", depth, ok, err)
		}
		if warm.Status != Optimal || !approx(warm.Objective, want[depth], 1e-6) {
			t.Fatalf("depth %d: got %+v, want objective %v", depth, warm, want[depth])
		}
	}
	// Contradictory bounds are proven infeasible before any pivoting.
	lo[0], hi[0] = 5, 4
	warm, ok, err := s.SolveDual(s.Basis(), lo, hi, time.Time{})
	if err != nil || !ok {
		t.Fatalf("crossed bounds: ok=%v err=%v", ok, err)
	}
	if warm.Status != Infeasible {
		t.Fatalf("crossed bounds: status = %v, want infeasible", warm.Status)
	}
}

// Beale's classic cycling example. Dantzig pricing is prone to cycling on
// it; the Bland switch must terminate the solve at the true optimum. With
// the trigger forced to fire immediately we also pin down that (a) Bland
// pivots are counted and (b) a subsequent warm-started solve starts with a
// fresh iteration counter instead of inheriting the cycling suspicion.
func TestDegenerateBlandSwitch(t *testing.T) {
	beale := func() *Problem {
		p := &Problem{NumVars: 4, Objective: []float64{-0.75, 150, -0.02, 6}}
		p.AddConstraint(LE, 0, map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9})
		p.AddConstraint(LE, 0, map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3})
		p.AddConstraint(LE, 1, map[int]float64{2: 1})
		return p
	}

	// Legacy solver: must terminate and find the optimum -0.05.
	legacy, err := Solve(beale())
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Status != Optimal || !approx(legacy.Objective, -0.05, 1e-9) {
		t.Fatalf("legacy: %+v, want optimal -0.05", legacy)
	}

	s, err := NewSolver(beale())
	if err != nil {
		t.Fatal(err)
	}
	s.blandAfterOverride = 1 // force the anti-cycling rule almost immediately
	sol, err := s.SolveBounded(nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -0.05, 1e-9) {
		t.Fatalf("bounded: %+v, want optimal -0.05", sol)
	}
	if sol.BlandPivots == 0 {
		t.Error("forced Bland trigger produced no Bland pivots")
	}

	// A warm re-solve under a tightened bound runs its own fresh iteration
	// count: with the override removed it must not register Bland pivots
	// for the handful of dual pivots it needs.
	s.blandAfterOverride = 0
	hi := []float64{math.Inf(1), math.Inf(1), 0.5, math.Inf(1)}
	warm, ok, err := s.SolveDual(s.Basis(), nil, hi, time.Time{})
	if err != nil || !ok {
		t.Fatalf("warm: ok=%v err=%v", ok, err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm: %+v", warm)
	}
	if warm.BlandPivots != 0 {
		t.Errorf("warm solve inherited cycling suspicion: %d Bland pivots", warm.BlandPivots)
	}
}

// randomBoundedProblem generates a small LP with integer-ish data, finite
// upper bounds on a random subset of variables, and a mix of row relations.
// All lower bounds are finite (>= 0), so the feasible region is pointed and
// any optimum sits on a vertex — which is what the brute-force enumerator
// in vertexenum_test.go relies on.
func randomBoundedProblem(rng *rand.Rand) (*Problem, []float64, []float64) {
	n := 2 + rng.Intn(3)
	m := 1 + rng.Intn(3)
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	lo := make([]float64, n)
	hi := make([]float64, n)
	for j := 0; j < n; j++ {
		p.Objective[j] = float64(rng.Intn(11) - 5)
		hi[j] = math.Inf(1)
		if rng.Intn(2) == 0 {
			hi[j] = float64(1 + rng.Intn(6))
		}
		if rng.Intn(4) == 0 {
			lo[j] = float64(rng.Intn(3))
			if lo[j] > hi[j] {
				hi[j] = lo[j] + float64(rng.Intn(3))
			}
		}
		if math.IsInf(hi[j], 1) && p.Objective[j] < 0 {
			// Keep the instance bounded: a negative cost with no cap is
			// an easy unbounded ray; cap it most of the time.
			if rng.Intn(4) != 0 {
				hi[j] = float64(2 + rng.Intn(6))
			}
		}
	}
	for i := 0; i < m; i++ {
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			if c := rng.Intn(7) - 3; c != 0 {
				terms[j] = float64(c)
			}
		}
		if len(terms) == 0 {
			terms[rng.Intn(n)] = 1
		}
		rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(15) - 3)
		p.AddConstraint(rel, rhs, terms)
	}
	return p, lo, hi
}
