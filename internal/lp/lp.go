// Package lp implements a linear-programming solver: minimisation of a
// linear objective over linear constraints with non-negative variables,
// solved by the two-phase primal simplex method on a dense tableau.
//
// It is the LP substrate underneath the branch-and-bound MILP solver in
// sring/internal/milp, replacing the commercial solver (Gurobi) used by the
// SRing paper. Problems at WRONoC-benchmark scale (hundreds to a few
// thousand variables and rows) solve in milliseconds to seconds.
//
// Pivoting uses Dantzig pricing with a ratio-test tie-break; if the
// iteration count suggests cycling the solver switches to Bland's rule,
// which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sring/internal/obs"
)

// Rel is the relation of a constraint row.
type Rel int

const (
	// LE is "<=".
	LE Rel = iota
	// GE is ">=".
	GE
	// EQ is "=".
	EQ
)

// String returns the relation symbol.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Constraint is a sparse linear constraint sum(Coeffs[i]*x[i]) Rel RHS.
type Constraint struct {
	Coeffs map[int]float64
	Rel    Rel
	RHS    float64
}

// Problem is an LP in the form
//
//	minimise  c . x
//	subject to constraints, x >= 0.
//
// Maximisation is expressed by negating the objective.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; nil means all-zero
	Constraints []Constraint
}

// AddConstraint appends a constraint built from (variable, coefficient)
// pairs and returns its row index.
func (p *Problem) AddConstraint(rel Rel, rhs float64, terms map[int]float64) int {
	cp := make(map[int]float64, len(terms))
	for v, c := range terms {
		if c != 0 {
			cp[v] = c
		}
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: cp, Rel: rel, RHS: rhs})
	return len(p.Constraints) - 1
}

// Validate checks variable indices and dimensions.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return errors.New("lp: problem has no variables")
	}
	if p.Objective != nil && len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		for v := range c.Coeffs {
			if v < 0 || v >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d (NumVars=%d)", i, v, p.NumVars)
			}
		}
	}
	return nil
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective is unbounded below.
	Unbounded
	// IterLimit: the iteration limit was hit before convergence.
	IterLimit
)

// String returns the status label.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (length NumVars), valid when Optimal
	Objective float64   // c . X, valid when Optimal
	// Phase1Pivots and Phase2Pivots count the simplex pivots performed in
	// each phase; BlandPivots counts how many of them ran under Bland's
	// anti-cycling rule. Always populated, whatever the Status. For a
	// Solver cold solve, Phase1Pivots counts the zero-cost dual pivots of
	// the feasibility phase.
	Phase1Pivots int
	Phase2Pivots int
	BlandPivots  int
	// DualPivots counts dual-simplex pivots of a warm-started solve
	// (Solver.SolveDual); Phase2Pivots then counts its primal clean-up
	// pivots.
	DualPivots int
	// WarmStarted marks a solution produced by Solver.SolveDual from a
	// basis snapshot.
	WarmStarted bool
	// WarmFallback marks a cold solution obtained after a warm start was
	// attempted and failed (singular basis or iteration trouble); set by
	// callers that implement the fallback, for telemetry attribution.
	WarmFallback bool
	// Sparse marks a solution produced by the sparse revised-simplex
	// kernel; the Sparse* fields below are populated only then. They are
	// deterministic per solve (refactorisation points are pivot counts and
	// the factorisation is a pure function of matrix and basis), so
	// accumulating them at consumption time matches a sequential run
	// bit-for-bit even when solves ran speculatively.
	Sparse bool
	// SparseNNZ is the pristine constraint-matrix nonzero count.
	SparseNNZ int
	// SparseRefactorizations counts basis factorisation installs during the
	// solve (warm-start refactorisations — memoised or freshly built — plus
	// periodic mid-solve rebuilds of the eta file).
	SparseRefactorizations int
	// SparseEtaPeak is the peak update-eta-file length reached between
	// refactorisations.
	SparseEtaPeak int
	// SparseFillIn totals, over the solve's factorisations, the factor
	// nonzeros beyond the basic columns' own pristine nonzeros.
	SparseFillIn int
	// SparseAccuracyFailures counts mid-solve refactorisations whose
	// recomputed basic values disagreed with the incrementally maintained
	// ones beyond tolerance — a nonzero count flags numerical drift.
	SparseAccuracyFailures int
	// SparseSingularRefactors counts mid-solve refactorisations aborted
	// because the pinned-row elimination went singular; the solve then
	// continues on its current representation without further rebuilds.
	SparseSingularRefactors int
	// FTUpdates counts successful Forrest-Tomlin basis updates
	// (forrest_tomlin.go); zero under the eta or dense kernels.
	FTUpdates int
	// FTSpikeNNZ totals the off-diagonal spike-column nonzeros the FT
	// updates inserted into the U file.
	FTSpikeNNZ int
	// FTFallbacks counts pivots where a rejected FT update and a failed
	// rescue refactorisation parked the kernel on the product-form eta
	// file for the rest of the solve (or until a refactorisation escapes).
	FTFallbacks int
}

const (
	eps = 1e-9
	// blandTrigger is the iteration count after which the solver switches
	// from Dantzig pricing to Bland's rule to escape potential cycling.
	blandTriggerFactor = 4
)

// tableau is a dense simplex tableau.
//
// Layout: rows 0..m-1 are constraints, row m is the objective. Columns
// 0..n-1 are variables (structural + slack/surplus + artificial), column n
// is the RHS.
type tableau struct {
	m, n  int
	a     [][]float64
	basis []int // basis[r] = column basic in row r
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n, basis: make([]int, m)}
	t.a = make([][]float64, m+1)
	cells := make([]float64, (m+1)*(n+1))
	for i := range t.a {
		t.a[i] = cells[i*(n+1) : (i+1)*(n+1)]
	}
	return t
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= t.n; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.n; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}

// chooseColumn selects an entering column with a negative reduced cost.
// Returns -1 when the tableau is optimal. allowed limits the candidate set
// (nil means all columns).
func (t *tableau) chooseColumn(bland bool, allowed []bool) int {
	obj := t.a[t.m]
	if bland {
		for j := 0; j < t.n; j++ {
			if (allowed == nil || allowed[j]) && obj[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < t.n; j++ {
		if (allowed == nil || allowed[j]) && obj[j] < bestVal {
			best, bestVal = j, obj[j]
		}
	}
	return best
}

// chooseRow performs the minimum-ratio test for entering column col.
// Returns -1 if the column is unbounded. Ties break toward the smallest
// basis index (lexicographic enough in combination with Bland's column
// rule to prevent cycling).
func (t *tableau) chooseRow(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		aij := t.a[i][col]
		if aij <= eps {
			continue
		}
		ratio := t.a[i][t.n] / aij
		if ratio < bestRatio-eps ||
			(ratio < bestRatio+eps && (bestRow == -1 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// runSimplex iterates to optimality. allowed restricts entering columns;
// a non-zero deadline aborts with IterLimit when exceeded (checked every
// few iterations). It returns the pivot count and how many of those pivots
// ran under Bland's rule.
func (t *tableau) runSimplex(maxIter int, allowed []bool, deadline time.Time) (Status, int, int) {
	blandAfter := blandTriggerFactor * (t.m + t.n)
	checkEvery := 16
	pivots, blandPivots := 0, 0
	for iter := 0; iter < maxIter; iter++ {
		if !deadline.IsZero() && iter%checkEvery == 0 && time.Now().After(deadline) {
			return IterLimit, pivots, blandPivots
		}
		bland := iter > blandAfter
		col := t.chooseColumn(bland, allowed)
		if col < 0 {
			return Optimal, pivots, blandPivots
		}
		row := t.chooseRow(col)
		if row < 0 {
			return Unbounded, pivots, blandPivots
		}
		t.pivot(row, col)
		pivots++
		if bland {
			blandPivots++
		}
	}
	return IterLimit, pivots, blandPivots
}

// Solve solves the problem with the two-phase simplex method.
//
// The returned error is non-nil only for malformed input; infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	return SolveDeadline(p, time.Time{})
}

// SolveDeadline is Solve with a wall-clock cutoff: when the deadline passes
// mid-solve the result carries Status IterLimit. A zero deadline means no
// cutoff.
func SolveDeadline(p *Problem, deadline time.Time) (*Solution, error) {
	return SolveInstrumented(p, deadline, nil)
}

// SolveInstrumented is SolveDeadline with solver telemetry: pivot counts
// and Bland-rule activations are accumulated onto the recorder's counters
// (lp.solves, lp.pivots.phase1, lp.pivots.phase2, lp.bland_pivots,
// lp.bland_activations). A nil recorder costs nothing; the counts are also
// always returned in the Solution itself.
func SolveInstrumented(p *Problem, deadline time.Time, rec *obs.Recorder) (*Solution, error) {
	start := time.Now()
	sol, err := solve(p, deadline)
	if err != nil {
		return nil, err
	}
	// One-shot solves have no Solver to carry registry handles; they are
	// rare enough that recording into the process default directly is fine.
	reg := obs.Default()
	reg.Histogram("lp.solve.ns").RecordSince(start)
	reg.Histogram("lp.solve.pivots").Record(int64(sol.Phase1Pivots + sol.Phase2Pivots))
	AccumulateStats(rec, sol)
	return sol, nil
}

// AccumulateStats records a solution's pivot counters onto the recorder's
// lp.* counters. It exists separately from SolveInstrumented so callers
// that solve speculatively (the parallel branch-and-bound worker pool) can
// defer counter attribution to the moment a solution is actually consumed,
// keeping the recorded counts identical to a sequential run. Nil recorder
// or solution is a no-op.
func AccumulateStats(rec *obs.Recorder, sol *Solution) {
	if rec == nil || sol == nil {
		return
	}
	rec.Add("lp.solves", 1)
	rec.Add("lp.pivots.phase1", int64(sol.Phase1Pivots))
	rec.Add("lp.pivots.phase2", int64(sol.Phase2Pivots))
	if sol.BlandPivots > 0 {
		rec.Add("lp.bland_pivots", int64(sol.BlandPivots))
		rec.Add("lp.bland_activations", 1)
	}
	if sol.WarmStarted {
		rec.Add("lp.warmstart.solves", 1)
		rec.Add("lp.pivots.dual", int64(sol.DualPivots))
	}
	if sol.WarmFallback {
		rec.Add("lp.warmstart.fallbacks", 1)
	}
	if sol.Sparse {
		rec.Add("lp.sparse.solves", 1)
		rec.Add("lp.sparse.nnz", int64(sol.SparseNNZ))
		rec.Add("lp.sparse.refactorizations", int64(sol.SparseRefactorizations))
		if n := int64(sol.SparseEtaPeak); n > 0 {
			rec.Add("lp.sparse.eta_peak", n)
		}
		rec.Add("lp.sparse.fill_in", int64(sol.SparseFillIn))
		if sol.SparseAccuracyFailures > 0 {
			rec.Add("lp.sparse.accuracy_failures", int64(sol.SparseAccuracyFailures))
		}
		if sol.SparseSingularRefactors > 0 {
			rec.Add("lp.sparse.singular_refactors", int64(sol.SparseSingularRefactors))
		}
		if sol.FTUpdates > 0 {
			rec.Add("lp.ft.updates", int64(sol.FTUpdates))
			rec.Add("lp.ft.spike_nnz", int64(sol.FTSpikeNNZ))
		}
		if sol.FTFallbacks > 0 {
			rec.Add("lp.ft.fallbacks", int64(sol.FTFallbacks))
		}
	}
}

func solve(p *Problem, deadline time.Time) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := len(p.Constraints)
	nStruct := p.NumVars

	// Count extra columns: one slack/surplus per inequality, one artificial
	// per GE/EQ row (and per LE row with negative RHS after normalisation).
	type rowPlan struct {
		rel    Rel
		negate bool
		slack  int // column of slack/surplus, -1 if none
		artif  int // column of artificial, -1 if none
	}
	plans := make([]rowPlan, m)
	col := nStruct
	for i, c := range p.Constraints {
		pl := rowPlan{rel: c.Rel, slack: -1, artif: -1}
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			pl.negate = true
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
			pl.rel = rel
		}
		switch rel {
		case LE:
			pl.slack = col
			col++
		case GE:
			pl.slack = col // surplus (coefficient -1)
			col++
			pl.artif = col
			col++
		case EQ:
			pl.artif = col
			col++
		}
		plans[i] = pl
	}
	n := col

	t := newTableau(m, n)
	// Fill constraint rows.
	for i, c := range p.Constraints {
		pl := plans[i]
		sign := 1.0
		rhs := c.RHS
		if pl.negate {
			sign = -1
			rhs = -rhs
		}
		row := t.a[i]
		for v, coeff := range c.Coeffs {
			row[v] = sign * coeff
		}
		row[n] = rhs
		if pl.slack >= 0 {
			if pl.rel == LE {
				row[pl.slack] = 1
			} else {
				row[pl.slack] = -1
			}
		}
		if pl.artif >= 0 {
			row[pl.artif] = 1
			t.basis[i] = pl.artif
		} else {
			t.basis[i] = pl.slack
		}
	}

	maxIter := 200 * (m + n + 10)
	p1Pivots, p2Pivots, blandPivots := 0, 0, 0

	// Phase 1: minimise the sum of artificials.
	hasArtif := false
	for _, pl := range plans {
		if pl.artif >= 0 {
			hasArtif = true
			break
		}
	}
	if hasArtif {
		obj := t.a[m]
		for j := range obj {
			obj[j] = 0
		}
		for _, pl := range plans {
			if pl.artif >= 0 {
				obj[pl.artif] = 1
			}
		}
		// Price out the artificial basis.
		for i, pl := range plans {
			if pl.artif >= 0 {
				for j := 0; j <= n; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
		st, piv, bl := t.runSimplex(maxIter, nil, deadline)
		p1Pivots, blandPivots = piv, bl
		switch st {
		case IterLimit:
			return &Solution{Status: IterLimit, Phase1Pivots: p1Pivots, BlandPivots: blandPivots}, nil
		case Unbounded:
			// Phase-1 objective is bounded below by 0; cannot happen.
			return nil, errors.New("lp: phase 1 reported unbounded")
		}
		if -t.a[m][n] > 1e-7 {
			return &Solution{Status: Infeasible, Phase1Pivots: p1Pivots, BlandPivots: blandPivots}, nil
		}
		// Drive any artificials still in the basis out (degenerate rows).
		artifSet := make(map[int]bool)
		for _, pl := range plans {
			if pl.artif >= 0 {
				artifSet[pl.artif] = true
			}
		}
		for i := 0; i < m; i++ {
			if !artifSet[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n && !pivoted; j++ {
				if artifSet[j] {
					continue
				}
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
				}
			}
			// If no pivot column exists the row is redundant (all zero);
			// the artificial stays basic at value zero, which is harmless
			// as long as it cannot re-enter (blocked below).
		}
		// Block artificial columns from ever re-entering: zero them out.
		for i := 0; i <= m; i++ {
			for j := range artifSet {
				t.a[i][j] = 0
			}
		}
	}

	// Phase 2: install the real objective and price out the basis.
	obj := t.a[m]
	for j := 0; j <= n; j++ {
		obj[j] = 0
	}
	if p.Objective != nil {
		copy(obj, p.Objective)
	}
	for i := 0; i < m; i++ {
		b := t.basis[i]
		if b < len(obj) && obj[b] != 0 {
			f := obj[b]
			for j := 0; j <= n; j++ {
				obj[j] -= f * t.a[i][j]
			}
			obj[b] = 0
		}
	}
	// Exclude artificial columns from pricing.
	allowed := make([]bool, n)
	for j := 0; j < n; j++ {
		allowed[j] = true
	}
	for _, pl := range plans {
		if pl.artif >= 0 {
			allowed[pl.artif] = false
		}
	}
	st, piv, bl := t.runSimplex(maxIter, allowed, deadline)
	p2Pivots = piv
	blandPivots += bl
	switch st {
	case IterLimit:
		return &Solution{Status: IterLimit, Phase1Pivots: p1Pivots, Phase2Pivots: p2Pivots, BlandPivots: blandPivots}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Phase1Pivots: p1Pivots, Phase2Pivots: p2Pivots, BlandPivots: blandPivots}, nil
	}

	x := make([]float64, p.NumVars)
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b < p.NumVars {
			x[b] = t.a[i][n]
		}
	}
	var objVal float64
	for v, c := range x {
		if p.Objective != nil {
			objVal += p.Objective[v] * c
		}
	}
	return &Solution{
		Status:       Optimal,
		X:            x,
		Objective:    objVal,
		Phase1Pivots: p1Pivots,
		Phase2Pivots: p2Pivots,
		BlandPivots:  blandPivots,
	}, nil
}
