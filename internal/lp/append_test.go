package lp

import (
	"math"
	"testing"
	"time"

	"sring/internal/obs"
)

// The cut-append workflow end to end: solve, append a violated row, extend
// the basis, re-enter dual, and come out at the new optimum warm.
func TestAppendRowsWarmReentry(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*Problem) (*Solver, error)
	}{
		{"ft", NewSolver},
		{"eta", NewEtaSolver},
		{"dense", NewDenseSolver},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// max x0+x1 s.t. x0<=3, x1<=3, x0+x1<=5 -> (3,2) or (2,3); the
			// simplex lands on a vertex with objective -5.
			p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
			p.AddConstraint(LE, 3, map[int]float64{0: 1})
			p.AddConstraint(LE, 3, map[int]float64{1: 1})
			p.AddConstraint(LE, 5, map[int]float64{0: 1, 1: 1})
			s, err := tc.mk(p)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := s.SolveBounded(nil, nil, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != Optimal || !approx(sol.Objective, -5, 1e-9) {
				t.Fatalf("base solve: status %v obj %v", sol.Status, sol.Objective)
			}
			bas := s.Basis()

			// A cut violated at the optimum: x0+2*x1 <= 6.
			if err := s.AppendRows([]Constraint{
				{Coeffs: map[int]float64{0: 1, 1: 2}, Rel: LE, RHS: 6},
			}); err != nil {
				t.Fatal(err)
			}
			if s.NumRows() != 4 || s.BaseRows() != 3 {
				t.Fatalf("rows = %d base %d, want 4/3", s.NumRows(), s.BaseRows())
			}
			ext := s.ExtendBasis(bas)
			if ext == nil {
				t.Fatal("ExtendBasis returned nil")
			}
			sol2, ok, err := s.SolveDual(ext, nil, nil, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if !ok || sol2.Status != Optimal {
				t.Fatalf("warm re-entry failed: ok=%v status=%v", ok, sol2.Status)
			}
			// New optimum: x0=3, x1<=min(3, 5-3=2, (6-3)/2=1.5) -> (3, 1.5).
			if !approx(sol2.Objective, -4.5, 1e-9) {
				t.Fatalf("cut objective = %v, want -4.5", sol2.Objective)
			}
			if !sol2.WarmStarted {
				t.Fatal("re-entry was not warm")
			}
			// Cross-check against a cold solve of the augmented problem.
			cold, err := s.SolveBounded(nil, nil, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if !approx(cold.Objective, sol2.Objective, 1e-9) {
				t.Fatalf("cold %v != warm %v", cold.Objective, sol2.Objective)
			}

			// Truncating restores the original optimum.
			if err := s.TruncateRows(3); err != nil {
				t.Fatal(err)
			}
			sol3, err := s.SolveBounded(nil, nil, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if !approx(sol3.Objective, -5, 1e-9) {
				t.Fatalf("post-truncate objective = %v, want -5", sol3.Objective)
			}
		})
	}
}

func TestAppendRowsValidationAndCounter(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(GE, 1, map[int]float64{0: 1, 1: 1})
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.SetRegistry(reg)
	if err := s.AppendRows([]Constraint{{Coeffs: map[int]float64{7: 1}, Rel: LE, RHS: 1}}); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	if err := s.TruncateRows(0); err == nil {
		t.Fatal("TruncateRows below BaseRows accepted")
	}
	if err := s.AppendRows([]Constraint{
		{Coeffs: map[int]float64{0: 1}, Rel: LE, RHS: 10},
		{Coeffs: map[int]float64{1: 1}, Rel: LE, RHS: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["lp.rows.appended"]; got != 2 {
		t.Fatalf("lp.rows.appended = %d, want 2", got)
	}
}

// TableauRow must reproduce B^-1 [A I]: basic columns read as unit vectors
// and the identity B^-1 B = I holds row by row.
func TestTableauRowIdentity(t *testing.T) {
	p := &Problem{NumVars: 3, Objective: []float64{-2, -3, -1}}
	p.AddConstraint(LE, 10, map[int]float64{0: 1, 1: 2, 2: 1})
	p.AddConstraint(LE, 8, map[int]float64{0: 2, 1: 1})
	p.AddConstraint(GE, 1, map[int]float64{2: 1})
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.SolveBounded(nil, nil, time.Time{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	m := s.NumRows()
	nCols := s.NumVars() + m
	for i := 0; i < m; i++ {
		row := append([]float64(nil), s.TableauRow(i)...)
		if len(row) != nCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), nCols)
		}
		for r := 0; r < m; r++ {
			want := 0.0
			if r == i {
				want = 1
			}
			if got := row[s.BasicVar(r)]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("row %d, basic col of row %d: %v, want %v", i, r, got, want)
			}
		}
	}
}
