package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// denseRandomLP builds a deterministic, fully dense LP large enough to
// force many simplex pivots with sizeable spikes — the workload that
// exercises Forrest-Tomlin updates and the fill-growth refactorisation
// trigger rather than the singleton-peeling fast paths.
func denseRandomLP(seed int64, m, n int) (*Problem, []float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Objective[j] = rng.Float64()*2 - 1
	}
	for i := 0; i < m; i++ {
		terms := map[int]float64{}
		for j := 0; j < n; j++ {
			terms[j] = rng.Float64()*2 - 1
		}
		p.AddConstraint(LE, 1+rng.Float64()*float64(n), terms)
	}
	lo := make([]float64, n)
	hi := make([]float64, n)
	for j := 0; j < n; j++ {
		hi[j] = 1 + rng.Float64()*3
	}
	return p, lo, hi
}

// TestFTRepresentationInvariant drives a solve with the periodic
// refactorisation count effectively disabled, then verifies the update
// representation directly: FTRAN of every basic column through the live
// FT file must reproduce the corresponding unit vector.
func TestFTRepresentationInvariant(t *testing.T) {
	p, lo, hi := denseRandomLP(3, 12, 16)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	s.refactorEveryOverride = 1 << 20
	sol, err := s.SolveBounded(lo, hi, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.FTUpdates == 0 {
		t.Fatal("solve performed no Forrest-Tomlin updates")
	}
	k, ok := s.k.(*ftKernel)
	if !ok {
		t.Fatalf("NewSolver kernel is %T, want *ftKernel", s.k)
	}
	v := make([]float64, s.m)
	for r := 0; r < s.m; r++ {
		k.sk.scatter(v, int(s.basis[r]))
		k.ftran(v)
		for i := 0; i < s.m; i++ {
			want := 0.0
			if i == r {
				want = 1.0
			}
			if math.Abs(v[i]-want) > 1e-6 {
				t.Fatalf("B^-1 B e_%d [%d] = %v, want %v (after %d FT updates)",
					r, i, v[i], want, sol.FTUpdates)
			}
		}
	}
}

// TestFTFillTriggerRefactorises disables the update-count trigger and
// checks that the fill-growth trigger alone still schedules mid-solve
// refactorisations on a dense workload: accumulated spike + eta-pair
// nonzeros crossing half the pristine factored nonzeros must rebuild.
func TestFTFillTriggerRefactorises(t *testing.T) {
	p, lo, hi := denseRandomLP(5, 40, 50)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	s.refactorEveryOverride = 1 << 20
	sol, err := s.SolveBounded(lo, hi, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// A cold solve starts from the slack identity (no refactorisation
	// install), so with the count trigger parked every recorded
	// refactorisation was scheduled by fill growth.
	if sol.SparseRefactorizations == 0 {
		t.Fatalf("no fill-triggered refactorisation in %d pivots / %d FT updates",
			sol.Phase1Pivots+sol.Phase2Pivots, sol.FTUpdates)
	}
	// The post-solve state must respect the trigger invariant: fill either
	// below threshold or refactorisation frozen by a singular rebuild.
	k := s.k.(*ftKernel)
	if !k.sk.noMoreRefactor && !k.etaMode && k.rebuildCooloff == 0 && k.updates > 0 && 2*k.addedNnz >= k.baseNnz+ftFillSlack {
		t.Fatalf("fill trigger violated at solve end: addedNnz=%d baseNnz=%d", k.addedNnz, k.baseNnz)
	}
}

// TestFTRefactorEveryOverride checks the test hook carries over to the FT
// kernel: with the override at 1, a mid-solve refactorisation must occur
// after every update — strictly more than the default cadence schedules —
// without moving the optimum.
func TestFTRefactorEveryOverride(t *testing.T) {
	p, lo, hi := denseRandomLP(5, 10, 14)
	def, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	dsol, err := def.SolveBounded(lo, hi, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	ov.refactorEveryOverride = 1
	osol, err := ov.SolveBounded(lo, hi, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if dsol.Status != Optimal || osol.Status != Optimal {
		t.Fatalf("statuses %v / %v", dsol.Status, osol.Status)
	}
	if !approx(dsol.Objective, osol.Objective, 1e-7) {
		t.Fatalf("objective changed under refactorEveryOverride: %v vs %v", dsol.Objective, osol.Objective)
	}
	if osol.SparseRefactorizations <= dsol.SparseRefactorizations {
		t.Fatalf("override=1 produced %d refactorisations, default %d — hook inert?",
			osol.SparseRefactorizations, dsol.SparseRefactorizations)
	}
}

// TestEtaSolverIsEtaKernel pins the oracle constructor: NewEtaSolver must
// produce the product-form kernel (no FT updates ever reported).
func TestEtaSolverIsEtaKernel(t *testing.T) {
	p, lo, hi := denseRandomLP(11, 8, 10)
	s, err := NewEtaSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.k.(*sparseKernel); !ok {
		t.Fatalf("NewEtaSolver kernel is %T, want *sparseKernel", s.k)
	}
	sol, err := s.SolveBounded(lo, hi, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.FTUpdates != 0 || sol.FTSpikeNNZ != 0 || sol.FTFallbacks != 0 {
		t.Fatalf("eta kernel reported FT stats: %+v", sol)
	}
	if !sol.Sparse {
		t.Fatal("eta solution not flagged Sparse")
	}
}
