package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// checkFeasible verifies that x satisfies every constraint of p within tol.
func checkFeasible(t *testing.T, p *Problem, x []float64, tol float64) {
	t.Helper()
	for _, v := range x {
		if v < -tol {
			t.Errorf("negative variable value %v", v)
		}
	}
	for i, c := range p.Constraints {
		var lhs float64
		for v, coeff := range c.Coeffs {
			lhs += coeff * x[v]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+tol {
				t.Errorf("constraint %d violated: %v <= %v", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-tol {
				t.Errorf("constraint %d violated: %v >= %v", i, lhs, c.RHS)
			}
		case EQ:
			if !approx(lhs, c.RHS, tol) {
				t.Errorf("constraint %d violated: %v = %v", i, lhs, c.RHS)
			}
		}
	}
}

// Classic production problem:
// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj 36.
func TestProductionProblem(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	p.AddConstraint(LE, 4, map[int]float64{0: 1})
	p.AddConstraint(LE, 12, map[int]float64{1: 2})
	p.AddConstraint(LE, 18, map[int]float64{0: 3, 1: 2})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, -36, 1e-6) {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 6, 1e-6) {
		t.Errorf("X = %v, want [2 6]", s.X)
	}
	checkFeasible(t, p, s.X, 1e-6)
}

// Minimisation with GE rows (diet-style, needs phase 1):
// min 0.6x + y s.t. 10x + 4y >= 20, 5x + 5y >= 20, 2x + 6y >= 12 => x,y >= 0.
func TestDietProblem(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{0.6, 1}}
	p.AddConstraint(GE, 20, map[int]float64{0: 10, 1: 4})
	p.AddConstraint(GE, 20, map[int]float64{0: 5, 1: 5})
	p.AddConstraint(GE, 12, map[int]float64{0: 2, 1: 6})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	checkFeasible(t, p, s.X, 1e-6)
	// Optimum is at intersection of constraints 2 and 3: x=3, y=1, obj 2.8.
	if !approx(s.Objective, 2.8, 1e-6) {
		t.Errorf("objective = %v, want 2.8", s.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y + 3z s.t. x + y + z = 10, y - z = 2.
	p := &Problem{NumVars: 3, Objective: []float64{1, 2, 3}}
	p.AddConstraint(EQ, 10, map[int]float64{0: 1, 1: 1, 2: 1})
	p.AddConstraint(EQ, 2, map[int]float64{1: 1, 2: -1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	checkFeasible(t, p, s.X, 1e-6)
	// Best: push everything into x; y=2, z=0, x=8 => 8 + 4 = 12.
	if !approx(s.Objective, 12, 1e-6) {
		t.Errorf("objective = %v, want 12", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(GE, 5, map[int]float64{0: 1})
	p.AddConstraint(LE, 3, map[int]float64{0: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{-1, 0}}
	p.AddConstraint(GE, 1, map[int]float64{0: 1, 1: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// x - y <= -2 with min x  => flip to y - x >= 2; optimum x=0 (y=2).
	p := &Problem{NumVars: 2, Objective: []float64{1, 0}}
	p.AddConstraint(LE, -2, map[int]float64{0: 1, 1: -1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	checkFeasible(t, p, s.X, 1e-6)
	if !approx(s.X[0], 0, 1e-6) {
		t.Errorf("x = %v, want 0", s.X[0])
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Degenerate vertex at origin with redundant constraints; Bland's rule
	// fallback must terminate.
	p := &Problem{NumVars: 3, Objective: []float64{-0.75, 150, -0.02}}
	p.AddConstraint(LE, 0, map[int]float64{0: 0.25, 1: -60, 2: -0.04})
	p.AddConstraint(LE, 0, map[int]float64{0: 0.5, 1: -90, 2: -0.02})
	p.AddConstraint(LE, 1, map[int]float64{2: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	checkFeasible(t, p, s.X, 1e-6)
	// Known optimum of this Beale-style cycling example is z=1 active, with
	// objective -0.05... (exact value checked loosely against feasibility).
	if s.Objective > 0 {
		t.Errorf("objective = %v, want <= 0", s.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Feasibility problem: any feasible point acceptable.
	p := &Problem{NumVars: 2}
	p.AddConstraint(EQ, 4, map[int]float64{0: 1, 1: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	checkFeasible(t, p, s.X, 1e-6)
}

func TestValidateErrors(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("accepted problem without variables")
	}
	p := &Problem{NumVars: 2, Objective: []float64{1}}
	if _, err := Solve(p); err == nil {
		t.Error("accepted objective of wrong length")
	}
	p2 := &Problem{NumVars: 1}
	p2.AddConstraint(LE, 1, map[int]float64{5: 1})
	if _, err := Solve(p2); err == nil {
		t.Error("accepted out-of-range variable index")
	}
}

// Random LE-only LPs with bounded feasible region: solution must always be
// feasible and no better than any sampled feasible point.
func TestRandomLPsOptimalityAndFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		m := 2 + rng.Intn(6)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 2
		}
		// Box constraints keep it bounded.
		for j := 0; j < n; j++ {
			p.AddConstraint(LE, 1+rng.Float64()*5, map[int]float64{j: 1})
		}
		for i := 0; i < m; i++ {
			terms := map[int]float64{}
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms[j] = rng.Float64() * 3
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(LE, 1+rng.Float64()*8, terms)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v (origin is always feasible)", trial, s.Status)
		}
		checkFeasible(t, p, s.X, 1e-6)
		// Sample random feasible points; none may beat the reported optimum.
		for k := 0; k < 20; k++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 2
			}
			feasible := true
			for _, c := range p.Constraints {
				var lhs float64
				for v, coeff := range c.Coeffs {
					lhs += coeff * x[v]
				}
				if lhs > c.RHS+1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			var obj float64
			for j := range x {
				obj += p.Objective[j] * x[j]
			}
			if obj < s.Objective-1e-6 {
				t.Fatalf("trial %d: sampled point beats optimum: %v < %v", trial, obj, s.Objective)
			}
		}
	}
}

// Assignment-problem LPs have integral optimal vertices; the simplex should
// find the exact matching value.
func TestAssignmentLP(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	n := 3
	p := &Problem{NumVars: n * n, Objective: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.Objective[i*n+j] = cost[i][j]
		}
	}
	for i := 0; i < n; i++ {
		rowTerms := map[int]float64{}
		colTerms := map[int]float64{}
		for j := 0; j < n; j++ {
			rowTerms[i*n+j] = 1
			colTerms[j*n+i] = 1
		}
		p.AddConstraint(EQ, 1, rowTerms)
		p.AddConstraint(EQ, 1, colTerms)
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// Optimal assignment: (0,1)+(1,0)+(2,2) = 1+2+2 = 5.
	if !approx(s.Objective, 5, 1e-6) {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
	checkFeasible(t, p, s.X, 1e-6)
}

func TestRelAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("Status strings wrong")
	}
	if Rel(9).String() != "Rel(9)" || Status(9).String() != "Status(9)" {
		t.Error("unknown enum strings wrong")
	}
}

func TestAddConstraintDropsZeros(t *testing.T) {
	p := &Problem{NumVars: 2}
	p.AddConstraint(LE, 1, map[int]float64{0: 0, 1: 2})
	if _, ok := p.Constraints[0].Coeffs[0]; ok {
		t.Error("zero coefficient retained")
	}
	if p.Constraints[0].Coeffs[1] != 2 {
		t.Error("nonzero coefficient lost")
	}
}
