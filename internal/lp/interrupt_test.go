package lp

import (
	"testing"
	"time"
)

// A closed interrupt channel stops the pivot loop with IterLimit — exactly
// the deadline-expired behaviour — and clearing it re-enables the solver.
func TestSolverInterrupt(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	p.AddConstraint(LE, 4, map[int]float64{0: 1})
	p.AddConstraint(LE, 12, map[int]float64{1: 2})
	p.AddConstraint(LE, 18, map[int]float64{0: 3, 1: 2})

	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan struct{})
	close(ch)
	s.SetInterrupt(ch)
	sol, err := s.SolveBounded(nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("interrupted solve status = %v, want IterLimit", sol.Status)
	}

	// Disabling the interrupt restores normal solving on the same Solver.
	s.SetInterrupt(nil)
	sol, err = s.SolveBounded(nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("post-interrupt solve status = %v, want Optimal", sol.Status)
	}
	if !approx(sol.Objective, -36, 1e-6) {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}

	// An open channel must not disturb the solve.
	open := make(chan struct{})
	s.SetInterrupt(open)
	sol, err = s.SolveBounded(nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("open-channel solve status = %v, want Optimal", sol.Status)
	}
}
