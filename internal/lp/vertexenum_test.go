package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// bruteForceLP finds the optimum of min c.x, rows, lo <= x <= hi by
// enumerating every vertex of the feasible region: all choices of n active
// hyperplanes among the constraint rows (as equalities) and the finite
// variable bounds, solved by Gaussian elimination and filtered for
// feasibility. All lower bounds are finite, so the region is pointed and a
// finite optimum — if one exists — is attained at an enumerated vertex.
// Returns (bestObjective, found); found is false for an infeasible region.
// The caller must keep the instance bounded (the enumerator cannot certify
// unboundedness).
func bruteForceLP(p *Problem, lo, hi []float64) (float64, bool) {
	n := p.NumVars
	type hyper struct {
		a   []float64
		rhs float64
	}
	var planes []hyper
	for _, c := range p.Constraints {
		a := make([]float64, n)
		for v, coeff := range c.Coeffs {
			a[v] = coeff
		}
		planes = append(planes, hyper{a, c.RHS})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		planes = append(planes, hyper{a, lo[j]})
		if !math.IsInf(hi[j], 1) {
			b := make([]float64, n)
			b[j] = 1
			planes = append(planes, hyper{b, hi[j]})
		}
	}

	feasible := func(x []float64) bool {
		const tol = 1e-6
		for j := 0; j < n; j++ {
			if x[j] < lo[j]-tol || x[j] > hi[j]+tol {
				return false
			}
		}
		for _, c := range p.Constraints {
			var lhs float64
			for v, coeff := range c.Coeffs {
				lhs += coeff * x[v]
			}
			switch c.Rel {
			case LE:
				if lhs > c.RHS+tol {
					return false
				}
			case GE:
				if lhs < c.RHS-tol {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > tol {
					return false
				}
			}
		}
		return true
	}

	best, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(start, k int)
	solveAndCheck := func() {
		// Gaussian elimination with partial pivoting on the n chosen planes.
		A := make([][]float64, n)
		for r := 0; r < n; r++ {
			A[r] = append(append([]float64(nil), planes[idx[r]].a...), planes[idx[r]].rhs)
		}
		for col := 0; col < n; col++ {
			piv, pivAbs := -1, 1e-9
			for r := col; r < n; r++ {
				if abs := math.Abs(A[r][col]); abs > pivAbs {
					piv, pivAbs = r, abs
				}
			}
			if piv < 0 {
				return // singular choice of planes
			}
			A[col], A[piv] = A[piv], A[col]
			f := 1 / A[col][col]
			for j := col; j <= n; j++ {
				A[col][j] *= f
			}
			for r := 0; r < n; r++ {
				if r == col {
					continue
				}
				g := A[r][col]
				if g == 0 {
					continue
				}
				for j := col; j <= n; j++ {
					A[r][j] -= g * A[col][j]
				}
			}
		}
		x := make([]float64, n)
		for r := 0; r < n; r++ {
			x[r] = A[r][n]
		}
		if !feasible(x) {
			return
		}
		found = true
		var obj float64
		for j := 0; j < n; j++ {
			if p.Objective != nil {
				obj += p.Objective[j] * x[j]
			}
		}
		if obj < best {
			best = obj
		}
	}
	rec = func(start, k int) {
		if k == n {
			solveAndCheck()
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// TestFuzzAgainstVertexEnumeration is the LP property test: random small
// LPs are solved by the legacy two-phase solver, the bounded cold solver,
// and a warm-started dual re-solve, and every optimum is cross-checked
// against brute-force vertex enumeration.
func TestFuzzAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 400
	if testing.Short() {
		trials = 80
	}
	checked, infeasibles := 0, 0
	for trial := 0; trial < trials; trial++ {
		p, lo, hi := randomBoundedProblem(rng)

		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.SolveBounded(lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == Unbounded || sol.Status == IterLimit {
			continue // the enumerator cannot cross-check these
		}
		want, found := bruteForceLP(p, lo, hi)
		switch sol.Status {
		case Optimal:
			if !found {
				t.Fatalf("trial %d: solver found optimum %v, brute force says infeasible\n%+v lo=%v hi=%v",
					trial, sol.Objective, p, lo, hi)
			}
			if !approx(sol.Objective, want, 1e-5) {
				t.Fatalf("trial %d: solver optimum %v, brute force %v\n%+v lo=%v hi=%v",
					trial, sol.Objective, want, p, lo, hi)
			}
			checked++
		case Infeasible:
			if found {
				t.Fatalf("trial %d: solver says infeasible, brute force found vertex with objective %v\n%+v lo=%v hi=%v",
					trial, want, p, lo, hi)
			}
			infeasibles++
			continue
		}

		// Legacy solver with bounds expressed as rows must agree.
		rowP := &Problem{NumVars: p.NumVars, Objective: p.Objective}
		rowP.Constraints = append(rowP.Constraints, p.Constraints...)
		for j := 0; j < p.NumVars; j++ {
			if lo[j] > 0 {
				rowP.AddConstraint(GE, lo[j], map[int]float64{j: 1})
			}
			if !math.IsInf(hi[j], 1) {
				rowP.AddConstraint(LE, hi[j], map[int]float64{j: 1})
			}
		}
		legacy, err := Solve(rowP)
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Status != Optimal || !approx(legacy.Objective, want, 1e-5) {
			t.Fatalf("trial %d: legacy got %v (%v), brute force %v", trial, legacy.Objective, legacy.Status, want)
		}

		// A warm dual re-solve of the same bounds from the optimal basis
		// must terminate immediately at the same optimum.
		warm, ok, err := s.SolveDual(s.Basis(), lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || warm.Status != Optimal || !approx(warm.Objective, want, 1e-5) {
			t.Fatalf("trial %d: identity warm re-solve diverged: ok=%v %+v want %v", trial, ok, warm, want)
		}
	}
	if checked < trials/4 {
		t.Errorf("only %d/%d trials produced a checkable optimum", checked, trials)
	}
	t.Logf("verified %d optima and %d infeasibilities against vertex enumeration", checked, infeasibles)
}
